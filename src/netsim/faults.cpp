#include "netsim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/fingerprint.hpp"
#include "obs/observer.hpp"

namespace cen::sim {

double sanitize_probability(double p, const char* what) {
  if (std::isnan(p)) {
    throw std::invalid_argument(std::string(what) + ": probability is NaN");
  }
  return std::clamp(p, 0.0, 1.0);
}

bool FaultProfile::inert() const {
  return loss == 0.0 && duplicate == 0.0 && reorder == 0.0 && truncate == 0.0 &&
         corrupt == 0.0;
}

FaultProfile FaultProfile::sanitized(const char* what) const {
  FaultProfile p;
  p.loss = sanitize_probability(loss, what);
  p.duplicate = sanitize_probability(duplicate, what);
  p.reorder = sanitize_probability(reorder, what);
  p.truncate = sanitize_probability(truncate, what);
  p.corrupt = sanitize_probability(corrupt, what);
  return p;
}

bool NodeFaultProfile::inert() const {
  return !icmp_blackhole && icmp_rate_per_sec <= 0.0;
}

NodeFaultProfile NodeFaultProfile::sanitized(const char* what) const {
  NodeFaultProfile p = *this;
  if (std::isnan(p.icmp_rate_per_sec) || std::isnan(p.icmp_burst)) {
    throw std::invalid_argument(std::string(what) + ": ICMP rate parameter is NaN");
  }
  p.icmp_rate_per_sec = std::max(0.0, p.icmp_rate_per_sec);
  // A rate limiter with no capacity would silence the router outright;
  // keep at least one token of burst so "rate limited" != "blackholed".
  p.icmp_burst = p.icmp_rate_per_sec > 0.0 ? std::max(1.0, p.icmp_burst) : p.icmp_burst;
  return p;
}

bool FaultPlan::inert() const {
  if (transient_loss != 0.0 || route_flap_period != 0 || mgmt_drop != 0.0 ||
      banner_truncate != 0.0) {
    return false;
  }
  if (!default_link.inert() || !default_node.inert()) return false;
  for (const auto& [key, p] : link_overrides) {
    if (!p.inert()) return false;
  }
  for (const auto& [key, p] : node_overrides) {
    if (!p.inert()) return false;
  }
  return true;
}

FaultPlan FaultPlan::sanitized() const {
  FaultPlan p = *this;
  p.transient_loss = sanitize_probability(transient_loss, "FaultPlan.transient_loss");
  p.default_link = default_link.sanitized("FaultPlan.default_link");
  p.default_node = default_node.sanitized("FaultPlan.default_node");
  for (auto& [key, lp] : p.link_overrides) lp = lp.sanitized("FaultPlan.link_override");
  for (auto& [key, np] : p.node_overrides) np = np.sanitized("FaultPlan.node_override");
  p.mgmt_drop = sanitize_probability(mgmt_drop, "FaultPlan.mgmt_drop");
  p.banner_truncate = sanitize_probability(banner_truncate, "FaultPlan.banner_truncate");
  return p;
}

const FaultProfile& FaultPlan::link(NodeId a, NodeId b) const {
  if (!link_overrides.empty()) {
    auto it = link_overrides.find(std::minmax(a, b));
    if (it != link_overrides.end()) return it->second;
  }
  return default_link;
}

const NodeFaultProfile& FaultPlan::node(NodeId n) const {
  if (!node_overrides.empty()) {
    auto it = node_overrides.find(n);
    if (it != node_overrides.end()) return it->second;
  }
  return default_node;
}

void FaultPlan::set_link(NodeId a, NodeId b, FaultProfile profile) {
  link_overrides[std::minmax(a, b)] = profile;
}

std::uint64_t FaultPlan::flow_salt(SimTime now) const {
  if (route_flap_period == 0) return 0;
  return mix64(0x9e3779b97f4a7c15ULL ^ (now / route_flap_period));
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed), rng_(seed) {}

void FaultInjector::set_plan(FaultPlan plan) {
  plan_ = plan.sanitized();
  // `active_` gates the per-hop checks; the transient-loss shim is drawn
  // from the engine RNG regardless, so exclude it from the gate.
  FaultPlan gate = plan_;
  gate.transient_loss = 0.0;
  active_ = !gate.inert();
  reset_state();
}

void FaultInjector::set_transient_loss(double p) {
  plan_.transient_loss = sanitize_probability(p, "set_transient_loss");
}

void FaultInjector::reset_state() {
  buckets_.clear();
  rng_ = Rng(seed_);
}

void FaultInjector::reset_state(std::uint64_t seed) {
  seed_ = seed;
  reset_state();
}

bool FaultInjector::lose_on_link(NodeId a, NodeId b) {
  const FaultProfile& p = plan_.link(a, b);
  bool fired = p.loss > 0.0 && rng_.chance(p.loss);
  if (fired && counters_ != nullptr) counters_->link_loss->inc();
  return fired;
}

void FaultInjector::mangle_payload(NodeId a, NodeId b, Bytes& payload) {
  if (payload.empty()) return;
  const FaultProfile& p = plan_.link(a, b);
  if (p.truncate > 0.0 && rng_.chance(p.truncate)) {
    if (counters_ != nullptr) counters_->payload_truncates->inc();
    payload.resize(payload.size() / 2);
    if (payload.empty()) return;
  }
  if (p.corrupt > 0.0 && rng_.chance(p.corrupt)) {
    if (counters_ != nullptr) counters_->payload_corruptions->inc();
    payload[rng_.index(payload.size())] ^= 0xff;
  }
}

bool FaultInjector::duplicate_delivery(NodeId a, NodeId b) {
  const FaultProfile& p = plan_.link(a, b);
  bool fired = p.duplicate > 0.0 && rng_.chance(p.duplicate);
  if (fired && counters_ != nullptr) counters_->duplicates->inc();
  return fired;
}

bool FaultInjector::reorder_delivery(NodeId a, NodeId b) {
  const FaultProfile& p = plan_.link(a, b);
  bool fired = p.reorder > 0.0 && rng_.chance(p.reorder);
  if (fired && counters_ != nullptr) counters_->reorders->inc();
  return fired;
}

bool FaultInjector::allow_icmp(NodeId router, SimTime now) {
  const NodeFaultProfile& np = plan_.node(router);
  if (np.icmp_blackhole) {
    if (counters_ != nullptr) counters_->icmp_blackholed->inc();
    return false;
  }
  if (np.icmp_rate_per_sec <= 0.0) return true;
  TokenBucket& bucket = buckets_[router];
  if (!bucket.primed) {
    bucket.primed = true;
    bucket.tokens = np.icmp_burst;
    bucket.last = now;
  } else {
    double elapsed_s = static_cast<double>(now - bucket.last) / 1000.0;
    bucket.tokens = std::min(np.icmp_burst, bucket.tokens + elapsed_s * np.icmp_rate_per_sec);
    bucket.last = now;
  }
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  if (counters_ != nullptr) counters_->icmp_rate_limited->inc();
  return false;
}

bool FaultInjector::mgmt_unreachable() {
  bool fired = plan_.mgmt_drop > 0.0 && rng_.chance(plan_.mgmt_drop);
  if (fired && counters_ != nullptr) counters_->mgmt_drops->inc();
  return fired;
}

bool FaultInjector::truncate_banner() {
  bool fired = plan_.banner_truncate > 0.0 && rng_.chance(plan_.banner_truncate);
  if (fired && counters_ != nullptr) counters_->banner_truncates->inc();
  return fired;
}

namespace {

void mix_profile(FingerprintBuilder& fp, const FaultProfile& p) {
  fp.mix(p.loss);
  fp.mix(p.duplicate);
  fp.mix(p.reorder);
  fp.mix(p.truncate);
  fp.mix(p.corrupt);
}

void mix_node_profile(FingerprintBuilder& fp, const NodeFaultProfile& p) {
  fp.mix(p.icmp_blackhole);
  fp.mix(p.icmp_rate_per_sec);
  fp.mix(p.icmp_burst);
}

}  // namespace

std::uint64_t FaultPlan::fingerprint() const {
  FingerprintBuilder fp;
  fp.mix(transient_loss);
  mix_profile(fp, default_link);
  fp.mix(static_cast<std::uint64_t>(link_overrides.size()));
  for (const auto& [key, profile] : link_overrides) {
    fp.mix(static_cast<std::uint64_t>(key.first));
    fp.mix(static_cast<std::uint64_t>(key.second));
    mix_profile(fp, profile);
  }
  mix_node_profile(fp, default_node);
  fp.mix(static_cast<std::uint64_t>(node_overrides.size()));
  for (const auto& [node, profile] : node_overrides) {
    fp.mix(static_cast<std::uint64_t>(node));
    mix_node_profile(fp, profile);
  }
  fp.mix(static_cast<std::uint64_t>(route_flap_period));
  fp.mix(mgmt_drop);
  fp.mix(banner_truncate);
  return fp.digest();
}

}  // namespace cen::sim
