#include "netsim/topology.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "core/fingerprint.hpp"
#include "core/rng.hpp"
#include "netsim/compact.hpp"

namespace cen::sim {

Topology Topology::from_compact(std::shared_ptr<const CompactTopology> compact) {
  if (compact == nullptr) throw std::invalid_argument("from_compact: null backend");
  Topology t;
  t.compact_ = std::move(compact);
  return t;
}

NodeId Topology::add_node(std::string name, net::Ipv4Address ip, RouterProfile profile) {
  if (compact_ != nullptr) {
    throw std::logic_error("Topology::add_node: compact backend is immutable");
  }
  Node n;
  n.id = static_cast<NodeId>(nodes_.size());
  n.name = std::move(name);
  n.ip = ip;
  n.profile = profile;
  nodes_.push_back(std::move(n));
  adjacency_.emplace_back();
  ip_index_.emplace(ip.value(), nodes_.back().id);
  // Invalidate locally only: replicas sharing a frozen snapshot keep
  // their own (still-valid-for-them) reference.
  frozen_paths_.reset();
  local_paths_.clear();
  return nodes_.back().id;
}

void Topology::add_link(NodeId a, NodeId b) {
  if (compact_ != nullptr) {
    throw std::logic_error("Topology::add_link: compact backend is immutable");
  }
  if (a >= nodes_.size() || b >= nodes_.size()) throw std::out_of_range("bad node id");
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  frozen_paths_.reset();
  local_paths_.clear();
}

const Node& Topology::node(NodeId id) const {
  if (compact_ != nullptr) {
    throw std::logic_error("Topology::node: not available on a compact backend");
  }
  return nodes_.at(id);
}

Node& Topology::node(NodeId id) {
  if (compact_ != nullptr) {
    throw std::logic_error("Topology::node: not available on a compact backend");
  }
  return nodes_.at(id);
}

net::Ipv4Address Topology::node_ip(NodeId id) const {
  if (compact_ != nullptr) return compact_->ip(id);
  return nodes_.at(id).ip;
}

const RouterProfile& Topology::node_profile(NodeId id) const {
  if (compact_ != nullptr) return compact_->profile(id);
  return nodes_.at(id).profile;
}

std::string_view Topology::node_name(NodeId id) const {
  if (compact_ != nullptr) return compact_->name(id);
  return nodes_.at(id).name;
}

const std::vector<censor::ServiceBanner>& Topology::node_services(NodeId id) const {
  if (compact_ != nullptr) return compact_->services(id);
  return nodes_.at(id).services;
}

std::size_t Topology::node_count() const {
  return compact_ != nullptr ? compact_->node_count() : nodes_.size();
}

std::optional<NodeId> Topology::find_by_ip(net::Ipv4Address ip) const {
  if (compact_ != nullptr) return compact_->find_by_ip(ip);
  auto it = ip_index_.find(ip.value());
  if (it == ip_index_.end()) return std::nullopt;
  return it->second;
}

std::span<const NodeId> Topology::neighbors(NodeId id) const {
  if (compact_ != nullptr) return compact_->neighbors(id);
  const std::vector<NodeId>& nbrs = adjacency_.at(id);
  return std::span<const NodeId>(nbrs.data(), nbrs.size());
}

void Topology::freeze_paths() const {
  if (local_paths_.empty() && frozen_paths_ != nullptr) return;
  auto merged = std::make_shared<PathMap>();
  if (frozen_paths_ != nullptr) *merged = *frozen_paths_;
  merged->reserve(merged->size() + local_paths_.size());
  for (const auto& [key, paths] : local_paths_) merged->insert_or_assign(key, paths);
  frozen_paths_ = std::move(merged);
  local_paths_.clear();
}

const std::vector<std::vector<NodeId>>& Topology::equal_cost_paths(NodeId src,
                                                                   NodeId dst) const {
  const PathKey key{src, dst};
  if (frozen_paths_ != nullptr) {
    auto it = frozen_paths_->find(key);
    if (it != frozen_paths_->end()) {
      ++path_cache_hits_;
      return *it->second;
    }
  }
  auto it = local_paths_.find(key);
  if (it != local_paths_.end()) {
    ++path_cache_hits_;
    return *it->second;
  }
  ++path_cache_misses_;

  // BFS from src recording distances, then enumerate all shortest paths by
  // walking the BFS DAG from dst back to src.
  std::vector<int> dist(node_count(), -1);
  std::deque<NodeId> queue;
  dist[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : neighbors(u)) {
      if (dist[v] == -1) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }

  std::vector<std::vector<NodeId>> paths;
  if (dist[dst] != -1) {
    // Iterative DFS over predecessors on shortest paths.
    std::vector<std::vector<NodeId>> stack;
    stack.push_back({dst});
    while (!stack.empty() && paths.size() < kMaxEcmpPaths) {
      std::vector<NodeId> partial = std::move(stack.back());
      stack.pop_back();
      NodeId head = partial.back();
      if (head == src) {
        std::vector<NodeId> full(partial.rbegin(), partial.rend());
        paths.push_back(std::move(full));
        continue;
      }
      // Deterministic order: ascending neighbour id.
      std::vector<NodeId> preds;
      for (NodeId v : neighbors(head)) {
        if (dist[v] == dist[head] - 1) preds.push_back(v);
      }
      std::sort(preds.begin(), preds.end(), std::greater<NodeId>());
      for (NodeId v : preds) {
        std::vector<NodeId> next = partial;
        next.push_back(v);
        stack.push_back(std::move(next));
      }
    }
    std::sort(paths.begin(), paths.end());
  }
  auto shared = std::make_shared<const EcmpPaths>(std::move(paths));
  const EcmpPaths& ref = *shared;
  local_paths_.emplace(key, std::move(shared));
  return ref;
}

const std::vector<NodeId>& Topology::route(NodeId src, NodeId dst,
                                           std::uint64_t flow_hash) const {
  const auto& paths = equal_cost_paths(src, dst);
  if (paths.empty()) {
    static const std::vector<NodeId> kEmpty;
    return kEmpty;
  }
  return paths[flow_hash % paths.size()];
}

const std::vector<NodeId>& Topology::route(NodeId src, NodeId dst,
                                           std::uint64_t flow_hash,
                                           std::uint64_t salt) const {
  return route(src, dst, salt == 0 ? flow_hash : mix64(flow_hash ^ salt));
}

std::uint64_t Topology::fingerprint() const {
  if (compact_ != nullptr) return compact_->fingerprint();
  FingerprintBuilder fp;
  fp.mix(static_cast<std::uint64_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    fp.mix(n.name);
    fp.mix(static_cast<std::uint64_t>(n.ip.value()));
    fp.mix(n.profile.responds_icmp);
    fp.mix(static_cast<std::uint64_t>(n.profile.quote_policy));
    fp.mix(n.profile.rewrite_tos.has_value());
    if (n.profile.rewrite_tos) fp.mix(static_cast<std::uint64_t>(*n.profile.rewrite_tos));
    fp.mix(n.profile.clears_df_flag);
    fp.mix(static_cast<std::uint64_t>(n.services.size()));
    for (const censor::ServiceBanner& s : n.services) {
      fp.mix(static_cast<std::uint64_t>(s.port));
      fp.mix(s.protocol);
      fp.mix(s.banner);
    }
  }
  for (const std::vector<NodeId>& nbrs : adjacency_) {
    fp.mix(static_cast<std::uint64_t>(nbrs.size()));
    for (NodeId nb : nbrs) fp.mix(static_cast<std::uint64_t>(nb));
  }
  return fp.digest();
}

}  // namespace cen::sim
