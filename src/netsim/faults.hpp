// Fault-injection layer for the network simulator.
//
// The paper's tools are engineered around hostile network conditions:
// CenTrace retries probes 3x to absorb transient loss and repeats sweeps
// 11x to tame ECMP path variance (§4), and real vantage points routinely
// see rate-limited ICMP, flaky links and partial application responses.
// This layer makes those conditions first-class and deterministic so the
// tool-side resilience machinery can actually be stress-tested:
//
//   - per-link `FaultProfile`: packet loss, duplication, reordered (late)
//     delivery, payload truncation and corruption;
//   - per-node `NodeFaultProfile`: ICMP Time Exceeded blackholing and
//     token-bucket rate limiting (the classic cause of silent hops);
//   - scheduled route flapping: a time-epoch salt folded into the flow
//     hash so a flow's ECMP path swaps mid-measurement (path churn);
//   - management-plane faults: dropped and truncated banner grabs
//     (CenProbe's partial-response degradation).
//
// Every random draw flows through a dedicated seeded `Rng`, independent
// of the engine's main generator, and every roll is gated on its
// probability being non-zero — an all-zero (inert) plan consumes no
// randomness and leaves the simulation byte-identical to a network with
// no fault layer at all.
#pragma once

#include <cstdint>
#include <utility>

#include "core/bytes.hpp"
#include "core/clock.hpp"
#include "core/flat_map.hpp"
#include "core/rng.hpp"
#include "netsim/topology.hpp"

namespace cen::obs {
struct FaultCounters;
}

namespace cen::sim {

/// Validate a probability: throws std::invalid_argument on NaN, clamps
/// everything else to [0, 1]. `what` names the offending knob in the
/// exception message.
double sanitize_probability(double p, const char* what);

/// Packet-level faults applied per link traversal.
struct FaultProfile {
  /// Probability the packet dies on this link (per traversal, both
  /// directions).
  double loss = 0.0;
  /// Probability a delivered reply is duplicated to the client.
  double duplicate = 0.0;
  /// Probability a delivered reply arrives "late" — after packets that
  /// were sent later (the client observes a reordered capture).
  double reorder = 0.0;
  /// Probability the payload is truncated to half its length in transit.
  double truncate = 0.0;
  /// Probability one payload byte is flipped in transit.
  double corrupt = 0.0;

  bool inert() const;
  /// Clamped copy; throws std::invalid_argument on NaN fields.
  FaultProfile sanitized(const char* what) const;
};

/// ICMP-generation faults applied per router.
struct NodeFaultProfile {
  /// The router never answers TTL exhaustion (on top of its RouterProfile).
  bool icmp_blackhole = false;
  /// Token-bucket rate limit on ICMP Time Exceeded generation: tokens
  /// refill at this rate (0 = unlimited) up to `icmp_burst`, one token per
  /// message. Mirrors the per-interface ICMP rate limiting of real gear.
  double icmp_rate_per_sec = 0.0;
  double icmp_burst = 4.0;

  bool inert() const;
  NodeFaultProfile sanitized(const char* what) const;
};

/// A complete fault configuration for a Network. Pure data: install it
/// with Network::set_fault_plan (which sanitizes and resets all runtime
/// fault state). The default-constructed plan is inert.
struct FaultPlan {
  /// Whole-walk transient loss, drawn from the *engine* RNG at the start
  /// of each forward walk — the legacy `set_transient_loss` behaviour,
  /// kept bit-compatible with the pre-fault-layer simulator.
  double transient_loss = 0.0;

  /// Faults applied to every link without an override.
  FaultProfile default_link;
  /// Per-link overrides, keyed by normalized (min, max) node pair. Flat
  /// sorted-vector maps: key-ordered iteration (fingerprint/inert depend
  /// on it) with contiguous storage on the per-hop lookup path.
  core::FlatMap<std::pair<NodeId, NodeId>, FaultProfile> link_overrides;

  /// ICMP faults applied to every router without an override.
  NodeFaultProfile default_node;
  core::FlatMap<NodeId, NodeFaultProfile> node_overrides;

  /// Route flapping: every `route_flap_period` of simulated time the
  /// ECMP flow-hash salt changes, swapping flows onto different
  /// equal-cost paths (0 = stable routing).
  SimTime route_flap_period = 0;

  /// Management-plane faults (CenProbe's world): probability a banner
  /// grab attempt times out, and probability a grabbed banner comes back
  /// truncated to half length.
  double mgmt_drop = 0.0;
  double banner_truncate = 0.0;

  bool inert() const;
  FaultPlan sanitized() const;

  /// Digest over every knob, including overrides — a campaign cache-key
  /// component: editing any fault parameter must change it.
  std::uint64_t fingerprint() const;

  /// Effective profile for the link a—b (override or default). Order of
  /// the endpoints does not matter.
  const FaultProfile& link(NodeId a, NodeId b) const;
  const NodeFaultProfile& node(NodeId n) const;
  /// Register a per-link override (normalizes the key).
  void set_link(NodeId a, NodeId b, FaultProfile profile);

  /// Flow-hash salt for the routing epoch containing `now` (0 when route
  /// flapping is disabled).
  std::uint64_t flow_salt(SimTime now) const;
};

/// Runtime fault state: the sanitized plan plus its dedicated RNG and the
/// per-router ICMP token buckets. Owned by Network; the engine consults
/// it at every fault point. All methods are cheap no-ops under an inert
/// plan and never consume randomness for zero-probability faults, which
/// is what makes the layer provably inert when disabled.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed);

  /// Install a plan: sanitize, reset token buckets, reseed the fault RNG
  /// (so identical plans replay identically on the same network).
  void set_plan(FaultPlan plan);
  const FaultPlan& plan() const { return plan_; }
  /// Legacy shim: update only the transient-loss knob (clamped; NaN
  /// throws), preserving the rest of the plan and all runtime state.
  void set_transient_loss(double p);

  /// True when any fault other than the legacy transient loss is enabled
  /// (the engine's fast gate around per-hop fault checks).
  bool active() const { return active_; }

  /// The packet dies traversing link a—b.
  bool lose_on_link(NodeId a, NodeId b);
  /// Apply truncation/corruption of link a—b to a payload in transit.
  void mangle_payload(NodeId a, NodeId b, Bytes& payload);
  /// A reply delivered over link a—b is duplicated to the client.
  bool duplicate_delivery(NodeId a, NodeId b);
  /// A reply delivered over link a—b arrives late (reordered capture).
  bool reorder_delivery(NodeId a, NodeId b);
  /// May router `router` emit an ICMP Time Exceeded at `now`? Consumes a
  /// token when rate limiting is configured.
  bool allow_icmp(NodeId router, SimTime now);
  /// Flow-hash salt for the current routing epoch.
  std::uint64_t flow_salt(SimTime now) const { return plan_.flow_salt(now); }

  /// One management-plane request attempt is dropped.
  bool mgmt_unreachable();
  /// A grabbed banner is truncated.
  bool truncate_banner();

  /// Reset token buckets and rewind the fault RNG to its seed.
  void reset_state();
  /// Rebase the fault RNG on a new seed, then reset. Used by hermetic
  /// measurement epochs (Network::reset_epoch) so each parallel task
  /// replays its own independent fault substream.
  void reset_state(std::uint64_t seed);

  /// Attach (or detach with nullptr) per-fault-type fire counters.
  /// Counting never touches the fault RNG, so an observed run draws the
  /// exact same random sequence as an unobserved one.
  void set_counters(obs::FaultCounters* counters) { counters_ = counters; }

 private:
  struct TokenBucket {
    double tokens = 0.0;
    SimTime last = 0;
    bool primed = false;
  };

  FaultPlan plan_;
  std::uint64_t seed_;
  Rng rng_;
  core::FlatMap<NodeId, TokenBucket> buckets_;
  bool active_ = false;
  obs::FaultCounters* counters_ = nullptr;
};

}  // namespace cen::sim
