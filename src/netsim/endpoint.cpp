#include "netsim/endpoint.hpp"

#include <algorithm>

#include "censor/dpi.hpp"
#include "core/rng.hpp"
#include "core/strings.hpp"
#include "net/dns.hpp"
#include "net/http.hpp"
#include "net/tls.hpp"

namespace cen::sim {

std::string legitimate_content_for(std::string_view domain) {
  return "<html><body>legitimate content for " + std::string(domain) + "</body></html>";
}

const std::shared_ptr<const EndpointProfile>& EndpointHost::empty_profile() {
  static const std::shared_ptr<const EndpointProfile> kEmpty =
      std::make_shared<const EndpointProfile>();
  return kEmpty;
}

bool EndpointHost::hosts(std::string_view host) const {
  std::string h = ascii_lower(host);
  for (const std::string& d : profile_->hosted_domains) {
    std::string dom = ascii_lower(d);
    if (h == dom) return true;
    if (profile_->serves_subdomains && ends_with(h, "." + dom)) return true;
  }
  return false;
}

LocalFilterAction EndpointHost::local_filter_verdict(BytesView payload) const {
  if (profile_->local_filter == LocalFilterAction::kNone || payload.empty()) {
    return LocalFilterAction::kNone;
  }
  std::optional<std::string> name;
  if (censor::looks_like_tls(payload)) {
    censor::TlsQuirks lenient;
    name = censor::dpi_parse_sni(payload, lenient);
  } else {
    net::ParsedHttpRequest req = net::parse_http_request(to_string(payload));
    if (req.host) name = req.host;
  }
  if (name && profile_->local_filter_rules.matches(*name)) return profile_->local_filter;
  return LocalFilterAction::kNone;
}

AppReply EndpointHost::handle_payload(BytesView payload) const {
  if (payload.empty()) return {};
  if (profile_->static_payload) {
    AppReply r;
    r.kind = AppReply::Kind::kData;
    r.data = to_bytes(
        net::HttpResponse::make(200, "OK", *profile_->static_payload).serialize());
    return r;
  }
  if (censor::looks_like_tls(payload)) return handle_tls(payload);
  if (profile_->is_dns_resolver && net::looks_like_tcp_dns(payload)) {
    return handle_dns(payload);
  }
  return handle_http(to_string(payload));
}

AppReply EndpointHost::handle_udp_payload(BytesView payload, std::uint16_t dst_port) const {
  AppReply r;
  if (!profile_->is_dns_resolver || dst_port != 53 || payload.empty()) return r;
  net::DnsMessage query;
  try {
    query = net::DnsMessage::parse(payload);  // bare DNS, no TCP framing
  } catch (const ParseError&) {
    return r;
  }
  if (query.is_response || query.questions.empty()) return r;
  // Reuse the TCP resolver logic via re-framing, then strip the frame.
  AppReply framed = handle_dns(net::DnsMessage(query).serialize_tcp());
  if (framed.kind != AppReply::Kind::kData) return r;
  ByteReader strip(framed.data);
  strip.skip(2);  // drop the RFC 7766 length prefix
  r.kind = AppReply::Kind::kData;
  r.data = strip.raw(strip.remaining());
  return r;
}

AppReply EndpointHost::handle_dns(BytesView raw) const {
  AppReply r;
  net::DnsMessage query;
  try {
    query = net::DnsMessage::parse_tcp(raw);
  } catch (const ParseError&) {
    return r;  // malformed query: resolver stays silent
  }
  if (query.is_response || query.questions.empty()) return r;
  const std::string& qname = query.questions.front().qname;
  net::Ipv4Address address;
  bool found = false;
  for (const auto& [name, ip] : profile_->dns_zone) {
    if (iequals(name, qname)) {
      address = ip;
      found = true;
      break;
    }
  }
  if (!found) {
    // Public-resolver behaviour: any name resolves, deterministically.
    std::uint64_t h = mix64(std::hash<std::string>{}(ascii_lower(qname)));
    address = net::Ipv4Address(0xc6000000u | static_cast<std::uint32_t>(h & 0xffffff));
  }
  r.kind = AppReply::Kind::kData;
  r.data = net::make_dns_response(query, address).serialize_tcp();
  return r;
}

namespace {
AppReply http_reply(int status, const std::string& body) {
  AppReply r;
  r.kind = AppReply::Kind::kData;
  r.data = to_bytes(net::HttpResponse::make(status, net::http_reason(status), body).serialize());
  return r;
}
}  // namespace

AppReply EndpointHost::handle_http(std::string_view raw) const {
  net::ParsedHttpRequest req = net::parse_http_request(raw);
  if (!req.parse_ok) return http_reply(400, "<html>Bad Request</html>");
  if (profile_->strict_http) {
    if (!req.line_delims_valid) return http_reply(400, "<html>Bad Request</html>");
    if (!req.method_valid) return http_reply(501, "<html>Not Implemented</html>");
    if (!req.version_valid) return http_reply(505, "<html>HTTP Version Not Supported</html>");
  } else {
    // Even lenient servers need a plausible method token.
    if (req.method.empty()) return http_reply(400, "<html>Bad Request</html>");
  }
  if (!req.host) {
    // HTTP/1.1 requires Host; lenient servers fall back to the default vhost.
    if (profile_->strict_http) return http_reply(400, "<html>Bad Request: missing Host</html>");
    return http_reply(200, legitimate_content_for(profile_->hosted_domains.front()));
  }
  if (hosts(*req.host)) {
    // A non-root path still serves content (distinct page, same marker).
    return http_reply(200, legitimate_content_for(*req.host));
  }
  if (profile_->reject_unknown_host) return http_reply(403, "<html>Forbidden</html>");
  if (profile_->default_vhost_for_unknown) {
    return http_reply(200, legitimate_content_for(profile_->hosted_domains.front()));
  }
  // Default-vhost servers answer 301 to their canonical name, a behaviour
  // the paper observed defeating hostname-mutation circumvention.
  return http_reply(301, "<html>Moved to " + profile_->hosted_domains.front() + "</html>");
}

AppReply EndpointHost::handle_tls(BytesView raw) const {
  AppReply r;
  r.kind = AppReply::Kind::kData;

  net::ClientHello ch;
  try {
    ch = net::ClientHello::parse(raw);
  } catch (const ParseError&) {
    r.data = net::TlsAlert{net::TlsAlert::kDecodeError}.serialize();
    return r;
  }

  // Version negotiation: endpoints here speak TLS 1.0–1.3.
  std::vector<net::TlsVersion> offered = ch.supported_versions();
  net::TlsVersion chosen = net::TlsVersion::kTls10;
  bool any = false;
  for (net::TlsVersion v : offered) {
    if (static_cast<std::uint16_t>(v) < static_cast<std::uint16_t>(net::TlsVersion::kTls10) ||
        static_cast<std::uint16_t>(v) > static_cast<std::uint16_t>(net::TlsVersion::kTls13)) {
      continue;
    }
    if (!any || static_cast<std::uint16_t>(v) > static_cast<std::uint16_t>(chosen)) {
      chosen = v;
      any = true;
    }
  }
  if (!any) {
    r.data = net::TlsAlert{net::TlsAlert::kProtocolVersion}.serialize();
    return r;
  }

  // Cipher negotiation: endpoints accept the standard suite list except
  // export-grade RC4-MD5, which modern servers refuse.
  std::uint16_t suite = 0;
  for (std::uint16_t cs : ch.cipher_suites) {
    if (cs == 0x0004) continue;  // TLS_RSA_WITH_RC4_128_MD5
    bool known = std::any_of(net::standard_cipher_suites().begin(),
                             net::standard_cipher_suites().end(),
                             [&](const net::CipherSuite& s) { return s.code == cs; });
    if (known) {
      suite = cs;
      break;
    }
  }
  if (suite == 0) {
    r.data = net::TlsAlert{net::TlsAlert::kHandshakeFailure}.serialize();
    return r;
  }

  std::optional<std::string> sni = ch.sni();
  std::string cert_domain = profile_->hosted_domains.front();
  if (sni && !sni->empty()) {
    if (hosts(*sni)) {
      cert_domain = *sni;
    } else if (profile_->reject_unknown_sni) {
      r.data = net::TlsAlert{net::TlsAlert::kUnrecognizedName}.serialize();
      return r;
    }
  }

  net::ServerHello sh;
  sh.version = chosen;
  sh.cipher_suite = suite;
  sh.certificate_domain = cert_domain;
  r.data = sh.serialize();
  return r;
}

}  // namespace cen::sim
