// Compact structure-of-arrays topology backend (ISSUE 8).
//
// The classic `Topology` stores a `Node` struct per router — a heap
// string, a services vector and a per-node adjacency vector. At the
// worldgen scales (a million endpoint hosts, thousands of ASes) that
// representation costs hundreds of bytes per node and scatters the hot
// per-hop lookups across the heap. `CompactTopology` flattens the same
// information into contiguous parallel arrays:
//
//   ips_[id]          4 B   node address
//   profiles_[id]     8 B   RouterProfile (POD, no indirection)
//   name_off/len_[id] 8 B   slice into one interned string arena
//   adj_off_[id]      4 B   CSR row start; neighbours live in adj_
//   services_         sparse FlatMap (most nodes expose nothing)
//
// All ids are 32-bit (`NodeId`); the builder guards the id and link-count
// overflow edges explicitly. The finished object is immutable and shared
// via shared_ptr<const CompactTopology>, which is what keeps worker
// replicas refcount-bump cheap under the COW clone()/reset_epoch()
// contract: a compact-backed `Topology` copies as two shared_ptr bumps.
//
// fingerprint() reproduces Topology::fingerprint() bit-for-bit for
// equivalent content, so campaign cache keys do not depend on which
// backend built the network; inflate() materializes a classic Topology
// for the randomized equivalence tests.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/flat_map.hpp"
#include "netsim/topology.hpp"

namespace cen::sim {

class CompactTopology {
 public:
  std::size_t node_count() const { return ips_.size(); }
  std::size_t link_count() const { return links_.size(); }

  net::Ipv4Address ip(NodeId id) const { return net::Ipv4Address(ips_[id]); }
  const RouterProfile& profile(NodeId id) const { return profiles_[id]; }
  std::string_view name(NodeId id) const {
    return std::string_view(name_arena_).substr(name_off_[id], name_len_[id]);
  }
  std::span<const NodeId> neighbors(NodeId id) const {
    return std::span<const NodeId>(adj_.data() + adj_off_[id],
                                   adj_off_[id + 1] - adj_off_[id]);
  }
  /// Management services; returns a shared empty vector for the (vast)
  /// majority of nodes that expose none.
  const std::vector<censor::ServiceBanner>& services(NodeId id) const;
  std::optional<NodeId> find_by_ip(net::Ipv4Address ip) const;
  /// Links in insertion order (undirected, as given to the builder).
  const std::vector<std::pair<NodeId, NodeId>>& links() const { return links_; }

  /// Bit-identical to Topology::fingerprint() over equivalent content.
  std::uint64_t fingerprint() const;

  /// Resident bytes of the arrays (capacity-based, heap children included).
  std::size_t bytes() const;

  /// Materialize an equivalent classic (pointer-based) Topology — the
  /// reference object the equivalence tests diff this backend against.
  Topology inflate() const;

 private:
  friend class CompactTopologyBuilder;

  std::vector<std::uint32_t> ips_;
  std::vector<RouterProfile> profiles_;
  /// Interned names: identical strings share one arena slice.
  std::vector<std::uint32_t> name_off_;
  std::vector<std::uint32_t> name_len_;
  std::string name_arena_;
  /// CSR adjacency: neighbours of id are adj_[adj_off_[id] .. adj_off_[id+1]).
  std::vector<std::uint32_t> adj_off_;
  std::vector<NodeId> adj_;
  /// Original undirected link list (adjacency order + inflate() fidelity).
  std::vector<std::pair<NodeId, NodeId>> links_;
  /// Sparse management services (FlatMap: sorted, shareable, cheap to copy).
  core::FlatMap<NodeId, std::vector<censor::ServiceBanner>> services_;
  /// (ip, id) sorted by ip then id; first entry per ip wins, mirroring the
  /// classic ip_index_'s first-wins emplace.
  std::vector<std::pair<std::uint32_t, NodeId>> ip_index_;
};

/// Hard ceiling on node ids: ids are 32-bit and kInvalidNode is reserved.
constexpr std::size_t kMaxCompactNodes = 0xfffffffeull;

/// Accumulates nodes/links/services, then freezes them into an immutable
/// CompactTopology. The builder is single-use: build() leaves it empty.
class CompactTopologyBuilder {
 public:
  /// `max_nodes` lowers the 32-bit id ceiling (tests exercise the
  /// overflow guard without four billion inserts).
  explicit CompactTopologyBuilder(std::size_t max_nodes = kMaxCompactNodes)
      : max_nodes_(std::min(max_nodes, kMaxCompactNodes)) {}

  void reserve(std::size_t nodes, std::size_t link_hint);
  /// Throws std::length_error once the id space (max_nodes) is exhausted.
  NodeId add_node(std::string_view name, net::Ipv4Address ip, RouterProfile profile = {});
  /// Throws std::out_of_range on unknown ids, std::length_error when the
  /// CSR offset table would overflow 32 bits.
  void add_link(NodeId a, NodeId b);
  void add_service(NodeId id, censor::ServiceBanner banner);

  std::size_t node_count() const { return ips_.size(); }
  std::shared_ptr<const CompactTopology> build();

 private:
  std::size_t max_nodes_;
  std::vector<std::uint32_t> ips_;
  std::vector<RouterProfile> profiles_;
  std::vector<std::uint32_t> name_off_;
  std::vector<std::uint32_t> name_len_;
  std::string name_arena_;
  core::FlatMap<std::string, std::uint32_t> interned_;
  std::vector<std::pair<NodeId, NodeId>> links_;
  core::FlatMap<NodeId, std::vector<censor::ServiceBanner>> services_;
};

}  // namespace cen::sim
