// Simulated network topology: routers, links, and ECMP path computation.
//
// Paths between a client and an endpoint are all shortest paths in the
// link graph; a flow's 5-tuple hash picks one, mirroring per-flow ECMP
// load balancing. Because CenTrace opens a fresh TCP connection (fresh
// source port) per probe (§4.1), consecutive probes can ride different
// paths — the path-variance problem the tool tames with repetition.
//
// Each router carries a profile controlling the ICMP behaviours the paper
// measures: whether it answers TTL exhaustion at all, how much of the
// original datagram it quotes (RFC 792 vs RFC 1812), and whether it
// rewrites the IP TOS / flags of transiting packets (§4.3 observes TOS
// deltas in 32% of quoted packets).
//
// Two storage backends share this interface:
//   classic  mutable per-node `Node` structs (hand-built scenarios,
//            tests that edit profiles in place);
//   compact  an immutable shared CompactTopology (structure-of-arrays,
//            CSR adjacency — see netsim/compact.hpp), used by worldgen
//            for million-node networks. Copying a compact-backed
//            Topology is a refcount bump.
// The narrow accessors (node_ip / node_profile / node_name /
// node_services, span-returning neighbors) work on both; the mutable
// node() reference and add_node/add_link are classic-only and throw
// std::logic_error on a compact backend.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "censor/device.hpp"  // ServiceBanner, for router management planes
#include "core/flat_map.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"

namespace cen::sim {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xffffffffu;

struct RouterProfile {
  bool responds_icmp = true;
  net::QuotePolicy quote_policy = net::QuotePolicy::kRfc792;
  /// If set, the router rewrites the TOS byte of packets it forwards.
  std::optional<std::uint8_t> rewrite_tos;
  /// Quirky gear that clears the DF flag of transiting packets.
  bool clears_df_flag = false;
};

struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  net::Ipv4Address ip;
  RouterProfile profile;
  /// Management services exposed on this router's IP (most expose none;
  /// some answer SSH/Telnet with generic banners — the paper's 68-of-163
  /// "has open ports but no vendor label" population).
  std::vector<censor::ServiceBanner> services;
};

class CompactTopology;

/// Maximum number of equal-cost paths enumerated per (src, dst) pair.
constexpr std::size_t kMaxEcmpPaths = 128;

class Topology {
 public:
  Topology() = default;
  /// Wrap an immutable compact topology (shared, zero-copy).
  static Topology from_compact(std::shared_ptr<const CompactTopology> compact);

  /// Classic-backend mutation; throws std::logic_error on a compact backend.
  NodeId add_node(std::string name, net::Ipv4Address ip, RouterProfile profile = {});
  /// Undirected link between two existing nodes (classic backend only).
  void add_link(NodeId a, NodeId b);

  /// Whole-node access (classic backend only — compact nodes have no
  /// materialized Node struct; use the narrow accessors below).
  const Node& node(NodeId id) const;
  Node& node(NodeId id);

  /// Narrow per-field accessors, valid on both backends. These are what
  /// the engine's hot paths use.
  net::Ipv4Address node_ip(NodeId id) const;
  const RouterProfile& node_profile(NodeId id) const;
  std::string_view node_name(NodeId id) const;
  const std::vector<censor::ServiceBanner>& node_services(NodeId id) const;

  bool compact() const { return compact_ != nullptr; }
  const std::shared_ptr<const CompactTopology>& compact_backend() const { return compact_; }

  std::size_t node_count() const;
  std::optional<NodeId> find_by_ip(net::Ipv4Address ip) const;
  /// Direct neighbours of a node (link adjacency).
  std::span<const NodeId> neighbors(NodeId id) const;

  /// All shortest paths src→dst (inclusive of both), capped at
  /// kMaxEcmpPaths, in a deterministic order. Cached; the cache is
  /// invalidated by add_link/add_node.
  const std::vector<std::vector<NodeId>>& equal_cost_paths(NodeId src, NodeId dst) const;

  /// Pick the path a given flow hash rides.
  const std::vector<NodeId>& route(NodeId src, NodeId dst, std::uint64_t flow_hash) const;

  /// Route with a routing-epoch salt folded in (the fault layer's route
  /// flapping). A zero salt selects exactly the unsalted path.
  const std::vector<NodeId>& route(NodeId src, NodeId dst, std::uint64_t flow_hash,
                                   std::uint64_t salt) const;

  /// Structural digest over nodes (name, IP, router profile, services)
  /// and links — a campaign cache-key component: any topology edit must
  /// change it. Backend-independent: a compact topology and its classic
  /// inflation digest identically.
  std::uint64_t fingerprint() const;

  /// Promote every locally cached (src, dst) path list into an immutable
  /// shared snapshot. Copies of this topology (worker replicas) then share
  /// the snapshot by reference instead of deep-copying the cache — the
  /// dominant cost of the old Network::clone(). Logically const: the path
  /// cache is memoization, not topology state. Safe to share across
  /// threads because the snapshot is never mutated after creation; paths
  /// computed *after* the freeze land in the instance-local cache.
  void freeze_paths() const;

  /// Path-cache effectiveness counters (host-scheduling dependent on
  /// replicas — export them wall-domain only, never into deterministic
  /// snapshots).
  std::uint64_t path_cache_hits() const { return path_cache_hits_; }
  std::uint64_t path_cache_misses() const { return path_cache_misses_; }
  /// Entries in the shared frozen snapshot (0 before the first freeze).
  std::size_t frozen_path_entries() const {
    return frozen_paths_ ? frozen_paths_->size() : 0;
  }

 private:
  using EcmpPaths = std::vector<std::vector<NodeId>>;
  using PathKey = std::pair<NodeId, NodeId>;
  /// Values are shared_ptr so returned path references stay stable while
  /// the flat map's backing vector grows, and so freezing/copying shares
  /// the (immutable) path lists instead of duplicating them.
  using PathMap = core::FlatMap<PathKey, std::shared_ptr<const EcmpPaths>>;

  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> adjacency_;
  core::FlatMap<std::uint32_t, NodeId> ip_index_;
  /// Compact backend; when set, nodes_/adjacency_/ip_index_ stay empty.
  std::shared_ptr<const CompactTopology> compact_;
  /// Immutable shared snapshot (read-only, shareable across replicas).
  mutable std::shared_ptr<const PathMap> frozen_paths_;
  /// Instance-local additions since the last freeze.
  mutable PathMap local_paths_;
  mutable std::uint64_t path_cache_hits_ = 0;
  mutable std::uint64_t path_cache_misses_ = 0;
};

}  // namespace cen::sim
