// Simulated network topology: routers, links, and ECMP path computation.
//
// Paths between a client and an endpoint are all shortest paths in the
// link graph; a flow's 5-tuple hash picks one, mirroring per-flow ECMP
// load balancing. Because CenTrace opens a fresh TCP connection (fresh
// source port) per probe (§4.1), consecutive probes can ride different
// paths — the path-variance problem the tool tames with repetition.
//
// Each router carries a profile controlling the ICMP behaviours the paper
// measures: whether it answers TTL exhaustion at all, how much of the
// original datagram it quotes (RFC 792 vs RFC 1812), and whether it
// rewrites the IP TOS / flags of transiting packets (§4.3 observes TOS
// deltas in 32% of quoted packets).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "censor/device.hpp"  // ServiceBanner, for router management planes
#include "net/icmp.hpp"
#include "net/ipv4.hpp"

namespace cen::sim {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xffffffffu;

struct RouterProfile {
  bool responds_icmp = true;
  net::QuotePolicy quote_policy = net::QuotePolicy::kRfc792;
  /// If set, the router rewrites the TOS byte of packets it forwards.
  std::optional<std::uint8_t> rewrite_tos;
  /// Quirky gear that clears the DF flag of transiting packets.
  bool clears_df_flag = false;
};

struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  net::Ipv4Address ip;
  RouterProfile profile;
  /// Management services exposed on this router's IP (most expose none;
  /// some answer SSH/Telnet with generic banners — the paper's 68-of-163
  /// "has open ports but no vendor label" population).
  std::vector<censor::ServiceBanner> services;
};

/// Maximum number of equal-cost paths enumerated per (src, dst) pair.
constexpr std::size_t kMaxEcmpPaths = 128;

class Topology {
 public:
  NodeId add_node(std::string name, net::Ipv4Address ip, RouterProfile profile = {});
  /// Undirected link between two existing nodes.
  void add_link(NodeId a, NodeId b);

  const Node& node(NodeId id) const { return nodes_.at(id); }
  Node& node(NodeId id) { return nodes_.at(id); }
  std::size_t node_count() const { return nodes_.size(); }
  std::optional<NodeId> find_by_ip(net::Ipv4Address ip) const;
  /// Direct neighbours of a node (link adjacency).
  const std::vector<NodeId>& neighbors(NodeId id) const { return adjacency_.at(id); }

  /// All shortest paths src→dst (inclusive of both), capped at
  /// kMaxEcmpPaths, in a deterministic order. Cached; the cache is
  /// invalidated by add_link/add_node.
  const std::vector<std::vector<NodeId>>& equal_cost_paths(NodeId src, NodeId dst) const;

  /// Pick the path a given flow hash rides.
  const std::vector<NodeId>& route(NodeId src, NodeId dst, std::uint64_t flow_hash) const;

  /// Route with a routing-epoch salt folded in (the fault layer's route
  /// flapping). A zero salt selects exactly the unsalted path.
  const std::vector<NodeId>& route(NodeId src, NodeId dst, std::uint64_t flow_hash,
                                   std::uint64_t salt) const;

  /// Structural digest over nodes (name, IP, router profile, services)
  /// and links — a campaign cache-key component: any topology edit must
  /// change it.
  std::uint64_t fingerprint() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::unordered_map<std::uint32_t, NodeId> ip_index_;
  mutable std::map<std::pair<NodeId, NodeId>, std::vector<std::vector<NodeId>>> path_cache_;
};

}  // namespace cen::sim
