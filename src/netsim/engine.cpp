#include "netsim/engine.hpp"
#include <algorithm>

#include "core/fingerprint.hpp"
#include "obs/observer.hpp"

namespace cen::sim {

namespace {
/// Salt folded into a seed to derive the fault-layer RNG stream.
constexpr std::uint64_t kFaultSeedSalt = 0x66616c7453696dULL;

/// Reply packet from the endpoint toward the client, acking `pkt`.
net::Packet endpoint_reply(const net::Packet& pkt, std::uint8_t flags) {
  net::Packet r;
  r.ip.src = pkt.ip.dst;
  r.ip.dst = pkt.ip.src;
  r.ip.ttl = 64;
  r.tcp.src_port = pkt.tcp.dst_port;
  r.tcp.dst_port = pkt.tcp.src_port;
  r.tcp.flags = flags;
  r.tcp.seq = pkt.tcp.ack;
  r.tcp.ack = pkt.tcp.seq + static_cast<std::uint32_t>(pkt.payload.size());
  r.tcp.window = 65535;
  return r;
}
}  // namespace

Network::Network(Topology topology, geo::IpMetadataDb geodb, std::uint64_t seed)
    : topology_(std::move(topology)),
      geodb_(std::make_shared<const geo::IpMetadataDb>(std::move(geodb))),
      seed_(seed),
      rng_(seed),
      faults_(mix64(seed ^ kFaultSeedSalt)) {}

Network::Network(const Network& other, CloneTag)
    : topology_(other.topology_),  // shares the frozen ECMP path snapshot
      geodb_(other.geodb_),        // immutable, shared by reference
      seed_(other.seed_),
      rng_(other.seed_),
      faults_(mix64(other.seed_ ^ kFaultSeedSalt)),
      endpoints_(other.endpoints_) {  // COW-shared (detached on mutation)
  faults_.set_plan(other.faults_.plan());
  attachments_.reserve(other.attachments_.size());
  devices_.reserve(other.devices_.size());
  device_nodes_.reserve(other.device_nodes_.size());
  for (std::size_t i = 0; i < other.devices_.size(); ++i) {
    // Fresh runtime state, shared immutable configuration.
    attach_device(other.device_nodes_[i],
                  std::make_shared<censor::Device>(other.devices_[i]->config_ptr()));
  }
}

std::unique_ptr<Network> Network::clone() const {
  // Publish the prototype's computed ECMP paths as an immutable snapshot
  // so every replica starts warm instead of deep-copying (or recomputing)
  // the path cache — the dominant cost of the old clone().
  topology_.freeze_paths();
  return std::unique_ptr<Network>(new Network(*this, CloneTag{}));
}

Network::EndpointMap& Network::mutable_endpoints() {
  if (endpoints_.use_count() > 1) {
    endpoints_ = std::make_shared<EndpointMap>(*endpoints_);
  }
  return *endpoints_;
}

namespace {

void mix_ruleset(FingerprintBuilder& fp, const censor::RuleSet& rules) {
  fp.mix(rules.case_insensitive());
  fp.mix(static_cast<std::uint64_t>(rules.size()));
  for (const censor::DomainRule& r : rules.rules()) {
    fp.mix(r.domain);
    fp.mix(static_cast<std::uint64_t>(r.style));
  }
}

void mix_device(FingerprintBuilder& fp, const censor::DeviceConfig& c) {
  fp.mix(c.id);
  fp.mix(c.vendor);
  fp.mix(c.on_path);
  fp.mix(static_cast<std::uint64_t>(c.action));
  fp.mix(c.tls_action.has_value());
  if (c.tls_action) fp.mix(static_cast<std::uint64_t>(*c.tls_action));
  fp.mix(static_cast<std::uint64_t>(c.residual_block_ms));
  mix_ruleset(fp, c.http_rules);
  mix_ruleset(fp, c.sni_rules);
  mix_ruleset(fp, c.dns_rules);
  fp.mix(c.dns_sinkhole.has_value());
  if (c.dns_sinkhole) fp.mix(static_cast<std::uint64_t>(c.dns_sinkhole->value()));
  for (const std::string& m : c.http_quirks.method_allowlist) fp.mix(m);
  fp.mix(c.http_quirks.method_case_insensitive);
  fp.mix(static_cast<std::uint64_t>(c.http_quirks.version_check));
  fp.mix(c.http_quirks.version_prefix_case_insensitive);
  fp.mix(static_cast<std::uint64_t>(c.http_quirks.host_word_check));
  fp.mix(c.http_quirks.requires_crlf);
  fp.mix(c.http_quirks.url_includes_path);
  for (net::TlsVersion v : c.tls_quirks.parses_versions) {
    fp.mix(static_cast<std::uint64_t>(v));
  }
  for (std::uint16_t suite : c.tls_quirks.blind_cipher_suites) {
    fp.mix(static_cast<std::uint64_t>(suite));
  }
  fp.mix(c.tls_quirks.breaks_on_padding_extension);
  fp.mix(c.tls_quirks.inspects_client_certificate);
  fp.mix(c.reassembly.reassembles);
  fp.mix(static_cast<std::uint64_t>(c.reassembly.overlap));
  fp.mix(c.reassembly.buffers_out_of_order);
  fp.mix(c.reassembly.validates_checksum);
  fp.mix(c.reassembly.ttl_consistency_check);
  fp.mix(static_cast<std::uint64_t>(c.reassembly.ttl_slack));
  fp.mix(static_cast<std::uint64_t>(c.injection.init_ttl));
  fp.mix(c.injection.copy_ttl_from_trigger);
  fp.mix(static_cast<std::uint64_t>(c.injection.ip_id));
  fp.mix(static_cast<std::uint64_t>(c.injection.ip_flags));
  fp.mix(static_cast<std::uint64_t>(c.injection.ip_tos));
  fp.mix(static_cast<std::uint64_t>(c.injection.tcp_window));
  fp.mix(static_cast<std::uint64_t>(c.injection.tcp_options.size()));
  fp.mix(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(c.injection.max_injections_per_flow)));
  fp.mix(c.blockpage_html);
  fp.mix(c.mgmt_ip.has_value());
  if (c.mgmt_ip) fp.mix(static_cast<std::uint64_t>(c.mgmt_ip->value()));
  fp.mix(static_cast<std::uint64_t>(c.services.size()));
  for (const censor::ServiceBanner& s : c.services) {
    fp.mix(static_cast<std::uint64_t>(s.port));
    fp.mix(s.protocol);
    fp.mix(s.banner);
  }
  fp.mix(static_cast<std::uint64_t>(c.stack.synack_ttl));
  fp.mix(static_cast<std::uint64_t>(c.stack.synack_window));
  fp.mix(static_cast<std::uint64_t>(c.stack.mss));
  fp.mix(c.stack.sack_permitted);
  fp.mix(static_cast<std::uint64_t>(c.stack.rst_ttl));
}

void mix_endpoint(FingerprintBuilder& fp, const EndpointProfile& p) {
  for (const std::string& d : p.hosted_domains) fp.mix(d);
  fp.mix(static_cast<std::uint64_t>(p.open_ports.size()));
  for (std::uint16_t port : p.open_ports) fp.mix(static_cast<std::uint64_t>(port));
  fp.mix(p.serves_subdomains);
  fp.mix(p.strict_http);
  fp.mix(p.reject_unknown_host);
  fp.mix(p.default_vhost_for_unknown);
  fp.mix(p.reject_unknown_sni);
  fp.mix(static_cast<std::uint64_t>(p.local_filter));
  mix_ruleset(fp, p.local_filter_rules);
  fp.mix(p.is_dns_resolver);
  fp.mix(static_cast<std::uint64_t>(p.dns_zone.size()));
  for (const auto& [name, addr] : p.dns_zone) {
    fp.mix(name);
    fp.mix(static_cast<std::uint64_t>(addr.value()));
  }
  fp.mix(p.static_payload.has_value());
  if (p.static_payload) fp.mix(*p.static_payload);
}

}  // namespace

std::uint64_t Network::fingerprint() const {
  FingerprintBuilder fp;
  fp.mix(topology_.fingerprint());
  fp.mix(seed_);
  fp.mix(static_cast<std::uint64_t>(endpoints_->size()));
  for (const auto& [ip, host] : *endpoints_) {
    fp.mix(static_cast<std::uint64_t>(ip));
    mix_endpoint(fp, host.profile());
  }
  fp.mix(static_cast<std::uint64_t>(devices_.size()));
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    fp.mix(static_cast<std::uint64_t>(device_nodes_[i]));
    mix_device(fp, devices_[i]->config());
  }
  fp.mix(faults_.plan().fingerprint());
  return fp.digest();
}

void Network::reset_epoch(std::uint64_t substream_seed) {
  clock_.reset();
  rng_ = Rng(substream_seed);
  faults_.reset_state(mix64(substream_seed ^ kFaultSeedSalt));
  next_ephemeral_port_ = kEphemeralPortFloor;
  for (const auto& dev : devices_) dev->reset_state();
}

std::uint16_t Network::allocate_ephemeral_port() {
  std::uint16_t sport = next_ephemeral_port_++;
  if (next_ephemeral_port_ >= kEphemeralPortCeiling) {
    next_ephemeral_port_ = kEphemeralPortFloor;
  }
  return sport;
}

void Network::attach_device(NodeId at, std::shared_ptr<censor::Device> device) {
  attachments_[at].push_back({at, device});
  devices_.push_back(std::move(device));
  device_nodes_.push_back(at);
}

void Network::replace_device_config(std::size_t index, censor::DeviceConfig config) {
  if (index >= devices_.size()) {
    throw std::out_of_range("replace_device_config: no such device");
  }
  auto replacement =
      std::make_shared<censor::Device>(std::move(config));
  // Swap the attachment entry at the device's deployment node so the
  // packet walk sees the new behaviour; deployment order (and therefore
  // devices() iteration order) is preserved.
  auto it = attachments_.find(device_nodes_[index]);
  if (it != attachments_.end()) {
    for (Attachment& a : it->second) {
      if (a.device == devices_[index]) {
        a.device = replacement;
        break;
      }
    }
  }
  devices_[index] = std::move(replacement);
}

void Network::add_endpoint(NodeId node, EndpointProfile profile) {
  add_endpoint_shared(node, std::make_shared<const EndpointProfile>(std::move(profile)));
}

void Network::add_endpoint_shared(NodeId node,
                                  std::shared_ptr<const EndpointProfile> profile) {
  const net::Ipv4Address ip = topology_.node_ip(node);
  mutable_endpoints().emplace(ip.value(), EndpointHost(ip, std::move(profile)));
}

void Network::reserve_endpoints(std::size_t n) { mutable_endpoints().reserve(n); }

Connection Network::open_connection(NodeId client, net::Ipv4Address dst,
                                    std::uint16_t dst_port) {
  return Connection(this, client, dst, dst_port, allocate_ephemeral_port());
}

std::vector<censor::ServiceBanner> Network::scan_services(net::Ipv4Address ip) const {
  for (const auto& dev : devices_) {
    if (dev->config().mgmt_ip && *dev->config().mgmt_ip == ip) {
      return dev->config().services;
    }
  }
  // No device owns this IP: a plain router may still expose management
  // services with generic (unfingerprideable) banners.
  if (std::optional<NodeId> node = topology_.find_by_ip(ip)) {
    return topology_.node_services(*node);
  }
  return {};
}

std::optional<censor::StackFingerprint> Network::probe_stack(net::Ipv4Address ip) const {
  if (scan_services(ip).empty()) return std::nullopt;  // nothing answers SYNs
  for (const auto& dev : devices_) {
    if (dev->config().mgmt_ip && *dev->config().mgmt_ip == ip) {
      return dev->config().stack;
    }
  }
  // A plain router's management plane: generic network-OS stack.
  return censor::StackFingerprint{255, 4096, 536, false, 255};
}

void Network::reset_device_state() {
  for (const auto& dev : devices_) dev->reset_state();
}

void Network::set_observer(obs::Observer* obs) {
  obs_ = obs;
  ec_ = obs != nullptr ? &obs->engine() : nullptr;
  faults_.set_counters(obs != nullptr ? &obs->faults() : nullptr);
}

void Network::reverse_deliver(net::Packet pkt, const std::vector<NodeId>& path,
                              std::size_t from_index, std::vector<Event>& events) {
  // Return routing is symmetric — only the hop count matters for TTL —
  // but the fault layer still charges each traversed link's faults.
  const bool faulty = faults_.active();
  // Routers between the origin point and the client decrement the TTL of
  // the returning packet; a TTL-copying injection may die en route — the
  // mechanism behind the paper's "Past E" observations.
  for (std::size_t i = from_index; i-- > 1;) {
    if (faulty) {
      if (faults_.lose_on_link(path[i], path[i - 1])) return;
      faults_.mangle_payload(path[i], path[i - 1], pkt.payload);
    }
    if (pkt.ip.ttl == 0) return;
    pkt.ip.ttl -= 1;
    if (pkt.ip.ttl == 0) return;  // expired mid-return; no ICMP to a spoofed source
  }
  if (capture_ != nullptr) capture_->add(clock_.now(), pkt.serialize());
  // Access-link delivery faults: duplication hands the client two copies,
  // reordering delivers this packet "before" earlier-captured ones.
  bool duplicated = faulty && faults_.duplicate_delivery(path[1], path[0]);
  bool late = faulty && faults_.reorder_delivery(path[1], path[0]);
  if (late && !events.empty()) {
    events.insert(events.begin(), TcpEvent{pkt});
  } else {
    events.push_back(TcpEvent{pkt});
  }
  if (duplicated) events.push_back(TcpEvent{std::move(pkt)});
}

void Network::reverse_deliver_udp(net::UdpDatagram dgram, std::size_t from_index,
                                  std::vector<Event>& events) {
  // No path is threaded here, so the default link profile governs the
  // whole return trip (per-link overrides apply to TCP flows only).
  const bool faulty = faults_.active();
  for (std::size_t i = from_index; i-- > 1;) {
    if (faulty) {
      if (faults_.lose_on_link(kInvalidNode, kInvalidNode)) return;
      faults_.mangle_payload(kInvalidNode, kInvalidNode, dgram.payload);
    }
    if (dgram.ip.ttl == 0) return;
    dgram.ip.ttl -= 1;
    if (dgram.ip.ttl == 0) return;
  }
  if (capture_ != nullptr) capture_->add(clock_.now(), dgram.serialize());
  bool duplicated = faulty && faults_.duplicate_delivery(kInvalidNode, kInvalidNode);
  bool late = faulty && faults_.reorder_delivery(kInvalidNode, kInvalidNode);
  if (late && !events.empty()) {
    events.insert(events.begin(), UdpEvent{dgram});
  } else {
    events.push_back(UdpEvent{dgram});
  }
  if (duplicated) events.push_back(UdpEvent{std::move(dgram)});
}

Network::IcmpDelivery Network::icmp_delivery(const std::vector<NodeId>& path,
                                             std::size_t from_index) {
  IcmpDelivery d;
  for (std::size_t i = from_index; i-- > 1;) {
    if (faults_.lose_on_link(path[i], path[i - 1])) {
      d.delivered = false;
      return d;
    }
  }
  d.duplicated = faults_.duplicate_delivery(path[1], path[0]);
  d.late = faults_.reorder_delivery(path[1], path[0]);
  return d;
}

std::vector<Event> Network::send_udp(NodeId client, net::Ipv4Address dst,
                                     std::uint16_t dst_port, Bytes payload,
                                     std::uint8_t ttl) {
  std::vector<Event> events;
  if (ec_ != nullptr) ec_->udp_sends->inc();
  std::uint16_t sport = allocate_ephemeral_port();
  std::optional<NodeId> dst_node = topology_.find_by_ip(dst);
  if (!dst_node) return events;
  const net::Ipv4Address src_ip = topology_.node_ip(client);
  std::uint64_t flow_hash =
      mix64(static_cast<std::uint64_t>(src_ip.value()) << 32 | dst.value()) ^
      mix64(static_cast<std::uint64_t>(sport) << 16 | dst_port);
  const std::vector<NodeId>& path =
      topology_.route(client, *dst_node, flow_hash, faults_.flow_salt(clock_.now()));
  if (path.size() < 2) return events;
  const double transient_loss = faults_.plan().transient_loss;
  if (transient_loss > 0.0 && rng_.chance(transient_loss)) {
    if (ec_ != nullptr) ec_->transient_drops->inc();
    return events;
  }
  const bool faulty = faults_.active();

  net::UdpDatagram dgram =
      net::make_udp_datagram(src_ip, dst, sport, dst_port, std::move(payload), ttl);
  if (capture_ != nullptr) capture_->add(clock_.now(), dgram.serialize());

  for (std::size_t i = 1; i < path.size(); ++i) {
    NodeId nid = path[i];
    if (ec_ != nullptr) ec_->hops->inc();
    if (faulty) {
      if (faults_.lose_on_link(path[i - 1], nid)) return events;
      faults_.mangle_payload(path[i - 1], nid, dgram.payload);
    }
    auto att_it = attachments_.find(nid);
    if (att_it != attachments_.end()) {
      for (const Attachment& att : att_it->second) {
        censor::UdpVerdict v = att.device->inspect_udp(dgram, clock_.now());
        if (ec_ != nullptr && !v.inject_to_client.empty()) {
          ec_->injections->inc(v.inject_to_client.size());
        }
        for (net::UdpDatagram& inj : v.inject_to_client) {
          reverse_deliver_udp(std::move(inj), i, events);
        }
        if (v.drop) return events;
      }
    }

    const RouterProfile& np = topology_.node_profile(nid);
    const net::Ipv4Address nip = topology_.node_ip(nid);
    bool is_endpoint_hop = (i + 1 == path.size());
    if (!is_endpoint_hop) {
      dgram.ip.ttl -= 1;
      if (dgram.ip.ttl == 0) {
        if (np.responds_icmp &&
            (!faulty || faults_.allow_icmp(nid, clock_.now()))) {
          IcmpDelivery d;
          if (faulty) d = icmp_delivery(path, i);
          if (d.delivered) {
            if (ec_ != nullptr) ec_->icmp_quotes->inc();
            net::IcmpTimeExceeded icmp = net::IcmpTimeExceeded::make(
                nip, dgram.serialize(), np.quote_policy);
            IcmpEvent ev{nip, std::move(icmp.quoted)};
            if (d.late && !events.empty()) {
              events.insert(events.begin(), ev);
            } else {
              events.push_back(ev);
            }
            if (d.duplicated) events.push_back(std::move(ev));
          }
        }
        return events;
      }
      if (np.rewrite_tos) dgram.ip.tos = *np.rewrite_tos;
      continue;
    }

    auto ep_it = endpoints_->find(dgram.ip.dst.value());
    if (ep_it == endpoints_->end()) return events;
    AppReply reply = ep_it->second.handle_udp_payload(dgram.payload, dst_port);
    if (reply.kind == AppReply::Kind::kData) {
      net::UdpDatagram answer = net::make_udp_datagram(
          dgram.ip.dst, dgram.ip.src, dst_port, sport, std::move(reply.data), 64);
      reverse_deliver_udp(std::move(answer), i, events);
    }
    return events;
  }
  return events;
}

bool Network::endpoint_payload_reply(const EndpointHost& ep, const net::Packet& pkt,
                                     const std::vector<NodeId>& path, std::size_t i,
                                     std::vector<Event>& events) {
  switch (ep.local_filter_verdict(pkt.payload)) {
    case LocalFilterAction::kDrop:
      return false;
    case LocalFilterAction::kRst: {
      reverse_deliver(endpoint_reply(pkt, net::TcpFlags::kRst | net::TcpFlags::kAck),
                      path, i, events);
      return false;
    }
    case LocalFilterAction::kNone:
      break;
  }

  AppReply reply = ep.handle_payload(pkt.payload);
  switch (reply.kind) {
    case AppReply::Kind::kNone:
      break;
    case AppReply::Kind::kData: {
      net::Packet data = endpoint_reply(pkt, net::TcpFlags::kPsh | net::TcpFlags::kAck);
      data.payload = std::move(reply.data);
      reverse_deliver(std::move(data), path, i, events);
      break;
    }
    case AppReply::Kind::kRst:
      reverse_deliver(endpoint_reply(pkt, net::TcpFlags::kRst | net::TcpFlags::kAck),
                      path, i, events);
      break;
  }
  return true;
}

void Network::deliver_assembled(net::Packet proto, Bytes assembled,
                                const std::vector<NodeId>& path,
                                std::vector<Event>& events) {
  if (path.size() < 2) return;
  auto ep_it = endpoints_->find(proto.ip.dst.value());
  if (ep_it == endpoints_->end()) return;
  proto.payload = std::move(assembled);
  endpoint_payload_reply(ep_it->second, proto, path, path.size() - 1, events);
}

bool Network::forward_walk(net::Packet pkt, const std::vector<NodeId>& path,
                           std::vector<Event>& events, bool payload_phase,
                           net::Packet* delivered) {
  if (path.size() < 2) return false;
  if (ec_ != nullptr) ec_->forward_walks->inc();
  const double transient_loss = faults_.plan().transient_loss;
  if (transient_loss > 0.0 && rng_.chance(transient_loss)) {
    if (ec_ != nullptr) ec_->transient_drops->inc();
    return false;
  }
  const bool faulty = faults_.active();

  for (std::size_t i = 1; i < path.size(); ++i) {
    NodeId nid = path[i];
    if (ec_ != nullptr) ec_->hops->inc();

    // Link faults strike before anything on the far side can inspect:
    // a lost packet is gone, a mangled payload is what the censor (and
    // eventually the endpoint) actually sees.
    if (faulty) {
      if (faults_.lose_on_link(path[i - 1], nid)) return false;
      faults_.mangle_payload(path[i - 1], nid, pkt.payload);
    }

    // Devices deployed on the link entering this node inspect first.
    auto att_it = attachments_.find(nid);
    if (att_it != attachments_.end()) {
      for (const Attachment& att : att_it->second) {
        censor::Verdict v = att.device->inspect(pkt, clock_.now());
        if (ec_ != nullptr && !v.inject_to_client.empty()) {
          ec_->injections->inc(v.inject_to_client.size());
        }
        for (net::Packet& inj : v.inject_to_client) {
          reverse_deliver(std::move(inj), path, i, events);
        }
        if (v.drop) return false;
      }
    }

    const RouterProfile& np = topology_.node_profile(nid);
    const net::Ipv4Address nip = topology_.node_ip(nid);
    bool is_endpoint_hop = (i + 1 == path.size());

    if (!is_endpoint_hop) {
      // Router: decrement, possibly expire, possibly rewrite header bits.
      pkt.ip.ttl -= 1;
      if (pkt.ip.ttl == 0) {
        // Emission (rate limit consumes a token even if the reply later
        // dies on a return link), then return-trip delivery faults.
        IcmpDelivery d;
        if (np.responds_icmp &&
            (!faulty || faults_.allow_icmp(nid, clock_.now())) &&
            (!faulty || (d = icmp_delivery(path, i)).delivered)) {
          if (ec_ != nullptr) ec_->icmp_quotes->inc();
          // Quotes cap at 28/128 bytes, so only that prefix of the wire
          // bytes is serialized — into a reused scratch buffer, not a
          // fresh full-packet Bytes per expiring hop.
          pkt.serialize_prefix(quote_scratch_,
                               net::quote_limit(np.quote_policy));
          net::IcmpTimeExceeded icmp;
          icmp.router = nip;
          icmp.quoted.assign(quote_scratch_.begin(), quote_scratch_.end());
          if (capture_ != nullptr) {
            // Reconstruct the full ICMP datagram for the capture file.
            net::Ipv4Header ip;
            ip.protocol = net::IpProto::kIcmp;
            ip.src = nip;
            ip.dst = pkt.ip.src;
            Bytes icmp_bytes = icmp.serialize();
            ip.total_length = static_cast<std::uint16_t>(20 + icmp_bytes.size());
            ByteWriter w;
            w.raw(ip.serialize());
            w.raw(icmp_bytes);
            capture_->add(clock_.now(), std::move(w).take());
          }
          IcmpEvent ev{nip, std::move(icmp.quoted)};
          if (d.late && !events.empty()) {
            events.insert(events.begin(), ev);
          } else {
            events.push_back(ev);
          }
          if (d.duplicated) events.push_back(std::move(ev));
        }
        return false;
      }
      if (np.rewrite_tos) pkt.ip.tos = *np.rewrite_tos;
      if (np.clears_df_flag) pkt.ip.flags &= static_cast<std::uint8_t>(~0x2u);
      continue;
    }

    // Final hop: the endpoint host.
    auto ep_it = endpoints_->find(pkt.ip.dst.value());
    if (ep_it == endpoints_->end()) return false;  // no listener: silence
    const EndpointHost& ep = ep_it->second;

    if (!payload_phase) {
      // Handshake: SYN → SYN/ACK on open ports, RST on closed ones.
      const auto& ports = ep.profile().open_ports;
      bool open = std::find(ports.begin(), ports.end(), pkt.tcp.dst_port) != ports.end();
      if (!open) {
        net::Packet rst = endpoint_reply(pkt, net::TcpFlags::kRst | net::TcpFlags::kAck);
        rst.tcp.ack = pkt.tcp.seq + 1;
        reverse_deliver(std::move(rst), path, i, events);
        return false;
      }
      net::Packet synack = endpoint_reply(pkt, net::TcpFlags::kSyn | net::TcpFlags::kAck);
      synack.tcp.ack = pkt.tcp.seq + 1;
      reverse_deliver(std::move(synack), path, i, events);
      return true;
    }

    if (delivered != nullptr) {
      // Segment mode: the receiving TCP stack takes delivery; a segment
      // with a corrupt checksum never makes it past the stack, no matter
      // what any middlebox made of it en route.
      if (!pkt.checksum_ok) return false;
      *delivered = std::move(pkt);
      return true;
    }

    return endpoint_payload_reply(ep, pkt, path, i, events);
  }
  return false;
}

Connection::Connection(Network* net, NodeId client, net::Ipv4Address dst,
                       std::uint16_t dport, std::uint16_t sport)
    : net_(net), client_(client), dst_(dst), dport_(dport), sport_(sport) {
  std::optional<NodeId> dst_node = net_->topology_.find_by_ip(dst);
  if (dst_node) {
    const net::Ipv4Address src_ip = net_->topology_.node_ip(client_);
    std::uint64_t flow_hash =
        mix64(static_cast<std::uint64_t>(src_ip.value()) << 32 | dst.value()) ^
        mix64(static_cast<std::uint64_t>(sport_) << 16 | dport_);
    // Route flapping: the fault layer's epoch salt can swap this flow
    // onto a different equal-cost path than the same 5-tuple rode before.
    path_ = net_->topology_.route(client_, *dst_node, flow_hash,
                                  net_->faults_.flow_salt(net_->clock_.now()));
  }
}

ConnectResult Connection::connect() {
  if (path_.empty()) return ConnectResult::kTimeout;
  const net::Ipv4Address src_ip = net_->topology_.node_ip(client_);
  next_seq_ = 1000;
  net::Packet syn = net::make_tcp_packet(src_ip, dst_, sport_, dport_,
                                         net::TcpFlags::kSyn, next_seq_, 0, {}, 64);
  std::vector<Event> events;
  bool delivered = net_->forward_walk(std::move(syn), path_, events, /*payload_phase=*/false);
  for (const Event& ev : events) {
    if (const auto* tcp = std::get_if<TcpEvent>(&ev)) {
      if (tcp->packet.tcp.has(net::TcpFlags::kRst)) return ConnectResult::kReset;
      if (tcp->packet.tcp.has(net::TcpFlags::kSyn) && tcp->packet.tcp.has(net::TcpFlags::kAck)) {
        established_ = true;
        next_seq_ += 1;  // SYN consumed one sequence number
        peer_seq_ = tcp->packet.tcp.seq + 1;
        return ConnectResult::kEstablished;
      }
    }
  }
  (void)delivered;
  return ConnectResult::kTimeout;
}

std::vector<Event> Connection::send(Bytes payload, std::uint8_t ttl) {
  std::vector<Event> events;
  send_into(payload, ttl, events);
  return events;
}

void Connection::send_into(const Bytes& payload, std::uint8_t ttl,
                           std::vector<Event>& events) {
  events.clear();
  if (!established_) return;
  const net::Ipv4Address src_ip = net_->topology_.node_ip(client_);
  net::Packet pkt = net::make_tcp_packet(
      src_ip, dst_, sport_, dport_, net::TcpFlags::kPsh | net::TcpFlags::kAck, next_seq_,
      peer_seq_, payload, ttl);
  next_seq_ += static_cast<std::uint32_t>(pkt.payload.size());
  last_sent_ = pkt;
  if (net_->capture_ != nullptr) net_->capture_->add(net_->now(), pkt.serialize());
  net_->forward_walk(std::move(pkt), path_, events, /*payload_phase=*/true);
}

std::vector<Event> Connection::send_segments(const std::vector<SegmentSpec>& segments) {
  std::vector<Event> events;
  if (!established_ || segments.empty()) return events;
  const net::Ipv4Address src_ip = net_->topology_.node_ip(client_);

  // Total sequence span the probe covers (segments may overlap).
  std::uint32_t span = 0;
  for (const SegmentSpec& seg : segments) {
    span = std::max(span, seg.offset + static_cast<std::uint32_t>(seg.bytes.size()));
  }

  // Canonical receiver-stack reassembly: out-of-order segments buffer,
  // already-received bytes are never overwritten (first-wins), and the
  // application sees the message only once the whole span is contiguous.
  Bytes assembled(span, 0);
  std::vector<bool> filled(span, false);
  bool concluded = false;

  for (const SegmentSpec& seg : segments) {
    net::Packet pkt = net::make_tcp_packet(
        src_ip, dst_, sport_, dport_, net::TcpFlags::kPsh | net::TcpFlags::kAck,
        next_seq_ + seg.offset, peer_seq_, seg.bytes, seg.ttl);
    pkt.checksum_ok = !seg.bad_checksum;
    last_sent_ = pkt;
    if (net_->capture_ != nullptr) net_->capture_->add(net_->now(), pkt.serialize());
    net::Packet delivered;
    bool reached = net_->forward_walk(std::move(pkt), path_, events,
                                      /*payload_phase=*/true, &delivered);
    if (!reached || concluded) continue;
    // Fill with the bytes that actually arrived (faults may have mangled
    // them in flight), never overwriting data already accepted.
    for (std::size_t b = 0; b < delivered.payload.size(); ++b) {
      std::size_t idx = seg.offset + b;
      if (idx < span && !filled[idx]) {
        assembled[idx] = delivered.payload[b];
        filled[idx] = true;
      }
    }
    if (std::find(filled.begin(), filled.end(), false) == filled.end()) {
      delivered.tcp.seq = next_seq_;  // message base for the reply's ack
      net_->deliver_assembled(std::move(delivered), assembled, path_, events);
      concluded = true;
    }
  }
  next_seq_ += span;
  return events;
}

}  // namespace cen::sim
