// Endpoint (web server) model.
//
// Endpoints are the infrastructural machines CenTrace/CenFuzz probe. Each
// hosts one or more domains over HTTP and TLS. Server parsing behaviour is
// profiled (strict vs lenient, wildcard vhosts/certs or not) because the
// paper's circumvention analysis (§6.3) hinges on endpoints accepting or
// rejecting the same mutated requests that evade censors (400/403/301/505
// responses were all observed).
//
// Endpoints can also carry a *local filter* (an org firewall / NAT in
// front of the host) that reacts to Test-Domain traffic — these produce
// the "At E" blocking cases of Fig. 3, which the paper distinguishes from
// ISP/state censorship.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "censor/rules.hpp"
#include "core/bytes.hpp"
#include "net/ipv4.hpp"

namespace cen::sim {

enum class LocalFilterAction : std::uint8_t { kNone, kDrop, kRst };

struct EndpointProfile {
  std::vector<std::string> hosted_domains;  // first entry = default vhost/cert
  /// TCP ports with a listener; SYNs to other ports are answered with RST
  /// (the behaviour a real infrastructural machine shows to scanners).
  std::vector<std::uint16_t> open_ports{80, 443, 53};
  /// Serve any subdomain of a hosted domain (wildcard vhost + cert).
  bool serves_subdomains = false;
  /// Strict servers reject unregistered methods (501), bad versions (505)
  /// and bare-LF requests (400); lenient servers repair what they can.
  bool strict_http = false;
  /// Respond 403 to Host values not hosted here (vs serving the default vhost).
  bool reject_unknown_host = false;
  /// Serve the default vhost's content (200) for unknown Host values, like
  /// an nginx default server — the behaviour that lets padded-hostname
  /// evasion become full circumvention (§6.3). Ignored if reject_unknown_host.
  bool default_vhost_for_unknown = false;
  /// TLS alert unrecognized_name for unknown SNI (vs default certificate).
  bool reject_unknown_sni = false;
  /// Org-firewall/NAT in front of the endpoint ("At E" blocking).
  LocalFilterAction local_filter = LocalFilterAction::kNone;
  censor::RuleSet local_filter_rules;
  /// Recursive DNS resolver (answers DNS-over-TCP on port 53). Names in
  /// `dns_zone` resolve to the listed address; anything else resolves to a
  /// deterministic synthetic address (public-resolver behaviour).
  bool is_dns_resolver = false;
  std::vector<std::pair<std::string, net::Ipv4Address>> dns_zone;
  /// Disguiser-style control server (§3.2, Jin et al.): answer every
  /// request with exactly this body — any deviation observed by the client
  /// is then attributable to on-path tampering.
  std::optional<std::string> static_payload;
};

/// What the endpoint does in response to a delivered application payload.
struct AppReply {
  enum class Kind { kNone, kData, kRst } kind = Kind::kNone;
  Bytes data;  // response bytes when kind == kData
};

class EndpointHost {
 public:
  EndpointHost() : profile_(empty_profile()) {}
  EndpointHost(net::Ipv4Address ip, EndpointProfile profile)
      : ip_(ip),
        profile_(std::make_shared<const EndpointProfile>(std::move(profile))) {}
  /// Shared-profile constructor: worldgen endpoints draw from a small set
  /// of profile templates, so a million hosts share a handful of profiles
  /// instead of carrying a deep copy each.
  EndpointHost(net::Ipv4Address ip, std::shared_ptr<const EndpointProfile> profile)
      : ip_(ip), profile_(std::move(profile)) {
    if (profile_ == nullptr) profile_ = empty_profile();
  }

  net::Ipv4Address ip() const { return ip_; }
  const EndpointProfile& profile() const { return *profile_; }
  const std::shared_ptr<const EndpointProfile>& profile_ptr() const { return profile_; }

  /// Does the local filter (if any) engage on this payload?
  LocalFilterAction local_filter_verdict(BytesView payload) const;

  /// Application-layer handling of an HTTP request or TLS ClientHello.
  AppReply handle_payload(BytesView payload) const;

  /// UDP handling: bare DNS queries on port 53 when this is a resolver.
  AppReply handle_udp_payload(BytesView payload, std::uint16_t dst_port) const;

 private:
  AppReply handle_http(std::string_view raw) const;
  AppReply handle_tls(BytesView raw) const;
  AppReply handle_dns(BytesView raw) const;
  /// Is `host` served here (exact, or subdomain when wildcarding)?
  bool hosts(std::string_view host) const;
  /// Shared default-constructed profile backing default-constructed hosts.
  static const std::shared_ptr<const EndpointProfile>& empty_profile();

  net::Ipv4Address ip_;
  std::shared_ptr<const EndpointProfile> profile_;
};

/// The HTML body marker served for a domain; CenFuzz's circumvention check
/// looks for this marker to confirm legitimate content was fetched.
std::string legitimate_content_for(std::string_view domain);

}  // namespace cen::sim
