#include "netsim/compact.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/fingerprint.hpp"

namespace cen::sim {

const std::vector<censor::ServiceBanner>& CompactTopology::services(NodeId id) const {
  static const std::vector<censor::ServiceBanner> kNone;
  auto it = services_.find(id);
  return it == services_.end() ? kNone : it->second;
}

std::optional<NodeId> CompactTopology::find_by_ip(net::Ipv4Address ip) const {
  auto it = std::lower_bound(
      ip_index_.begin(), ip_index_.end(),
      std::pair<std::uint32_t, NodeId>{ip.value(), 0});
  if (it == ip_index_.end() || it->first != ip.value()) return std::nullopt;
  return it->second;
}

std::uint64_t CompactTopology::fingerprint() const {
  // Mirrors Topology::fingerprint() field for field — the two backends
  // must digest identically for equivalent content (campaign cache keys).
  FingerprintBuilder fp;
  fp.mix(static_cast<std::uint64_t>(node_count()));
  for (NodeId id = 0; id < node_count(); ++id) {
    const RouterProfile& p = profiles_[id];
    fp.mix(name(id));
    fp.mix(static_cast<std::uint64_t>(ips_[id]));
    fp.mix(p.responds_icmp);
    fp.mix(static_cast<std::uint64_t>(p.quote_policy));
    fp.mix(p.rewrite_tos.has_value());
    if (p.rewrite_tos) fp.mix(static_cast<std::uint64_t>(*p.rewrite_tos));
    fp.mix(p.clears_df_flag);
    const auto& svcs = services(id);
    fp.mix(static_cast<std::uint64_t>(svcs.size()));
    for (const censor::ServiceBanner& s : svcs) {
      fp.mix(static_cast<std::uint64_t>(s.port));
      fp.mix(s.protocol);
      fp.mix(s.banner);
    }
  }
  for (NodeId id = 0; id < node_count(); ++id) {
    std::span<const NodeId> nbrs = neighbors(id);
    fp.mix(static_cast<std::uint64_t>(nbrs.size()));
    for (NodeId nb : nbrs) fp.mix(static_cast<std::uint64_t>(nb));
  }
  return fp.digest();
}

std::size_t CompactTopology::bytes() const {
  std::size_t total = 0;
  total += ips_.capacity() * sizeof(std::uint32_t);
  total += profiles_.capacity() * sizeof(RouterProfile);
  total += name_off_.capacity() * sizeof(std::uint32_t);
  total += name_len_.capacity() * sizeof(std::uint32_t);
  total += name_arena_.capacity();
  total += adj_off_.capacity() * sizeof(std::uint32_t);
  total += adj_.capacity() * sizeof(NodeId);
  total += links_.capacity() * sizeof(std::pair<NodeId, NodeId>);
  total += ip_index_.capacity() * sizeof(std::pair<std::uint32_t, NodeId>);
  for (const auto& [id, svcs] : services_) {
    total += sizeof(id) + sizeof(svcs);
    for (const censor::ServiceBanner& s : svcs) {
      total += sizeof(s) + s.protocol.capacity() + s.banner.capacity();
    }
  }
  return total;
}

Topology CompactTopology::inflate() const {
  Topology t;
  for (NodeId id = 0; id < node_count(); ++id) {
    NodeId got = t.add_node(std::string(name(id)), ip(id), profiles_[id]);
    (void)got;
    for (const censor::ServiceBanner& s : services(id)) {
      t.node(id).services.push_back(s);
    }
  }
  // Replaying links in insertion order reproduces the exact adjacency-list
  // order of a classic build, so the fingerprints match bit-for-bit.
  for (const auto& [a, b] : links_) t.add_link(a, b);
  return t;
}

void CompactTopologyBuilder::reserve(std::size_t nodes, std::size_t link_hint) {
  ips_.reserve(nodes);
  profiles_.reserve(nodes);
  name_off_.reserve(nodes);
  name_len_.reserve(nodes);
  links_.reserve(link_hint);
}

NodeId CompactTopologyBuilder::add_node(std::string_view name, net::Ipv4Address ip,
                                        RouterProfile profile) {
  if (ips_.size() >= max_nodes_) {
    throw std::length_error("CompactTopologyBuilder: 32-bit node id space exhausted");
  }
  const NodeId id = static_cast<NodeId>(ips_.size());
  ips_.push_back(ip.value());
  profiles_.push_back(profile);
  if (name.empty()) {
    name_off_.push_back(0);
    name_len_.push_back(0);
  } else {
    // Intern: identical names share one arena slice.
    auto it = interned_.find(std::string(name));
    std::uint32_t off;
    if (it != interned_.end()) {
      off = it->second;
    } else {
      if (name_arena_.size() + name.size() > 0xffffffffull) {
        throw std::length_error("CompactTopologyBuilder: name arena overflows 32 bits");
      }
      off = static_cast<std::uint32_t>(name_arena_.size());
      name_arena_.append(name);
      interned_.emplace(std::string(name), off);
    }
    name_off_.push_back(off);
    name_len_.push_back(static_cast<std::uint32_t>(name.size()));
  }
  return id;
}

void CompactTopologyBuilder::add_link(NodeId a, NodeId b) {
  if (a >= ips_.size() || b >= ips_.size()) {
    throw std::out_of_range("CompactTopologyBuilder: bad node id");
  }
  // Each link lands twice in the CSR array; the offset table is 32-bit.
  if (links_.size() >= 0x7fffffffull) {
    throw std::length_error("CompactTopologyBuilder: CSR adjacency overflows 32 bits");
  }
  links_.emplace_back(a, b);
}

void CompactTopologyBuilder::add_service(NodeId id, censor::ServiceBanner banner) {
  if (id >= ips_.size()) {
    throw std::out_of_range("CompactTopologyBuilder: bad node id");
  }
  services_[id].push_back(std::move(banner));
}

std::shared_ptr<const CompactTopology> CompactTopologyBuilder::build() {
  auto topo = std::make_shared<CompactTopology>();
  const std::size_t n = ips_.size();
  topo->ips_ = std::move(ips_);
  topo->profiles_ = std::move(profiles_);
  topo->name_off_ = std::move(name_off_);
  topo->name_len_ = std::move(name_len_);
  topo->name_arena_ = std::move(name_arena_);
  topo->services_ = std::move(services_);

  // CSR: count degrees, prefix-sum, then fill in link order — which
  // appends b to a's row and a to b's row exactly as the classic
  // add_link() does, so neighbour order (and the fingerprint) match.
  std::vector<std::uint32_t> degree(n, 0);
  for (const auto& [a, b] : links_) {
    ++degree[a];
    ++degree[b];
  }
  topo->adj_off_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) topo->adj_off_[i + 1] = topo->adj_off_[i] + degree[i];
  topo->adj_.resize(links_.size() * 2);
  std::vector<std::uint32_t> cursor(topo->adj_off_.begin(), topo->adj_off_.end() - 1);
  for (const auto& [a, b] : links_) {
    topo->adj_[cursor[a]++] = b;
    topo->adj_[cursor[b]++] = a;
  }
  topo->links_ = std::move(links_);

  topo->ip_index_.reserve(n);
  for (NodeId id = 0; id < n; ++id) topo->ip_index_.emplace_back(topo->ips_[id], id);
  // Sort by (ip, id): lower_bound then lands on the earliest-added node
  // for a duplicated ip, matching the classic index's first-wins emplace.
  std::sort(topo->ip_index_.begin(), topo->ip_index_.end());

  interned_.clear();
  return topo;
}

}  // namespace cen::sim
