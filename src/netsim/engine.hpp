// The packet-walk engine: ties topology, endpoints and censor devices into
// a sendable network.
//
// A tool opens a `Connection` from a client node to an endpoint IP and
// sends application payloads with a chosen IP TTL. The engine walks the
// flow's ECMP path hop by hop: in-path devices on the link into each node
// inspect (and may consume) the packet, on-path taps inspect a copy and
// may inject, routers decrement TTL and answer exhaustion with ICMP Time
// Exceeded (quoting per their RFC 792/1812 policy), and the endpoint's
// web-server model answers delivered payloads. Injected and reply packets
// traverse the reverse path with real TTL decay — which is what makes the
// paper's TTL-copying "Past E" artefact reproducible.
//
// Everything the client would capture with tcpdump is returned as an
// ordered list of `Event`s; an empty list is a timeout.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "core/flat_map.hpp"

#include "censor/device.hpp"
#include "core/clock.hpp"
#include "core/rng.hpp"
#include "geo/asdb.hpp"
#include "net/icmp.hpp"
#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "netsim/endpoint.hpp"
#include "netsim/faults.hpp"
#include "netsim/topology.hpp"

namespace cen::obs {
class Observer;
struct EngineCounters;
}

namespace cen::sim {

/// ICMP Time Exceeded received by the client.
struct IcmpEvent {
  net::Ipv4Address router;
  Bytes quoted;  // quoted original datagram bytes
};

/// A TCP packet received by the client (genuine endpoint reply or spoofed
/// injection — indistinguishable to the client, as in reality).
struct TcpEvent {
  net::Packet packet;
};

/// A UDP datagram received by the client (genuine answer or forged — the
/// client may receive BOTH when an on-path injector races the resolver).
struct UdpEvent {
  net::UdpDatagram datagram;
};

using Event = std::variant<IcmpEvent, TcpEvent, UdpEvent>;

/// One TCP segment of a deliberately-crafted (possibly ambiguous) probe
/// sequence: raw bytes at an offset relative to the message start, with its
/// own IP TTL and an optionally-corrupt TCP checksum. Segments may overlap,
/// arrive out of order, or expire before the endpoint — exactly the
/// ambiguities cenambig uses to tell reassembly implementations apart.
struct SegmentSpec {
  std::uint32_t offset = 0;
  Bytes bytes;
  std::uint8_t ttl = 64;
  bool bad_checksum = false;
};

/// Ephemeral source-port pool [floor, ceiling): fresh connections draw
/// from it and wrap back to the floor, never entering reserved ranges.
constexpr std::uint16_t kEphemeralPortFloor = 40000;
constexpr std::uint16_t kEphemeralPortCeiling = 65000;

/// Outcome of a connection attempt.
enum class ConnectResult : std::uint8_t { kEstablished, kTimeout, kReset };

class Network;

/// One TCP connection from a client node to an endpoint. Fresh connections
/// get fresh source ports, which is what exposes them to ECMP variance.
class Connection {
 public:
  /// Perform the SYN handshake (TTL 64). Must succeed before send().
  ConnectResult connect();
  /// Send one application payload with the given IP TTL; returns every
  /// packet the client receives back (empty = timeout).
  std::vector<Event> send(Bytes payload, std::uint8_t ttl = 64);

  /// Allocation-free variant: clears `events` and fills it in place, so a
  /// probe loop can reuse one vector (and its capacity) across attempts
  /// instead of constructing a fresh one per send.
  void send_into(const Bytes& payload, std::uint8_t ttl, std::vector<Event>& events);

  /// Send one application message as individually-crafted TCP segments, in
  /// the given (possibly out-of-order) send order. Devices along the path
  /// inspect each *segment* through their ReassemblyQuirks; the endpoint
  /// TCP stack performs canonical reassembly (first-wins, out-of-order
  /// buffered, bad-checksum segments discarded, TTL-expired segments never
  /// arriving) and hands the application the assembled message only if the
  /// whole span was covered. Returns everything the client receives back.
  std::vector<Event> send_segments(const std::vector<SegmentSpec>& segments);

  std::uint16_t source_port() const { return sport_; }
  const std::vector<NodeId>& path() const { return path_; }
  /// The exact packet most recently sent (pre-flight state) — the baseline
  /// CenTrace diffs quoted ICMP packets against.
  const net::Packet& last_sent() const { return last_sent_; }

 private:
  friend class Network;
  Connection(Network* net, NodeId client, net::Ipv4Address dst, std::uint16_t dport,
             std::uint16_t sport);

  Network* net_ = nullptr;
  NodeId client_ = kInvalidNode;
  net::Ipv4Address dst_;
  std::uint16_t dport_ = 0;
  std::uint16_t sport_ = 0;
  std::vector<NodeId> path_;
  bool established_ = false;
  std::uint32_t next_seq_ = 0;
  std::uint32_t peer_seq_ = 0;
  net::Packet last_sent_;
};

class Network {
 public:
  Network(Topology topology, geo::IpMetadataDb geodb, std::uint64_t seed = 1);

  /// Copy the network for a parallel worker: same topology, geo metadata,
  /// endpoints, fault plan and construction seed, but *fresh* device
  /// instances (no inherited flow/residual state), a rewound clock, a
  /// reset ephemeral-port pool and no capture sink. Replicas never share
  /// *mutable* state with the original; immutable data — the geo DB, the
  /// endpoint map, device configurations and the frozen ECMP path cache —
  /// is shared by reference, which makes cloning cheap enough to pay per
  /// worker without flattening the scaling curve. A replica that later
  /// mutates shared structure (add_endpoint, topology edits) detaches its
  /// own copy first (copy-on-write), so independence is preserved.
  std::unique_ptr<Network> clone() const;

  /// Reset all mutable simulation state to a deterministic epoch derived
  /// from `substream_seed`: clock to 0, ephemeral ports to the floor,
  /// device flow/residual state cleared, the engine RNG reseeded with the
  /// substream and the fault RNG rebased on a substream-derived seed. Two
  /// networks built from the same topology that reset to the same seed
  /// replay byte-identical measurements — the contract the parallel
  /// pipeline's hermetic tasks rely on.
  void reset_epoch(std::uint64_t substream_seed);

  /// The seed the network was constructed with (substream derivation).
  std::uint64_t seed() const { return seed_; }

  /// Digest of everything that determines measurement outcomes on this
  /// network: topology, construction seed, endpoints, deployed devices
  /// and the installed fault plan. Clones fingerprint identically to the
  /// original; runtime state (clock, ports, observers) is excluded.
  std::uint64_t fingerprint() const;

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }
  const geo::IpMetadataDb& geodb() const { return *geodb_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  SimTime now() const { return clock_.now(); }

  /// Deploy a device on the link entering `at` (in-path) or as a tap on
  /// that link (on-path — taken from the device's config).
  void attach_device(NodeId at, std::shared_ptr<censor::Device> device);
  /// Swap the configuration of an already-deployed device (by devices()
  /// index) in place: same deployment node, fresh runtime state, new
  /// behaviour. The longitudinal evolution engine mutates censor policy
  /// between epochs through this, which flows straight into fingerprint().
  /// Throws std::out_of_range on a bad index.
  void replace_device_config(std::size_t index, censor::DeviceConfig config);
  /// Register a web-server endpoint at a topology node.
  void add_endpoint(NodeId node, EndpointProfile profile);
  /// Shared-profile variant: worldgen populations register a million hosts
  /// against a handful of shared profile templates (no per-host deep copy).
  void add_endpoint_shared(NodeId node, std::shared_ptr<const EndpointProfile> profile);
  /// Pre-size the endpoint map before a bulk registration pass.
  void reserve_endpoints(std::size_t n);

  /// Open a TCP connection; a fresh ephemeral source port is assigned.
  Connection open_connection(NodeId client, net::Ipv4Address dst,
                             std::uint16_t dst_port = 80);

  /// Fire one UDP datagram (fresh ephemeral source port) and collect
  /// everything delivered back: ICMP Time Exceeded, forged injections,
  /// and/or the genuine answer — possibly several of them.
  std::vector<Event> send_udp(NodeId client, net::Ipv4Address dst,
                              std::uint16_t dst_port, Bytes payload,
                              std::uint8_t ttl = 64);

  /// Independent transient packet loss applied to each forward walk
  /// (models the network failures CenTrace's 3 retries absorb).
  /// Compatibility shim over the fault layer: clamps to [0, 1], throws
  /// std::invalid_argument on NaN.
  void set_transient_loss(double probability) {
    faults_.set_transient_loss(probability);
  }

  /// Install a fault plan (sanitized; resets all runtime fault state).
  /// The default-constructed plan is inert: with it installed the
  /// simulation is byte-identical to a fault-free network.
  void set_fault_plan(FaultPlan plan) { faults_.set_plan(std::move(plan)); }
  /// The runtime fault state. Mutable through a const Network because
  /// fault bookkeeping (token buckets, the fault RNG) is deterministic
  /// simulation scaffolding, not logical network state — const paths like
  /// scan_services still experience management-plane faults.
  FaultInjector& faults() const { return faults_; }

  /// Management-plane scan: open services on a device management IP.
  std::vector<censor::ServiceBanner> scan_services(net::Ipv4Address ip) const;

  /// Nmap-style stack probe of a management IP: the TCP-stack fingerprint
  /// its SYN/ACK and RST responses reveal. Requires at least one open port
  /// to elicit a SYN/ACK; nullopt otherwise. Plain routers answer with a
  /// generic network-OS stack.
  std::optional<censor::StackFingerprint> probe_stack(net::Ipv4Address ip) const;

  /// Attach a capture sink recording everything the client sends and
  /// receives (the paper's tcpdump, §4.2). Pass nullptr to detach. The
  /// writer must outlive the network or be detached first.
  void set_capture(net::PcapWriter* capture) { capture_ = capture; }

  /// Attach an observability sink (metrics + journal; see src/obs/).
  /// Pass nullptr to detach — detaching also unhooks the fault-layer
  /// counters, restoring the zero-instrumentation fast path. Like the
  /// capture sink, the observer is per-instance runtime scaffolding:
  /// clone() deliberately does not copy it (parallel replicas get their
  /// own per-task observers), and reset_epoch() leaves it attached.
  void set_observer(obs::Observer* obs);
  obs::Observer* observer() const { return obs_; }

  /// Devices deployed in the network (scenario bookkeeping/ground truth).
  const std::vector<std::shared_ptr<censor::Device>>& devices() const { return devices_; }
  /// Reset all device state (fresh measurement epoch).
  void reset_device_state();

 private:
  friend class Connection;

  struct Attachment {
    NodeId at = kInvalidNode;
    std::shared_ptr<censor::Device> device;
  };

  /// Tag-dispatched replica constructor backing clone(): shares immutable
  /// structure, re-creates mutable runtime state fresh.
  struct CloneTag {};
  Network(const Network& other, CloneTag);

  using EndpointMap = core::FlatMap<std::uint32_t, EndpointHost>;
  /// Copy-on-write access: detaches a private copy when the map is shared
  /// with other replicas (endpoints added after cloning stay replica-local).
  EndpointMap& mutable_endpoints();

  /// Walk a client→endpoint packet along `path`; fills `events` with
  /// everything delivered back to the client. Returns true if the packet
  /// reached the endpoint application. With `delivered` non-null the walk
  /// runs in segment mode: the endpoint TCP stack takes delivery of the
  /// packet (bad-checksum segments are discarded) without invoking the
  /// application — the caller models reassembly and hands the assembled
  /// message back through deliver_assembled().
  bool forward_walk(net::Packet pkt, const std::vector<NodeId>& path,
                    std::vector<Event>& events, bool payload_phase,
                    net::Packet* delivered = nullptr);

  /// Deliver a reassembled message to the endpoint application exactly
  /// once (local filter + web-server model + reply), as a real receiver
  /// does after stitching segments back together. `proto` carries the
  /// flow's headers with tcp.seq at the message base; its payload is
  /// replaced by `assembled`.
  void deliver_assembled(net::Packet proto, Bytes assembled,
                         const std::vector<NodeId>& path,
                         std::vector<Event>& events);

  /// The endpoint-application half of the final hop: local filter verdict,
  /// web-server handling and the spoofed reply. Returns true if the
  /// payload reached the application.
  bool endpoint_payload_reply(const EndpointHost& ep, const net::Packet& pkt,
                              const std::vector<NodeId>& path, std::size_t i,
                              std::vector<Event>& events);

  /// Deliver a packet travelling from path index `from_index` back to the
  /// client at path[0], decrementing TTL per router hop.
  void reverse_deliver(net::Packet pkt, const std::vector<NodeId>& path,
                       std::size_t from_index, std::vector<Event>& events);
  void reverse_deliver_udp(net::UdpDatagram dgram, std::size_t from_index,
                           std::vector<Event>& events);

  /// Fault outcome of an ICMP Time Exceeded travelling back from
  /// path[from_index] to the client: lost on a return link, duplicated or
  /// reordered on the access link. Only called when faults are active.
  struct IcmpDelivery {
    bool delivered = true;
    bool duplicated = false;
    bool late = false;
  };
  IcmpDelivery icmp_delivery(const std::vector<NodeId>& path, std::size_t from_index);

  /// Assign the next ephemeral source port, wrapping explicitly back to
  /// kEphemeralPortFloor before the pool exhausts (long chaos/bench runs
  /// must never bleed into reserved or well-known ranges).
  std::uint16_t allocate_ephemeral_port();

  Topology topology_;
  /// Immutable after construction; shared across replicas.
  std::shared_ptr<const geo::IpMetadataDb> geodb_;
  SimClock clock_;
  std::uint64_t seed_ = 1;
  Rng rng_;
  mutable FaultInjector faults_;
  net::PcapWriter* capture_ = nullptr;
  obs::Observer* obs_ = nullptr;
  /// Cached &obs_->engine() so the per-hop hot path costs one pointer
  /// test when observability is disabled.
  obs::EngineCounters* ec_ = nullptr;
  std::uint16_t next_ephemeral_port_ = kEphemeralPortFloor;
  core::FlatMap<NodeId, std::vector<Attachment>> attachments_;
  /// Endpoint hosts by IP value. Copy-on-write shared across replicas:
  /// EndpointHost is stateless (all handlers const), so concurrent reads
  /// of the shared map are race-free; any writer detaches first.
  std::shared_ptr<EndpointMap> endpoints_ = std::make_shared<EndpointMap>();
  std::vector<std::shared_ptr<censor::Device>> devices_;
  /// Deployment node of devices_[i] (clone() rebuilds attachments in the
  /// original deployment order so device iteration order is preserved).
  std::vector<NodeId> device_nodes_;
  /// Reused scratch for ICMP quoted-packet construction (the per-hop hot
  /// path serializes at most the quote cap into this buffer instead of
  /// the whole probe).
  Bytes quote_scratch_;
};

/// RAII observer attachment: installs `obs` on construction (a nullptr
/// leaves the current observer in place) and restores the previous
/// observer on destruction — exception-safe scaffolding for the unified
/// tool entry points (`trace::run` / `probe::run` / `fuzz::run`), which
/// must never leak a caller-supplied observer into the network.
class ScopedObserver {
 public:
  ScopedObserver(Network& network, obs::Observer* obs)
      : network_(network), previous_(network.observer()) {
    if (obs != nullptr) network_.set_observer(obs);
  }
  ~ScopedObserver() { network_.set_observer(previous_); }
  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;

 private:
  Network& network_;
  obs::Observer* previous_;
};

}  // namespace cen::sim
