#include "censor/vendors.hpp"

#include <stdexcept>

#include "core/strings.hpp"

namespace cen::censor {

namespace {

std::vector<std::string> methods(std::initializer_list<const char*> list) {
  std::vector<std::string> out;
  for (const char* m : list) out.emplace_back(m);
  return out;
}

DeviceConfig fortinet(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "Fortinet";
  d.action = BlockAction::kBlockpage;
  d.tls_action = BlockAction::kRstInject;  // no page fits an encrypted stream
  d.blockpage_html =
      "<html><head><title>Web Page Blocked</title></head><body>"
      "<h1>Web Page Blocked!</h1><p>You have tried to access a web page "
      "which is in violation of your internet usage policy.</p>"
      "<p>Powered by FortiGuard.</p></body></html>";
  d.http_quirks.method_allowlist =
      methods({"GET", "POST", "PUT", "HEAD", "DELETE", "OPTIONS"});
  d.http_quirks.version_check = VersionCheck::kNone;
  d.http_quirks.requires_crlf = true;
  d.http_quirks.url_includes_path = true;  // URL-anchored filter rules
  d.injection.init_ttl = 64;
  d.injection.ip_id = 0x4000;
  d.injection.tcp_window = 0;
  d.injection.max_injections_per_flow = 2;
  d.residual_block_ms = 60 * kSecond;
  d.services = {
      {443, "https", "Fortinet FortiGate configuration interface"},
      {22, "ssh", "SSH-2.0-FortiSSH"},
  };
  d.stack = {64, 5840, 1460, false, 64};
  return d;
}

DeviceConfig cisco(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "Cisco";
  d.action = BlockAction::kDrop;
  d.http_quirks.method_allowlist = methods({"GET", "POST", "HEAD"});
  d.http_quirks.version_check = VersionCheck::kPrefixHttp;
  d.http_quirks.requires_crlf = true;
  // Cisco URL rules are exact hostnames: subdomain/TLD alternation evades.
  // (The scenario sets rule styles; this flag is advisory via quirks only.)
  d.http_quirks.url_includes_path = true;
  d.tls_quirks.blind_cipher_suites = {0x0005, 0x0004};  // RC4 suites
  d.residual_block_ms = 90 * kSecond;
  d.services = {
      {22, "ssh", "SSH-2.0-Cisco-1.25"},
      {23, "telnet", "User Access Verification"},
  };
  d.stack = {255, 4128, 536, false, 255};
  return d;
}

DeviceConfig kerio(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "Kerio";
  d.action = BlockAction::kDrop;
  d.http_quirks.method_allowlist = methods({"GET", "POST", "PUT"});
  d.http_quirks.version_check = VersionCheck::kValidOnly;  // HTTP/9 evades Kerio
  d.http_quirks.requires_crlf = false;                     // tolerant tokenizer
  d.http_quirks.host_word_check = HostWordCheck::kContainsHost;
  d.http_quirks.url_includes_path = true;  // web-filter URL rules
  d.services = {
      {4081, "https", "Kerio Control Embedded Web Server"},
      {22, "ssh", "SSH-2.0-OpenSSH_7.4 Kerio"},
  };
  d.stack = {64, 29200, 1460, true, 64};
  return d;
}

DeviceConfig paloalto(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "PaloAlto";
  d.action = BlockAction::kRstInject;
  d.http_quirks.method_allowlist = methods({"GET", "POST", "PUT", "HEAD", "OPTIONS"});
  d.http_quirks.version_check = VersionCheck::kPrefixHttp;
  d.http_quirks.version_prefix_case_insensitive = false;  // "HtTP/" evades
  d.http_quirks.requires_crlf = true;
  d.http_quirks.url_includes_path = true;
  d.injection.init_ttl = 255;
  d.injection.ip_id = 0;
  d.injection.tcp_window = 8192;
  d.injection.max_injections_per_flow = 1;
  d.services = {
      {443, "https", "PAN-OS GlobalProtect Portal (Palo Alto Networks)"},
      {22, "ssh", "SSH-2.0-PaloAlto"},
  };
  d.stack = {64, 65535, 1460, true, 64};
  return d;
}

DeviceConfig ddosguard(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "DDoSGuard";
  d.action = BlockAction::kRstInject;  // inline protection node, injects resets
  d.http_quirks.method_allowlist = methods({"GET", "POST"});
  d.http_quirks.version_check = VersionCheck::kNone;
  d.injection.init_ttl = 128;
  d.injection.ip_id = 0x1234;
  d.injection.tcp_window = 16384;
  d.services = {
      {80, "http", "Server: ddos-guard"},
  };
  d.stack = {64, 64240, 1460, true, 64};
  return d;
}

DeviceConfig mikrotik(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "MikroTik";
  d.action = BlockAction::kDrop;
  d.http_quirks.method_allowlist = methods({"GET", "POST", "PUT", "HEAD"});
  d.http_quirks.version_check = VersionCheck::kNone;
  d.http_quirks.host_word_check = HostWordCheck::kExactCaseSensitive;  // "HoST:" evades
  d.http_quirks.requires_crlf = false;
  d.services = {
      {21, "ftp", "MikroTik FTP server (RouterOS)"},
      {22, "ssh", "SSH-2.0-ROSSSH"},
      {23, "telnet", "MikroTik RouterOS"},
  };
  d.stack = {64, 14600, 1460, true, 64};
  return d;
}

DeviceConfig kaspersky(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "Kaspersky";
  d.action = BlockAction::kDrop;
  d.http_quirks.method_allowlist = methods({"GET", "POST", "PUT", "HEAD", "DELETE"});
  d.http_quirks.version_check = VersionCheck::kNone;
  // Older TLS parser: a 1.3-only hello is not inspected.
  d.tls_quirks.parses_versions = {net::TlsVersion::kTls10, net::TlsVersion::kTls11,
                                  net::TlsVersion::kTls12};
  d.services = {
      {22, "ssh", "SSH-2.0-Kaspersky Web Traffic Security"},
  };
  d.stack = {128, 8192, 1380, true, 128};  // Windows-derived stack
  return d;
}

// The three vendors below are the classic worldwide filtering products the
// paper's related work documents (Planet Netsweeper [16], Planet Blue Coat
// [46], Sandvine PacketLogic [44, 1]); they appear in the worldwide
// blockpage case-study scenario rather than the four country studies.

DeviceConfig netsweeper(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "Netsweeper";
  d.action = BlockAction::kBlockpage;
  d.tls_action = BlockAction::kRstInject;
  d.blockpage_html =
      "<html><body><h1>Web Page Blocked</h1><p>This page has been denied "
      "by your network administrator. Category filtering by Netsweeper "
      "WebAdmin.</p></body></html>";
  d.http_quirks.method_allowlist = methods({"GET", "POST", "PUT", "HEAD"});
  d.http_quirks.version_check = VersionCheck::kPrefixHttp;
  d.http_quirks.host_word_check = HostWordCheck::kContainsHost;
  d.injection.init_ttl = 64;
  d.injection.ip_id = 0x2100;
  d.injection.tcp_window = 5840;
  d.services = {
      {8080, "http", "Netsweeper WebAdmin 6.4"},
      {161, "snmp", "SNMPv2-MIB::sysDescr Netsweeper appliance"},
  };
  d.stack = {64, 29200, 1460, true, 64};
  return d;
}

DeviceConfig bluecoat(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "BlueCoat";
  d.action = BlockAction::kBlockpage;
  d.tls_action = BlockAction::kRstInject;
  d.blockpage_html =
      "<html><body><h1>Access Denied</h1><p>Your request was denied because "
      "of its content categorization. Technology by Blue Coat ProxySG."
      "</p></body></html>";
  d.http_quirks.method_allowlist =
      methods({"GET", "POST", "PUT", "HEAD", "DELETE", "OPTIONS"});
  d.http_quirks.version_check = VersionCheck::kValidOnly;  // proxy parses strictly
  d.http_quirks.url_includes_path = true;
  d.injection.init_ttl = 255;
  d.injection.ip_id = 0;
  d.injection.tcp_window = 4096;
  d.services = {
      {443, "https", "Blue Coat ProxySG management console"},
      {23, "telnet", "Blue Coat Systems SG210"},
  };
  d.stack = {255, 8192, 1400, false, 255};
  return d;
}

DeviceConfig sandvine(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "Sandvine";
  d.action = BlockAction::kRstInject;  // the PacketLogic reset-injection MO
  d.http_quirks.method_allowlist = methods({"GET", "POST"});
  d.http_quirks.version_check = VersionCheck::kNone;
  d.injection.init_ttl = 64;
  d.injection.ip_id = 0x3412;
  d.injection.tcp_window = 32768;
  d.injection.max_injections_per_flow = 3;
  d.services = {
      {22, "ssh", "SSH-2.0-PacketLogic"},
  };
  d.stack = {64, 26883, 1460, true, 64};
  return d;
}

DeviceConfig by_dpi(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "";  // unattributed national DPI
  d.on_path = true;
  d.action = BlockAction::kRstInject;
  d.http_quirks.method_allowlist = methods({"GET", "POST", "PUT", "HEAD"});
  d.http_quirks.version_check = VersionCheck::kPrefixHttp;
  d.http_quirks.host_word_check = HostWordCheck::kContainsHost;
  d.tls_quirks.parses_versions = {net::TlsVersion::kTls10, net::TlsVersion::kTls11,
                                  net::TlsVersion::kTls12};
  d.injection.init_ttl = 64;
  d.injection.ip_id = 0xbeef;
  d.injection.tcp_window = 0;
  d.residual_block_ms = 60 * kSecond;
  return d;
}

DeviceConfig tspu(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "";  // TSPU-style box, no visible services
  d.action = BlockAction::kDrop;
  // Modern DPI: broad method coverage including PATCH (keeps the paper's
  // PATCH evasion rate below 100%).
  d.http_quirks.method_allowlist =
      methods({"GET", "POST", "PUT", "HEAD", "PATCH", "DELETE", "OPTIONS"});
  d.http_quirks.version_check = VersionCheck::kNone;
  d.residual_block_ms = 60 * kSecond;
  return d;
}

DeviceConfig ru_rstcopy(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "";
  d.action = BlockAction::kRstInject;
  d.http_quirks.method_allowlist = methods({"GET", "POST"});
  d.http_quirks.version_check = VersionCheck::kPrefixHttp;
  // The "Past E" phenomenon (§4.3): injected resets copy the IP header —
  // including the remaining TTL — from the censored probe.
  d.injection.copy_ttl_from_trigger = true;
  d.injection.ip_id = 0;
  d.injection.tcp_window = 0;
  return d;
}

DeviceConfig unknown(const std::string& id) {
  DeviceConfig d;
  d.id = id;
  d.vendor = "";
  d.action = BlockAction::kDrop;
  return d;
}

}  // namespace

DeviceConfig make_vendor_device(const std::string& vendor, const std::string& id) {
  if (vendor == "Fortinet") return fortinet(id);
  if (vendor == "Cisco") return cisco(id);
  if (vendor == "Kerio") return kerio(id);
  if (vendor == "PaloAlto") return paloalto(id);
  if (vendor == "DDoSGuard") return ddosguard(id);
  if (vendor == "MikroTik") return mikrotik(id);
  if (vendor == "Kaspersky") return kaspersky(id);
  if (vendor == "Netsweeper") return netsweeper(id);
  if (vendor == "BlueCoat") return bluecoat(id);
  if (vendor == "Sandvine") return sandvine(id);
  if (vendor == "BY-DPI") return by_dpi(id);
  if (vendor == "TSPU") return tspu(id);
  if (vendor == "RU-RSTCOPY") return ru_rstcopy(id);
  if (vendor == "Unknown") return unknown(id);
  throw std::invalid_argument("unknown vendor profile: " + vendor);
}

const std::vector<std::string>& known_vendors() {
  static const std::vector<std::string> kAll = {
      "Fortinet",   "Cisco",    "Kerio",  "PaloAlto", "DDoSGuard",
      "MikroTik",   "Kaspersky", "Netsweeper", "BlueCoat", "Sandvine",
      "BY-DPI",     "TSPU",     "RU-RSTCOPY", "Unknown"};
  return kAll;
}

const std::vector<std::string>& commercial_vendors() {
  // The seven the paper identifies in AZ/BY/KZ/RU, plus the three classic
  // worldwide filtering products from its related work.
  static const std::vector<std::string> kCommercial = {
      "Fortinet",  "Cisco",      "Kerio",    "PaloAlto", "DDoSGuard",
      "MikroTik",  "Kaspersky",  "Netsweeper", "BlueCoat", "Sandvine"};
  return kCommercial;
}

std::optional<std::string> match_blockpage(std::string_view html) {
  // Vendor-specific strings first; the bare "Web Page Blocked!" heading is
  // a Fortinet fallback and must not shadow more specific pages.
  if (html.find("Netsweeper") != std::string_view::npos) return "Netsweeper";
  if (html.find("Blue Coat") != std::string_view::npos) return "BlueCoat";
  if (html.find("Sandvine") != std::string_view::npos) return "Sandvine";
  if (html.find("Kerio Control") != std::string_view::npos) return "Kerio";
  if (html.find("Palo Alto Networks") != std::string_view::npos) return "PaloAlto";
  if (html.find("ddos-guard") != std::string_view::npos ||
      html.find("DDoS-Guard") != std::string_view::npos) {
    return "DDoSGuard";
  }
  if (html.find("FortiGuard") != std::string_view::npos ||
      html.find("Web Page Blocked!") != std::string_view::npos) {
    return "Fortinet";
  }
  return std::nullopt;
}

net::Ipv4Address dns_sinkhole_address() { return net::Ipv4Address(10, 66, 66, 66); }

std::optional<std::string> match_dns_sinkhole(net::Ipv4Address address) {
  // Curated injected-answer fingerprints (the DNS analogue of the
  // Censored Planet blockpage list).
  if (address == dns_sinkhole_address()) return "DNS-INJECT";
  if (address == net::Ipv4Address(127, 0, 0, 2)) return "DNS-LOCALHOST-SINKHOLE";
  return std::nullopt;
}

std::optional<std::string> match_banner(std::string_view banner) {
  std::string b = ascii_lower(banner);
  if (b.find("fortinet") != std::string::npos || b.find("fortigate") != std::string::npos ||
      b.find("fortissh") != std::string::npos) {
    return "Fortinet";
  }
  if (b.find("cisco") != std::string::npos ||
      b.find("user access verification") != std::string::npos) {
    return "Cisco";
  }
  if (b.find("kerio") != std::string::npos) return "Kerio";
  if (b.find("pan-os") != std::string::npos || b.find("paloalto") != std::string::npos ||
      b.find("palo alto") != std::string::npos) {
    return "PaloAlto";
  }
  if (b.find("ddos-guard") != std::string::npos) return "DDoSGuard";
  if (b.find("mikrotik") != std::string::npos || b.find("rosssh") != std::string::npos ||
      b.find("routeros") != std::string::npos) {
    return "MikroTik";
  }
  if (b.find("kaspersky") != std::string::npos) return "Kaspersky";
  if (b.find("netsweeper") != std::string::npos) return "Netsweeper";
  if (b.find("blue coat") != std::string::npos || b.find("bluecoat") != std::string::npos) {
    return "BlueCoat";
  }
  if (b.find("packetlogic") != std::string::npos || b.find("sandvine") != std::string::npos) {
    return "Sandvine";
  }
  return std::nullopt;
}

}  // namespace cen::censor
