// Deep-packet-inspection primitives: quirk-parameterized extraction of the
// HTTP Host (+path) and the TLS SNI from raw payload bytes.
//
// These functions model *how a middlebox parses*, which is deliberately
// different from how a well-behaved server parses (net/http.hpp): CenFuzz's
// entire premise (paper §6) is that censors and endpoints disagree on
// malformed input. A return of nullopt means the DPI disengaged — the
// payload passes uninspected.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "censor/quirks.hpp"
#include "core/bytes.hpp"

namespace cen::censor {

struct HttpDpiResult {
  std::string host;
  std::string path;
};

/// Extract (host, path) under the device's HTTP quirks, or nullopt if the
/// parser disengages (bad method, bad version token, missing Host, CRLF
/// violation...).
std::optional<HttpDpiResult> dpi_parse_http(std::string_view raw, const HttpQuirks& q);

/// Extract the SNI under the device's TLS quirks, or nullopt if the TLS
/// parser disengages (malformed record, unsupported version, blinding
/// cipher list, padding confusion) or no SNI is present.
std::optional<std::string> dpi_parse_sni(BytesView raw, const TlsQuirks& q);

/// Quick classification of a payload: does it look like the start of a TLS
/// record (first byte 0x16) vs plaintext?
bool looks_like_tls(BytesView payload);

}  // namespace cen::censor
