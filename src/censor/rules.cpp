#include "censor/rules.hpp"

#include "core/strings.hpp"

namespace cen::censor {

std::string_view match_style_name(MatchStyle style) {
  switch (style) {
    case MatchStyle::kExact: return "exact";
    case MatchStyle::kSuffix: return "suffix";
    case MatchStyle::kPrefix: return "prefix";
    case MatchStyle::kContains: return "contains";
  }
  return "?";
}

bool rule_matches(const DomainRule& rule, std::string_view hostname, bool case_insensitive) {
  std::string h(hostname);
  std::string d = rule.domain;
  if (case_insensitive) {
    h = ascii_lower(h);
    d = ascii_lower(d);
  }
  switch (rule.style) {
    case MatchStyle::kExact:
      return h == d;
    case MatchStyle::kSuffix:
      // "*.domain.tld" semantics: the bare domain or any name ending in it.
      return h == d || ends_with(h, d);
    case MatchStyle::kPrefix:
      return starts_with(h, d);
    case MatchStyle::kContains:
      return h.find(d) != std::string::npos;
  }
  return false;
}

void RuleSet::add(std::string domain, MatchStyle style) {
  rules_.push_back({std::move(domain), style});
}

bool RuleSet::matches(std::string_view hostname) const {
  return first_match(hostname) != nullptr;
}

const DomainRule* RuleSet::first_match(std::string_view hostname) const {
  for (const DomainRule& rule : rules_) {
    if (rule_matches(rule, hostname, case_insensitive_)) return &rule;
  }
  return nullptr;
}

}  // namespace cen::censor
