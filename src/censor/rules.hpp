// Blocking rule sets: which hostnames / server names a device censors.
//
// The paper (§6.3) finds most commercial devices implement *leading*
// wildcard rules (*.blockeddomain.tld — i.e. suffix matching), which is why
// trailing-padded hostnames evade while leading-padded ones do not, and why
// TLD alternation evades more often than subdomain alternation. The rule
// model therefore distinguishes exact, suffix (leading wildcard), prefix
// (trailing wildcard) and substring matching.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cen::censor {

enum class MatchStyle : std::uint8_t {
  kExact,     // hostname == rule
  kSuffix,    // leading wildcard: *.domain.tld (also matches the bare domain)
  kPrefix,    // trailing wildcard: domain.*
  kContains,  // substring anywhere
};

std::string_view match_style_name(MatchStyle style);

struct DomainRule {
  std::string domain;
  MatchStyle style = MatchStyle::kSuffix;

  bool operator==(const DomainRule&) const = default;
};

/// An ordered set of domain rules with a shared case-sensitivity policy.
class RuleSet {
 public:
  RuleSet() = default;
  RuleSet(std::vector<DomainRule> rules, bool case_insensitive)
      : rules_(std::move(rules)), case_insensitive_(case_insensitive) {}

  void add(std::string domain, MatchStyle style = MatchStyle::kSuffix);
  /// True if any rule matches the hostname.
  bool matches(std::string_view hostname) const;
  /// The first rule matching the hostname, or nullptr.
  const DomainRule* first_match(std::string_view hostname) const;

  bool empty() const { return rules_.empty(); }
  std::size_t size() const { return rules_.size(); }
  bool case_insensitive() const { return case_insensitive_; }
  void set_case_insensitive(bool v) { case_insensitive_ = v; }
  const std::vector<DomainRule>& rules() const { return rules_; }

 private:
  std::vector<DomainRule> rules_;
  bool case_insensitive_ = true;
};

/// Single-rule matching primitive (exposed for tests and the fuzzer oracle).
bool rule_matches(const DomainRule& rule, std::string_view hostname, bool case_insensitive);

}  // namespace cen::censor
