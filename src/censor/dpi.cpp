#include "censor/dpi.hpp"

#include <algorithm>

#include "core/strings.hpp"
#include "net/http.hpp"

namespace cen::censor {

namespace {

/// Split into lines under the device's delimiter discipline. Strict (CRLF)
/// parsers recognise only "\r\n"; tolerant ones accept "\n" and trim "\r".
std::vector<std::string> dpi_lines(std::string_view raw, bool requires_crlf) {
  std::vector<std::string> lines;
  if (requires_crlf) {
    for (std::string& piece : split(raw, std::string_view("\r\n"))) {
      lines.push_back(std::move(piece));
    }
    // If no CRLF is present at all, the strict tokenizer yields a single
    // segment (the whole buffer) — the caller treats that as disengaged.
  } else {
    for (std::string& piece : split(raw, '\n')) {
      if (!piece.empty() && piece.back() == '\r') piece.pop_back();
      lines.push_back(std::move(piece));
    }
  }
  return lines;
}

bool method_engages(std::string_view method, const HttpQuirks& q) {
  if (q.method_allowlist.empty()) return !method.empty();
  for (const std::string& allowed : q.method_allowlist) {
    bool match = q.method_case_insensitive ? iequals(method, allowed) : method == allowed;
    if (match) return true;
  }
  return false;
}

bool version_engages(std::string_view version, const HttpQuirks& q) {
  switch (q.version_check) {
    case VersionCheck::kNone:
      return true;
    case VersionCheck::kPrefixHttp: {
      if (version.size() < 5) return false;
      std::string_view prefix = version.substr(0, 5);
      return q.version_prefix_case_insensitive ? iequals(prefix, "HTTP/") : prefix == "HTTP/";
    }
    case VersionCheck::kValidOnly:
      return version == "HTTP/1.1" || version == "HTTP/1.0";
  }
  return false;
}

bool host_word_engages(std::string_view name, const HttpQuirks& q) {
  switch (q.host_word_check) {
    case HostWordCheck::kExactCaseInsensitive:
      return iequals(name, "Host");
    case HostWordCheck::kExactCaseSensitive:
      return name == "Host";
    case HostWordCheck::kContainsHost:
      return ascii_lower(name).find("host") != std::string::npos;
  }
  return false;
}

}  // namespace

std::optional<HttpDpiResult> dpi_parse_http(std::string_view raw, const HttpQuirks& q) {
  std::vector<std::string> lines = dpi_lines(raw, q.requires_crlf);
  if (lines.size() < 2) return std::nullopt;  // no recognised line delimiter
  // Under strict CRLF parsing, embedded bare CR/LF inside a "line" means
  // the sender violated the discipline; the DPI's tokenizer then sees a
  // garbled request line and disengages.
  if (q.requires_crlf) {
    for (const std::string& line : lines) {
      if (line.find('\n') != std::string::npos || line.find('\r') != std::string::npos) {
        return std::nullopt;
      }
    }
  }

  // Request line: METHOD SP PATH SP VERSION.
  const std::string& request_line = lines[0];
  std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string::npos) return std::nullopt;
  std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return std::nullopt;
  std::string_view method = std::string_view(request_line).substr(0, sp1);
  std::string_view path = std::string_view(request_line).substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = trim(std::string_view(request_line).substr(sp2 + 1));
  if (!method_engages(method, q)) return std::nullopt;
  if (!version_engages(version, q)) return std::nullopt;

  // Header scan for the Host keyword.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) break;  // end of header block
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string_view name = trim(std::string_view(line).substr(0, colon));
    if (!host_word_engages(name, q)) continue;
    HttpDpiResult result;
    result.host = std::string(trim(std::string_view(line).substr(colon + 1)));
    result.path = std::string(path);
    return result;
  }
  return std::nullopt;  // no Host header the DPI recognises
}

std::optional<std::string> dpi_parse_sni(BytesView raw, const TlsQuirks& q) {
  net::ClientHello ch;
  try {
    ch = net::ClientHello::parse(raw);
  } catch (const ParseError&) {
    return std::nullopt;
  }

  // Version tolerance: the hello must advertise at least one version the
  // DPI's parser understands (legacy field or supported_versions ext).
  std::vector<net::TlsVersion> advertised = ch.supported_versions();
  advertised.push_back(ch.legacy_version);
  bool version_ok = std::any_of(advertised.begin(), advertised.end(), [&](net::TlsVersion v) {
    return std::find(q.parses_versions.begin(), q.parses_versions.end(), v) !=
           q.parses_versions.end();
  });
  if (!version_ok) return std::nullopt;

  // Blind cipher lists: a hello offering only a cipher the device cannot
  // classify is not recognised as web traffic.
  if (ch.cipher_suites.size() == 1 && !q.blind_cipher_suites.empty()) {
    if (std::find(q.blind_cipher_suites.begin(), q.blind_cipher_suites.end(),
                  ch.cipher_suites[0]) != q.blind_cipher_suites.end()) {
      return std::nullopt;
    }
  }

  if (q.breaks_on_padding_extension) {
    for (const net::TlsExtension& ext : ch.extensions) {
      if (ext.type == net::TlsExtensionType::kPadding) return std::nullopt;
    }
  }

  return ch.sni();
}

bool looks_like_tls(BytesView payload) { return !payload.empty() && payload[0] == 0x16; }

}  // namespace cen::censor
