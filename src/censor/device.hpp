// Censorship middlebox model: configuration + stateful runtime.
//
// A device is deployed at a point in the simulated network (in-path on a
// link, or on-path as a passive tap that can only inject). It inspects
// client→endpoint payloads with its quirky DPI parsers, matches extracted
// hostnames/SNIs against its rule set, and reacts with its configured
// action: silently dropping packets, injecting spoofed TCP RST/FIN, or
// injecting an HTTP blockpage. Stateful behaviours the paper works around
// (§4.1) are modelled: residual blocking windows keyed by (client,
// endpoint) and per-flow injection count limits.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "censor/quirks.hpp"
#include "censor/rules.hpp"
#include "core/arena.hpp"
#include "core/clock.hpp"
#include "core/flat_map.hpp"
#include "net/packet.hpp"
#include "net/udp.hpp"

namespace cen::censor {

enum class BlockAction : std::uint8_t { kDrop, kRstInject, kFinInject, kBlockpage };

std::string_view block_action_name(BlockAction a);

/// Network-layer fingerprint of the packets a device injects. These fields
/// surface directly as clustering features (paper Table 3 / Fig. 9:
/// InjectedIPTTL, InjectedIPFlags, ...).
struct InjectionProfile {
  std::uint8_t init_ttl = 64;
  /// TTL-copying injectors (observed in RU, §4.3 "Past E"): the injected
  /// packet inherits the *remaining* TTL of the triggering probe.
  bool copy_ttl_from_trigger = false;
  std::uint16_t ip_id = 0;       // fixed IP ID stamped on injected packets
  std::uint8_t ip_flags = 0x2;   // DF by default
  std::uint8_t ip_tos = 0;
  std::uint16_t tcp_window = 0;
  std::vector<net::TcpOption> tcp_options;
  /// Some middleboxes inject at most N times per TCP connection (§4.1);
  /// -1 = unlimited.
  int max_injections_per_flow = -1;
};

/// A service a device exposes on its management IP (used by banner grabs).
struct ServiceBanner {
  std::uint16_t port = 0;
  std::string protocol;  // "http", "https", "ssh", "telnet", "ftp", "smtp", "snmp"
  std::string banner;
};

/// TCP-stack fingerprint of a device's management plane — what Nmap's
/// crafted probes recover (§5.1): initial TTL and window of the SYN/ACK,
/// option support, and the TTL of RSTs from closed ports. OS stacks differ
/// on these per vendor, which is why they appear in Table 3's feature set.
struct StackFingerprint {
  std::uint8_t synack_ttl = 64;
  std::uint16_t synack_window = 29200;  // Linux default
  std::uint16_t mss = 1460;
  bool sack_permitted = true;
  std::uint8_t rst_ttl = 64;

  bool operator==(const StackFingerprint&) const = default;
};

struct DeviceConfig {
  std::string id;            // unique deployment id, e.g. "kz-kazakhtelecom-1"
  std::string vendor;        // ground-truth vendor ("" = unknown/ISP-built)
  bool on_path = false;      // passive tap (inject-only) vs inline
  BlockAction action = BlockAction::kDrop;
  /// Override for TLS flows (blockpage injectors cannot place a page into
  /// an encrypted stream, so e.g. Fortinet resets TLS instead).
  std::optional<BlockAction> tls_action;
  /// Residual blocking: after a trigger, payload packets between the same
  /// (client, endpoint) pair are subjected to `action` for this window.
  SimTime residual_block_ms = 0;
  RuleSet http_rules;
  RuleSet sni_rules;
  /// DNS-query names the device censors (the paper's protocol extension:
  /// national DNS injectors). Empty = device ignores DNS.
  RuleSet dns_rules;
  /// For DNS triggers with a blockpage-class action: inject a spoofed A
  /// record pointing here; unset = inject NXDOMAIN.
  std::optional<net::Ipv4Address> dns_sinkhole;
  HttpQuirks http_quirks;
  TlsQuirks tls_quirks;
  /// How the device reassembles TCP segments before classification. The
  /// default is the inert (endpoint-equivalent) profile; vendors differ
  /// here, and cenambig fingerprints exactly these differences.
  ReassemblyQuirks reassembly;
  InjectionProfile injection;
  std::string blockpage_html;  // body injected when action == kBlockpage
  /// Management address — for in-path devices this is typically the IP of
  /// the router whose link they sit on; banner grabs probe it.
  std::optional<net::Ipv4Address> mgmt_ip;
  std::vector<ServiceBanner> services;  // open ports on the management IP
  /// TCP-stack behaviour of the management plane (Nmap-recoverable).
  StackFingerprint stack;
};

/// What the engine should do with an inspected packet.
struct Verdict {
  bool drop = false;                         // consume the packet (in-path only)
  bool triggered = false;                    // DPI matched a rule
  std::vector<net::Packet> inject_to_client; // spoofed packets toward the client
};

/// UDP counterpart: DNS-over-UDP injectors forge answer datagrams.
struct UdpVerdict {
  bool drop = false;
  bool triggered = false;
  std::vector<net::UdpDatagram> inject_to_client;
};

class Device {
 public:
  explicit Device(DeviceConfig config)
      : config_(std::make_shared<const DeviceConfig>(std::move(config))) {}
  /// Share an existing (immutable) configuration — the clone() path:
  /// worker replicas get fresh runtime state but reference the same
  /// config instead of deep-copying its rule sets and strings.
  explicit Device(std::shared_ptr<const DeviceConfig> config)
      : config_(std::move(config)) {}

  /// Inspect a client→endpoint packet seen at the device's deployment
  /// point. `now` drives residual-state expiry.
  Verdict inspect(const net::Packet& packet, SimTime now);

  /// Inspect a client→endpoint UDP datagram (DNS queries). An on-path
  /// injector forges an answer datagram and lets the original through —
  /// the race every national DNS injector runs.
  UdpVerdict inspect_udp(const net::UdpDatagram& datagram, SimTime now);

  /// Would this payload trigger the device's rules? (Stateless oracle used
  /// by tests and the fuzzer's ground-truth checks.)
  bool payload_triggers(BytesView payload) const;

  /// Legacy inspection mode: classify every packet's payload in isolation,
  /// exactly as before the segment-reassembly path existed. Only the
  /// cencheck `ambig` engine uses this, to prove that inert
  /// ReassemblyQuirks are byte-identical to the historical behaviour.
  void set_assembled_bypass(bool on) { assembled_bypass_ = on; }

  /// Would this contiguous byte prefix still grow, or is it a complete
  /// classifiable message (full TLS record, length-satisfied DNS message,
  /// blank-line-terminated HTTP header block)? Exposed for the probe
  /// crafters and tests.
  static bool message_complete(BytesView data);

  /// The UDP oracle: bare (unframed) DNS messages.
  bool udp_payload_triggers(BytesView payload) const;

  const DeviceConfig& config() const { return *config_; }
  /// The shared configuration handle (clone() passes it to replicas).
  const std::shared_ptr<const DeviceConfig>& config_ptr() const { return config_; }
  /// Clear all per-flow and residual state (fresh measurement epoch).
  /// Cheap when the device never triggered since the last reset — the
  /// dirty flag makes the per-task sub-epoch rollback a no-op for the
  /// (common) devices a task's flow never touched.
  void reset_state();
  /// Number of times the device has triggered since construction/reset.
  std::size_t trigger_count() const { return trigger_count_; }

 private:
  struct FlowKey {
    std::uint32_t src = 0, dst = 0;
    std::uint16_t sport = 0, dport = 0;
    auto operator<=>(const FlowKey&) const = default;
  };
  struct PairKey {
    std::uint32_t src = 0, dst = 0;
    auto operator<=>(const PairKey&) const = default;
  };

  /// Memoized DPI verdict. `payload_triggers` is a pure function of the
  /// payload bytes and the (immutable) config: no RNG, no state. The
  /// measurement loop re-sends the same handful of payloads hundreds of
  /// times (11 sweep repetitions x hops x retries), so a tiny exact-bytes
  /// cache removes the dominant parse cost. Entries store their bytes in
  /// a per-device arena (contiguous, allocation-free on reuse); the cache
  /// stops admitting entries at the cap so fuzz-stage payload diversity
  /// cannot bloat it.
  struct DpiCacheEntry {
    std::uint64_t hash = 0;
    const std::uint8_t* data = nullptr;
    std::uint32_t len = 0;
    bool triggers = false;
  };
  static constexpr std::size_t kDpiCacheCap = 48;

  /// Per-flow reassembly window. Only *partial* messages ever allocate one:
  /// a segment that alone forms a complete message is classified inline and
  /// never touches member state, keeping the historical hot path (and the
  /// cheap dirty_-gated reset) intact for unsegmented traffic.
  struct FlowWindow {
    std::uint32_t base_seq = 0;  // TCP seq of data_[0]
    std::uint8_t base_ttl = 0;   // arriving TTL of the segment that opened it
    Bytes data;
    std::vector<bool> filled;    // per-byte coverage (holes from OOO arrival)
  };
  static constexpr std::size_t kMaxWindowBytes = 8 * 1024;

  BlockAction effective_action(const net::Packet& packet) const;
  std::vector<net::Packet> craft_injections(const net::Packet& trigger,
                                            BlockAction action) const;
  bool payload_triggers_uncached(BytesView payload) const;
  /// Segment-level classification: feeds the packet through the device's
  /// ReassemblyQuirks and classifies whatever message (if any) concludes.
  bool classify_segment(const net::Packet& packet);

  std::shared_ptr<const DeviceConfig> config_;
  core::FlatMap<FlowKey, int> flow_injections_;
  core::FlatMap<PairKey, SimTime> residual_until_;
  core::FlatMap<FlowKey, FlowWindow> windows_;
  std::size_t trigger_count_ = 0;
  bool dirty_ = false;
  bool assembled_bypass_ = false;
  mutable std::vector<DpiCacheEntry> dpi_cache_;
  mutable core::Arena dpi_arena_{4 * 1024};
};

}  // namespace cen::censor
