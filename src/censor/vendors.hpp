// Commercial filtering-device vendor profiles.
//
// The paper identifies seven commercial vendors across AZ/BY/KZ/RU (§5.3):
// Cisco (7 deployments), Fortinet (5 + 4 blockpage-only), Kerio Control (2),
// Palo Alto (2), DDoS-Guard (1), MikroTik (1), Kaspersky (1) — plus
// unattributed ISP-built systems (Beltelecom's on-path RST injector in BY,
// Russia's decentralized TSPU-style drop/RST boxes). Each profile bundles
// the DPI quirks, blocking action, injection fingerprint, blockpage, and
// management-plane banners that make deployments of the same vendor cluster
// together (§7.4).
//
// Quirk assignments follow the paper's aggregate findings: e.g. PATCH and
// empty methods evade most vendors, invalid HTTP versions evade few, Host
// keyword matching is case-insensitive nearly everywhere, and most rule
// sets use leading wildcards (suffix matching).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "censor/device.hpp"

namespace cen::censor {

/// Vendor factory: returns a DeviceConfig preset for the named vendor with
/// empty rule sets (the scenario fills in country-specific blocklists).
/// Known names: "Fortinet", "Cisco", "Kerio", "PaloAlto", "DDoSGuard",
/// "MikroTik", "Kaspersky", "BY-DPI" (unattributed on-path injector),
/// "TSPU" (unattributed RU drop box), "RU-RSTCOPY" (unattributed RU
/// TTL-copying RST injector), "Unknown" (no banners, drop).
DeviceConfig make_vendor_device(const std::string& vendor, const std::string& id);

/// All vendor names the factory accepts, commercial ones first.
const std::vector<std::string>& known_vendors();
/// The subset that are commercial products with identifiable banners.
const std::vector<std::string>& commercial_vendors();

/// Censored Planet–style blockpage fingerprinting: match an HTTP body
/// against the curated pattern list and return the vendor it identifies.
std::optional<std::string> match_blockpage(std::string_view html);

/// Recog-style banner fingerprinting: match one service banner and return
/// the vendor it identifies.
std::optional<std::string> match_banner(std::string_view banner);

/// DNS analogue of the blockpage list: known sinkhole addresses national
/// DNS injectors answer with. Returns the deployment label when matched.
std::optional<std::string> match_dns_sinkhole(net::Ipv4Address address);
/// The canonical sinkhole address used by the "DNS-INJECT" profile.
net::Ipv4Address dns_sinkhole_address();

}  // namespace cen::censor
