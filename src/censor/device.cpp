#include "censor/device.hpp"

#include <cstring>

#include "censor/dpi.hpp"
#include "core/strings.hpp"
#include "net/dns.hpp"
#include "net/http.hpp"

namespace cen::censor {

std::string_view block_action_name(BlockAction a) {
  switch (a) {
    case BlockAction::kDrop: return "drop";
    case BlockAction::kRstInject: return "rst";
    case BlockAction::kFinInject: return "fin";
    case BlockAction::kBlockpage: return "blockpage";
  }
  return "?";
}

bool Device::payload_triggers_uncached(BytesView payload) const {
  if (payload.empty()) return false;
  if (looks_like_tls(payload)) {
    std::optional<std::string> sni = dpi_parse_sni(payload, config_->tls_quirks);
    return sni && config_->sni_rules.matches(*sni);
  }
  if (net::looks_like_tcp_dns(payload)) {
    if (config_->dns_rules.empty()) return false;
    try {
      net::DnsMessage query = net::DnsMessage::parse_tcp(payload);
      return !query.is_response && !query.questions.empty() &&
             config_->dns_rules.matches(query.questions.front().qname);
    } catch (const ParseError&) {
      return false;
    }
  }
  std::optional<HttpDpiResult> http =
      dpi_parse_http(to_string(payload), config_->http_quirks);
  if (!http) return false;
  const DomainRule* rule = config_->http_rules.first_match(http->host);
  if (rule == nullptr) return false;
  if (config_->http_quirks.url_includes_path && http->path != "/") return false;
  return true;
}

namespace {
std::uint64_t fnv1a(BytesView payload) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : payload) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

bool Device::payload_triggers(BytesView payload) const {
  if (payload.empty()) return false;
  // The verdict is a pure function of (payload bytes, config): safe to
  // memoize. Exact-bytes match — the hash only narrows the scan; memcmp
  // decides, so fault-mangled payload variants can never alias.
  const std::uint64_t hash = fnv1a(payload);
  for (const DpiCacheEntry& e : dpi_cache_) {
    if (e.hash == hash && e.len == payload.size() &&
        std::memcmp(e.data, payload.data(), payload.size()) == 0) {
      return e.triggers;
    }
  }
  bool triggers = payload_triggers_uncached(payload);
  if (dpi_cache_.size() < kDpiCacheCap) {
    auto* copy = dpi_arena_.allocate_array<std::uint8_t>(payload.size());
    std::memcpy(copy, payload.data(), payload.size());
    dpi_cache_.push_back(
        {hash, copy, static_cast<std::uint32_t>(payload.size()), triggers});
  }
  return triggers;
}

BlockAction Device::effective_action(const net::Packet& packet) const {
  if (config_->tls_action && looks_like_tls(packet.payload)) return *config_->tls_action;
  return config_->action;
}

std::vector<net::Packet> Device::craft_injections(const net::Packet& trigger,
                                                  BlockAction action) const {
  const InjectionProfile& prof = config_->injection;
  std::vector<net::Packet> out;

  auto base = [&](std::uint8_t flags) {
    net::Packet p;
    p.ip.src = trigger.ip.dst;  // spoofed as the endpoint
    p.ip.dst = trigger.ip.src;
    p.ip.ttl = prof.copy_ttl_from_trigger ? trigger.ip.ttl : prof.init_ttl;
    p.ip.identification = prof.ip_id;
    p.ip.flags = prof.ip_flags;
    p.ip.tos = prof.ip_tos;
    p.tcp.src_port = trigger.tcp.dst_port;
    p.tcp.dst_port = trigger.tcp.src_port;
    p.tcp.flags = flags;
    p.tcp.seq = trigger.tcp.ack;
    p.tcp.ack =
        trigger.tcp.seq + static_cast<std::uint32_t>(trigger.payload.size());
    p.tcp.window = prof.tcp_window;
    p.tcp.options = prof.tcp_options;
    return p;
  };

  switch (action) {
    case BlockAction::kDrop:
      break;
    case BlockAction::kRstInject:
      out.push_back(base(net::TcpFlags::kRst | net::TcpFlags::kAck));
      break;
    case BlockAction::kFinInject:
      out.push_back(base(net::TcpFlags::kFin | net::TcpFlags::kAck));
      break;
    case BlockAction::kBlockpage: {
      net::Packet page = base(net::TcpFlags::kPsh | net::TcpFlags::kAck);
      if (net::looks_like_tcp_dns(trigger.payload)) {
        // DNS trigger: the "page" is a spoofed answer (sinkhole A record,
        // or NXDOMAIN when no sinkhole is configured).
        try {
          net::DnsMessage query = net::DnsMessage::parse_tcp(trigger.payload);
          net::DnsMessage forged = config_->dns_sinkhole
                                       ? net::make_dns_response(query, *config_->dns_sinkhole)
                                       : net::make_dns_nxdomain(query);
          page.payload = forged.serialize_tcp();
          out.push_back(std::move(page));
        } catch (const ParseError&) {
        }
        break;
      }
      net::HttpResponse resp = net::HttpResponse::make(403, "Forbidden",
                                                       config_->blockpage_html);
      page.payload = to_bytes(resp.serialize());
      out.push_back(std::move(page));
      // Real blockpage injectors tear the connection down after the page.
      net::Packet rst = base(net::TcpFlags::kRst | net::TcpFlags::kAck);
      rst.tcp.seq = page.tcp.seq + static_cast<std::uint32_t>(page.payload.size());
      out.push_back(std::move(rst));
      break;
    }
  }
  return out;
}

Verdict Device::inspect(const net::Packet& packet, SimTime now) {
  Verdict v;

  PairKey pair{packet.ip.src.value(), packet.ip.dst.value()};
  auto residual = residual_until_.find(pair);
  bool residual_active = residual != residual_until_.end() && residual->second > now;

  bool content_trigger = payload_triggers(packet.payload);
  bool trigger = content_trigger || (residual_active && !packet.payload.empty());
  if (!trigger) return v;

  v.triggered = true;
  ++trigger_count_;
  dirty_ = true;
  if (config_->residual_block_ms > 0) {
    residual_until_[pair] = now + config_->residual_block_ms;
  }

  // Per-flow injection budget (§4.1: some middleboxes inject a limited
  // number of times per TCP connection).
  FlowKey flow{packet.ip.src.value(), packet.ip.dst.value(), packet.tcp.src_port,
               packet.tcp.dst_port};
  int& injected = flow_injections_[flow];
  bool budget_ok = config_->injection.max_injections_per_flow < 0 ||
                   injected < config_->injection.max_injections_per_flow;

  BlockAction action = effective_action(packet);
  if (action == BlockAction::kDrop) {
    // Drop-based censorship: only inline devices can actually remove the
    // packet; an on-path tap configured to "drop" cannot and the packet
    // sails through (the paper notes on-path devices must inject).
    v.drop = !config_->on_path;
    return v;
  }

  if (budget_ok) {
    v.inject_to_client = craft_injections(packet, action);
    ++injected;
  }
  // Inline injectors consume the original packet; taps cannot.
  v.drop = !config_->on_path;
  return v;
}

bool Device::udp_payload_triggers(BytesView payload) const {
  if (payload.empty() || config_->dns_rules.empty()) return false;
  try {
    net::DnsMessage query = net::DnsMessage::parse(payload);
    return !query.is_response && !query.questions.empty() &&
           config_->dns_rules.matches(query.questions.front().qname);
  } catch (const ParseError&) {
    return false;
  }
}

UdpVerdict Device::inspect_udp(const net::UdpDatagram& datagram, SimTime now) {
  UdpVerdict v;
  PairKey pair{datagram.ip.src.value(), datagram.ip.dst.value()};
  auto residual = residual_until_.find(pair);
  bool residual_active = residual != residual_until_.end() && residual->second > now;

  bool content_trigger = udp_payload_triggers(datagram.payload);
  if (!content_trigger && !(residual_active && !datagram.payload.empty())) return v;
  v.triggered = true;
  ++trigger_count_;
  dirty_ = true;
  if (config_->residual_block_ms > 0) {
    residual_until_[pair] = now + config_->residual_block_ms;
  }

  BlockAction action = config_->action;
  if (action == BlockAction::kDrop) {
    v.drop = !config_->on_path;
    return v;
  }
  // Any injecting action on UDP means forging an answer: there is no
  // connection to reset. The forged datagram carries the device's
  // injection fingerprint in its IP header.
  if (content_trigger) {
    try {
      net::DnsMessage query = net::DnsMessage::parse(datagram.payload);
      net::DnsMessage forged = config_->dns_sinkhole
                                   ? net::make_dns_response(query, *config_->dns_sinkhole)
                                   : net::make_dns_nxdomain(query);
      net::UdpDatagram reply;
      reply.ip.src = datagram.ip.dst;  // spoofed as the resolver
      reply.ip.dst = datagram.ip.src;
      reply.ip.ttl = config_->injection.copy_ttl_from_trigger ? datagram.ip.ttl
                                                             : config_->injection.init_ttl;
      reply.ip.identification = config_->injection.ip_id;
      reply.ip.flags = config_->injection.ip_flags;
      reply.udp.src_port = datagram.udp.dst_port;
      reply.udp.dst_port = datagram.udp.src_port;
      reply.payload = forged.serialize();
      v.inject_to_client.push_back(std::move(reply));
    } catch (const ParseError&) {
    }
  }
  v.drop = !config_->on_path;
  return v;
}

void Device::reset_state() {
  if (!dirty_) return;  // nothing touched since the last reset
  flow_injections_.clear();
  residual_until_.clear();
  dirty_ = false;
}

}  // namespace cen::censor
