#include "censor/device.hpp"

#include <cstring>

#include "censor/dpi.hpp"
#include "core/strings.hpp"
#include "net/dns.hpp"
#include "net/http.hpp"

namespace cen::censor {

std::string_view block_action_name(BlockAction a) {
  switch (a) {
    case BlockAction::kDrop: return "drop";
    case BlockAction::kRstInject: return "rst";
    case BlockAction::kFinInject: return "fin";
    case BlockAction::kBlockpage: return "blockpage";
  }
  return "?";
}

bool Device::payload_triggers_uncached(BytesView payload) const {
  if (payload.empty()) return false;
  if (looks_like_tls(payload)) {
    std::optional<std::string> sni = dpi_parse_sni(payload, config_->tls_quirks);
    return sni && config_->sni_rules.matches(*sni);
  }
  if (net::looks_like_tcp_dns(payload)) {
    if (config_->dns_rules.empty()) return false;
    try {
      net::DnsMessage query = net::DnsMessage::parse_tcp(payload);
      return !query.is_response && !query.questions.empty() &&
             config_->dns_rules.matches(query.questions.front().qname);
    } catch (const ParseError&) {
      return false;
    }
  }
  std::optional<HttpDpiResult> http =
      dpi_parse_http(to_string(payload), config_->http_quirks);
  if (!http) return false;
  const DomainRule* rule = config_->http_rules.first_match(http->host);
  if (rule == nullptr) return false;
  if (config_->http_quirks.url_includes_path && http->path != "/") return false;
  return true;
}

namespace {
std::uint64_t fnv1a(BytesView payload) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint8_t b : payload) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

bool Device::payload_triggers(BytesView payload) const {
  if (payload.empty()) return false;
  // The verdict is a pure function of (payload bytes, config): safe to
  // memoize. Exact-bytes match — the hash only narrows the scan; memcmp
  // decides, so fault-mangled payload variants can never alias.
  const std::uint64_t hash = fnv1a(payload);
  for (const DpiCacheEntry& e : dpi_cache_) {
    if (e.hash == hash && e.len == payload.size() &&
        std::memcmp(e.data, payload.data(), payload.size()) == 0) {
      return e.triggers;
    }
  }
  bool triggers = payload_triggers_uncached(payload);
  if (dpi_cache_.size() < kDpiCacheCap) {
    auto* copy = dpi_arena_.allocate_array<std::uint8_t>(payload.size());
    std::memcpy(copy, payload.data(), payload.size());
    dpi_cache_.push_back(
        {hash, copy, static_cast<std::uint32_t>(payload.size()), triggers});
  }
  return triggers;
}

bool Device::message_complete(BytesView data) {
  if (data.empty()) return false;
  if (looks_like_tls(data)) {
    if (data.size() < 5) return false;
    const std::size_t record_len =
        static_cast<std::size_t>(data[3]) << 8 | static_cast<std::size_t>(data[4]);
    return data.size() >= 5 + record_len;
  }
  // A DNS-over-TCP message is complete exactly when its length prefix is
  // satisfied (looks_like_tcp_dns requires len == size - 2); a still-growing
  // one falls through to the plaintext rule and stays incomplete.
  if (net::looks_like_tcp_dns(data)) return true;
  // Plaintext/HTTP: the blank line ends the header block. Every payload the
  // request serializer emits carries one, so unsegmented traffic always
  // classifies inline (the historical behaviour).
  std::string_view s(reinterpret_cast<const char*>(data.data()), data.size());
  return s.find("\r\n\r\n") != std::string_view::npos ||
         s.find("\n\n") != std::string_view::npos;
}

namespace {

/// Length of the gap-free prefix of a window's coverage bitmap.
std::size_t contiguous_prefix(const std::vector<bool>& filled) {
  std::size_t n = 0;
  while (n < filled.size() && filled[n]) ++n;
  return n;
}

}  // namespace

bool Device::classify_segment(const net::Packet& packet) {
  if (assembled_bypass_) return payload_triggers(packet.payload);
  if (packet.payload.empty()) return false;

  const ReassemblyQuirks& rq = config_->reassembly;
  if (!packet.checksum_ok && rq.validates_checksum) return false;  // decoy discarded
  // No reassembly buffer: every segment is classified in isolation.
  if (!rq.reassembles) return payload_triggers(packet.payload);

  FlowKey flow{packet.ip.src.value(), packet.ip.dst.value(), packet.tcp.src_port,
               packet.tcp.dst_port};
  auto it = windows_.find(flow);
  if (it == windows_.end()) {
    // Hot path: a lone segment carrying a whole message is classified
    // inline and never touches member state (so the dirty_-gated reset
    // stays a no-op for unsegmented traffic).
    if (message_complete(packet.payload)) return payload_triggers(packet.payload);
    dirty_ = true;
    FlowWindow w;
    w.base_seq = packet.tcp.seq;
    w.base_ttl = packet.ip.ttl;
    w.data = packet.payload;
    w.filled.assign(packet.payload.size(), true);
    windows_.emplace(flow, std::move(w));
    return false;
  }

  FlowWindow& w = it->second;
  // TTL plausibility: a segment whose arriving TTL deviates from the
  // window opener's is discarded as a suspected insertion packet.
  if (rq.ttl_consistency_check) {
    const int diff = static_cast<int>(packet.ip.ttl) - static_cast<int>(w.base_ttl);
    if (diff > rq.ttl_slack || diff < -static_cast<int>(rq.ttl_slack)) return false;
  }

  const auto raw_off = static_cast<std::int64_t>(
      static_cast<std::int32_t>(packet.tcp.seq - w.base_seq));
  const std::size_t contig = contiguous_prefix(w.filled);
  // A device without an out-of-order buffer accepts only the segment that
  // lands exactly on the window edge; anything else desynchronizes it.
  if (!rq.buffers_out_of_order &&
      raw_off != static_cast<std::int64_t>(contig)) {
    return false;
  }
  std::int64_t off = raw_off;
  if (off < 0) {
    // Earlier bytes than any seen so far: re-anchor the window.
    const auto shift = static_cast<std::size_t>(-off);
    if (w.data.size() + shift > kMaxWindowBytes) {
      windows_.erase(it);
      return payload_triggers(packet.payload);
    }
    w.data.insert(w.data.begin(), shift, 0);
    w.filled.insert(w.filled.begin(), shift, false);
    w.base_seq = packet.tcp.seq;
    off = 0;
  }
  const std::size_t begin = static_cast<std::size_t>(off);
  const std::size_t end = begin + packet.payload.size();
  if (end > kMaxWindowBytes) {
    // Pathological growth: give up on the window, classify in isolation.
    windows_.erase(it);
    return payload_triggers(packet.payload);
  }
  if (end > w.data.size()) {
    w.data.resize(end, 0);
    w.filled.resize(end, false);
  }
  for (std::size_t i = 0; i < packet.payload.size(); ++i) {
    const std::size_t idx = begin + i;
    if (!w.filled[idx] || rq.overlap == OverlapPolicy::kLastWins) {
      w.data[idx] = packet.payload[i];
      w.filled[idx] = true;
    }
    // kFirstWins keeps the byte already buffered.
  }

  const std::size_t assembled = contiguous_prefix(w.filled);
  BytesView view(w.data.data(), assembled);
  if (!message_complete(view)) return false;
  // The message concluded: classify it and retire the window so the next
  // message on this flow starts fresh.
  const bool triggers = payload_triggers(view);
  windows_.erase(it);
  return triggers;
}

BlockAction Device::effective_action(const net::Packet& packet) const {
  if (config_->tls_action && looks_like_tls(packet.payload)) return *config_->tls_action;
  return config_->action;
}

std::vector<net::Packet> Device::craft_injections(const net::Packet& trigger,
                                                  BlockAction action) const {
  const InjectionProfile& prof = config_->injection;
  std::vector<net::Packet> out;

  auto base = [&](std::uint8_t flags) {
    net::Packet p;
    p.ip.src = trigger.ip.dst;  // spoofed as the endpoint
    p.ip.dst = trigger.ip.src;
    p.ip.ttl = prof.copy_ttl_from_trigger ? trigger.ip.ttl : prof.init_ttl;
    p.ip.identification = prof.ip_id;
    p.ip.flags = prof.ip_flags;
    p.ip.tos = prof.ip_tos;
    p.tcp.src_port = trigger.tcp.dst_port;
    p.tcp.dst_port = trigger.tcp.src_port;
    p.tcp.flags = flags;
    p.tcp.seq = trigger.tcp.ack;
    p.tcp.ack =
        trigger.tcp.seq + static_cast<std::uint32_t>(trigger.payload.size());
    p.tcp.window = prof.tcp_window;
    p.tcp.options = prof.tcp_options;
    return p;
  };

  switch (action) {
    case BlockAction::kDrop:
      break;
    case BlockAction::kRstInject:
      out.push_back(base(net::TcpFlags::kRst | net::TcpFlags::kAck));
      break;
    case BlockAction::kFinInject:
      out.push_back(base(net::TcpFlags::kFin | net::TcpFlags::kAck));
      break;
    case BlockAction::kBlockpage: {
      net::Packet page = base(net::TcpFlags::kPsh | net::TcpFlags::kAck);
      if (net::looks_like_tcp_dns(trigger.payload)) {
        // DNS trigger: the "page" is a spoofed answer (sinkhole A record,
        // or NXDOMAIN when no sinkhole is configured).
        try {
          net::DnsMessage query = net::DnsMessage::parse_tcp(trigger.payload);
          net::DnsMessage forged = config_->dns_sinkhole
                                       ? net::make_dns_response(query, *config_->dns_sinkhole)
                                       : net::make_dns_nxdomain(query);
          page.payload = forged.serialize_tcp();
          out.push_back(std::move(page));
        } catch (const ParseError&) {
        }
        break;
      }
      net::HttpResponse resp = net::HttpResponse::make(403, "Forbidden",
                                                       config_->blockpage_html);
      page.payload = to_bytes(resp.serialize());
      out.push_back(std::move(page));
      // Real blockpage injectors tear the connection down after the page.
      net::Packet rst = base(net::TcpFlags::kRst | net::TcpFlags::kAck);
      rst.tcp.seq = page.tcp.seq + static_cast<std::uint32_t>(page.payload.size());
      out.push_back(std::move(rst));
      break;
    }
  }
  return out;
}

Verdict Device::inspect(const net::Packet& packet, SimTime now) {
  Verdict v;

  PairKey pair{packet.ip.src.value(), packet.ip.dst.value()};
  auto residual = residual_until_.find(pair);
  bool residual_active = residual != residual_until_.end() && residual->second > now;

  bool content_trigger = classify_segment(packet);
  bool trigger = content_trigger || (residual_active && !packet.payload.empty());
  if (!trigger) return v;

  v.triggered = true;
  ++trigger_count_;
  dirty_ = true;
  if (config_->residual_block_ms > 0) {
    residual_until_[pair] = now + config_->residual_block_ms;
  }

  // Per-flow injection budget (§4.1: some middleboxes inject a limited
  // number of times per TCP connection).
  FlowKey flow{packet.ip.src.value(), packet.ip.dst.value(), packet.tcp.src_port,
               packet.tcp.dst_port};
  int& injected = flow_injections_[flow];
  bool budget_ok = config_->injection.max_injections_per_flow < 0 ||
                   injected < config_->injection.max_injections_per_flow;

  BlockAction action = effective_action(packet);
  if (action == BlockAction::kDrop) {
    // Drop-based censorship: only inline devices can actually remove the
    // packet; an on-path tap configured to "drop" cannot and the packet
    // sails through (the paper notes on-path devices must inject).
    v.drop = !config_->on_path;
    return v;
  }

  if (budget_ok) {
    v.inject_to_client = craft_injections(packet, action);
    ++injected;
  }
  // Inline injectors consume the original packet; taps cannot.
  v.drop = !config_->on_path;
  return v;
}

bool Device::udp_payload_triggers(BytesView payload) const {
  if (payload.empty() || config_->dns_rules.empty()) return false;
  try {
    net::DnsMessage query = net::DnsMessage::parse(payload);
    return !query.is_response && !query.questions.empty() &&
           config_->dns_rules.matches(query.questions.front().qname);
  } catch (const ParseError&) {
    return false;
  }
}

UdpVerdict Device::inspect_udp(const net::UdpDatagram& datagram, SimTime now) {
  UdpVerdict v;
  PairKey pair{datagram.ip.src.value(), datagram.ip.dst.value()};
  auto residual = residual_until_.find(pair);
  bool residual_active = residual != residual_until_.end() && residual->second > now;

  bool content_trigger = udp_payload_triggers(datagram.payload);
  if (!content_trigger && !(residual_active && !datagram.payload.empty())) return v;
  v.triggered = true;
  ++trigger_count_;
  dirty_ = true;
  if (config_->residual_block_ms > 0) {
    residual_until_[pair] = now + config_->residual_block_ms;
  }

  BlockAction action = config_->action;
  if (action == BlockAction::kDrop) {
    v.drop = !config_->on_path;
    return v;
  }
  // Any injecting action on UDP means forging an answer: there is no
  // connection to reset. The forged datagram carries the device's
  // injection fingerprint in its IP header.
  if (content_trigger) {
    try {
      net::DnsMessage query = net::DnsMessage::parse(datagram.payload);
      net::DnsMessage forged = config_->dns_sinkhole
                                   ? net::make_dns_response(query, *config_->dns_sinkhole)
                                   : net::make_dns_nxdomain(query);
      net::UdpDatagram reply;
      reply.ip.src = datagram.ip.dst;  // spoofed as the resolver
      reply.ip.dst = datagram.ip.src;
      reply.ip.ttl = config_->injection.copy_ttl_from_trigger ? datagram.ip.ttl
                                                             : config_->injection.init_ttl;
      reply.ip.identification = config_->injection.ip_id;
      reply.ip.flags = config_->injection.ip_flags;
      reply.udp.src_port = datagram.udp.dst_port;
      reply.udp.dst_port = datagram.udp.src_port;
      reply.payload = forged.serialize();
      v.inject_to_client.push_back(std::move(reply));
    } catch (const ParseError&) {
    }
  }
  v.drop = !config_->on_path;
  return v;
}

void Device::reset_state() {
  if (!dirty_) return;  // nothing touched since the last reset
  flow_injections_.clear();
  residual_until_.clear();
  windows_.clear();
  dirty_ = false;
}

}  // namespace cen::censor
