// Per-vendor DPI parser quirks.
//
// CenFuzz (paper §6) measures how censorship devices *parse* requests, not
// just what they block: whether they accept only certain HTTP methods,
// whether they tolerate malformed request lines, whether they validate the
// version token, whether they parse unusual TLS ClientHellos. Each vendor
// profile instantiates one HttpQuirks + TlsQuirks pair; the DPI engine
// (dpi.hpp) interprets raw payload bytes under these quirks. These axes
// are exactly the behavioural fingerprints the clustering step exploits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/tls.hpp"

namespace cen::censor {

/// How the DPI validates the third token of the request line.
enum class VersionCheck : std::uint8_t {
  kNone,         // ignores the version token entirely
  kPrefixHttp,   // token must start with "HTTP/" (case per flag below)
  kValidOnly,    // token must be exactly HTTP/1.0 or HTTP/1.1
};

/// How the DPI recognises the Host header keyword.
enum class HostWordCheck : std::uint8_t {
  kExactCaseInsensitive,  // "Host:" in any case (the common behaviour)
  kExactCaseSensitive,    // literally "Host:"
  kContainsHost,          // any header name containing "host"
};

struct HttpQuirks {
  /// Methods that engage the classifier. Empty list = any token engages.
  std::vector<std::string> method_allowlist{"GET", "POST", "PUT", "HEAD",
                                            "DELETE", "OPTIONS"};
  /// If true the method comparison is case-insensitive ("GeT" == "GET").
  bool method_case_insensitive = true;
  VersionCheck version_check = VersionCheck::kPrefixHttp;
  /// If true the "HTTP/" prefix comparison is case-insensitive.
  bool version_prefix_case_insensitive = true;
  HostWordCheck host_word_check = HostWordCheck::kExactCaseInsensitive;
  /// Require CRLF line discipline; a bare "\n" or bare "\r" disengages the parser.
  bool requires_crlf = true;
  /// Rules are URL rules anchored at "/": a non-"/" path does not match.
  bool url_includes_path = false;
};

struct TlsQuirks {
  /// Legacy/record versions the DPI's TLS parser understands. A ClientHello
  /// advertising only versions outside this set is not inspected.
  std::vector<net::TlsVersion> parses_versions{
      net::TlsVersion::kTls10, net::TlsVersion::kTls11, net::TlsVersion::kTls12,
      net::TlsVersion::kTls13};
  /// Some middleboxes fail to classify a hello offering only unusual legacy
  /// suites (observed in a few RU/KZ deployments, §6.3). Codes listed here
  /// cause the parser to disengage when they are the *only* suite offered.
  std::vector<std::uint16_t> blind_cipher_suites;
  /// Whether a padding extension confuses the SNI extraction (rare).
  bool breaks_on_padding_extension = false;
  /// Whether the device inspects (and could trigger on) client certificates
  /// later in the handshake. No deployment in the paper's data did.
  bool inspects_client_certificate = false;
};

}  // namespace cen::censor
