// Per-vendor DPI parser quirks.
//
// CenFuzz (paper §6) measures how censorship devices *parse* requests, not
// just what they block: whether they accept only certain HTTP methods,
// whether they tolerate malformed request lines, whether they validate the
// version token, whether they parse unusual TLS ClientHellos. Each vendor
// profile instantiates one HttpQuirks + TlsQuirks pair; the DPI engine
// (dpi.hpp) interprets raw payload bytes under these quirks. These axes
// are exactly the behavioural fingerprints the clustering step exploits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/tls.hpp"

namespace cen::censor {

/// How the DPI validates the third token of the request line.
enum class VersionCheck : std::uint8_t {
  kNone,         // ignores the version token entirely
  kPrefixHttp,   // token must start with "HTTP/" (case per flag below)
  kValidOnly,    // token must be exactly HTTP/1.0 or HTTP/1.1
};

/// How the DPI recognises the Host header keyword.
enum class HostWordCheck : std::uint8_t {
  kExactCaseInsensitive,  // "Host:" in any case (the common behaviour)
  kExactCaseSensitive,    // literally "Host:"
  kContainsHost,          // any header name containing "host"
};

struct HttpQuirks {
  /// Methods that engage the classifier. Empty list = any token engages.
  std::vector<std::string> method_allowlist{"GET", "POST", "PUT", "HEAD",
                                            "DELETE", "OPTIONS"};
  /// If true the method comparison is case-insensitive ("GeT" == "GET").
  bool method_case_insensitive = true;
  VersionCheck version_check = VersionCheck::kPrefixHttp;
  /// If true the "HTTP/" prefix comparison is case-insensitive.
  bool version_prefix_case_insensitive = true;
  HostWordCheck host_word_check = HostWordCheck::kExactCaseInsensitive;
  /// Require CRLF line discipline; a bare "\n" or bare "\r" disengages the parser.
  bool requires_crlf = true;
  /// Rules are URL rules anchored at "/": a non-"/" path does not match.
  bool url_includes_path = false;
};

/// How the reassembler resolves two segments covering the same byte range.
enum class OverlapPolicy : std::uint8_t {
  kFirstWins,  // bytes already buffered are never overwritten (BSD-style)
  kLastWins,   // later data replaces earlier data (Linux-style)
};

/// Per-vendor TCP segment-reassembly semantics ("Fingerprinting DPI Devices
/// by Their Ambiguities"). On-path devices see *segments*, not messages; how
/// they stitch segments back together — overlap resolution, out-of-order
/// buffering, checksum validation, TTL plausibility checks — differs per
/// vendor and is observable even when every banner is blocked. The defaults
/// below are the *inert* profile: they reproduce exactly what a correct
/// endpoint stack reconstructs, so a device with default ReassemblyQuirks
/// is byte-identical to the historical assembled-payload behaviour (the
/// cencheck `ambig` engine asserts this).
struct ReassemblyQuirks {
  /// False = no reassembly buffer at all: each segment is classified in
  /// isolation (split requests are never seen whole).
  bool reassembles = true;
  OverlapPolicy overlap = OverlapPolicy::kFirstWins;
  /// False = only the in-order segment at the window edge is accepted;
  /// anything else while a message is buffering is discarded (desync).
  bool buffers_out_of_order = true;
  /// False = segments with bad TCP checksums are fed to the classifier
  /// even though no endpoint will ever accept them (insertion decoys).
  bool validates_checksum = true;
  /// True = segments whose arriving TTL deviates from the flow's SYN TTL
  /// by more than `ttl_slack` are discarded as insertion attempts.
  bool ttl_consistency_check = false;
  std::uint8_t ttl_slack = 2;

  bool operator==(const ReassemblyQuirks&) const = default;
};

/// The endpoint-equivalent reassembly profile (what a correct TCP stack
/// reconstructs). Identical to a default-constructed ReassemblyQuirks.
inline ReassemblyQuirks inert_reassembly() { return ReassemblyQuirks{}; }

struct TlsQuirks {
  /// Legacy/record versions the DPI's TLS parser understands. A ClientHello
  /// advertising only versions outside this set is not inspected.
  std::vector<net::TlsVersion> parses_versions{
      net::TlsVersion::kTls10, net::TlsVersion::kTls11, net::TlsVersion::kTls12,
      net::TlsVersion::kTls13};
  /// Some middleboxes fail to classify a hello offering only unusual legacy
  /// suites (observed in a few RU/KZ deployments, §6.3). Codes listed here
  /// cause the parser to disengage when they are the *only* suite offered.
  std::vector<std::uint16_t> blind_cipher_suites;
  /// Whether a padding extension confuses the SNI extraction (rare).
  bool breaks_on_padding_extension = false;
  /// Whether the device inspects (and could trigger on) client certificates
  /// later in the handshake. No deployment in the paper's data did.
  bool inspects_client_certificate = false;
};

}  // namespace cen::censor
