// Shared run-option fields for the unified tool entry points.
//
// Every tool stage exposes the same signature shape —
//   run(Network&, const <Tool>RunOptions&, obs::Observer*)
// — and every <Tool>RunOptions embeds one CommonRunOptions. The retry
// budget, retry backoff and measurement-epoch seed used to be duplicated
// across the tools under per-tool names; hoisting them here means the
// CLIs populate them in exactly one place (cli::apply_common) and each
// run() applies them with one call.
#pragma once

#include <cstdint>
#include <optional>

#include "core/clock.hpp"
#include "core/fingerprint.hpp"

namespace cen::tool {

/// Cross-tool run options. Every field is optional: unset means "keep the
/// tool's own default", so a default-constructed CommonRunOptions is inert
/// and embedding it changes no existing behaviour.
struct CommonRunOptions {
  /// Per-probe/request retry budget (CenTrace's adaptive ceiling, CenFuzz
  /// and cenambig per-request retries).
  std::optional<int> retries;
  /// Simulated-time backoff before a retry, doubled per further attempt.
  std::optional<SimTime> backoff;
  /// When set, run() resets the network to this deterministic epoch
  /// (Network::reset_epoch) before measuring — the hermetic-task contract
  /// without the caller touching the network first.
  std::optional<std::uint64_t> seed;

  bool operator==(const CommonRunOptions&) const = default;

  /// Digest over every field (campaign cache-key component).
  std::uint64_t fingerprint() const {
    FingerprintBuilder fp;
    fp.mix(retries.has_value());
    fp.mix(static_cast<std::uint64_t>(retries.value_or(0)));
    fp.mix(backoff.has_value());
    fp.mix(static_cast<std::uint64_t>(backoff.value_or(0)));
    fp.mix(seed.has_value());
    fp.mix(seed.value_or(0));
    return fp.digest();
  }
};

}  // namespace cen::tool
