// IP → ASN / country metadata, mirroring the paper's dual-source pipeline
// (Maxmind + Routeviews, §4.2 "Limitations"). Two independent route tables
// are kept; lookups merge them longest-prefix-first and record
// disagreements so the validation statistics the paper reports manually
// can be computed automatically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"

namespace cen::geo {

struct AsInfo {
  std::uint32_t asn = 0;
  std::string name;
  std::string country;  // ISO code, e.g. "KZ"

  bool operator==(const AsInfo&) const = default;
};

enum class MetadataSource : std::uint8_t { kMaxmindLike, kRouteviewsLike };

/// Longest-prefix-match route table over two metadata sources.
class IpMetadataDb {
 public:
  /// Register a prefix (base/len) under one source.
  void add_route(net::Ipv4Address base, int prefix_len, AsInfo info, MetadataSource source);
  /// Register under both sources at once (the common case in scenarios).
  void add_route(net::Ipv4Address base, int prefix_len, AsInfo info);

  /// Merged lookup: longest matching prefix across both sources. When the
  /// two sources disagree at the same specificity, the Maxmind-like entry
  /// wins and the disagreement counter is bumped.
  std::optional<AsInfo> lookup(net::Ipv4Address ip) const;
  /// Lookup restricted to a single source.
  std::optional<AsInfo> lookup(net::Ipv4Address ip, MetadataSource source) const;

  /// Count of merged lookups whose sources disagreed (validation signal).
  std::size_t disagreements() const { return disagreements_; }
  std::size_t size() const { return routes_.size(); }

 private:
  struct Route {
    std::uint32_t base = 0;
    std::uint32_t mask = 0;
    int prefix_len = 0;
    AsInfo info;
    MetadataSource source = MetadataSource::kMaxmindLike;
  };
  const Route* best_match(net::Ipv4Address ip, std::optional<MetadataSource> source) const;

  std::vector<Route> routes_;
  mutable std::size_t disagreements_ = 0;
};

}  // namespace cen::geo
