#include "geo/asdb.hpp"

namespace cen::geo {

namespace {
std::uint32_t prefix_mask(int len) {
  if (len <= 0) return 0;
  if (len >= 32) return 0xffffffffu;
  return ~((1u << (32 - len)) - 1);
}
}  // namespace

void IpMetadataDb::add_route(net::Ipv4Address base, int prefix_len, AsInfo info,
                             MetadataSource source) {
  Route r;
  r.mask = prefix_mask(prefix_len);
  r.base = base.value() & r.mask;
  r.prefix_len = prefix_len;
  r.info = std::move(info);
  r.source = source;
  routes_.push_back(std::move(r));
}

void IpMetadataDb::add_route(net::Ipv4Address base, int prefix_len, AsInfo info) {
  add_route(base, prefix_len, info, MetadataSource::kMaxmindLike);
  add_route(base, prefix_len, std::move(info), MetadataSource::kRouteviewsLike);
}

const IpMetadataDb::Route* IpMetadataDb::best_match(
    net::Ipv4Address ip, std::optional<MetadataSource> source) const {
  const Route* best = nullptr;
  for (const Route& r : routes_) {
    if (source && r.source != *source) continue;
    if ((ip.value() & r.mask) != r.base) continue;
    if (best == nullptr || r.prefix_len > best->prefix_len) best = &r;
  }
  return best;
}

std::optional<AsInfo> IpMetadataDb::lookup(net::Ipv4Address ip) const {
  const Route* mm = best_match(ip, MetadataSource::kMaxmindLike);
  const Route* rv = best_match(ip, MetadataSource::kRouteviewsLike);
  if (mm == nullptr && rv == nullptr) return std::nullopt;
  if (mm == nullptr) return rv->info;
  if (rv == nullptr) return mm->info;
  if (!(mm->info == rv->info)) {
    ++disagreements_;
    // Prefer the more specific prefix; ties go to the Maxmind-like source,
    // matching the paper's manual-validation preference order.
    if (rv->prefix_len > mm->prefix_len) return rv->info;
  }
  return mm->info;
}

std::optional<AsInfo> IpMetadataDb::lookup(net::Ipv4Address ip, MetadataSource source) const {
  const Route* r = best_match(ip, source);
  if (r == nullptr) return std::nullopt;
  return r->info;
}

}  // namespace cen::geo
