#include "campaign/cache.hpp"

#include <cstdio>

#include "core/fingerprint.hpp"
#include "core/json.hpp"

namespace cen::campaign {

namespace {

void append_hex64(std::string& out, std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(v >> shift) & 0xf]);
  }
}

}  // namespace

std::string task_cache_key(std::uint64_t network_fingerprint, std::uint64_t campaign_seed,
                           std::uint64_t fault_fingerprint, std::string_view stage,
                           std::string_view task_id, std::uint64_t options_fingerprint) {
  // Two chains over the same components with different initial salts —
  // a cheap 128-bit digest.
  std::uint64_t halves[2];
  for (int half = 0; half < 2; ++half) {
    FingerprintBuilder fp;
    fp.mix(static_cast<std::uint64_t>(half == 0 ? 0x6361636865313238ull
                                                : 0x6b65796861736832ull));
    fp.mix(network_fingerprint);
    fp.mix(campaign_seed);
    fp.mix(fault_fingerprint);
    fp.mix(stage);
    fp.mix(task_id);
    fp.mix(options_fingerprint);
    halves[half] = fp.digest();
  }
  std::string key;
  key.reserve(32);
  append_hex64(key, halves[0]);
  append_hex64(key, halves[1]);
  return key;
}

std::size_t ResultCache::load() {
  if (path_.empty()) return 0;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return 0;
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::size_t loaded = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    // A record is only durable once its newline hit the disk: a trailing
    // line without one is the torn tail of a crash mid-write — skip it.
    if (eol == std::string::npos) break;
    std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    auto doc = json_parse(line);
    if (doc == nullptr || !doc->is_object()) continue;
    std::string key = doc->get_string("key", "");
    const JsonValue* result = doc->find("result");
    if (key.size() != 32 || result == nullptr || !result->is_object()) continue;
    // Re-render the result through the writer so the stored document is
    // byte-identical to what the emitter produced (it is spliced verbatim
    // into campaign output). The parse→render round trip is the identity
    // for our own emitters' output.
    records_[key] = std::string(line.substr(line.find("\"result\":") + 9));
    // The record line is {"key":...,"stage":...,"task":...,"result":{...}}
    // with "result" last, so everything after the marker minus the
    // closing brace is the document.
    std::string& doc_text = records_[key];
    if (!doc_text.empty() && doc_text.back() == '}') doc_text.pop_back();
    ++loaded;
  }
  return loaded;
}

const std::string* ResultCache::find(const std::string& key) const {
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

void ResultCache::put(const std::string& key, std::string_view stage,
                      std::string_view task_id, std::string result_json) {
  JsonWriter w;
  w.begin_object();
  w.key("key").value(key);
  w.key("stage").value(stage);
  w.key("task").value(task_id);
  w.key("result").raw_value(result_json);
  w.end_object();
  pending_ += w.str();
  pending_ += '\n';
  records_[key] = std::move(result_json);
}

void ResultCache::flush() {
  if (path_.empty() || pending_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) return;
  std::fwrite(pending_.data(), 1, pending_.size(), f);
  std::fflush(f);
  std::fclose(f);
  pending_.clear();
}

}  // namespace cen::campaign
