#include "campaign/cache.hpp"

#include <cstdio>

#include "core/fingerprint.hpp"
#include "core/json.hpp"

namespace cen::campaign {

namespace {

void append_hex64(std::string& out, std::uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(v >> shift) & 0xf]);
  }
}

/// Byte span [begin, end) of the value of top-level member `name` inside
/// `line`, which must already have parsed as a JSON object. Matching is on
/// the raw key token, so a key written with escape sequences is treated as
/// absent — the caller then skips the record (a re-execution, never a wrong
/// answer). Searching for the literal `"name":` substring is NOT safe here:
/// the same bytes can occur inside an earlier string value (e.g. a task id),
/// and members may appear in any order.
bool member_value_span(std::string_view line, std::string_view name,
                       std::size_t& begin, std::size_t& end) {
  auto skip_ws = [&](std::size_t& p) {
    while (p < line.size() && (line[p] == ' ' || line[p] == '\t' ||
                               line[p] == '\n' || line[p] == '\r')) {
      ++p;
    }
  };
  auto skip_string = [&](std::size_t& p) {  // p at the opening quote
    ++p;
    while (p < line.size()) {
      if (line[p] == '\\') {
        p += 2;
        continue;
      }
      if (line[p] == '"') {
        ++p;
        return;
      }
      ++p;
    }
  };
  std::size_t p = 0;
  skip_ws(p);
  if (p >= line.size() || line[p] != '{') return false;
  ++p;
  for (;;) {
    skip_ws(p);
    if (p >= line.size() || line[p] == '}') return false;  // member absent
    const std::size_t key_start = p;
    skip_string(p);
    const std::string_view key = line.substr(key_start, p - key_start);
    skip_ws(p);
    if (p >= line.size() || line[p] != ':') return false;
    ++p;
    skip_ws(p);
    const std::size_t val_start = p;
    // Walk exactly one value: balance braces/brackets outside strings.
    int depth = 0;
    while (p < line.size()) {
      const char c = line[p];
      if (c == '"') {
        skip_string(p);
        continue;
      }
      if (c == '{' || c == '[') {
        ++depth;
        ++p;
        continue;
      }
      if (c == '}' || c == ']') {
        if (depth == 0) break;  // closes the enclosing object
        --depth;
        ++p;
        continue;
      }
      if (c == ',' && depth == 0) break;
      ++p;
    }
    std::size_t val_end = p;
    while (val_end > val_start &&
           (line[val_end - 1] == ' ' || line[val_end - 1] == '\t')) {
      --val_end;
    }
    if (key.size() == name.size() + 2 && key.front() == '"' && key.back() == '"' &&
        key.substr(1, name.size()) == name) {
      begin = val_start;
      end = val_end;
      return end > begin;
    }
    skip_ws(p);
    if (p >= line.size() || line[p] != ',') return false;  // was the last member
    ++p;
  }
}

/// Integrity digest binding a record's key to its result bytes. Cache
/// files live on disk between runs; a record whose result bytes were
/// damaged (bit rot, concurrent writers, hand edits) but still parse as
/// JSON would otherwise be spliced verbatim into campaign output — a
/// silent wrong answer. A mismatch just invalidates the record, which
/// costs one deterministic re-execution.
std::string record_sum(std::string_view key, std::string_view result_json) {
  FingerprintBuilder fp;
  fp.mix(std::string_view("cache-record-sum"));
  fp.mix(key);
  fp.mix(result_json);
  std::string sum;
  sum.reserve(16);
  append_hex64(sum, fp.digest());
  return sum;
}

}  // namespace

std::string task_cache_key(std::uint64_t network_fingerprint, std::uint64_t campaign_seed,
                           std::uint64_t fault_fingerprint, std::string_view stage,
                           std::string_view task_id, std::uint64_t options_fingerprint) {
  // Two chains over the same components with different initial salts —
  // a cheap 128-bit digest.
  std::uint64_t halves[2];
  for (int half = 0; half < 2; ++half) {
    FingerprintBuilder fp;
    fp.mix(static_cast<std::uint64_t>(half == 0 ? 0x6361636865313238ull
                                                : 0x6b65796861736832ull));
    fp.mix(network_fingerprint);
    fp.mix(campaign_seed);
    fp.mix(fault_fingerprint);
    fp.mix(stage);
    fp.mix(task_id);
    fp.mix(options_fingerprint);
    halves[half] = fp.digest();
  }
  std::string key;
  key.reserve(32);
  append_hex64(key, halves[0]);
  append_hex64(key, halves[1]);
  return key;
}

std::size_t ResultCache::load() {
  if (path_.empty()) return 0;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return 0;
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::size_t loaded = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    // A record is only durable once its newline hit the disk: a trailing
    // line without one is the torn tail of a crash mid-write — skip it.
    if (eol == std::string::npos) break;
    std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    auto doc = json_parse(line);
    if (doc == nullptr || !doc->is_object()) continue;
    std::string key = doc->get_string("key", "");
    const JsonValue* result = doc->find("result");
    if (key.size() != 32 || result == nullptr || !result->is_object()) continue;
    // The stored document must be the exact bytes the emitter produced (it
    // is spliced verbatim into campaign output), so extract the member's
    // precise span from the already-validated line rather than re-rendering.
    std::size_t rb = 0;
    std::size_t re = 0;
    if (!member_value_span(line, "result", rb, re)) continue;
    std::string result_text(line.substr(rb, re - rb));
    // Verify the record's integrity digest; records without one (older
    // cache files) or with a stale one are invalidated, never served.
    if (doc->get_string("sum", "") != record_sum(key, result_text)) continue;
    records_[key] = std::move(result_text);
    ++loaded;
  }
  return loaded;
}

const std::string* ResultCache::find(const std::string& key) const {
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

void ResultCache::put(const std::string& key, std::string_view stage,
                      std::string_view task_id, std::string result_json) {
  JsonWriter w;
  w.begin_object();
  w.key("key").value(key);
  w.key("sum").value(record_sum(key, result_json));
  w.key("stage").value(stage);
  w.key("task").value(task_id);
  w.key("result").raw_value(result_json);
  w.end_object();
  pending_ += w.str();
  pending_ += '\n';
  records_[key] = std::move(result_json);
}

void ResultCache::flush() {
  if (path_.empty() || pending_.empty()) return;
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) return;
  std::fwrite(pending_.data(), 1, pending_.size(), f);
  std::fflush(f);
  std::fclose(f);
  pending_.clear();
}

}  // namespace cen::campaign
