#include "campaign/spec.hpp"

#include <cstdio>

#include "core/fingerprint.hpp"
#include "core/json.hpp"

namespace cen::campaign {

namespace {

std::optional<scenario::Country> country_from_code(std::string_view code) {
  for (scenario::Country c : scenario::all_countries()) {
    if (scenario::country_code(c) == code) return c;
  }
  return std::nullopt;
}

std::optional<trace::ProbeProtocol> protocol_from_name(std::string_view name) {
  for (int i = 0; i < 4; ++i) {
    auto p = static_cast<trace::ProbeProtocol>(i);
    if (trace::probe_protocol_name(p) == name) return p;
  }
  return std::nullopt;
}

bool fail(std::string* error, std::string_view what) {
  if (error != nullptr) *error = std::string(what);
  return false;
}

bool parse_domains(const JsonValue& doc, std::string_view key,
                   std::vector<std::string>& out, std::string* error) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr) return true;
  if (!v->is_array()) return fail(error, std::string(key) + " must be an array");
  for (const JsonValue& d : v->array) {
    if (!d.is_string()) return fail(error, std::string(key) + " entries must be strings");
    out.push_back(d.string);
  }
  return true;
}

bool parse_faults(const JsonValue& doc, sim::FaultPlan& plan, std::string* error) {
  const JsonValue* v = doc.find("faults");
  if (v == nullptr) return true;
  if (!v->is_object()) return fail(error, "faults must be an object");
  plan.transient_loss = v->get_number("transient_loss", plan.transient_loss);
  plan.default_link.loss = v->get_number("link_loss", plan.default_link.loss);
  plan.default_link.duplicate = v->get_number("link_duplicate", plan.default_link.duplicate);
  plan.default_link.reorder = v->get_number("link_reorder", plan.default_link.reorder);
  plan.default_link.truncate = v->get_number("link_truncate", plan.default_link.truncate);
  plan.default_link.corrupt = v->get_number("link_corrupt", plan.default_link.corrupt);
  plan.default_node.icmp_blackhole =
      v->get_bool("icmp_blackhole", plan.default_node.icmp_blackhole);
  plan.default_node.icmp_rate_per_sec =
      v->get_number("icmp_rate_per_sec", plan.default_node.icmp_rate_per_sec);
  plan.default_node.icmp_burst = v->get_number("icmp_burst", plan.default_node.icmp_burst);
  plan.route_flap_period = static_cast<SimTime>(
      v->get_number("route_flap_period_ms", static_cast<double>(plan.route_flap_period)));
  plan.mgmt_drop = v->get_number("mgmt_drop", plan.mgmt_drop);
  plan.banner_truncate = v->get_number("banner_truncate", plan.banner_truncate);
  return true;
}

}  // namespace

std::vector<scenario::Country> CampaignSpec::effective_countries() const {
  return countries.empty() ? scenario::all_countries() : countries;
}

std::uint64_t CampaignSpec::fingerprint() const {
  FingerprintBuilder fp;
  fp.mix(name);
  for (scenario::Country c : effective_countries()) {
    fp.mix(scenario::country_code(c));
  }
  fp.mix(static_cast<std::uint64_t>(scale));
  fp.mix(seed);
  fp.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(max_endpoints)));
  fp.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(max_domains)));
  fp.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(fuzz_max_endpoints)));
  fp.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(ambig_max_endpoints)));
  fp.mix(static_cast<std::uint64_t>(http_domains.size()));
  for (const std::string& d : http_domains) fp.mix(d);
  fp.mix(static_cast<std::uint64_t>(https_domains.size()));
  for (const std::string& d : https_domains) fp.mix(d);
  fp.mix(trace.fingerprint());
  fp.mix(trace_tomography);
  fp.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(trace_vantages)));
  fp.mix(fuzz.fingerprint());
  fp.mix(ambig.fingerprint());
  fp.mix(stages.trace);
  fp.mix(stages.probe);
  fp.mix(stages.fuzz);
  fp.mix(stages.ambig);
  fp.mix(stages.cluster);
  fp.mix(faults.fingerprint());
  if (world) {
    fp.mix(true);
    fp.mix(world->fingerprint());
  }
  if (evolution) {
    fp.mix(true);
    fp.mix(evolution->fingerprint());
    fp.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(evolution_epoch)));
  }
  return fp.digest();
}

std::string to_json(const CampaignSpec& spec) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value(spec.name);
  w.key("countries").begin_array();
  for (scenario::Country c : spec.effective_countries()) {
    w.value(scenario::country_code(c));
  }
  w.end_array();
  w.key("scale").value(spec.scale == scenario::Scale::kFull ? "full" : "small");
  w.key("seed").value(static_cast<std::uint64_t>(spec.seed));
  w.key("max_endpoints").value(spec.max_endpoints);
  w.key("max_domains").value(spec.max_domains);
  w.key("fuzz_max_endpoints").value(spec.fuzz_max_endpoints);
  w.key("ambig_max_endpoints").value(spec.ambig_max_endpoints);
  w.key("batch_size").value(spec.batch_size);
  w.key("http_domains").begin_array();
  for (const std::string& d : spec.http_domains) w.value(d);
  w.end_array();
  w.key("https_domains").begin_array();
  for (const std::string& d : spec.https_domains) w.value(d);
  w.end_array();
  w.key("stages").begin_object();
  w.key("trace").value(spec.stages.trace);
  w.key("probe").value(spec.stages.probe);
  w.key("fuzz").value(spec.stages.fuzz);
  w.key("ambig").value(spec.stages.ambig);
  w.key("cluster").value(spec.stages.cluster);
  w.end_object();
  w.key("trace").begin_object();
  w.key("max_ttl").value(spec.trace.max_ttl);
  w.key("retries").value(spec.trace.retries);
  w.key("repetitions").value(spec.trace.repetitions);
  w.key("timeout_run_stop").value(spec.trace.timeout_run_stop);
  w.key("protocol").value(trace::probe_protocol_name(spec.trace.protocol));
  w.key("retry_backoff_ms").value(static_cast<std::int64_t>(spec.trace.retry_backoff));
  w.key("adaptive_max_retries").value(spec.trace.adaptive_max_retries);
  w.key("silent_channel_abort").value(spec.trace.silent_channel_abort);
  w.key("tomography").value(spec.trace_tomography);
  w.key("vantages").value(spec.trace_vantages);
  w.end_object();
  w.key("fuzz").begin_object();
  w.key("retries").value(spec.fuzz.retries);
  w.key("run_http").value(spec.fuzz.run_http);
  w.key("run_tls").value(spec.fuzz.run_tls);
  w.key("baseline_attempts").value(spec.fuzz.baseline_attempts);
  w.end_object();
  w.key("ambig").begin_object();
  w.key("repetitions").value(spec.ambig.repetitions);
  w.key("retries").value(spec.ambig.retries);
  w.key("wait_after_blocked_ms").value(static_cast<std::int64_t>(spec.ambig.wait_after_blocked));
  w.key("wait_after_ok_ms").value(static_cast<std::int64_t>(spec.ambig.wait_after_ok));
  w.key("retry_backoff_ms").value(static_cast<std::int64_t>(spec.ambig.retry_backoff));
  w.key("max_distance_ttl").value(spec.ambig.max_distance_ttl);
  w.key("order_salt").value(static_cast<std::uint64_t>(spec.ambig.order_salt));
  w.end_object();
  w.key("faults").begin_object();
  w.key("transient_loss").value(spec.faults.transient_loss);
  w.key("link_loss").value(spec.faults.default_link.loss);
  w.key("link_duplicate").value(spec.faults.default_link.duplicate);
  w.key("link_reorder").value(spec.faults.default_link.reorder);
  w.key("link_truncate").value(spec.faults.default_link.truncate);
  w.key("link_corrupt").value(spec.faults.default_link.corrupt);
  w.key("icmp_blackhole").value(spec.faults.default_node.icmp_blackhole);
  w.key("icmp_rate_per_sec").value(spec.faults.default_node.icmp_rate_per_sec);
  w.key("icmp_burst").value(spec.faults.default_node.icmp_burst);
  w.key("route_flap_period_ms")
      .value(static_cast<std::int64_t>(spec.faults.route_flap_period));
  w.key("mgmt_drop").value(spec.faults.mgmt_drop);
  w.key("banner_truncate").value(spec.faults.banner_truncate);
  w.end_object();
  if (spec.world) {
    w.key("world").raw_value(worldgen::to_json(*spec.world));
  }
  if (spec.evolution) {
    w.key("evolution").raw_value(longit::to_json(*spec.evolution));
    w.key("evolution_epoch").value(spec.evolution_epoch);
  }
  w.end_object();
  return w.str();
}

std::optional<CampaignSpec> spec_from_json(std::string_view text, std::string* error) {
  auto doc = json_parse(text);
  if (doc == nullptr || !doc->is_object()) {
    if (error != nullptr) *error = "not a valid JSON object";
    return std::nullopt;
  }
  CampaignSpec spec;
  spec.name = doc->get_string("name", spec.name);

  if (const JsonValue* cs = doc->find("countries"); cs != nullptr) {
    if (!cs->is_array()) {
      fail(error, "countries must be an array of country codes");
      return std::nullopt;
    }
    for (const JsonValue& c : cs->array) {
      auto country = c.is_string() ? country_from_code(c.string) : std::nullopt;
      if (!country) {
        fail(error, "unknown country code: " + (c.is_string() ? c.string : "<non-string>"));
        return std::nullopt;
      }
      spec.countries.push_back(*country);
    }
  }

  std::string scale = doc->get_string("scale", "small");
  if (scale == "full") {
    spec.scale = scenario::Scale::kFull;
  } else if (scale == "small") {
    spec.scale = scenario::Scale::kSmall;
  } else {
    fail(error, "scale must be \"full\" or \"small\": " + scale);
    return std::nullopt;
  }

  spec.seed = static_cast<std::uint64_t>(doc->get_number("seed", static_cast<double>(spec.seed)));
  spec.max_endpoints = doc->get_int("max_endpoints", spec.max_endpoints);
  spec.max_domains = doc->get_int("max_domains", spec.max_domains);
  spec.fuzz_max_endpoints = doc->get_int("fuzz_max_endpoints", spec.fuzz_max_endpoints);
  spec.ambig_max_endpoints = doc->get_int("ambig_max_endpoints", spec.ambig_max_endpoints);
  spec.batch_size = doc->get_int("batch_size", spec.batch_size);
  if (spec.batch_size < 1) {
    fail(error, "batch_size must be >= 1");
    return std::nullopt;
  }

  if (!parse_domains(*doc, "http_domains", spec.http_domains, error)) return std::nullopt;
  if (!parse_domains(*doc, "https_domains", spec.https_domains, error)) return std::nullopt;

  if (const JsonValue* st = doc->find("stages"); st != nullptr && st->is_object()) {
    spec.stages.trace = st->get_bool("trace", spec.stages.trace);
    spec.stages.probe = st->get_bool("probe", spec.stages.probe);
    spec.stages.fuzz = st->get_bool("fuzz", spec.stages.fuzz);
    spec.stages.ambig = st->get_bool("ambig", spec.stages.ambig);
    spec.stages.cluster = st->get_bool("cluster", spec.stages.cluster);
  }

  if (const JsonValue* tr = doc->find("trace"); tr != nullptr && tr->is_object()) {
    spec.trace.max_ttl = tr->get_int("max_ttl", spec.trace.max_ttl);
    spec.trace.retries = tr->get_int("retries", spec.trace.retries);
    spec.trace.repetitions = tr->get_int("repetitions", spec.trace.repetitions);
    spec.trace.timeout_run_stop = tr->get_int("timeout_run_stop", spec.trace.timeout_run_stop);
    spec.trace.retry_backoff = static_cast<SimTime>(tr->get_number(
        "retry_backoff_ms", static_cast<double>(spec.trace.retry_backoff)));
    spec.trace.adaptive_max_retries =
        tr->get_int("adaptive_max_retries", spec.trace.adaptive_max_retries);
    spec.trace.silent_channel_abort =
        tr->get_int("silent_channel_abort", spec.trace.silent_channel_abort);
    spec.trace_tomography = tr->get_bool("tomography", spec.trace_tomography);
    spec.trace_vantages = tr->get_int("vantages", spec.trace_vantages);
    if (const JsonValue* p = tr->find("protocol"); p != nullptr) {
      auto proto = p->is_string() ? protocol_from_name(p->string) : std::nullopt;
      if (!proto) {
        fail(error, "unknown trace protocol");
        return std::nullopt;
      }
      spec.trace.protocol = *proto;
    }
  }

  if (const JsonValue* fz = doc->find("fuzz"); fz != nullptr && fz->is_object()) {
    spec.fuzz.retries = fz->get_int("retries", spec.fuzz.retries);
    spec.fuzz.run_http = fz->get_bool("run_http", spec.fuzz.run_http);
    spec.fuzz.run_tls = fz->get_bool("run_tls", spec.fuzz.run_tls);
    spec.fuzz.baseline_attempts = fz->get_int("baseline_attempts", spec.fuzz.baseline_attempts);
  }

  if (const JsonValue* am = doc->find("ambig"); am != nullptr && am->is_object()) {
    spec.ambig.repetitions = am->get_int("repetitions", spec.ambig.repetitions);
    spec.ambig.retries = am->get_int("retries", spec.ambig.retries);
    spec.ambig.wait_after_blocked = static_cast<SimTime>(
        am->get_number("wait_after_blocked_ms", static_cast<double>(spec.ambig.wait_after_blocked)));
    spec.ambig.wait_after_ok = static_cast<SimTime>(
        am->get_number("wait_after_ok_ms", static_cast<double>(spec.ambig.wait_after_ok)));
    spec.ambig.retry_backoff = static_cast<SimTime>(
        am->get_number("retry_backoff_ms", static_cast<double>(spec.ambig.retry_backoff)));
    spec.ambig.max_distance_ttl = am->get_int("max_distance_ttl", spec.ambig.max_distance_ttl);
    spec.ambig.order_salt = static_cast<std::uint64_t>(
        am->get_number("order_salt", static_cast<double>(spec.ambig.order_salt)));
  }

  if (!parse_faults(*doc, spec.faults, error)) return std::nullopt;

  if (const JsonValue* wd = doc->find("world"); wd != nullptr) {
    std::string world_error;
    std::optional<worldgen::WorldSpec> world = worldgen::spec_from_doc(*wd, &world_error);
    if (!world) {
      fail(error, "world: " + world_error);
      return std::nullopt;
    }
    spec.world = std::move(*world);
  }

  if (const JsonValue* ev = doc->find("evolution"); ev != nullptr) {
    std::string ev_error;
    std::optional<longit::EvolutionPlan> plan = longit::evolution_from_doc(*ev, &ev_error);
    if (!plan) {
      fail(error, ev_error);
      return std::nullopt;
    }
    spec.evolution = std::move(*plan);
    spec.evolution_epoch = doc->get_int("evolution_epoch", spec.evolution_epoch);
    if (spec.evolution_epoch < 0) {
      fail(error, "evolution_epoch must be >= 0");
      return std::nullopt;
    }
  }
  return spec;
}

std::optional<CampaignSpec> load_spec_file(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open spec file: " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return spec_from_json(text, error);
}

}  // namespace cen::campaign
