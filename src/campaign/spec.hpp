// Declarative campaign specification.
//
// A CampaignSpec describes a paper-scale measurement campaign — which
// countries to build, which endpoints/domains to cover, which tool stages
// to run and under what options/faults — as plain data. The campaign
// engine (campaign.hpp) compiles it into a deterministic task DAG
// (CenTrace → CenProbe on discovered device IPs → CenFuzz per blocked
// endpoint → feature extraction/clustering). Specs are constructible
// programmatically or loadable from a JSON file (schema in
// docs/CAMPAIGN.md); both paths produce identical campaigns.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cenambig/cenambig.hpp"
#include "cenfuzz/cenfuzz.hpp"
#include "centrace/centrace.hpp"
#include "longit/evolve.hpp"
#include "netsim/faults.hpp"
#include "scenario/country.hpp"
#include "worldgen/spec.hpp"

namespace cen::campaign {

/// Which tool stages of the DAG run. Disabling an upstream stage also
/// starves its dependents (no trace → no discovered devices → no probe).
struct StageToggles {
  bool trace = true;
  bool probe = true;
  bool fuzz = true;
  /// Ambiguity fingerprinting of blocked endpoints (off by default: it is
  /// the most probe-hungry stage and only pays off when banners are dark).
  bool ambig = false;
  bool cluster = true;
};

struct CampaignSpec {
  std::string name = "campaign";
  /// Countries measured, in order. Empty = all four (paper order).
  std::vector<scenario::Country> countries;
  scenario::Scale scale = scenario::Scale::kSmall;
  /// Scenario construction seed (also the root of every task substream).
  std::uint64_t seed = 7;

  /// Coverage caps, applied with the pipeline's stride sampling
  /// (-1 = no cap).
  int max_endpoints = -1;
  int max_domains = -1;
  int fuzz_max_endpoints = -1;
  int ambig_max_endpoints = -1;

  /// Domain overrides; empty = the scenario's own Citizen-Lab-style lists.
  std::vector<std::string> http_domains;
  std::vector<std::string> https_domains;

  trace::CenTraceOptions trace;
  /// Degradation-aware tracing: escalate unlocalized blocked verdicts to
  /// multi-vantage boolean tomography (see docs/TOMOGRAPHY.md).
  bool trace_tomography = false;
  /// Vantage budget for the tomography escalation (the scenario's remote
  /// and in-country clients, capped here; the task's own client is always
  /// vantage 0).
  int trace_vantages = 2;
  fuzz::CenFuzzOptions fuzz;
  ambig::AmbigOptions ambig;
  StageToggles stages;

  /// Fault plan installed on every country network before measuring
  /// (default = inert).
  sim::FaultPlan faults;

  /// Synthetic-world campaign: when set, the campaign measures one
  /// worldgen world (generated from this spec + `seed`) instead of the
  /// hand-built country scenarios — `countries` and `scale` are ignored.
  /// The world's fingerprint joins the spec digest only when present, so
  /// existing country-campaign cache keys are unaffected.
  std::optional<worldgen::WorldSpec> world;

  /// Censor-policy evolution (see longit/evolve.hpp): when set, every
  /// site's devices are mutated through `evolution_epoch` churn epochs
  /// after the scenario is built and before anything is measured. The
  /// mutations flow into each site's network fingerprint, so the
  /// incremental cache re-executes exactly the churned sites; the plan
  /// fingerprint and epoch join the spec digest only when present, so
  /// existing cache keys are unaffected.
  std::optional<longit::EvolutionPlan> evolution;
  /// Which epoch this campaign measures (0 = untouched baseline).
  int evolution_epoch = 0;

  /// Tool tasks per execution batch. The result cache is flushed after
  /// every batch, so this is also the crash-checkpoint granularity.
  int batch_size = 8;

  /// Countries with the empty-means-all default applied.
  std::vector<scenario::Country> effective_countries() const;
  /// Digest over every knob that selects or parameterizes tasks
  /// (campaign cache-key component, alongside the per-network and
  /// per-tool-option fingerprints).
  std::uint64_t fingerprint() const;
};

/// Canonical JSON rendering of a spec (the same schema spec_from_json
/// accepts — load(to_json(s)) == s).
std::string to_json(const CampaignSpec& spec);

/// Parse a spec document. On failure returns nullopt and, when `error`
/// is non-null, stores a one-line description of the offending field.
std::optional<CampaignSpec> spec_from_json(std::string_view text,
                                           std::string* error = nullptr);

/// Load a spec from a JSON file (nullopt + error on unreadable file or
/// malformed document).
std::optional<CampaignSpec> load_spec_file(const std::string& path,
                                           std::string* error = nullptr);

}  // namespace cen::campaign
