// Incremental result cache / crash-safe checkpoint journal.
//
// Every campaign task result is persisted as one JSONL record keyed by a
// 128-bit content hash of everything that determines the result: the
// network fingerprint (topology + construction seed + endpoints + devices
// + fault plan), the campaign seed, the fault-plan fingerprint, the stage
// tag, the task identity string and the tool-options fingerprint. Editing
// any one knob changes the keys of exactly the affected tasks, so a
// re-run re-executes only what the edit invalidated and splices the rest
// from cache.
//
// The same file doubles as the campaign's checkpoint: it is appended and
// flushed after every batch, so a killed campaign resumes from the last
// completed batch. Loading tolerates a truncated final line (the crash
// case) — everything before it is kept. The cache file is an append-order
// journal, NOT the campaign output: output artifacts are always rendered
// from records in task-identity order, which is what makes a resumed
// run's output byte-identical to an uninterrupted one.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>

namespace cen::campaign {

/// 128-bit cache key (32 hex chars) over the task's full determining
/// context. Two independent mix chains keep the collision probability
/// negligible at paper scale.
std::string task_cache_key(std::uint64_t network_fingerprint, std::uint64_t campaign_seed,
                           std::uint64_t fault_fingerprint, std::string_view stage,
                           std::string_view task_id, std::uint64_t options_fingerprint);

class ResultCache {
 public:
  /// A cache over `path` (empty = in-memory only: no persistence, but
  /// within-run dedup still works).
  explicit ResultCache(std::string path) : path_(std::move(path)) {}

  /// Load existing records from the file. Unparseable lines (a crash's
  /// truncated tail, stray garbage) are skipped, not fatal. Returns the
  /// number of records loaded.
  std::size_t load();

  /// The cached result document for a key, or nullptr.
  const std::string* find(const std::string& key) const;

  /// Record a fresh result (also visible to find() immediately). The
  /// record is buffered until the next flush().
  void put(const std::string& key, std::string_view stage, std::string_view task_id,
           std::string result_json);

  /// Append buffered records to the file and fflush, making them
  /// crash-durable. No-op for an in-memory cache.
  void flush();

  std::size_t size() const { return records_.size(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::map<std::string, std::string> records_;  // key -> result document
  std::string pending_;                         // lines not yet on disk
};

}  // namespace cen::campaign
