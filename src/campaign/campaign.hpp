// The paper-scale campaign engine.
//
// campaign::run() compiles a CampaignSpec into a deterministic task DAG —
// CenTrace over every (endpoint, domain, protocol), CenProbe over every
// discovered in-path device IP, CenFuzz over every blocked endpoint (under
// the fuzz cap), then feature extraction + DBSCAN clustering — and
// executes it in batches over the hermetic ParallelExecutor. Three
// contracts, all covered by tests/test_campaign.cpp:
//
//  * Thread identity: per-task seeds derive from the task identity alone
//    (derive_task_seeds over the FULL task list), so the output is
//    byte-identical for threads = 0 (inline hermetic), 1 and N.
//  * Incremental cache: every task result is keyed by a content hash of
//    everything that determines it (network fingerprint, campaign seed,
//    fault-plan fingerprint, stage, task identity, tool options). Editing
//    one knob re-executes exactly the invalidated tasks; a no-op re-run
//    executes zero tool tasks.
//  * Crash-safe resume: the cache file is flushed after every batch. A
//    killed campaign resumes from the last completed batch, and because
//    every downstream stage consumes *decoded* records (fresh and cached
//    alike) and outputs are rendered from records in task-identity order,
//    the resumed output is byte-identical to an uninterrupted run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "ml/features.hpp"

namespace cen::obs {
class Observer;
}

namespace cen::campaign {

/// Execution knobs — everything here is forbidden from influencing
/// results (only wall time and durability).
struct RunControl {
  /// Worker threads: -1 = one per hardware thread, 0 = inline hermetic
  /// (no pool; each task runs on the scenario network after a
  /// reset_epoch to its task seed), >= 1 = a pool of that many workers.
  /// Results are byte-identical for every value.
  int threads = -1;
  /// Executor dispatch-chunk size (batched epochs) for the pool path.
  /// 0 = the executor default. Scheduling only — never results.
  int exec_batch = 0;
  /// Result-cache / checkpoint JSONL path. Empty = in-memory only (no
  /// persistence; within-run dedup still applies).
  std::string cache_path;
  /// Stop after this many *executed* batches (batches fully served from
  /// cache are free and never counted). -1 = unlimited. A stopped run
  /// returns complete = false; re-running with the same cache resumes
  /// where it left off.
  int max_batches = -1;
  /// Observability sink (see docs/CAMPAIGN.md for the domain split:
  /// record-derived metrics are sim-domain and run-invariant; cache/batch
  /// bookkeeping is wall-domain and excluded from deterministic
  /// snapshots). nullptr disables instrumentation.
  obs::Observer* observer = nullptr;
};

/// Per-stage bookkeeping. `tasks` is determined by the spec alone;
/// `executed` / `cache_hits` / `batches` depend on the cache state.
struct StageStats {
  std::size_t tasks = 0;
  std::size_t executed = 0;
  std::size_t cache_hits = 0;
  std::size_t batches = 0;
};

/// One task's persisted result: the stage tag, the task identity, the
/// country it belongs to and the tool's JSON report document.
struct CampaignRecord {
  std::string stage;
  std::string task_id;
  std::string country;
  std::string json;
};

struct CampaignResult {
  /// False when max_batches stopped the run early. Downstream stages and
  /// clustering are skipped for incomplete runs; re-run to resume.
  bool complete = false;

  /// Spec identity echoed into the summary.
  std::string name;
  std::vector<std::string> countries;

  /// All task records in task-identity order (country, then stage, then
  /// task order) — independent of which tasks came from cache.
  std::vector<CampaignRecord> records;

  StageStats trace;
  StageStats probe;
  StageStats fuzz;
  StageStats ambig;
  /// Endpoints whose representative trace observed blocking.
  std::size_t blocked_endpoints = 0;

  /// Clustering input/output (empty when the cluster stage is off or the
  /// run is incomplete).
  std::vector<ml::EndpointMeasurement> measurements;
  std::vector<std::string> row_ids;
  std::vector<int> cluster_labels;  // ml::kNoise = -1
  int n_clusters = 0;
  std::size_t noise_rows = 0;

  std::size_t tool_tasks_executed() const {
    return trace.executed + probe.executed + fuzz.executed + ambig.executed;
  }
  std::size_t cache_hits() const {
    return trace.cache_hits + probe.cache_hits + fuzz.cache_hits + ambig.cache_hits;
  }

  /// One line per record, task-identity order — byte-identical across
  /// thread counts, cache states and resume histories (for complete runs).
  std::string to_jsonl() const;

  /// Run-invariant campaign summary (spec identity, per-stage task
  /// counts, blocking/clustering results). Deliberately excludes
  /// executed/cache-hit counts, which belong to the wall domain.
  std::string summary_json() const;
};

/// Execute a campaign. Builds each country scenario from the spec,
/// installs the spec's fault plan, then runs the stage DAG with the
/// incremental cache at `control.cache_path`.
CampaignResult run(const CampaignSpec& spec, const RunControl& control = {});

}  // namespace cen::campaign
