#include "campaign/campaign.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "campaign/cache.hpp"
#include "centrace/degrade.hpp"
#include "core/json.hpp"
#include "ml/dbscan.hpp"
#include "obs/observer.hpp"
#include "report/from_json.hpp"
#include "report/json_report.hpp"
#include "scenario/executor.hpp"
#include "scenario/pipeline.hpp"
#include "scenario/silent.hpp"
#include "scenario/world.hpp"

namespace cen::campaign {

namespace {

// The pipeline's per-stage substream salts (scenario/pipeline.cpp). The
// campaign derives its seeds with the same salts and identity keys, so a
// campaign trace of (endpoint, domain, protocol) is the same measurement
// the pipeline would have produced for that task.
constexpr std::uint64_t kTraceStageSalt = 0x747261636531ULL;  // "trace1"
constexpr std::uint64_t kProbeStageSalt = 0x70726f626532ULL;  // "probe2"
constexpr std::uint64_t kFuzzStageSalt = 0x66757a7a33ULL;     // "fuzz3"
constexpr std::uint64_t kAmbigStageSalt = 0x616d62696734ULL;  // "ambig4"

/// Campaign-wide executed-batch budget (RunControl::max_batches).
struct Budget {
  int max_batches = -1;
  int used = 0;
  bool exhausted() const { return max_batches >= 0 && used >= max_batches; }
};

/// One stage's compiled task list: parallel arrays over task index.
struct StageTasks {
  std::vector<std::string> ids;        // "<CC>:<stage>:<subject>..."
  std::vector<std::string> cache_keys; // 128-bit content-hash keys
  std::vector<std::uint64_t> identity; // task_key() for seed derivation
};

/// Execute one stage's uncached tasks in batches, filling `docs` (one
/// result document per task, cache hits included). Returns false when the
/// batch budget ran out with work still pending; `docs` is then only
/// partially filled and the campaign must stop.
bool run_stage(sim::Network& net, const CampaignSpec& spec, const RunControl& control,
               ResultCache& cache, Budget& budget, StageStats& stats,
               std::unique_ptr<scenario::ParallelExecutor>& exec, std::string_view stage,
               const StageTasks& tasks, std::uint64_t salt,
               const std::function<bool(std::string_view)>& validate,
               const std::function<std::string(sim::Network&, std::size_t)>& execute,
               std::vector<std::string>& docs) {
  const std::size_t n = tasks.ids.size();
  stats.tasks += n;
  docs.assign(n, std::string());
  if (n == 0) return true;

  // Seeds always derive over the FULL task list: the cache state must
  // never be able to change which substream a task runs under.
  const std::vector<std::uint64_t> seeds =
      scenario::derive_task_seeds(net.seed(), salt, tasks.identity);

  const auto batch = static_cast<std::size_t>(spec.batch_size);
  for (std::size_t start = 0; start < n; start += batch) {
    const std::size_t end = std::min(start + batch, n);
    std::vector<std::size_t> missing;
    for (std::size_t i = start; i < end; ++i) {
      const std::string* hit = cache.find(tasks.cache_keys[i]);
      // A cached record that no longer decodes (hand-edited file, torn
      // write that still parsed) is treated as absent and re-executed.
      if (hit != nullptr && validate(*hit)) {
        docs[i] = *hit;
        ++stats.cache_hits;
      } else {
        missing.push_back(i);
      }
    }
    if (missing.empty()) continue;
    if (budget.exhausted()) return false;

    if (control.threads == 0) {
      // Inline hermetic path: the scenario network itself, reset to the
      // task's epoch before each measurement — same substreams the pool
      // replicas would use.
      for (std::size_t i : missing) {
        net.reset_epoch(seeds[i]);
        docs[i] = execute(net, i);
      }
    } else {
      if (exec == nullptr) {
        exec = std::make_unique<scenario::ParallelExecutor>(net, control.threads);
        if (control.exec_batch > 0) {
          exec->set_batch(static_cast<std::size_t>(control.exec_batch));
        }
        if (control.observer != nullptr) exec->set_perf_tracking(true);
      }
      std::vector<std::uint64_t> sub_seeds;
      sub_seeds.reserve(missing.size());
      for (std::size_t i : missing) sub_seeds.push_back(seeds[i]);
      std::vector<std::string> fresh(missing.size());
      exec->run(sub_seeds, [&](sim::Network& replica, std::size_t j) {
        fresh[j] = execute(replica, missing[j]);
      });
      for (std::size_t j = 0; j < missing.size(); ++j) {
        docs[missing[j]] = std::move(fresh[j]);
      }
    }

    for (std::size_t i : missing) {
      cache.put(tasks.cache_keys[i], stage, tasks.ids[i], docs[i]);
    }
    cache.flush();  // batch boundary == crash-checkpoint boundary
    ++budget.used;
    ++stats.batches;
    stats.executed += missing.size();
  }
  return true;
}

std::vector<std::string> sampled(const std::vector<std::string>& all, int cap) {
  std::vector<std::string> out;
  for (std::size_t idx : scenario::stride_sample_indices(all.size(), cap)) {
    out.push_back(all[idx]);
  }
  return out;
}

/// One measurement site: the per-network slice of campaign state the
/// stage loop runs against. Country campaigns build one site per country;
/// a world campaign (spec.world) builds a single worldgen-backed site.
/// Both reach the stage loop through this shape, so the task DAG, cache
/// keys and seed substreams are computed identically.
struct Site {
  std::string code;  ///< country code, or the world spec's name
  std::unique_ptr<sim::Network> network;
  sim::NodeId client = sim::kInvalidNode;
  std::vector<net::Ipv4Address> endpoints;
  std::vector<std::string> http_domains;
  std::vector<std::string> https_domains;
  std::string control_domain;
  /// Extra tomography vantages (world sites have none: the generated
  /// world hosts a single measurement client).
  std::vector<sim::NodeId> vantages;
};

Site build_country_site(scenario::Country c, const CampaignSpec& spec) {
  scenario::CountryScenario sc = scenario::make_country(c, spec.scale, spec.seed);
  Site site;
  site.code = std::string(scenario::country_code(c));
  site.client = sc.remote_client;
  site.endpoints = std::move(sc.remote_endpoints);
  site.http_domains = std::move(sc.http_test_domains);
  site.https_domains = std::move(sc.https_test_domains);
  site.control_domain = std::move(sc.control_domain);
  site.vantages = scenario::tomography_vantages(sc, spec.trace_vantages);
  site.network = std::move(sc.network);
  return site;
}

Site build_world_site(const CampaignSpec& spec) {
  scenario::WorldScenario ws = scenario::make_world(*spec.world, spec.seed);
  Site site;
  site.code = spec.world->name;
  site.client = ws.client;
  site.endpoints = std::move(ws.endpoints);
  site.http_domains = std::move(ws.http_test_domains);
  site.https_domains = std::move(ws.https_test_domains);
  site.control_domain = std::move(ws.control_domain);
  site.network = std::move(ws.network);
  return site;
}

void stage_span(obs::Observer* observer, const std::string& country,
                std::string_view stage, std::size_t task_count) {
  if (observer == nullptr) return;
  // Span boundaries must be run-invariant (span counts and contents show
  // up in deterministic snapshots), so the "duration" encodes the task
  // count rather than any execution timing.
  observer->tracer().complete("campaign:" + country + ":" + std::string(stage),
                              "campaign", 0, static_cast<SimTime>(task_count));
}

}  // namespace

CampaignResult run(const CampaignSpec& spec, const RunControl& control) {
  CampaignResult result;
  result.name = spec.name;
  const bool world_mode = spec.world.has_value();
  const std::vector<scenario::Country> countries =
      world_mode ? std::vector<scenario::Country>{} : spec.effective_countries();
  if (world_mode) {
    result.countries.push_back(spec.world->name);
  } else {
    for (scenario::Country c : countries) {
      result.countries.emplace_back(scenario::country_code(c));
    }
  }

  ResultCache cache(control.cache_path);
  const std::size_t preloaded = cache.load();
  Budget budget{control.max_batches, 0};
  obs::Observer* observer = control.observer;
  if (observer != nullptr) {
    // Cache/batch bookkeeping depends on the run history, not the spec —
    // wall domain, excluded from deterministic snapshots.
    observer->metrics()
        .counter("campaign.cache_preloaded", obs::Domain::kWall)
        .inc(preloaded);
  }

  const std::uint64_t fault_fp = spec.faults.fingerprint();

  const std::size_t site_count = world_mode ? 1 : countries.size();
  for (std::size_t site_index = 0; site_index < site_count; ++site_index) {
    // Sites are built one at a time, so at most one scenario network is
    // resident (matters for 1M-endpoint worlds).
    Site site = world_mode ? build_world_site(spec)
                           : build_country_site(countries[site_index], spec);
    sim::Network& net = *site.network;
    if (spec.evolution && spec.evolution_epoch > 0) {
      // Replay censor evolution up to the spec's epoch on the fresh
      // baseline. Device mutations land in the network fingerprint below,
      // so churned sites (and only churned sites) miss the result cache.
      // Rule adds draw from the *measured* domain lists (spec overrides
      // win, as in the trace stage) so churn is observable in the diffs.
      std::vector<std::string> pool =
          spec.http_domains.empty() ? site.http_domains : spec.http_domains;
      const std::vector<std::string>& https =
          spec.https_domains.empty() ? site.https_domains : spec.https_domains;
      pool.insert(pool.end(), https.begin(), https.end());
      longit::apply_evolution(net, site.code, *spec.evolution,
                              spec.evolution_epoch, pool);
    }
    net.set_fault_plan(spec.faults);
    const std::uint64_t net_fp = net.fingerprint();
    const std::string& code = site.code;
    std::unique_ptr<scenario::ParallelExecutor> exec;  // lazy, shared by stages

    // ---- Stage 1: CenTrace over (endpoint × domain × protocol). ----
    std::vector<net::Ipv4Address> endpoints;
    for (std::size_t idx : scenario::stride_sample_indices(site.endpoints.size(),
                                                           spec.max_endpoints)) {
      endpoints.push_back(site.endpoints[idx]);
    }
    const std::vector<std::string> http_domains = sampled(
        spec.http_domains.empty() ? site.http_domains : spec.http_domains,
        spec.max_domains);
    const std::vector<std::string> https_domains = sampled(
        spec.https_domains.empty() ? site.https_domains : spec.https_domains,
        spec.max_domains);

    trace::CenTraceOptions http_opts = spec.trace;
    http_opts.protocol = trace::ProbeProtocol::kHttp;
    trace::CenTraceOptions https_opts = spec.trace;
    https_opts.protocol = trace::ProbeProtocol::kHttps;

    // Degradation plan: escalate unlocalized blocked traces to tomography
    // from the scenario's other clients. The plan fingerprint joins the
    // cache key only when enabled so existing caches stay valid.
    trace::DegradationPlan degrade_plan;
    degrade_plan.tomography = spec.trace_tomography;
    degrade_plan.vantages = site.vantages;
    const trace::DegradationPlan* plan =
        spec.trace_tomography ? &degrade_plan : nullptr;
    const std::uint64_t plan_fp =
        spec.trace_tomography ? degrade_plan.fingerprint() : 0;

    struct TraceTask {
      net::Ipv4Address endpoint;
      const std::string* domain = nullptr;
      std::uint64_t dhash = 0;  // domain_hash(*domain), once per domain
      const trace::CenTraceOptions* opts = nullptr;
    };
    std::vector<TraceTask> trace_tasks;
    StageTasks trace_stage;
    if (spec.stages.trace) {
      // Hash each domain once: the stage is endpoints x domains, so the
      // per-task FNV pass would repeat per endpoint for the same string.
      std::vector<std::uint64_t> http_hashes, https_hashes;
      http_hashes.reserve(http_domains.size());
      for (const std::string& d : http_domains) {
        http_hashes.push_back(scenario::domain_hash(d));
      }
      https_hashes.reserve(https_domains.size());
      for (const std::string& d : https_domains) {
        https_hashes.push_back(scenario::domain_hash(d));
      }
      for (const net::Ipv4Address& ep : endpoints) {
        for (std::size_t d = 0; d < http_domains.size(); ++d) {
          trace_tasks.push_back({ep, &http_domains[d], http_hashes[d], &http_opts});
        }
        for (std::size_t d = 0; d < https_domains.size(); ++d) {
          trace_tasks.push_back({ep, &https_domains[d], https_hashes[d], &https_opts});
        }
      }
      for (const TraceTask& t : trace_tasks) {
        trace_stage.ids.push_back(code + ":trace:" + t.endpoint.str() + ":" + *t.domain +
                                  ":" + std::string(trace::probe_protocol_name(t.opts->protocol)));
        trace_stage.identity.push_back(scenario::task_key_hashed(
            t.endpoint.value(), t.dhash, static_cast<std::uint64_t>(t.opts->protocol)));
        trace_stage.cache_keys.push_back(task_cache_key(net_fp, spec.seed, fault_fp, "trace",
                                                        trace_stage.ids.back(),
                                                        t.opts->fingerprint() ^ plan_fp));
      }
    }
    std::vector<std::string> trace_docs;
    if (!run_stage(
            net, spec, control, cache, budget, result.trace, exec, "trace", trace_stage,
            kTraceStageSalt,
            [](std::string_view doc) { return report::trace_report_from_json(doc).has_value(); },
            [&](sim::Network& worker, std::size_t i) {
              const TraceTask& t = trace_tasks[i];
              trace::TraceRunOptions ropts;
              ropts.client = site.client;
              ropts.endpoint = t.endpoint;
              ropts.test_domain = *t.domain;
              ropts.control_domain = site.control_domain;
              ropts.trace = *t.opts;
              ropts.degradation = plan;
              trace::CenTraceReport rep = trace::run(worker, ropts);
              return report::to_json(rep);
            },
            trace_docs)) {
      return result;  // budget exhausted: incomplete, resume via the cache
    }

    // Every downstream decision runs off DECODED records — identical
    // whether the record was fresh or cached.
    std::vector<trace::CenTraceReport> traces;
    traces.reserve(trace_docs.size());
    for (std::size_t i = 0; i < trace_docs.size(); ++i) {
      traces.push_back(*report::trace_report_from_json(trace_docs[i]));
      result.records.push_back({"trace", trace_stage.ids[i], code, trace_docs[i]});
    }
    stage_span(observer, code, "trace", trace_stage.ids.size());

    // ---- Stage 2: CenProbe every distinct in-path blocking-hop IP. ----
    std::set<std::uint32_t> device_ips;
    for (const trace::CenTraceReport& r : traces) {
      if (r.blocked && r.blocking_hop_ip &&
          r.placement != trace::DevicePlacement::kOnPath) {
        device_ips.insert(r.blocking_hop_ip->value());
      }
    }
    StageTasks probe_stage;
    std::vector<std::uint32_t> probe_targets;
    if (spec.stages.probe) {
      for (std::uint32_t ip : device_ips) {
        probe_targets.push_back(ip);
        probe_stage.ids.push_back(code + ":probe:" + net::Ipv4Address(ip).str());
        probe_stage.identity.push_back(scenario::task_key(ip, "", 0x10));
        probe_stage.cache_keys.push_back(
            task_cache_key(net_fp, spec.seed, fault_fp, "probe", probe_stage.ids.back(), 0));
      }
    }
    std::vector<std::string> probe_docs;
    if (!run_stage(
            net, spec, control, cache, budget, result.probe, exec, "probe", probe_stage,
            kProbeStageSalt,
            [](std::string_view doc) { return report::probe_report_from_json(doc).has_value(); },
            [&](sim::Network& worker, std::size_t i) {
              probe::DeviceProbeReport rep =
                  probe::run(worker, probe::ProbeRunOptions{net::Ipv4Address(probe_targets[i])});
              return report::to_json(rep);
            },
            probe_docs)) {
      return result;
    }
    std::map<std::uint32_t, probe::DeviceProbeReport> device_probes;
    for (std::size_t i = 0; i < probe_docs.size(); ++i) {
      device_probes.emplace(probe_targets[i], *report::probe_report_from_json(probe_docs[i]));
      result.records.push_back({"probe", probe_stage.ids[i], code, probe_docs[i]});
    }
    stage_span(observer, code, "probe", probe_stage.ids.size());

    // ---- Stage 3: CenFuzz blocked endpoints (first blocked trace per
    // endpoint is the representative, as in the pipeline). ----
    std::map<std::uint32_t, const trace::CenTraceReport*> blocked_by_endpoint;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (traces[i].blocked) {
        blocked_by_endpoint.emplace(trace_tasks[i].endpoint.value(), &traces[i]);
      }
    }
    result.blocked_endpoints += blocked_by_endpoint.size();

    std::vector<std::uint32_t> blocked_eps;
    for (const auto& [ip, rep] : blocked_by_endpoint) blocked_eps.push_back(ip);
    StageTasks fuzz_stage;
    std::vector<std::uint32_t> fuzz_targets;
    if (spec.stages.fuzz) {
      for (std::size_t idx :
           scenario::stride_sample_indices(blocked_eps.size(), spec.fuzz_max_endpoints)) {
        fuzz_targets.push_back(blocked_eps[idx]);
      }
      for (std::uint32_t ep : fuzz_targets) {
        const std::string& domain = blocked_by_endpoint.at(ep)->test_domain;
        fuzz_stage.ids.push_back(code + ":fuzz:" + net::Ipv4Address(ep).str() + ":" + domain);
        fuzz_stage.identity.push_back(scenario::task_key(ep, domain, 0x20));
        fuzz_stage.cache_keys.push_back(task_cache_key(
            net_fp, spec.seed, fault_fp, "fuzz", fuzz_stage.ids.back(), spec.fuzz.fingerprint()));
      }
    }
    std::vector<std::string> fuzz_docs;
    if (!run_stage(
            net, spec, control, cache, budget, result.fuzz, exec, "fuzz", fuzz_stage,
            kFuzzStageSalt,
            [](std::string_view doc) { return report::fuzz_report_from_json(doc).has_value(); },
            [&](sim::Network& worker, std::size_t i) {
              const trace::CenTraceReport* rep = blocked_by_endpoint.at(fuzz_targets[i]);
              fuzz::FuzzRunOptions ropts;
              ropts.client = site.client;
              ropts.endpoint = net::Ipv4Address(fuzz_targets[i]);
              ropts.test_domain = rep->test_domain;
              ropts.control_domain = site.control_domain;
              ropts.fuzz = spec.fuzz;
              fuzz::CenFuzzReport fz = fuzz::run(worker, ropts);
              return report::to_json(fz);
            },
            fuzz_docs)) {
      return result;
    }
    std::map<std::uint32_t, fuzz::CenFuzzReport> fuzz_by_endpoint;
    for (std::size_t i = 0; i < fuzz_docs.size(); ++i) {
      fuzz_by_endpoint.emplace(fuzz_targets[i], *report::fuzz_report_from_json(fuzz_docs[i]));
      result.records.push_back({"fuzz", fuzz_stage.ids[i], code, fuzz_docs[i]});
    }
    stage_span(observer, code, "fuzz", fuzz_stage.ids.size());

    // ---- Stage 3b: CenAmbig the blocked endpoints — reassembly-ambiguity
    // fingerprinting for deployments whose banners are dark. ----
    StageTasks ambig_stage;
    std::vector<std::uint32_t> ambig_targets;
    if (spec.stages.ambig) {
      for (std::size_t idx :
           scenario::stride_sample_indices(blocked_eps.size(), spec.ambig_max_endpoints)) {
        ambig_targets.push_back(blocked_eps[idx]);
      }
      for (std::uint32_t ep : ambig_targets) {
        const std::string& domain = blocked_by_endpoint.at(ep)->test_domain;
        ambig_stage.ids.push_back(code + ":ambig:" + net::Ipv4Address(ep).str() + ":" + domain);
        ambig_stage.identity.push_back(scenario::task_key(ep, domain, 0x30));
        ambig_stage.cache_keys.push_back(task_cache_key(
            net_fp, spec.seed, fault_fp, "ambig", ambig_stage.ids.back(),
            spec.ambig.fingerprint()));
      }
    }
    std::vector<std::string> ambig_docs;
    if (!run_stage(
            net, spec, control, cache, budget, result.ambig, exec, "ambig", ambig_stage,
            kAmbigStageSalt,
            [](std::string_view doc) { return report::ambig_report_from_json(doc).has_value(); },
            [&](sim::Network& worker, std::size_t i) {
              ambig::AmbigRunOptions ropts;
              ropts.client = site.client;
              ropts.endpoint = net::Ipv4Address(ambig_targets[i]);
              ropts.test_domain = blocked_by_endpoint.at(ambig_targets[i])->test_domain;
              ropts.control_domain = site.control_domain;
              ropts.ambig = spec.ambig;
              ambig::AmbigReport rep = ambig::run(worker, ropts);
              return report::to_json(rep);
            },
            ambig_docs)) {
      return result;
    }
    std::map<std::uint32_t, ambig::AmbigReport> ambig_by_endpoint;
    for (std::size_t i = 0; i < ambig_docs.size(); ++i) {
      ambig_by_endpoint.emplace(ambig_targets[i], *report::ambig_report_from_json(ambig_docs[i]));
      result.records.push_back({"ambig", ambig_stage.ids[i], code, ambig_docs[i]});
    }
    stage_span(observer, code, "ambig", ambig_stage.ids.size());

    // ---- Stage 4: bundle one measurement per blocked endpoint. ----
    for (const auto& [ep, rep] : blocked_by_endpoint) {
      ml::EndpointMeasurement m;
      m.endpoint_id = net::Ipv4Address(ep).str();
      m.country = code;
      m.trace = *rep;
      auto fz = fuzz_by_endpoint.find(ep);
      if (fz != fuzz_by_endpoint.end()) m.fuzz = fz->second;
      auto am = ambig_by_endpoint.find(ep);
      if (am != ambig_by_endpoint.end()) m.ambig = am->second;
      if (rep->blocking_hop_ip) {
        auto pb = device_probes.find(rep->blocking_hop_ip->value());
        if (pb != device_probes.end()) m.banner = pb->second;
      }
      result.measurements.push_back(std::move(m));
    }

    // Executor overhead + replica path-cache stats for this country's
    // pool (if one was created) — wall domain, --perf-report only.
    if (observer != nullptr && exec != nullptr) {
      obs::Registry& m = observer->metrics();
      const scenario::ExecutorPerf& p = exec->perf();
      m.counter("perf.clone_ns", obs::Domain::kWall)
          .inc(p.clone_ns.load(std::memory_order_relaxed));
      m.counter("perf.reset_ns", obs::Domain::kWall)
          .inc(p.reset_ns.load(std::memory_order_relaxed));
      m.counter("perf.tasks", obs::Domain::kWall)
          .inc(p.tasks.load(std::memory_order_relaxed));
      m.counter("perf.batches", obs::Domain::kWall)
          .inc(p.batches.load(std::memory_order_relaxed));
      m.counter("pathcache.hits", obs::Domain::kWall).inc(exec->path_cache_hits());
      m.counter("pathcache.misses", obs::Domain::kWall).inc(exec->path_cache_misses());
    }
  }

  // ---- Stage 5: feature extraction + DBSCAN, exactly the cencluster
  // convention (impute → standardize → k-distance ε with k = 4). ----
  if (spec.stages.cluster && !result.measurements.empty()) {
    ml::FeatureMatrix fm = ml::extract_features(result.measurements);
    ml::impute_median(fm);
    ml::standardize(fm);
    result.row_ids = fm.row_ids;
    if (fm.n_rows() > 4) {
      const double eps = ml::estimate_epsilon(fm.rows, 4);
      ml::DbscanResult db = ml::dbscan(fm.rows, eps, 4);
      result.cluster_labels = std::move(db.labels);
      result.n_clusters = db.n_clusters;
    } else {
      // Too few rows for the k = 4 heuristic: everything is noise.
      result.cluster_labels.assign(fm.n_rows(), ml::kNoise);
    }
    for (int label : result.cluster_labels) {
      if (label == ml::kNoise) ++result.noise_rows;
    }
  }

  result.complete = true;

  if (observer != nullptr) {
    obs::Registry& m = observer->metrics();
    // Record-derived metrics are functions of the spec alone — sim
    // domain, identical across thread counts, cache states and resumes.
    m.counter("campaign.trace_tasks").inc(result.trace.tasks);
    m.counter("campaign.probe_tasks").inc(result.probe.tasks);
    m.counter("campaign.fuzz_tasks").inc(result.fuzz.tasks);
    m.counter("campaign.ambig_tasks").inc(result.ambig.tasks);
    m.counter("campaign.blocked_endpoints").inc(result.blocked_endpoints);
    m.counter("campaign.measurements").inc(result.measurements.size());
    m.gauge("campaign.clusters").set_max(result.n_clusters);
    // Execution bookkeeping varies with the cache and the batch budget —
    // wall domain.
    m.counter("campaign.tasks_executed", obs::Domain::kWall).inc(result.tool_tasks_executed());
    m.counter("campaign.cache_hits", obs::Domain::kWall).inc(result.cache_hits());
    m.counter("campaign.batches_executed", obs::Domain::kWall)
        .inc(result.trace.batches + result.probe.batches + result.fuzz.batches);
  }
  return result;
}

std::string CampaignResult::to_jsonl() const {
  std::string out;
  for (const CampaignRecord& r : records) {
    JsonWriter w;
    w.begin_object();
    w.key("stage").value(r.stage);
    w.key("task").value(r.task_id);
    w.key("country").value(r.country);
    w.key("result").raw_value(r.json);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

std::string CampaignResult::summary_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("campaign").value(name);
  w.key("complete").value(complete);
  w.key("countries").begin_array();
  for (const std::string& c : countries) w.value(c);
  w.end_array();
  w.key("trace_tasks").value(static_cast<std::uint64_t>(trace.tasks));
  w.key("probe_tasks").value(static_cast<std::uint64_t>(probe.tasks));
  w.key("fuzz_tasks").value(static_cast<std::uint64_t>(fuzz.tasks));
  w.key("ambig_tasks").value(static_cast<std::uint64_t>(ambig.tasks));
  w.key("blocked_endpoints").value(static_cast<std::uint64_t>(blocked_endpoints));
  w.key("measurements").value(static_cast<std::uint64_t>(measurements.size()));
  w.key("clusters").value(n_clusters);
  w.key("noise_rows").value(static_cast<std::uint64_t>(noise_rows));
  w.key("labels").begin_array();
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    w.begin_object();
    w.key("endpoint").value(row_ids[i]);
    w.key("cluster").value(i < cluster_labels.size() ? cluster_labels[i] : ml::kNoise);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace cen::campaign
