#include "cenambig/cenambig.hpp"

#include <algorithm>
#include <limits>

#include "censor/vendors.hpp"
#include "core/fingerprint.hpp"
#include "core/rng.hpp"
#include "core/strings.hpp"
#include "net/http.hpp"
#include "net/tls.hpp"
#include "obs/observer.hpp"

namespace cen::ambig {

namespace {

constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

/// Shared HTTP scaffolding of the segmented probes. The request line and
/// the Host keyword sit in the first fragment; the classifiable domain in
/// a later one — which is the whole point.
constexpr std::string_view kRequestHead = "GET / HTTP/1.1\r\nHo";
constexpr std::string_view kHostPrefix = "GET / HTTP/1.1\r\nHost: ";
constexpr std::string_view kTrailer = "\r\n\r\n";

Bytes to_payload(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

sim::SegmentSpec seg(std::uint32_t offset, Bytes bytes, std::uint8_t ttl = 64,
                     bool bad_checksum = false) {
  sim::SegmentSpec s;
  s.offset = offset;
  s.bytes = std::move(bytes);
  s.ttl = ttl;
  s.bad_checksum = bad_checksum;
  return s;
}

}  // namespace

const std::vector<ProbeSpec>& probe_catalogue() {
  static const std::vector<ProbeSpec> kCatalogue = {
      {ProbeKind::kBaselineForbidden, "baseline-forbidden", false, false},
      {ProbeKind::kBaselineBenign, "baseline-benign", false, false},
      {ProbeKind::kSplitHost, "split-host", false, false},
      {ProbeKind::kTlsSplitSni, "tls-split-sni", true, false},
      {ProbeKind::kOutOfOrder, "out-of-order", false, false},
      {ProbeKind::kOverlapFirst, "overlap-first", false, false},
      {ProbeKind::kOverlapLast, "overlap-last", false, false},
      {ProbeKind::kInsertionTtl, "insertion-ttl", false, true},
      {ProbeKind::kInsertionChecksum, "insertion-checksum", false, false},
  };
  return kCatalogue;
}

std::string pad_domain(const std::string& domain, std::size_t target) {
  if (domain.size() >= target) return domain;
  return std::string(target - domain.size(), 'w') + domain;
}

std::vector<sim::SegmentSpec> build_segments(ProbeKind kind,
                                             const std::string& primary,
                                             const std::string& filler,
                                             int insertion_ttl) {
  // Overlap/insertion shapes need the two domains byte-interchangeable.
  const std::size_t width = std::max(primary.size(), filler.size());
  const std::string wide_primary = pad_domain(primary, width);
  const std::string wide_filler = pad_domain(filler, width);

  std::vector<sim::SegmentSpec> out;
  switch (kind) {
    case ProbeKind::kBaselineForbidden:
    case ProbeKind::kBaselineBenign: {
      out.push_back(seg(0, net::HttpRequest::get(primary).serialize_bytes()));
      break;
    }
    case ProbeKind::kSplitHost: {
      // "GET / HTTP/1.1\r\nHo" | "st: <domain>\r\n\r\n" — neither fragment
      // classifies alone; only a reassembling device sees the hostname.
      std::string tail = "st: " + primary + std::string(kTrailer);
      out.push_back(seg(0, to_payload(kRequestHead)));
      out.push_back(
          seg(static_cast<std::uint32_t>(kRequestHead.size()), to_payload(tail)));
      break;
    }
    case ProbeKind::kTlsSplitSni: {
      // One ClientHello record cut in the middle: the first fragment is an
      // incomplete TLS record (never classified alone), the SNI bytes are
      // divided across the cut.
      Bytes hello = net::ClientHello::make(primary).serialize();
      std::size_t cut = hello.size() / 2;
      out.push_back(seg(0, Bytes(hello.begin(), hello.begin() + cut)));
      out.push_back(seg(static_cast<std::uint32_t>(cut),
                        Bytes(hello.begin() + cut, hello.end())));
      break;
    }
    case ProbeKind::kOutOfOrder: {
      // A = request line, B = Host header (no terminator), C = blank line;
      // sent B, A, C. A buffering device reorders and classifies; a device
      // that only accepts in-order data at the window edge sees B+C, which
      // never parses as a request.
      std::string a(kHostPrefix.substr(0, 16));  // "GET / HTTP/1.1\r\n"
      std::string b = "Host: " + primary;
      std::uint32_t off_b = static_cast<std::uint32_t>(a.size());
      std::uint32_t off_c = off_b + static_cast<std::uint32_t>(b.size());
      out.push_back(seg(off_b, to_payload(b)));
      out.push_back(seg(0, to_payload(a)));
      out.push_back(seg(off_c, to_payload(kTrailer)));
      break;
    }
    case ProbeKind::kOverlapFirst:
    case ProbeKind::kOverlapLast: {
      // A carries one domain, B overwrites exactly the domain bytes with
      // the other, C concludes. First-wins devices classify A's domain,
      // last-wins devices B's. The canonical endpoint stack is first-wins,
      // so A's domain is what the server answers for.
      const std::string& first =
          kind == ProbeKind::kOverlapFirst ? wide_primary : wide_filler;
      const std::string& second =
          kind == ProbeKind::kOverlapFirst ? wide_filler : wide_primary;
      std::string a = std::string(kHostPrefix) + first;
      std::uint32_t host_off = static_cast<std::uint32_t>(kHostPrefix.size());
      std::uint32_t end_off = static_cast<std::uint32_t>(a.size());
      out.push_back(seg(0, to_payload(a)));
      out.push_back(seg(host_off, to_payload(second)));
      out.push_back(seg(end_off, to_payload(kTrailer)));
      break;
    }
    case ProbeKind::kInsertionTtl:
    case ProbeKind::kInsertionChecksum: {
      // A opens the message, X completes it with the primary domain but
      // can never be accepted by the endpoint stack (TTL death / corrupt
      // checksum), B completes it with the filler domain. A middlebox that
      // honours X classifies the primary; the endpoint serves the filler.
      std::string x = "st: " + wide_primary + std::string(kTrailer);
      std::string b = "st: " + wide_filler + std::string(kTrailer);
      std::uint32_t tail_off = static_cast<std::uint32_t>(kRequestHead.size());
      out.push_back(seg(0, to_payload(kRequestHead)));
      if (kind == ProbeKind::kInsertionTtl) {
        std::uint8_t ttl = static_cast<std::uint8_t>(
            std::clamp(insertion_ttl, 1, 255));
        out.push_back(seg(tail_off, to_payload(x), ttl));
      } else {
        out.push_back(seg(tail_off, to_payload(x), 64, /*bad_checksum=*/true));
      }
      out.push_back(seg(tail_off, to_payload(b)));
      break;
    }
  }
  return out;
}

std::string_view probe_outcome_name(ProbeOutcome o) {
  switch (o) {
    case ProbeOutcome::kData: return "data";
    case ProbeOutcome::kRst: return "rst";
    case ProbeOutcome::kFin: return "fin";
    case ProbeOutcome::kBlockpage: return "blockpage";
    case ProbeOutcome::kTimeout: return "timeout";
  }
  return "?";
}

bool outcome_blocked(ProbeOutcome o) { return o != ProbeOutcome::kData; }

std::uint64_t AmbigOptions::fingerprint() const {
  FingerprintBuilder fp;
  fp.mix(static_cast<std::uint64_t>(repetitions));
  fp.mix(static_cast<std::uint64_t>(retries));
  fp.mix(static_cast<std::uint64_t>(wait_after_blocked));
  fp.mix(static_cast<std::uint64_t>(wait_after_ok));
  fp.mix(static_cast<std::uint64_t>(retry_backoff));
  fp.mix(static_cast<std::uint64_t>(max_distance_ttl));
  fp.mix(order_salt);
  return fp.digest();
}

std::vector<double> AmbigReport::discrepancy_vector() const {
  std::vector<double> out;
  out.reserve(probes.size());
  for (const AmbigProbeResult& p : probes) {
    if (!p.testable) {
      out.push_back(kMissing);
    } else {
      out.push_back(p.discrepant ? 1.0 : 0.0);
    }
  }
  return out;
}

CenAmbig::CenAmbig(sim::Network& network, sim::NodeId client, AmbigOptions options)
    : network_(network), client_(client), options_(options) {}

ProbeOutcome CenAmbig::issue(net::Ipv4Address endpoint, bool https,
                             const std::vector<sim::SegmentSpec>& segments) {
  const std::uint16_t port = https ? 443 : 80;
  SimTime backoff = options_.retry_backoff;
  for (int attempt = 0; attempt <= options_.retries; ++attempt) {
    if (attempt > 0 && backoff > 0) {
      network_.clock().advance(backoff);
      backoff *= 2;
    }
    sim::Connection conn = network_.open_connection(client_, endpoint, port);
    if (conn.connect() != sim::ConnectResult::kEstablished) continue;
    std::vector<sim::Event> events = conn.send_segments(segments);
    if (events.empty()) continue;

    // Rank exactly as CenFuzz: an injected blockpage or reset outranks
    // genuine-looking data that may also arrive (on-path races).
    ProbeOutcome result = ProbeOutcome::kData;
    int best_rank = -1;
    auto rank = [](ProbeOutcome o) {
      switch (o) {
        case ProbeOutcome::kBlockpage: return 4;
        case ProbeOutcome::kRst: return 3;
        case ProbeOutcome::kFin: return 2;
        case ProbeOutcome::kData: return 1;
        case ProbeOutcome::kTimeout: return 0;
      }
      return 0;
    };
    bool any_tcp = false;
    for (const sim::Event& ev : events) {
      const auto* tcp = std::get_if<sim::TcpEvent>(&ev);
      if (tcp == nullptr) continue;
      any_tcp = true;
      ProbeOutcome o = ProbeOutcome::kData;
      if (tcp->packet.tcp.has(net::TcpFlags::kRst)) {
        o = ProbeOutcome::kRst;
      } else if (tcp->packet.tcp.has(net::TcpFlags::kFin)) {
        o = ProbeOutcome::kFin;
      } else if (!tcp->packet.payload.empty()) {
        std::string raw = to_string(tcp->packet.payload);
        if (auto resp = net::HttpResponse::parse(raw);
            resp && censor::match_blockpage(resp->body)) {
          o = ProbeOutcome::kBlockpage;
        }
      }
      if (rank(o) > best_rank) {
        best_rank = rank(o);
        result = o;
      }
    }
    // ICMP-only events (an insertion segment expiring en route) are not a
    // connection outcome; keep retrying until something TCP arrives.
    if (!any_tcp) continue;
    return result;
  }
  return ProbeOutcome::kTimeout;
}

int CenAmbig::measure_distance(net::Ipv4Address endpoint,
                               const std::string& control_domain) {
  const Bytes payload = net::HttpRequest::get(control_domain).serialize_bytes();
  for (int ttl = 1; ttl <= options_.max_distance_ttl; ++ttl) {
    sim::Connection conn = network_.open_connection(client_, endpoint, 80);
    if (conn.connect() != sim::ConnectResult::kEstablished) continue;
    std::vector<sim::Event> events = conn.send(payload, static_cast<std::uint8_t>(ttl));
    network_.clock().advance(options_.wait_after_ok);
    for (const sim::Event& ev : events) {
      const auto* tcp = std::get_if<sim::TcpEvent>(&ev);
      if (tcp != nullptr && !tcp->packet.payload.empty() &&
          !tcp->packet.tcp.has(net::TcpFlags::kRst)) {
        return ttl;
      }
    }
  }
  return -1;
}

AmbigReport CenAmbig::run(net::Ipv4Address endpoint, const std::string& test_domain,
                          const std::string& control_domain) {
  AmbigReport report;
  report.endpoint = endpoint;
  report.test_domain = test_domain;
  report.control_domain = control_domain;

  obs::Observer* o = network_.observer();
  obs::ScopedSpan span(o != nullptr ? &o->tracer() : nullptr, &network_.clock(),
                       "cenambig:" + test_domain, "cenambig");
  if (o != nullptr) o->tools().ambig_runs->inc();

  // The control-domain mini-sweep pins the endpoint distance; insertion
  // probes stamp one hop less so the segment reaches every on-path device
  // but dies at the last router.
  report.endpoint_distance = measure_distance(endpoint, control_domain);
  if (report.endpoint_distance > 1) {
    report.insertion_ttl = report.endpoint_distance - 1;
  }

  auto pace = [&](ProbeOutcome r) {
    network_.clock().advance(outcome_blocked(r) ? options_.wait_after_blocked
                                                : options_.wait_after_ok);
    ++report.total_probes_sent;
    if (o != nullptr) o->tools().ambig_probes->inc();
  };

  const std::vector<ProbeSpec>& catalogue = probe_catalogue();
  report.probes.resize(catalogue.size());

  // Execution order is a deterministic permutation of the catalogue;
  // results land in catalogue order regardless. Fresh connections plus
  // residual-outlasting waits make the vector order-invariant, which the
  // cencheck ambig engine asserts by permuting this salt.
  std::vector<std::size_t> order(catalogue.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options_.order_salt != 0) {
    order = Rng(options_.order_salt).permutation(catalogue.size());
  }

  const int reps = std::max(1, options_.repetitions);
  for (std::size_t idx : order) {
    const ProbeSpec& spec = catalogue[idx];
    AmbigProbeResult& pr = report.probes[idx];
    pr.name = std::string(spec.name);
    pr.repetitions = reps;

    if (spec.needs_insertion_ttl && report.insertion_ttl < 1) {
      pr.testable = false;
      continue;
    }

    // The control variant swaps the forbidden domain for a second benign
    // name of identical shape; kBaselineBenign is all-benign by design.
    const std::string& test_primary =
        spec.kind == ProbeKind::kBaselineBenign ? control_domain : test_domain;
    std::vector<sim::SegmentSpec> test_segments = build_segments(
        spec.kind, test_primary, control_domain, report.insertion_ttl);
    std::vector<sim::SegmentSpec> control_segments = build_segments(
        spec.kind, control_domain, control_domain, report.insertion_ttl);

    for (int rep = 0; rep < reps; ++rep) {
      ProbeOutcome test_r = issue(endpoint, spec.https, test_segments);
      pace(test_r);
      ProbeOutcome control_r = issue(endpoint, spec.https, control_segments);
      pace(control_r);
      if (rep == 0) {
        pr.test_outcome = test_r;
        pr.control_outcome = control_r;
      }
      if (outcome_blocked(test_r)) ++pr.test_blocked_votes;
      if (!outcome_blocked(control_r)) ++pr.control_clean_votes;
    }

    pr.testable = 2 * pr.control_clean_votes > reps;
    pr.discrepant = pr.testable && 2 * pr.test_blocked_votes > reps;
    if (spec.kind == ProbeKind::kBaselineForbidden) {
      report.baseline_blocked = pr.discrepant;
    }
    if (o != nullptr) {
      if (pr.discrepant) o->tools().ambig_discrepant->inc();
      o->journal().record(network_.now(), "ambig",
                          pr.name + " -> " +
                              (pr.testable
                                   ? std::string(pr.discrepant ? "discrepant" : "clean")
                                   : std::string("untestable")));
    }
  }
  return report;
}

AmbigReport run(sim::Network& network, const AmbigRunOptions& options,
                obs::Observer* observer) {
  sim::ScopedObserver guard(network, observer);
  if (options.common.seed) network.reset_epoch(*options.common.seed);
  AmbigOptions ambig = options.ambig;
  ambig.apply(options.common);
  CenAmbig tool(network, options.client, ambig);
  return tool.run(options.endpoint, options.test_domain, options.control_domain);
}

}  // namespace cen::ambig
