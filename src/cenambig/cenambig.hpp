// cenambig — fingerprinting DPI devices by their reassembly ambiguities.
//
// Banner-based identification (CenProbe, §5) dies the moment a vendor
// blocks management-plane probes. This tool instead crafts probe sequences
// whose *interpretation* is ambiguous — overlapping TCP segments, TTL-
// limited insertion packets that reach the middlebox but not the endpoint,
// out-of-order delivery, bad-checksum decoys — and classifies devices by
// their discrepancy vector: per probe, did the censor trigger while the
// endpoint-visible payload stayed clean (or vice versa)? Two devices with
// identical rule sets but different ReassemblyQuirks produce different
// vectors, which is exactly the signal the clustering stage needs when
// every banner is dark ("Fingerprinting DPI Devices by Their Ambiguities").
//
// Each catalogue probe is issued as a (test, control) pair of segment
// sequences with the same wire shape — only the classifiable domain
// differs — over fresh connections, majority-voted across repetitions.
// The discrepancy bit is set when the test variant is blocked while the
// control variant is clean; a blocked control makes the probe untestable
// (NaN in the feature vector).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/clock.hpp"
#include "netsim/engine.hpp"
#include "tool/options.hpp"

namespace cen::ambig {

/// The ambiguity axis a probe targets. Catalogue order is the feature
/// order — append only.
enum class ProbeKind : std::uint8_t {
  kBaselineForbidden,  // whole forbidden request in one segment (sanity)
  kBaselineBenign,     // whole benign request in one segment (sanity)
  kSplitHost,          // Host header split across two in-order segments
  kTlsSplitSni,        // ClientHello split mid-record (SNI divided)
  kOutOfOrder,         // middle segment sent first (B, A, C)
  kOverlapFirst,       // forbidden first, benign overwrite (first-wins sees it)
  kOverlapLast,        // benign first, forbidden overwrite (last-wins sees it)
  kInsertionTtl,       // forbidden completion with TTL dying before endpoint
  kInsertionChecksum,  // forbidden completion with a corrupt TCP checksum
};

struct ProbeSpec {
  ProbeKind kind;
  std::string_view name;
  bool https = false;                // sent to 443 as a ClientHello shape
  bool needs_insertion_ttl = false;  // untestable without a measured distance
};

/// The stable probe catalogue; discrepancy-vector entries (and the ml
/// feature columns) follow this order.
const std::vector<ProbeSpec>& probe_catalogue();

/// Pad the leftmost label of `domain` with leading 'w's until the whole
/// name reaches `target` length. Suffix/registrable rules still match the
/// padded name and subdomain-tolerant servers still answer it — this is
/// how overlap/insertion probes make their two domains byte-interchangeable.
std::string pad_domain(const std::string& domain, std::size_t target);

/// Build one probe variant's wire segments. `primary` rides in the
/// position the censor may extract (the test variant passes the forbidden
/// domain, the control variant the benign one); `filler` is the benign
/// counterpart used in the non-classifiable position of overlap/insertion
/// shapes. `insertion_ttl` is only read by kInsertionTtl.
std::vector<sim::SegmentSpec> build_segments(ProbeKind kind,
                                             const std::string& primary,
                                             const std::string& filler,
                                             int insertion_ttl);

/// How one probe attempt terminated at the client.
enum class ProbeOutcome : std::uint8_t { kData, kRst, kFin, kBlockpage, kTimeout };
std::string_view probe_outcome_name(ProbeOutcome o);
bool outcome_blocked(ProbeOutcome o);

struct AmbigOptions {
  /// Repetitions per (probe, variant) pair, majority-voted.
  int repetitions = 3;
  /// Connect/timeout retries per attempt before declaring a drop.
  int retries = 2;
  /// Simulated-time pacing: blocked probes wait out residual-blocking
  /// windows; clean ones advance a polite inter-probe gap.
  SimTime wait_after_blocked = 120 * kSecond;
  SimTime wait_after_ok = 3 * kSecond;
  /// Simulated-time wait before a retry, doubled per further attempt.
  SimTime retry_backoff = 0;
  /// TTL ceiling of the endpoint-distance mini-sweep.
  int max_distance_ttl = 24;
  /// Deterministic permutation of probe execution order (0 = catalogue
  /// order). The report is always in catalogue order; cencheck permutes
  /// this salt to assert order-invariance of the discrepancy vector.
  std::uint64_t order_salt = 0;

  /// Digest over every option (campaign cache-key component).
  std::uint64_t fingerprint() const;

  /// Apply the shared run fields (retries + backoff). Inert when unset.
  void apply(const tool::CommonRunOptions& common) {
    if (common.retries) retries = *common.retries;
    if (common.backoff) retry_backoff = *common.backoff;
  }
};

/// Verdict for one catalogue probe.
struct AmbigProbeResult {
  std::string name;
  ProbeOutcome test_outcome = ProbeOutcome::kData;     // first repetition
  ProbeOutcome control_outcome = ProbeOutcome::kData;  // first repetition
  int test_blocked_votes = 0;
  int control_clean_votes = 0;
  int repetitions = 0;
  /// Majority: test blocked AND control clean.
  bool discrepant = false;
  /// False when the control variant was not majority-clean (collateral
  /// blocking / loss) or the probe needs an unmeasurable insertion TTL.
  bool testable = true;
};

struct AmbigReport {
  net::Ipv4Address endpoint;
  std::string test_domain;
  std::string control_domain;
  /// The baseline-forbidden probe's majority verdict: without blocking
  /// there is nothing to fingerprint and every bit reads 0.
  bool baseline_blocked = false;
  /// Hop distance of the endpoint from the TTL mini-sweep (-1 unmeasured).
  int endpoint_distance = -1;
  /// TTL stamped on insertion segments (reaches middleboxes, not the
  /// endpoint); -1 when the distance could not be measured.
  int insertion_ttl = -1;
  /// One entry per catalogue probe, in catalogue order.
  std::vector<AmbigProbeResult> probes;
  std::size_t total_probes_sent = 0;

  /// Per-probe feature values in catalogue order: 1.0 discrepant, 0.0 not,
  /// NaN untestable.
  std::vector<double> discrepancy_vector() const;
};

class CenAmbig {
 public:
  CenAmbig(sim::Network& network, sim::NodeId client, AmbigOptions options = {});

  /// Run the full catalogue against one (endpoint, test domain) pair.
  AmbigReport run(net::Ipv4Address endpoint, const std::string& test_domain,
                  const std::string& control_domain);

  /// Issue one segment sequence on a fresh connection and classify the
  /// outcome (exposed for tests).
  ProbeOutcome issue(net::Ipv4Address endpoint, bool https,
                     const std::vector<sim::SegmentSpec>& segments);

  /// TTL mini-sweep with the benign domain: smallest TTL whose request
  /// elicits endpoint data, or -1. Exposed for tests.
  int measure_distance(net::Ipv4Address endpoint, const std::string& control_domain);

 private:
  sim::Network& network_;
  sim::NodeId client_;
  AmbigOptions options_;
};

/// One complete cenambig invocation for the unified tool API.
struct AmbigRunOptions {
  sim::NodeId client = sim::kInvalidNode;
  net::Ipv4Address endpoint;
  std::string test_domain;
  std::string control_domain;
  AmbigOptions ambig;
  /// Shared run fields, applied by run() on top of `ambig`.
  tool::CommonRunOptions common;
};

/// Unified entry point (same shape as trace::run / probe::run / fuzz::run):
/// fingerprint one endpoint's path on `network`, attaching `observer` for
/// the duration (the previous observer is restored on return).
AmbigReport run(sim::Network& network, const AmbigRunOptions& options,
                obs::Observer* observer = nullptr);

}  // namespace cen::ambig
