#include "obs/observer.hpp"

namespace cen::obs {

Observer::Observer(Options options) : journal_(options.journal_cap) {
  engine_.forward_walks = &metrics_.counter("engine.forward_walks");
  engine_.hops = &metrics_.counter("engine.hops_traversed");
  engine_.injections = &metrics_.counter("engine.injections");
  engine_.icmp_quotes = &metrics_.counter("engine.icmp_quotes");
  engine_.udp_sends = &metrics_.counter("engine.udp_sends");
  engine_.transient_drops = &metrics_.counter("engine.transient_drops");

  faults_.link_loss = &metrics_.counter("faults.link_loss");
  faults_.duplicates = &metrics_.counter("faults.duplicates");
  faults_.reorders = &metrics_.counter("faults.reorders");
  faults_.payload_truncates = &metrics_.counter("faults.payload_truncates");
  faults_.payload_corruptions = &metrics_.counter("faults.payload_corruptions");
  faults_.icmp_blackholed = &metrics_.counter("faults.icmp_blackholed");
  faults_.icmp_rate_limited = &metrics_.counter("faults.icmp_rate_limited");
  faults_.mgmt_drops = &metrics_.counter("faults.mgmt_drops");
  faults_.banner_truncates = &metrics_.counter("faults.banner_truncates");

  tools_.trace_probes = &metrics_.counter("centrace.probes");
  tools_.trace_retries = &metrics_.counter("centrace.retries");
  tools_.trace_retry_recovered = &metrics_.counter("centrace.retry_recovered");
  tools_.trace_cache_hits = &metrics_.counter("centrace.payload_cache_hits");
  tools_.trace_cache_misses = &metrics_.counter("centrace.payload_cache_misses");
  tools_.trace_measurements = &metrics_.counter("centrace.measurements");
  tools_.trace_blocked = &metrics_.counter("centrace.blocked_verdicts");
  tools_.trace_confidence = &metrics_.histogram(
      "centrace.confidence_milli", {250, 500, 750, 900, 950, 1000});
  tools_.trace_mode_full = &metrics_.counter("centrace.mode_full");
  tools_.trace_mode_icmp_degraded = &metrics_.counter("centrace.mode_icmp_degraded");
  tools_.trace_mode_tomography = &metrics_.counter("centrace.mode_tomography");
  tools_.trace_mode_unlocalized = &metrics_.counter("centrace.mode_unlocalized");
  tools_.trace_channel_dead = &metrics_.counter("centrace.dead_channel_sweeps");
  tools_.tomo_probes = &metrics_.counter("tomography.probes");
  tools_.tomo_observations = &metrics_.counter("tomography.observations");
  tools_.tomo_solves = &metrics_.counter("tomography.solver_runs");

  tools_.banner_grabs = &metrics_.counter("cenprobe.banner_grabs");
  tools_.banner_retries = &metrics_.counter("cenprobe.banner_retries");
  tools_.banner_partials = &metrics_.counter("cenprobe.banner_partials");
  tools_.banner_matches = &metrics_.counter("cenprobe.banner_matches");
  tools_.devices_probed = &metrics_.counter("cenprobe.devices_probed");

  tools_.fuzz_requests = &metrics_.counter("cenfuzz.requests");
  tools_.fuzz_successful = &metrics_.counter("cenfuzz.successful");
  tools_.fuzz_not_successful = &metrics_.counter("cenfuzz.not_successful");
  tools_.fuzz_untestable = &metrics_.counter("cenfuzz.untestable");
  tools_.fuzz_baseline_failed = &metrics_.counter("cenfuzz.baseline_failed");
  tools_.fuzz_skipped = &metrics_.counter("cenfuzz.skipped_strategies");
  tools_.ambig_runs = &metrics_.counter("cenambig.runs");
  tools_.ambig_probes = &metrics_.counter("cenambig.probes");
  tools_.ambig_discrepant = &metrics_.counter("cenambig.discrepant");
}

void Observer::merge_from(const Observer& other, std::uint32_t tid,
                          SimTime ts_offset_ms, SimTime task_now_ms) {
  metrics_.merge_from(other.metrics_);
  tracer_.append_from(other.tracer_, tid, ts_offset_ms, task_now_ms);
  journal_.append_from(other.journal_, tid, ts_offset_ms);
}

std::string Observer::summary() const {
  // Sim-domain only: the digest is deterministic and diffable between
  // runs. Rows with a zero count are suppressed to keep it one screen.
  std::string out = "-- metrics summary --------------------------------\n";
  struct Row {
    const char* label;
    const char* name;
  };
  static constexpr Row kCounterRows[] = {
      {"forward walks", "engine.forward_walks"},
      {"hops traversed", "engine.hops_traversed"},
      {"device injections", "engine.injections"},
      {"ICMP quotes", "engine.icmp_quotes"},
      {"UDP sends", "engine.udp_sends"},
      {"transient drops", "engine.transient_drops"},
      {"fault: link loss", "faults.link_loss"},
      {"fault: duplicates", "faults.duplicates"},
      {"fault: reorders", "faults.reorders"},
      {"fault: icmp rate-limited", "faults.icmp_rate_limited"},
      {"probes sent", "centrace.probes"},
      {"probe retries", "centrace.retries"},
      {"retry-recovered probes", "centrace.retry_recovered"},
      {"trace mode: full", "centrace.mode_full"},
      {"trace mode: icmp-degraded", "centrace.mode_icmp_degraded"},
      {"trace mode: tomography", "centrace.mode_tomography"},
      {"trace mode: unlocalized", "centrace.mode_unlocalized"},
      {"dead-channel sweeps", "centrace.dead_channel_sweeps"},
      {"tomography probes", "tomography.probes"},
      {"tomography observations", "tomography.observations"},
      {"payload cache hits", "centrace.payload_cache_hits"},
      {"payload cache misses", "centrace.payload_cache_misses"},
      {"banner grabs", "cenprobe.banner_grabs"},
      {"banner retries", "cenprobe.banner_retries"},
      {"fuzz requests", "cenfuzz.requests"},
      {"fuzz successful", "cenfuzz.successful"},
      {"fuzz unsuccessful", "cenfuzz.not_successful"},
  };
  for (const Row& row : kCounterRows) {
    std::uint64_t v = metrics_.counter_value(row.name);
    if (v == 0) continue;
    std::string label = row.label;
    label.resize(26, ' ');
    out += "  " + label + std::to_string(v) + "\n";
  }
  if (const Histogram* h = metrics_.find_histogram("centrace.confidence_milli")) {
    if (h->count() > 0) {
      std::string label = "trace confidence (mean %)";
      label.resize(26, ' ');
      out += "  " + label +
             std::to_string(h->sum() / (10 * h->count())) + "\n";
    }
  }
  std::size_t spans = tracer_.spans().size();
  std::size_t events = journal_.events().size();
  if (spans > 0) out += "  spans recorded            " + std::to_string(spans) + "\n";
  if (events > 0) {
    out += "  journal events            " + std::to_string(events) + "\n";
  }
  out += "---------------------------------------------------\n";
  return out;
}

}  // namespace cen::obs
