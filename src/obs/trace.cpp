#include "obs/trace.hpp"

#include "core/json.hpp"

namespace cen::obs {

void Tracer::begin(std::string name, std::string category, SimTime now) {
  open_.push_back({std::move(name), std::move(category), now});
}

void Tracer::end(SimTime now) {
  if (open_.empty()) return;  // tolerate unbalanced ends rather than throw
  OpenSpan top = std::move(open_.back());
  open_.pop_back();
  Span s;
  s.name = std::move(top.name);
  s.category = std::move(top.category);
  s.begin_ms = top.begin_ms;
  s.duration_ms = now >= top.begin_ms ? now - top.begin_ms : 0;
  s.depth = static_cast<std::uint32_t>(open_.size());
  spans_.push_back(std::move(s));
}

void Tracer::complete(std::string name, std::string category, SimTime begin_ms,
                      SimTime end_ms) {
  Span s;
  s.name = std::move(name);
  s.category = std::move(category);
  s.begin_ms = begin_ms;
  s.duration_ms = end_ms >= begin_ms ? end_ms - begin_ms : 0;
  s.depth = static_cast<std::uint32_t>(open_.size());
  spans_.push_back(std::move(s));
}

void Tracer::append_from(const Tracer& other, std::uint32_t tid,
                         SimTime ts_offset_ms, SimTime other_now) {
  for (const Span& s : other.spans_) {
    Span copy = s;
    copy.begin_ms += ts_offset_ms;
    copy.tid = tid;
    spans_.push_back(std::move(copy));
  }
  // A task that returned with spans still open (e.g. an exception path)
  // gets those spans closed at its final sim time so the trace remains
  // well-formed.
  for (const OpenSpan& o : other.open_) {
    Span s;
    s.name = o.name;
    s.category = o.category;
    s.begin_ms = o.begin_ms + ts_offset_ms;
    s.duration_ms = other_now >= o.begin_ms ? other_now - o.begin_ms : 0;
    s.tid = tid;
    spans_.push_back(std::move(s));
  }
}

void Tracer::clear() {
  spans_.clear();
  open_.clear();
}

std::string Tracer::to_chrome_json() const {
  JsonWriter w;
  w.begin_array();
  for (const Span& s : spans_) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("cat").value(s.category);
    w.key("ph").value("X");
    w.key("ts").value(s.begin_ms * 1000);      // µs
    w.key("dur").value(s.duration_ms * 1000);  // µs
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(s.tid));
    w.end_object();
  }
  w.end_array();
  return w.str();
}

}  // namespace cen::obs
