// Deterministic metrics registry: counters, gauges and fixed-bucket
// histograms.
//
// The registry is deliberately *not* thread-safe: the determinism contract
// of the parallel pipeline is preserved by sharding — every hermetic task
// records into its own private `Registry` (owned by a per-task
// `obs::Observer`), and the shards are merged in task-identity order after
// the fan-out completes. Counter and histogram merging is pure uint64
// addition (commutative and associative), gauges merge by max, and every
// exporter iterates metrics in sorted name order — so the merged snapshot
// is byte-identical for any worker count, the same rule the measurement
// results themselves obey.
//
// Metrics live in one of two domains:
//   - kSim  — derived purely from simulation state (packet counts, sim-time
//     histograms). Deterministic; included in every snapshot.
//   - kWall — derived from the host clock (worker busy time, utilization).
//     Excluded from snapshots unless explicitly requested, so the default
//     `--metrics` output stays byte-identical across runs and machines.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/ckms.hpp"

namespace cen::obs {

enum class Domain : std::uint8_t { kSim, kWall };

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  friend class Registry;
  std::uint64_t value_ = 0;
};

/// Point-in-time value. Merges by max over *touched* gauges (the only
/// order-free combination for last-write semantics), so keep gauges to
/// high-water marks and end-of-run summaries. A gauge tracks whether it
/// has ever been set: an untouched gauge reads 0 but never participates
/// in a max — without that, a shard that never touched a (legitimately
/// negative) gauge would clobber it to 0 during merge_from.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_ = v;
    set_ = true;
  }
  void set_max(std::int64_t v) {
    if (!set_ || v > value_) value_ = v;
    set_ = true;
  }
  std::int64_t value() const { return value_; }
  /// True once set()/set_max() has recorded a value.
  bool touched() const { return set_; }

 private:
  friend class Registry;
  std::int64_t value_ = 0;
  bool set_ = false;
};

/// Fixed-bucket histogram over uint64 samples. Bucket `i` counts samples
/// `v <= bounds[i]` that no earlier bucket claimed (Prometheus `le`
/// semantics; the exporter emits cumulative counts plus a +Inf bucket).
/// The sum is integral, so merging shards never hits float reassociation.
class Histogram {
 public:
  void observe(std::uint64_t v);
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// Non-cumulative per-bucket counts; counts_[bounds.size()] is +Inf.
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }

 private:
  friend class Registry;
  std::vector<std::uint64_t> bounds_;  // strictly increasing upper edges
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

class Registry {
 public:
  /// Find-or-create. Returned references are stable for the registry's
  /// lifetime (node-based storage), so hot paths bind them once instead of
  /// paying a name lookup per increment. Re-requesting an existing metric
  /// with a different kind or domain throws std::logic_error.
  Counter& counter(const std::string& name, Domain domain = Domain::kSim);
  Gauge& gauge(const std::string& name, Domain domain = Domain::kSim);
  Histogram& histogram(const std::string& name, std::vector<std::uint64_t> bounds,
                       Domain domain = Domain::kSim);
  /// CKMS streaming-quantile sketch (see obs/ckms.hpp). Re-requesting with
  /// different targets throws std::logic_error, like histogram bounds.
  CkmsQuantiles& quantiles(const std::string& name,
                           std::vector<QuantileTarget> targets =
                               default_quantile_targets(),
                           Domain domain = Domain::kSim);

  /// Value lookups for summaries and tests; 0 / nullptr when absent.
  std::uint64_t counter_value(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;
  const CkmsQuantiles* find_quantiles(const std::string& name) const;

  /// Fold another registry in: counters and histograms add (bucket bounds
  /// must match; throws std::logic_error otherwise), gauges take the max
  /// over *touched* donors, quantile sketches merge (targets must match).
  /// Metrics absent here are created with the donor's domain.
  void merge_from(const Registry& other);

  bool empty() const;
  void clear();

  /// Prometheus-style text exposition, sorted by metric name. Dots in
  /// names become underscores and everything is prefixed `cen_`.
  std::string to_prometheus(bool include_wall = false) const;
  /// JSON snapshot (core/json writer), sorted by metric name.
  std::string to_json(bool include_wall = false) const;

 private:
  template <typename T>
  struct Entry {
    T metric;
    Domain domain = Domain::kSim;
  };
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
  std::map<std::string, Entry<CkmsQuantiles>> quantiles_;
};

}  // namespace cen::obs
