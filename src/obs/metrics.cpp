#include "obs/metrics.hpp"

#include <stdexcept>

#include "core/json.hpp"

namespace cen::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map onto
/// that by swapping every other character for '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = "cen_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Prometheus `quantile` label for an integer percent, without touching
/// float formatting: 50 -> "0.5", 99 -> "0.99", 5 -> "0.05".
std::string quantile_label(int percent) {
  if (percent <= 0) return "0";
  if (percent >= 100) return "1";
  if (percent % 10 == 0) return "0." + std::to_string(percent / 10);
  return (percent < 10 ? "0.0" : "0.") + std::to_string(percent);
}

}  // namespace

void Histogram::observe(std::uint64_t v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

Counter& Registry::counter(const std::string& name, Domain domain) {
  if (gauges_.count(name) || histograms_.count(name) || quantiles_.count(name)) {
    throw std::logic_error("metric kind mismatch: " + name);
  }
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) {
    it->second.domain = domain;
  } else if (it->second.domain != domain) {
    throw std::logic_error("metric domain mismatch: " + name);
  }
  return it->second.metric;
}

Gauge& Registry::gauge(const std::string& name, Domain domain) {
  if (counters_.count(name) || histograms_.count(name) || quantiles_.count(name)) {
    throw std::logic_error("metric kind mismatch: " + name);
  }
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) {
    it->second.domain = domain;
  } else if (it->second.domain != domain) {
    throw std::logic_error("metric domain mismatch: " + name);
  }
  return it->second.metric;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<std::uint64_t> bounds,
                               Domain domain) {
  if (counters_.count(name) || gauges_.count(name) || quantiles_.count(name)) {
    throw std::logic_error("metric kind mismatch: " + name);
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      throw std::logic_error("histogram bounds not strictly increasing: " + name);
    }
  }
  auto [it, inserted] = histograms_.try_emplace(name);
  Histogram& h = it->second.metric;
  if (inserted) {
    it->second.domain = domain;
    h.bounds_ = std::move(bounds);
    h.counts_.assign(h.bounds_.size() + 1, 0);
  } else {
    if (it->second.domain != domain) {
      throw std::logic_error("metric domain mismatch: " + name);
    }
    if (h.bounds_ != bounds) {
      throw std::logic_error("histogram bounds mismatch: " + name);
    }
  }
  return h;
}

CkmsQuantiles& Registry::quantiles(const std::string& name,
                                   std::vector<QuantileTarget> targets,
                                   Domain domain) {
  if (counters_.count(name) || gauges_.count(name) || histograms_.count(name)) {
    throw std::logic_error("metric kind mismatch: " + name);
  }
  auto it = quantiles_.find(name);
  if (it == quantiles_.end()) {
    Entry<CkmsQuantiles> entry{CkmsQuantiles(std::move(targets)), domain};
    it = quantiles_.emplace(name, std::move(entry)).first;
  } else {
    if (it->second.domain != domain) {
      throw std::logic_error("metric domain mismatch: " + name);
    }
    if (it->second.metric.targets() != targets) {
      throw std::logic_error("quantile targets mismatch: " + name);
    }
  }
  return it->second.metric;
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.metric.value();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second.metric;
}

const CkmsQuantiles* Registry::find_quantiles(const std::string& name) const {
  auto it = quantiles_.find(name);
  return it == quantiles_.end() ? nullptr : &it->second.metric;
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, entry] : other.counters_) {
    counter(name, entry.domain).inc(entry.metric.value());
  }
  for (const auto& [name, entry] : other.gauges_) {
    // Only gauges the donor actually set participate in the max; a gauge
    // that merely exists (created but never touched) must not inject a
    // default 0 — that would silently clobber negative values.
    Gauge& g = gauge(name, entry.domain);
    if (entry.metric.touched()) g.set_max(entry.metric.value());
  }
  for (const auto& [name, entry] : other.histograms_) {
    Histogram& h = histogram(name, entry.metric.bounds(), entry.domain);
    for (std::size_t i = 0; i < h.counts_.size(); ++i) {
      h.counts_[i] += entry.metric.counts_[i];
    }
    h.count_ += entry.metric.count_;
    h.sum_ += entry.metric.sum_;
  }
  for (const auto& [name, entry] : other.quantiles_) {
    quantiles(name, entry.metric.targets(), entry.domain)
        .merge_from(entry.metric);
  }
}

bool Registry::empty() const {
  return counters_.empty() && gauges_.empty() && histograms_.empty() &&
         quantiles_.empty();
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  quantiles_.clear();
}

std::string Registry::to_prometheus(bool include_wall) const {
  std::string out;
  auto keep = [&](Domain d) { return include_wall || d == Domain::kSim; };
  for (const auto& [name, entry] : counters_) {
    if (!keep(entry.domain)) continue;
    std::string p = prometheus_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(entry.metric.value()) + "\n";
  }
  for (const auto& [name, entry] : gauges_) {
    if (!keep(entry.domain)) continue;
    std::string p = prometheus_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(entry.metric.value()) + "\n";
  }
  for (const auto& [name, entry] : histograms_) {
    if (!keep(entry.domain)) continue;
    const Histogram& h = entry.metric;
    std::string p = prometheus_name(name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      cumulative += h.counts()[i];
      out += p + "_bucket{le=\"" + std::to_string(h.bounds()[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
    out += p + "_sum " + std::to_string(h.sum()) + "\n";
    out += p + "_count " + std::to_string(h.count()) + "\n";
  }
  for (const auto& [name, entry] : quantiles_) {
    if (!keep(entry.domain)) continue;
    const CkmsQuantiles& q = entry.metric;
    std::string p = prometheus_name(name);
    out += "# TYPE " + p + " summary\n";
    for (const QuantileTarget& t : q.targets()) {
      out += p + "{quantile=\"" + quantile_label(t.percent) + "\"} " +
             std::to_string(q.query(t.percent)) + "\n";
    }
    out += p + "_sum " + std::to_string(q.sum()) + "\n";
    out += p + "_count " + std::to_string(q.count()) + "\n";
  }
  return out;
}

std::string Registry::to_json(bool include_wall) const {
  JsonWriter w;
  auto keep = [&](Domain d) { return include_wall || d == Domain::kSim; };
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, entry] : counters_) {
    if (keep(entry.domain)) w.key(name).value(entry.metric.value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, entry] : gauges_) {
    if (keep(entry.domain)) {
      w.key(name).value(static_cast<std::int64_t>(entry.metric.value()));
    }
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, entry] : histograms_) {
    if (!keep(entry.domain)) continue;
    const Histogram& h = entry.metric;
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (std::uint64_t b : h.bounds()) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (std::uint64_t c : h.counts()) w.value(c);
    w.end_array();
    w.key("count").value(h.count());
    w.key("sum").value(h.sum());
    w.end_object();
  }
  w.end_object();
  w.key("quantiles").begin_object();
  for (const auto& [name, entry] : quantiles_) {
    if (!keep(entry.domain)) continue;
    const CkmsQuantiles& q = entry.metric;
    w.key(name).begin_object();
    for (const QuantileTarget& t : q.targets()) {
      w.key("p" + std::to_string(t.percent)).value(q.query(t.percent));
    }
    w.key("count").value(q.count());
    w.key("sum").value(q.sum());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace cen::obs
