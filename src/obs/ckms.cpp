#include "obs/ckms.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cen::obs {

const std::vector<QuantileTarget>& default_quantile_targets() {
  static const std::vector<QuantileTarget> kTargets = {
      {50, 0.01}, {90, 0.01}, {99, 0.005}};
  return kTargets;
}

CkmsQuantiles::CkmsQuantiles(std::vector<QuantileTarget> targets)
    : targets_(std::move(targets)) {
  if (targets_.empty()) {
    throw std::logic_error("CkmsQuantiles needs at least one target");
  }
  for (const QuantileTarget& t : targets_) {
    if (t.percent < 0 || t.percent > 100 || !(t.rank_error > 0.0) ||
        t.rank_error >= 1.0) {
      throw std::logic_error("CkmsQuantiles target out of range");
    }
  }
  // The biased-quantiles invariant parameter: eps/phi per target, tightest
  // wins, so a query at phi_j carries rank error eps_bias * phi_j * n <=
  // eps_j * n. (The min-over-targets piecewise "targeted" rule from the
  // CKMS paper is NOT used here: just below a high target like p99 it is
  // dominated by the other targets' looser branches, letting one tuple
  // straddle the query rank with several times the target's allowance —
  // the well-known accuracy hole in perks-style implementations.)
  bias_ = 1.0;
  for (const QuantileTarget& t : targets_) {
    const double phi = t.percent / 100.0;
    bias_ = std::min(bias_, phi > 0.0 ? t.rank_error / phi : t.rank_error);
  }
  buffer_.reserve(kBufferCap);
}

double CkmsQuantiles::invariant(double rank, std::uint64_t n) const {
  // Biased-quantile invariant f(r) = 2 * eps_bias * r: uncertainty is
  // proportional to rank, so low ranks stay near-exact and a query at
  // rank phi*n is answered within eps_bias * phi * n.
  (void)n;
  return std::max(2.0 * bias_ * rank, 1.0);
}

void CkmsQuantiles::observe(std::uint64_t v) {
  buffer_.push_back(v);
  ++count_;
  sum_ += v;
  if (buffer_.size() >= kBufferCap) flush();
}

void CkmsQuantiles::flush() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());

  // Insert each buffered sample at its sorted position. `rank` tracks the
  // minimum rank of the insertion point (sum of g before it).
  std::size_t i = 0;
  std::uint64_t rank = 0;
  for (std::uint64_t v : buffer_) {
    while (i < sample_.size() && sample_[i].v < v) {
      rank += sample_[i].g;
      ++i;
    }
    Tuple t;
    t.v = v;
    t.g = 1;
    if (i == 0 || i == sample_.size()) {
      t.delta = 0;  // new minimum / maximum: rank exactly known
    } else {
      const double f = invariant(static_cast<double>(rank), inserted_);
      t.delta = f > 1.0 ? static_cast<std::uint64_t>(f) - 1 : 0;
    }
    sample_.insert(sample_.begin() + static_cast<std::ptrdiff_t>(i), t);
    rank += 1;  // the inserted tuple now precedes the next insertion point
    ++i;
    ++inserted_;
  }
  buffer_.clear();
  compress();
}

void CkmsQuantiles::compress() const {
  // Merge a tuple into its successor whenever the combined uncertainty
  // still satisfies the invariant at its rank. In-place single pass;
  // erase-per-merge would be quadratic.
  if (sample_.size() < 3) return;
  std::uint64_t r = 0;  // rank before sample_[idx]
  std::size_t out = 0;
  std::size_t idx = 0;
  while (idx + 1 < sample_.size()) {
    Tuple& cur = sample_[idx];
    Tuple& next = sample_[idx + 1];
    if (cur.g + next.g + next.delta <=
        static_cast<std::uint64_t>(invariant(static_cast<double>(r), inserted_))) {
      next.g += cur.g;  // fold cur into next; r unchanged
    } else {
      r += cur.g;
      sample_[out++] = cur;
    }
    ++idx;
  }
  sample_[out++] = sample_.back();
  sample_.resize(out);
}

std::uint64_t CkmsQuantiles::query(int percent) const {
  flush();
  if (sample_.empty()) return 0;
  const double phi = std::clamp(percent, 0, 100) / 100.0;
  const double target_rank = std::ceil(phi * static_cast<double>(inserted_));
  const double allowed = invariant(target_rank, inserted_) / 2.0;
  std::uint64_t r = 0;
  for (std::size_t i = 1; i < sample_.size(); ++i) {
    r += sample_[i - 1].g;
    if (static_cast<double>(r + sample_[i].g + sample_[i].delta) >
        target_rank + allowed) {
      return sample_[i - 1].v;
    }
  }
  return sample_.back().v;
}

void CkmsQuantiles::merge_from(const CkmsQuantiles& other) {
  if (targets_ != other.targets_) {
    throw std::logic_error("CkmsQuantiles target mismatch in merge");
  }
  flush();
  other.flush();
  if (other.sample_.empty()) return;

  // Merge the sorted tuple lists, receiver first on value ties, keeping
  // each tuple's (g, delta). Deterministic in (receiver, donor) order;
  // the combined rank error is bounded by the sum of the operands'.
  std::vector<Tuple> merged;
  merged.reserve(sample_.size() + other.sample_.size());
  std::merge(sample_.begin(), sample_.end(), other.sample_.begin(), other.sample_.end(),
             std::back_inserter(merged),
             [](const Tuple& a, const Tuple& b) { return a.v < b.v; });
  sample_ = std::move(merged);
  inserted_ += other.inserted_;
  count_ += other.count_;
  sum_ += other.sum_;
  compress();
}

std::size_t CkmsQuantiles::tuple_count() const {
  flush();
  return sample_.size();
}

}  // namespace cen::obs
