#include "obs/journal.hpp"

#include "core/json.hpp"

namespace cen::obs {

void Journal::record(SimTime t_ms, std::string kind, std::string detail) {
  if (events_.size() >= cap_) {
    ++dropped_;
    return;
  }
  JournalEvent e;
  e.t_ms = t_ms;
  e.kind = std::move(kind);
  e.detail = std::move(detail);
  events_.push_back(std::move(e));
}

void Journal::append_from(const Journal& other, std::uint32_t tid,
                          SimTime ts_offset_ms) {
  for (const JournalEvent& e : other.events_) {
    if (events_.size() >= cap_) {
      ++dropped_;
      continue;
    }
    JournalEvent copy = e;
    copy.t_ms += ts_offset_ms;
    copy.tid = tid;
    events_.push_back(std::move(copy));
  }
  dropped_ += other.dropped_;
}

void Journal::clear() {
  events_.clear();
  dropped_ = 0;
}

std::string Journal::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("events").begin_array();
  for (const JournalEvent& e : events_) {
    w.begin_object();
    w.key("t_ms").value(e.t_ms);
    w.key("kind").value(e.kind);
    w.key("detail").value(e.detail);
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    w.end_object();
  }
  w.end_array();
  w.key("dropped").value(dropped_);
  w.end_object();
  return w.str();
}

}  // namespace cen::obs
