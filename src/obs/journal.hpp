// Measurement journal: a bounded, ordered log of structured events
// (probe sent, ICMP quote diffed, retry fired, fault injected, banner
// matched, fuzz verdict) stamped with sim time.
//
// Like the metrics registry, journals are sharded per hermetic task and
// merged in task-identity order, so the merged event stream is
// deterministic across worker counts. The capacity bound is also
// deterministic: each shard truncates at the same per-task cap and
// counts what it dropped, so "journal full" behaves identically no
// matter how tasks were scheduled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/clock.hpp"

namespace cen::obs {

struct JournalEvent {
  SimTime t_ms = 0;
  std::string kind;    // e.g. "probe", "retry", "quote_diff", "fault"
  std::string detail;  // free-form, human-readable
  std::uint32_t tid = 0;
};

class Journal {
 public:
  static constexpr std::size_t kDefaultCap = 1 << 16;

  explicit Journal(std::size_t cap = kDefaultCap) : cap_(cap) {}

  void record(SimTime t_ms, std::string kind, std::string detail);
  /// Append another journal's events shifted by `ts_offset_ms`, stamped
  /// with `tid`; the donor's drop count carries over.
  void append_from(const Journal& other, std::uint32_t tid,
                   SimTime ts_offset_ms);

  const std::vector<JournalEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  bool empty() const { return events_.empty() && dropped_ == 0; }
  void clear();

  /// JSON document: {"events":[{"t_ms","kind","detail","tid"}...],
  /// "dropped":N}.
  std::string to_json() const;

 private:
  std::size_t cap_;
  std::vector<JournalEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace cen::obs
