// CKMS-style streaming quantiles (Cormode–Korn–Muthukrishnan–Srivastava,
// "Effective Computation of Biased Quantiles over Data Streams"): targeted
// quantile summaries over unbounded uint64 streams in bounded memory.
//
// A sketch keeps a compressed list of (value, g, delta) tuples whose size
// is a function of the configured rank-error targets, not of the stream
// length — which is what lets the longitudinal service export p50/p90/p99
// over millions of epoch measurements in O(1) memory. Samples are uint64
// (like obs::Histogram), so queries return actual observed values and
// every export path stays in integer formatting: no float reassociation,
// no shortest-round-trip printing, byte-identical output everywhere.
//
// Determinism contract: the sketch has no RNG and no clock. Feeding the
// same sample sequence (observe order matters) produces bit-identical
// sketch state, and merge_from is deterministic in (receiver, donor)
// order. Unlike counters, the *state* after merging shards depends on the
// shard partition (each within its rank-error bound), so code that needs
// byte-identical quantiles across worker counts must feed one sketch from
// the merged, task-identity-ordered stream — the longitudinal epoch loop
// does exactly that (see docs/LONGITUDINAL.md).
#pragma once

#include <cstdint>
#include <vector>

namespace cen::obs {

/// One targeted quantile: φ = percent / 100 tracked within `rank_error`
/// (a fraction of the stream length n — the returned value's rank is
/// within rank_error * n of ceil(φ * n)). Percent is an integer so target
/// identity and export labels never touch float formatting.
struct QuantileTarget {
  int percent = 50;
  double rank_error = 0.01;
  bool operator==(const QuantileTarget&) const = default;
};

/// The default export targets: p50/p90 at 1% rank error, p99 at 0.5%.
const std::vector<QuantileTarget>& default_quantile_targets();

class CkmsQuantiles {
 public:
  CkmsQuantiles() : CkmsQuantiles(default_quantile_targets()) {}
  explicit CkmsQuantiles(std::vector<QuantileTarget> targets);

  void observe(std::uint64_t v);

  /// The value whose rank is within the configured error of
  /// ceil(percent/100 * n). Most accurate at the configured targets;
  /// 0 on an empty sketch.
  std::uint64_t query(int percent) const;

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  const std::vector<QuantileTarget>& targets() const { return targets_; }

  /// Fold another sketch in (same targets required — std::logic_error
  /// otherwise). The merged sketch covers both streams; the rank-error
  /// bound degrades to at most the sum of the operands' bounds, so a
  /// one-level shard merge stays within 2x the configured error.
  void merge_from(const CkmsQuantiles& other);

  /// Compressed tuples currently held (memory-bound inspection; excludes
  /// the constant-size insertion buffer).
  std::size_t tuple_count() const;

 private:
  struct Tuple {
    std::uint64_t v = 0;      // sample value
    std::uint64_t g = 0;      // gap: r(i) - r(i-1) in ranks
    std::uint64_t delta = 0;  // rank uncertainty of this tuple
  };

  /// The CKMS biased-quantile invariant f(r) = max(1, 2 * bias_ * r): how
  /// much combined g + delta a tuple at rank r may carry while every
  /// target stays within its error (bias_ = min over targets of
  /// rank_error / phi).
  double invariant(double rank, std::uint64_t n) const;
  /// Drain the insertion buffer into the tuple list and compress.
  void flush() const;
  /// Fold tuples into successors where the invariant allows it.
  void compress() const;

  std::vector<QuantileTarget> targets_;
  double bias_ = 0.01;  // invariant slope, derived from targets_
  // Buffer/tuple state is mutable so const queries can flush: buffering
  // is an amortization detail, not logical state.
  mutable std::vector<Tuple> sample_;
  mutable std::vector<std::uint64_t> buffer_;
  mutable std::uint64_t inserted_ = 0;  // samples represented in sample_
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;

  static constexpr std::size_t kBufferCap = 128;
};

}  // namespace cen::obs
