// Observer: the bundle handed to instrumented code — one metrics
// registry, one span tracer and one measurement journal, plus pre-bound
// counter groups for the per-packet hot paths (engine and fault layer),
// so instrumentation costs a pointer test + increment rather than a
// name lookup.
//
// Ownership model: every component takes a raw `Observer*` that may be
// null; null means "observability disabled" and all instrumentation
// collapses to one predictable branch. The parallel pipeline constructs
// a private Observer per hermetic task and merges the shards in
// task-identity order (merge_from), which is what makes the snapshots
// byte-identical across worker counts — see docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>

#include "core/clock.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cen::obs {

/// Engine (netsim) hot-path counters, bound once at Observer
/// construction. All in the sim domain.
struct EngineCounters {
  Counter* forward_walks = nullptr;    // engine.forward_walks
  Counter* hops = nullptr;             // engine.hops_traversed
  Counter* injections = nullptr;       // engine.injections
  Counter* icmp_quotes = nullptr;      // engine.icmp_quotes
  Counter* udp_sends = nullptr;        // engine.udp_sends
  Counter* transient_drops = nullptr;  // engine.transient_drops
};

/// Measurement-tool counters (CenTrace / CenProbe / CenFuzz), bound once
/// at Observer construction. All in the sim domain.
struct ToolCounters {
  // CenTrace
  Counter* trace_probes = nullptr;        // centrace.probes
  Counter* trace_retries = nullptr;       // centrace.retries
  Counter* trace_retry_recovered = nullptr;  // centrace.retry_recovered
  Counter* trace_cache_hits = nullptr;    // centrace.payload_cache_hits
  Counter* trace_cache_misses = nullptr;  // centrace.payload_cache_misses
  Counter* trace_measurements = nullptr;  // centrace.measurements
  Counter* trace_blocked = nullptr;       // centrace.blocked_verdicts
  Histogram* trace_confidence = nullptr;  // centrace.confidence_milli
  // CenTrace degradation ladder (see docs/TOMOGRAPHY.md)
  Counter* trace_mode_full = nullptr;           // centrace.mode_full
  Counter* trace_mode_icmp_degraded = nullptr;  // centrace.mode_icmp_degraded
  Counter* trace_mode_tomography = nullptr;     // centrace.mode_tomography
  Counter* trace_mode_unlocalized = nullptr;    // centrace.mode_unlocalized
  Counter* trace_channel_dead = nullptr;        // centrace.dead_channel_sweeps
  // Tomography escalation
  Counter* tomo_probes = nullptr;        // tomography.probes
  Counter* tomo_observations = nullptr;  // tomography.observations
  Counter* tomo_solves = nullptr;        // tomography.solver_runs
  // CenProbe
  Counter* banner_grabs = nullptr;     // cenprobe.banner_grabs
  Counter* banner_retries = nullptr;   // cenprobe.banner_retries
  Counter* banner_partials = nullptr;  // cenprobe.banner_partials
  Counter* banner_matches = nullptr;   // cenprobe.banner_matches
  Counter* devices_probed = nullptr;   // cenprobe.devices_probed
  // CenFuzz
  Counter* fuzz_requests = nullptr;         // cenfuzz.requests
  Counter* fuzz_successful = nullptr;       // cenfuzz.successful
  Counter* fuzz_not_successful = nullptr;   // cenfuzz.not_successful
  Counter* fuzz_untestable = nullptr;       // cenfuzz.untestable
  Counter* fuzz_baseline_failed = nullptr;  // cenfuzz.baseline_failed
  Counter* fuzz_skipped = nullptr;          // cenfuzz.skipped_strategies
  // CenAmbig
  Counter* ambig_runs = nullptr;        // cenambig.runs
  Counter* ambig_probes = nullptr;      // cenambig.probes
  Counter* ambig_discrepant = nullptr;  // cenambig.discrepant
};

/// Per-fault-type fire counters for the fault-injection layer.
struct FaultCounters {
  Counter* link_loss = nullptr;          // faults.link_loss
  Counter* duplicates = nullptr;         // faults.duplicates
  Counter* reorders = nullptr;           // faults.reorders
  Counter* payload_truncates = nullptr;  // faults.payload_truncates
  Counter* payload_corruptions = nullptr;  // faults.payload_corruptions
  Counter* icmp_blackholed = nullptr;    // faults.icmp_blackholed
  Counter* icmp_rate_limited = nullptr;  // faults.icmp_rate_limited
  Counter* mgmt_drops = nullptr;         // faults.mgmt_drops
  Counter* banner_truncates = nullptr;   // faults.banner_truncates
};

/// Construction knobs (namespace scope so it is complete when used as a
/// defaulted constructor argument).
struct ObserverOptions {
  std::size_t journal_cap = Journal::kDefaultCap;
};

class Observer {
 public:
  using Options = ObserverOptions;

  explicit Observer(Options options = {});
  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  Registry& metrics() { return metrics_; }
  const Registry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  Journal& journal() { return journal_; }
  const Journal& journal() const { return journal_; }

  EngineCounters& engine() { return engine_; }
  FaultCounters& faults() { return faults_; }
  ToolCounters& tools() { return tools_; }

  /// Fold a per-task shard into this observer. `tid` is the task's
  /// stable identity (its index in the batch), `ts_offset_ms` rebases
  /// the task's sim timeline (each hermetic task starts at 0) and
  /// `task_now_ms` is the task's final sim time (used to close any
  /// spans it left open). Merging shards in ascending tid order yields
  /// identical state for every worker count.
  void merge_from(const Observer& other, std::uint32_t tid,
                  SimTime ts_offset_ms, SimTime task_now_ms);

  /// One-screen human-readable digest of the sim-domain metrics, for
  /// end-of-run CLI summaries.
  std::string summary() const;

 private:
  Registry metrics_;
  Tracer tracer_;
  Journal journal_;
  EngineCounters engine_;
  FaultCounters faults_;
  ToolCounters tools_;
};

}  // namespace cen::obs
