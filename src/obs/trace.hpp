// Nested span tracer against the simulated clock.
//
// Spans are recorded as complete events (begin time + duration) against
// `SimClock` milliseconds, which makes traces deterministic: the same
// scenario and seed yield byte-identical trace files for any worker
// count, because the sim clock — not the host — supplies every
// timestamp. The exporter emits the Chrome `trace_event` JSON array
// format (`ph:"X"` complete events, microsecond units) that loads
// directly into chrome://tracing and ui.perfetto.dev.
//
// Thread model mirrors the metrics registry: one Tracer per hermetic
// task, merged in task-identity order via `append_from`, which rebases
// timestamps and assigns the task index as the trace `tid` so parallel
// tasks land on separate rows in the viewer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/clock.hpp"

namespace cen::obs {

struct Span {
  std::string name;
  std::string category;
  SimTime begin_ms = 0;
  SimTime duration_ms = 0;
  std::uint32_t tid = 0;    // task lane in the trace viewer
  std::uint32_t depth = 0;  // nesting level at begin time
};

class Tracer {
 public:
  /// Open a span at `now`; close with the matching end(). Nesting is
  /// tracked per tracer (one tracer == one logical task == one lane).
  void begin(std::string name, std::string category, SimTime now);
  void end(SimTime now);

  /// Record an already-measured span without touching the open stack.
  void complete(std::string name, std::string category, SimTime begin_ms,
                SimTime end_ms);

  /// Append another tracer's spans (closing any still open at
  /// `other_now`), shifting them by `ts_offset_ms` and stamping `tid`.
  /// Used by the pipeline merge: per-task tracers all start at sim time
  /// 0 (reset_epoch), so the merger rebases each task into a common
  /// timeline while the tid keeps lanes distinct.
  void append_from(const Tracer& other, std::uint32_t tid,
                   SimTime ts_offset_ms, SimTime other_now);

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t open_depth() const { return open_.size(); }
  bool empty() const { return spans_.empty() && open_.empty(); }
  void clear();

  /// Chrome trace_event JSON: an array of complete ("ph":"X") events,
  /// timestamps and durations in microseconds (sim ms × 1000).
  std::string to_chrome_json() const;

 private:
  struct OpenSpan {
    std::string name;
    std::string category;
    SimTime begin_ms;
  };
  std::vector<Span> spans_;
  std::vector<OpenSpan> open_;
};

/// RAII span guard; inert when `tracer` is null, so instrumented code
/// pays one branch when observability is disabled.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const SimClock* clock, std::string name,
             std::string category)
      : tracer_(tracer), clock_(clock) {
    if (tracer_ != nullptr) {
      tracer_->begin(std::move(name), std::move(category), clock_->now());
    }
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end(clock_->now());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const SimClock* clock_;
};

}  // namespace cen::obs
