// Scenario for the paper's path-variance calibration experiment (§4.1):
// one client and 20 infrastructural endpoints in 20 different "countries",
// each reached through a transit fabric with a different amount of ECMP
// fan-out — including one pathological endpoint with well over 100 equal-
// cost paths, mirroring the paper's outlier.
#pragma once

#include "scenario/country.hpp"

namespace cen::scenario {

struct VarianceScenario {
  std::unique_ptr<sim::Network> network;
  sim::NodeId client = sim::kInvalidNode;
  std::vector<net::Ipv4Address> endpoints;  // 20
  /// Ground-truth number of equal-cost paths to each endpoint.
  std::vector<std::size_t> true_path_counts;
};

VarianceScenario make_variance_world(std::uint64_t seed = 17);

}  // namespace cen::scenario
