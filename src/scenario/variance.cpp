#include "scenario/variance.hpp"

#include "scenario/builder.hpp"

namespace cen::scenario {

VarianceScenario make_variance_world(std::uint64_t seed) {
  VarianceScenario s;
  Builder b(seed);
  auto meas = b.make_as(64500, "MEASUREMENT-US", "US");
  sim::NodeId client = b.host(meas, "client");
  sim::NodeId us_r1 = b.backbone_router(meas, "us-r1");
  b.link(client, us_r1);

  static const char* kCountries[] = {"DE", "FR", "NL", "GB", "SE", "PL", "IT",
                                     "ES", "JP", "KR", "SG", "AU", "BR", "AR",
                                     "ZA", "IN", "CA", "MX", "TR", "US"};
  for (int i = 0; i < 20; ++i) {
    std::uint32_t asn = 55000 + static_cast<std::uint32_t>(i);
    Builder::AsHandle h = b.make_as(asn, "EDGE-" + std::to_string(i), kCountries[i]);

    // Transit fabric: `stages` sequential ECMP stages of width `width`
    // give width^stages equal-cost paths. Endpoint 19 is the paper's
    // pathological case (>100 unique paths); the rest span 1..8.
    int stages, width;
    if (i == 19) {
      stages = 3, width = 5;  // 125 paths
    } else {
      width = 1 + i % 3;          // 1, 2 or 3
      stages = 1 + (i / 3) % 2;   // 1 or 2
    }
    // Each stage is `width` parallel routers between two joiners, so the
    // number of equal-cost paths is width^stages.
    sim::NodeId prev = us_r1;
    for (int st = 0; st < stages; ++st) {
      sim::NodeId join = b.backbone_router(h, "j" + std::to_string(st));
      for (int w = 0; w < width; ++w) {
        sim::NodeId r = b.backbone_router(
            h, "t" + std::to_string(st) + "-" + std::to_string(w));
        b.link(prev, r);
        b.link(r, join);
      }
      prev = join;
    }
    sim::NodeId ep = b.host(h, "ep");
    b.link(prev, ep);

    s.endpoints.push_back(b.topology().node(ep).ip);
  }

  s.network = b.finish(seed ^ 0xF3);
  s.client = client;

  for (std::size_t i = 0; i < s.endpoints.size(); ++i) {
    sim::NodeId ep = *s.network->topology().find_by_ip(s.endpoints[i]);
    s.true_path_counts.push_back(
        s.network->topology().equal_cost_paths(client, ep).size());
  }
  // Endpoints also answer web requests (infrastructural machines).
  for (std::size_t i = 0; i < s.endpoints.size(); ++i) {
    sim::NodeId ep = *s.network->topology().find_by_ip(s.endpoints[i]);
    sim::EndpointProfile profile;
    profile.hosted_domains = {"host" + std::to_string(i) + ".example.net"};
    s.network->add_endpoint(ep, profile);
  }
  return s;
}

}  // namespace cen::scenario
