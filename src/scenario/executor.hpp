// Deterministic parallel fan-out of measurement tasks over worker-private
// Network replicas.
//
// Real measurement campaigns run vantage points concurrently; the paper's
// pipeline is embarrassingly parallel at the (endpoint, domain, protocol)
// grain. The executor makes that parallelism *deterministic*: every task
// is hermetic — before it runs, the worker's replica is reset to an epoch
// derived purely from the task's identity (via `Rng::fork()` substreams),
// so the result is a function of the task alone. Scheduling order, thread
// count and cursor interleaving can never leak into results, which is what
// lets the golden tests assert byte-identical JSON for 1, 2, 4, ... threads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "core/thread_pool.hpp"
#include "netsim/engine.hpp"

namespace cen::scenario {

/// Resolve a PipelineOptions::threads value to a concrete worker count:
/// -1 (or any negative) = one worker per hardware thread, >= 1 = exactly
/// that many. 0 is the caller's serial-path sentinel and never reaches
/// the executor; it resolves to 1 defensively.
int resolve_threads(int requested);

/// Order-free identity hash of a hermetic task: FNV-1a over the domain
/// mixed with the endpoint and a small stage/protocol tag. Deliberately
/// not std::hash (implementation-defined) — seeds must be stable across
/// platforms and standard libraries.
std::uint64_t task_key(std::uint32_t endpoint, std::string_view domain,
                       std::uint64_t tag);

/// The domain-dependent half of task_key (FNV-1a over the bytes). Fan-outs
/// iterate endpoints x domains, so hashing each domain once and combining
/// with task_key_hashed() replaces O(endpoints x domains) string hashes
/// with O(domains).
std::uint64_t domain_hash(std::string_view domain);

/// task_key() with the domain hash precomputed. Identity:
/// task_key(e, d, t) == task_key_hashed(e, domain_hash(d), t) for all
/// inputs — locked by tests/test_parallel.cpp.
std::uint64_t task_key_hashed(std::uint32_t endpoint, std::uint64_t domain_hash,
                              std::uint64_t tag);

/// Substream seeds for an ordered task list. A base generator seeded from
/// (network seed, stage salt) is forked once per slot — the fork chain
/// encodes the task's position — and each fork's first draw is folded
/// with the task's identity key. Depends only on the list, never on how
/// the tasks are later scheduled.
std::vector<std::uint64_t> derive_task_seeds(std::uint64_t network_seed,
                                             std::uint64_t stage_salt,
                                             const std::vector<std::uint64_t>& keys);

/// Executor overhead accounting (host-clock — wall domain only). clone_ns
/// is always measured (one-time, construction); reset_ns is only sampled
/// when perf tracking is enabled, so the default hot loop takes no
/// per-task timestamps.
struct ExecutorPerf {
  std::atomic<std::uint64_t> clone_ns{0};  // replica construction (total)
  std::atomic<std::uint64_t> reset_ns{0};  // summed reset_epoch time
  std::atomic<std::uint64_t> tasks{0};     // tasks executed
  std::atomic<std::uint64_t> batches{0};   // chunks dispatched
};

class ParallelExecutor {
 public:
  /// Tasks claimed per dispatch (batched epochs): one cursor bump and one
  /// replica-pointer load per batch instead of per task. Purely a
  /// scheduling granularity — every task still gets its own hermetic
  /// sub-epoch (reset_epoch is a cheap RNG re-seed + dirty-state
  /// rollback), so results are byte-identical for ANY batch size.
  static constexpr std::size_t kDefaultBatch = 16;

  /// Clone one replica of `prototype` per worker. The prototype is only
  /// read during construction; afterwards workers touch only their own
  /// replica.
  ParallelExecutor(const sim::Network& prototype, int threads);

  int threads() const { return pool_.size(); }

  /// Attach (or detach with nullptr) a PoolStats sink on the underlying
  /// pool. Must not be called while a run() is in flight.
  void set_stats(PoolStats* stats) { pool_.set_stats(stats); }

  /// Override the batch size (0 is clamped to 1). Affects scheduling
  /// only, never results.
  void set_batch(std::size_t batch) { batch_ = batch == 0 ? 1 : batch; }
  std::size_t batch() const { return batch_; }

  /// Enable per-task reset_epoch timing (disabled by default; the
  /// --perf-report path turns it on).
  void set_perf_tracking(bool enabled) { perf_tracking_ = enabled; }
  const ExecutorPerf& perf() const { return perf_; }

  /// Aggregate ECMP path-cache statistics over all worker replicas
  /// (scheduling-dependent — wall-domain reporting only).
  std::uint64_t path_cache_hits() const;
  std::uint64_t path_cache_misses() const;

  /// Run one hermetic task per seed: task i executes fn(replica, i) on a
  /// worker-private replica freshly reset_epoch(seeds[i]). fn must write
  /// its result into a caller-owned per-index slot (no shared mutable
  /// state). Blocks until every task completed.
  void run(const std::vector<std::uint64_t>& seeds,
           const std::function<void(sim::Network&, std::size_t)>& fn);

 private:
  ThreadPool pool_;
  std::vector<std::unique_ptr<sim::Network>> replicas_;
  std::size_t batch_ = kDefaultBatch;
  bool perf_tracking_ = false;
  ExecutorPerf perf_;
};

}  // namespace cen::scenario
