#include "scenario/ambig.hpp"

#include "scenario/builder.hpp"

namespace cen::scenario {

const std::vector<AmbigVendor>& ambig_vendors() {
  static const std::vector<AmbigVendor> kVendors = [] {
    std::vector<AmbigVendor> v;
    {
      AmbigVendor a;
      a.name = "QuirkTTL";
      a.reassembly.overlap = censor::OverlapPolicy::kFirstWins;
      a.reassembly.ttl_consistency_check = true;
      v.push_back(std::move(a));
    }
    {
      AmbigVendor a;
      a.name = "QuirkLast";
      a.reassembly.overlap = censor::OverlapPolicy::kLastWins;
      a.reassembly.validates_checksum = false;
      v.push_back(std::move(a));
    }
    {
      AmbigVendor a;
      a.name = "QuirkStrict";
      a.reassembly.overlap = censor::OverlapPolicy::kFirstWins;
      a.reassembly.buffers_out_of_order = false;
      v.push_back(std::move(a));
    }
    return v;
  }();
  return kVendors;
}

AmbigScenario make_ambig(const AmbigScenarioOptions& options, std::uint64_t seed) {
  AmbigScenario out;
  const std::vector<AmbigVendor>& vendors =
      options.vendors.empty() ? ambig_vendors() : options.vendors;
  const int per_vendor = std::max(options.deployments_per_vendor, 1);
  const int total = static_cast<int>(vendors.size()) * per_vendor;

  Builder b(seed);
  Builder::AsHandle meas = b.make_as(64610, "AMBIG-MEAS", "US");
  Builder::AsHandle transit = b.make_as(64611, "AMBIG-TRANSIT", "US");
  Builder::AsHandle hosting = b.make_as(64612, "AMBIG-HOSTING", "US");

  out.client = b.host(meas, "client");
  sim::NodeId acc = b.backbone_router(meas, "acc");
  b.link(out.client, acc);

  // The rule set every deployment shares: suffix match on the registrable
  // test domain, over both HTTP Host and TLS SNI.
  censor::RuleSet rules;
  rules.add(registrable(out.test_domain), censor::MatchStyle::kSuffix);

  std::vector<sim::NodeId> device_nodes;
  std::vector<sim::NodeId> servers;
  for (int i = 0; i < total; ++i) {
    const std::string n = std::to_string(i);
    sim::NodeId ra = b.backbone_router(transit, "rA" + n);
    sim::NodeId rb = b.backbone_router(transit, "rB" + n);
    sim::NodeId server = b.host(hosting, "server" + n);
    b.link(acc, ra);
    b.link(ra, rb);
    b.link(rb, server);
    device_nodes.push_back(rb);
    servers.push_back(server);

    AmbigDeployment d;
    const AmbigVendor& vendor = vendors[static_cast<std::size_t>(i) % vendors.size()];
    d.vendor = vendor.name;
    d.device_id = "ambig-" + vendor.name + "-" + n;
    d.endpoint = b.topology().node(server).ip;
    out.deployments.push_back(std::move(d));
  }

  out.network = b.finish(seed);

  for (int i = 0; i < total; ++i) {
    sim::EndpointProfile profile;
    profile.hosted_domains = {out.control_domain};
    profile.serves_subdomains = true;
    profile.default_vhost_for_unknown = true;  // padded Host values get data
    out.network->add_endpoint(servers[static_cast<std::size_t>(i)], profile);

    const AmbigVendor& vendor = vendors[static_cast<std::size_t>(i) % vendors.size()];
    censor::DeviceConfig cfg;
    cfg.id = out.deployments[static_cast<std::size_t>(i)].device_id;
    cfg.vendor = vendor.name;
    cfg.on_path = false;  // inline: drops actually remove the packet
    cfg.action = censor::BlockAction::kDrop;
    cfg.residual_block_ms = options.residual_block;
    cfg.http_rules = rules;
    cfg.sni_rules = rules;
    cfg.reassembly = vendor.reassembly;
    // Banners fully dark: no services, no blockpage, nothing for the
    // banner/blockpage pipeline to cluster on.
    cfg.services.clear();
    deploy(*out.network, device_nodes[static_cast<std::size_t>(i)], std::move(cfg));
  }
  return out;
}

}  // namespace cen::scenario
