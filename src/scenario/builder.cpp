#include "scenario/builder.hpp"

#include "core/strings.hpp"

namespace cen::scenario {

std::string registrable(const std::string& domain) {
  std::vector<std::string> labels = split(domain, '.');
  if (labels.size() < 2) return domain;
  return labels[labels.size() - 2] + "." + labels.back();
}

censor::RuleSet make_rules(const std::string& vendor,
                           const std::vector<std::string>& domains) {
  censor::RuleSet rules;
  auto style_exact = vendor == "Cisco" || vendor == "PaloAlto" || vendor == "MikroTik";
  auto style_contains = vendor == "BY-DPI";
  auto style_suffix_full = vendor == "Kerio";
  for (const std::string& d : domains) {
    if (style_exact) {
      rules.add(d, censor::MatchStyle::kExact);
    } else if (style_contains) {
      rules.add(registrable(d), censor::MatchStyle::kContains);
    } else if (style_suffix_full) {
      rules.add(d, censor::MatchStyle::kSuffix);
    } else {
      // Fortinet / Kaspersky / TSPU-style / unknown: leading wildcard on
      // the registrable domain (the paper's most common rule form).
      rules.add(registrable(d), censor::MatchStyle::kSuffix);
    }
  }
  // MikroTik address-list matching is case-sensitive in our model; every
  // other vendor matches case-insensitively (§6.3: Capitalize rarely evades).
  rules.set_case_insensitive(vendor != "MikroTik");
  return rules;
}

Builder::AsHandle Builder::make_as(std::uint32_t asn, std::string name,
                                   std::string country) {
  AsHandle as;
  as.asn = asn;
  as.ordinal = as_ordinal_++;
  as.name = std::move(name);
  as.country = std::move(country);
  geo::AsInfo info{asn, as.name, as.country};
  // /20 per AS out of 10.0.0.0/8: ordinal o -> 10.(o>>4).(o&15)*16.0/20.
  net::Ipv4Address base(0x0a000000u | (static_cast<std::uint32_t>(as.ordinal) << 12));
  geodb_.add_route(base, 20, info);
  return as;
}

net::Ipv4Address Builder::next_ip(AsHandle& as) {
  std::uint32_t base = 0x0a000000u | (static_cast<std::uint32_t>(as.ordinal) << 12);
  return net::Ipv4Address(base + static_cast<std::uint32_t>(as.next_host++));
}

sim::NodeId Builder::router(AsHandle& as, const std::string& name) {
  sim::RouterProfile profile;
  profile.responds_icmp = !rng_.chance(0.05);
  profile.quote_policy = rng_.chance(0.576) ? net::QuotePolicy::kRfc792
                                            : net::QuotePolicy::kRfc1812Full;
  if (rng_.chance(0.30)) {
    profile.rewrite_tos = static_cast<std::uint8_t>(rng_.range(1, 3) << 5);  // DSCP-ish
  }
  profile.clears_df_flag = rng_.chance(0.02);
  return router(as, name, profile, /*generic_services=*/rng_.chance(0.40));
}

sim::NodeId Builder::router(AsHandle& as, const std::string& name,
                            const sim::RouterProfile& profile, bool generic_services) {
  sim::NodeId id = topo_.add_node(as.name + ":" + name, next_ip(as), profile);
  if (generic_services) {
    sim::Node& node = topo_.node(id);
    node.services.push_back({22, "ssh", "SSH-2.0-OpenSSH_8.2p1"});
    if (rng_.chance(0.5)) {
      node.services.push_back({23, "telnet", "login:"});
    }
    if (rng_.chance(0.3)) {
      node.services.push_back({161, "snmp", "SNMPv2-MIB::sysDescr Generic Router OS"});
    }
  }
  return id;
}

sim::NodeId Builder::backbone_router(AsHandle& as, const std::string& name) {
  sim::NodeId id = router(as, name);
  topo_.node(id).profile.responds_icmp = true;
  return id;
}

sim::NodeId Builder::host(AsHandle& as, const std::string& name) {
  sim::RouterProfile profile;
  profile.responds_icmp = false;  // hosts never forward, so never TTL-expire
  return topo_.add_node(as.name + ":" + name, next_ip(as), profile);
}

Builder::PlacedEndpoint Builder::org_host(AsHandle& as, sim::NodeId attach_to,
                                          const std::string& name,
                                          const std::string& org_domain) {
  PlacedEndpoint placed;
  placed.node = host(as, name);
  link(attach_to, placed.node);
  placed.profile = org_endpoint_profile(org_domain, rng_);
  return placed;
}

std::unique_ptr<sim::Network> Builder::finish(std::uint64_t seed) {
  return std::make_unique<sim::Network>(std::move(topo_), std::move(geodb_), seed);
}

std::shared_ptr<censor::Device> deploy(sim::Network& network, sim::NodeId at,
                                       censor::DeviceConfig config) {
  if (!config.on_path && !config.mgmt_ip) {
    // In-path devices surface the IP of the router whose link they occupy
    // (what CenTrace can actually recover, §4.1).
    config.mgmt_ip = network.topology().node_ip(at);
  }
  auto device = std::make_shared<censor::Device>(std::move(config));
  network.attach_device(at, device);
  return device;
}

sim::EndpointProfile org_endpoint_profile(const std::string& org_domain, Rng& rng) {
  sim::EndpointProfile profile;
  profile.hosted_domains = {org_domain};
  profile.strict_http = rng.chance(0.3);
  profile.serves_subdomains = rng.chance(0.3);
  profile.reject_unknown_host = rng.chance(0.3);
  if (!profile.reject_unknown_host) profile.default_vhost_for_unknown = rng.chance(0.25);
  profile.reject_unknown_sni = rng.chance(0.3);
  return profile;
}

}  // namespace cen::scenario
