// The full measurement pipeline over a scenario, as the paper runs it:
//   1. CenTrace every (endpoint, test domain, protocol) pair — remote and,
//      where a vantage point exists, in-country against the real servers;
//   2. CenProbe every distinct in-path blocking-hop IP;
//   3. CenFuzz every endpoint that observed blocking;
//   4. bundle everything into ml::EndpointMeasurement rows for clustering.
// Shared by the benches, the examples and the integration tests.
#pragma once

#include <map>
#include <vector>

#include "ml/features.hpp"
#include "netsim/faults.hpp"
#include "scenario/country.hpp"
#include "scenario/world.hpp"

namespace cen::obs {
class Observer;
}

namespace cen::scenario {

struct PipelineOptions {
  int centrace_repetitions = 11;
  /// Cap endpoints measured (-1 = all); capped runs sample with a stride
  /// so every AS keeps representation.
  int max_endpoints = -1;
  /// Cap domains per protocol (-1 = all).
  int max_domains = -1;
  bool run_banner = true;
  bool run_fuzz = true;
  /// Cap the endpoints fuzzed (-1 = all blocked endpoints). Fuzzing is the
  /// most request-hungry stage; the cap samples evenly across devices.
  int fuzz_max_endpoints = -1;
  double transient_loss = 0.0;
  /// Fault plan installed on the network before measuring (the default
  /// plan is inert — identical to a fault-free run). A non-zero
  /// `transient_loss` above overrides the plan's own field.
  sim::FaultPlan faults;
  /// CenTrace backoff/adaptive-retry knobs for runs under faults.
  SimTime centrace_retry_backoff = 0;
  int centrace_adaptive_retries = 6;
  /// Worker threads for the measurement stages.
  ///   -1  one worker per hardware thread (default);
  ///    0  the legacy serial path — a single shared network, byte-for-byte
  ///       the historical pre-parallel behaviour;
  ///   >=1 the hermetic parallel path with that many workers. Results are
  ///       identical for EVERY value >= 1 (1 is the serial reference the
  ///       golden tests compare against): each task runs on a replica
  ///       reset to an epoch derived from the task identity alone, so
  ///       scheduling cannot influence results.
  int threads = -1;
  /// Tasks claimed per dispatch on the hermetic path (batched epochs).
  /// 0 = the executor default (ParallelExecutor::kDefaultBatch). Purely a
  /// scheduling knob — results are byte-identical for every batch size.
  int batch = 0;
  /// Observability sink (see src/obs/). On the hermetic path every task
  /// records into a private per-task shard; shards are merged into this
  /// observer in task-identity order, so the sim-domain metrics, spans
  /// and journal are byte-identical for every worker count >= 1 — the
  /// same contract the measurement results obey. The serial legacy path
  /// (threads = 0) attaches the observer directly to the shared network.
  /// nullptr disables all instrumentation (near-zero cost).
  obs::Observer* observer = nullptr;
};

struct PipelineResult {
  std::string country;
  /// Every remote CenTrace report (endpoint × domain × protocol).
  std::vector<trace::CenTraceReport> remote_traces;
  /// In-country CenTrace reports (foreign servers hosting the domains).
  std::vector<trace::CenTraceReport> incountry_traces;
  /// Banner-grab results keyed by probed device IP.
  std::map<std::uint32_t, probe::DeviceProbeReport> device_probes;
  /// One bundle per blocked endpoint (representative blocked trace + fuzz +
  /// banner data) — the clustering input.
  std::vector<ml::EndpointMeasurement> measurements;

  std::size_t blocked_remote() const;
  /// Mean CenTrace confidence over the remote traces (1.0 when empty).
  double mean_remote_confidence() const;
};

PipelineResult run_country_pipeline(CountryScenario& scenario,
                                    const PipelineOptions& options = {});

/// Same pipeline over the worldwide blockpage scenario (labels everywhere).
PipelineResult run_world_pipeline(WorldScenario& scenario,
                                  const PipelineOptions& options = {});

/// §4.2's self-validation: "our results are consistent across multiple
/// domains for the same vantage points". For endpoints with two or more
/// blocked measurements, how often do they agree on the blocking AS /
/// blocking hop IP? (Distinct devices may legitimately block different
/// domains for one endpoint, so this measures modal agreement.)
struct ConsistencyStats {
  std::size_t endpoints_with_multiple_blocked = 0;
  double mean_modal_as_share = 0.0;   // share of an endpoint's blocked CTs
  double mean_modal_hop_share = 0.0;  // agreeing with its modal AS / hop IP
};

ConsistencyStats localisation_consistency(const PipelineResult& result);

/// CenTrace fan-out over every (endpoint × domain) pair with the same
/// hermetic per-task seeding the pipeline's parallel path uses. Backs
/// `centrace_cli --threads`: the task seeds depend only on the task
/// identity (endpoint, domain, protocol) and the network's construction
/// seed, so the reports — and, when `observer` is non-null, the merged
/// sim-domain metrics/spans/journal — are byte-identical for every
/// `threads` value. `threads` semantics:
///   0   inline-hermetic: each task runs on `net` itself after a
///       reset_epoch() to its task seed (no pool, no replicas);
///   >=1 hermetic pool with that many workers (replicas of `net`);
///   -1  hermetic pool with one worker per hardware thread.
/// Note threads = 0 here is NOT the pipeline's legacy shared-state serial
/// path: fan-out tasks are independent by definition, so the inline path
/// can afford full hermeticity and join the identity contract.
/// `plan` (optional) enables degradation-aware measurement: every task
/// runs through trace::measure_with_degradation, escalating unlocalized
/// blocked verdicts to multi-vantage tomography. The plan participates in
/// each task's work (not its seed), so identity across `threads` holds
/// for any fixed plan.
/// `batch` sets the executor's chunked-dispatch size (0 = default);
/// scheduling only, never results.
std::vector<trace::CenTraceReport> run_trace_fanout(
    sim::Network& net, sim::NodeId client,
    const std::vector<net::Ipv4Address>& endpoints,
    const std::vector<std::string>& domains, const std::string& control_domain,
    const trace::CenTraceOptions& trace_options, int threads,
    obs::Observer* observer = nullptr, const trace::DegradationPlan* plan = nullptr,
    int batch = 0);

/// Indices of an even stride sample of `cap` items out of [0, n). Pure
/// integer arithmetic — index i maps to (i*n)/cap — so the indices are
/// strictly increasing (no duplicates, unlike float-stride truncation)
/// and spread across the whole range, keeping every AS represented.
/// cap < 0 or cap >= n returns all n indices.
std::vector<std::size_t> stride_sample_indices(std::size_t n, int cap);

}  // namespace cen::scenario
