// The full measurement pipeline over a scenario, as the paper runs it:
//   1. CenTrace every (endpoint, test domain, protocol) pair — remote and,
//      where a vantage point exists, in-country against the real servers;
//   2. CenProbe every distinct in-path blocking-hop IP;
//   3. CenFuzz every endpoint that observed blocking;
//   4. bundle everything into ml::EndpointMeasurement rows for clustering.
// Shared by the benches, the examples and the integration tests.
#pragma once

#include <map>
#include <vector>

#include "ml/features.hpp"
#include "netsim/faults.hpp"
#include "scenario/country.hpp"
#include "scenario/world.hpp"

namespace cen::scenario {

struct PipelineOptions {
  int centrace_repetitions = 11;
  /// Cap endpoints measured (-1 = all); capped runs sample with a stride
  /// so every AS keeps representation.
  int max_endpoints = -1;
  /// Cap domains per protocol (-1 = all).
  int max_domains = -1;
  bool run_banner = true;
  bool run_fuzz = true;
  /// Cap the endpoints fuzzed (-1 = all blocked endpoints). Fuzzing is the
  /// most request-hungry stage; the cap samples evenly across devices.
  int fuzz_max_endpoints = -1;
  double transient_loss = 0.0;
  /// Fault plan installed on the network before measuring (the default
  /// plan is inert — identical to a fault-free run). A non-zero
  /// `transient_loss` above overrides the plan's own field.
  sim::FaultPlan faults;
  /// CenTrace backoff/adaptive-retry knobs for runs under faults.
  SimTime centrace_retry_backoff = 0;
  int centrace_adaptive_retries = 6;
  /// Worker threads for the measurement stages.
  ///   -1  one worker per hardware thread (default);
  ///    0  the legacy serial path — a single shared network, byte-for-byte
  ///       the historical pre-parallel behaviour;
  ///   >=1 the hermetic parallel path with that many workers. Results are
  ///       identical for EVERY value >= 1 (1 is the serial reference the
  ///       golden tests compare against): each task runs on a replica
  ///       reset to an epoch derived from the task identity alone, so
  ///       scheduling cannot influence results.
  int threads = -1;
};

struct PipelineResult {
  std::string country;
  /// Every remote CenTrace report (endpoint × domain × protocol).
  std::vector<trace::CenTraceReport> remote_traces;
  /// In-country CenTrace reports (foreign servers hosting the domains).
  std::vector<trace::CenTraceReport> incountry_traces;
  /// Banner-grab results keyed by probed device IP.
  std::map<std::uint32_t, probe::DeviceProbeReport> device_probes;
  /// One bundle per blocked endpoint (representative blocked trace + fuzz +
  /// banner data) — the clustering input.
  std::vector<ml::EndpointMeasurement> measurements;

  std::size_t blocked_remote() const;
  /// Mean CenTrace confidence over the remote traces (1.0 when empty).
  double mean_remote_confidence() const;
};

PipelineResult run_country_pipeline(CountryScenario& scenario,
                                    const PipelineOptions& options = {});

/// Same pipeline over the worldwide blockpage scenario (labels everywhere).
PipelineResult run_world_pipeline(WorldScenario& scenario,
                                  const PipelineOptions& options = {});

/// §4.2's self-validation: "our results are consistent across multiple
/// domains for the same vantage points". For endpoints with two or more
/// blocked measurements, how often do they agree on the blocking AS /
/// blocking hop IP? (Distinct devices may legitimately block different
/// domains for one endpoint, so this measures modal agreement.)
struct ConsistencyStats {
  std::size_t endpoints_with_multiple_blocked = 0;
  double mean_modal_as_share = 0.0;   // share of an endpoint's blocked CTs
  double mean_modal_hop_share = 0.0;  // agreeing with its modal AS / hop IP
};

ConsistencyStats localisation_consistency(const PipelineResult& result);

/// Indices of an even stride sample of `cap` items out of [0, n). Pure
/// integer arithmetic — index i maps to (i*n)/cap — so the indices are
/// strictly increasing (no duplicates, unlike float-stride truncation)
/// and spread across the whole range, keeping every AS represented.
/// cap < 0 or cap >= n returns all n indices.
std::vector<std::size_t> stride_sample_indices(std::size_t n, int cap);

}  // namespace cen::scenario
