// Country scenarios: simulated AZ / BY / KZ / RU deployments whose ground
// truth follows the paper's findings (§4.3, §5.3).
//
//   AZ  — centralized in-path packet-drop censorship at Delta Telecom
//         (AS29049) where transit from Telia (AS1299) enters the country;
//         Cisco / Fortinet / Palo Alto deployments.
//   BY  — on-path RST injection close to the endpoint AS (Beltelecom
//         AS6697 and peers), plus an upstream COGENT (AS174) device that
//         drops bridges.torproject.org before traffic enters BY.
//   KZ  — in-path drops at JSC-Kazakhtelecom (AS9198); about a third of
//         remote paths transit Russia (Megafon AS31133 / Kvant-telekom
//         AS43727) and are censored there — the extraterritorial effect;
//         Cisco / Fortinet / Kerio / MikroTik deployments.
//   RU  — decentralized: TSPU-style drop boxes and TTL-copying RST
//         injectors ("Past E") spread over many ASes; Cisco / Fortinet /
//         Palo Alto / DDoS-Guard / Kaspersky deployments.
//
// Every scenario also provisions foreign web servers genuinely hosting the
// test domains so that in-country vantage points measure egress censorship
// and CenFuzz can distinguish evasion from circumvention.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netsim/engine.hpp"

namespace cen::scenario {

enum class Country : std::uint8_t { kAZ, kBY, kKZ, kRU };
std::string_view country_code(Country c);

/// Scale factor for endpoint counts: kFull reproduces Table 1's endpoint
/// populations (29 / 123 / 95 / 1291); kSmall divides by ~8 for tests.
enum class Scale : std::uint8_t { kFull, kSmall };

struct DeviceTruth {
  std::string device_id;
  std::string vendor;  // "" for unattributed ISP systems
  net::Ipv4Address mgmt_ip;
  bool on_path = false;
  std::uint32_t asn = 0;
};

struct CountryScenario {
  Country country = Country::kAZ;
  std::unique_ptr<sim::Network> network;

  sim::NodeId remote_client = sim::kInvalidNode;     // US vantage point
  sim::NodeId incountry_client = sim::kInvalidNode;  // kInvalidNode for BY

  /// Infrastructure endpoints inside the country (remote targets).
  std::vector<net::Ipv4Address> remote_endpoints;
  /// Foreign servers genuinely hosting the test domains (in-country targets).
  std::vector<net::Ipv4Address> foreign_endpoints;

  std::vector<std::string> http_test_domains;
  std::vector<std::string> https_test_domains;
  std::string control_domain = "www.example.com";

  /// Ground truth (never consumed by the measurement tools themselves).
  std::vector<DeviceTruth> devices;
};

CountryScenario make_country(Country c, Scale scale = Scale::kFull,
                             std::uint64_t seed = 7);

/// All four countries, in paper order (AZ, BY, KZ, RU).
std::vector<Country> all_countries();

}  // namespace cen::scenario
