// Internal construction kit shared by the country and world scenarios.
// Allocates AS address space, registers geo metadata, stamps router
// profiles with realistic ICMP-behaviour mixes, and wires devices in.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "censor/vendors.hpp"
#include "core/rng.hpp"
#include "geo/asdb.hpp"
#include "netsim/engine.hpp"

namespace cen::scenario {

/// Registrable part of a hostname (last two labels).
std::string registrable(const std::string& domain);

/// Vendor-appropriate rule set over a domain list. Rule granularity is the
/// behavioural axis behind the paper's pad/TLD/subdomain findings (§6.3):
/// exact-hostname vendors (Cisco, Palo Alto, MikroTik) are evaded by any
/// hostname mutation; suffix (leading-wildcard) vendors (Fortinet, Kerio,
/// TSPU-style) still catch subdomains and leading pads; substring vendors
/// (the BY national DPI) catch everything containing the domain.
censor::RuleSet make_rules(const std::string& vendor,
                           const std::vector<std::string>& domains);

class Builder {
 public:
  explicit Builder(std::uint64_t seed) : rng_(seed) {}

  struct AsHandle {
    std::uint32_t asn = 0;
    int ordinal = 0;
    int next_host = 1;
    std::string name;
    std::string country;
  };

  AsHandle make_as(std::uint32_t asn, std::string name, std::string country);
  net::Ipv4Address next_ip(AsHandle& as);

  /// Add a router in `as` with a randomized-but-realistic ICMP profile:
  /// ~58% RFC 792 quoting / ~42% RFC 1812 (paper §4.3), ~5% ICMP-silent,
  /// ~30% rewrite TOS, and ~40% expose generic management banners.
  sim::NodeId router(AsHandle& as, const std::string& name);
  /// Router with an explicit profile (no randomization).
  sim::NodeId router(AsHandle& as, const std::string& name,
                     const sim::RouterProfile& profile, bool generic_services = false);
  /// Backbone/transit router: randomized like router(), but always answers
  /// TTL exhaustion (national cores and IXes reliably do; the paper found
  /// only one silent-terminating-hop case in 1,430 blocked traces).
  sim::NodeId backbone_router(AsHandle& as, const std::string& name);
  /// Endpoint host node (no ICMP generation is ever needed from it).
  sim::NodeId host(AsHandle& as, const std::string& name);

  /// One org-hosted infrastructure endpoint: a host node linked behind
  /// `attach_to` plus a randomized org web profile — the single
  /// endpoint-placement path shared by the country, world and worldgen
  /// scenario builders (draw order: host, link, then profile).
  struct PlacedEndpoint {
    sim::NodeId node = sim::kInvalidNode;
    sim::EndpointProfile profile;
  };
  PlacedEndpoint org_host(AsHandle& as, sim::NodeId attach_to, const std::string& name,
                          const std::string& org_domain);

  void link(sim::NodeId a, sim::NodeId b) { topo_.add_link(a, b); }

  sim::Topology& topology() { return topo_; }
  Rng& rng() { return rng_; }

  /// Finalize into a Network (builder must not be reused afterwards).
  std::unique_ptr<sim::Network> finish(std::uint64_t seed);

 private:
  sim::Topology topo_;
  geo::IpMetadataDb geodb_;
  Rng rng_{1};
  int as_ordinal_ = 0;
};

/// Deploy a device at `at` (in-path on the link into the node, or an
/// on-path tap per the config), assigning the node's IP as management IP
/// for in-path devices. Returns the shared device handle.
std::shared_ptr<censor::Device> deploy(sim::Network& network, sim::NodeId at,
                                       censor::DeviceConfig config);

/// Randomized infrastructure-endpoint web profile (hosting its org domain).
sim::EndpointProfile org_endpoint_profile(const std::string& org_domain, Rng& rng);

}  // namespace cen::scenario
