#include "scenario/silent.hpp"

#include <algorithm>

#include "core/rng.hpp"
#include "scenario/builder.hpp"

namespace cen::scenario {

namespace {

/// Substream salt for the blackhole draw ("silent").
constexpr std::uint64_t kSilentSalt = 0x73696c656e74ull;

}  // namespace

SilentScenario make_silent(const SilentOptions& options, std::uint64_t seed) {
  SilentScenario out;
  const int nv = std::max(options.vantages, 1);
  const int nk = std::max(options.spines, 1);

  Builder b(seed);
  Builder::AsHandle meas = b.make_as(64600, "SILENT-MEAS", "US");
  Builder::AsHandle transit = b.make_as(64601, "SILENT-TRANSIT", "US");
  Builder::AsHandle hosting = b.make_as(64602, "SILENT-HOSTING", "US");

  std::vector<sim::NodeId> acc;
  for (int i = 0; i < nv; ++i) {
    sim::NodeId v = b.host(meas, "v" + std::to_string(i));
    sim::NodeId a = b.backbone_router(meas, "acc" + std::to_string(i));
    b.link(v, a);
    out.vantages.push_back(v);
    acc.push_back(a);
    out.on_path_routers.push_back(a);
  }

  std::vector<sim::NodeId> spine_a;
  std::vector<sim::NodeId> spine_b;
  for (int k = 0; k < nk; ++k) {
    sim::NodeId sa = b.backbone_router(transit, "s" + std::to_string(k) + "a");
    sim::NodeId sb = b.backbone_router(transit, "s" + std::to_string(k) + "b");
    b.link(sa, sb);
    spine_a.push_back(sa);
    spine_b.push_back(sb);
    out.on_path_routers.push_back(sa);
    out.on_path_routers.push_back(sb);
  }
  sim::NodeId agg = b.backbone_router(transit, "agg");
  out.on_path_routers.push_back(agg);
  for (int k = 0; k < nk; ++k) b.link(spine_b[k], agg);

  // v0 is pinned to the censored spine; every other vantage load-balances
  // over all spines (equal path lengths -> ECMP fan-out).
  b.link(acc[0], spine_a[0]);
  for (int i = 1; i < nv; ++i) {
    for (int k = 0; k < nk; ++k) b.link(acc[i], spine_a[k]);
  }

  sim::NodeId server = b.host(hosting, "server");
  b.link(agg, server);
  out.endpoint = b.topology().node(server).ip;
  out.censor_node = spine_b[0];
  out.true_link = tomo::LinkId(spine_a[0], spine_b[0]);

  out.network = b.finish(seed);

  sim::EndpointProfile profile;
  profile.hosted_domains = {out.control_domain};
  profile.serves_subdomains = true;
  profile.default_vhost_for_unknown = true;  // unhosted Host values get data
  out.network->add_endpoint(server, std::move(profile));

  censor::DeviceConfig cfg;
  cfg.id = "silent-censor";
  cfg.on_path = false;  // inline, on the link into censor_node
  cfg.action = options.drop_censor ? censor::BlockAction::kDrop
                                   : censor::BlockAction::kRstInject;
  censor::RuleSet rules;
  rules.add(registrable(out.test_domain), censor::MatchStyle::kSuffix);
  cfg.http_rules = rules;
  cfg.sni_rules = rules;
  deploy(*out.network, out.censor_node, std::move(cfg));

  // Seeded blackhole draw, order-stable over on_path_routers.
  sim::FaultPlan plan;
  plan.route_flap_period = options.route_flap_period;
  Rng rng(mix64(seed ^ kSilentSalt));
  for (sim::NodeId node : out.on_path_routers) {
    if (!rng.chance(options.blackhole_probability)) continue;
    plan.node_overrides[node].icmp_blackhole = true;
    out.blackholed.push_back(node);
  }
  out.network->set_fault_plan(std::move(plan));
  return out;
}

std::vector<sim::NodeId> tomography_vantages(const CountryScenario& scenario, int n) {
  std::vector<sim::NodeId> out;
  for (sim::NodeId v : {scenario.remote_client, scenario.incountry_client}) {
    if (v == sim::kInvalidNode) continue;
    if (std::find(out.begin(), out.end(), v) != out.end()) continue;
    if (static_cast<int>(out.size()) >= n) break;
    out.push_back(v);
  }
  return out;
}

}  // namespace cen::scenario
