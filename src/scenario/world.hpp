// The worldwide blockpage case study (paper §5.2): endpoints behind
// blockpage-injecting devices in ~76 ASes across many countries, used to
// validate banner-grab labelling against blockpage labelling and to train
// the feature-importance classifier (§7.2).
//
// Ground-truth composition mirrors the paper's funnel: 76 endpoints → 71
// devices in-path (5 on-path taps have no probeable IP) → ~87% of probed
// device IPs expose at least one service → ~28 expose a banner that
// identifies firewall software, and those labels agree with the blockpage.
#pragma once

#include "scenario/country.hpp"
#include "worldgen/spec.hpp"

namespace cen::scenario {

struct WorldScenario {
  std::unique_ptr<sim::Network> network;
  sim::NodeId client = sim::kInvalidNode;
  std::vector<net::Ipv4Address> endpoints;
  std::vector<std::string> http_test_domains;
  std::vector<std::string> https_test_domains;
  std::string control_domain = "www.example.com";
  std::vector<DeviceTruth> devices;
};

WorldScenario make_world(Scale scale = Scale::kFull, std::uint64_t seed = 11);

/// WorldSpec-backed path: generate a synthetic world (worldgen::generate)
/// and instantiate it into the same WorldScenario shape the hand-built
/// world produces, so campaign/pipeline consumers treat both identically.
WorldScenario make_world(const worldgen::WorldSpec& spec, std::uint64_t seed);

/// Blockpage variant of a vendor profile: same DPI quirks and injection
/// fingerprint, but the action is an identifiable blockpage (these are
/// the deployments Censored Planet's blockpage fingerprints can see).
/// Shared by the hand-built world scenario and worldgen's regime devices.
censor::DeviceConfig world_device_config(const std::string& vendor,
                                         const std::string& id);

}  // namespace cen::scenario
