// Silent-router scenario family (ISSUE 6): a multi-spine topology whose
// censor sits behind routers that blackhole ICMP, built to exercise the
// CenTrace degradation ladder and the boolean-tomography solver against
// known ground truth.
//
// Shape (V vantages, K equal-cost spines):
//
//   v0 - acc0 ----------- s0a = s0b -.
//   v1 - acc1 --+-------- s0a ...     :
//        ...    |                     agg - server
//   vi - acci --+-------- sKa - sKb -'
//
// The primary vantage v0 reaches the server only through spine 0, whose
// inter-router link (s0a, s0b) carries a domain-selective censor: every
// test-domain flow crossing it is blocked, control flows pass. The other
// vantages load-balance over all K spines (fresh connections re-roll the
// ECMP flow hash), which is what gives the tomography matrix clean rows
// to exonerate with. A seeded fraction of the on-path routers never
// answer TTL exhaustion (FaultPlan icmp_blackhole), starving classic
// hop-by-hop localization.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netsim/engine.hpp"
#include "scenario/country.hpp"
#include "tomography/tomography.hpp"

namespace cen::scenario {

struct SilentOptions {
  int vantages = 3;  // >= 1; v0 is the primary (pinned to spine 0)
  int spines = 3;    // >= 1 equal-cost spines
  /// Per-router probability of blackholing ICMP (drawn with a seeded
  /// substream over all on-path routers, order-stable).
  double blackhole_probability = 0.9;
  /// Censor drops instead of injecting RSTs: the total-silence variant
  /// the early-abort heuristic is tested against.
  bool drop_censor = false;
  /// FaultPlan route-flap period (0 disables); flapping re-salts ECMP so
  /// jittered tomography rounds sample different spines over time.
  SimTime route_flap_period = 5 * kMinute;
};

struct SilentScenario {
  std::unique_ptr<sim::Network> network;
  /// vantages[0] is the primary measurement client.
  std::vector<sim::NodeId> vantages;
  net::Ipv4Address endpoint;
  std::string test_domain = "www.blocked.example";
  std::string control_domain = "www.example.org";

  // Ground truth (never consumed by the tools themselves).
  tomo::LinkId true_link;        // the censored inter-router link (s0a, s0b)
  sim::NodeId censor_node = sim::kInvalidNode;  // s0b (device deployment)
  std::vector<sim::NodeId> on_path_routers;     // acc*, s*, agg
  std::vector<sim::NodeId> blackholed;          // subset that never answers
};

SilentScenario make_silent(const SilentOptions& options = {}, std::uint64_t seed = 7);

/// Extra tomography vantages available in a country scenario: the remote
/// and in-country clients (deduped, capped at n). The measurement's own
/// client is always a vantage and need not appear here.
std::vector<sim::NodeId> tomography_vantages(const CountryScenario& scenario, int n);

}  // namespace cen::scenario
