#include "scenario/executor.hpp"

#include <chrono>

namespace cen::scenario {

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  if (requested == 0) return 1;
  return ThreadPool::hardware_threads();
}

std::uint64_t domain_hash(std::string_view domain) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (char c : domain) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV-1a prime
  }
  return h;
}

std::uint64_t task_key_hashed(std::uint32_t endpoint, std::uint64_t domain_hash,
                              std::uint64_t tag) {
  domain_hash ^= mix64((static_cast<std::uint64_t>(endpoint) << 16) ^ tag);
  return mix64(domain_hash);
}

std::uint64_t task_key(std::uint32_t endpoint, std::string_view domain,
                       std::uint64_t tag) {
  return task_key_hashed(endpoint, domain_hash(domain), tag);
}

std::vector<std::uint64_t> derive_task_seeds(std::uint64_t network_seed,
                                             std::uint64_t stage_salt,
                                             const std::vector<std::uint64_t>& keys) {
  Rng base(mix64(network_seed ^ stage_salt));
  std::vector<std::uint64_t> seeds;
  seeds.reserve(keys.size());
  for (std::uint64_t key : keys) {
    Rng sub = base.fork();
    seeds.push_back(sub.next() ^ key);
  }
  return seeds;
}

ParallelExecutor::ParallelExecutor(const sim::Network& prototype, int threads)
    : pool_(resolve_threads(threads)) {
  const std::uint64_t t0 = now_ns();
  replicas_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int i = 0; i < pool_.size(); ++i) {
    replicas_.push_back(prototype.clone());
  }
  perf_.clone_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
}

std::uint64_t ParallelExecutor::path_cache_hits() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->topology().path_cache_hits();
  }
  return total;
}

std::uint64_t ParallelExecutor::path_cache_misses() const {
  std::uint64_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->topology().path_cache_misses();
  }
  return total;
}

void ParallelExecutor::run(const std::vector<std::uint64_t>& seeds,
                           const std::function<void(sim::Network&, std::size_t)>& fn) {
  const bool track = perf_tracking_;
  pool_.parallel_for_chunked(
      seeds.size(), batch_,
      [&](int worker, std::size_t begin, std::size_t end) {
        sim::Network& replica = *replicas_[static_cast<std::size_t>(worker)];
        for (std::size_t i = begin; i < end; ++i) {
          if (track) {
            const std::uint64_t t0 = now_ns();
            replica.reset_epoch(seeds[i]);
            perf_.reset_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
          } else {
            replica.reset_epoch(seeds[i]);
          }
          fn(replica, i);
        }
        perf_.tasks.fetch_add(end - begin, std::memory_order_relaxed);
        perf_.batches.fetch_add(1, std::memory_order_relaxed);
      });
}

}  // namespace cen::scenario
