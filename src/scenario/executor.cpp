#include "scenario/executor.hpp"

namespace cen::scenario {

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  if (requested == 0) return 1;
  return ThreadPool::hardware_threads();
}

std::uint64_t task_key(std::uint32_t endpoint, std::string_view domain,
                       std::uint64_t tag) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (char c : domain) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV-1a prime
  }
  h ^= mix64((static_cast<std::uint64_t>(endpoint) << 16) ^ tag);
  return mix64(h);
}

std::vector<std::uint64_t> derive_task_seeds(std::uint64_t network_seed,
                                             std::uint64_t stage_salt,
                                             const std::vector<std::uint64_t>& keys) {
  Rng base(mix64(network_seed ^ stage_salt));
  std::vector<std::uint64_t> seeds;
  seeds.reserve(keys.size());
  for (std::uint64_t key : keys) {
    Rng sub = base.fork();
    seeds.push_back(sub.next() ^ key);
  }
  return seeds;
}

ParallelExecutor::ParallelExecutor(const sim::Network& prototype, int threads)
    : pool_(resolve_threads(threads)) {
  replicas_.reserve(static_cast<std::size_t>(pool_.size()));
  for (int i = 0; i < pool_.size(); ++i) {
    replicas_.push_back(prototype.clone());
  }
}

void ParallelExecutor::run(const std::vector<std::uint64_t>& seeds,
                           const std::function<void(sim::Network&, std::size_t)>& fn) {
  pool_.parallel_for(seeds.size(), [&](int worker, std::size_t index) {
    sim::Network& replica = *replicas_[static_cast<std::size_t>(worker)];
    replica.reset_epoch(seeds[index]);
    fn(replica, index);
  });
}

}  // namespace cen::scenario
