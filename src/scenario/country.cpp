#include "scenario/country.hpp"

#include <algorithm>
#include <cctype>

#include "scenario/builder.hpp"

namespace cen::scenario {

std::string_view country_code(Country c) {
  switch (c) {
    case Country::kAZ: return "AZ";
    case Country::kBY: return "BY";
    case Country::kKZ: return "KZ";
    case Country::kRU: return "RU";
  }
  return "??";
}

std::vector<Country> all_countries() {
  return {Country::kAZ, Country::kBY, Country::kKZ, Country::kRU};
}

namespace {

std::string slug(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!out.empty() && out.back() != '-') {
      out.push_back('-');
    }
  }
  return out;
}

/// Construction context: a Builder plus everything that must wait until the
/// Network object exists (endpoint profiles, device deployments).
struct Ctx {
  explicit Ctx(std::uint64_t seed) : b(seed) {}

  Builder b;
  Builder::AsHandle meas = b.make_as(64500, "MEASUREMENT-US", "US");
  Builder::AsHandle hosting = b.make_as(64501, "HOSTING-US", "US");
  sim::NodeId client_us = b.host(meas, "client");
  sim::NodeId us_r1 = b.backbone_router(meas, "us-r1");
  sim::NodeId hosting_r = b.backbone_router(hosting, "hosting-r1");

  struct PendingEndpoint {
    sim::NodeId node;
    sim::EndpointProfile profile;
  };
  std::vector<PendingEndpoint> pending_endpoints;

  struct PendingDevice {
    sim::NodeId at;
    censor::DeviceConfig config;
    std::uint32_t asn = 0;
  };
  std::vector<PendingDevice> pending_devices;

  void base_links() {
    b.link(client_us, us_r1);
    b.link(us_r1, hosting_r);
  }

  /// Foreign web server genuinely hosting `domain` (target of in-country
  /// measurements; tolerant servers enable full circumvention for padded /
  /// mutated hostnames).
  net::Ipv4Address foreign_server(const std::string& domain, bool tolerant) {
    sim::NodeId node = b.host(hosting, "www-" + slug(domain));
    b.link(hosting_r, node);
    sim::EndpointProfile profile;
    profile.hosted_domains = {domain};
    profile.serves_subdomains = true;
    profile.strict_http = !tolerant;
    profile.default_vhost_for_unknown = tolerant;
    pending_endpoints.push_back({node, std::move(profile)});
    return b.topology().node(node).ip;
  }

  /// Infrastructure endpoint in `as` with a randomized web profile; ~8%
  /// carry a local org filter in front (the "At E" blocking population).
  net::Ipv4Address infra_endpoint(Builder::AsHandle& as, sim::NodeId attach_to, int index,
                                  const std::vector<std::string>& filter_domains) {
    std::string org = "host" + std::to_string(index) + "." + slug(as.name) + "." +
                      (as.country == "RU" ? "ru" : as.country == "BY" ? "by"
                                                : as.country == "KZ" ? "kz" : "az");
    Builder::PlacedEndpoint placed =
        b.org_host(as, attach_to, "ep" + std::to_string(index), org);
    sim::NodeId node = placed.node;
    sim::EndpointProfile profile = std::move(placed.profile);
    if (b.rng().chance(0.05) && !filter_domains.empty()) {
      profile.local_filter = b.rng().chance(0.5) ? sim::LocalFilterAction::kDrop
                                                 : sim::LocalFilterAction::kRst;
      censor::RuleSet rules;
      // Org firewalls cover a few categories, not the whole national list.
      for (std::size_t d = 0; d < filter_domains.size(); d += 3) {
        rules.add(registrable(filter_domains[d]), censor::MatchStyle::kSuffix);
      }
      profile.local_filter_rules = std::move(rules);
    }
    pending_endpoints.push_back({node, std::move(profile)});
    return b.topology().node(node).ip;
  }

  /// Queue a vendor device deployment at `at` with the given rule domains.
  void device(sim::NodeId at, const std::string& vendor, const std::string& id,
              const std::vector<std::string>& rule_domains, std::uint32_t asn,
              bool strip_services = false) {
    // A device is only probeable if CenTrace can localize it, which needs
    // the adjacent router to answer TTL exhaustion — ensure it does.
    b.topology().node(at).profile.responds_icmp = true;
    censor::DeviceConfig cfg = censor::make_vendor_device(vendor, id);
    cfg.http_rules = make_rules(vendor, rule_domains);
    cfg.sni_rules = make_rules(vendor, rule_domains);
    if (strip_services) cfg.services.clear();
    pending_devices.push_back({at, std::move(cfg), asn});
  }

  /// Finalize: build the Network, register endpoints and deploy devices.
  std::unique_ptr<sim::Network> finish(CountryScenario& scenario, std::uint64_t seed) {
    auto network = b.finish(seed);
    for (PendingEndpoint& pe : pending_endpoints) {
      network->add_endpoint(pe.node, std::move(pe.profile));
    }
    for (PendingDevice& pd : pending_devices) {
      bool on_path = pd.config.on_path;
      std::shared_ptr<censor::Device> dev = deploy(*network, pd.at, std::move(pd.config));
      DeviceTruth truth;
      truth.device_id = dev->config().id;
      truth.vendor = dev->config().vendor;
      truth.on_path = on_path;
      truth.asn = pd.asn;
      if (dev->config().mgmt_ip) truth.mgmt_ip = *dev->config().mgmt_ip;
      scenario.devices.push_back(std::move(truth));
    }
    return network;
  }
};

std::vector<std::string> concat(const std::vector<std::string>& a,
                                const std::vector<std::string>& b) {
  std::vector<std::string> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

std::vector<std::string> pick(const std::vector<std::string>& v,
                              std::initializer_list<std::size_t> idx) {
  std::vector<std::string> out;
  for (std::size_t i : idx) out.push_back(v.at(i));
  return out;
}

// ---------------------------------------------------------------------------
// Azerbaijan: centralized in-path drops at Delta Telecom's two border links
// from Telia; Fortinet / Palo Alto org-level deployments deeper in.
// ---------------------------------------------------------------------------
CountryScenario make_az(Scale scale, std::uint64_t seed) {
  CountryScenario s;
  s.country = Country::kAZ;
  s.http_test_domains = {"www.azadliq.info", "www.meydan.tv", "www.abzas.net",
                         "www.rferl.org", "www.ocmedia.org"};
  s.https_test_domains = {"www.azadliq.org", "www.voanews.com", "www.hrw.org",
                          "www.occrp.org", "www.islamaz.az"};

  Ctx ctx(seed);
  ctx.base_links();
  Builder& b = ctx.b;

  auto telia = b.make_as(1299, "TELIA", "SE");
  sim::NodeId telia_r1 = b.backbone_router(telia, "r1");
  sim::NodeId telia_r2 = b.backbone_router(telia, "r2");
  b.link(ctx.us_r1, telia_r1);
  b.link(telia_r1, telia_r2);

  auto delta = b.make_as(29049, "DELTA-TELECOM", "AZ");
  sim::NodeId border1 = b.backbone_router(delta, "border1");
  sim::NodeId border2 = b.backbone_router(delta, "border2");
  sim::NodeId core = b.backbone_router(delta, "core");
  b.link(telia_r2, border1);
  b.link(telia_r2, border2);
  b.link(border1, core);
  b.link(border2, core);

  const std::vector<std::pair<std::uint32_t, std::string>> ep_ases = {
      {34876, "AZTELEKOM"}, {39232, "AZERFON"},  {39015, "UNINET-AZ"},
      {31721, "BAKTELECOM"}, {29580, "CITYNET-AZ"}, {200665, "AZINTELECOM"}};
  std::vector<Builder::AsHandle> handles;
  std::vector<sim::NodeId> as_routers;
  for (const auto& [asn, name] : ep_ases) {
    Builder::AsHandle h = b.make_as(asn, name, "AZ");
    sim::NodeId r = b.router(h, "r1");
    b.link(core, r);
    handles.push_back(h);
    as_routers.push_back(r);
  }

  const std::vector<std::string> all_domains =
      concat(s.http_test_domains, s.https_test_domains);
  int n_endpoints = scale == Scale::kFull ? 29 : 6;
  for (int i = 0; i < n_endpoints; ++i) {
    std::size_t a = static_cast<std::size_t>(i) % handles.size();
    s.remote_endpoints.push_back(
        ctx.infra_endpoint(handles[a], as_routers[a], i, all_domains));
  }

  // The centralized blocklist at the border (the bulk of AZ blocking).
  std::vector<std::string> border_list =
      concat(pick(s.http_test_domains, {0, 1}), pick(s.https_test_domains, {0, 1}));
  ctx.device(border1, "Cisco", "az-delta-cisco-1", border_list, 29049);
  ctx.device(border2, "Cisco", "az-delta-cisco-2", border_list, 29049);
  // Org-level deployments for the remaining domains.
  std::vector<std::string> org_list =
      concat(pick(s.http_test_domains, {3}), pick(s.https_test_domains, {3}));
  ctx.device(as_routers[5], "Fortinet", "az-fortinet-1", org_list, 200665);
  ctx.device(as_routers[4], "Fortinet", "az-fortinet-2", org_list, 29580,
             /*strip_services=*/true);  // blockpage-only deployment
  std::vector<std::string> pa_list =
      concat(pick(s.http_test_domains, {4}), pick(s.https_test_domains, {4}));
  ctx.device(as_routers[1], "PaloAlto", "az-paloalto-1", pa_list, 39232);

  // In-country vantage point inside Delta Telecom (paper: device 2 hops away).
  sim::NodeId client_az = b.host(delta, "vp-az");
  b.link(client_az, core);

  for (const std::string& d : all_domains) {
    s.foreign_endpoints.push_back(ctx.foreign_server(d, b.rng().chance(0.6)));
  }

  s.network = ctx.finish(s, seed ^ 0xA2);
  s.remote_client = ctx.client_us;
  s.incountry_client = client_az;
  return s;
}

// ---------------------------------------------------------------------------
// Belarus: on-path RST injection in the endpoint ASes (Beltelecom et al.),
// plus an upstream COGENT device dropping bridges.torproject.org before
// traffic enters the country.
// ---------------------------------------------------------------------------
CountryScenario make_by(Scale scale, std::uint64_t seed) {
  CountryScenario s;
  s.country = Country::kBY;
  s.http_test_domains = {"www.charter97.org", "spring96.org", "belsat.eu",
                         "www.svaboda.org", "bridges.torproject.org"};
  s.https_test_domains = {"www.zerkalo.io", "news.zerkalo.io", "nashaniva.com",
                          "euroradio.fm", "reform.by"};

  Ctx ctx(seed);
  ctx.base_links();
  Builder& b = ctx.b;

  auto cogent = b.make_as(174, "COGENT", "US");
  sim::NodeId cogent_r1 = b.backbone_router(cogent, "r1");
  sim::NodeId cogent_r2 = b.backbone_router(cogent, "r2");
  b.link(ctx.us_r1, cogent_r1);
  b.link(cogent_r1, cogent_r2);

  auto belt = b.make_as(6697, "BELTELECOM", "BY");
  sim::NodeId by_border = b.backbone_router(belt, "border");
  sim::NodeId belt_core = b.backbone_router(belt, "core");
  b.link(cogent_r2, by_border);
  b.link(by_border, belt_core);

  // Upstream anomaly: Tor bridges dropped inside COGENT (§4.3).
  ctx.device(cogent_r2, "Unknown", "us-cogent-filter-1", {"bridges.torproject.org"}, 174);

  const int n_ases = 19;
  std::vector<Builder::AsHandle> handles;
  std::vector<sim::NodeId> as_routers;
  for (int i = 0; i < n_ases; ++i) {
    if (i == 0) {
      // Beltelecom hosts endpoints itself behind a dedicated edge router.
      handles.push_back(belt);
      sim::NodeId r = b.backbone_router(belt, "edge");
      b.link(belt_core, r);
      as_routers.push_back(r);
      continue;
    }
    Builder::AsHandle h =
        b.make_as(20852 + static_cast<std::uint32_t>(i), "BY-ISP-" + std::to_string(i), "BY");
    sim::NodeId r = b.router(h, "r1");
    b.link(belt_core, r);
    handles.push_back(h);
    as_routers.push_back(r);
  }

  const std::vector<std::string> all_domains =
      concat(s.http_test_domains, s.https_test_domains);
  // 10 of the 19 ASes run the national on-path DPI, each covering ~6 of
  // the 10 test domains — reproducing BY's ~28% blocked-CT rate.
  std::vector<std::string> dpi_list =
      concat(pick(s.http_test_domains, {0, 1}), pick(s.https_test_domains, {0, 1}));
  for (int i = 0; i < n_ases; i += 2) {
    std::uint32_t asn = i == 0 ? 6697u : 20852 + static_cast<std::uint32_t>(i);
    ctx.device(as_routers[static_cast<std::size_t>(i)], "BY-DPI",
               "by-dpi-" + std::to_string(i), dpi_list, asn);
  }

  int n_endpoints = scale == Scale::kFull ? 123 : 16;
  for (int i = 0; i < n_endpoints; ++i) {
    std::size_t a = static_cast<std::size_t>(i) % handles.size();
    s.remote_endpoints.push_back(
        ctx.infra_endpoint(handles[a], as_routers[a], i, all_domains));
  }

  for (const std::string& d : all_domains) {
    s.foreign_endpoints.push_back(ctx.foreign_server(d, b.rng().chance(0.6)));
  }

  s.network = ctx.finish(s, seed ^ 0xB4);
  s.remote_client = ctx.client_us;
  // No in-country vantage point in BY (Table 1).
  return s;
}

// ---------------------------------------------------------------------------
// Kazakhstan: in-path drops at JSC-Kazakhtelecom's borders; about a third of
// remote paths transit Russia (Megafon → Kvant-telekom) and are censored
// there. Kerio / MikroTik / Fortinet regional deployments.
// ---------------------------------------------------------------------------
CountryScenario make_kz(Scale scale, std::uint64_t seed) {
  CountryScenario s;
  s.country = Country::kKZ;
  s.http_test_domains = {"www.pokerstars.com", "www.dailymotion.com", "www.azattyq.org",
                         "www.tumblr.com", "archive.org"};
  s.https_test_domains = {"www.pokerstars.eu", "protonmail.com", "www.ptt.cc",
                          "rutracker.org", "telegra.ph"};

  Ctx ctx(seed);
  ctx.base_links();
  Builder& b = ctx.b;

  auto telia = b.make_as(1299, "TELIA", "SE");
  sim::NodeId telia_r1 = b.backbone_router(telia, "r1");
  sim::NodeId telia_r2 = b.backbone_router(telia, "r2");
  b.link(ctx.us_r1, telia_r1);
  b.link(telia_r1, telia_r2);

  auto megafon = b.make_as(31133, "PJSC-MEGAFON", "RU");
  sim::NodeId megafon_r1 = b.backbone_router(megafon, "r1");
  auto kvant = b.make_as(43727, "KVANT-TELEKOM", "RU");
  sim::NodeId kvant_r1 = b.backbone_router(kvant, "r1");
  b.link(telia_r2, megafon_r1);
  b.link(megafon_r1, kvant_r1);

  auto kaztel = b.make_as(9198, "JSC-KAZAKHTELECOM", "KZ");
  sim::NodeId kz_border1 = b.backbone_router(kaztel, "border1");
  sim::NodeId kz_border2 = b.backbone_router(kaztel, "border2");
  sim::NodeId kz_core1 = b.backbone_router(kaztel, "core1");
  sim::NodeId kz_core2 = b.backbone_router(kaztel, "core2");
  b.link(telia_r2, kz_border1);
  b.link(kz_border1, kz_core1);
  b.link(kvant_r1, kz_border2);
  b.link(kz_border2, kz_core2);

  const std::vector<std::string> all_domains =
      concat(s.http_test_domains, s.https_test_domains);

  // Russian transit censorship (extraterritorial blocking of KZ traffic).
  std::vector<std::string> ru_transit_list =
      concat(pick(s.http_test_domains, {0, 1, 3}), pick(s.https_test_domains, {0, 3, 4}));
  ctx.device(kvant_r1, "TSPU", "ru-kvant-tspu-1", ru_transit_list, 43727);

  // The national blocklist at Kazakhtelecom's borders.
  std::vector<std::string> border_list =
      concat(pick(s.http_test_domains, {0, 1, 2}), pick(s.https_test_domains, {0, 1, 2}));
  ctx.device(kz_border1, "Cisco", "kz-kaztel-cisco-1", border_list, 9198);
  ctx.device(kz_border2, "Cisco", "kz-kaztel-cisco-2", border_list, 9198);

  const int n_ases = 28;
  std::vector<Builder::AsHandle> handles;
  std::vector<sim::NodeId> as_routers;
  for (int i = 0; i < n_ases; ++i) {
    Builder::AsHandle h =
        b.make_as(50482 + static_cast<std::uint32_t>(i), "KZ-ISP-" + std::to_string(i), "KZ");
    sim::NodeId r = b.router(h, "r1");
    // Roughly a third of the endpoint ASes are only reachable via the
    // Russian transit corridor.
    b.link(i % 3 == 2 ? kz_core2 : kz_core1, r);
    handles.push_back(h);
    as_routers.push_back(r);
  }

  // Regional commercial deployments covering the remaining domains.
  std::vector<std::string> regional_list =
      concat(pick(s.http_test_domains, {3, 4}), pick(s.https_test_domains, {3, 4}));
  ctx.device(as_routers[0], "Kerio", "kz-kerio-1", regional_list, 50482);
  ctx.device(as_routers[3], "Kerio", "kz-kerio-2", regional_list, 50485);
  ctx.device(as_routers[6], "MikroTik", "kz-mikrotik-1", regional_list, 50488);
  ctx.device(as_routers[9], "Fortinet", "kz-fortinet-1", regional_list, 50491);
  ctx.device(as_routers[12], "Fortinet", "kz-fortinet-2", regional_list, 50494,
             /*strip_services=*/true);

  int n_endpoints = scale == Scale::kFull ? 95 : 12;
  for (int i = 0; i < n_endpoints; ++i) {
    std::size_t a = static_cast<std::size_t>(i) % handles.size();
    s.remote_endpoints.push_back(
        ctx.infra_endpoint(handles[a], as_routers[a], i, all_domains));
  }

  // In-country vantage point in a hosting provider downstream of
  // Kazakhtelecom (paper: device 3 hops away, in AS9198 not AS203087).
  auto hosting_kz = b.make_as(203087, "PS-KZ-HOSTING", "KZ");
  sim::NodeId hosting_kz_r = b.backbone_router(hosting_kz, "r1");
  sim::NodeId client_kz = b.host(hosting_kz, "vp-kz");
  b.link(hosting_kz_r, kz_core1);
  b.link(client_kz, hosting_kz_r);

  for (const std::string& d : all_domains) {
    // pokerstars/dailymotion-style tolerant servers make padded-hostname
    // evasion a full circumvention from the KZ vantage point (§6.3).
    s.foreign_endpoints.push_back(ctx.foreign_server(d, b.rng().chance(0.7)));
  }

  s.network = ctx.finish(s, seed ^ 0xC6);
  s.remote_client = ctx.client_us;
  s.incountry_client = client_kz;
  return s;
}

// ---------------------------------------------------------------------------
// Russia: decentralized censorship across many ISP ASes — TSPU drop boxes,
// TTL-copying RST injectors ("Past E"), and assorted commercial devices.
// ---------------------------------------------------------------------------
CountryScenario make_ru(Scale scale, std::uint64_t seed) {
  CountryScenario s;
  s.country = Country::kRU;
  s.http_test_domains = {"www.facebook.com", "twitter.com", "meduza.io",
                         "www.bbc.com", "navalny.com"};
  s.https_test_domains = {"www.instagram.com", "www.linkedin.com", "tvrain.ru",
                          "theins.ru", "www.currenttime.tv"};

  Ctx ctx(seed);
  ctx.base_links();
  Builder& b = ctx.b;

  auto telia = b.make_as(1299, "TELIA", "SE");
  sim::NodeId telia_r1 = b.backbone_router(telia, "r1");
  sim::NodeId telia_r2 = b.backbone_router(telia, "r2");
  b.link(ctx.us_r1, telia_r1);
  b.link(telia_r1, telia_r2);
  auto cogent = b.make_as(174, "COGENT", "US");
  sim::NodeId cogent_r1 = b.backbone_router(cogent, "r1");
  sim::NodeId cogent_r2 = b.backbone_router(cogent, "r2");
  b.link(ctx.us_r1, cogent_r1);
  b.link(cogent_r1, cogent_r2);

  auto msk_ix = b.make_as(8631, "MSK-IX", "RU");
  sim::NodeId ix1 = b.backbone_router(msk_ix, "ix1");
  sim::NodeId ix2 = b.backbone_router(msk_ix, "ix2");
  b.link(telia_r2, ix1);
  b.link(cogent_r2, ix1);
  b.link(telia_r2, ix2);
  b.link(cogent_r2, ix2);

  // The Kvant-telekom corridor also carries some RU traffic (the paper sees
  // the same dropping hops in both the KZ and RU datasets).
  auto megafon = b.make_as(31133, "PJSC-MEGAFON", "RU");
  sim::NodeId megafon_r1 = b.backbone_router(megafon, "r1");
  auto kvant = b.make_as(43727, "KVANT-TELEKOM", "RU");
  sim::NodeId kvant_r1 = b.backbone_router(kvant, "r1");
  b.link(telia_r2, megafon_r1);
  b.link(megafon_r1, kvant_r1);
  std::vector<std::string> kvant_list = {"www.pokerstars.com", "www.facebook.com",
                                         "www.linkedin.com"};
  ctx.device(kvant_r1, "TSPU", "ru-kvant-tspu-1", kvant_list, 43727);

  const std::vector<std::string> all_domains =
      concat(s.http_test_domains, s.https_test_domains);

  const int n_ases = scale == Scale::kFull ? 80 : 16;
  const int n_endpoints = scale == Scale::kFull ? 1291 : 48;

  std::vector<Builder::AsHandle> handles;
  std::vector<sim::NodeId> attach_routers;  // where endpoints hang
  for (int i = 0; i < n_ases; ++i) {
    std::uint32_t asn = 12389 + static_cast<std::uint32_t>(i);
    Builder::AsHandle h = b.make_as(asn, "RU-ISP-" + std::to_string(i), "RU");
    sim::NodeId border = b.backbone_router(h, "border");
    sim::NodeId core = b.backbone_router(h, "core");
    b.link(border, core);
    if (i % 11 == 10) {
      // A few ASes route via the Kvant corridor instead of the IX.
      b.link(kvant_r1, border);
    } else {
      b.link(i % 2 == 0 ? ix1 : ix2, border);
    }
    handles.push_back(h);
    attach_routers.push_back(core);

    // Device assignment: decentralized, per-AS policies. Each device
    // blocks only a slice of the test list (RU's low per-domain block
    // rate in Table 1).
    auto slice = [&](int count) {
      std::vector<std::string> out;
      for (int k = 0; k < count; ++k) {
        out.push_back(all_domains[static_cast<std::size_t>((i + k * 3)) % all_domains.size()]);
      }
      return out;
    };
    std::string tag = std::to_string(i);
    if (i % 5 == 0 && i < 55) {
      ctx.device(border, "TSPU", "ru-tspu-" + tag, slice(1), asn);
    } else if (i == 3 || i == 13) {
      ctx.device(core, "RU-RSTCOPY", "ru-rstcopy-" + tag, slice(2), asn);
    } else if (i == 4 || i == 31 || i == 38) {
      ctx.device(border, "Cisco", "ru-cisco-" + tag, slice(2), asn);
    } else if (i == 52) {
      // A Cisco deployment with management plane firewalled off: no banner,
      // no blockpage — identifiable only through behaviour (the §7.4
      // label-propagation case).
      ctx.device(border, "Cisco", "ru-cisco-dark-" + tag, slice(2), asn,
                 /*strip_services=*/true);
    } else if (i == 6 || i == 33 || i == 47) {
      ctx.device(core, "Fortinet", "ru-fortinet-" + tag, slice(2), asn);
    } else if (i == 8 || i == 41) {
      ctx.device(core, "Fortinet", "ru-fortinet-bp-" + tag, slice(2), asn,
                 /*strip_services=*/true);
    } else if (i == 36) {
      ctx.device(border, "PaloAlto", "ru-paloalto-" + tag, slice(2), asn);
    } else if (i == 46) {
      // One deployment terminates flows with FIN injection (the small FIN
      // category of Fig. 3).
      censor::DeviceConfig fin = censor::make_vendor_device("Unknown", "ru-fin-" + tag);
      fin.action = censor::BlockAction::kFinInject;
      fin.http_rules = make_rules("Unknown", slice(2));
      fin.sni_rules = make_rules("Unknown", slice(2));
      ctx.pending_devices.push_back({core, std::move(fin), asn});
      b.topology().node(core).profile.responds_icmp = true;
    } else if (i == 43) {
      ctx.device(core, "DDoSGuard", "ru-ddosguard-" + tag, slice(2), asn);
    } else if (i == 49) {
      ctx.device(border, "Kaspersky", "ru-kaspersky-" + tag, slice(2), asn);
    }
  }

  for (int i = 0; i < n_endpoints; ++i) {
    std::size_t a = static_cast<std::size_t>(i) % handles.size();
    s.remote_endpoints.push_back(
        ctx.infra_endpoint(handles[a], attach_routers[a], i, all_domains));
  }

  // In-country vantage point in an ISP with no device on its egress path
  // (the paper's RU client observed no censorship).
  std::size_t clean_as = scale == Scale::kFull ? 59 : 11;
  sim::NodeId client_ru = b.host(handles[clean_as], "vp-ru");
  b.link(client_ru, attach_routers[clean_as]);

  for (const std::string& d : all_domains) {
    s.foreign_endpoints.push_back(ctx.foreign_server(d, b.rng().chance(0.6)));
  }

  s.network = ctx.finish(s, seed ^ 0xD8);
  s.remote_client = ctx.client_us;
  s.incountry_client = client_ru;
  return s;
}

}  // namespace

CountryScenario make_country(Country c, Scale scale, std::uint64_t seed) {
  switch (c) {
    case Country::kAZ: return make_az(scale, seed);
    case Country::kBY: return make_by(scale, seed);
    case Country::kKZ: return make_kz(scale, seed);
    case Country::kRU: return make_ru(scale, seed);
  }
  return make_az(scale, seed);
}

}  // namespace cen::scenario
