#include "scenario/pipeline.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "centrace/degrade.hpp"
#include "obs/observer.hpp"
#include "scenario/executor.hpp"

namespace cen::scenario {

std::size_t PipelineResult::blocked_remote() const {
  return static_cast<std::size_t>(std::count_if(
      remote_traces.begin(), remote_traces.end(),
      [](const trace::CenTraceReport& r) { return r.blocked; }));
}

double PipelineResult::mean_remote_confidence() const {
  if (remote_traces.empty()) return 1.0;
  double sum = 0.0;
  for (const trace::CenTraceReport& r : remote_traces) sum += r.confidence.overall;
  return sum / static_cast<double>(remote_traces.size());
}

std::vector<std::size_t> stride_sample_indices(std::size_t n, int cap) {
  std::vector<std::size_t> out;
  if (cap < 0 || static_cast<std::size_t>(cap) >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(static_cast<std::size_t>(cap));
  const std::uint64_t n64 = n;
  const std::uint64_t cap64 = static_cast<std::uint64_t>(cap);
  for (std::uint64_t i = 0; i < cap64; ++i) {
    // (i*n)/cap is strictly increasing for cap < n, so no index repeats —
    // the float-stride version this replaces could truncate two i values
    // onto the same element and silently measure it twice.
    out.push_back(static_cast<std::size_t>(i * n64 / cap64));
  }
  return out;
}

namespace {

// Stage salts separating the substream universes of the three fan-outs.
constexpr std::uint64_t kTraceStageSalt = 0x747261636531ULL;  // "trace1"
constexpr std::uint64_t kProbeStageSalt = 0x70726f626532ULL;  // "probe2"
constexpr std::uint64_t kFuzzStageSalt = 0x66757a7a33ULL;     // "fuzz3"

std::vector<net::Ipv4Address> sample(const std::vector<net::Ipv4Address>& v, int cap) {
  std::vector<net::Ipv4Address> out;
  for (std::size_t idx : stride_sample_indices(v.size(), cap)) out.push_back(v[idx]);
  return out;
}

std::vector<std::string> take(const std::vector<std::string>& v, int cap) {
  if (cap < 0 || static_cast<int>(v.size()) <= cap) return v;
  return std::vector<std::string>(v.begin(), v.begin() + cap);
}

struct PipelineInput {
  sim::Network* network = nullptr;
  sim::NodeId remote_client = sim::kInvalidNode;
  sim::NodeId incountry_client = sim::kInvalidNode;
  std::vector<net::Ipv4Address> remote_endpoints;
  std::vector<net::Ipv4Address> foreign_endpoints;  // parallel to all domains
  std::vector<std::string> http_domains;
  std::vector<std::string> https_domains;
  std::string control_domain;
  std::string country;
};

/// Per-task observability shards for one hermetic stage, merged into the
/// pipeline-level observer in task-identity order. Each task records into
/// a private Observer (attached to its replica for the task's duration),
/// so no lock sits on any hot path; the merge then lays the per-task
/// timelines end to end on one synthetic axis — task i's spans/journal
/// entries are offset by the summed sim durations of tasks 0..i-1 and
/// stamped with tid i. Everything about the merged state is a function of
/// the task list alone, never of scheduling, which is what makes the
/// exported snapshots byte-identical across worker counts.
class ShardMerger {
 public:
  explicit ShardMerger(obs::Observer* sink) : sink_(sink) {}

  bool enabled() const { return sink_ != nullptr; }

  /// Allocate one shard per task of the upcoming stage. No-op when no
  /// sink is attached (shard() then returns nullptr for every index).
  void begin_stage(std::size_t n_tasks) {
    shards_.clear();
    ends_.assign(n_tasks, 0);
    shards_.resize(n_tasks);
    if (!enabled()) return;
    for (auto& s : shards_) s = std::make_unique<obs::Observer>();
  }

  obs::Observer* shard(std::size_t i) { return shards_[i].get(); }

  /// Record the task-local sim clock at task completion (its duration,
  /// since every hermetic task starts at sim time 0).
  void record_end(std::size_t i, SimTime end) { ends_[i] = end; }

  /// Merge the stage's shards in index order and wrap them in one
  /// aggregate stage span named `stage_name`.
  void merge_stage(const char* stage_name) {
    if (!enabled()) return;
    const SimTime stage_begin = offset_;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      sink_->merge_from(*shards_[i], next_tid_, offset_, ends_[i]);
      ++next_tid_;
      offset_ += ends_[i];
    }
    if (!shards_.empty()) {
      sink_->tracer().complete(stage_name, "pipeline", stage_begin, offset_);
    }
    shards_.clear();
    ends_.clear();
  }

 private:
  obs::Observer* sink_;
  std::vector<std::unique_ptr<obs::Observer>> shards_;
  std::vector<SimTime> ends_;
  std::uint32_t next_tid_ = 0;
  SimTime offset_ = 0;
};

/// Export pool scheduling statistics into the observer's registry. The
/// submission-side numbers (jobs, tasks, peak pending) are deterministic
/// and live in the sim domain; worker count and host-clock timings vary
/// with the machine and thread count, so they are wall-domain gauges and
/// excluded from deterministic snapshots.
void export_pool_stats(obs::Observer& o, const PoolStats& ps, int workers) {
  obs::Registry& m = o.metrics();
  m.counter("pool.jobs").inc(ps.jobs.load(std::memory_order_relaxed));
  m.counter("pool.tasks").inc(ps.tasks.load(std::memory_order_relaxed));
  m.gauge("pool.peak_pending")
      .set_max(static_cast<std::int64_t>(ps.peak_pending.load(std::memory_order_relaxed)));
  m.gauge("pool.workers", obs::Domain::kWall).set_max(workers);
  m.gauge("pool.busy_ns", obs::Domain::kWall)
      .set_max(static_cast<std::int64_t>(ps.busy_ns.load(std::memory_order_relaxed)));
  m.gauge("pool.wall_ns", obs::Domain::kWall)
      .set_max(static_cast<std::int64_t>(ps.wall_ns.load(std::memory_order_relaxed)));
}

/// Export executor overhead accounting and the replicas' aggregate ECMP
/// path-cache statistics. Everything here depends on scheduling and the
/// host clock, so it is wall-domain only — excluded from deterministic
/// snapshots, surfaced by `--perf-report`.
void export_exec_perf(obs::Observer& o, const ParallelExecutor& exec) {
  obs::Registry& m = o.metrics();
  const ExecutorPerf& p = exec.perf();
  m.gauge("perf.clone_ns", obs::Domain::kWall)
      .set_max(static_cast<std::int64_t>(p.clone_ns.load(std::memory_order_relaxed)));
  m.gauge("perf.reset_ns", obs::Domain::kWall)
      .set_max(static_cast<std::int64_t>(p.reset_ns.load(std::memory_order_relaxed)));
  m.gauge("perf.tasks", obs::Domain::kWall)
      .set_max(static_cast<std::int64_t>(p.tasks.load(std::memory_order_relaxed)));
  m.gauge("perf.batches", obs::Domain::kWall)
      .set_max(static_cast<std::int64_t>(p.batches.load(std::memory_order_relaxed)));
  m.gauge("pathcache.hits", obs::Domain::kWall)
      .set_max(static_cast<std::int64_t>(exec.path_cache_hits()));
  m.gauge("pathcache.misses", obs::Domain::kWall)
      .set_max(static_cast<std::int64_t>(exec.path_cache_misses()));
}

trace::CenTraceOptions trace_options(const PipelineOptions& options,
                                     trace::ProbeProtocol protocol) {
  trace::CenTraceOptions o;
  o.repetitions = options.centrace_repetitions;
  o.retry_backoff = options.centrace_retry_backoff;
  o.adaptive_max_retries = options.centrace_adaptive_retries;
  o.protocol = protocol;
  return o;
}

// ---- Stage 4: bundle (shared by the serial and hermetic paths). ----
void bundle(PipelineResult& result, const std::string& country,
            const std::map<std::uint32_t, const trace::CenTraceReport*>& blocked_by_endpoint,
            const std::map<std::uint32_t, fuzz::CenFuzzReport>& fuzz_by_endpoint) {
  for (const auto& [ep, rep] : blocked_by_endpoint) {
    ml::EndpointMeasurement m;
    m.endpoint_id = net::Ipv4Address(ep).str();
    m.country = country;
    m.trace = *rep;
    auto fz = fuzz_by_endpoint.find(ep);
    if (fz != fuzz_by_endpoint.end()) m.fuzz = fz->second;
    if (rep->blocking_hop_ip) {
      auto pb = result.device_probes.find(rep->blocking_hop_ip->value());
      if (pb != result.device_probes.end()) m.banner = pb->second;
    }
    result.measurements.push_back(std::move(m));
  }
}

/// The historical single-network path (threads = 0): every measurement
/// shares one network whose RNG/clock/port state flows through the whole
/// campaign. Byte-for-byte the pre-parallel behaviour.
PipelineResult run_serial(const PipelineInput& in, const PipelineOptions& options) {
  PipelineResult result;
  result.country = in.country;
  sim::Network& net = *in.network;
  net.set_fault_plan(options.faults);
  if (options.transient_loss > 0.0) net.set_transient_loss(options.transient_loss);
  // Single shared network: the observer rides the shared clock directly
  // (no shards to merge). Restore whatever was attached before.
  obs::Observer* prev_observer = net.observer();
  if (options.observer != nullptr) net.set_observer(options.observer);

  trace::CenTraceOptions http_opts = trace_options(options, trace::ProbeProtocol::kHttp);
  trace::CenTraceOptions https_opts = trace_options(options, trace::ProbeProtocol::kHttps);

  std::vector<std::string> http_domains = take(in.http_domains, options.max_domains);
  std::vector<std::string> https_domains = take(in.https_domains, options.max_domains);

  // ---- Stage 1a: remote CenTrace. ----
  trace::CenTrace ct_http(net, in.remote_client, http_opts);
  trace::CenTrace ct_https(net, in.remote_client, https_opts);
  for (net::Ipv4Address endpoint : sample(in.remote_endpoints, options.max_endpoints)) {
    for (const std::string& domain : http_domains) {
      result.remote_traces.push_back(ct_http.measure(endpoint, domain, in.control_domain));
    }
    for (const std::string& domain : https_domains) {
      result.remote_traces.push_back(ct_https.measure(endpoint, domain, in.control_domain));
    }
  }

  // ---- Stage 1b: in-country CenTrace against the genuine servers. ----
  if (in.incountry_client != sim::kInvalidNode && !in.foreign_endpoints.empty()) {
    trace::CenTrace ic_http(net, in.incountry_client, http_opts);
    trace::CenTrace ic_https(net, in.incountry_client, https_opts);
    std::size_t idx = 0;
    for (const std::string& domain : in.http_domains) {
      if (idx >= in.foreign_endpoints.size()) break;
      result.incountry_traces.push_back(
          ic_http.measure(in.foreign_endpoints[idx++], domain, in.control_domain));
    }
    for (const std::string& domain : in.https_domains) {
      if (idx >= in.foreign_endpoints.size()) break;
      result.incountry_traces.push_back(
          ic_https.measure(in.foreign_endpoints[idx++], domain, in.control_domain));
    }
  }

  // ---- Representative blocked trace per endpoint. ----
  std::map<std::uint32_t, const trace::CenTraceReport*> blocked_by_endpoint;
  for (const trace::CenTraceReport& r : result.remote_traces) {
    if (r.blocked) blocked_by_endpoint.emplace(r.endpoint.value(), &r);
  }

  // ---- Stage 2: CenProbe every distinct in-path blocking-hop IP. ----
  if (options.run_banner) {
    for (const trace::CenTraceReport& r : result.remote_traces) {
      // Only in-path devices have a probeable IP (§5.1); on-path taps are
      // invisible to the management plane.
      if (!r.blocked || !r.blocking_hop_ip ||
          r.placement == trace::DevicePlacement::kOnPath) {
        continue;
      }
      std::uint32_t key = r.blocking_hop_ip->value();
      if (result.device_probes.count(key) != 0) continue;
      result.device_probes.emplace(
          key, probe::run(net, probe::ProbeRunOptions{*r.blocking_hop_ip}));
    }
  }

  // ---- Stage 3: CenFuzz blocked endpoints (sampled under the cap). ----
  std::vector<std::uint32_t> blocked_eps;
  for (const auto& [ip, report] : blocked_by_endpoint) blocked_eps.push_back(ip);
  std::vector<std::uint32_t> fuzz_targets;
  for (std::size_t idx :
       stride_sample_indices(blocked_eps.size(), options.fuzz_max_endpoints)) {
    fuzz_targets.push_back(blocked_eps[idx]);
  }
  std::map<std::uint32_t, fuzz::CenFuzzReport> fuzz_by_endpoint;
  if (options.run_fuzz) {
    fuzz::CenFuzz fuzzer(net, in.remote_client);
    for (std::uint32_t ep : fuzz_targets) {
      const trace::CenTraceReport* rep = blocked_by_endpoint.at(ep);
      fuzz_by_endpoint.emplace(
          ep, fuzzer.run(net::Ipv4Address(ep), rep->test_domain, in.control_domain));
    }
  }

  bundle(result, in.country, blocked_by_endpoint, fuzz_by_endpoint);
  if (options.observer != nullptr) net.set_observer(prev_observer);
  return result;
}

/// The hermetic parallel path (threads >= 1 or auto): every measurement
/// runs on a worker-private replica reset to a task-derived epoch, so the
/// merged result is identical for every worker count.
PipelineResult run_hermetic(const PipelineInput& in, const PipelineOptions& options) {
  PipelineResult result;
  result.country = in.country;
  sim::Network& net = *in.network;
  // Install the plan on the prototype BEFORE cloning so replicas carry it.
  net.set_fault_plan(options.faults);
  if (options.transient_loss > 0.0) net.set_transient_loss(options.transient_loss);

  ParallelExecutor exec(net, options.threads);
  if (options.batch > 0) exec.set_batch(static_cast<std::size_t>(options.batch));
  ShardMerger merger(options.observer);
  PoolStats pool_stats;
  if (options.observer != nullptr) {
    exec.set_stats(&pool_stats);
    exec.set_perf_tracking(true);
  }

  const trace::CenTraceOptions http_opts =
      trace_options(options, trace::ProbeProtocol::kHttp);
  const trace::CenTraceOptions https_opts =
      trace_options(options, trace::ProbeProtocol::kHttps);

  std::vector<std::string> http_domains = take(in.http_domains, options.max_domains);
  std::vector<std::string> https_domains = take(in.https_domains, options.max_domains);

  // ---- Stage 1: remote + in-country CenTrace as one hermetic batch. ----
  struct TraceTask {
    sim::NodeId client;
    net::Ipv4Address endpoint;
    const std::string* domain;
    std::uint64_t dhash;  // domain_hash(*domain), computed once per domain
    const trace::CenTraceOptions* opts;
    bool incountry;
  };
  // Hash each domain once up front: the remote fan-out is endpoints x
  // domains, so re-hashing the string per task would cost O(E x D) FNV
  // passes for O(D) distinct strings.
  std::vector<std::uint64_t> http_hashes, https_hashes;
  http_hashes.reserve(http_domains.size());
  for (const std::string& d : http_domains) http_hashes.push_back(domain_hash(d));
  https_hashes.reserve(https_domains.size());
  for (const std::string& d : https_domains) https_hashes.push_back(domain_hash(d));

  std::vector<TraceTask> tasks;
  for (net::Ipv4Address endpoint : sample(in.remote_endpoints, options.max_endpoints)) {
    for (std::size_t d = 0; d < http_domains.size(); ++d) {
      tasks.push_back({in.remote_client, endpoint, &http_domains[d], http_hashes[d],
                       &http_opts, false});
    }
    for (std::size_t d = 0; d < https_domains.size(); ++d) {
      tasks.push_back({in.remote_client, endpoint, &https_domains[d], https_hashes[d],
                       &https_opts, false});
    }
  }
  const std::size_t n_remote = tasks.size();
  if (in.incountry_client != sim::kInvalidNode && !in.foreign_endpoints.empty()) {
    std::size_t idx = 0;
    for (const std::string& domain : in.http_domains) {
      if (idx >= in.foreign_endpoints.size()) break;
      tasks.push_back({in.incountry_client, in.foreign_endpoints[idx++], &domain,
                       domain_hash(domain), &http_opts, true});
    }
    for (const std::string& domain : in.https_domains) {
      if (idx >= in.foreign_endpoints.size()) break;
      tasks.push_back({in.incountry_client, in.foreign_endpoints[idx++], &domain,
                       domain_hash(domain), &https_opts, true});
    }
  }

  std::vector<std::uint64_t> trace_keys;
  trace_keys.reserve(tasks.size());
  for (const TraceTask& t : tasks) {
    std::uint64_t tag = static_cast<std::uint64_t>(t.opts->protocol) |
                        (t.incountry ? 0x8u : 0x0u);
    trace_keys.push_back(task_key_hashed(t.endpoint.value(), t.dhash, tag));
  }
  std::vector<trace::CenTraceReport> reports(tasks.size());
  merger.begin_stage(tasks.size());
  exec.run(derive_task_seeds(net.seed(), kTraceStageSalt, trace_keys),
           [&](sim::Network& replica, std::size_t i) {
             const TraceTask& t = tasks[i];
             obs::Observer* shard = merger.shard(i);
             if (shard != nullptr) replica.set_observer(shard);
             trace::CenTrace ct(replica, t.client, *t.opts);
             reports[i] = ct.measure(t.endpoint, *t.domain, in.control_domain);
             if (shard != nullptr) {
               merger.record_end(i, replica.now());
               replica.set_observer(nullptr);
             }
           });
  merger.merge_stage("stage:centrace");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    (i < n_remote ? result.remote_traces : result.incountry_traces)
        .push_back(std::move(reports[i]));
  }

  // ---- Representative blocked trace per endpoint. ----
  std::map<std::uint32_t, const trace::CenTraceReport*> blocked_by_endpoint;
  for (const trace::CenTraceReport& r : result.remote_traces) {
    if (r.blocked) blocked_by_endpoint.emplace(r.endpoint.value(), &r);
  }

  // ---- Stage 2: CenProbe every distinct in-path blocking-hop IP. ----
  if (options.run_banner) {
    std::vector<net::Ipv4Address> probe_ips;
    std::set<std::uint32_t> seen;
    for (const trace::CenTraceReport& r : result.remote_traces) {
      if (!r.blocked || !r.blocking_hop_ip ||
          r.placement == trace::DevicePlacement::kOnPath) {
        continue;
      }
      if (seen.insert(r.blocking_hop_ip->value()).second) {
        probe_ips.push_back(*r.blocking_hop_ip);
      }
    }
    std::vector<std::uint64_t> probe_keys;
    probe_keys.reserve(probe_ips.size());
    for (net::Ipv4Address ip : probe_ips) {
      probe_keys.push_back(task_key(ip.value(), {}, 0x10));
    }
    std::vector<probe::DeviceProbeReport> probes(probe_ips.size());
    merger.begin_stage(probe_ips.size());
    exec.run(derive_task_seeds(net.seed(), kProbeStageSalt, probe_keys),
             [&](sim::Network& replica, std::size_t i) {
               obs::Observer* shard = merger.shard(i);
               if (shard != nullptr) replica.set_observer(shard);
               probes[i] = probe::run(replica, probe::ProbeRunOptions{probe_ips[i]});
               if (shard != nullptr) {
                 merger.record_end(i, replica.now());
                 replica.set_observer(nullptr);
               }
             });
    merger.merge_stage("stage:cenprobe");
    for (std::size_t i = 0; i < probe_ips.size(); ++i) {
      result.device_probes.emplace(probe_ips[i].value(), std::move(probes[i]));
    }
  }

  // ---- Stage 3: CenFuzz blocked endpoints (sampled under the cap). ----
  std::vector<std::uint32_t> blocked_eps;
  for (const auto& [ip, report] : blocked_by_endpoint) blocked_eps.push_back(ip);
  std::map<std::uint32_t, fuzz::CenFuzzReport> fuzz_by_endpoint;
  if (options.run_fuzz) {
    std::vector<std::uint32_t> fuzz_targets;
    for (std::size_t idx :
         stride_sample_indices(blocked_eps.size(), options.fuzz_max_endpoints)) {
      fuzz_targets.push_back(blocked_eps[idx]);
    }
    std::vector<std::uint64_t> fuzz_keys;
    fuzz_keys.reserve(fuzz_targets.size());
    for (std::uint32_t ep : fuzz_targets) {
      fuzz_keys.push_back(task_key(ep, blocked_by_endpoint.at(ep)->test_domain, 0x20));
    }
    std::vector<fuzz::CenFuzzReport> fuzzes(fuzz_targets.size());
    merger.begin_stage(fuzz_targets.size());
    exec.run(derive_task_seeds(net.seed(), kFuzzStageSalt, fuzz_keys),
             [&](sim::Network& replica, std::size_t i) {
               const trace::CenTraceReport* rep = blocked_by_endpoint.at(fuzz_targets[i]);
               obs::Observer* shard = merger.shard(i);
               if (shard != nullptr) replica.set_observer(shard);
               fuzz::CenFuzz fuzzer(replica, in.remote_client);
               fuzzes[i] = fuzzer.run(net::Ipv4Address(fuzz_targets[i]), rep->test_domain,
                                      in.control_domain);
               if (shard != nullptr) {
                 merger.record_end(i, replica.now());
                 replica.set_observer(nullptr);
               }
             });
    merger.merge_stage("stage:cenfuzz");
    for (std::size_t i = 0; i < fuzz_targets.size(); ++i) {
      fuzz_by_endpoint.emplace(fuzz_targets[i], std::move(fuzzes[i]));
    }
  }

  bundle(result, in.country, blocked_by_endpoint, fuzz_by_endpoint);
  if (options.observer != nullptr) {
    export_pool_stats(*options.observer, pool_stats, exec.threads());
    export_exec_perf(*options.observer, exec);
    exec.set_stats(nullptr);
  }
  return result;
}

PipelineResult run(const PipelineInput& in, const PipelineOptions& options) {
  if (options.threads == 0) return run_serial(in, options);
  return run_hermetic(in, options);
}

}  // namespace

PipelineResult run_country_pipeline(CountryScenario& scenario,
                                    const PipelineOptions& options) {
  PipelineInput in;
  in.network = scenario.network.get();
  in.remote_client = scenario.remote_client;
  in.incountry_client = scenario.incountry_client;
  in.remote_endpoints = scenario.remote_endpoints;
  in.foreign_endpoints = scenario.foreign_endpoints;
  in.http_domains = scenario.http_test_domains;
  in.https_domains = scenario.https_test_domains;
  in.control_domain = scenario.control_domain;
  in.country = std::string(country_code(scenario.country));
  return run(in, options);
}

ConsistencyStats localisation_consistency(const PipelineResult& result) {
  ConsistencyStats stats;
  // endpoint -> (as -> count, hop_ip -> count, total blocked)
  struct PerEndpoint {
    std::map<std::uint32_t, int> by_as;
    std::map<std::uint32_t, int> by_hop;
    int blocked = 0;
  };
  std::map<std::uint32_t, PerEndpoint> endpoints;
  for (const trace::CenTraceReport& t : result.remote_traces) {
    if (!t.blocked) continue;
    PerEndpoint& pe = endpoints[t.endpoint.value()];
    ++pe.blocked;
    if (t.blocking_as) pe.by_as[t.blocking_as->asn]++;
    if (t.blocking_hop_ip) pe.by_hop[t.blocking_hop_ip->value()]++;
  }
  double as_sum = 0.0, hop_sum = 0.0;
  for (const auto& [ip, pe] : endpoints) {
    if (pe.blocked < 2) continue;
    ++stats.endpoints_with_multiple_blocked;
    int modal_as = 0, modal_hop = 0;
    for (const auto& [asn, n] : pe.by_as) modal_as = std::max(modal_as, n);
    for (const auto& [hop, n] : pe.by_hop) modal_hop = std::max(modal_hop, n);
    as_sum += static_cast<double>(modal_as) / pe.blocked;
    hop_sum += static_cast<double>(modal_hop) / pe.blocked;
  }
  if (stats.endpoints_with_multiple_blocked > 0) {
    stats.mean_modal_as_share =
        as_sum / static_cast<double>(stats.endpoints_with_multiple_blocked);
    stats.mean_modal_hop_share =
        hop_sum / static_cast<double>(stats.endpoints_with_multiple_blocked);
  }
  return stats;
}

std::vector<trace::CenTraceReport> run_trace_fanout(
    sim::Network& net, sim::NodeId client,
    const std::vector<net::Ipv4Address>& endpoints,
    const std::vector<std::string>& domains, const std::string& control_domain,
    const trace::CenTraceOptions& trace_opts, int threads, obs::Observer* observer,
    const trace::DegradationPlan* plan, int batch) {
  struct Task {
    net::Ipv4Address endpoint;
    const std::string* domain;
    std::uint64_t dhash;
  };
  // One FNV pass per distinct domain, not per (endpoint, domain) pair.
  std::vector<std::uint64_t> dhashes;
  dhashes.reserve(domains.size());
  for (const std::string& d : domains) dhashes.push_back(domain_hash(d));

  std::vector<Task> tasks;
  tasks.reserve(endpoints.size() * domains.size());
  for (net::Ipv4Address endpoint : endpoints) {
    for (std::size_t d = 0; d < domains.size(); ++d) {
      tasks.push_back({endpoint, &domains[d], dhashes[d]});
    }
  }

  // Same key/salt scheme as the pipeline's stage 1, so a fan-out of the
  // same (endpoint, domain, protocol) set replays the same substreams.
  std::vector<std::uint64_t> keys;
  keys.reserve(tasks.size());
  for (const Task& t : tasks) {
    keys.push_back(task_key_hashed(t.endpoint.value(), t.dhash,
                                   static_cast<std::uint64_t>(trace_opts.protocol)));
  }
  const std::vector<std::uint64_t> seeds =
      derive_task_seeds(net.seed(), kTraceStageSalt, keys);

  std::vector<trace::CenTraceReport> reports(tasks.size());
  ShardMerger merger(observer);
  merger.begin_stage(tasks.size());
  auto run_task = [&](sim::Network& replica, std::size_t i) {
    obs::Observer* shard = merger.shard(i);
    if (shard != nullptr) replica.set_observer(shard);
    reports[i] = trace::measure_with_degradation(replica, client, tasks[i].endpoint,
                                                 *tasks[i].domain, control_domain,
                                                 trace_opts, plan);
    if (shard != nullptr) {
      merger.record_end(i, replica.now());
      replica.set_observer(nullptr);
    }
  };

  if (threads == 0) {
    // Inline-hermetic: run every task on `net` itself, reset to the same
    // task-derived epoch a pool replica would use. Identical results to
    // the pool path by construction. The caller's observer attachment is
    // saved around the loop (tasks record into their own shards).
    obs::Observer* prev = net.observer();
    net.set_observer(nullptr);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      net.reset_epoch(seeds[i]);
      run_task(net, i);
    }
    net.set_observer(prev);
  } else {
    ParallelExecutor exec(net, threads);
    if (batch > 0) exec.set_batch(static_cast<std::size_t>(batch));
    PoolStats pool_stats;
    if (observer != nullptr) {
      exec.set_stats(&pool_stats);
      exec.set_perf_tracking(true);
    }
    exec.run(seeds, run_task);
    if (observer != nullptr) {
      // Deliberately NOT exported into sim-domain metrics here: the
      // inline path (threads = 0) has no pool, and the identity contract
      // across {0, 1, N} must hold for the default snapshot. Wall-domain
      // gauges only.
      obs::Registry& m = observer->metrics();
      m.gauge("pool.workers", obs::Domain::kWall).set_max(exec.threads());
      m.gauge("pool.busy_ns", obs::Domain::kWall)
          .set_max(static_cast<std::int64_t>(
              pool_stats.busy_ns.load(std::memory_order_relaxed)));
      m.gauge("pool.wall_ns", obs::Domain::kWall)
          .set_max(static_cast<std::int64_t>(
              pool_stats.wall_ns.load(std::memory_order_relaxed)));
      export_exec_perf(*observer, exec);
      exec.set_stats(nullptr);
    }
  }
  merger.merge_stage("stage:centrace");
  return reports;
}

PipelineResult run_world_pipeline(WorldScenario& scenario, const PipelineOptions& options) {
  PipelineInput in;
  in.network = scenario.network.get();
  in.remote_client = scenario.client;
  in.remote_endpoints = scenario.endpoints;
  in.http_domains = scenario.http_test_domains;
  in.https_domains = scenario.https_test_domains;
  in.control_domain = scenario.control_domain;
  in.country = "WORLD";
  return run(in, options);
}

}  // namespace cen::scenario
