#include "scenario/pipeline.hpp"

#include <algorithm>

namespace cen::scenario {

std::size_t PipelineResult::blocked_remote() const {
  return static_cast<std::size_t>(std::count_if(
      remote_traces.begin(), remote_traces.end(),
      [](const trace::CenTraceReport& r) { return r.blocked; }));
}

double PipelineResult::mean_remote_confidence() const {
  if (remote_traces.empty()) return 1.0;
  double sum = 0.0;
  for (const trace::CenTraceReport& r : remote_traces) sum += r.confidence.overall;
  return sum / static_cast<double>(remote_traces.size());
}

namespace {

std::vector<net::Ipv4Address> sample(const std::vector<net::Ipv4Address>& v, int cap) {
  if (cap < 0 || static_cast<int>(v.size()) <= cap) return v;
  std::vector<net::Ipv4Address> out;
  double stride = static_cast<double>(v.size()) / cap;
  for (int i = 0; i < cap; ++i) {
    out.push_back(v[static_cast<std::size_t>(i * stride)]);
  }
  return out;
}

std::vector<std::string> take(const std::vector<std::string>& v, int cap) {
  if (cap < 0 || static_cast<int>(v.size()) <= cap) return v;
  return std::vector<std::string>(v.begin(), v.begin() + cap);
}

struct PipelineInput {
  sim::Network* network = nullptr;
  sim::NodeId remote_client = sim::kInvalidNode;
  sim::NodeId incountry_client = sim::kInvalidNode;
  std::vector<net::Ipv4Address> remote_endpoints;
  std::vector<net::Ipv4Address> foreign_endpoints;  // parallel to all domains
  std::vector<std::string> http_domains;
  std::vector<std::string> https_domains;
  std::string control_domain;
  std::string country;
};

PipelineResult run(const PipelineInput& in, const PipelineOptions& options) {
  PipelineResult result;
  result.country = in.country;
  sim::Network& net = *in.network;
  net.set_fault_plan(options.faults);
  if (options.transient_loss > 0.0) net.set_transient_loss(options.transient_loss);

  trace::CenTraceOptions http_opts;
  http_opts.repetitions = options.centrace_repetitions;
  http_opts.retry_backoff = options.centrace_retry_backoff;
  http_opts.adaptive_max_retries = options.centrace_adaptive_retries;
  trace::CenTraceOptions https_opts = http_opts;
  https_opts.protocol = trace::ProbeProtocol::kHttps;

  std::vector<std::string> http_domains = take(in.http_domains, options.max_domains);
  std::vector<std::string> https_domains = take(in.https_domains, options.max_domains);

  // ---- Stage 1a: remote CenTrace. ----
  trace::CenTrace ct_http(net, in.remote_client, http_opts);
  trace::CenTrace ct_https(net, in.remote_client, https_opts);
  for (net::Ipv4Address endpoint : sample(in.remote_endpoints, options.max_endpoints)) {
    for (const std::string& domain : http_domains) {
      result.remote_traces.push_back(ct_http.measure(endpoint, domain, in.control_domain));
    }
    for (const std::string& domain : https_domains) {
      result.remote_traces.push_back(ct_https.measure(endpoint, domain, in.control_domain));
    }
  }

  // ---- Stage 1b: in-country CenTrace against the genuine servers. ----
  if (in.incountry_client != sim::kInvalidNode && !in.foreign_endpoints.empty()) {
    trace::CenTrace ic_http(net, in.incountry_client, http_opts);
    trace::CenTrace ic_https(net, in.incountry_client, https_opts);
    std::size_t idx = 0;
    for (const std::string& domain : in.http_domains) {
      if (idx >= in.foreign_endpoints.size()) break;
      result.incountry_traces.push_back(
          ic_http.measure(in.foreign_endpoints[idx++], domain, in.control_domain));
    }
    for (const std::string& domain : in.https_domains) {
      if (idx >= in.foreign_endpoints.size()) break;
      result.incountry_traces.push_back(
          ic_https.measure(in.foreign_endpoints[idx++], domain, in.control_domain));
    }
  }

  // ---- Representative blocked trace per endpoint. ----
  std::map<std::uint32_t, const trace::CenTraceReport*> blocked_by_endpoint;
  for (const trace::CenTraceReport& r : result.remote_traces) {
    if (r.blocked) blocked_by_endpoint.emplace(r.endpoint.value(), &r);
  }

  // ---- Stage 2: CenProbe every distinct in-path blocking-hop IP. ----
  if (options.run_banner) {
    for (const trace::CenTraceReport& r : result.remote_traces) {
      // Only in-path devices have a probeable IP (§5.1); on-path taps are
      // invisible to the management plane.
      if (!r.blocked || !r.blocking_hop_ip ||
          r.placement == trace::DevicePlacement::kOnPath) {
        continue;
      }
      std::uint32_t key = r.blocking_hop_ip->value();
      if (result.device_probes.count(key) != 0) continue;
      result.device_probes.emplace(key, probe::probe_device(net, *r.blocking_hop_ip));
    }
  }

  // ---- Stage 3: CenFuzz blocked endpoints (sampled under the cap). ----
  std::vector<std::uint32_t> blocked_eps;
  for (const auto& [ip, report] : blocked_by_endpoint) blocked_eps.push_back(ip);
  std::vector<std::uint32_t> fuzz_targets = blocked_eps;
  if (options.fuzz_max_endpoints >= 0 &&
      static_cast<int>(fuzz_targets.size()) > options.fuzz_max_endpoints) {
    std::vector<std::uint32_t> sampled;
    double stride =
        static_cast<double>(fuzz_targets.size()) / options.fuzz_max_endpoints;
    for (int i = 0; i < options.fuzz_max_endpoints; ++i) {
      sampled.push_back(fuzz_targets[static_cast<std::size_t>(i * stride)]);
    }
    fuzz_targets = std::move(sampled);
  }
  std::map<std::uint32_t, fuzz::CenFuzzReport> fuzz_by_endpoint;
  if (options.run_fuzz) {
    fuzz::CenFuzz fuzzer(net, in.remote_client);
    for (std::uint32_t ep : fuzz_targets) {
      const trace::CenTraceReport* rep = blocked_by_endpoint.at(ep);
      fuzz_by_endpoint.emplace(
          ep, fuzzer.run(net::Ipv4Address(ep), rep->test_domain, in.control_domain));
    }
  }

  // ---- Stage 4: bundle. ----
  for (std::uint32_t ep : blocked_eps) {
    const trace::CenTraceReport* rep = blocked_by_endpoint.at(ep);
    ml::EndpointMeasurement m;
    m.endpoint_id = net::Ipv4Address(ep).str();
    m.country = in.country;
    m.trace = *rep;
    auto fz = fuzz_by_endpoint.find(ep);
    if (fz != fuzz_by_endpoint.end()) m.fuzz = fz->second;
    if (rep->blocking_hop_ip) {
      auto pb = result.device_probes.find(rep->blocking_hop_ip->value());
      if (pb != result.device_probes.end()) m.banner = pb->second;
    }
    result.measurements.push_back(std::move(m));
  }
  return result;
}

}  // namespace

PipelineResult run_country_pipeline(CountryScenario& scenario,
                                    const PipelineOptions& options) {
  PipelineInput in;
  in.network = scenario.network.get();
  in.remote_client = scenario.remote_client;
  in.incountry_client = scenario.incountry_client;
  in.remote_endpoints = scenario.remote_endpoints;
  in.foreign_endpoints = scenario.foreign_endpoints;
  in.http_domains = scenario.http_test_domains;
  in.https_domains = scenario.https_test_domains;
  in.control_domain = scenario.control_domain;
  in.country = std::string(country_code(scenario.country));
  return run(in, options);
}

ConsistencyStats localisation_consistency(const PipelineResult& result) {
  ConsistencyStats stats;
  // endpoint -> (as -> count, hop_ip -> count, total blocked)
  struct PerEndpoint {
    std::map<std::uint32_t, int> by_as;
    std::map<std::uint32_t, int> by_hop;
    int blocked = 0;
  };
  std::map<std::uint32_t, PerEndpoint> endpoints;
  for (const trace::CenTraceReport& t : result.remote_traces) {
    if (!t.blocked) continue;
    PerEndpoint& pe = endpoints[t.endpoint.value()];
    ++pe.blocked;
    if (t.blocking_as) pe.by_as[t.blocking_as->asn]++;
    if (t.blocking_hop_ip) pe.by_hop[t.blocking_hop_ip->value()]++;
  }
  double as_sum = 0.0, hop_sum = 0.0;
  for (const auto& [ip, pe] : endpoints) {
    if (pe.blocked < 2) continue;
    ++stats.endpoints_with_multiple_blocked;
    int modal_as = 0, modal_hop = 0;
    for (const auto& [asn, n] : pe.by_as) modal_as = std::max(modal_as, n);
    for (const auto& [hop, n] : pe.by_hop) modal_hop = std::max(modal_hop, n);
    as_sum += static_cast<double>(modal_as) / pe.blocked;
    hop_sum += static_cast<double>(modal_hop) / pe.blocked;
  }
  if (stats.endpoints_with_multiple_blocked > 0) {
    stats.mean_modal_as_share =
        as_sum / static_cast<double>(stats.endpoints_with_multiple_blocked);
    stats.mean_modal_hop_share =
        hop_sum / static_cast<double>(stats.endpoints_with_multiple_blocked);
  }
  return stats;
}

PipelineResult run_world_pipeline(WorldScenario& scenario, const PipelineOptions& options) {
  PipelineInput in;
  in.network = scenario.network.get();
  in.remote_client = scenario.client;
  in.remote_endpoints = scenario.endpoints;
  in.http_domains = scenario.http_test_domains;
  in.https_domains = scenario.https_test_domains;
  in.control_domain = scenario.control_domain;
  in.country = "WORLD";
  return run(in, options);
}

}  // namespace cen::scenario
