#include "scenario/world.hpp"

#include "scenario/builder.hpp"
#include "worldgen/generate.hpp"

namespace cen::scenario {

censor::DeviceConfig world_device_config(const std::string& vendor, const std::string& id) {
  censor::DeviceConfig cfg = censor::make_vendor_device(vendor, id);
  cfg.action = censor::BlockAction::kBlockpage;
  cfg.tls_action = censor::BlockAction::kRstInject;
  if (vendor == "Sandvine") {
    cfg.blockpage_html =
        "<html><body><h1>Blocked</h1><p>This content is not available. "
        "Filtering by Sandvine PacketLogic.</p></body></html>";
  } else if (vendor == "Kerio") {
    cfg.blockpage_html =
        "<html><body><h1>Access denied</h1><p>Denied by Kerio Control web "
        "filter policy.</p></body></html>";
  } else if (vendor == "PaloAlto") {
    cfg.blockpage_html =
        "<html><body><h1>Web Page Blocked</h1><p>Access to the web page was "
        "blocked by Palo Alto Networks URL filtering.</p></body></html>";
  } else if (vendor == "DDoSGuard") {
    cfg.blockpage_html =
        "<html><body><h1>403</h1><p>Blocked by DDoS-Guard.</p></body></html>";
  }
  return cfg;
}

WorldScenario make_world(Scale scale, std::uint64_t seed) {
  WorldScenario s;
  s.http_test_domains = {"www.blockedexample.com"};
  s.https_test_domains = {"www.blockedexample.org"};

  Builder b(seed);
  auto meas = b.make_as(64500, "MEASUREMENT-US", "US");
  sim::NodeId client = b.host(meas, "client");
  sim::NodeId us_r1 = b.router(meas, "us-r1");
  b.link(client, us_r1);
  auto transit = b.make_as(3356, "LUMEN", "US");
  sim::NodeId transit_r1 = b.router(transit, "r1");
  sim::NodeId transit_r2 = b.router(transit, "r2");
  b.link(us_r1, transit_r1);
  b.link(transit_r1, transit_r2);

  const int n = scale == Scale::kFull ? 76 : 20;
  static const char* kCountries[] = {"IN", "ID", "TR", "EG", "TH", "PK", "MX", "VN",
                                     "SA", "AE", "BD", "MY"};
  static const char* kVendors[] = {"Fortinet",   "Kerio",    "PaloAlto", "DDoSGuard",
                                   "Netsweeper", "BlueCoat", "Sandvine"};

  struct Pending {
    sim::NodeId at;
    censor::DeviceConfig cfg;
    std::uint32_t asn;
  };
  std::vector<Pending> pending_devices;
  std::vector<std::pair<sim::NodeId, sim::EndpointProfile>> pending_endpoints;

  const std::vector<std::string> all_domains = {s.http_test_domains[0],
                                                s.https_test_domains[0]};
  for (int i = 0; i < n; ++i) {
    std::uint32_t asn = 45000 + static_cast<std::uint32_t>(i);
    std::string cc = kCountries[i % 12];
    Builder::AsHandle h = b.make_as(asn, "ORG-" + std::to_string(i), cc);
    sim::NodeId r = b.router(h, "r1");
    b.topology().node(r).profile.responds_icmp = true;  // devices stay localizable
    b.link(transit_r2, r);
    std::string org = "host" + std::to_string(i) + ".org-" + std::to_string(i) + ".net";
    Builder::PlacedEndpoint placed = b.org_host(h, r, "ep", org);
    pending_endpoints.emplace_back(placed.node, std::move(placed.profile));
    s.endpoints.push_back(b.topology().node(placed.node).ip);

    const std::string vendor = kVendors[i % 7];
    censor::DeviceConfig cfg =
        world_device_config(vendor, "world-" + std::to_string(i) + "-" + vendor);
    cfg.http_rules = make_rules(vendor, all_domains);
    cfg.sni_rules = make_rules(vendor, all_domains);

    // Funnel composition (§5.2/§5.3): ~7% on-path taps, then of the
    // in-path devices ~13% expose no services, ~48% only generic banners,
    // and the rest keep their identifying vendor banners.
    if (i % 15 == 14) {
      cfg.on_path = true;
      cfg.services.clear();
    } else if (i % 8 == 7) {
      cfg.services.clear();  // in-path, no open ports
    } else if (i % 2 == 1) {
      cfg.services = {{22, "ssh", "SSH-2.0-OpenSSH_7.9"},
                      {23, "telnet", "login:"}};  // generic, unfingerprideable
    }
    pending_devices.push_back({r, std::move(cfg), asn});
  }

  s.network = b.finish(seed ^ 0xE1);
  for (auto& [node, profile] : pending_endpoints) {
    s.network->add_endpoint(node, std::move(profile));
  }
  for (Pending& p : pending_devices) {
    std::shared_ptr<censor::Device> dev = deploy(*s.network, p.at, std::move(p.cfg));
    DeviceTruth truth;
    truth.device_id = dev->config().id;
    truth.vendor = dev->config().vendor;
    truth.on_path = dev->config().on_path;
    truth.asn = p.asn;
    if (dev->config().mgmt_ip) truth.mgmt_ip = *dev->config().mgmt_ip;
    s.devices.push_back(std::move(truth));
  }
  s.client = client;
  return s;
}

WorldScenario make_world(const worldgen::WorldSpec& spec, std::uint64_t seed) {
  worldgen::World world = worldgen::generate(spec, seed);
  worldgen::GeneratedScenario gen = worldgen::instantiate(world);
  WorldScenario s;
  s.network = std::move(gen.network);
  s.client = gen.client;
  s.endpoints = std::move(gen.endpoints);
  s.http_test_domains = std::move(gen.http_test_domains);
  s.https_test_domains = std::move(gen.https_test_domains);
  s.control_domain = std::move(gen.control_domain);
  s.devices = std::move(gen.devices);
  return s;
}

}  // namespace cen::scenario
