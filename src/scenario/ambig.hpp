// Ambiguity-fingerprinting scenario (ISSUE 9): N synthetic vendors whose
// deployments share an IDENTICAL rule set, an identical blocking action
// (silent drop) and fully dark management planes (no banners, no
// blockpage), differing ONLY in their ReassemblyQuirks. Every signal the
// banner/blockpage pipeline clusters on is absent by construction — the
// discrepancy vectors CenAmbig measures are the only thing that separates
// the vendors, which is exactly the situation the ambiguity-
// fingerprinting method is for.
//
// Shape (one branch per deployment, all behind one access router):
//
//   client - acc -+- rA0 - rB0* - server0      * = inline device on the
//                 +- rA1 - rB1* - server1          link into rBi
//                 +- ...
//
// Deployments are assigned round-robin over the vendor profiles, so
// deployment i carries vendor (i % vendors). The endpoint sits one hop
// behind the device: an insertion TTL of (distance - 1) reaches the
// device but never the server.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "censor/quirks.hpp"
#include "netsim/engine.hpp"

namespace cen::scenario {

/// One synthetic vendor: a name plus the reassembly behaviour that is its
/// only observable difference from the others.
struct AmbigVendor {
  std::string name;
  censor::ReassemblyQuirks reassembly;
};

/// The built-in vendor set (3 profiles chosen to differ along independent
/// quirk axes, so their discrepancy vectors are pairwise distinct):
///   QuirkTTL    first-wins, TTL-consistency check (rejects insertion);
///   QuirkLast   last-wins, accepts bad checksums;
///   QuirkStrict first-wins, no out-of-order buffer.
const std::vector<AmbigVendor>& ambig_vendors();

struct AmbigScenarioOptions {
  /// Deployments per vendor (total devices = vendors * this).
  int deployments_per_vendor = 3;
  /// Vendor profiles; empty = ambig_vendors().
  std::vector<AmbigVendor> vendors;
  /// Residual (client, endpoint)-pair blocking after a trigger. Must be
  /// non-zero for insertion probes to surface as a blocked outcome (the
  /// dropped decoy itself never reaches the endpoint; it is the residual
  /// window that kills the benign completion that follows).
  SimTime residual_block = 60 * kSecond;
};

struct AmbigDeployment {
  std::string device_id;
  std::string vendor;  // ground truth (never consumed by the tools)
  net::Ipv4Address endpoint;
};

struct AmbigScenario {
  std::unique_ptr<sim::Network> network;
  sim::NodeId client = sim::kInvalidNode;
  std::string test_domain = "www.blocked.example";
  std::string control_domain = "www.example.org";
  /// One entry per deployment; vendors are assigned round-robin, so
  /// deployment i carries vendor (i % vendors.size()).
  std::vector<AmbigDeployment> deployments;
};

AmbigScenario make_ambig(const AmbigScenarioOptions& options = {},
                         std::uint64_t seed = 9);

}  // namespace cen::scenario
