// Internal engine interface for the check subsystem: the per-case context
// handed to each engine, plus the per-engine entry points check.cpp
// dispatches to. Not installed API — tools and tests go through check.hpp.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "check/check.hpp"
#include "core/rng.hpp"

namespace cen::check {

/// Everything one case needs: a private RNG derived from (engine, case
/// seed) alone, the mutation budget, and the failure sink. Engines call
/// expect() for every invariant they assert; the check count is what the
/// report's stats aggregate.
struct CaseContext {
  Engine engine = Engine::kRoundTrip;
  std::uint64_t case_seed = 0;
  int budget = 0;
  Rng rng{0};
  std::uint64_t checks = 0;
  std::vector<CheckFailure>* failures = nullptr;

  void expect(bool ok, std::string_view target, std::string detail) {
    ++checks;
    if (!ok) fail(target, std::move(detail));
  }
  void fail(std::string_view target, std::string detail) {
    if (failures == nullptr) return;
    CheckFailure f;
    f.engine = engine;
    f.seed = case_seed;
    f.target = std::string(target);
    f.detail = std::move(detail);
    f.budget = budget;
    f.minimized_budget = budget;
    failures->push_back(std::move(f));
  }
};

/// Engine-distinguishing salt folded into each case's RNG seed.
std::uint64_t engine_salt(Engine e);

void run_roundtrip_case(CaseContext& ctx);
void run_invariant_case(CaseContext& ctx);
void run_cache_replay_case(CaseContext& ctx);
void run_ml_oracle_case(CaseContext& ctx);
void run_worldgen_case(CaseContext& ctx);
void run_ambig_case(CaseContext& ctx);
void run_longit_case(CaseContext& ctx);
void run_selftest_case(CaseContext& ctx);

}  // namespace cen::check
