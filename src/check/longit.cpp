// Longitudinal engine: invariants of the evolution replay, the epoch
// differ and the CKMS quantile sketch. Each case draws a randomized
// EvolutionPlan and asserts the laws the longitudinal service relies on:
//
//   replay-identity   replaying the same (plan, site, epoch) on two
//                     independently built networks yields identical
//                     per-epoch network fingerprints and identical
//                     ground-truth churn — the contract that makes warm
//                     epochs pure cache hits;
//   baseline          epoch 0 (and an inert plan at any epoch) leaves the
//                     baseline fingerprint untouched;
//   plan-roundtrip    an EvolutionPlan survives JSON round-trip equal;
//   diff-roundtrip    a randomized EpochDiff survives JSON round-trip
//                     equal, and diffing an epoch against itself is empty;
//   ckms              the sketch answers within its configured rank error
//                     against a brute-force exact quantile, is bit-stable
//                     across a replay, and a two-way shard merge stays
//                     within the summed error bound.
#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "check/engines.hpp"
#include "core/fingerprint.hpp"
#include "longit/evolve.hpp"
#include "obs/ckms.hpp"
#include "report/epoch_diff.hpp"
#include "scenario/country.hpp"

namespace cen::check {

namespace {

longit::EvolutionPlan draw_plan(Rng& rng) {
  longit::EvolutionPlan plan;
  // Seeds live in JSON numbers (doubles), exact only up to 2^53 — the
  // same contract as the campaign spec's seed.
  plan.seed = rng.uniform(1ull << 53);
  plan.start_epoch = static_cast<int>(rng.range(1, 2));
  plan.period = static_cast<int>(rng.range(1, 2));
  // Sixteenths: exact in binary and in the writer's %.6g rendering, so
  // the plan JSON round-trips bit-equal.
  plan.rule_add_prob = static_cast<double>(rng.range(0, 13)) / 16.0;
  plan.rule_remove_prob = static_cast<double>(rng.range(0, 10)) / 16.0;
  plan.vendor_upgrade_prob = static_cast<double>(rng.range(0, 8)) / 16.0;
  plan.blockpage_swap_prob = static_cast<double>(rng.range(0, 8)) / 16.0;
  plan.coverage_drift_prob = static_cast<double>(rng.range(0, 6)) / 16.0;
  if (rng.chance(0.3)) plan.rule_pool = {"alpha.example", "beta.example"};
  return plan;
}

std::uint64_t churn_digest(const std::vector<longit::EpochChurn>& history) {
  FingerprintBuilder fp;
  fp.mix(static_cast<std::uint64_t>(history.size()));
  for (const longit::EpochChurn& ec : history) {
    fp.mix(static_cast<std::uint64_t>(ec.epoch));
    fp.mix(ec.site);
    fp.mix(static_cast<std::uint64_t>(ec.devices.size()));
    for (const longit::DeviceChurn& d : ec.devices) {
      fp.mix(d.device_id);
      for (const std::string& r : d.rules_added) fp.mix(r);
      for (const std::string& r : d.rules_removed) fp.mix(r);
      fp.mix(d.vendor_upgraded);
      fp.mix(d.blockpage_swapped);
      fp.mix(d.coverage_dropped);
      fp.mix(d.coverage_restored);
    }
  }
  return fp.digest();
}

report::EndpointEpochState draw_state(Rng& rng, int i) {
  report::EndpointEpochState s;
  s.site = rng.chance(0.5) ? "KZ" : "RU";
  s.endpoint = "10.0.0." + std::to_string(i);
  s.domain = "d" + std::to_string(rng.range(0, 5)) + ".example";
  s.protocol = rng.chance(0.5) ? "http" : "https_sni";
  s.blocked = rng.chance(0.5);
  if (s.blocked) {
    s.blocking_type = rng.chance(0.5) ? "rst" : "blockpage";
    s.vendor = rng.chance(0.4) ? "Fortinet" : "";
    s.blocking_hop_ttl = static_cast<int>(rng.range(2, 12));
  }
  s.endpoint_hop_distance = static_cast<int>(rng.range(4, 16));
  return s;
}

void check_replay_identity(CaseContext& ctx) {
  Rng& rng = ctx.rng;
  const longit::EvolutionPlan plan = draw_plan(rng);
  const auto countries = scenario::all_countries();
  const scenario::Country country = countries[rng.index(countries.size())];
  const std::uint64_t scenario_seed = rng.range(1, 1000);
  const int max_epoch = 1 + static_cast<int>(rng.range(1, std::max(1, ctx.budget)));

  scenario::CountryScenario a =
      scenario::make_country(country, scenario::Scale::kSmall, scenario_seed);
  scenario::CountryScenario b =
      scenario::make_country(country, scenario::Scale::kSmall, scenario_seed);
  const std::string code(scenario::country_code(country));

  const std::uint64_t baseline = a.network->fingerprint();
  ctx.expect(baseline == b.network->fingerprint(), "longit/baseline-build",
             "same (country, seed) scenario builds differ");

  // Epoch 0 / inert plans leave the baseline untouched.
  longit::EvolutionPlan inert;  // all probabilities zero
  auto none = longit::apply_evolution(*a.network, code, inert, max_epoch);
  ctx.expect(none.empty() && a.network->fingerprint() == baseline,
             "longit/inert-plan", "inert plan mutated the network");
  auto zero = longit::apply_evolution(*a.network, code, plan, 0);
  ctx.expect(zero.empty() && a.network->fingerprint() == baseline,
             "longit/epoch-zero", "epoch 0 replay mutated the network");

  // Same (plan, site, epoch) on independent builds: identical fingerprint
  // and identical ground truth.
  auto ha = longit::apply_evolution(*a.network, code, plan, max_epoch);
  auto hb = longit::apply_evolution(*b.network, code, plan, max_epoch);
  ctx.expect(a.network->fingerprint() == b.network->fingerprint(),
             "longit/replay-fingerprint",
             "same plan+seed+epoch produced different network fingerprints");
  ctx.expect(churn_digest(ha) == churn_digest(hb), "longit/replay-churn",
             "same plan+seed+epoch produced different churn ground truth");

  // Any epoch that churned must move the fingerprint off the baseline.
  if (!ha.empty()) {
    ctx.expect(a.network->fingerprint() != baseline, "longit/churn-visible",
               "churn reported but network fingerprint unchanged");
  }

  // Plan JSON round-trip.
  auto round = longit::evolution_from_json(longit::to_json(plan));
  ctx.expect(round.has_value() && *round == plan, "longit/plan-roundtrip",
             "EvolutionPlan JSON round-trip not equal");
}

void check_diff(CaseContext& ctx) {
  Rng& rng = ctx.rng;
  std::vector<report::EndpointEpochState> prev, next;
  const int n = 4 + static_cast<int>(rng.range(0, 8));
  for (int i = 0; i < n; ++i) prev.push_back(draw_state(rng, i));
  for (int i = 0; i < n; ++i) next.push_back(draw_state(rng, i));

  const report::EpochDiff self = report::diff_epochs(prev, prev, 0, 1);
  ctx.expect(!self.any(), "longit/diff-self", "diffing an epoch against itself non-empty");

  const report::EpochDiff diff = report::diff_epochs(prev, next, 0, 1);
  auto round = report::epoch_diff_from_json(report::to_json(diff));
  ctx.expect(round.has_value() && *round == diff, "longit/diff-roundtrip",
             "EpochDiff JSON round-trip not equal");
}

void check_ckms(CaseContext& ctx) {
  Rng& rng = ctx.rng;
  const std::size_t n = 500 + static_cast<std::size_t>(rng.range(0, 1500));
  std::vector<std::uint64_t> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) samples.push_back(rng.uniform(10'000));

  obs::CkmsQuantiles sketch, replay, lo, hi;
  for (std::size_t i = 0; i < n; ++i) {
    sketch.observe(samples[i]);
    replay.observe(samples[i]);
    (i < n / 2 ? lo : hi).observe(samples[i]);
  }
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  auto exact_rank = [&](std::uint64_t v) {
    // Rank range covered by value v in the sorted stream: [first, last].
    auto first = std::lower_bound(sorted.begin(), sorted.end(), v);
    auto last = std::upper_bound(sorted.begin(), sorted.end(), v);
    return std::pair<double, double>(
        static_cast<double>(first - sorted.begin()) + 1.0,
        static_cast<double>(last - sorted.begin()));
  };
  // Shard merge: the bound degrades to at most the sum of operand errors.
  lo.merge_from(hi);
  for (const obs::QuantileTarget& t : sketch.targets()) {
    const double target_rank =
        std::max(1.0, std::ceil(t.percent / 100.0 * static_cast<double>(n)));
    const double tol = t.rank_error * static_cast<double>(n) + 1.0;
    auto [rank_lo, rank_hi] = exact_rank(sketch.query(t.percent));
    ctx.expect(rank_lo <= target_rank + tol && rank_hi >= target_rank - tol,
               "longit/ckms-error",
               "p" + std::to_string(t.percent) + " outside rank-error bound");
    ctx.expect(sketch.query(t.percent) == replay.query(t.percent),
               "longit/ckms-replay", "same stream, different answer");
    const double merged_tol = 2.0 * t.rank_error * static_cast<double>(n) + 1.0;
    auto [m_lo, m_hi] = exact_rank(lo.query(t.percent));
    ctx.expect(m_lo <= target_rank + merged_tol && m_hi >= target_rank - merged_tol,
               "longit/ckms-merge",
               "merged p" + std::to_string(t.percent) + " outside 2x bound");
  }
  ctx.expect(sketch.count() == n && lo.count() == n, "longit/ckms-count",
             "sketch count does not match stream length");
}

}  // namespace

void run_longit_case(CaseContext& ctx) {
  check_replay_identity(ctx);
  check_diff(ctx);
  check_ckms(ctx);
}

}  // namespace cen::check
