#include "check/check.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "check/engines.hpp"
#include "core/json.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"

namespace cen::check {

namespace {

constexpr Engine kAllEngines[] = {Engine::kRoundTrip, Engine::kInvariant,
                                  Engine::kCacheReplay, Engine::kMlOracle,
                                  Engine::kWorldGen, Engine::kAmbig,
                                  Engine::kLongit};

struct CaseResult {
  std::vector<CheckFailure> failures;
  std::uint64_t checks = 0;
};

CaseResult execute_case(Engine engine, std::uint64_t case_seed, int budget) {
  CaseResult out;
  CaseContext ctx;
  ctx.engine = engine;
  ctx.case_seed = case_seed;
  ctx.budget = budget;
  ctx.rng = Rng(mix64(case_seed ^ engine_salt(engine)));
  ctx.failures = &out.failures;
  switch (engine) {
    case Engine::kRoundTrip: run_roundtrip_case(ctx); break;
    case Engine::kInvariant: run_invariant_case(ctx); break;
    case Engine::kCacheReplay: run_cache_replay_case(ctx); break;
    case Engine::kMlOracle: run_ml_oracle_case(ctx); break;
    case Engine::kWorldGen: run_worldgen_case(ctx); break;
    case Engine::kAmbig: run_ambig_case(ctx); break;
    case Engine::kLongit: run_longit_case(ctx); break;
    case Engine::kSelfTest: run_selftest_case(ctx); break;
  }
  out.checks = ctx.checks;
  return out;
}

/// Smallest mutation budget in [1, failure.budget] at which the case
/// still produces a failure for the same target. Budgets are small (<=
/// ~16), so a linear scan from below finds the exact minimum.
int minimize_budget(const CheckFailure& failure) {
  for (int b = 1; b < failure.budget; ++b) {
    CaseResult r = execute_case(failure.engine, failure.seed, b);
    for (const CheckFailure& f : r.failures) {
      if (f.target == failure.target) return b;
    }
  }
  return failure.budget;
}

void append_format(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string_view engine_name(Engine e) {
  switch (e) {
    case Engine::kRoundTrip: return "roundtrip";
    case Engine::kInvariant: return "invariant";
    case Engine::kCacheReplay: return "cache-replay";
    case Engine::kMlOracle: return "ml-oracle";
    case Engine::kWorldGen: return "worldgen";
    case Engine::kAmbig: return "ambig";
    case Engine::kLongit: return "longit";
    case Engine::kSelfTest: return "self-test";
  }
  return "unknown";
}

std::optional<Engine> engine_from_name(std::string_view name) {
  if (name == "roundtrip" || name == "round-trip") return Engine::kRoundTrip;
  if (name == "invariant") return Engine::kInvariant;
  if (name == "cache-replay" || name == "cache") return Engine::kCacheReplay;
  if (name == "ml-oracle" || name == "ml") return Engine::kMlOracle;
  if (name == "worldgen" || name == "world") return Engine::kWorldGen;
  if (name == "ambig" || name == "cenambig") return Engine::kAmbig;
  if (name == "longit" || name == "longitudinal") return Engine::kLongit;
  if (name == "self-test" || name == "selftest") return Engine::kSelfTest;
  return std::nullopt;
}

const std::vector<Engine>& all_engines() {
  static const std::vector<Engine> engines(std::begin(kAllEngines),
                                           std::end(kAllEngines));
  return engines;
}

std::string CheckFailure::repro() const {
  std::string out = "cencheck --engine ";
  out += engine_name(engine);
  append_format(out, " --seed %llu --budget %d --iterations 1",
                static_cast<unsigned long long>(seed), minimized_budget);
  return out;
}

std::uint64_t engine_case_count(Engine engine, std::uint64_t iterations) {
  auto at_least_one = [](std::uint64_t n) { return n == 0 ? 1 : n; };
  switch (engine) {
    case Engine::kRoundTrip: return at_least_one(iterations);
    // One invariant case is a faulted netsim TTL sweep; one ml-oracle
    // case includes a forest fit. Both cost orders of magnitude more
    // than a codec round-trip, so they scale down from `iterations`.
    case Engine::kInvariant: return at_least_one(iterations / 20);
    case Engine::kMlOracle: return at_least_one(iterations / 10);
    // A cache-replay case is a whole warm campaign run.
    case Engine::kCacheReplay: return std::clamp<std::uint64_t>(iterations / 500, 1, 24);
    // A worldgen case generates (and re-generates) a small synthetic world.
    case Engine::kWorldGen: return at_least_one(iterations / 50);
    // An ambig case replays three full cenambig measurements.
    case Engine::kAmbig: return std::clamp<std::uint64_t>(iterations / 250, 1, 12);
    // A longit case builds (and evolves) two scenario networks.
    case Engine::kLongit: return std::clamp<std::uint64_t>(iterations / 100, 1, 16);
    case Engine::kSelfTest: return at_least_one(iterations);
  }
  return at_least_one(iterations);
}

std::vector<CheckFailure> run_case(Engine engine, std::uint64_t case_seed, int budget,
                                   std::uint64_t* checks) {
  CaseResult r = execute_case(engine, case_seed, budget);
  if (checks != nullptr) *checks += r.checks;
  return std::move(r.failures);
}

bool CheckReport::ok() const {
  for (const EngineStats& s : stats) {
    if (s.failures != 0) return false;
  }
  return true;
}

CheckReport run_checks(const CheckOptions& options) {
  CheckReport report;
  report.seed = options.seed;
  report.iterations = options.iterations;
  report.mutation_budget = options.mutation_budget;

  const std::vector<Engine>& engines =
      options.engines.empty() ? all_engines() : options.engines;
  const int threads =
      options.threads == 0 ? ThreadPool::hardware_threads() : options.threads;

  for (Engine engine : engines) {
    const std::uint64_t cases = engine_case_count(engine, options.iterations);
    std::vector<CaseResult> results(cases);
    auto one = [&](int, std::size_t index) {
      // Case seeds are offsets from the run seed, so `--seed N` replays
      // exactly the failing case regardless of how many cases ran.
      const std::uint64_t case_seed = options.seed + index;
      results[index] = execute_case(engine, case_seed, options.mutation_budget);
    };
    if (threads <= 1) {
      for (std::size_t i = 0; i < cases; ++i) one(0, i);
    } else {
      ThreadPool pool(threads);
      pool.parallel_for(cases, one);
    }

    EngineStats stats;
    stats.engine = engine;
    stats.cases = cases;
    // Merge in case order — identical for every thread count.
    for (CaseResult& r : results) {
      stats.checks += r.checks;
      stats.failures += r.failures.size();
      for (CheckFailure& f : r.failures) {
        if (report.failures.size() < options.max_failures) {
          report.failures.push_back(std::move(f));
        } else {
          ++report.dropped_failures;
        }
      }
    }
    report.stats.push_back(stats);
  }

  if (options.minimize) {
    for (CheckFailure& f : report.failures) {
      f.minimized_budget = minimize_budget(f);
    }
  }
  return report;
}

std::string CheckReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("tool").value("cencheck");
  w.key("seed").value(static_cast<std::uint64_t>(seed));
  w.key("iterations").value(static_cast<std::uint64_t>(iterations));
  w.key("mutation_budget").value(mutation_budget);
  w.key("ok").value(ok());
  w.key("engines").begin_array();
  for (const EngineStats& s : stats) {
    w.begin_object();
    w.key("engine").value(engine_name(s.engine));
    w.key("cases").value(static_cast<std::uint64_t>(s.cases));
    w.key("checks").value(static_cast<std::uint64_t>(s.checks));
    w.key("failures").value(static_cast<std::uint64_t>(s.failures));
    w.end_object();
  }
  w.end_array();
  w.key("failures").begin_array();
  for (const CheckFailure& f : failures) {
    w.begin_object();
    w.key("engine").value(engine_name(f.engine));
    w.key("seed").value(static_cast<std::uint64_t>(f.seed));
    w.key("target").value(f.target);
    w.key("detail").value(f.detail);
    w.key("budget").value(f.budget);
    w.key("minimized_budget").value(f.minimized_budget);
    w.key("repro").value(f.repro());
    w.end_object();
  }
  w.end_array();
  w.key("dropped_failures").value(static_cast<std::uint64_t>(dropped_failures));
  w.end_object();
  return w.str();
}

std::string CheckReport::summary() const {
  std::string out;
  for (const EngineStats& s : stats) {
    append_format(out, "%-12s  %8llu cases  %10llu checks  %6llu failures\n",
                  std::string(engine_name(s.engine)).c_str(),
                  static_cast<unsigned long long>(s.cases),
                  static_cast<unsigned long long>(s.checks),
                  static_cast<unsigned long long>(s.failures));
  }
  for (const CheckFailure& f : failures) {
    out += "FAIL ";
    out += f.target;
    out += ": ";
    out += f.detail;
    out += "\n  repro: ";
    out += f.repro();
    out += "\n";
  }
  if (dropped_failures > 0) {
    append_format(out, "(+%llu further failures not shown)\n",
                  static_cast<unsigned long long>(dropped_failures));
  }
  out += ok() ? "OK\n" : "FAILURES FOUND\n";
  return out;
}

std::uint64_t engine_salt(Engine e) {
  switch (e) {
    case Engine::kRoundTrip: return 0x726f756e64747269ull;   // "roundtri"
    case Engine::kInvariant: return 0x696e76617269616eull;   // "invarian"
    case Engine::kCacheReplay: return 0x6361636865727031ull; // "cacherp1"
    case Engine::kMlOracle: return 0x6d6c6f7261636c65ull;    // "mloracle"
    case Engine::kWorldGen: return 0x776f726c6467656eull;    // "worldgen"
    case Engine::kAmbig: return 0x616d626967666e67ull;       // "ambigfng"
    case Engine::kLongit: return 0x6c6f6e6769747564ull;      // "longitud"
    case Engine::kSelfTest: return 0x73656c6674657374ull;    // "selftest"
  }
  return 0;
}

void run_selftest_case(CaseContext& ctx) {
  // A deliberately planted bug: every case fails once the mutation budget
  // reaches 3. Tests use this to prove the harness catches a failure,
  // replays it from its printed seed, and minimizes the budget to 3.
  const std::uint64_t witness = ctx.rng.next();
  ctx.expect(ctx.budget < 3, "selftest/planted",
             "planted failure, witness=" + std::to_string(witness));
}

}  // namespace cen::check
