// Cache-replay engine: a campaign warm-started from a damaged result
// cache must either serve a record verbatim (when it is intact) or
// cleanly invalidate it and re-execute — and in every case finish with
// output byte-identical to the cold run. Crashing, or silently splicing
// damaged bytes into the output, is the bug class this engine hunts (it
// is how a crash-resumed measurement campaign publishes wrong data).
//
// One case = one corrupted copy of a golden cache file + one warm run.
// The golden campaign (cold run, pristine cache) is built once per
// process and shared read-only by every case.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "check/engines.hpp"
#include "core/bytes.hpp"

namespace cen::check {

namespace {

campaign::CampaignSpec golden_spec() {
  campaign::CampaignSpec spec;
  spec.name = "check-cache-replay";
  spec.countries = {scenario::Country::kKZ};
  spec.scale = scenario::Scale::kSmall;
  spec.seed = 11;
  spec.max_endpoints = 4;
  spec.max_domains = 2;
  spec.fuzz_max_endpoints = 2;
  spec.trace.repetitions = 3;
  spec.trace.max_ttl = 24;
  spec.batch_size = 3;
  return spec;
}

struct Golden {
  std::string jsonl;
  std::string summary;
  std::string cache_text;  // the pristine cache file the cold run wrote
  bool ok = false;
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string text;
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return n == text.size();
}

std::string scratch_path(std::string_view tag) {
  std::error_code ec;
  std::filesystem::path dir = std::filesystem::temp_directory_path(ec);
  if (ec) dir = ".";
  return (dir / ("cencheck-" + std::string(tag) + ".jsonl")).string();
}

const Golden& golden() {
  static Golden g;
  static std::once_flag flag;
  std::call_once(flag, [] {
    const std::string path = scratch_path("golden");
    std::remove(path.c_str());
    campaign::RunControl control;
    control.threads = 0;  // inline hermetic
    control.cache_path = path;
    const campaign::CampaignResult cold = campaign::run(golden_spec(), control);
    g.jsonl = cold.to_jsonl();
    g.summary = cold.summary_json();
    g.cache_text = read_file(path);
    g.ok = cold.complete && !g.cache_text.empty();
    std::remove(path.c_str());
  });
  return g;
}

/// One structured corruption of a JSONL cache text.
void corrupt(std::string& text, Rng& rng) {
  if (text.empty()) return;
  std::vector<std::size_t> line_starts{0};
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '\n') line_starts.push_back(i + 1);
  }
  switch (rng.uniform(7)) {
    case 0:  // truncate mid-record (torn tail of a crash)
      text.resize(rng.index(text.size()) + 1);
      break;
    case 1:  // flip one byte (bit rot / bad sector)
      text[rng.index(text.size())] ^= static_cast<char>(1 << rng.uniform(8));
      break;
    case 2: {  // delete a whole line
      const std::size_t li = rng.index(line_starts.size());
      const std::size_t begin = line_starts[li];
      const std::size_t end =
          li + 1 < line_starts.size() ? line_starts[li + 1] : text.size();
      text.erase(begin, end - begin);
      break;
    }
    case 3: {  // duplicate a line (concurrent writers / replayed append)
      const std::size_t li = rng.index(line_starts.size());
      const std::size_t begin = line_starts[li];
      const std::size_t end =
          li + 1 < line_starts.size() ? line_starts[li + 1] : text.size();
      text.insert(text.size(), text, begin, end - begin);
      break;
    }
    case 4: {  // swap two lines (reordered appends)
      if (line_starts.size() < 2) break;
      const std::size_t a = rng.index(line_starts.size() - 1);
      const std::size_t a_end = line_starts[a + 1];
      const std::size_t b_end =
          a + 2 < line_starts.size() ? line_starts[a + 2] : text.size();
      std::string first = text.substr(line_starts[a], a_end - line_starts[a]);
      std::string second = text.substr(a_end, b_end - a_end);
      if (second.empty() || second.back() != '\n') second += '\n';
      text = text.substr(0, line_starts[a]) + second + first + text.substr(b_end);
      break;
    }
    case 5: {  // insert a garbage line
      static constexpr const char* kGarbage[] = {
          "not json at all\n",
          "{\"key\":\"0123456789abcdef0123456789abcdef\"}\n",
          "{\"key\":123,\"result\":{}}\n",
          "{]\n",
          "\n",
      };
      const std::size_t li = rng.index(line_starts.size());
      text.insert(line_starts[li], kGarbage[rng.uniform(5)]);
      break;
    }
    case 6: {  // overwrite a run of bytes with random junk
      const std::size_t at = rng.index(text.size());
      const std::size_t len = std::min<std::size_t>(1 + rng.uniform(16),
                                                    text.size() - at);
      for (std::size_t i = 0; i < len; ++i) {
        text[at + i] = static_cast<char>(rng.uniform(256));
      }
      break;
    }
  }
}

}  // namespace

void run_cache_replay_case(CaseContext& ctx) {
  const Golden& g = golden();
  if (!g.ok) {
    ctx.fail("cache-replay/golden", "golden cold campaign did not complete");
    return;
  }

  std::string damaged = g.cache_text;
  for (int i = 0; i < std::max(1, ctx.budget); ++i) corrupt(damaged, ctx.rng);

  const std::string path =
      scratch_path("case-" + std::to_string(ctx.case_seed));
  std::remove(path.c_str());
  if (!write_file(path, damaged)) {
    ctx.fail("cache-replay/io", "could not write scratch cache file " + path);
    return;
  }

  try {
    campaign::RunControl control;
    control.threads = 0;
    control.cache_path = path;
    const campaign::CampaignResult warm = campaign::run(golden_spec(), control);
    ctx.expect(warm.complete, "cache-replay/complete",
               "warm run against a damaged cache did not complete");
    ctx.expect(warm.to_jsonl() == g.jsonl, "cache-replay/jsonl",
               "warm-run records differ from the cold run (damaged bytes "
               "leaked into output or a record was lost)");
    ctx.expect(warm.summary_json() == g.summary, "cache-replay/summary",
               "warm-run summary differs from the cold run");
  } catch (const std::exception& e) {
    ctx.fail("cache-replay/crash",
             std::string("campaign crashed on a damaged cache: ") + e.what());
  }
  std::remove(path.c_str());
}

}  // namespace cen::check
