// cencheck `ambig` engine: the invariants behind the ambiguity-
// fingerprinting subsystem.
//
//   inert-equivalence    a device with default (inert) ReassemblyQuirks
//                        classifies unsegmented traffic byte-identically
//                        to the pre-reassembly per-packet path (the
//                        assembled-bypass oracle);
//   same-seed replay     two cenambig runs with identical options and
//                        measurement-epoch seed produce byte-identical
//                        reports;
//   order stability      the discrepancy vector is invariant under a
//                        permuted probe execution order (order_salt).
#include <string>

#include "cenambig/cenambig.hpp"
#include "censor/device.hpp"
#include "censor/vendors.hpp"
#include "check/engines.hpp"
#include "core/strings.hpp"
#include "net/http.hpp"
#include "net/tls.hpp"
#include "report/json_report.hpp"
#include "scenario/ambig.hpp"
#include "scenario/builder.hpp"

namespace cen::check {

namespace {

/// A random complete single-packet payload of the kinds the pre-PR engine
/// classified inline: an HTTP request or a TLS ClientHello over a domain
/// that may or may not match the device's rules.
Bytes random_message(Rng& rng, const std::string& forbidden) {
  const std::string domains[] = {forbidden, "w" + forbidden, "benign.example",
                                 "cdn." + forbidden, "example.net"};
  const std::string& d = domains[rng.index(5)];
  if (rng.chance(0.4)) return net::ClientHello::make(d).serialize();
  return net::HttpRequest::get(d).serialize_bytes();
}

}  // namespace

void run_ambig_case(CaseContext& ctx) {
  // ---- 1. Inert-equivalence oracle. ----
  {
    censor::DeviceConfig cfg;
    cfg.id = "ambig-check";
    censor::RuleSet rules;
    rules.add("blocked.example", censor::MatchStyle::kSuffix);
    cfg.http_rules = rules;
    cfg.sni_rules = rules;
    // Inert by default; the bypassed twin is the pre-PR per-packet path.
    censor::Device with_reassembly(cfg);
    censor::Device bypassed(cfg);
    bypassed.set_assembled_bypass(true);

    const int n = std::max(4, ctx.budget * 4);
    std::uint32_t seq = ctx.rng.next() & 0xffff;
    for (int i = 0; i < n; ++i) {
      Bytes payload = random_message(ctx.rng, "www.blocked.example");
      net::Packet pkt = net::make_tcp_packet(
          net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(10, 9, 9, 9), 40000, 80,
          net::TcpFlags::kPsh | net::TcpFlags::kAck, seq, 1, payload);
      seq += static_cast<std::uint32_t>(payload.size());
      const SimTime now = static_cast<SimTime>(i) * 10;
      censor::Verdict a = with_reassembly.inspect(pkt, now);
      censor::Verdict b = bypassed.inspect(pkt, now);
      ctx.expect(a.triggered == b.triggered && a.drop == b.drop,
                 "ambig.inert_equivalence",
                 "inert reassembly diverged from the per-packet path on message " +
                     std::to_string(i));
    }
  }

  // ---- 2. Same-seed replay + 3. order stability. ----
  scenario::AmbigScenarioOptions sopts;
  sopts.deployments_per_vendor = 1;
  const std::uint64_t world_seed = ctx.rng.next();
  scenario::AmbigScenario s = scenario::make_ambig(sopts, world_seed);

  ambig::AmbigRunOptions ropts;
  ropts.client = s.client;
  const std::size_t pick = ctx.rng.index(s.deployments.size());
  ropts.endpoint = s.deployments[pick].endpoint;
  ropts.test_domain = s.test_domain;
  ropts.control_domain = s.control_domain;
  ropts.ambig.repetitions = 1;  // keep one check case cheap
  ropts.ambig.retries = 0;
  ropts.common.seed = ctx.rng.next();

  ambig::AmbigReport first = ambig::run(*s.network, ropts);
  ambig::AmbigReport replay = ambig::run(*s.network, ropts);
  ctx.expect(report::to_json(first) == report::to_json(replay), "ambig.same_seed",
             "same-seed cenambig replay diverged against " +
                 s.deployments[pick].device_id);

  ropts.ambig.order_salt = ctx.rng.next() | 1;  // non-zero: permuted order
  ambig::AmbigReport permuted = ambig::run(*s.network, ropts);
  // NaN-aware elementwise compare (untestable probes read NaN, and
  // NaN != NaN would make vector operator== useless here).
  auto same_vector = [](const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const bool nan_a = a[i] != a[i];
      const bool nan_b = b[i] != b[i];
      if (nan_a != nan_b) return false;
      if (!nan_a && a[i] != b[i]) return false;
    }
    return true;
  };
  ctx.expect(same_vector(first.discrepancy_vector(), permuted.discrepancy_vector()),
             "ambig.order_stability",
             "discrepancy vector changed under permuted probe order (salt " +
                 std::to_string(ropts.ambig.order_salt) + ") against " +
                 s.deployments[pick].device_id);
}

}  // namespace cen::check
