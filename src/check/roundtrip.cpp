// Round-trip engine: structure-aware mutational fuzzing of every parse ∘
// serialize pair in the codebase.
//
// Two contracts are checked per codec:
//   clean     a randomly generated, structurally valid value must survive
//             serialize → parse → serialize byte-identically (or, for the
//             JSON report codecs, reach a fixed point after one decode);
//   mutated   after `budget` random byte mutations, parse must either
//             throw ParseError or produce a value whose re-serialization
//             re-parses to the same bytes (serialize ∘ parse idempotent —
//             no silent divergence, no crash, ever).
#include <optional>
#include <string>

#include "censor/device.hpp"
#include "check/engines.hpp"
#include "core/bytes.hpp"
#include "core/json.hpp"
#include "net/dns.hpp"
#include "net/http.hpp"
#include "net/icmp.hpp"
#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "net/tcp.hpp"
#include "net/tls.hpp"
#include "net/udp.hpp"
#include "report/from_json.hpp"
#include "report/json_report.hpp"

namespace cen::check {

namespace {

using net::Ipv4Address;

std::string hex_preview(BytesView b, std::size_t limit = 24) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (std::size_t i = 0; i < b.size() && i < limit; ++i) {
    out.push_back(kHex[b[i] >> 4]);
    out.push_back(kHex[b[i] & 0xf]);
  }
  if (b.size() > limit) out += "...";
  return out;
}

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.uniform(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(256));
  return out;
}

std::string random_hostname(Rng& rng) {
  static constexpr char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  const std::size_t labels = 1 + rng.uniform(3);
  for (std::size_t l = 0; l < labels; ++l) {
    if (l > 0) out += '.';
    const std::size_t len = 1 + rng.uniform(12);
    for (std::size_t i = 0; i < len; ++i) {
      out += kChars[rng.uniform(sizeof(kChars) - 1)];
    }
  }
  return out;
}

Ipv4Address random_ip(Rng& rng) {
  return Ipv4Address(static_cast<std::uint32_t>(rng.next() >> 32));
}

/// Apply `budget` random byte-level mutations (bit flips, byte rewrites,
/// truncation, insertion, deletion) in place.
void mutate(Bytes& b, Rng& rng, int budget) {
  for (int i = 0; i < budget; ++i) {
    if (b.empty()) {
      b.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
      continue;
    }
    switch (rng.uniform(5)) {
      case 0:  // flip one bit
        b[rng.index(b.size())] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
        break;
      case 1:  // rewrite one byte
        b[rng.index(b.size())] = static_cast<std::uint8_t>(rng.uniform(256));
        break;
      case 2:  // truncate the tail
        b.resize(rng.index(b.size()) + 1);
        break;
      case 3:  // insert one byte
        b.insert(b.begin() + static_cast<std::ptrdiff_t>(rng.uniform(b.size() + 1)),
                 static_cast<std::uint8_t>(rng.uniform(256)));
        break;
      case 4:  // delete one byte
        b.erase(b.begin() + static_cast<std::ptrdiff_t>(rng.index(b.size())));
        break;
    }
  }
}

/// The mutated-bytes contract for a byte codec: `reserialize(m)` returns
/// the re-serialization of parse(m) (or nullopt if parse threw
/// ParseError). Any other exception, or a re-serialization that fails to
/// re-parse to the same bytes, is a failure.
template <typename Reserialize>
void check_mutation_contract(CaseContext& ctx, std::string_view target, Bytes m,
                             const Reserialize& reserialize) {
  mutate(m, ctx.rng, ctx.budget);
  std::optional<Bytes> b2;
  try {
    b2 = reserialize(BytesView(m));
  } catch (const ParseError&) {
    ctx.expect(true, target, "");  // clean rejection
    return;
  } catch (const std::exception& e) {
    ctx.fail(target, std::string("non-ParseError exception on mutated input: ") +
                         e.what() + " input=" + hex_preview(m));
    return;
  }
  if (!b2.has_value()) {
    ctx.expect(true, target, "");
    return;
  }
  try {
    std::optional<Bytes> b3 = reserialize(BytesView(*b2));
    ctx.expect(b3.has_value() && *b3 == *b2, target,
               "serialize-parse not idempotent on mutated input; input=" +
                   hex_preview(m) + " first=" + hex_preview(*b2));
  } catch (const std::exception& e) {
    ctx.fail(target, std::string("re-parse of own serialization threw: ") + e.what() +
                         " bytes=" + hex_preview(*b2));
  }
}

// ---------------------------------------------------------------- IPv4 --

net::Ipv4Header random_ipv4(Rng& rng) {
  net::Ipv4Header h;
  h.tos = static_cast<std::uint8_t>(rng.uniform(256));
  h.total_length = static_cast<std::uint16_t>(20 + rng.uniform(1480));
  h.identification = static_cast<std::uint16_t>(rng.uniform(65536));
  h.flags = static_cast<std::uint8_t>(rng.uniform(8));
  h.fragment_offset = static_cast<std::uint16_t>(rng.uniform(0x2000));
  h.ttl = static_cast<std::uint8_t>(rng.uniform(256));
  const net::IpProto protos[] = {net::IpProto::kIcmp, net::IpProto::kTcp,
                                 net::IpProto::kUdp};
  h.protocol = protos[rng.uniform(3)];
  h.src = random_ip(rng);
  h.dst = random_ip(rng);
  return h;
}

void check_ipv4(CaseContext& ctx) {
  net::Ipv4Header h = random_ipv4(ctx.rng);
  const Bytes b1 = h.serialize();
  ctx.expect(b1.size() == 20, "roundtrip/ipv4", "header serialized to " +
                                                    std::to_string(b1.size()) + " bytes");
  try {
    ByteReader r(b1);
    net::Ipv4Header p = net::Ipv4Header::parse(r);
    ctx.expect(p == h, "roundtrip/ipv4",
               "parse(serialize(h)) != h for " + hex_preview(b1));
  } catch (const std::exception& e) {
    ctx.fail("roundtrip/ipv4", std::string("parse of own serialization threw: ") + e.what());
  }
  check_mutation_contract(ctx, "roundtrip/ipv4-mutated", b1, [](BytesView m) {
    ByteReader r(m);
    return net::Ipv4Header::parse(r).serialize();
  });
}

// ----------------------------------------------------------------- TCP --

net::TcpHeader random_tcp(Rng& rng, bool with_options) {
  net::TcpHeader h;
  h.src_port = static_cast<std::uint16_t>(rng.uniform(65536));
  h.dst_port = static_cast<std::uint16_t>(rng.uniform(65536));
  h.seq = static_cast<std::uint32_t>(rng.next());
  h.ack = static_cast<std::uint32_t>(rng.next());
  h.flags = static_cast<std::uint8_t>(rng.uniform(64));
  h.window = static_cast<std::uint16_t>(rng.uniform(65536));
  h.urgent = static_cast<std::uint16_t>(rng.uniform(65536));
  if (with_options) {
    // Cap the generated wire size at 40 bytes (the 4-bit offset ceiling);
    // oversize lists are exercised separately and must throw.
    std::size_t wire = 0;
    const std::size_t n = rng.uniform(4);
    for (std::size_t i = 0; i < n; ++i) {
      net::TcpOption o;
      switch (rng.uniform(5)) {
        case 0: o = net::TcpOption::mss(static_cast<std::uint16_t>(rng.uniform(65536))); break;
        case 1: o = net::TcpOption::window_scale(static_cast<std::uint8_t>(rng.uniform(15))); break;
        case 2: o = net::TcpOption::sack_permitted(); break;
        case 3: o = net::TcpOption::nop(); break;
        default:
          o.kind = static_cast<std::uint8_t>(5 + rng.uniform(250));
          o.data = random_bytes(rng, 8);
          break;
      }
      const std::size_t cost = (o.kind == 1) ? 1 : 2 + o.data.size();
      if (wire + cost > 36) break;  // leave room for padding
      wire += cost;
      h.options.push_back(std::move(o));
    }
  }
  return h;
}

void check_tcp(CaseContext& ctx) {
  net::TcpHeader h = random_tcp(ctx.rng, true);
  Bytes b1;
  try {
    b1 = h.serialize();
  } catch (const std::exception& e) {
    ctx.fail("roundtrip/tcp", std::string("serialize of in-range options threw: ") + e.what());
    return;
  }
  try {
    ByteReader r(b1);
    net::TcpHeader p = net::TcpHeader::parse(r);
    const Bytes b2 = p.serialize();
    ctx.expect(b2 == b1, "roundtrip/tcp",
               "serialize-parse-serialize diverged for " + hex_preview(b1, 60));
  } catch (const std::exception& e) {
    ctx.fail("roundtrip/tcp", std::string("parse of own serialization threw: ") + e.what());
  }

  // Oversize option lists must throw, not wrap the 4-bit data offset.
  net::TcpHeader big = random_tcp(ctx.rng, false);
  for (int i = 0; i < 30; ++i) {
    big.options.push_back(net::TcpOption::mss(1460));  // 4 bytes each
  }
  bool threw = false;
  try {
    (void)big.serialize();
  } catch (const ParseError&) {
    threw = true;
  }
  ctx.expect(threw, "roundtrip/tcp-oversize",
             "120-byte option list serialized without throwing");

  check_mutation_contract(ctx, "roundtrip/tcp-mutated", b1, [](BytesView m) {
    ByteReader r(m);
    return net::TcpHeader::parse(r).serialize();
  });
}

// ----------------------------------------------------------------- UDP --

void check_udp(CaseContext& ctx) {
  net::UdpDatagram d = net::make_udp_datagram(
      random_ip(ctx.rng), random_ip(ctx.rng),
      static_cast<std::uint16_t>(ctx.rng.uniform(65536)),
      static_cast<std::uint16_t>(ctx.rng.uniform(65536)), random_bytes(ctx.rng, 64),
      static_cast<std::uint8_t>(1 + ctx.rng.uniform(255)));
  const Bytes b1 = d.serialize();
  try {
    net::UdpDatagram p = net::UdpDatagram::parse(b1);
    const Bytes b2 = p.serialize();
    ctx.expect(b2 == b1, "roundtrip/udp",
               "serialize-parse-serialize diverged for " + hex_preview(b1, 40));
  } catch (const std::exception& e) {
    ctx.fail("roundtrip/udp", std::string("parse of own serialization threw: ") + e.what());
  }
  check_mutation_contract(ctx, "roundtrip/udp-mutated", b1, [](BytesView m) {
    return net::UdpDatagram::parse(m).serialize();
  });
}

// ---------------------------------------------------------------- ICMP --

net::Packet random_packet(CaseContext& ctx, bool with_options) {
  net::Packet p = net::make_tcp_packet(
      random_ip(ctx.rng), random_ip(ctx.rng),
      static_cast<std::uint16_t>(ctx.rng.uniform(65536)),
      static_cast<std::uint16_t>(ctx.rng.uniform(65536)),
      static_cast<std::uint8_t>(ctx.rng.uniform(64)),
      static_cast<std::uint32_t>(ctx.rng.next()),
      static_cast<std::uint32_t>(ctx.rng.next()), random_bytes(ctx.rng, 120),
      static_cast<std::uint8_t>(1 + ctx.rng.uniform(64)));
  if (with_options) p.tcp = random_tcp(ctx.rng, true);
  return p;
}

void check_icmp(CaseContext& ctx) {
  const net::Packet probe = random_packet(ctx, false);
  const Bytes full = probe.serialize();
  const net::QuotePolicy policy = ctx.rng.chance(0.5) ? net::QuotePolicy::kRfc792
                                                      : net::QuotePolicy::kRfc1812Full;
  const Ipv4Address router = random_ip(ctx.rng);
  const net::IcmpTimeExceeded q = net::IcmpTimeExceeded::make(router, full, policy);
  const std::size_t want = std::min(net::quote_limit(policy), full.size());
  ctx.expect(q.quoted.size() == want, "roundtrip/icmp-quote-len",
             "quote is " + std::to_string(q.quoted.size()) + " bytes, want " +
                 std::to_string(want));
  ctx.expect(std::equal(q.quoted.begin(), q.quoted.end(), full.begin()),
             "roundtrip/icmp-quote-prefix",
             "quoted bytes are not a prefix of the original datagram");
  try {
    const net::IcmpTimeExceeded p = net::IcmpTimeExceeded::parse(router, q.serialize());
    ctx.expect(p.quoted == q.quoted && p.router == router, "roundtrip/icmp",
               "ICMP serialize-parse did not preserve the quote");
  } catch (const std::exception& e) {
    ctx.fail("roundtrip/icmp", std::string("parse of own serialization threw: ") + e.what());
  }
}

// --------------------------------------------------- Packet / quoting --

void check_packet_prefix(CaseContext& ctx) {
  const net::Packet p = random_packet(ctx, false);
  const Bytes full = p.serialize();
  Bytes prefix;
  const std::size_t len = 28 + ctx.rng.uniform(full.size() - 28 + 1);
  p.serialize_prefix(prefix, len);
  ctx.expect(prefix.size() == std::min(len, full.size()), "roundtrip/packet-prefix",
             "serialize_prefix produced " + std::to_string(prefix.size()) +
                 " bytes for cap " + std::to_string(len));
  ctx.expect(std::equal(prefix.begin(), prefix.end(), full.begin()),
             "roundtrip/packet-prefix",
             "serialize_prefix is not a prefix of serialize()");

  bool complete = false;
  try {
    const net::Packet q = net::Packet::parse_quoted(prefix, complete);
    ctx.expect(q.ip.src == p.ip.src && q.ip.dst == p.ip.dst, "roundtrip/packet-quoted",
               "quoted parse lost IP addresses");
    ctx.expect(q.tcp.src_port == p.tcp.src_port && q.tcp.dst_port == p.tcp.dst_port &&
                   q.tcp.seq == p.tcp.seq,
               "roundtrip/packet-quoted", "quoted parse lost ports/seq at len " +
                                              std::to_string(prefix.size()));
    const std::size_t n = prefix.size();
    if (n >= 32) {
      ctx.expect(q.tcp.ack == p.tcp.ack, "roundtrip/packet-quoted-ack",
                 "ack not recovered from a " + std::to_string(n) + "-byte quote");
    }
    if (n >= 34) {
      ctx.expect(q.tcp.flags == p.tcp.flags, "roundtrip/packet-quoted-flags",
                 "flags not recovered from a " + std::to_string(n) + "-byte quote");
    }
    if (n >= 36) {
      ctx.expect(q.tcp.window == p.tcp.window, "roundtrip/packet-quoted-window",
                 "window not recovered from a " + std::to_string(n) + "-byte quote");
    }
    if (n >= 40) {
      ctx.expect(complete, "roundtrip/packet-quoted-complete",
                 "full 20-byte TCP header quoted but tcp_complete is false");
    }
  } catch (const std::exception& e) {
    ctx.fail("roundtrip/packet-quoted",
             std::string("parse_quoted threw on a valid quote prefix: ") + e.what());
  }
}

// ----------------------------------------------------------------- DNS --

net::DnsMessage random_dns(CaseContext& ctx) {
  net::DnsMessage m;
  m.id = static_cast<std::uint16_t>(ctx.rng.uniform(65536));
  m.is_response = ctx.rng.chance(0.5);
  m.recursion_desired = ctx.rng.chance(0.5);
  m.recursion_available = ctx.rng.chance(0.5);
  m.authoritative = ctx.rng.chance(0.3);
  const net::DnsRcode rcodes[] = {net::DnsRcode::kNoError, net::DnsRcode::kFormErr,
                                  net::DnsRcode::kServFail, net::DnsRcode::kNxDomain,
                                  net::DnsRcode::kRefused};
  m.rcode = rcodes[ctx.rng.uniform(5)];
  const std::size_t nq = 1 + ctx.rng.uniform(2);
  for (std::size_t i = 0; i < nq; ++i) {
    net::DnsQuestion q;
    q.qname = random_hostname(ctx.rng);
    q.qtype = static_cast<std::uint16_t>(1 + ctx.rng.uniform(16));
    m.questions.push_back(std::move(q));
  }
  const std::size_t na = ctx.rng.uniform(3);
  for (std::size_t i = 0; i < na; ++i) {
    net::DnsAnswer a;
    a.name = random_hostname(ctx.rng);
    a.type = static_cast<std::uint16_t>(1 + ctx.rng.uniform(16));
    a.ttl = static_cast<std::uint32_t>(ctx.rng.uniform(86400));
    a.address = random_ip(ctx.rng);
    m.answers.push_back(std::move(a));
  }
  return m;
}

void check_dns(CaseContext& ctx) {
  const net::DnsMessage m = random_dns(ctx);
  const Bytes b1 = m.serialize();
  try {
    const net::DnsMessage p = net::DnsMessage::parse(b1);
    const Bytes b2 = p.serialize();
    ctx.expect(b2 == b1, "roundtrip/dns",
               "serialize-parse-serialize diverged for " + hex_preview(b1, 48));
  } catch (const std::exception& e) {
    ctx.fail("roundtrip/dns", std::string("parse of own serialization threw: ") + e.what());
  }

  // RFC 1035 compression: an answer name pointing back at the question
  // name (offset 12) must decode to the same name.
  {
    const std::string name = random_hostname(ctx.rng);
    ByteWriter w;
    w.u16(0x1234);
    w.u16(0x8180);
    w.u16(1);  // QD
    w.u16(1);  // AN
    w.u16(0);
    w.u16(0);
    w.raw(net::encode_dns_name(name));
    w.u16(1);
    w.u16(1);
    w.u16(0xc00c);  // pointer to offset 12 (the question name)
    w.u16(1);
    w.u16(1);
    w.u32(300);
    w.u16(4);
    w.u32(random_ip(ctx.rng).value());
    try {
      const net::DnsMessage p = net::DnsMessage::parse(std::move(w).take());
      ctx.expect(p.answers.size() == 1 && p.answers[0].name == name,
                 "roundtrip/dns-pointer",
                 "compression pointer decoded to '" +
                     (p.answers.empty() ? std::string("<none>") : p.answers[0].name) +
                     "', want '" + name + "'");
    } catch (const std::exception& e) {
      ctx.fail("roundtrip/dns-pointer",
               std::string("pointer message failed to parse: ") + e.what());
    }
  }

  // A self-referencing pointer must terminate with ParseError, not loop.
  {
    ByteWriter w;
    w.u16(0x1234);
    w.u16(0x0100);
    w.u16(1);
    w.u16(0);
    w.u16(0);
    w.u16(0);
    w.u16(0xc00c);  // qname: pointer to itself (offset 12)
    w.u16(1);
    w.u16(1);
    bool threw = false;
    try {
      (void)net::DnsMessage::parse(std::move(w).take());
    } catch (const ParseError&) {
      threw = true;
    }
    ctx.expect(threw, "roundtrip/dns-pointer-loop",
               "self-referencing compression pointer did not throw");
  }

  check_mutation_contract(ctx, "roundtrip/dns-mutated", b1, [](BytesView m2) {
    return net::DnsMessage::parse(m2).serialize();
  });
}

// ---------------------------------------------------------------- HTTP --

void check_http(CaseContext& ctx) {
  // Structural differential: serialize() and serialize_into() must agree
  // byte-for-byte on arbitrary (even invalid) field content.
  net::HttpRequest req;
  static constexpr const char* kMethods[] = {"GET", "GE", "get", "POST", "HEAD", ""};
  static constexpr const char* kDelims[] = {"\r\n", "\n", "\r", ""};
  static constexpr const char* kHostWords[] = {"Host: ", "HOST: ", "Host:", "H0st: ",
                                               "Host ", ""};
  req.method = kMethods[ctx.rng.uniform(6)];
  req.path = "/" + random_hostname(ctx.rng);
  req.version = ctx.rng.chance(0.8) ? "HTTP/1.1" : "HtTP/9.9";
  req.request_line_delim = kDelims[ctx.rng.uniform(4)];
  req.host_word = kHostWords[ctx.rng.uniform(6)];
  req.host = random_hostname(ctx.rng);
  req.host_delim = kDelims[ctx.rng.uniform(4)];
  const std::size_t extra = ctx.rng.uniform(3);
  for (std::size_t i = 0; i < extra; ++i) {
    req.extra_headers.emplace_back("X-" + random_hostname(ctx.rng),
                                   random_hostname(ctx.rng));
  }
  const std::string s1 = req.serialize();
  Bytes buf;
  req.serialize_into(buf);
  ctx.expect(s1 == std::string(buf.begin(), buf.end()), "roundtrip/http-differential",
             "serialize() and serialize_into() disagree for method='" + req.method +
                 "' delim=" + std::to_string(req.request_line_delim.size()));

  // A well-formed request must parse back to its own components.
  net::HttpRequest good = net::HttpRequest::get(random_hostname(ctx.rng));
  good.method = "POST";
  good.extra_headers.emplace_back("Accept", "*/*");
  const net::ParsedHttpRequest parsed = net::parse_http_request(good.serialize());
  ctx.expect(parsed.parse_ok && parsed.method == good.method &&
                 parsed.path == good.path && parsed.version == good.version,
             "roundtrip/http-parse", "well-formed request line not recovered");
  ctx.expect(parsed.host.has_value() && *parsed.host == good.host,
             "roundtrip/http-parse", "well-formed Host header not recovered");

  // The parser contract on arbitrary mutated soup: never throws, and a
  // recognized Host value never smuggles a raw CR.
  Bytes soup = to_bytes(s1);
  mutate(soup, ctx.rng, ctx.budget);
  try {
    const net::ParsedHttpRequest p =
        net::parse_http_request(std::string_view(reinterpret_cast<const char*>(soup.data()),
                                                 soup.size()));
    ctx.expect(!p.host.has_value() || p.host->find('\r') == std::string::npos,
               "roundtrip/http-host-cr",
               "parsed Host value contains a bare CR: " + hex_preview(soup, 48));
  } catch (const std::exception& e) {
    ctx.fail("roundtrip/http-parse-mutated",
             std::string("parse_http_request threw: ") + e.what());
  }
}

// ----------------------------------------------------------------- TLS --

net::ClientHello random_hello(CaseContext& ctx, std::string* sni_out) {
  const std::string sni = random_hostname(ctx.rng);
  net::ClientHello hello = net::ClientHello::make(sni);
  *sni_out = sni;
  const net::TlsVersion versions[] = {net::TlsVersion::kTls10, net::TlsVersion::kTls11,
                                      net::TlsVersion::kTls12, net::TlsVersion::kTls13};
  hello.record_version = versions[ctx.rng.uniform(4)];
  hello.legacy_version = versions[ctx.rng.uniform(4)];
  for (auto& b : hello.random) b = static_cast<std::uint8_t>(ctx.rng.uniform(256));
  hello.session_id = random_bytes(ctx.rng, 32);
  if (ctx.rng.chance(0.5)) {
    hello.cipher_suites.clear();
    const std::size_t n = 1 + ctx.rng.uniform(20);
    for (std::size_t i = 0; i < n; ++i) {
      hello.cipher_suites.push_back(static_cast<std::uint16_t>(ctx.rng.uniform(65536)));
    }
  }
  if (ctx.rng.chance(0.5)) {
    std::vector<net::TlsVersion> sv;
    const std::size_t n = 1 + ctx.rng.uniform(4);
    for (std::size_t i = 0; i < n; ++i) sv.push_back(versions[ctx.rng.uniform(4)]);
    hello.set_supported_versions(sv);
  }
  if (ctx.rng.chance(0.3)) hello.add_padding(ctx.rng.uniform(64));
  if (ctx.rng.chance(0.3)) {
    net::TlsExtension ext;
    ext.type = static_cast<std::uint16_t>(ctx.rng.uniform(65536));
    ext.data = random_bytes(ctx.rng, 40);
    hello.extensions.push_back(std::move(ext));
  }
  return hello;
}

void check_tls(CaseContext& ctx) {
  std::string sni;
  const net::ClientHello hello = random_hello(ctx, &sni);
  const Bytes b1 = hello.serialize();
  Bytes buf;
  hello.serialize_into(buf);
  ctx.expect(buf == b1, "roundtrip/tls-differential",
             "serialize() and serialize_into() disagree: " + hex_preview(b1, 48));
  try {
    const net::ClientHello p = net::ClientHello::parse(b1);
    const Bytes b2 = p.serialize();
    ctx.expect(b2 == b1, "roundtrip/tls",
               "serialize-parse-serialize diverged: " + hex_preview(b1, 48));
    ctx.expect(p.sni().has_value() && *p.sni() == sni, "roundtrip/tls-sni",
               "SNI '" + sni + "' not recovered");
  } catch (const std::exception& e) {
    ctx.fail("roundtrip/tls", std::string("parse of own serialization threw: ") + e.what());
  }

  // Every proper truncation must throw (lengths are validated, so a cut
  // record can never parse as a shorter valid hello).
  {
    const std::size_t cut = ctx.rng.index(b1.size());
    bool threw = false;
    try {
      (void)net::ClientHello::parse(BytesView(b1).first(cut));
    } catch (const ParseError&) {
      threw = true;
    }
    ctx.expect(threw, "roundtrip/tls-truncated",
               "truncation to " + std::to_string(cut) + " bytes parsed without error");
  }

  // A malformed supported_versions extension degrades to the legacy
  // version, never a half-read list. Corrupt a valid extension three
  // ways that are each definitely inconsistent: length prefix off by
  // one (odd), truncated body, empty body.
  {
    net::ClientHello h2 = net::ClientHello::make(sni);
    for (auto& ext : h2.extensions) {
      if (ext.type == net::TlsExtensionType::kSupportedVersions) {
        switch (ctx.rng.uniform(3)) {
          case 0: ext.data[0] ^= 1; break;           // odd claimed length
          case 1: ext.data.pop_back(); break;        // body shorter than claimed
          default: ext.data.clear(); break;          // no length prefix at all
        }
      }
    }
    const std::vector<net::TlsVersion> sv = h2.supported_versions();
    ctx.expect(sv.size() == 1 && sv[0] == h2.legacy_version, "roundtrip/tls-sv-fallback",
               "malformed supported_versions did not fall back to legacy version");
  }

  // Oversize guards: fields that no longer fit their wire-length
  // prefixes must throw instead of emitting wrapped lengths.
  {
    net::ClientHello big = net::ClientHello::make(sni);
    big.session_id.assign(300, 0xab);
    bool threw = false;
    try {
      (void)big.serialize();
    } catch (const ParseError&) {
      threw = true;
    }
    ctx.expect(threw, "roundtrip/tls-oversize", "300-byte session id did not throw");
    bool threw_sv = false;
    try {
      net::ClientHello h3 = net::ClientHello::make(sni);
      h3.set_supported_versions(
          std::vector<net::TlsVersion>(200, net::TlsVersion::kTls12));
    } catch (const ParseError&) {
      threw_sv = true;
    }
    ctx.expect(threw_sv, "roundtrip/tls-oversize",
               "200-entry supported_versions list did not throw");
  }

  check_mutation_contract(ctx, "roundtrip/tls-mutated", b1, [](BytesView m) {
    return net::ClientHello::parse(m).serialize();
  });
}

// -------------------------------------------------------- JSON reports --

/// Decode → encode must reach a fixed point after one pass: c2 == c3.
/// (c1 == c2 is NOT required: emitters may drop per-request detail or
/// re-escape strings; what is forbidden is an unstable codec.)
template <typename FromJson, typename ToJson>
void check_report_fixed_point(CaseContext& ctx, std::string_view target,
                              const std::string& c1, const FromJson& from,
                              const ToJson& to) {
  ctx.expect(json_valid(c1), target, "emitted document is not valid JSON: " + c1);
  auto d1 = from(c1);
  if (!d1.has_value()) {
    ctx.fail(target, "emitted document failed to decode: " + c1);
    return;
  }
  const std::string c2 = to(*d1);
  auto d2 = from(c2);
  if (!d2.has_value()) {
    ctx.fail(target, "re-encoded document failed to decode: " + c2);
    return;
  }
  const std::string c3 = to(*d2);
  ctx.expect(c2 == c3, target, "decode-encode has no fixed point: '" + c2 +
                                   "' vs '" + c3 + "'");
}

/// Mutated report text must never crash the decoder; whatever decodes
/// must re-encode without throwing.
template <typename FromJson, typename ToJson>
void check_report_mutation(CaseContext& ctx, std::string_view target,
                           const std::string& c1, const FromJson& from,
                           const ToJson& to) {
  Bytes soup = to_bytes(c1);
  mutate(soup, ctx.rng, ctx.budget);
  const std::string text(soup.begin(), soup.end());
  try {
    auto d = from(text);
    ++ctx.checks;
    if (d.has_value()) (void)to(*d);
  } catch (const std::exception& e) {
    ctx.fail(target, std::string("decoder/encoder threw on mutated text: ") + e.what());
  }
}

trace::CenTraceReport random_trace_report(CaseContext& ctx) {
  trace::CenTraceReport r;
  r.test_domain = random_hostname(ctx.rng);
  r.control_domain = random_hostname(ctx.rng);
  r.endpoint = random_ip(ctx.rng);
  r.protocol = static_cast<trace::ProbeProtocol>(ctx.rng.uniform(4));
  r.blocked = ctx.rng.chance(0.5);
  r.blocking_type = static_cast<trace::BlockingType>(ctx.rng.uniform(5));
  r.location = static_cast<trace::BlockingLocation>(ctx.rng.uniform(5));
  r.placement = static_cast<trace::DevicePlacement>(ctx.rng.uniform(3));
  r.blocking_hop_ttl = static_cast<int>(ctx.rng.uniform(22)) - 1;
  if (ctx.rng.chance(0.5)) r.blocking_hop_ip = random_ip(ctx.rng);
  if (ctx.rng.chance(0.4)) {
    geo::AsInfo as;
    as.asn = static_cast<std::uint32_t>(ctx.rng.uniform(70000));
    as.name = "AS-" + random_hostname(ctx.rng);
    as.country = ctx.rng.chance(0.5) ? "KZ" : "RU";
    r.blocking_as = as;
  }
  r.endpoint_hop_distance = static_cast<int>(ctx.rng.uniform(20)) - 1;
  r.ttl_copy_detected = ctx.rng.chance(0.3);
  if (ctx.rng.chance(0.3)) r.blockpage_vendor = random_hostname(ctx.rng);
  if (ctx.rng.chance(0.4)) r.injected_packet = random_packet(ctx, false);
  const std::size_t diffs = ctx.rng.uniform(3);
  for (std::size_t i = 0; i < diffs; ++i) {
    trace::QuoteDiff d;
    d.router = random_ip(ctx.rng);
    d.parse_ok = ctx.rng.chance(0.9);
    d.rfc792_minimal = ctx.rng.chance(0.5);
    d.full_tcp_quoted = !d.rfc792_minimal;
    d.tos_changed = ctx.rng.chance(0.3);
    d.ip_flags_changed = ctx.rng.chance(0.3);
    d.ports_match = ctx.rng.chance(0.9);
    d.quoted_tos = static_cast<std::uint8_t>(ctx.rng.uniform(256));
    d.quoted_ip_flags = static_cast<std::uint8_t>(ctx.rng.uniform(8));
    d.quoted_ttl = static_cast<std::uint8_t>(ctx.rng.uniform(2));
    d.quoted_payload_bytes = ctx.rng.uniform(120);
    r.quote_diffs.push_back(d);
  }
  // Confidence values are drawn from a thousandth grid so %.6g emission
  // is exact and the fixed-point comparison is not at the mercy of
  // decimal-shortening ties.
  auto grid = [&] { return static_cast<double>(ctx.rng.uniform(1001)) / 1000.0; };
  r.confidence.overall = grid();
  r.confidence.response_agreement = grid();
  r.confidence.ttl_agreement = grid();
  r.confidence.control_path_stability = grid();
  r.confidence.icmp_rate_limited = ctx.rng.chance(0.2);
  r.confidence.path_churn = ctx.rng.chance(0.2);
  r.confidence.loss_recovered_probes = static_cast<int>(ctx.rng.uniform(10));
  const std::size_t hops = ctx.rng.uniform(5);
  for (std::size_t i = 0; i < hops; ++i) r.confidence.hop_confidence.push_back(grid());
  const std::size_t path = ctx.rng.uniform(5);
  for (std::size_t i = 0; i < path; ++i) {
    r.control_path.push_back(ctx.rng.chance(0.8)
                                 ? std::optional<Ipv4Address>(random_ip(ctx.rng))
                                 : std::nullopt);
  }
  r.degradation.mode = static_cast<trace::DegradationMode>(ctx.rng.uniform(4));
  r.degradation.icmp_answer_rate = grid();
  r.degradation.dead_channel_sweeps = static_cast<int>(ctx.rng.uniform(8));
  r.degradation.vantage_count = 1 + static_cast<int>(ctx.rng.uniform(4));
  r.degradation.tomography_observations = static_cast<int>(ctx.rng.uniform(40));
  r.degradation.tomography_solved = ctx.rng.chance(0.4);
  const std::size_t links = ctx.rng.uniform(4);
  for (std::size_t i = 0; i < links; ++i) {
    trace::BlamedLink link;
    link.ip_a = random_ip(ctx.rng);
    link.ip_b = random_ip(ctx.rng);
    link.confidence = grid();
    link.blocked_paths = static_cast<int>(ctx.rng.uniform(20));
    link.clean_paths = static_cast<int>(ctx.rng.uniform(20));
    r.degradation.candidate_links.push_back(link);
  }
  return r;
}

fuzz::CenFuzzReport random_fuzz_report(CaseContext& ctx) {
  fuzz::CenFuzzReport r;
  r.endpoint = random_ip(ctx.rng);
  r.test_domain = random_hostname(ctx.rng);
  r.control_domain = random_hostname(ctx.rng);
  r.http_baseline_blocked = ctx.rng.chance(0.5);
  r.tls_baseline_blocked = ctx.rng.chance(0.5);
  const std::size_t n = ctx.rng.uniform(5);
  for (std::size_t i = 0; i < n; ++i) {
    fuzz::FuzzMeasurement m;
    m.strategy = "strategy-" + std::to_string(ctx.rng.uniform(12));
    m.permutation = random_hostname(ctx.rng);
    m.https = ctx.rng.chance(0.5);
    m.test_result = static_cast<fuzz::RequestResult>(ctx.rng.uniform(5));
    m.control_result = static_cast<fuzz::RequestResult>(ctx.rng.uniform(5));
    m.outcome = static_cast<fuzz::FuzzOutcome>(ctx.rng.uniform(3));
    m.circumvented = ctx.rng.chance(0.3);
    m.baseline_failed = ctx.rng.chance(0.1);
    r.measurements.push_back(std::move(m));
  }
  r.total_requests = ctx.rng.uniform(200);
  r.skipped_strategies = ctx.rng.uniform(5);
  return r;
}

probe::DeviceProbeReport random_probe_report(CaseContext& ctx) {
  probe::DeviceProbeReport r;
  r.ip = random_ip(ctx.rng);
  const std::size_t ports = ctx.rng.uniform(4);
  for (std::size_t i = 0; i < ports; ++i) {
    r.open_ports.push_back(static_cast<std::uint16_t>(1 + ctx.rng.uniform(65535)));
  }
  const std::size_t banners = ctx.rng.uniform(3);
  for (std::size_t i = 0; i < banners; ++i) {
    probe::BannerGrab g;
    g.port = static_cast<std::uint16_t>(1 + ctx.rng.uniform(65535));
    g.protocol = ctx.rng.chance(0.5) ? "http" : "ssh";
    g.banner = "banner " + random_hostname(ctx.rng);
    g.complete = ctx.rng.chance(0.8);
    g.attempts = static_cast<int>(1 + ctx.rng.uniform(3));
    r.banners.push_back(std::move(g));
  }
  if (ctx.rng.chance(0.4)) r.vendor = random_hostname(ctx.rng);
  if (ctx.rng.chance(0.5)) {
    censor::StackFingerprint s;
    s.synack_ttl = static_cast<std::uint8_t>(ctx.rng.uniform(256));
    s.synack_window = static_cast<std::uint16_t>(ctx.rng.uniform(65536));
    s.mss = static_cast<std::uint16_t>(ctx.rng.uniform(65536));
    s.sack_permitted = ctx.rng.chance(0.5);
    s.rst_ttl = static_cast<std::uint8_t>(ctx.rng.uniform(256));
    r.stack = s;
  }
  return r;
}

void check_reports(CaseContext& ctx) {
  {
    const trace::CenTraceReport r = random_trace_report(ctx);
    const std::string c1 = report::to_json(r, false);
    auto from = [](const std::string& t) { return report::trace_report_from_json(t); };
    auto to = [](const trace::CenTraceReport& x) { return report::to_json(x, false); };
    check_report_fixed_point(ctx, "roundtrip/report-trace", c1, from, to);
    check_report_mutation(ctx, "roundtrip/report-trace-mutated", c1, from, to);
  }
  {
    const fuzz::CenFuzzReport r = random_fuzz_report(ctx);
    const std::string c1 = report::to_json(r);
    auto from = [](const std::string& t) { return report::fuzz_report_from_json(t); };
    auto to = [](const fuzz::CenFuzzReport& x) { return report::to_json(x); };
    check_report_fixed_point(ctx, "roundtrip/report-fuzz", c1, from, to);
    check_report_mutation(ctx, "roundtrip/report-fuzz-mutated", c1, from, to);
  }
  {
    const probe::DeviceProbeReport r = random_probe_report(ctx);
    const std::string c1 = report::to_json(r);
    auto from = [](const std::string& t) { return report::probe_report_from_json(t); };
    auto to = [](const probe::DeviceProbeReport& x) { return report::to_json(x); };
    check_report_fixed_point(ctx, "roundtrip/report-probe", c1, from, to);
    check_report_mutation(ctx, "roundtrip/report-probe-mutated", c1, from, to);
  }
}

// ----------------------------------------------------------- core JSON --

void check_json_core(CaseContext& ctx) {
  // Escape property: for ARBITRARY bytes, quoting the escaped form must
  // yield a valid JSON string; for valid UTF-8 the parse must invert it.
  const Bytes raw = random_bytes(ctx.rng, 40);
  const std::string s(raw.begin(), raw.end());
  const std::string quoted = "\"" + json_escape(s) + "\"";
  ctx.expect(json_valid(quoted), "roundtrip/json-escape",
             "escaped string is not valid JSON: " + quoted);
  auto doc = json_parse(quoted);
  if (doc == nullptr || !doc->is_string()) {
    ctx.fail("roundtrip/json-escape", "escaped string failed to parse: " + quoted);
  } else if (utf8_valid(s)) {
    ctx.expect(doc->string == s, "roundtrip/json-escape",
               "escape-parse did not invert valid UTF-8 input");
  } else {
    // Invalid input is repaired; the repaired form must be valid UTF-8
    // and stable under a second escape-parse pass.
    ctx.expect(utf8_valid(doc->string), "roundtrip/json-escape",
               "repaired string is still invalid UTF-8");
    auto doc2 = json_parse("\"" + json_escape(doc->string) + "\"");
    ctx.expect(doc2 != nullptr && doc2->is_string() && doc2->string == doc->string,
               "roundtrip/json-escape", "replacement-character repair is unstable");
  }

  // Nesting depth is bounded at 64 for both the validator and the parser.
  const std::size_t depth = 1 + ctx.rng.uniform(100);
  std::string nested(depth, '[');
  nested.append(depth, ']');
  const bool parse_ok = json_parse(nested) != nullptr;
  const bool valid_ok = json_valid(nested);
  ctx.expect(parse_ok == (depth <= 64) && valid_ok == (depth <= 64),
             "roundtrip/json-depth",
             "depth " + std::to_string(depth) + ": parse=" + std::to_string(parse_ok) +
                 " valid=" + std::to_string(valid_ok));
}

}  // namespace

void run_roundtrip_case(CaseContext& ctx) {
  check_ipv4(ctx);
  check_tcp(ctx);
  check_udp(ctx);
  check_icmp(ctx);
  check_packet_prefix(ctx);
  check_dns(ctx);
  check_http(ctx);
  check_tls(ctx);
  check_reports(ctx);
  check_json_core(ctx);
}

}  // namespace cen::check
