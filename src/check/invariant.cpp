// Invariant engine: netsim conservation laws under randomized fault plans.
//
// Each case draws a random fault configuration, runs a deterministic TTL
// sweep against a cached country scenario, and asserts the laws the
// measurement tools depend on:
//
//   - every delivered ICMP quote parses (parse_quoted) and names the
//     probe the client actually sent;
//   - delivered quote count is conserved: equal to the engine's
//     icmp_quotes counter on a clean plan, bounded by quotes + duplicates
//     under faults;
//   - fault counters for knobs a plan disables stay exactly zero (the
//     fault layer's provable-inertness contract);
//   - a same-seed replay of the whole sweep is byte-identical (the
//     hermetic-epoch contract the parallel pipeline rests on).
#include <array>
#include <memory>
#include <string>

#include "check/engines.hpp"
#include "core/bytes.hpp"
#include "net/dns.hpp"
#include "net/http.hpp"
#include "net/packet.hpp"
#include "netsim/engine.hpp"
#include "netsim/faults.hpp"
#include "obs/observer.hpp"
#include "scenario/country.hpp"
#include "tomography/tomography.hpp"

namespace cen::check {

namespace {

/// Scenarios are expensive to build and fully reset by reset_epoch(), so
/// each worker thread lazily builds one per country and reuses it across
/// cases. Thread assignment cannot leak into results: every case rebases
/// all mutable state on a seed derived from the case seed alone.
scenario::CountryScenario& cached_scenario(int country_index) {
  thread_local std::array<std::unique_ptr<scenario::CountryScenario>, 4> cache;
  auto& slot = cache[static_cast<std::size_t>(country_index)];
  if (slot == nullptr) {
    slot = std::make_unique<scenario::CountryScenario>(scenario::make_country(
        static_cast<scenario::Country>(country_index), scenario::Scale::kSmall, 7));
  }
  return *slot;
}

/// The knobs one case exercises, drawn once so the replay run reuses the
/// exact same configuration.
struct SweepConfig {
  sim::FaultPlan plan;
  std::size_t endpoint_index = 0;
  std::uint8_t max_ttl = 8;
  bool use_https_payload = false;
  bool also_udp = false;
  std::uint64_t epoch_seed = 0;
};

SweepConfig random_config(CaseContext& ctx, const scenario::CountryScenario& sc) {
  SweepConfig cfg;
  Rng& rng = ctx.rng;
  sim::FaultPlan& plan = cfg.plan;
  if (rng.chance(0.3)) plan.transient_loss = rng.real() * 0.15;
  if (rng.chance(0.4)) plan.default_link.loss = rng.real() * 0.2;
  if (rng.chance(0.4)) plan.default_link.duplicate = rng.real() * 0.2;
  if (rng.chance(0.3)) plan.default_link.reorder = rng.real() * 0.2;
  if (rng.chance(0.25)) plan.default_link.truncate = rng.real() * 0.2;
  if (rng.chance(0.25)) plan.default_link.corrupt = rng.real() * 0.2;
  if (rng.chance(0.15)) plan.default_node.icmp_blackhole = true;
  if (rng.chance(0.3)) {
    plan.default_node.icmp_rate_per_sec = 0.5 + rng.real() * 10.0;
    plan.default_node.icmp_burst = 1.0 + rng.real() * 4.0;
  }
  if (rng.chance(0.2)) plan.route_flap_period = 1 + rng.uniform(2000);
  cfg.endpoint_index = rng.index(sc.remote_endpoints.size());
  cfg.max_ttl = static_cast<std::uint8_t>(4 + rng.uniform(10));
  cfg.use_https_payload = rng.chance(0.3);
  cfg.also_udp = rng.chance(0.4);
  cfg.epoch_seed = mix64(ctx.case_seed ^ 0x696e76657065ull);
  return cfg;
}

void append_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_event(Bytes& transcript, const sim::Event& ev) {
  if (const auto* icmp = std::get_if<sim::IcmpEvent>(&ev)) {
    transcript.push_back('I');
    append_u32(transcript, icmp->router.value());
    append_u32(transcript, static_cast<std::uint32_t>(icmp->quoted.size()));
    transcript.insert(transcript.end(), icmp->quoted.begin(), icmp->quoted.end());
  } else if (const auto* tcp = std::get_if<sim::TcpEvent>(&ev)) {
    transcript.push_back('T');
    const Bytes b = tcp->packet.serialize();
    append_u32(transcript, static_cast<std::uint32_t>(b.size()));
    transcript.insert(transcript.end(), b.begin(), b.end());
  } else if (const auto* udp = std::get_if<sim::UdpEvent>(&ev)) {
    transcript.push_back('U');
    const Bytes b = udp->datagram.serialize();
    append_u32(transcript, static_cast<std::uint32_t>(b.size()));
    transcript.insert(transcript.end(), b.begin(), b.end());
  }
}

struct SweepOutcome {
  Bytes transcript;  // every event the client captured, in order
  std::uint64_t icmp_delivered = 0;
  std::uint64_t icmp_quotes = 0;
  std::uint64_t duplicates = 0;
  bool established = false;
};

/// One full sweep: install the plan, rebase the epoch, connect, walk the
/// TTL ladder, optionally fire a UDP DNS probe. `verify` runs the
/// per-event checks (only on the first pass; the replay pass just records
/// the transcript). `net` is normally the scenario's own network, but the
/// clone-identity check passes a clone() replica instead.
SweepOutcome run_sweep(CaseContext& ctx, scenario::CountryScenario& sc,
                       sim::Network& net, const SweepConfig& cfg, bool verify) {
  SweepOutcome out;
  obs::Observer observer;
  sim::ScopedObserver scoped(net, &observer);
  net.set_fault_plan(cfg.plan);
  net.reset_epoch(cfg.epoch_seed);

  const bool mangling = cfg.plan.default_link.truncate > 0.0 ||
                        cfg.plan.default_link.corrupt > 0.0;
  const net::Ipv4Address dst = sc.remote_endpoints[cfg.endpoint_index];
  sim::Connection conn =
      net.open_connection(sc.remote_client, dst, cfg.use_https_payload ? 443 : 80);
  out.established = conn.connect() == sim::ConnectResult::kEstablished;
  if (out.established) {
    const std::string domain =
        cfg.use_https_payload
            ? (sc.https_test_domains.empty() ? sc.control_domain
                                             : sc.https_test_domains.front())
            : sc.control_domain;
    const Bytes payload = cfg.use_https_payload
                              ? net::ClientHello::make(domain).serialize()
                              : net::HttpRequest::get(domain).serialize_bytes();
    for (std::uint8_t ttl = 1; ttl <= cfg.max_ttl; ++ttl) {
      const std::vector<sim::Event> events = conn.send(payload, ttl);
      for (const sim::Event& ev : events) {
        append_event(out.transcript, ev);
        if (const auto* icmp = std::get_if<sim::IcmpEvent>(&ev)) {
          ++out.icmp_delivered;
          if (!verify) continue;
          bool complete = false;
          try {
            const net::Packet quoted = net::Packet::parse_quoted(icmp->quoted, complete);
            if (!mangling) {
              const net::Packet& sent = conn.last_sent();
              ctx.expect(quoted.ip.src == sent.ip.src && quoted.ip.dst == sent.ip.dst,
                         "invariant/icmp-quote-addrs",
                         "quote addresses do not match the probe just sent");
              ctx.expect(quoted.tcp.src_port == sent.tcp.src_port &&
                             quoted.tcp.dst_port == sent.tcp.dst_port &&
                             quoted.tcp.seq == sent.tcp.seq,
                         "invariant/icmp-quote-flow",
                         "quote ports/seq do not match the probe just sent");
            }
          } catch (const ParseError& e) {
            // A mangled forward payload may damage the quoted prefix;
            // with mangling disabled every quote must parse.
            if (!mangling) {
              ctx.fail("invariant/icmp-quote-parse",
                       std::string("quote failed to parse on a clean link: ") + e.what());
            }
          } catch (const std::exception& e) {
            ctx.fail("invariant/icmp-quote-parse",
                     std::string("parse_quoted threw a non-ParseError: ") + e.what());
          }
        } else if (const auto* tcp = std::get_if<sim::TcpEvent>(&ev)) {
          if (verify) {
            ctx.expect(tcp->packet.tcp.dst_port == conn.source_port(),
                       "invariant/tcp-delivery",
                       "TCP packet delivered to the wrong ephemeral port");
          }
        }
      }
    }
  }
  if (cfg.also_udp) {
    const net::DnsMessage query = net::make_dns_query(sc.control_domain);
    const std::vector<sim::Event> events =
        net.send_udp(sc.remote_client, dst, 53, query.serialize(), cfg.max_ttl);
    for (const sim::Event& ev : events) {
      append_event(out.transcript, ev);
      if (std::holds_alternative<sim::IcmpEvent>(ev)) ++out.icmp_delivered;
    }
  }

  out.icmp_quotes = observer.engine().icmp_quotes->value();
  out.duplicates = observer.faults().duplicates->value();

  if (verify) {
    // Conservation: the engine counts a quote only when it is actually
    // delivered, so the client's capture can differ from the counter only
    // by duplicated deliveries.
    if (cfg.plan.inert()) {
      ctx.expect(out.icmp_delivered == out.icmp_quotes, "invariant/icmp-conservation",
                 "clean plan delivered " + std::to_string(out.icmp_delivered) +
                     " quotes but the engine counted " + std::to_string(out.icmp_quotes));
    } else {
      ctx.expect(out.icmp_delivered >= out.icmp_quotes &&
                     out.icmp_delivered <= out.icmp_quotes + out.duplicates,
                 "invariant/icmp-conservation",
                 "delivered " + std::to_string(out.icmp_delivered) + " quotes, counted " +
                     std::to_string(out.icmp_quotes) + " + " +
                     std::to_string(out.duplicates) + " duplicates");
    }
    // Provable inertness: a knob left at zero must never fire.
    const obs::FaultCounters& fc = observer.faults();
    const sim::FaultProfile& link = cfg.plan.default_link;
    auto zero_if_disabled = [&](double knob, const obs::Counter* counter,
                                const char* name) {
      ctx.expect(knob > 0.0 || counter->value() == 0, "invariant/fault-inertness",
                 std::string(name) + " fired " + std::to_string(counter->value()) +
                     " times with its knob disabled");
    };
    zero_if_disabled(link.loss, fc.link_loss, "link_loss");
    zero_if_disabled(link.duplicate, fc.duplicates, "duplicates");
    zero_if_disabled(link.reorder, fc.reorders, "reorders");
    zero_if_disabled(link.truncate, fc.payload_truncates, "payload_truncates");
    zero_if_disabled(link.corrupt, fc.payload_corruptions, "payload_corruptions");
    zero_if_disabled(cfg.plan.default_node.icmp_blackhole ? 1.0 : 0.0,
                     fc.icmp_blackholed, "icmp_blackholed");
    zero_if_disabled(cfg.plan.default_node.icmp_rate_per_sec, fc.icmp_rate_limited,
                     "icmp_rate_limited");
    zero_if_disabled(cfg.plan.mgmt_drop, fc.mgmt_drops, "mgmt_drops");
    zero_if_disabled(cfg.plan.banner_truncate, fc.banner_truncates, "banner_truncates");
  }
  return out;
}

}  // namespace

void run_invariant_case(CaseContext& ctx) {
  const int country = static_cast<int>(ctx.case_seed % 4);
  scenario::CountryScenario& sc = cached_scenario(country);
  const SweepConfig cfg = random_config(ctx, sc);

  const SweepOutcome first = run_sweep(ctx, sc, *sc.network, cfg, true);

  // Hermetic-epoch replay: the same plan and epoch seed must reproduce
  // the exact capture and counters, byte for byte. Sampled (it doubles
  // the cost of a case), but across a run every country gets coverage.
  if (ctx.case_seed % 4 == 0) {
    const SweepOutcome replay = run_sweep(ctx, sc, *sc.network, cfg, false);
    ctx.expect(replay.transcript == first.transcript, "invariant/replay",
               "same-seed replay produced a different event transcript (" +
                   std::to_string(first.transcript.size()) + " vs " +
                   std::to_string(replay.transcript.size()) + " bytes)");
    ctx.expect(replay.icmp_quotes == first.icmp_quotes &&
                   replay.duplicates == first.duplicates &&
                   replay.established == first.established,
               "invariant/replay", "same-seed replay produced different counters");
  }

  // Clone identity: a clone() replica reset to the same epoch must emit a
  // byte-identical transcript — the contract the parallel executor rests
  // on. The replica shares the prototype's topology paths, endpoint map,
  // geo database and device configs copy-on-write, so any state leaking
  // through those shared structures (or any divergence in the rebuilt
  // per-replica device/RNG state) shows up here as a transcript diff.
  if (ctx.case_seed % 4 == 1) {
    const std::unique_ptr<sim::Network> replica = sc.network->clone();
    const SweepOutcome mirror = run_sweep(ctx, sc, *replica, cfg, false);
    ctx.expect(mirror.transcript == first.transcript, "invariant/clone",
               "clone() replica produced a different event transcript (" +
                   std::to_string(first.transcript.size()) + " vs " +
                   std::to_string(mirror.transcript.size()) + " bytes)");
    ctx.expect(mirror.icmp_quotes == first.icmp_quotes &&
                   mirror.duplicates == first.duplicates &&
                   mirror.established == first.established,
               "invariant/clone", "clone() replica produced different counters");
  }

  // Tomography solver law: the minimal-blocking-link-set output depends
  // only on the observation SET — permuting row order and relabeling the
  // vantage indices must not change the solution. (The solver backs the
  // degradation ladder; order sensitivity here would break byte-identity
  // across --threads.)
  {
    const int pool = 6 + static_cast<int>(ctx.rng.uniform(6));
    const std::size_t n_rows = 6 + ctx.rng.uniform(9);
    tomo::ObservationMatrix matrix;
    for (std::size_t i = 0; i < n_rows; ++i) {
      tomo::PathObservation row;
      const int hops = 3 + static_cast<int>(ctx.rng.uniform(4));
      sim::NodeId at = static_cast<sim::NodeId>(ctx.rng.uniform(
          static_cast<std::uint64_t>(pool)));
      row.path.push_back(at);
      for (int h = 1; h < hops; ++h) {
        // Step to a different node; repeats across the walk are fine
        // (LinkId normalizes, duplicate links collapse in the solver).
        sim::NodeId next = at;
        while (next == at) {
          next = static_cast<sim::NodeId>(ctx.rng.uniform(
              static_cast<std::uint64_t>(pool)));
        }
        row.path.push_back(next);
        at = next;
      }
      row.blocked = ctx.rng.chance(0.4);
      row.vantage = static_cast<int>(i % 3);
      matrix.add(std::move(row));
    }
    const tomo::TomographyResult base = tomo::solve(matrix);

    tomo::ObservationMatrix shuffled;
    for (std::size_t idx : ctx.rng.permutation(matrix.size())) {
      tomo::PathObservation row = matrix.rows()[idx];
      row.vantage = static_cast<int>(idx % 5);  // relabeled vantages
      shuffled.add(std::move(row));
    }
    const tomo::TomographyResult perm = tomo::solve(shuffled);

    ctx.expect(perm.solved == base.solved && perm.cover_size == base.cover_size &&
                   perm.unexplained_observations == base.unexplained_observations,
               "invariant/tomography",
               "solver verdict changed under row permutation");
    bool same_candidates = perm.candidates.size() == base.candidates.size();
    for (std::size_t i = 0; same_candidates && i < base.candidates.size(); ++i) {
      const tomo::LinkBlame& a = base.candidates[i];
      const tomo::LinkBlame& b = perm.candidates[i];
      same_candidates = a.link == b.link && a.confidence == b.confidence &&
                        a.blocked_paths == b.blocked_paths;
    }
    ctx.expect(same_candidates, "invariant/tomography",
               "candidate link set changed under vantage permutation");
    ++ctx.checks;
  }
}

}  // namespace cen::check
