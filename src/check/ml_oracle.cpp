// ML-oracle engine: the statistics and clustering code the paper's §7
// analysis rests on, cross-checked against brute-force reference
// implementations on randomized (and deliberately tie-heavy) inputs.
// The production code is optimized (sorting ranks, spatial pruning,
// impurity bookkeeping inside the tree builder); the references here are
// the textbook O(n²) definitions — slow, obviously correct, and
// independent enough that an agreement failure localizes a real bug.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "check/engines.hpp"
#include "ml/dbscan.hpp"
#include "ml/random_forest.hpp"
#include "ml/stats.hpp"

namespace cen::check {

namespace {

/// Tie-heavy random vector: values drawn from a small integer grid so
/// average-rank tie handling is exercised on nearly every case.
std::vector<double> random_grid_vector(Rng& rng, std::size_t n, int grid) {
  std::vector<double> v(n);
  for (auto& x : v) {
    x = static_cast<double>(rng.uniform(static_cast<std::uint64_t>(grid)));
  }
  return v;
}

/// O(n²) fractional ranks: 1 + (#strictly smaller) + (#equal - 1) / 2.
std::vector<double> reference_ranks(const std::vector<double>& v) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::size_t less = 0;
    std::size_t equal = 0;
    for (std::size_t j = 0; j < v.size(); ++j) {
      if (v[j] < v[i]) ++less;
      if (v[j] == v[i]) ++equal;
    }
    out[i] = 1.0 + static_cast<double>(less) +
             (static_cast<double>(equal) - 1.0) / 2.0;
  }
  return out;
}

bool close(double a, double b, double tol = 1e-9) {
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

void check_stats(CaseContext& ctx) {
  Rng& rng = ctx.rng;
  const std::size_t n = 3 + rng.uniform(40);
  const std::vector<double> x = random_grid_vector(rng, n, 2 + static_cast<int>(rng.uniform(8)));

  // mean / median / variance against the definitions.
  {
    double sum = 0.0;
    for (double v : x) sum += v;
    ctx.expect(close(ml::mean(x), sum / static_cast<double>(n)), "ml-oracle/mean",
               "mean disagrees with the plain sum");
    std::vector<double> sorted = x;
    std::sort(sorted.begin(), sorted.end());
    const double ref_median = n % 2 == 1
                                  ? sorted[n / 2]
                                  : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
    ctx.expect(close(ml::median(x), ref_median), "ml-oracle/median",
               "median disagrees with sort-and-pick");
    const double m = sum / static_cast<double>(n);
    double ss = 0.0;
    for (double v : x) ss += (v - m) * (v - m);
    ctx.expect(close(ml::variance(x), ss / static_cast<double>(n)) ||
                   close(ml::variance(x), n > 1 ? ss / static_cast<double>(n - 1) : 0.0),
               "ml-oracle/variance",
               "variance matches neither the population nor sample definition");
  }

  // ranks() against the O(n²) reference — the tie-averaging hot spot.
  {
    const std::vector<double> got = ml::ranks(x);
    const std::vector<double> ref = reference_ranks(x);
    bool same = got.size() == ref.size();
    for (std::size_t i = 0; same && i < ref.size(); ++i) same = close(got[i], ref[i]);
    ctx.expect(same, "ml-oracle/ranks",
               "ranks() disagrees with the count-based definition on a tie-heavy vector");
  }

  // spearman == pearson over reference ranks (the defining identity).
  {
    const std::vector<double> y = random_grid_vector(rng, n, 2 + static_cast<int>(rng.uniform(8)));
    const double ref_rho = ml::pearson(reference_ranks(x), reference_ranks(y));
    const ml::Correlation c = ml::spearman(x, y);
    ctx.expect(close(c.rho, ref_rho, 1e-9), "ml-oracle/spearman",
               "spearman rho != pearson of the rank vectors");
    ctx.expect(c.p_value >= 0.0 && c.p_value <= 1.0, "ml-oracle/spearman-p",
               "p-value outside [0, 1]: " + std::to_string(c.p_value));
  }

  // kfold_assignment: a partition — every index gets a fold in [0, k),
  // fold sizes differ by at most one.
  {
    const std::size_t k = 2 + rng.uniform(5);
    Rng fold_rng = rng.fork();
    const std::vector<std::size_t> folds = ml::kfold_assignment(n, k, fold_rng);
    std::vector<std::size_t> sizes(k, 0);
    bool in_range = folds.size() == n;
    for (std::size_t f : folds) {
      if (f >= k) {
        in_range = false;
        break;
      }
      ++sizes[f];
    }
    ctx.expect(in_range, "ml-oracle/kfold", "fold id out of range");
    if (in_range) {
      const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
      ctx.expect(*hi - *lo <= 1, "ml-oracle/kfold",
                 "fold sizes differ by more than one");
    }
  }
}

/// Brute-force DBSCAN closure validation. Rather than re-implementing the
/// expansion order, validate the defining properties of any correct
/// labelling: core points connected within epsilon share a label, the
/// number of clusters equals the number of core connected components,
/// border points have a same-label core neighbour, and noise points have
/// no core neighbour at all.
void check_dbscan(CaseContext& ctx) {
  Rng& rng = ctx.rng;
  const std::size_t n = 4 + rng.uniform(30);
  const std::size_t dims = 1 + rng.uniform(3);
  ml::Matrix x(n);
  for (auto& row : x) {
    row.resize(dims);
    // A small value grid makes exact-epsilon boundary ties common,
    // which is exactly where <= vs < bugs live.
    for (auto& v : row) v = static_cast<double>(rng.uniform(5));
  }
  const std::size_t min_points = 2 + rng.uniform(4);
  // Draw epsilon from the exact pairwise distances half the time so the
  // boundary case |a - b| == epsilon is hit deliberately.
  double epsilon;
  if (rng.chance(0.5) && n >= 2) {
    const std::size_t a = rng.index(n);
    std::size_t b = rng.index(n);
    if (b == a) b = (b + 1) % n;
    epsilon = ml::euclidean(x[a], x[b]);
    if (epsilon == 0.0) epsilon = 1.0;
  } else {
    epsilon = 0.5 + rng.real() * 3.0;
  }

  const ml::DbscanResult got = ml::dbscan(x, epsilon, min_points);
  if (got.labels.size() != n) {
    ctx.fail("ml-oracle/dbscan", "labels.size() != n");
    return;
  }

  // Neighbourhoods (inclusive distance, matching the production code).
  std::vector<std::vector<std::size_t>> neigh(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (ml::euclidean(x[i], x[j]) <= epsilon) neigh[i].push_back(j);
    }
  }
  std::vector<bool> core(n, false);
  for (std::size_t i = 0; i < n; ++i) core[i] = neigh[i].size() >= min_points;

  // Connected components over core points (within-epsilon core links).
  std::vector<int> comp(n, -1);
  int n_comp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!core[i] || comp[i] != -1) continue;
    std::vector<std::size_t> stack{i};
    comp[i] = n_comp;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      for (std::size_t v : neigh[u]) {
        if (core[v] && comp[v] == -1) {
          comp[v] = n_comp;
          stack.push_back(v);
        }
      }
    }
    ++n_comp;
  }

  ctx.expect(got.n_clusters == n_comp, "ml-oracle/dbscan-clusters",
             "dbscan found " + std::to_string(got.n_clusters) +
                 " clusters; core connectivity gives " + std::to_string(n_comp));
  bool labels_ok = true;
  std::string why;
  for (std::size_t i = 0; i < n && labels_ok; ++i) {
    if (core[i]) {
      if (got.labels[i] == ml::kNoise) {
        labels_ok = false;
        why = "core point labelled noise";
        break;
      }
      // Two connected cores must share a label.
      for (std::size_t v : neigh[i]) {
        if (core[v] && got.labels[v] != got.labels[i]) {
          labels_ok = false;
          why = "connected core points carry different labels";
          break;
        }
      }
    } else if (got.labels[i] != ml::kNoise) {
      // Border point: must have a core neighbour with the same label.
      bool justified = false;
      for (std::size_t v : neigh[i]) {
        if (core[v] && got.labels[v] == got.labels[i]) {
          justified = true;
          break;
        }
      }
      if (!justified) {
        labels_ok = false;
        why = "border point labelled without a same-label core neighbour";
      }
    } else {
      // Noise: no core neighbour may exist.
      for (std::size_t v : neigh[i]) {
        if (core[v]) {
          labels_ok = false;
          why = "noise point inside a core neighbourhood";
          break;
        }
      }
    }
  }
  ctx.expect(labels_ok, "ml-oracle/dbscan-labels", why);

  // estimate_epsilon must stay finite for every degenerate k.
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, n - 1, n + 3}) {
    const double e = ml::estimate_epsilon(x, k);
    ctx.expect(std::isfinite(e) && e >= 0.0, "ml-oracle/estimate-epsilon",
               "estimate_epsilon(k=" + std::to_string(k) + ") = " + std::to_string(e));
  }
}

/// Forest MDI sanity on a small labelled set: constant features carry
/// zero importance, the normalized vector sums to 1 (or is all zero when
/// no split ever fired), and a same-seed refit is bit-identical.
void check_forest(CaseContext& ctx) {
  Rng& rng = ctx.rng;
  const std::size_t n = 16 + rng.uniform(16);
  const std::size_t dims = 3;
  const std::size_t constant_feature = rng.uniform(dims);
  ml::Matrix x(n);
  std::vector<int> y(n);
  std::vector<std::size_t> train(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i].resize(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      x[i][d] = d == constant_feature ? 3.25 : static_cast<double>(rng.uniform(10));
    }
    // The label depends on a real feature, so the forest has signal.
    const std::size_t signal = (constant_feature + 1) % dims;
    y[i] = x[i][signal] >= 5.0 ? 1 : 0;
    train[i] = i;
  }

  ml::ForestOptions options;
  options.n_trees = 8;
  options.seed = mix64(ctx.case_seed ^ 0x666f72657374ull);
  ml::RandomForest forest(options);
  forest.fit(x, y, train, 2);
  const std::vector<double> imp = forest.mdi_importance();
  if (imp.size() != dims) {
    ctx.fail("ml-oracle/mdi", "importance vector has wrong arity");
    return;
  }
  ctx.expect(imp[constant_feature] == 0.0, "ml-oracle/mdi-constant",
             "constant feature received importance " +
                 std::to_string(imp[constant_feature]));
  double sum = 0.0;
  bool nonneg = true;
  for (double v : imp) {
    sum += v;
    nonneg = nonneg && v >= 0.0;
  }
  ctx.expect(nonneg, "ml-oracle/mdi", "negative importance");
  ctx.expect(close(sum, 1.0, 1e-9) || sum == 0.0, "ml-oracle/mdi",
             "importances sum to " + std::to_string(sum) + ", want 1 (or all zero)");

  ml::RandomForest again(options);
  again.fit(x, y, train, 2);
  ctx.expect(again.mdi_importance() == imp, "ml-oracle/mdi-determinism",
             "same-seed refit produced different importances");
}

}  // namespace

void run_ml_oracle_case(CaseContext& ctx) {
  check_stats(ctx);
  check_dbscan(ctx);
  // Forest fits dominate the cost of a case; sample them.
  if (ctx.case_seed % 4 == 0) check_forest(ctx);
}

}  // namespace cen::check
