// Worldgen engine: invariants of the synthetic world generator. Each case
// draws a small randomized WorldSpec, generates the world, and asserts the
// structural laws instantiation and the campaign cache rely on:
//
//   prefix-pools   per-AS IPv4 pools are pow2-sized, aligned, and pairwise
//                  disjoint (the allocation plan's defining guarantee);
//   connectivity   the AS graph is one component — every node is reachable
//                  from the measurement client (preferential attachment
//                  always attaches new ASes to earlier ones);
//   membership     every endpoint's IP falls inside its AS's pool, its
//                  index inside the AS's [first, first+count) slice, its
//                  host node carries that IP, and template ids are valid;
//   determinism    regenerating from the same (spec, seed) reproduces an
//                  identical fingerprint (thread count cannot matter:
//                  generate() is single-threaded by contract), and the
//                  spec survives a JSON round-trip with equal fingerprint.
#include <algorithm>
#include <string>
#include <vector>

#include "check/engines.hpp"
#include "netsim/compact.hpp"
#include "worldgen/generate.hpp"
#include "worldgen/spec.hpp"

namespace cen::check {

namespace {

worldgen::WorldSpec draw_spec(Rng& rng) {
  worldgen::WorldSpec spec;
  spec.name = "check-world";
  spec.transit_ases = static_cast<std::uint32_t>(rng.range(1, 4));
  spec.regional_ases = static_cast<std::uint32_t>(rng.range(1, 6));
  spec.stub_ases = static_cast<std::uint32_t>(rng.range(2, 10));
  spec.routers_per_transit = static_cast<std::uint32_t>(rng.range(1, 3));
  spec.routers_per_regional = static_cast<std::uint32_t>(rng.range(1, 2));
  spec.routers_per_stub = 1;
  spec.endpoints = static_cast<std::uint64_t>(rng.range(10, 120));
  spec.endpoint_zipf = 0.8 + 0.1 * static_cast<double>(rng.range(0, 6));
  spec.profile_templates = static_cast<std::uint32_t>(rng.range(1, 6));
  if (rng.chance(0.5)) {
    // Exercise the explicit-regime path half the time; the other half
    // uses the built-in default mixture.
    worldgen::CountryRegimeSpec censored;
    censored.code = "XQ";
    censored.weight = 2.0;
    censored.censored = true;
    censored.vendors = {"Fortinet", "MikroTik"};
    censored.deploy_coverage = 0.25 * static_cast<double>(rng.range(1, 4));
    censored.on_path_share = rng.chance(0.5) ? 0.0 : 0.3;
    worldgen::CountryRegimeSpec open;
    open.code = "XR";
    open.weight = 1.0;
    spec.countries = {censored, open};
  }
  return spec;
}

}  // namespace

void run_worldgen_case(CaseContext& ctx) {
  worldgen::WorldSpec spec = draw_spec(ctx.rng);
  const std::uint64_t world_seed = ctx.rng.next();
  worldgen::World world = worldgen::generate(spec, world_seed);
  const sim::CompactTopology& topo = *world.topology;
  const std::string tag = "seed=" + std::to_string(world_seed);

  // Prefix pools: pow2-sized, aligned, pairwise disjoint.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pools;  // [base, end)
  bool pools_ok = true;
  for (const worldgen::GeneratedAs& as : world.ases) {
    const std::uint64_t size = 1ull << (32 - as.prefix_len);
    if (as.prefix_len > 32 || (as.prefix_base & (size - 1)) != 0) pools_ok = false;
    pools.emplace_back(as.prefix_base, as.prefix_base + size);
  }
  ctx.expect(pools_ok, "worldgen/prefix-aligned",
             "unaligned or invalid prefix pool, " + tag);
  std::sort(pools.begin(), pools.end());
  bool disjoint = true;
  for (std::size_t i = 1; i < pools.size(); ++i) {
    if (pools[i].first < pools[i - 1].second) disjoint = false;
  }
  ctx.expect(disjoint, "worldgen/prefix-disjoint",
             "overlapping AS prefix pools, " + tag);

  // Connectivity: BFS from the client reaches every node.
  std::vector<char> seen(topo.node_count(), 0);
  std::vector<sim::NodeId> frontier{world.client};
  seen[world.client] = 1;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    sim::NodeId at = frontier.back();
    frontier.pop_back();
    for (sim::NodeId next : topo.neighbors(at)) {
      if (!seen[next]) {
        seen[next] = 1;
        ++reached;
        frontier.push_back(next);
      }
    }
  }
  ctx.expect(reached == topo.node_count(), "worldgen/connected",
             "AS graph not connected: reached " + std::to_string(reached) + " of " +
                 std::to_string(topo.node_count()) + " nodes, " + tag);

  // Endpoint membership: IP inside the owning AS pool, index inside the
  // AS slice, host node carries the IP, template id valid.
  bool member_ok = true;
  std::string member_detail;
  for (std::size_t i = 0; i < world.endpoint_ips.size() && member_ok; ++i) {
    const std::uint32_t as_index = world.endpoint_as[i];
    if (as_index >= world.ases.size()) {
      member_ok = false;
      member_detail = "endpoint " + std::to_string(i) + " has bad AS index";
      break;
    }
    const worldgen::GeneratedAs& as = world.ases[as_index];
    const std::uint64_t size = 1ull << (32 - as.prefix_len);
    const std::uint32_t ip = world.endpoint_ips[i];
    if (ip < as.prefix_base || static_cast<std::uint64_t>(ip) >= as.prefix_base + size) {
      member_ok = false;
      member_detail = "endpoint " + std::to_string(i) + " IP outside its AS pool";
    } else if (i < as.first_endpoint || i >= as.first_endpoint + as.endpoint_count) {
      member_ok = false;
      member_detail = "endpoint " + std::to_string(i) + " outside its AS slice";
    } else if (world.endpoint_nodes[i] >= topo.node_count() ||
               topo.ip(world.endpoint_nodes[i]).value() != ip) {
      member_ok = false;
      member_detail = "endpoint " + std::to_string(i) + " node/IP mismatch";
    } else if (world.endpoint_template[i] >= world.templates.size()) {
      member_ok = false;
      member_detail = "endpoint " + std::to_string(i) + " has bad template id";
    }
  }
  ctx.expect(member_ok, "worldgen/endpoint-membership",
             member_ok ? "" : member_detail + ", " + tag);
  ctx.expect(std::is_sorted(world.endpoint_ips.begin(), world.endpoint_ips.end()),
             "worldgen/endpoint-order", "endpoint IPs not ascending, " + tag);

  // Device plans target valid border routers inside their AS.
  bool devices_ok = true;
  for (const worldgen::DevicePlan& d : world.devices) {
    if (d.as_index >= world.ases.size() || d.node >= topo.node_count()) {
      devices_ok = false;
      break;
    }
    const worldgen::GeneratedAs& as = world.ases[d.as_index];
    if (d.node < as.first_router || d.node >= as.first_router + as.router_count) {
      devices_ok = false;
      break;
    }
  }
  ctx.expect(devices_ok, "worldgen/device-placement",
             "device plan outside its AS router range, " + tag);

  // Determinism: same (spec, seed) ⇒ identical fingerprint.
  worldgen::World replay = worldgen::generate(spec, world_seed);
  ctx.expect(replay.fingerprint() == world.fingerprint(), "worldgen/determinism",
             "regeneration changed the world fingerprint, " + tag);

  // Spec JSON round-trip preserves the structural digest.
  std::string error;
  std::optional<worldgen::WorldSpec> parsed =
      worldgen::spec_from_json(worldgen::to_json(spec), &error);
  ctx.expect(parsed.has_value(), "worldgen/spec-roundtrip",
             "spec JSON failed to re-parse: " + error + ", " + tag);
  if (parsed) {
    ctx.expect(parsed->fingerprint() == spec.fingerprint(), "worldgen/spec-roundtrip",
               "spec fingerprint changed across JSON round-trip, " + tag);
  }
}

}  // namespace cen::check
