// Deterministic self-check subsystem (the `cencheck` tool's engine).
//
// Four in-process differential-fuzz / invariant engines hunt for the bug
// classes that silently corrupt measurement results:
//
//   round-trip    structure-aware mutational fuzzing of every parse ∘
//                 serialize pair (IPv4/TCP/UDP/ICMP/DNS codecs, HTTP
//                 requests, TLS ClientHellos, report JSON codecs, the
//                 core JSON escaper);
//   invariant     netsim conservation laws under randomized fault plans
//                 (every ICMP quote parses and matches the probe, fault
//                 counters for disabled knobs stay zero, same-seed
//                 replays are byte-identical);
//   cache-replay  campaign runs against randomly truncated / corrupted
//                 result caches must produce byte-identical output or
//                 cleanly invalidate — never crash, never silently
//                 answer wrong;
//   ml-oracle     ml/stats, DBSCAN and random-forest MDI cross-checked
//                 against brute-force reference implementations.
//
// Everything is reproducible: each case derives its RNG from
// (engine, case seed) alone, so any failure replays from the one-line
// `cencheck --engine E --seed N` command printed with it, independent of
// thread count or which other cases ran. Reports never mention thread
// count, so output is byte-identical across --threads values.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cen::check {

enum class Engine : std::uint8_t {
  kRoundTrip,
  kInvariant,
  kCacheReplay,
  kMlOracle,
  /// Worldgen invariants: prefix pools disjoint, AS graph connected,
  /// endpoint→AS membership consistent, and the same (spec, seed) pair
  /// regenerates a byte-identical world at any thread count.
  kWorldGen,
  /// Ambiguity-fingerprinting invariants: inert ReassemblyQuirks are
  /// byte-identical to the pre-reassembly per-packet path, same-seed
  /// cenambig replays are byte-identical, and the discrepancy vector is
  /// stable under a permuted probe execution order.
  kAmbig,
  /// Longitudinal invariants: evolution replay identity (same plan + seed
  /// + epoch on independent builds gives identical network fingerprints
  /// and churn), inert plans and epoch 0 leave the baseline untouched,
  /// EvolutionPlan/EpochDiff JSON round-trips, and CKMS quantile sketches
  /// stay inside their rank-error bounds (solo and shard-merged).
  kLongit,
  /// Hidden engine with a deliberately planted failure (fails whenever
  /// the mutation budget is >= 3). Excluded from all_engines(); exists so
  /// tests can prove the harness catches, reproduces and minimizes a bug.
  kSelfTest,
};

std::string_view engine_name(Engine e);
std::optional<Engine> engine_from_name(std::string_view name);
/// The engines `--all` runs (kSelfTest excluded).
const std::vector<Engine>& all_engines();

/// One failed check, carrying everything needed to replay it.
struct CheckFailure {
  Engine engine = Engine::kRoundTrip;
  std::uint64_t seed = 0;  // case seed: replays via run_case(engine, seed, ...)
  std::string target;      // which codec / invariant / oracle tripped
  std::string detail;
  int budget = 0;            // mutation budget in effect when it failed
  int minimized_budget = 0;  // smallest budget that still fails (== budget
                             // when minimization is off or didn't shrink)

  /// The one-line reproduction command.
  std::string repro() const;
};

struct EngineStats {
  Engine engine = Engine::kRoundTrip;
  std::uint64_t cases = 0;
  std::uint64_t checks = 0;
  std::uint64_t failures = 0;
};

struct CheckOptions {
  /// Engines to run; empty = all_engines().
  std::vector<Engine> engines;
  /// Round-trip case count; the other engines scale from it (see
  /// engine_case_count) because their cases cost orders of magnitude more.
  std::uint64_t iterations = 1000;
  std::uint64_t seed = 1;
  /// Worker threads: 0 = one per hardware thread. Forbidden from
  /// influencing results — only wall time.
  int threads = 1;
  /// Mutations applied per mutational sub-check (and the planted
  /// self-test threshold's ceiling).
  int mutation_budget = 8;
  /// Shrink each failure's budget to the smallest that still fails.
  bool minimize = true;
  /// Failures to keep in full detail (the rest still count in stats).
  std::size_t max_failures = 64;
};

struct CheckReport {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 0;
  int mutation_budget = 0;
  std::vector<EngineStats> stats;
  std::vector<CheckFailure> failures;
  /// Failures beyond max_failures, counted but not detailed.
  std::uint64_t dropped_failures = 0;

  bool ok() const;
  /// Deterministic JSON document (never mentions thread count).
  std::string to_json() const;
  /// Human-readable digest (also thread-independent).
  std::string summary() const;
};

/// Run the configured engines and collect stats + (minimized) failures.
CheckReport run_checks(const CheckOptions& options);

/// Replay one case — the reproduction entry point behind
/// `cencheck --engine E --seed N`. Failures are appended to the returned
/// vector; when `checks` is non-null the case's check count is added.
std::vector<CheckFailure> run_case(Engine engine, std::uint64_t case_seed, int budget,
                                   std::uint64_t* checks = nullptr);

/// Cases an engine runs for a given round-trip iteration count.
std::uint64_t engine_case_count(Engine engine, std::uint64_t iterations);

}  // namespace cen::check
