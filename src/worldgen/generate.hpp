// Deterministic internet-scale world generation (ISSUE 8 tentpole).
//
// generate(spec, seed) emits a World: a power-law AS graph (preferential
// attachment over transit / regional / stub tiers), per-AS IPv4 prefix
// pools carved sequentially from a seeded allocation plan (11.0.0.0/8
// upward, pow2-sized and aligned, disjoint by construction), per-country
// censorship regimes realized as device deployment plans (vendor cycles,
// in-path vs on-path draws, service-exposure funnel mirroring §5.2), and
// a Zipf-skewed endpoint population sampled per stub AS. Everything is
// drawn from phase-isolated RNG substreams of the seed, so the same
// (spec, seed) reproduces a byte-identical world — World::fingerprint()
// is the cache-key digest campaigns mix in.
//
// The topology lands directly in the compact structure-of-arrays backend
// (netsim/compact.hpp): a million-endpoint world is a few tens of MB and
// a compact-backed Network clones as refcount bumps.
//
// instantiate(world) turns the immutable World into a runnable
// sim::Network plus the scenario-shaped bundle (client, endpoint list,
// ground-truth devices) that the pipeline and campaign layers consume.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geo/asdb.hpp"
#include "netsim/compact.hpp"
#include "netsim/endpoint.hpp"
#include "scenario/country.hpp"  // DeviceTruth
#include "worldgen/spec.hpp"

namespace cen::obs {
class Observer;
}

namespace cen::worldgen {

enum class AsTier : std::uint8_t { kTransit, kRegional, kStub };

/// Country index of the measurement AS (it belongs to no regime).
constexpr std::uint16_t kNoCountry = 0xffff;

struct GeneratedAs {
  std::uint32_t asn = 0;
  AsTier tier = AsTier::kStub;
  std::uint16_t country = kNoCountry;  ///< index into World::regimes
  std::uint32_t prefix_base = 0;       ///< network address (host byte order)
  std::uint8_t prefix_len = 32;
  sim::NodeId first_router = sim::kInvalidNode;
  std::uint32_t router_count = 0;
  std::uint64_t first_endpoint = 0;  ///< index into the endpoint arrays
  std::uint64_t endpoint_count = 0;
};

/// A censorship device drawn by the regime phase; materialized into a
/// censor::Device by instantiate().
struct DevicePlan {
  sim::NodeId node = sim::kInvalidNode;  ///< border router it deploys at
  std::string vendor;
  bool on_path = false;
  /// Management-plane exposure funnel (§5.2): 0 = vendor banners,
  /// 1 = no open services, 2 = generic (unfingerprideable) banners.
  std::uint8_t service_mode = 0;
  std::uint32_t as_index = 0;  ///< index into World::ases
  std::uint16_t country = kNoCountry;
};

class World {
 public:
  WorldSpec spec;
  std::uint64_t seed = 1;
  std::shared_ptr<const sim::CompactTopology> topology;
  geo::IpMetadataDb geodb;
  /// Effective regimes (spec.effective_countries(), frozen at generation).
  std::vector<CountryRegimeSpec> regimes;
  /// ases[0] is always the measurement AS hosting the client.
  std::vector<GeneratedAs> ases;

  // Endpoint population, structure-of-arrays, ascending IP order.
  std::vector<std::uint32_t> endpoint_ips;
  std::vector<sim::NodeId> endpoint_nodes;      ///< the endpoint's host node
  std::vector<std::uint32_t> endpoint_as;       ///< index into ases
  std::vector<std::uint16_t> endpoint_template; ///< index into templates
  /// Shared immutable web-server profiles the endpoints draw from.
  std::vector<std::shared_ptr<const sim::EndpointProfile>> templates;

  std::vector<DevicePlan> devices;
  sim::NodeId client = sim::kInvalidNode;

  /// Digest over everything the world contains (topology, prefix plan,
  /// endpoint arrays, template content, device plans). Equal digests ⇔
  /// byte-identical worlds; campaigns mix it into cache keys.
  std::uint64_t fingerprint() const;

  /// Resident bytes of the world's arrays (topology + endpoint SoA +
  /// template profiles; geodb routes approximated).
  std::size_t bytes() const;

  struct Stats {
    std::size_t nodes = 0;
    std::size_t links = 0;
    std::size_t endpoints = 0;
    std::size_t ases = 0;
    std::size_t devices = 0;
    std::size_t bytes = 0;
  };
  Stats stats() const;
};

/// Generate a world from (spec, seed). Single-threaded and deterministic:
/// the result is byte-identical regardless of caller threading. When
/// `observer` is non-null, emits worldgen.* gauges and per-phase tracer
/// spans (span durations encode item counts, so traces stay run-invariant).
World generate(const WorldSpec& spec, std::uint64_t seed,
               obs::Observer* observer = nullptr);

/// A runnable instantiation of a World, shaped like the hand-built
/// scenarios so pipeline/campaign code paths apply unchanged.
struct GeneratedScenario {
  std::unique_ptr<sim::Network> network;
  sim::NodeId client = sim::kInvalidNode;
  std::vector<net::Ipv4Address> endpoints;
  std::vector<std::string> http_test_domains;
  std::vector<std::string> https_test_domains;
  std::string control_domain;
  std::vector<scenario::DeviceTruth> devices;
};

/// Materialize the network: compact-backed Topology, every endpoint
/// registered against its shared profile template (ascending-IP bulk
/// load), regime devices deployed with vendor rule sets over the spec's
/// test domains. `max_endpoints` < 0 registers the full population.
GeneratedScenario instantiate(const World& world, std::int64_t max_endpoints = -1);

}  // namespace cen::worldgen
