// WorldSpec: the declarative input of the synthetic world generator.
//
// A spec names the *shape* of an internet-scale world — how many transit /
// regional / stub ASes the power-law graph holds, how many endpoint hosts
// populate it (Zipf-skewed across stub ASes, like real hosting density),
// and which censorship regimes govern which countries (vendor mixtures,
// deployment coverage, in-path vs on-path shares). Everything else is
// drawn deterministically from `(spec, seed)` by worldgen::generate(), so
// the pair is the complete identity of a world: spec.fingerprint() mixed
// with the seed keys campaign caches.
//
// Specs are JSON-loadable (cenworld --spec, cencampaign "world" object)
// and three built-in scale tiers — "1k", "100k", "1m" endpoints — cover
// the benchmark ladder without spec files.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cen {
class JsonValue;
}

namespace cen::worldgen {

/// Censorship regime of one synthetic country: which vendors deploy there,
/// how much of the country's stub ASes they cover, and how often they tap
/// on-path instead of sitting in-path.
struct CountryRegimeSpec {
  std::string code;       ///< two-letter-style synthetic country code
  double weight = 1.0;    ///< share of stub ASes homed in this country
  bool censored = false;  ///< uncensored countries deploy nothing
  /// Vendor names understood by censor::make_vendor_device; deployments
  /// cycle through this list deterministically.
  std::vector<std::string> vendors;
  double deploy_coverage = 0.5;  ///< fraction of the country's stub ASes with a device
  double on_path_share = 0.1;    ///< of deployed devices, fraction tapping on-path
};

struct WorldSpec {
  std::string name = "world-1k";

  // AS-graph shape (preferential attachment over three tiers).
  std::uint32_t transit_ases = 8;
  std::uint32_t regional_ases = 24;
  std::uint32_t stub_ases = 60;
  std::uint32_t routers_per_transit = 3;
  std::uint32_t routers_per_regional = 2;
  std::uint32_t routers_per_stub = 1;

  // Endpoint population, Zipf-skewed across stub ASes.
  std::uint64_t endpoints = 1000;
  double endpoint_zipf = 1.1;
  /// Endpoint web-server behaviour is drawn from this many shared profile
  /// templates (a million hosts share a handful of immutable profiles).
  std::uint32_t profile_templates = 8;

  // Measurement domains (same roles as the hand-built scenarios).
  std::vector<std::string> http_test_domains{"www.blockedexample.com"};
  std::vector<std::string> https_test_domains{"www.blockedexample.org"};
  std::string control_domain = "www.example.com";

  /// Per-country regimes; empty selects the built-in default mixture
  /// (see effective_countries()).
  std::vector<CountryRegimeSpec> countries;

  /// Built-in scale tiers: "1k", "100k", "1m" (endpoint counts).
  static std::optional<WorldSpec> tier(std::string_view name);
  /// Names of the built-in tiers, smallest first.
  static const std::vector<std::string>& tier_names();

  /// The regimes in effect: `countries`, or the default mixture when empty.
  std::vector<CountryRegimeSpec> effective_countries() const;

  /// Structural digest over every field (campaign cache-key component).
  std::uint64_t fingerprint() const;
};

std::string to_json(const WorldSpec& spec);
/// Parse a spec out of an already-parsed JSON object (the campaign spec's
/// embedded "world" object re-uses this).
std::optional<WorldSpec> spec_from_doc(const JsonValue& doc, std::string* error = nullptr);
std::optional<WorldSpec> spec_from_json(std::string_view text, std::string* error = nullptr);
std::optional<WorldSpec> load_spec_file(const std::string& path, std::string* error = nullptr);

}  // namespace cen::worldgen
