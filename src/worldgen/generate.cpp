#include "worldgen/generate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/fingerprint.hpp"
#include "core/rng.hpp"
#include "obs/observer.hpp"
#include "scenario/builder.hpp"
#include "scenario/world.hpp"

namespace cen::worldgen {

namespace {

// Phase-isolated RNG substream salts: editing one generation phase never
// shifts the draws of another.
constexpr std::uint64_t kTopoSalt = 0x776c64746f706fULL;      // "wldtopo"
constexpr std::uint64_t kRegimeSalt = 0x776c64726567ULL;      // "wldreg"
constexpr std::uint64_t kEndpointSalt = 0x776c646570ULL;      // "wldep"
constexpr std::uint64_t kNetworkSalt = 0x776f726c64ULL;       // "world"

/// First address of the worldgen allocation plan: 11.0.0.0 upward (the
/// hand-built scenarios live in 10.0.0.0/8, so the pools never collide).
constexpr std::uint32_t kAllocBase = 0x0b000000u;

std::uint32_t next_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::uint8_t prefix_len_for(std::uint32_t size) {
  std::uint8_t len = 32;
  while (size > 1) {
    size >>= 1;
    --len;
  }
  return len;
}

/// Proportional (weight-share) country assignment: index i of N lands in
/// the regime whose cumulative-weight band contains (i + 0.5) / N.
std::uint16_t country_for(std::uint32_t i, std::uint32_t n,
                          const std::vector<double>& cum_weights, double total) {
  const double target = (static_cast<double>(i) + 0.5) / static_cast<double>(n) * total;
  for (std::size_t j = 0; j < cum_weights.size(); ++j) {
    if (target < cum_weights[j]) return static_cast<std::uint16_t>(j);
  }
  return static_cast<std::uint16_t>(cum_weights.size() - 1);
}

/// Zipf-skewed largest-remainder apportionment of `total` endpoints over
/// `n` stub ASes (exponent `s`). Exact: the shares sum to `total`.
std::vector<std::uint64_t> zipf_apportion(std::uint64_t total, std::uint32_t n, double s) {
  std::vector<std::uint64_t> out(n, 0);
  if (n == 0 || total == 0) return out;
  std::vector<double> w(n);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i) + 1.0, -s);
    sum += w[i];
  }
  std::vector<std::pair<double, std::uint32_t>> frac(n);
  std::uint64_t assigned = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double exact = static_cast<double>(total) * w[i] / sum;
    out[i] = static_cast<std::uint64_t>(exact);
    assigned += out[i];
    frac[i] = {exact - static_cast<double>(out[i]), i};
  }
  // Largest fractional part first; ties resolved toward the lower index.
  std::sort(frac.begin(), frac.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (std::uint64_t r = 0; r < total - assigned; ++r) {
    out[frac[r % n].second] += 1;
  }
  return out;
}

/// Degree-weighted (degree + 1) draw over AS indices [lo, hi).
std::uint32_t draw_attachment(Rng& rng, const std::vector<std::uint32_t>& degree,
                              std::uint32_t lo, std::uint32_t hi) {
  std::uint64_t total = 0;
  for (std::uint32_t i = lo; i < hi; ++i) total += degree[i] + 1;
  std::uint64_t r = rng.uniform(total);
  for (std::uint32_t i = lo; i < hi; ++i) {
    const std::uint64_t wt = degree[i] + 1;
    if (r < wt) return i;
    r -= wt;
  }
  return hi - 1;
}

/// Randomized router profile matching scenario::Builder::router()'s
/// ICMP-behaviour mixture (§4.3 distributions).
sim::RouterProfile draw_router_profile(Rng& rng) {
  sim::RouterProfile profile;
  profile.responds_icmp = !rng.chance(0.05);
  profile.quote_policy = rng.chance(0.576) ? net::QuotePolicy::kRfc792
                                           : net::QuotePolicy::kRfc1812Full;
  if (rng.chance(0.30)) {
    profile.rewrite_tos = static_cast<std::uint8_t>(rng.range(1, 3) << 5);
  }
  profile.clears_df_flag = rng.chance(0.02);
  return profile;
}

void maybe_generic_services(Rng& rng, sim::CompactTopologyBuilder& tb, sim::NodeId id) {
  if (!rng.chance(0.40)) return;
  tb.add_service(id, {22, "ssh", "SSH-2.0-OpenSSH_8.2p1"});
  if (rng.chance(0.5)) tb.add_service(id, {23, "telnet", "login:"});
  if (rng.chance(0.3)) {
    tb.add_service(id, {161, "snmp", "SNMPv2-MIB::sysDescr Generic Router OS"});
  }
}

void mix_profile(FingerprintBuilder& fp, const sim::EndpointProfile& p) {
  fp.mix(static_cast<std::uint64_t>(p.hosted_domains.size()));
  for (const std::string& d : p.hosted_domains) fp.mix(d);
  fp.mix(p.serves_subdomains);
  fp.mix(p.strict_http);
  fp.mix(p.reject_unknown_host);
  fp.mix(p.default_vhost_for_unknown);
  fp.mix(p.reject_unknown_sni);
}

}  // namespace

std::uint64_t World::fingerprint() const {
  FingerprintBuilder fp;
  fp.mix(spec.fingerprint());
  fp.mix(seed);
  fp.mix(topology != nullptr ? topology->fingerprint() : 0);
  fp.mix(static_cast<std::uint64_t>(ases.size()));
  for (const GeneratedAs& a : ases) {
    fp.mix(static_cast<std::uint64_t>(a.asn));
    fp.mix(static_cast<std::uint64_t>(a.tier));
    fp.mix(static_cast<std::uint64_t>(a.country));
    fp.mix(static_cast<std::uint64_t>(a.prefix_base));
    fp.mix(static_cast<std::uint64_t>(a.prefix_len));
    fp.mix(static_cast<std::uint64_t>(a.first_router));
    fp.mix(static_cast<std::uint64_t>(a.router_count));
    fp.mix(a.first_endpoint);
    fp.mix(a.endpoint_count);
  }
  fp.mix(static_cast<std::uint64_t>(endpoint_ips.size()));
  for (std::uint32_t ip : endpoint_ips) fp.mix(static_cast<std::uint64_t>(ip));
  for (sim::NodeId n : endpoint_nodes) fp.mix(static_cast<std::uint64_t>(n));
  for (std::uint32_t a : endpoint_as) fp.mix(static_cast<std::uint64_t>(a));
  for (std::uint16_t t : endpoint_template) fp.mix(static_cast<std::uint64_t>(t));
  fp.mix(static_cast<std::uint64_t>(templates.size()));
  for (const auto& t : templates) mix_profile(fp, *t);
  fp.mix(static_cast<std::uint64_t>(devices.size()));
  for (const DevicePlan& d : devices) {
    fp.mix(static_cast<std::uint64_t>(d.node));
    fp.mix(d.vendor);
    fp.mix(d.on_path);
    fp.mix(static_cast<std::uint64_t>(d.service_mode));
    fp.mix(static_cast<std::uint64_t>(d.as_index));
    fp.mix(static_cast<std::uint64_t>(d.country));
  }
  fp.mix(static_cast<std::uint64_t>(client));
  return fp.digest();
}

std::size_t World::bytes() const {
  std::size_t total = topology != nullptr ? topology->bytes() : 0;
  total += endpoint_ips.capacity() * sizeof(std::uint32_t);
  total += endpoint_nodes.capacity() * sizeof(sim::NodeId);
  total += endpoint_as.capacity() * sizeof(std::uint32_t);
  total += endpoint_template.capacity() * sizeof(std::uint16_t);
  total += ases.capacity() * sizeof(GeneratedAs);
  total += devices.capacity() * sizeof(DevicePlan);
  for (const auto& t : templates) {
    total += sizeof(sim::EndpointProfile);
    for (const std::string& d : t->hosted_domains) total += d.capacity();
  }
  // Two geo routes per AS (asdb registers both sources); route storage
  // is approximated since IpMetadataDb does not expose its internals.
  total += ases.size() * 2 * 96;
  return total;
}

World::Stats World::stats() const {
  Stats s;
  s.nodes = topology != nullptr ? topology->node_count() : 0;
  s.links = topology != nullptr ? topology->link_count() : 0;
  s.endpoints = endpoint_ips.size();
  s.ases = ases.size();
  s.devices = devices.size();
  s.bytes = bytes();
  return s;
}

World generate(const WorldSpec& spec, std::uint64_t seed, obs::Observer* observer) {
  World w;
  w.spec = spec;
  w.seed = seed;
  w.regimes = spec.effective_countries();

  const std::uint32_t nT = spec.transit_ases;
  const std::uint32_t nR = spec.regional_ases;
  const std::uint32_t nS = spec.stub_ases;
  if (nT == 0 || nS == 0) {
    throw std::invalid_argument("worldgen: spec needs >=1 transit and >=1 stub AS");
  }

  // ---- Phase 1: allocation plan (countries, prefixes, populations). ----
  std::vector<double> cum_weights;
  double total_weight = 0.0;
  for (const CountryRegimeSpec& c : w.regimes) {
    total_weight += c.weight;
    cum_weights.push_back(total_weight);
  }

  const std::vector<std::uint64_t> stub_endpoints =
      zipf_apportion(spec.endpoints, nS, spec.endpoint_zipf);

  const std::uint32_t total_as = 1 + nT + nR + nS;
  w.ases.reserve(total_as);
  std::uint32_t cursor = kAllocBase;
  std::uint64_t endpoint_cursor = 0;
  auto plan_as = [&](std::uint32_t asn, AsTier tier, std::uint16_t country,
                     std::uint32_t routers, std::uint64_t endpoints) {
    GeneratedAs a;
    a.asn = asn;
    a.tier = tier;
    a.country = country;
    a.router_count = routers;
    a.first_endpoint = endpoint_cursor;
    a.endpoint_count = endpoints;
    endpoint_cursor += endpoints;
    // Hosts needed: routers + endpoints (+ the client in the meas AS);
    // +2 keeps network/broadcast-style margins, pow2 sizes align cleanly.
    const std::uint64_t needed = routers + endpoints + 2 + (tier == AsTier::kTransit && asn == 64500 ? 1 : 0);
    if (needed > 0x01000000ull) {
      throw std::length_error("worldgen: single AS exceeds /8 address budget");
    }
    const std::uint32_t size = next_pow2(static_cast<std::uint32_t>(std::max<std::uint64_t>(needed, 8)));
    cursor = (cursor + size - 1) & ~(size - 1);  // align to pool size
    if (cursor + size < cursor || cursor + size > 0xe0000000u) {
      throw std::length_error("worldgen: IPv4 allocation plan exhausted");
    }
    a.prefix_base = cursor;
    a.prefix_len = prefix_len_for(size);
    cursor += size;
    w.ases.push_back(a);
  };

  plan_as(64500, AsTier::kTransit, kNoCountry, 1, 0);  // measurement AS
  for (std::uint32_t i = 0; i < nT; ++i) {
    plan_as(3000 + i, AsTier::kTransit,
            country_for(i, nT, cum_weights, total_weight), spec.routers_per_transit, 0);
  }
  for (std::uint32_t i = 0; i < nR; ++i) {
    plan_as(20000 + i, AsTier::kRegional,
            country_for(i, nR, cum_weights, total_weight), spec.routers_per_regional, 0);
  }
  for (std::uint32_t i = 0; i < nS; ++i) {
    plan_as(45000 + i, AsTier::kStub, country_for(i, nS, cum_weights, total_weight),
            spec.routers_per_stub, stub_endpoints[i]);
  }

  // Regime realization: which stub ASes host a device, which vendor, and
  // where in the §5.2 exposure funnel it sits.
  Rng regime_rng(mix64(seed ^ kRegimeSalt));
  int dev_counter = 0;
  std::vector<bool> as_has_device(total_as, false);
  for (std::uint32_t idx = 1 + nT + nR; idx < total_as; ++idx) {
    const GeneratedAs& a = w.ases[idx];
    if (a.country == kNoCountry) continue;
    const CountryRegimeSpec& regime = w.regimes[a.country];
    if (!regime.censored || regime.vendors.empty()) continue;
    if (!regime_rng.chance(regime.deploy_coverage)) continue;
    DevicePlan plan;
    plan.vendor = regime.vendors[static_cast<std::size_t>(dev_counter) % regime.vendors.size()];
    plan.on_path = regime_rng.chance(regime.on_path_share);
    // Funnel: on-path taps have no probeable IP; of in-path devices ~1/8
    // expose nothing and ~half only generic banners (mirrors make_world).
    if (plan.on_path) {
      plan.service_mode = 1;
    } else if (dev_counter % 8 == 7) {
      plan.service_mode = 1;
    } else if (dev_counter % 2 == 1) {
      plan.service_mode = 2;
    }
    plan.as_index = idx;
    plan.country = a.country;
    w.devices.push_back(std::move(plan));
    as_has_device[idx] = true;
    ++dev_counter;
  }

  // ---- Phase 2: topology (routers, intra-AS chains, AS graph, hosts). ----
  Rng topo_rng(mix64(seed ^ kTopoSalt));
  sim::CompactTopologyBuilder tb;
  {
    std::uint64_t node_hint = 1;  // client
    std::uint64_t link_hint = 1;
    for (const GeneratedAs& a : w.ases) {
      node_hint += a.router_count + a.endpoint_count;
      link_hint += a.router_count + a.endpoint_count + 2;
    }
    tb.reserve(node_hint, link_hint);
  }

  w.endpoint_ips.reserve(spec.endpoints);
  w.endpoint_nodes.reserve(spec.endpoints);
  w.endpoint_as.reserve(spec.endpoints);

  std::vector<std::uint32_t> as_degree(total_as, 0);
  std::vector<sim::NodeId> as_border(total_as, sim::kInvalidNode);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> as_links;
  as_links.reserve(total_as * 2);

  auto link_ases = [&](std::uint32_t a, std::uint32_t b) {
    as_links.emplace_back(a, b);
    ++as_degree[a];
    ++as_degree[b];
  };

  for (std::uint32_t idx = 0; idx < total_as; ++idx) {
    GeneratedAs& a = w.ases[idx];
    const std::string as_name = "AS" + std::to_string(a.asn);
    std::uint32_t host_cursor = 1;  // .0 is the network address
    sim::NodeId prev = sim::kInvalidNode;
    for (std::uint32_t r = 0; r < a.router_count; ++r) {
      sim::RouterProfile profile = draw_router_profile(topo_rng);
      const bool is_border = r == 0;
      // Transit cores always answer TTL exhaustion (backbone behaviour);
      // so do borders carrying a deployed device (localizability, §4.1).
      if (a.tier == AsTier::kTransit || (is_border && a.tier == AsTier::kRegional) ||
          (is_border && as_has_device[idx])) {
        profile.responds_icmp = true;
      }
      sim::NodeId id = tb.add_node(as_name + ":r" + std::to_string(r),
                                   net::Ipv4Address(a.prefix_base + host_cursor++),
                                   profile);
      maybe_generic_services(topo_rng, tb, id);
      if (r == 0) {
        a.first_router = id;
        as_border[idx] = id;
      } else {
        tb.add_link(prev, id);
      }
      prev = id;
    }
    if (idx == 0) {
      // Measurement AS also hosts the vantage client.
      sim::RouterProfile host_profile;
      host_profile.responds_icmp = false;
      w.client = tb.add_node(as_name + ":client",
                             net::Ipv4Address(a.prefix_base + host_cursor++), host_profile);
      tb.add_link(as_border[0], w.client);
    }

    // Inter-AS attachment (preferential, degree + 1 weighted).
    if (a.tier == AsTier::kTransit && idx >= 1) {
      const std::uint32_t ti = idx - 1;  // transit ordinal
      if (ti == 0) {
        link_ases(idx, 0);  // first transit carries the measurement AS
      } else {
        const std::uint32_t lo = 1, hi = idx;
        std::uint32_t first = draw_attachment(topo_rng, as_degree, lo, hi);
        link_ases(idx, first);
        if (hi - lo >= 2) {
          std::uint32_t second = draw_attachment(topo_rng, as_degree, lo, hi);
          if (second == first) second = draw_attachment(topo_rng, as_degree, lo, hi);
          if (second != first) link_ases(idx, second);
        }
      }
    } else if (a.tier == AsTier::kRegional) {
      const std::uint32_t lo = 1, hi = idx;  // transits + earlier regionals
      std::uint32_t first = draw_attachment(topo_rng, as_degree, lo, hi);
      link_ases(idx, first);
      if (hi - lo >= 2) {
        std::uint32_t second = draw_attachment(topo_rng, as_degree, lo, hi);
        if (second == first) second = draw_attachment(topo_rng, as_degree, lo, hi);
        if (second != first) link_ases(idx, second);
      }
    } else if (a.tier == AsTier::kStub) {
      // Stubs home at regionals (or transits when the spec has none).
      const std::uint32_t lo = nR > 0 ? 1 + nT : 1;
      const std::uint32_t hi = nR > 0 ? 1 + nT + nR : 1 + nT;
      std::uint32_t first = draw_attachment(topo_rng, as_degree, lo, hi);
      link_ases(idx, first);
      if (hi - lo >= 2 && topo_rng.chance(0.3)) {
        std::uint32_t second = draw_attachment(topo_rng, as_degree, lo, hi);
        if (second != first) link_ases(idx, second);  // multihomed stub
      }
    }

    // Endpoint hosts: sequential IPs after the routers, round-robin
    // attachment across the AS's routers, nameless (the arena stays
    // a few tens of KB at a million hosts).
    for (std::uint64_t e = 0; e < a.endpoint_count; ++e) {
      sim::RouterProfile host_profile;
      host_profile.responds_icmp = false;
      const net::Ipv4Address ip(a.prefix_base + host_cursor++);
      sim::NodeId id = tb.add_node("", ip, host_profile);
      tb.add_link(a.first_router + static_cast<sim::NodeId>(e % a.router_count), id);
      w.endpoint_ips.push_back(ip.value());
      w.endpoint_nodes.push_back(id);
      w.endpoint_as.push_back(idx);
    }

    // Geo metadata: one route per AS pool, named for the world.
    const std::string country_code =
        a.country == kNoCountry ? "ZZ" : w.regimes[a.country].code;
    w.geodb.add_route(net::Ipv4Address(a.prefix_base), a.prefix_len,
                      geo::AsInfo{a.asn, "WG-" + as_name, country_code});
  }

  // Realize the AS graph between border routers.
  for (const auto& [x, y] : as_links) tb.add_link(as_border[x], as_border[y]);

  // Resolve device plans to their border-router nodes (known only now).
  for (DevicePlan& plan : w.devices) plan.node = as_border[plan.as_index];

  w.topology = tb.build();

  // ---- Phase 3: endpoint profile templates. ----
  Rng ep_rng(mix64(seed ^ kEndpointSalt));
  w.templates.reserve(spec.profile_templates);
  for (std::uint32_t t = 0; t < spec.profile_templates; ++t) {
    sim::EndpointProfile profile = scenario::org_endpoint_profile(
        "tpl" + std::to_string(t) + ".worldgen.example", ep_rng);
    w.templates.push_back(
        std::make_shared<const sim::EndpointProfile>(std::move(profile)));
  }
  w.endpoint_template.reserve(spec.endpoints);
  for (std::uint64_t e = 0; e < spec.endpoints; ++e) {
    w.endpoint_template.push_back(
        static_cast<std::uint16_t>(ep_rng.index(w.templates.size())));
  }

  if (observer != nullptr) {
    const World::Stats st = w.stats();
    auto& m = observer->metrics();
    m.gauge("worldgen.nodes").set_max(static_cast<std::int64_t>(st.nodes));
    m.gauge("worldgen.links").set_max(static_cast<std::int64_t>(st.links));
    m.gauge("worldgen.endpoints").set_max(static_cast<std::int64_t>(st.endpoints));
    m.gauge("worldgen.ases").set_max(static_cast<std::int64_t>(st.ases));
    m.gauge("worldgen.devices").set_max(static_cast<std::int64_t>(st.devices));
    m.gauge("worldgen.bytes").set_max(static_cast<std::int64_t>(st.bytes));
    // Phase spans with item-count durations (run-invariant: identical for
    // every thread count, like the campaign's stage spans).
    SimTime t0 = 0;
    auto phase_span = [&](const char* name, std::size_t items) {
      const SimTime t1 = t0 + static_cast<SimTime>(items);
      observer->tracer().complete(name, "worldgen", t0, t1);
      t0 = t1;
    };
    phase_span("worldgen.plan", st.ases);
    phase_span("worldgen.topology", st.nodes);
    phase_span("worldgen.regimes", st.devices);
    phase_span("worldgen.endpoints", st.endpoints);
  }
  return w;
}

GeneratedScenario instantiate(const World& world, std::int64_t max_endpoints) {
  if (world.topology == nullptr) {
    throw std::invalid_argument("worldgen::instantiate: world has no topology");
  }
  GeneratedScenario s;
  sim::Topology topo = sim::Topology::from_compact(world.topology);
  auto network = std::make_unique<sim::Network>(std::move(topo), world.geodb,
                                                mix64(world.seed ^ kNetworkSalt));

  const std::uint64_t total = world.endpoint_ips.size();
  const std::uint64_t n =
      max_endpoints < 0
          ? total
          : std::min<std::uint64_t>(total, static_cast<std::uint64_t>(max_endpoints));
  network->reserve_endpoints(n);
  s.endpoints.reserve(n);
  // Ascending-IP order by construction: every registration is an O(1)
  // append into the endpoint FlatMap.
  for (std::uint64_t e = 0; e < n; ++e) {
    network->add_endpoint_shared(world.endpoint_nodes[e],
                                 world.templates[world.endpoint_template[e]]);
    s.endpoints.emplace_back(world.endpoint_ips[e]);
  }

  std::vector<std::string> all_domains = world.spec.http_test_domains;
  all_domains.insert(all_domains.end(), world.spec.https_test_domains.begin(),
                     world.spec.https_test_domains.end());
  for (const DevicePlan& plan : world.devices) {
    const GeneratedAs& as = world.ases[plan.as_index];
    censor::DeviceConfig cfg = scenario::world_device_config(
        plan.vendor,
        world.spec.name + "-as" + std::to_string(as.asn) + "-" + plan.vendor);
    cfg.http_rules = scenario::make_rules(plan.vendor, all_domains);
    cfg.sni_rules = scenario::make_rules(plan.vendor, all_domains);
    cfg.on_path = plan.on_path;
    if (plan.service_mode == 1) {
      cfg.services.clear();
    } else if (plan.service_mode == 2) {
      cfg.services = {{22, "ssh", "SSH-2.0-OpenSSH_7.9"}, {23, "telnet", "login:"}};
    }
    std::shared_ptr<censor::Device> dev =
        scenario::deploy(*network, plan.node, std::move(cfg));
    scenario::DeviceTruth truth;
    truth.device_id = dev->config().id;
    truth.vendor = dev->config().vendor;
    truth.on_path = dev->config().on_path;
    truth.asn = as.asn;
    if (dev->config().mgmt_ip) truth.mgmt_ip = *dev->config().mgmt_ip;
    s.devices.push_back(std::move(truth));
  }

  s.network = std::move(network);
  s.client = world.client;
  s.http_test_domains = world.spec.http_test_domains;
  s.https_test_domains = world.spec.https_test_domains;
  s.control_domain = world.spec.control_domain;
  return s;
}

}  // namespace cen::worldgen
