#include "worldgen/spec.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/fingerprint.hpp"
#include "core/json.hpp"

namespace cen::worldgen {

namespace {

bool fail(std::string* error, std::string_view what) {
  if (error != nullptr) *error = std::string(what);
  return false;
}

bool parse_strings(const JsonValue& doc, std::string_view key,
                   std::vector<std::string>& out, std::string* error) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr) return true;
  if (!v->is_array()) return fail(error, std::string(key) + " must be an array");
  out.clear();
  for (const JsonValue& d : v->array) {
    if (!d.is_string()) return fail(error, std::string(key) + " entries must be strings");
    out.push_back(d.string);
  }
  return true;
}

std::uint32_t get_u32(const JsonValue& doc, std::string_view key, std::uint32_t fallback) {
  double v = doc.get_number(key, static_cast<double>(fallback));
  if (v < 0) return 0;
  return static_cast<std::uint32_t>(v);
}

}  // namespace

std::optional<WorldSpec> WorldSpec::tier(std::string_view name) {
  WorldSpec s;
  if (name == "1k") {
    s.name = "world-1k";
    s.transit_ases = 8;
    s.regional_ases = 24;
    s.stub_ases = 60;
    s.endpoints = 1'000;
    return s;
  }
  if (name == "100k") {
    s.name = "world-100k";
    s.transit_ases = 16;
    s.regional_ases = 120;
    s.stub_ases = 800;
    s.endpoints = 100'000;
    return s;
  }
  if (name == "1m") {
    s.name = "world-1m";
    s.transit_ases = 24;
    s.regional_ases = 300;
    s.stub_ases = 2'500;
    s.endpoints = 1'000'000;
    return s;
  }
  return std::nullopt;
}

const std::vector<std::string>& WorldSpec::tier_names() {
  static const std::vector<std::string> kTiers = {"1k", "100k", "1m"};
  return kTiers;
}

std::vector<CountryRegimeSpec> WorldSpec::effective_countries() const {
  if (!countries.empty()) return countries;
  // Default mixture: a censored-heavy synthetic region set spanning every
  // rule-granularity family in make_rules (exact / suffix / substring) and
  // both blockpage and RST-injection styles, plus uncensored backdrop
  // countries so campaigns see negative controls.
  std::vector<CountryRegimeSpec> defaults;
  auto add = [&defaults](std::string code, double weight, bool censored,
                         std::vector<std::string> vendors, double coverage,
                         double on_path) {
    CountryRegimeSpec c;
    c.code = std::move(code);
    c.weight = weight;
    c.censored = censored;
    c.vendors = std::move(vendors);
    c.deploy_coverage = coverage;
    c.on_path_share = on_path;
    defaults.push_back(std::move(c));
  };
  add("XA", 2.0, true, {"Fortinet", "Kerio", "PaloAlto"}, 0.6, 0.10);
  add("XB", 1.5, true, {"BY-DPI", "MikroTik"}, 0.8, 0.05);
  add("XC", 1.5, true, {"TSPU", "RU-RSTCOPY", "DDoSGuard"}, 0.7, 0.25);
  add("XD", 1.0, true, {"Cisco", "Kaspersky"}, 0.5, 0.10);
  add("XE", 2.0, false, {}, 0.0, 0.0);
  add("XF", 2.0, false, {}, 0.0, 0.0);
  return defaults;
}

std::uint64_t WorldSpec::fingerprint() const {
  FingerprintBuilder fp;
  fp.mix(name);
  fp.mix(static_cast<std::uint64_t>(transit_ases));
  fp.mix(static_cast<std::uint64_t>(regional_ases));
  fp.mix(static_cast<std::uint64_t>(stub_ases));
  fp.mix(static_cast<std::uint64_t>(routers_per_transit));
  fp.mix(static_cast<std::uint64_t>(routers_per_regional));
  fp.mix(static_cast<std::uint64_t>(routers_per_stub));
  fp.mix(endpoints);
  fp.mix(endpoint_zipf);
  fp.mix(static_cast<std::uint64_t>(profile_templates));
  fp.mix(static_cast<std::uint64_t>(http_test_domains.size()));
  for (const std::string& d : http_test_domains) fp.mix(d);
  fp.mix(static_cast<std::uint64_t>(https_test_domains.size()));
  for (const std::string& d : https_test_domains) fp.mix(d);
  fp.mix(control_domain);
  const std::vector<CountryRegimeSpec> regimes = effective_countries();
  fp.mix(static_cast<std::uint64_t>(regimes.size()));
  for (const CountryRegimeSpec& c : regimes) {
    fp.mix(c.code);
    fp.mix(c.weight);
    fp.mix(c.censored);
    fp.mix(static_cast<std::uint64_t>(c.vendors.size()));
    for (const std::string& v : c.vendors) fp.mix(v);
    fp.mix(c.deploy_coverage);
    fp.mix(c.on_path_share);
  }
  return fp.digest();
}

namespace {

/// Shortest decimal that parses back to exactly `v` (JsonWriter's default
/// %.6g is lossy; spec fingerprints must survive a JSON round-trip).
std::string lossless_double(double v) {
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

std::string to_json(const WorldSpec& spec) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value(spec.name);
  w.key("transit_ases").value(static_cast<std::uint64_t>(spec.transit_ases));
  w.key("regional_ases").value(static_cast<std::uint64_t>(spec.regional_ases));
  w.key("stub_ases").value(static_cast<std::uint64_t>(spec.stub_ases));
  w.key("routers_per_transit").value(static_cast<std::uint64_t>(spec.routers_per_transit));
  w.key("routers_per_regional").value(static_cast<std::uint64_t>(spec.routers_per_regional));
  w.key("routers_per_stub").value(static_cast<std::uint64_t>(spec.routers_per_stub));
  w.key("endpoints").value(spec.endpoints);
  w.key("endpoint_zipf").raw_value(lossless_double(spec.endpoint_zipf));
  w.key("profile_templates").value(static_cast<std::uint64_t>(spec.profile_templates));
  w.key("http_test_domains").begin_array();
  for (const std::string& d : spec.http_test_domains) w.value(d);
  w.end_array();
  w.key("https_test_domains").begin_array();
  for (const std::string& d : spec.https_test_domains) w.value(d);
  w.end_array();
  w.key("control_domain").value(spec.control_domain);
  w.key("countries").begin_array();
  for (const CountryRegimeSpec& c : spec.effective_countries()) {
    w.begin_object();
    w.key("code").value(c.code);
    w.key("weight").raw_value(lossless_double(c.weight));
    w.key("censored").value(c.censored);
    w.key("vendors").begin_array();
    for (const std::string& v : c.vendors) w.value(v);
    w.end_array();
    w.key("deploy_coverage").raw_value(lossless_double(c.deploy_coverage));
    w.key("on_path_share").raw_value(lossless_double(c.on_path_share));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::optional<WorldSpec> spec_from_doc(const JsonValue& doc, std::string* error) {
  if (!doc.is_object()) {
    fail(error, "world spec must be a JSON object");
    return std::nullopt;
  }
  WorldSpec spec;
  spec.name = doc.get_string("name", spec.name);
  spec.transit_ases = get_u32(doc, "transit_ases", spec.transit_ases);
  spec.regional_ases = get_u32(doc, "regional_ases", spec.regional_ases);
  spec.stub_ases = get_u32(doc, "stub_ases", spec.stub_ases);
  spec.routers_per_transit = get_u32(doc, "routers_per_transit", spec.routers_per_transit);
  spec.routers_per_regional = get_u32(doc, "routers_per_regional", spec.routers_per_regional);
  spec.routers_per_stub = get_u32(doc, "routers_per_stub", spec.routers_per_stub);
  spec.endpoints = static_cast<std::uint64_t>(
      doc.get_number("endpoints", static_cast<double>(spec.endpoints)));
  spec.endpoint_zipf = doc.get_number("endpoint_zipf", spec.endpoint_zipf);
  spec.profile_templates = get_u32(doc, "profile_templates", spec.profile_templates);
  if (spec.transit_ases == 0 || spec.stub_ases == 0) {
    fail(error, "world spec needs at least one transit and one stub AS");
    return std::nullopt;
  }
  if (spec.routers_per_transit == 0 || spec.routers_per_regional == 0 ||
      spec.routers_per_stub == 0) {
    fail(error, "routers_per_* must be >= 1");
    return std::nullopt;
  }
  if (spec.profile_templates == 0) {
    fail(error, "profile_templates must be >= 1");
    return std::nullopt;
  }
  if (!parse_strings(doc, "http_test_domains", spec.http_test_domains, error)) {
    return std::nullopt;
  }
  if (!parse_strings(doc, "https_test_domains", spec.https_test_domains, error)) {
    return std::nullopt;
  }
  if (spec.http_test_domains.empty() || spec.https_test_domains.empty()) {
    fail(error, "http/https test domain lists must be non-empty");
    return std::nullopt;
  }
  spec.control_domain = doc.get_string("control_domain", spec.control_domain);

  if (const JsonValue* cs = doc.find("countries"); cs != nullptr) {
    if (!cs->is_array()) {
      fail(error, "countries must be an array of regime objects");
      return std::nullopt;
    }
    for (const JsonValue& cv : cs->array) {
      if (!cv.is_object()) {
        fail(error, "countries entries must be objects");
        return std::nullopt;
      }
      CountryRegimeSpec c;
      c.code = cv.get_string("code", "");
      if (c.code.empty()) {
        fail(error, "country regime needs a non-empty code");
        return std::nullopt;
      }
      c.weight = cv.get_number("weight", c.weight);
      if (!(c.weight > 0.0)) {
        fail(error, "country weight must be > 0");
        return std::nullopt;
      }
      c.censored = cv.get_bool("censored", c.censored);
      if (!parse_strings(cv, "vendors", c.vendors, error)) return std::nullopt;
      c.deploy_coverage = cv.get_number("deploy_coverage", c.deploy_coverage);
      c.on_path_share = cv.get_number("on_path_share", c.on_path_share);
      spec.countries.push_back(std::move(c));
    }
  }
  return spec;
}

std::optional<WorldSpec> spec_from_json(std::string_view text, std::string* error) {
  auto doc = json_parse(text);
  if (doc == nullptr) {
    if (error != nullptr) *error = "not valid JSON";
    return std::nullopt;
  }
  return spec_from_doc(*doc, error);
}

std::optional<WorldSpec> load_spec_file(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open world spec file: " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return spec_from_json(text, error);
}

}  // namespace cen::worldgen
