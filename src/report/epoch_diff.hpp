// Differential reports between measurement epochs.
//
// The longitudinal service re-measures the same sites every epoch; what
// analysts consume is not the absolute snapshot but the delta: which
// endpoints became blocked, which were unblocked, where the identified
// vendor changed (blockpage rebranding, device replacement), and where
// the blocking hop moved (deployment relocation, route change). EpochDiff
// captures exactly that, computed from per-endpoint state rows in
// task-identity order so the diff is byte-identical for any worker count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cen {
class JsonValue;
}

namespace cen::report {

/// One measured (site, endpoint, domain, protocol) row at one epoch —
/// the unit the differ compares across epochs.
struct EndpointEpochState {
  std::string site;
  std::string endpoint;  // dotted IPv4
  std::string domain;
  std::string protocol;  // probe_protocol_name
  bool blocked = false;
  std::string blocking_type;  // blocking_type_name; "" when not blocked
  /// Identified vendor: the trace's blockpage fingerprint when present,
  /// else the probe-stage vendor of the blocking hop IP; "" = unknown.
  std::string vendor;
  int blocking_hop_ttl = -1;
  int endpoint_hop_distance = -1;

  /// Cross-epoch join key (everything but the measured outcome).
  std::string key() const {
    return site + ":" + endpoint + ":" + domain + ":" + protocol;
  }

  bool operator==(const EndpointEpochState&) const = default;
};

/// A row blocked in both epochs whose identified vendor changed.
struct VendorChange {
  std::string key;
  std::string from;
  std::string to;

  bool operator==(const VendorChange&) const = default;
};

/// A row blocked in both epochs whose blocking hop moved.
struct LocationMove {
  std::string key;
  int from_ttl = -1;
  int to_ttl = -1;

  int magnitude() const { return from_ttl < to_ttl ? to_ttl - from_ttl : from_ttl - to_ttl; }

  bool operator==(const LocationMove&) const = default;
};

struct EpochDiff {
  int epoch_from = 0;
  int epoch_to = 0;
  /// Blocked at epoch_to but not at epoch_from (rows new at epoch_to and
  /// already blocked count too). States are the epoch_to measurements.
  std::vector<EndpointEpochState> newly_blocked;
  /// Blocked at epoch_from, measured unblocked at epoch_to.
  std::vector<EndpointEpochState> newly_unblocked;
  std::vector<VendorChange> vendor_changes;
  std::vector<LocationMove> location_moves;

  bool any() const {
    return !newly_blocked.empty() || !newly_unblocked.empty() ||
           !vendor_changes.empty() || !location_moves.empty();
  }
  /// Nearest-rank quantile of location-move magnitudes (shared
  /// quantile_index helper; 0 when no moves).
  int move_magnitude_quantile(double f) const;

  bool operator==(const EpochDiff&) const = default;
};

/// Diff two epochs' state rows. `prev`/`next` must be in a deterministic
/// (task-identity) order; outputs follow `next`'s order (then `prev`'s for
/// rows that vanished). Rows missing from `prev` are treated as
/// not-blocked; rows missing from `next` contribute unblocked entries.
EpochDiff diff_epochs(const std::vector<EndpointEpochState>& prev,
                      const std::vector<EndpointEpochState>& next,
                      int epoch_from, int epoch_to);

/// Canonical JSON rendering (epoch_diff_from_json(to_json(d)) == d).
std::string to_json(const EpochDiff& diff);
std::optional<EpochDiff> epoch_diff_from_json(std::string_view text,
                                              std::string* error = nullptr);
std::optional<EpochDiff> epoch_diff_from_doc(const JsonValue& doc,
                                             std::string* error = nullptr);

}  // namespace cen::report
