#include "report/epoch_diff.hpp"

#include <algorithm>
#include <map>

#include "core/json.hpp"
#include "report/aggregate.hpp"

namespace cen::report {

int EpochDiff::move_magnitude_quantile(double f) const {
  if (location_moves.empty()) return 0;
  std::vector<int> mags;
  mags.reserve(location_moves.size());
  for (const LocationMove& m : location_moves) mags.push_back(m.magnitude());
  std::sort(mags.begin(), mags.end());
  return mags[quantile_index(f, mags.size())];
}

EpochDiff diff_epochs(const std::vector<EndpointEpochState>& prev,
                      const std::vector<EndpointEpochState>& next,
                      int epoch_from, int epoch_to) {
  EpochDiff diff;
  diff.epoch_from = epoch_from;
  diff.epoch_to = epoch_to;

  std::map<std::string, const EndpointEpochState*, std::less<>> by_key;
  for (const EndpointEpochState& s : prev) by_key.emplace(s.key(), &s);

  std::map<std::string, bool, std::less<>> seen;  // prev keys matched by next
  for (const EndpointEpochState& s : next) {
    const std::string key = s.key();
    auto it = by_key.find(key);
    const EndpointEpochState* old = it == by_key.end() ? nullptr : it->second;
    if (old != nullptr) seen.emplace(key, true);
    const bool was_blocked = old != nullptr && old->blocked;
    if (s.blocked && !was_blocked) diff.newly_blocked.push_back(s);
    if (!s.blocked && was_blocked) diff.newly_unblocked.push_back(s);
    if (s.blocked && was_blocked) {
      if (s.vendor != old->vendor) {
        diff.vendor_changes.push_back({key, old->vendor, s.vendor});
      }
      if (s.blocking_hop_ttl != old->blocking_hop_ttl &&
          s.blocking_hop_ttl >= 0 && old->blocking_hop_ttl >= 0) {
        diff.location_moves.push_back({key, old->blocking_hop_ttl, s.blocking_hop_ttl});
      }
    }
  }
  // Rows that vanished from the measured set while blocked: report as
  // unblocked (identity carried over from the prev-epoch state).
  for (const EndpointEpochState& s : prev) {
    if (!s.blocked || seen.count(s.key())) continue;
    EndpointEpochState gone = s;
    gone.blocked = false;
    gone.blocking_type.clear();
    gone.vendor.clear();
    gone.blocking_hop_ttl = -1;
    diff.newly_unblocked.push_back(std::move(gone));
  }
  return diff;
}

namespace {

void state_to_json(JsonWriter& w, const EndpointEpochState& s) {
  w.begin_object();
  w.key("site").value(s.site);
  w.key("endpoint").value(s.endpoint);
  w.key("domain").value(s.domain);
  w.key("protocol").value(s.protocol);
  w.key("blocked").value(s.blocked);
  w.key("blocking_type").value(s.blocking_type);
  w.key("vendor").value(s.vendor);
  w.key("blocking_hop_ttl").value(s.blocking_hop_ttl);
  w.key("endpoint_hop_distance").value(s.endpoint_hop_distance);
  w.end_object();
}

bool state_from_doc(const JsonValue& doc, EndpointEpochState& s) {
  if (!doc.is_object()) return false;
  s.site = doc.get_string("site", "");
  s.endpoint = doc.get_string("endpoint", "");
  s.domain = doc.get_string("domain", "");
  s.protocol = doc.get_string("protocol", "");
  s.blocked = doc.get_bool("blocked", false);
  s.blocking_type = doc.get_string("blocking_type", "");
  s.vendor = doc.get_string("vendor", "");
  s.blocking_hop_ttl = doc.get_int("blocking_hop_ttl", -1);
  s.endpoint_hop_distance = doc.get_int("endpoint_hop_distance", -1);
  return true;
}

}  // namespace

std::string to_json(const EpochDiff& diff) {
  JsonWriter w;
  w.begin_object();
  w.key("epoch_from").value(diff.epoch_from);
  w.key("epoch_to").value(diff.epoch_to);
  w.key("newly_blocked").begin_array();
  for (const EndpointEpochState& s : diff.newly_blocked) state_to_json(w, s);
  w.end_array();
  w.key("newly_unblocked").begin_array();
  for (const EndpointEpochState& s : diff.newly_unblocked) state_to_json(w, s);
  w.end_array();
  w.key("vendor_changes").begin_array();
  for (const VendorChange& v : diff.vendor_changes) {
    w.begin_object();
    w.key("key").value(v.key);
    w.key("from").value(v.from);
    w.key("to").value(v.to);
    w.end_object();
  }
  w.end_array();
  w.key("location_moves").begin_array();
  for (const LocationMove& m : diff.location_moves) {
    w.begin_object();
    w.key("key").value(m.key);
    w.key("from_ttl").value(m.from_ttl);
    w.key("to_ttl").value(m.to_ttl);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::optional<EpochDiff> epoch_diff_from_doc(const JsonValue& doc,
                                             std::string* error) {
  auto fail = [&](std::string_view why) -> std::optional<EpochDiff> {
    if (error != nullptr) *error = std::string(why);
    return std::nullopt;
  };
  if (!doc.is_object()) return fail("epoch_diff: not a JSON object");
  EpochDiff diff;
  diff.epoch_from = doc.get_int("epoch_from", 0);
  diff.epoch_to = doc.get_int("epoch_to", 0);
  for (const char* key : {"newly_blocked", "newly_unblocked"}) {
    const JsonValue* arr = doc.find(key);
    if (arr == nullptr) continue;
    if (!arr->is_array()) return fail("epoch_diff: state list not an array");
    auto& out = std::string_view(key) == "newly_blocked" ? diff.newly_blocked
                                                         : diff.newly_unblocked;
    for (const JsonValue& s : arr->array) {
      EndpointEpochState state;
      if (!state_from_doc(s, state)) return fail("epoch_diff: malformed state");
      out.push_back(std::move(state));
    }
  }
  if (const JsonValue* arr = doc.find("vendor_changes")) {
    if (!arr->is_array()) return fail("epoch_diff: vendor_changes not an array");
    for (const JsonValue& v : arr->array) {
      if (!v.is_object()) return fail("epoch_diff: malformed vendor change");
      diff.vendor_changes.push_back(
          {v.get_string("key", ""), v.get_string("from", ""), v.get_string("to", "")});
    }
  }
  if (const JsonValue* arr = doc.find("location_moves")) {
    if (!arr->is_array()) return fail("epoch_diff: location_moves not an array");
    for (const JsonValue& m : arr->array) {
      if (!m.is_object()) return fail("epoch_diff: malformed location move");
      diff.location_moves.push_back(
          {m.get_string("key", ""), m.get_int("from_ttl", -1), m.get_int("to_ttl", -1)});
    }
  }
  return diff;
}

std::optional<EpochDiff> epoch_diff_from_json(std::string_view text,
                                              std::string* error) {
  auto doc = json_parse(text);
  if (doc == nullptr) {
    if (error != nullptr) *error = "epoch_diff: invalid JSON";
    return std::nullopt;
  }
  return epoch_diff_from_doc(*doc, error);
}

}  // namespace cen::report
