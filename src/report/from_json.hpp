// Decoders for the tools' JSON report documents — the inverse of
// report/json_report.hpp for every field those emitters write (sweep logs
// excepted; cache records are stored sweep-less).
//
// The campaign engine runs every downstream stage off *decoded* records,
// whether the record came from a fresh measurement or the incremental
// cache, so a resumed campaign follows byte-identical control flow to an
// uninterrupted one. That only works if decoding captures everything the
// later stages consume: device-IP discovery (CenProbe targeting), blocked
// endpoints (CenFuzz targeting) and the full Table 3 feature inputs.
#pragma once

#include <optional>
#include <string_view>

#include "cenambig/cenambig.hpp"
#include "cenfuzz/cenfuzz.hpp"
#include "cenprobe/fingerprints.hpp"
#include "centrace/centrace.hpp"
#include "core/json.hpp"

namespace cen::report {

/// Decode a CenTrace report document (as written by to_json without
/// sweeps; sweep arrays, if present, are ignored). nullopt when the
/// document is not a centrace report or a required field is malformed.
std::optional<trace::CenTraceReport> trace_report_from_json(const JsonValue& doc);

/// Decode a CenProbe device report document.
std::optional<probe::DeviceProbeReport> probe_report_from_json(const JsonValue& doc);

/// Decode a CenFuzz report document. Per-request results are not part of
/// the wire format; only the classification fields round-trip.
std::optional<fuzz::CenFuzzReport> fuzz_report_from_json(const JsonValue& doc);

/// Decode a CenAmbig report document.
std::optional<ambig::AmbigReport> ambig_report_from_json(const JsonValue& doc);

/// Convenience wrappers parsing from text.
std::optional<trace::CenTraceReport> trace_report_from_json(std::string_view text);
std::optional<probe::DeviceProbeReport> probe_report_from_json(std::string_view text);
std::optional<fuzz::CenFuzzReport> fuzz_report_from_json(std::string_view text);
std::optional<ambig::AmbigReport> ambig_report_from_json(std::string_view text);

}  // namespace cen::report
