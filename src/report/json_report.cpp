#include "report/json_report.hpp"

#include "core/json.hpp"

namespace cen::report {

namespace {

void write_optional_ip(JsonWriter& w, const std::optional<net::Ipv4Address>& ip) {
  if (ip) {
    w.value(ip->str());
  } else {
    w.null();
  }
}

void write_sweep(JsonWriter& w, const trace::SingleTrace& sweep) {
  w.begin_object();
  w.key("domain").value(sweep.domain);
  w.key("terminating_ttl").value(sweep.terminating_ttl);
  w.key("terminating_response")
      .value(trace::probe_response_name(sweep.terminating_response));
  w.key("endpoint_reached").value(sweep.endpoint_reached);
  w.key("hops").begin_array();
  for (const trace::HopObservation& h : sweep.hops) {
    w.begin_object();
    w.key("ttl").value(h.ttl);
    w.key("response").value(trace::probe_response_name(h.response));
    w.key("icmp_router");
    write_optional_ip(w, h.icmp_router);
    w.key("tcp_and_icmp").value(h.tcp_and_icmp);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string to_json(const trace::CenTraceReport& report, bool include_sweeps) {
  // Key order is canonical across all three tools (asserted by
  // test_json): "tool", the measurement subject ("endpoint" / "ip"),
  // then "test_domain" / "control_domain", then tool-specific fields in
  // declaration order. The campaign cache splices these documents
  // byte-for-byte, so the order must never depend on which tool or code
  // path produced the record.
  JsonWriter w;
  w.begin_object();
  w.key("tool").value("centrace");
  w.key("endpoint").value(report.endpoint.str());
  w.key("test_domain").value(report.test_domain);
  w.key("control_domain").value(report.control_domain);
  w.key("protocol").value(trace::probe_protocol_name(report.protocol));
  w.key("blocked").value(report.blocked);
  w.key("blocking_type").value(trace::blocking_type_name(report.blocking_type));
  w.key("location").value(trace::blocking_location_name(report.location));
  w.key("placement").value(trace::device_placement_name(report.placement));
  w.key("blocking_hop_ttl").value(report.blocking_hop_ttl);
  w.key("blocking_hop_ip");
  write_optional_ip(w, report.blocking_hop_ip);
  if (report.blocking_as) {
    w.key("blocking_as").begin_object();
    w.key("asn").value(static_cast<std::int64_t>(report.blocking_as->asn));
    w.key("name").value(report.blocking_as->name);
    w.key("country").value(report.blocking_as->country);
    w.end_object();
  } else {
    w.key("blocking_as").null();
  }
  w.key("endpoint_hop_distance").value(report.endpoint_hop_distance);
  w.key("ttl_copy_detected").value(report.ttl_copy_detected);
  if (report.blockpage_vendor) {
    w.key("blockpage_vendor").value(*report.blockpage_vendor);
  } else {
    w.key("blockpage_vendor").null();
  }
  // Header fields of the injected packet — the Table 3 clustering
  // features. Emitting them makes the document round-trippable: a cached
  // record decodes back into a report that clusters identically.
  if (report.injected_packet) {
    const net::Packet& inj = *report.injected_packet;
    w.key("injected_packet").begin_object();
    w.key("ip_ttl").value(static_cast<std::int64_t>(inj.ip.ttl));
    w.key("ip_id").value(static_cast<std::int64_t>(inj.ip.identification));
    w.key("ip_flags").value(static_cast<std::int64_t>(inj.ip.flags));
    w.key("ip_tos").value(static_cast<std::int64_t>(inj.ip.tos));
    w.key("tcp_window").value(static_cast<std::int64_t>(inj.tcp.window));
    w.key("tcp_flags").value(static_cast<std::int64_t>(inj.tcp.flags));
    w.end_object();
  } else {
    w.key("injected_packet").null();
  }
  w.key("confidence").begin_object();
  w.key("overall").value(report.confidence.overall);
  w.key("response_agreement").value(report.confidence.response_agreement);
  w.key("ttl_agreement").value(report.confidence.ttl_agreement);
  w.key("control_path_stability").value(report.confidence.control_path_stability);
  w.key("icmp_rate_limited").value(report.confidence.icmp_rate_limited);
  w.key("path_churn").value(report.confidence.path_churn);
  w.key("loss_recovered_probes").value(
      static_cast<std::int64_t>(report.confidence.loss_recovered_probes));
  w.key("hop_confidence").begin_array();
  for (double hc : report.confidence.hop_confidence) w.value(hc);
  w.end_array();
  w.end_object();
  w.key("degradation").begin_object();
  w.key("mode").value(trace::degradation_mode_name(report.degradation.mode));
  w.key("icmp_answer_rate").value(report.degradation.icmp_answer_rate);
  w.key("dead_channel_sweeps")
      .value(static_cast<std::int64_t>(report.degradation.dead_channel_sweeps));
  w.key("vantage_count").value(static_cast<std::int64_t>(report.degradation.vantage_count));
  w.key("tomography_observations")
      .value(static_cast<std::int64_t>(report.degradation.tomography_observations));
  w.key("tomography_solved").value(report.degradation.tomography_solved);
  w.key("candidate_links").begin_array();
  for (const trace::BlamedLink& link : report.degradation.candidate_links) {
    w.begin_object();
    w.key("ip_a").value(link.ip_a.str());
    w.key("ip_b").value(link.ip_b.str());
    w.key("confidence").value(link.confidence);
    w.key("blocked_paths").value(static_cast<std::int64_t>(link.blocked_paths));
    w.key("clean_paths").value(static_cast<std::int64_t>(link.clean_paths));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("control_path").begin_array();
  for (const auto& hop : report.control_path) {
    write_optional_ip(w, hop);
  }
  w.end_array();
  w.key("quote_diffs").begin_array();
  for (const trace::QuoteDiff& d : report.quote_diffs) {
    w.begin_object();
    w.key("router").value(d.router.str());
    w.key("parse_ok").value(d.parse_ok);
    w.key("rfc792_minimal").value(d.rfc792_minimal);
    w.key("full_tcp_quoted").value(d.full_tcp_quoted);
    w.key("tos_changed").value(d.tos_changed);
    w.key("ip_flags_changed").value(d.ip_flags_changed);
    w.key("ports_match").value(d.ports_match);
    w.end_object();
  }
  w.end_array();
  if (include_sweeps) {
    w.key("control_sweeps").begin_array();
    for (const trace::SingleTrace& sweep : report.control_traces) write_sweep(w, sweep);
    w.end_array();
    w.key("test_sweeps").begin_array();
    for (const trace::SingleTrace& sweep : report.test_traces) write_sweep(w, sweep);
    w.end_array();
  }
  w.end_object();
  return w.str();
}

std::string to_json(const fuzz::CenFuzzReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("tool").value("cenfuzz");
  w.key("endpoint").value(report.endpoint.str());
  w.key("test_domain").value(report.test_domain);
  w.key("control_domain").value(report.control_domain);
  w.key("http_baseline_blocked").value(report.http_baseline_blocked);
  w.key("tls_baseline_blocked").value(report.tls_baseline_blocked);
  w.key("total_requests").value(static_cast<std::uint64_t>(report.total_requests));
  w.key("skipped_strategies").value(static_cast<std::uint64_t>(report.skipped_strategies));
  w.key("measurements").begin_array();
  for (const fuzz::FuzzMeasurement& m : report.measurements) {
    w.begin_object();
    w.key("strategy").value(m.strategy);
    w.key("permutation").value(m.permutation);
    w.key("https").value(m.https);
    w.key("outcome").value(fuzz::fuzz_outcome_name(m.outcome));
    w.key("circumvented").value(m.circumvented);
    w.key("baseline_failed").value(m.baseline_failed);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string to_json(const ambig::AmbigReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("tool").value("cenambig");
  w.key("endpoint").value(report.endpoint.str());
  w.key("test_domain").value(report.test_domain);
  w.key("control_domain").value(report.control_domain);
  w.key("baseline_blocked").value(report.baseline_blocked);
  w.key("endpoint_distance").value(static_cast<std::int64_t>(report.endpoint_distance));
  w.key("insertion_ttl").value(static_cast<std::int64_t>(report.insertion_ttl));
  w.key("total_probes_sent").value(static_cast<std::uint64_t>(report.total_probes_sent));
  w.key("probes").begin_array();
  for (const ambig::AmbigProbeResult& p : report.probes) {
    w.begin_object();
    w.key("name").value(p.name);
    w.key("test_outcome").value(ambig::probe_outcome_name(p.test_outcome));
    w.key("control_outcome").value(ambig::probe_outcome_name(p.control_outcome));
    w.key("test_blocked_votes").value(static_cast<std::int64_t>(p.test_blocked_votes));
    w.key("control_clean_votes").value(static_cast<std::int64_t>(p.control_clean_votes));
    w.key("repetitions").value(static_cast<std::int64_t>(p.repetitions));
    w.key("discrepant").value(p.discrepant);
    w.key("testable").value(p.testable);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string to_json(const probe::DeviceProbeReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("tool").value("cenprobe");
  w.key("ip").value(report.ip.str());
  w.key("open_ports").begin_array();
  for (std::uint16_t p : report.open_ports) w.value(static_cast<std::int64_t>(p));
  w.end_array();
  w.key("banners").begin_array();
  for (const probe::BannerGrab& grab : report.banners) {
    w.begin_object();
    w.key("port").value(static_cast<std::int64_t>(grab.port));
    w.key("protocol").value(grab.protocol);
    w.key("banner").value(grab.banner);
    w.key("complete").value(grab.complete);
    w.key("attempts").value(static_cast<std::int64_t>(grab.attempts));
    w.end_object();
  }
  w.end_array();
  if (report.vendor) {
    w.key("vendor").value(*report.vendor);
  } else {
    w.key("vendor").null();
  }
  if (report.stack) {
    w.key("stack").begin_object();
    w.key("synack_ttl").value(static_cast<std::int64_t>(report.stack->synack_ttl));
    w.key("synack_window").value(static_cast<std::int64_t>(report.stack->synack_window));
    w.key("mss").value(static_cast<std::int64_t>(report.stack->mss));
    w.key("sack_permitted").value(report.stack->sack_permitted);
    w.key("rst_ttl").value(static_cast<std::int64_t>(report.stack->rst_ttl));
    w.end_object();
  } else {
    w.key("stack").null();
  }
  w.end_object();
  return w.str();
}

std::string to_json(const scenario::PipelineResult& result) {
  // Composed from the per-report serializers (each emits a complete JSON
  // document spliced in via raw_value), so escaping and comma/structure
  // bookkeeping all live in JsonWriter — no hand-rolled string assembly.
  JsonWriter w;
  w.begin_object();
  w.key("country").value(result.country);
  w.key("remote_traces").begin_array();
  for (const trace::CenTraceReport& t : result.remote_traces) {
    w.raw_value(to_json(t, /*include_sweeps=*/true));
  }
  w.end_array();
  w.key("incountry_traces").begin_array();
  for (const trace::CenTraceReport& t : result.incountry_traces) {
    w.raw_value(to_json(t, /*include_sweeps=*/true));
  }
  w.end_array();
  w.key("device_probes").begin_object();
  for (const auto& [ip, rep] : result.device_probes) {
    w.key(net::Ipv4Address(ip).str()).raw_value(to_json(rep));
  }
  w.end_object();
  w.key("measurements").begin_array();
  for (const ml::EndpointMeasurement& m : result.measurements) {
    w.begin_object();
    w.key("endpoint_id").value(m.endpoint_id);
    w.key("fuzz");
    if (m.fuzz) {
      w.raw_value(to_json(*m.fuzz));
    } else {
      w.null();
    }
    w.key("banner");
    if (m.banner) {
      w.raw_value(to_json(*m.banner));
    } else {
      w.null();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string to_json(const obs::Observer& observer, bool include_wall) {
  JsonWriter w;
  w.begin_object();
  w.key("metrics").raw_value(observer.metrics().to_json(include_wall));
  w.key("journal").raw_value(observer.journal().to_json());
  w.key("span_count").value(static_cast<std::uint64_t>(observer.tracer().spans().size()));
  w.end_object();
  return w.str();
}

}  // namespace cen::report
