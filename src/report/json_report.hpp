// JSON serialization of the measurement tools' reports — the machine-
// readable output format the open-source CenTrace/CenFuzz/CenProbe tools
// write (one JSON document per measurement, suitable for JSONL streams).
#pragma once

#include <string>

#include "cenambig/cenambig.hpp"
#include "cenfuzz/cenfuzz.hpp"
#include "cenprobe/fingerprints.hpp"
#include "centrace/centrace.hpp"
#include "obs/observer.hpp"
#include "scenario/pipeline.hpp"

namespace cen::report {

/// Full CenTrace report: verdict, localisation, per-sweep hop logs.
std::string to_json(const trace::CenTraceReport& report, bool include_sweeps = false);

/// Full CenFuzz report: baseline state + one record per permutation.
std::string to_json(const fuzz::CenFuzzReport& report);

/// CenProbe device report: ports, banners, vendor label.
std::string to_json(const probe::DeviceProbeReport& report);

/// CenAmbig report: endpoint distance, per-probe verdicts and votes.
std::string to_json(const ambig::AmbigReport& report);

/// Whole pipeline result: country, every remote/in-country trace (with
/// per-sweep hop logs), device probes keyed by IP and the per-endpoint
/// measurement bundles. This is the canonical golden-file format the
/// serial-vs-parallel determinism tests byte-compare.
std::string to_json(const scenario::PipelineResult& result);

/// Observability snapshot: the metrics registry plus the measurement
/// journal as one JSON document (spans are exported separately, in Chrome
/// trace-event format — obs::Tracer::to_chrome_json). With
/// `include_wall = false` (default) only sim-domain metrics are emitted,
/// so the document is byte-identical across worker counts; passing true
/// adds the host-clock wall-domain series for profiling.
std::string to_json(const obs::Observer& observer, bool include_wall = false);

}  // namespace cen::report
