#include "report/aggregate.hpp"

#include <algorithm>
#include <cmath>

namespace cen::report {

std::size_t quantile_index(double f, std::size_t n) {
  if (n == 0) return 0;
  // NaN fails both comparisons; treat it as 0 (the minimum).
  if (!(f > 0.0)) return 0;
  if (f >= 1.0) return n - 1;
  const double rank = std::ceil(f * static_cast<double>(n));
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return std::min(idx, n - 1);
}

int BlockingDistribution::type_total(const std::string& type) const {
  auto it = counts.find(type);
  if (it == counts.end()) return 0;
  int total = 0;
  for (const auto& [loc, n] : it->second) total += n;
  return total;
}

int BlockingDistribution::location_total(const std::string& location) const {
  int total = 0;
  for (const auto& [type, locs] : counts) {
    auto it = locs.find(location);
    if (it != locs.end()) total += it->second;
  }
  return total;
}

BlockingDistribution blocking_distribution(
    const std::vector<trace::CenTraceReport>& traces) {
  BlockingDistribution d;
  for (const trace::CenTraceReport& t : traces) {
    if (!t.blocked) continue;
    ++d.total_blocked;
    d.counts[std::string(trace::blocking_type_name(t.blocking_type))]
            [std::string(trace::blocking_location_name(t.location))]++;
  }
  return d;
}

int PlacementDistribution::hops_quantile(double f) const {
  if (hops_from_endpoint.empty()) return 0;
  std::vector<int> sorted = hops_from_endpoint;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank convention via the shared clamped helper: the old
  // unclamped `f * (size - 1)` truncation biased every quantile low and
  // turned an out-of-range fraction into an out-of-bounds index (a
  // negative double casts to a huge size_t).
  return sorted[quantile_index(f, sorted.size())];
}

double PlacementDistribution::share_within(int k) const {
  if (hops_from_endpoint.empty()) return 0.0;
  int within = 0;
  for (int h : hops_from_endpoint) {
    if (h <= k) ++within;
  }
  return static_cast<double>(within) / hops_from_endpoint.size();
}

PlacementDistribution placement_distribution(
    const std::vector<trace::CenTraceReport>& traces) {
  PlacementDistribution d;
  for (const trace::CenTraceReport& t : traces) {
    if (!t.blocked || t.location != trace::BlockingLocation::kOnPathToEndpoint) continue;
    if (t.placement == trace::DevicePlacement::kInPath) ++d.in_path;
    if (t.placement == trace::DevicePlacement::kOnPath) ++d.on_path;
    if (t.endpoint_hop_distance > 0 && t.blocking_hop_ttl > 0) {
      d.hops_from_endpoint.push_back(t.endpoint_hop_distance - t.blocking_hop_ttl);
    }
  }
  return d;
}

std::map<std::string, int> blocked_by_as(
    const std::vector<trace::CenTraceReport>& traces) {
  std::map<std::string, int> out;
  for (const trace::CenTraceReport& t : traces) {
    if (!t.blocked || !t.blocking_as) continue;
    out["AS" + std::to_string(t.blocking_as->asn) + " " + t.blocking_as->name + " (" +
        t.blocking_as->country + ")"]++;
  }
  return out;
}

std::map<std::string, StrategyTally> strategy_success(
    const std::vector<ml::EndpointMeasurement>& measurements) {
  std::map<std::string, StrategyTally> out;
  for (const ml::EndpointMeasurement& m : measurements) {
    if (!m.fuzz) continue;
    for (const fuzz::FuzzMeasurement& f : m.fuzz->measurements) {
      if (f.outcome == fuzz::FuzzOutcome::kUntestable) continue;
      StrategyTally& t = out[f.strategy];
      ++t.total;
      if (f.outcome == fuzz::FuzzOutcome::kSuccessful) ++t.successful;
    }
  }
  return out;
}

std::map<std::string, StrategyTally> permutation_success(
    const std::vector<ml::EndpointMeasurement>& measurements,
    const std::string& strategy) {
  std::map<std::string, StrategyTally> out;
  for (const ml::EndpointMeasurement& m : measurements) {
    if (!m.fuzz) continue;
    for (const fuzz::FuzzMeasurement& f : m.fuzz->measurements) {
      if (f.strategy != strategy || f.outcome == fuzz::FuzzOutcome::kUntestable) continue;
      StrategyTally& t = out[f.permutation];
      ++t.total;
      if (f.outcome == fuzz::FuzzOutcome::kSuccessful) ++t.successful;
    }
  }
  return out;
}

}  // namespace cen::report
