// Aggregation of measurement results into the tallies the paper's tables
// and figures report. The bench binaries print these; tests pin their
// arithmetic.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "scenario/pipeline.hpp"

namespace cen::report {

/// Nearest-rank quantile index over `n` sorted samples: the smallest
/// index i with (i + 1) / n >= f, i.e. ceil(f * n) - 1, clamped to
/// [0, n - 1]. `f` itself is clamped to [0, 1] first (NaN reads as 0), so
/// a caller-computed fraction that drifts outside the unit interval can
/// never index out of bounds. Shared by every percentile the report layer
/// computes (hops_quantile, the epoch-diff percentiles).
std::size_t quantile_index(double f, std::size_t n);

/// Figure 3's matrix: blocked CT counts by terminating-response type and
/// blocking location.
struct BlockingDistribution {
  /// counts[type][location] using blocking_type_name / blocking_location_name keys.
  std::map<std::string, std::map<std::string, int>> counts;
  int total_blocked = 0;

  int type_total(const std::string& type) const;
  int location_total(const std::string& location) const;
};

BlockingDistribution blocking_distribution(
    const std::vector<trace::CenTraceReport>& traces);

/// Figure 4's view: in-path/on-path counts and hops-from-endpoint samples
/// for blocking located strictly between client and endpoint.
struct PlacementDistribution {
  int in_path = 0;
  int on_path = 0;
  std::vector<int> hops_from_endpoint;  // unsorted samples

  /// Nearest-rank quantile over the samples (see quantile_index; f is
  /// clamped to [0, 1]); 0 when empty.
  int hops_quantile(double f) const;
  /// Fraction of samples within `k` hops of the endpoint.
  double share_within(int k) const;
};

PlacementDistribution placement_distribution(
    const std::vector<trace::CenTraceReport>& traces);

/// Per-AS blocked-CT tally ("AS<asn> <name> (<cc>)" -> count).
std::map<std::string, int> blocked_by_as(
    const std::vector<trace::CenTraceReport>& traces);

/// Figure 5's per-strategy evasion tallies across fuzz reports.
struct StrategyTally {
  int successful = 0;
  int total = 0;  // successful + not-successful (untestable excluded)
  double rate() const { return total == 0 ? 0.0 : double(successful) / total; }
};

std::map<std::string, StrategyTally> strategy_success(
    const std::vector<ml::EndpointMeasurement>& measurements);

/// Permutation-level tallies for one strategy ("permutation" -> tally).
std::map<std::string, StrategyTally> permutation_success(
    const std::vector<ml::EndpointMeasurement>& measurements,
    const std::string& strategy);

}  // namespace cen::report
