#include "report/from_json.hpp"

namespace cen::report {

namespace {

/// Parse an enum by matching its wire name over the value range
/// [0, count) — the name tables are the single source of truth, so the
/// decoders can never drift from the emitters.
template <typename E, typename NameFn>
std::optional<E> enum_from_name(std::string_view name, int count, NameFn name_of) {
  for (int i = 0; i < count; ++i) {
    E candidate = static_cast<E>(i);
    if (name_of(candidate) == name) return candidate;
  }
  return std::nullopt;
}

std::optional<net::Ipv4Address> ip_field(const JsonValue& doc, std::string_view key) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return net::Ipv4Address::parse(v->string);
}

std::optional<std::string> optional_string(const JsonValue& doc, std::string_view key) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->string;
}

}  // namespace

std::optional<trace::CenTraceReport> trace_report_from_json(const JsonValue& doc) {
  if (!doc.is_object() || doc.get_string("tool", "") != "centrace") return std::nullopt;
  trace::CenTraceReport r;
  auto endpoint = ip_field(doc, "endpoint");
  if (!endpoint) return std::nullopt;
  r.endpoint = *endpoint;
  r.test_domain = doc.get_string("test_domain", "");
  r.control_domain = doc.get_string("control_domain", "");
  auto protocol = enum_from_name<trace::ProbeProtocol>(doc.get_string("protocol", ""), 4,
                                                       trace::probe_protocol_name);
  if (!protocol) return std::nullopt;
  r.protocol = *protocol;
  r.blocked = doc.get_bool("blocked", false);
  auto btype = enum_from_name<trace::BlockingType>(doc.get_string("blocking_type", ""),
                                                   5, trace::blocking_type_name);
  auto loc = enum_from_name<trace::BlockingLocation>(doc.get_string("location", ""), 5,
                                                     trace::blocking_location_name);
  auto placement = enum_from_name<trace::DevicePlacement>(
      doc.get_string("placement", ""), 3, trace::device_placement_name);
  if (!btype || !loc || !placement) return std::nullopt;
  r.blocking_type = *btype;
  r.location = *loc;
  r.placement = *placement;
  r.blocking_hop_ttl = doc.get_int("blocking_hop_ttl", -1);
  r.blocking_hop_ip = ip_field(doc, "blocking_hop_ip");
  if (const JsonValue* as = doc.find("blocking_as"); as != nullptr && as->is_object()) {
    geo::AsInfo info;
    info.asn = static_cast<std::uint32_t>(as->get_number("asn", 0));
    info.name = as->get_string("name", "");
    info.country = as->get_string("country", "");
    r.blocking_as = info;
  }
  r.endpoint_hop_distance = doc.get_int("endpoint_hop_distance", -1);
  r.ttl_copy_detected = doc.get_bool("ttl_copy_detected", false);
  r.blockpage_vendor = optional_string(doc, "blockpage_vendor");
  if (const JsonValue* inj = doc.find("injected_packet");
      inj != nullptr && inj->is_object()) {
    net::Packet p;
    p.ip.ttl = static_cast<std::uint8_t>(inj->get_int("ip_ttl", 0));
    p.ip.identification = static_cast<std::uint16_t>(inj->get_int("ip_id", 0));
    p.ip.flags = static_cast<std::uint8_t>(inj->get_int("ip_flags", 0));
    p.ip.tos = static_cast<std::uint8_t>(inj->get_int("ip_tos", 0));
    p.tcp.window = static_cast<std::uint16_t>(inj->get_int("tcp_window", 0));
    p.tcp.flags = static_cast<std::uint8_t>(inj->get_int("tcp_flags", 0));
    r.injected_packet = std::move(p);
  }
  if (const JsonValue* conf = doc.find("confidence");
      conf != nullptr && conf->is_object()) {
    trace::TraceConfidence& c = r.confidence;
    c.overall = conf->get_number("overall", 1.0);
    c.response_agreement = conf->get_number("response_agreement", 1.0);
    c.ttl_agreement = conf->get_number("ttl_agreement", 1.0);
    c.control_path_stability = conf->get_number("control_path_stability", 1.0);
    c.icmp_rate_limited = conf->get_bool("icmp_rate_limited", false);
    c.path_churn = conf->get_bool("path_churn", false);
    c.loss_recovered_probes = conf->get_int("loss_recovered_probes", 0);
    if (const JsonValue* hc = conf->find("hop_confidence");
        hc != nullptr && hc->is_array()) {
      for (const JsonValue& v : hc->array) {
        if (v.is_number()) c.hop_confidence.push_back(v.number);
      }
    }
  }
  if (const JsonValue* deg = doc.find("degradation");
      deg != nullptr && deg->is_object()) {
    trace::DegradationInfo& d = r.degradation;
    auto mode = enum_from_name<trace::DegradationMode>(deg->get_string("mode", ""), 4,
                                                       trace::degradation_mode_name);
    if (!mode) return std::nullopt;
    d.mode = *mode;
    d.icmp_answer_rate = deg->get_number("icmp_answer_rate", 1.0);
    d.dead_channel_sweeps = deg->get_int("dead_channel_sweeps", 0);
    d.vantage_count = deg->get_int("vantage_count", 1);
    d.tomography_observations = deg->get_int("tomography_observations", 0);
    d.tomography_solved = deg->get_bool("tomography_solved", false);
    if (const JsonValue* links = deg->find("candidate_links");
        links != nullptr && links->is_array()) {
      for (const JsonValue& lv : links->array) {
        if (!lv.is_object()) continue;
        trace::BlamedLink link;
        if (auto a = net::Ipv4Address::parse(lv.get_string("ip_a", ""))) link.ip_a = *a;
        if (auto b = net::Ipv4Address::parse(lv.get_string("ip_b", ""))) link.ip_b = *b;
        link.confidence = lv.get_number("confidence", 0.0);
        link.blocked_paths = lv.get_int("blocked_paths", 0);
        link.clean_paths = lv.get_int("clean_paths", 0);
        d.candidate_links.push_back(link);
      }
    }
  }
  if (const JsonValue* cp = doc.find("control_path"); cp != nullptr && cp->is_array()) {
    for (const JsonValue& hop : cp->array) {
      if (hop.is_string()) {
        r.control_path.push_back(net::Ipv4Address::parse(hop.string));
      } else {
        r.control_path.push_back(std::nullopt);
      }
    }
  }
  if (const JsonValue* qd = doc.find("quote_diffs"); qd != nullptr && qd->is_array()) {
    for (const JsonValue& d : qd->array) {
      if (!d.is_object()) continue;
      trace::QuoteDiff diff;
      if (auto router = net::Ipv4Address::parse(d.get_string("router", ""))) {
        diff.router = *router;
      }
      diff.parse_ok = d.get_bool("parse_ok", false);
      diff.rfc792_minimal = d.get_bool("rfc792_minimal", false);
      diff.full_tcp_quoted = d.get_bool("full_tcp_quoted", false);
      diff.tos_changed = d.get_bool("tos_changed", false);
      diff.ip_flags_changed = d.get_bool("ip_flags_changed", false);
      diff.ports_match = d.get_bool("ports_match", true);
      r.quote_diffs.push_back(diff);
    }
  }
  return r;
}

std::optional<probe::DeviceProbeReport> probe_report_from_json(const JsonValue& doc) {
  if (!doc.is_object() || doc.get_string("tool", "") != "cenprobe") return std::nullopt;
  probe::DeviceProbeReport r;
  auto ip = ip_field(doc, "ip");
  if (!ip) return std::nullopt;
  r.ip = *ip;
  if (const JsonValue* ports = doc.find("open_ports"); ports != nullptr && ports->is_array()) {
    for (const JsonValue& p : ports->array) {
      if (p.is_number()) r.open_ports.push_back(static_cast<std::uint16_t>(p.number));
    }
  }
  if (const JsonValue* banners = doc.find("banners"); banners != nullptr && banners->is_array()) {
    for (const JsonValue& b : banners->array) {
      if (!b.is_object()) continue;
      probe::BannerGrab grab;
      grab.ip = r.ip;
      grab.port = static_cast<std::uint16_t>(b.get_int("port", 0));
      grab.protocol = b.get_string("protocol", "");
      grab.banner = b.get_string("banner", "");
      grab.complete = b.get_bool("complete", true);
      grab.attempts = b.get_int("attempts", 1);
      r.banners.push_back(std::move(grab));
    }
  }
  r.vendor = optional_string(doc, "vendor");
  if (const JsonValue* stack = doc.find("stack"); stack != nullptr && stack->is_object()) {
    censor::StackFingerprint fp;
    fp.synack_ttl = static_cast<std::uint8_t>(stack->get_int("synack_ttl", 64));
    fp.synack_window = static_cast<std::uint16_t>(stack->get_int("synack_window", 0));
    fp.mss = static_cast<std::uint16_t>(stack->get_int("mss", 0));
    fp.sack_permitted = stack->get_bool("sack_permitted", false);
    fp.rst_ttl = static_cast<std::uint8_t>(stack->get_int("rst_ttl", 64));
    r.stack = fp;
  }
  return r;
}

std::optional<fuzz::CenFuzzReport> fuzz_report_from_json(const JsonValue& doc) {
  if (!doc.is_object() || doc.get_string("tool", "") != "cenfuzz") return std::nullopt;
  fuzz::CenFuzzReport r;
  auto endpoint = ip_field(doc, "endpoint");
  if (!endpoint) return std::nullopt;
  r.endpoint = *endpoint;
  r.test_domain = doc.get_string("test_domain", "");
  r.control_domain = doc.get_string("control_domain", "");
  r.http_baseline_blocked = doc.get_bool("http_baseline_blocked", false);
  r.tls_baseline_blocked = doc.get_bool("tls_baseline_blocked", false);
  r.total_requests = static_cast<std::size_t>(doc.get_number("total_requests", 0));
  r.skipped_strategies = static_cast<std::size_t>(doc.get_number("skipped_strategies", 0));
  if (const JsonValue* ms = doc.find("measurements"); ms != nullptr && ms->is_array()) {
    for (const JsonValue& m : ms->array) {
      if (!m.is_object()) continue;
      fuzz::FuzzMeasurement fm;
      fm.strategy = m.get_string("strategy", "");
      fm.permutation = m.get_string("permutation", "");
      fm.https = m.get_bool("https", false);
      auto outcome = enum_from_name<fuzz::FuzzOutcome>(m.get_string("outcome", ""), 3,
                                                       fuzz::fuzz_outcome_name);
      if (!outcome) return std::nullopt;
      fm.outcome = *outcome;
      fm.circumvented = m.get_bool("circumvented", false);
      fm.baseline_failed = m.get_bool("baseline_failed", false);
      r.measurements.push_back(std::move(fm));
    }
  }
  return r;
}

std::optional<ambig::AmbigReport> ambig_report_from_json(const JsonValue& doc) {
  if (!doc.is_object() || doc.get_string("tool", "") != "cenambig") return std::nullopt;
  ambig::AmbigReport r;
  auto endpoint = ip_field(doc, "endpoint");
  if (!endpoint) return std::nullopt;
  r.endpoint = *endpoint;
  r.test_domain = doc.get_string("test_domain", "");
  r.control_domain = doc.get_string("control_domain", "");
  r.baseline_blocked = doc.get_bool("baseline_blocked", false);
  r.endpoint_distance = static_cast<int>(doc.get_number("endpoint_distance", -1));
  r.insertion_ttl = static_cast<int>(doc.get_number("insertion_ttl", -1));
  r.total_probes_sent = static_cast<std::size_t>(doc.get_number("total_probes_sent", 0));
  if (const JsonValue* ps = doc.find("probes"); ps != nullptr && ps->is_array()) {
    for (const JsonValue& p : ps->array) {
      if (!p.is_object()) continue;
      ambig::AmbigProbeResult pr;
      pr.name = p.get_string("name", "");
      auto test = enum_from_name<ambig::ProbeOutcome>(p.get_string("test_outcome", ""),
                                                      5, ambig::probe_outcome_name);
      auto control = enum_from_name<ambig::ProbeOutcome>(
          p.get_string("control_outcome", ""), 5, ambig::probe_outcome_name);
      if (!test || !control) return std::nullopt;
      pr.test_outcome = *test;
      pr.control_outcome = *control;
      pr.test_blocked_votes = static_cast<int>(p.get_number("test_blocked_votes", 0));
      pr.control_clean_votes = static_cast<int>(p.get_number("control_clean_votes", 0));
      pr.repetitions = static_cast<int>(p.get_number("repetitions", 0));
      pr.discrepant = p.get_bool("discrepant", false);
      pr.testable = p.get_bool("testable", true);
      r.probes.push_back(std::move(pr));
    }
  }
  return r;
}

namespace {

template <typename Fn>
auto parse_then(std::string_view text, Fn decode)
    -> decltype(decode(std::declval<const JsonValue&>())) {
  auto doc = json_parse(text);
  if (doc == nullptr) return std::nullopt;
  return decode(*doc);
}

}  // namespace

std::optional<trace::CenTraceReport> trace_report_from_json(std::string_view text) {
  return parse_then(text, [](const JsonValue& d) { return trace_report_from_json(d); });
}

std::optional<probe::DeviceProbeReport> probe_report_from_json(std::string_view text) {
  return parse_then(text, [](const JsonValue& d) { return probe_report_from_json(d); });
}

std::optional<fuzz::CenFuzzReport> fuzz_report_from_json(std::string_view text) {
  return parse_then(text, [](const JsonValue& d) { return fuzz_report_from_json(d); });
}

std::optional<ambig::AmbigReport> ambig_report_from_json(std::string_view text) {
  return parse_then(text, [](const JsonValue& d) { return ambig_report_from_json(d); });
}

}  // namespace cen::report
