// Random-forest classifier with MDI feature importances (paper §7.2).
//
// The paper trains a random forest on the labelled (blockpage-matched)
// deployments, extracts mean-decrease-in-impurity per feature across
// 3 × 5-fold cross-validation (15 fits), and keeps the top-10 features for
// the unsupervised clustering step.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ml/decision_tree.hpp"

namespace cen::ml {

struct ForestOptions {
  std::size_t n_trees = 100;
  TreeOptions tree;
  std::uint64_t seed = 42;
};

class RandomForest {
 public:
  explicit RandomForest(ForestOptions options = {}) : options_(options) {}

  /// Fit on rows `train_indices` of (x, y); labels must be in [0, n_classes).
  void fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<std::size_t>& train_indices, int n_classes);

  int predict(const Row& row) const;
  /// Fraction of `indices` predicted correctly.
  double accuracy(const Matrix& x, const std::vector<int>& y,
                  const std::vector<std::size_t>& indices) const;

  /// MDI importances averaged over trees (sums to ~1 after normalisation).
  std::vector<double> mdi_importance() const;

 private:
  ForestOptions options_;
  int n_classes_ = 0;
  std::vector<DecisionTree> trees_;
};

/// The paper's full importance protocol: 3 repetitions of 5-fold CV
/// (15 forest fits); returns per-feature MDI averaged across every tree of
/// every fit, plus the mean held-out accuracy.
struct ImportanceResult {
  std::vector<double> importance;  // per feature, normalised to sum 1
  double cv_accuracy = 0.0;
};

ImportanceResult cross_validated_importance(const Matrix& x, const std::vector<int>& y,
                                            int n_classes, std::size_t repetitions = 3,
                                            std::size_t folds = 5,
                                            ForestOptions options = {});

/// Indices of the top-k features by importance (descending).
std::vector<std::size_t> top_k_features(const std::vector<double>& importance,
                                        std::size_t k);

}  // namespace cen::ml
