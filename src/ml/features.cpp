#include "ml/features.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "ml/stats.hpp"

namespace cen::ml {

namespace {

constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

double censor_response_code(const trace::CenTraceReport& r) {
  switch (r.blocking_type) {
    case trace::BlockingType::kNone: return 0.0;
    case trace::BlockingType::kTimeout: return 1.0;
    case trace::BlockingType::kRst: return 2.0;
    case trace::BlockingType::kFin: return 3.0;
    case trace::BlockingType::kHttpBlockpage: return 4.0;
  }
  return 0.0;
}

/// Success rate of one strategy in a fuzz report (NaN if never testable).
double strategy_success_rate(const fuzz::CenFuzzReport& report, const std::string& name) {
  std::size_t successful = 0, total = 0;
  for (const fuzz::FuzzMeasurement& m : report.measurements) {
    if (m.strategy != name) continue;
    if (m.outcome == fuzz::FuzzOutcome::kUntestable) continue;
    ++total;
    if (m.outcome == fuzz::FuzzOutcome::kSuccessful) ++successful;
  }
  if (total == 0) return kMissing;
  return static_cast<double>(successful) / static_cast<double>(total);
}

const std::vector<std::uint16_t>& feature_ports() {
  static const std::vector<std::uint16_t> kPorts = {21, 22, 23, 25, 80, 161, 443, 4081};
  return kPorts;
}

}  // namespace

FeatureMatrix extract_features(const std::vector<EndpointMeasurement>& measurements) {
  FeatureMatrix m;

  // Stable feature layout.
  m.feature_names = {
      "CensorResponse", "OnPath",          "InjectedIPTTL",   "InjectedIPID",
      "InjectedIPFlags", "InjectedTCPWindow", "InjectedTCPFlags", "InjectedIPTOS",
      "IPTOSChanged",   "IPFlagsChanged",  "BlockingHopDist",
  };
  std::vector<std::string> strategy_features;
  strategy_features.emplace_back("Normal");
  for (const fuzz::StrategyInfo& s : fuzz::strategy_catalogue()) {
    strategy_features.push_back(s.name);
  }
  for (const std::string& s : strategy_features) m.feature_names.push_back(s);
  for (std::uint16_t p : feature_ports()) {
    m.feature_names.push_back("OpenPort" + std::to_string(p));
  }
  m.feature_names.emplace_back("OpenPortCount");
  // Nmap-style stack fingerprint of the management plane (§5.1, Table 3).
  m.feature_names.emplace_back("NmapSynAckTTL");
  m.feature_names.emplace_back("NmapWindow");
  m.feature_names.emplace_back("NmapMss");
  m.feature_names.emplace_back("NmapSack");
  // Ambiguity discrepancy bits, one per catalogue probe (appended last so
  // every pre-existing column keeps its index).
  for (const ambig::ProbeSpec& p : ambig::probe_catalogue()) {
    m.feature_names.push_back("Ambig:" + std::string(p.name));
  }

  for (const EndpointMeasurement& em : measurements) {
    Row row;
    row.reserve(m.feature_names.size());

    const trace::CenTraceReport& tr = em.trace;
    row.push_back(censor_response_code(tr));
    row.push_back(tr.placement == trace::DevicePlacement::kOnPath ? 1.0 : 0.0);
    if (tr.injected_packet) {
      const net::Packet& inj = *tr.injected_packet;
      row.push_back(static_cast<double>(inj.ip.ttl));
      row.push_back(static_cast<double>(inj.ip.identification));
      row.push_back(static_cast<double>(inj.ip.flags));
      row.push_back(static_cast<double>(inj.tcp.window));
      row.push_back(static_cast<double>(inj.tcp.flags));
      row.push_back(static_cast<double>(inj.ip.tos));
    } else {
      for (int i = 0; i < 6; ++i) row.push_back(kMissing);
    }
    bool any_tos = false, any_flags = false, any_quote = false;
    for (const trace::QuoteDiff& qd : tr.quote_diffs) {
      if (!qd.parse_ok) continue;
      any_quote = true;
      any_tos |= qd.tos_changed;
      any_flags |= qd.ip_flags_changed;
    }
    row.push_back(any_quote ? (any_tos ? 1.0 : 0.0) : kMissing);
    row.push_back(any_quote ? (any_flags ? 1.0 : 0.0) : kMissing);
    // Distance of the blocking hop from the endpoint (network position).
    if (tr.blocking_hop_ttl > 0 && tr.endpoint_hop_distance > 0) {
      row.push_back(static_cast<double>(tr.endpoint_hop_distance - tr.blocking_hop_ttl));
    } else {
      row.push_back(kMissing);
    }

    for (const std::string& s : strategy_features) {
      if (em.fuzz) {
        double rate = strategy_success_rate(*em.fuzz, s);
        // "Normal" is the baseline: encode blocked-ness instead of success.
        if (s == "Normal") {
          rate = (em.fuzz->http_baseline_blocked || em.fuzz->tls_baseline_blocked) ? 1.0 : 0.0;
        }
        row.push_back(rate);
      } else {
        row.push_back(kMissing);
      }
    }

    if (em.banner) {
      for (std::uint16_t p : feature_ports()) {
        bool open = std::find(em.banner->open_ports.begin(), em.banner->open_ports.end(),
                              p) != em.banner->open_ports.end();
        row.push_back(open ? 1.0 : 0.0);
      }
      row.push_back(static_cast<double>(em.banner->open_ports.size()));
    } else {
      for (std::size_t i = 0; i <= feature_ports().size(); ++i) row.push_back(kMissing);
    }
    if (em.banner && em.banner->stack) {
      const censor::StackFingerprint& st = *em.banner->stack;
      row.push_back(static_cast<double>(st.synack_ttl));
      row.push_back(static_cast<double>(st.synack_window));
      row.push_back(static_cast<double>(st.mss));
      row.push_back(st.sack_permitted ? 1.0 : 0.0);
    } else {
      for (int i = 0; i < 4; ++i) row.push_back(kMissing);
    }

    if (em.ambig && em.ambig->probes.size() == ambig::probe_catalogue().size()) {
      for (double bit : em.ambig->discrepancy_vector()) row.push_back(bit);
    } else {
      for (std::size_t i = 0; i < ambig::probe_catalogue().size(); ++i) {
        row.push_back(kMissing);
      }
    }

    m.rows.push_back(std::move(row));
    m.row_ids.push_back(em.endpoint_id);
    m.countries.push_back(em.country);

    // Label priority: blockpage fingerprint, then banner fingerprint.
    std::string label;
    if (tr.blockpage_vendor) {
      label = *tr.blockpage_vendor;
    } else if (em.banner && em.banner->vendor) {
      label = *em.banner->vendor;
    }
    m.labels.push_back(std::move(label));
  }
  return m;
}

void impute_median(FeatureMatrix& m) {
  for (std::size_t f = 0; f < m.n_features(); ++f) {
    std::vector<double> observed;
    for (const Row& row : m.rows) {
      if (!std::isnan(row[f])) observed.push_back(row[f]);
    }
    double fill = observed.empty() ? 0.0 : median(observed);
    for (Row& row : m.rows) {
      if (std::isnan(row[f])) row[f] = fill;
    }
  }
}

void standardize(FeatureMatrix& m) {
  for (std::size_t f = 0; f < m.n_features(); ++f) {
    std::vector<double> col;
    col.reserve(m.n_rows());
    for (const Row& row : m.rows) col.push_back(row[f]);
    double mu = mean(col);
    double sd = std::sqrt(variance(col));
    for (Row& row : m.rows) {
      row[f] = sd > 0.0 ? (row[f] - mu) / sd : 0.0;
    }
  }
}

FeatureMatrix select_features(const FeatureMatrix& m,
                              const std::vector<std::size_t>& feature_indices) {
  FeatureMatrix out;
  out.labels = m.labels;
  out.row_ids = m.row_ids;
  out.countries = m.countries;
  for (std::size_t f : feature_indices) out.feature_names.push_back(m.feature_names[f]);
  out.rows.reserve(m.n_rows());
  for (const Row& row : m.rows) {
    Row selected;
    selected.reserve(feature_indices.size());
    for (std::size_t f : feature_indices) selected.push_back(row[f]);
    out.rows.push_back(std::move(selected));
  }
  return out;
}

namespace {
std::string csv_cell(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string to_csv(const FeatureMatrix& m) {
  std::string out = "endpoint,country,label";
  for (const std::string& name : m.feature_names) {
    out += ',';
    out += csv_cell(name);
  }
  out += '\n';
  for (std::size_t i = 0; i < m.n_rows(); ++i) {
    out += csv_cell(m.row_ids[i]);
    out += ',';
    out += csv_cell(m.countries[i]);
    out += ',';
    out += csv_cell(m.labels[i]);
    for (double v : m.rows[i]) {
      out += ',';
      if (!std::isnan(v)) {
        // Trim trailing zeros for compactness, keeping full precision.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.10g", v);
        out += buf;
      }
    }
    out += '\n';
  }
  return out;
}

std::vector<std::string> propagate_labels(const FeatureMatrix& m,
                                          const std::vector<int>& cluster_labels,
                                          double min_share) {
  std::vector<std::string> out = m.labels;
  // cluster -> label -> count (labelled members only).
  std::map<int, std::map<std::string, int>> votes;
  std::map<int, int> labelled_members;
  for (std::size_t i = 0; i < m.n_rows(); ++i) {
    int cluster = cluster_labels[i];
    if (cluster < 0 || m.labels[i].empty()) continue;
    votes[cluster][m.labels[i]]++;
    labelled_members[cluster]++;
  }
  for (std::size_t i = 0; i < m.n_rows(); ++i) {
    int cluster = cluster_labels[i];
    if (cluster < 0 || !out[i].empty()) continue;
    auto v = votes.find(cluster);
    if (v == votes.end()) continue;
    const std::string* best = nullptr;
    int best_count = 0;
    for (const auto& [label, count] : v->second) {
      if (count > best_count) {
        best = &label;
        best_count = count;
      }
    }
    if (best != nullptr &&
        best_count >= min_share * labelled_members[cluster]) {
      out[i] = *best;
    }
  }
  return out;
}

std::vector<std::string> encode_labels(const std::vector<std::string>& labels,
                                       std::vector<int>& out) {
  std::map<std::string, int> ids;
  std::vector<std::string> names;
  out.clear();
  out.reserve(labels.size());
  for (const std::string& label : labels) {
    auto [it, inserted] = ids.emplace(label, static_cast<int>(names.size()));
    if (inserted) names.push_back(label);
    out.push_back(it->second);
  }
  return names;
}

}  // namespace cen::ml
