#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cen::ml {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (std::size_t c : counts) {
    double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

void DecisionTree::fit(const Matrix& x, const std::vector<int>& y,
                       const std::vector<std::size_t>& sample_indices, int n_classes,
                       const TreeOptions& options, Rng& rng) {
  nodes_.clear();
  importances_.assign(x.empty() ? 0 : x[0].size(), 0.0);
  if (sample_indices.empty()) {
    nodes_.push_back(Node{});
    return;
  }
  std::vector<std::size_t> indices = sample_indices;
  build(x, y, indices, 0, indices.size(), n_classes, 0, options, rng,
        static_cast<double>(indices.size()));
}

std::size_t DecisionTree::build(const Matrix& x, const std::vector<int>& y,
                                std::vector<std::size_t>& indices, std::size_t begin,
                                std::size_t end, int n_classes, std::size_t depth,
                                const TreeOptions& options, Rng& rng,
                                double total_samples) {
  std::size_t node_id = nodes_.size();
  nodes_.push_back(Node{});
  std::size_t n = end - begin;

  std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes), 0);
  for (std::size_t i = begin; i < end; ++i) ++counts[static_cast<std::size_t>(y[indices[i]])];
  int majority = 0;
  for (int c = 1; c < n_classes; ++c) {
    if (counts[static_cast<std::size_t>(c)] > counts[static_cast<std::size_t>(majority)]) {
      majority = c;
    }
  }
  nodes_[node_id].label = majority;

  double node_gini = gini(counts, n);
  bool pure = node_gini == 0.0;
  if (pure || depth >= options.max_depth || n < options.min_samples_split) {
    return node_id;
  }

  std::size_t n_features = x[0].size();
  std::size_t mtry = options.max_features;
  if (mtry == 0) {
    mtry = static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(n_features))));
    mtry = std::max<std::size_t>(1, mtry);
  }
  mtry = std::min(mtry, n_features);

  // Random feature subset for this split (without replacement).
  std::vector<std::size_t> feature_order = rng.permutation(n_features);
  feature_order.resize(mtry);

  double best_gain = 0.0;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::pair<double, int>> values;
  values.reserve(n);
  for (std::size_t f : feature_order) {
    values.clear();
    for (std::size_t i = begin; i < end; ++i) {
      values.emplace_back(x[indices[i]][f], y[indices[i]]);
    }
    std::sort(values.begin(), values.end());

    std::vector<std::size_t> left_counts(static_cast<std::size_t>(n_classes), 0);
    std::vector<std::size_t> right_counts = counts;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      std::size_t cls = static_cast<std::size_t>(values[i].second);
      ++left_counts[cls];
      --right_counts[cls];
      if (values[i].first == values[i + 1].first) continue;  // no valid threshold
      std::size_t nl = i + 1, nr = n - nl;
      double gain = node_gini -
                    (static_cast<double>(nl) / static_cast<double>(n)) * gini(left_counts, nl) -
                    (static_cast<double>(nr) / static_cast<double>(n)) * gini(right_counts, nr);
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = f;
        best_threshold = (values[i].first + values[i + 1].first) / 2.0;
      }
    }
  }

  if (best_gain <= 0.0) return node_id;

  // Partition [begin, end) in place.
  std::size_t mid = begin;
  for (std::size_t i = begin; i < end; ++i) {
    if (x[indices[i]][best_feature] <= best_threshold) {
      std::swap(indices[i], indices[mid]);
      ++mid;
    }
  }
  if (mid == begin || mid == end) return node_id;  // degenerate split

  importances_[best_feature] += best_gain * (static_cast<double>(n) / total_samples);

  nodes_[node_id].leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  std::size_t left =
      build(x, y, indices, begin, mid, n_classes, depth + 1, options, rng, total_samples);
  std::size_t right =
      build(x, y, indices, mid, end, n_classes, depth + 1, options, rng, total_samples);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

int DecisionTree::predict(const Row& row) const {
  if (nodes_.empty()) return 0;
  std::size_t id = 0;
  while (!nodes_[id].leaf) {
    const Node& node = nodes_[id];
    id = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[id].label;
}

}  // namespace cen::ml
