// Feature extraction for the clustering pipeline (paper §7.1, Table 3).
//
// For every endpoint that encountered blocking, a numeric feature vector is
// assembled from the three measurement tools:
//   CenTrace  — censorship response type, on-path/in-path, injected-packet
//               header fields (TTL, IP ID, IP flags, TCP window/flags),
//               quoted-ICMP deltas (TOS / IP-flags changed);
//   CenFuzz   — per-strategy evasion success rate (one feature per Table 2
//               strategy plus "Normal");
//   CenProbe  — open management ports.
// Vendor labels (from blockpages or banners) ride along for the supervised
// feature-importance step; missing numeric values are median-imputed as in
// the paper.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cenambig/cenambig.hpp"
#include "cenfuzz/cenfuzz.hpp"
#include "cenprobe/fingerprints.hpp"
#include "centrace/centrace.hpp"
#include "ml/decision_tree.hpp"

namespace cen::ml {

/// Everything measured about one endpoint, bundled for feature extraction.
struct EndpointMeasurement {
  std::string endpoint_id;
  std::string country;
  trace::CenTraceReport trace;
  std::optional<fuzz::CenFuzzReport> fuzz;
  std::optional<probe::DeviceProbeReport> banner;
  /// CenAmbig discrepancy vector — the banner-free vendor signal. Its
  /// per-probe bits land in "Ambig:<probe-name>" columns at the end of
  /// the feature layout (missing report = all-NaN, like fuzz/banner).
  std::optional<ambig::AmbigReport> ambig;
};

struct FeatureMatrix {
  std::vector<std::string> feature_names;
  Matrix rows;                        // NaN marks a missing value
  std::vector<std::string> labels;    // vendor ground label, "" if unlabelled
  std::vector<std::string> row_ids;   // endpoint ids
  std::vector<std::string> countries;

  std::size_t n_rows() const { return rows.size(); }
  std::size_t n_features() const { return feature_names.size(); }
};

/// Build the Table 3 feature matrix from measurement bundles. Vendor labels
/// come from blockpage fingerprints first, then banner fingerprints.
FeatureMatrix extract_features(const std::vector<EndpointMeasurement>& measurements);

/// Replace NaNs with the per-feature median of observed values (§7.2).
void impute_median(FeatureMatrix& m);

/// Z-score each feature (constant features become all-zero).
void standardize(FeatureMatrix& m);

/// Keep only the listed feature columns (e.g. the MDI top-10).
FeatureMatrix select_features(const FeatureMatrix& m,
                              const std::vector<std::size_t>& feature_indices);

/// Encode string labels as dense ints; returns the class-name table.
std::vector<std::string> encode_labels(const std::vector<std::string>& labels,
                                       std::vector<int>& out);

/// Serialize the matrix as CSV: header `endpoint,country,label,<features>`
/// then one row per endpoint. Strings are quoted per RFC 4180 when needed;
/// NaNs are emitted as empty cells.
std::string to_csv(const FeatureMatrix& m);

/// §7.4's forward-looking application: propagate vendor labels within
/// clusters. An unlabelled row adopts its cluster's dominant label when
/// that label covers at least `min_share` of the cluster's labelled
/// members; noise rows and label-free clusters stay unlabelled. Returns
/// one label per row (existing labels preserved).
std::vector<std::string> propagate_labels(const FeatureMatrix& m,
                                          const std::vector<int>& cluster_labels,
                                          double min_share = 0.6);

}  // namespace cen::ml
