#include "ml/textsim.hpp"

#include <algorithm>

namespace cen::ml {

std::set<std::string> shingles(std::string_view text, std::size_t k) {
  std::set<std::string> out;
  if (text.size() < k) {
    if (!text.empty()) out.emplace(text);
    return out;
  }
  for (std::size_t i = 0; i + k <= text.size(); ++i) {
    out.emplace(text.substr(i, k));
  }
  return out;
}

double jaccard(const std::set<std::string>& a, const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t intersection = 0;
  const std::set<std::string>& small = a.size() <= b.size() ? a : b;
  const std::set<std::string>& big = a.size() <= b.size() ? b : a;
  for (const std::string& s : small) {
    if (big.count(s) != 0) ++intersection;
  }
  std::size_t union_size = a.size() + b.size() - intersection;
  return union_size == 0 ? 1.0
                         : static_cast<double>(intersection) /
                               static_cast<double>(union_size);
}

TextClusterResult cluster_documents(const std::vector<std::string>& documents,
                                    std::size_t shingle_k, double threshold) {
  TextClusterResult result;
  result.labels.assign(documents.size(), -1);
  std::vector<std::set<std::string>> sets;
  sets.reserve(documents.size());
  for (const std::string& doc : documents) sets.push_back(shingles(doc, shingle_k));

  // One representative shingle set per cluster member (single link).
  std::vector<std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < documents.size(); ++i) {
    bool placed = false;
    for (std::size_t c = 0; c < members.size() && !placed; ++c) {
      for (std::size_t m : members[c]) {
        if (jaccard(sets[i], sets[m]) >= threshold) {
          members[c].push_back(i);
          result.labels[i] = static_cast<int>(c);
          placed = true;
          break;
        }
      }
    }
    if (!placed) {
      result.labels[i] = static_cast<int>(members.size());
      members.push_back({i});
    }
  }
  result.n_clusters = static_cast<int>(members.size());
  return result;
}

}  // namespace cen::ml
