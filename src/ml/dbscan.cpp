#include "ml/dbscan.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace cen::ml {

double euclidean(const Row& a, const Row& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

DbscanResult dbscan(const Matrix& x, double epsilon, std::size_t min_points) {
  DbscanResult result;
  std::size_t n = x.size();
  result.labels.assign(n, kNoise);
  std::vector<bool> visited(n, false);

  auto neighbours = [&](std::size_t i) {
    std::vector<std::size_t> out;
    for (std::size_t j = 0; j < n; ++j) {
      if (euclidean(x[i], x[j]) <= epsilon) out.push_back(j);
    }
    return out;
  };

  int cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = true;
    std::vector<std::size_t> seeds = neighbours(i);
    if (seeds.size() < min_points) continue;  // noise (may be claimed later)

    result.labels[i] = cluster;
    std::deque<std::size_t> queue(seeds.begin(), seeds.end());
    while (!queue.empty()) {
      std::size_t j = queue.front();
      queue.pop_front();
      if (result.labels[j] == kNoise) result.labels[j] = cluster;  // border point
      if (visited[j]) continue;
      visited[j] = true;
      result.labels[j] = cluster;
      std::vector<std::size_t> jn = neighbours(j);
      if (jn.size() >= min_points) {
        queue.insert(queue.end(), jn.begin(), jn.end());
      }
    }
    ++cluster;
  }
  result.n_clusters = cluster;
  return result;
}

double estimate_epsilon(const Matrix& x, std::size_t k) {
  std::size_t n = x.size();
  if (n < 2) return 1.0;
  double sum = 0.0;
  std::vector<double> dists;
  for (std::size_t i = 0; i < n; ++i) {
    dists.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) dists.push_back(euclidean(x[i], x[j]));
    }
    // Clamp k into [1, n-1] before the -1: k == 0 would otherwise wrap the
    // unsigned subtraction to SIZE_MAX and index far past the buffer.
    std::size_t kk = std::min(std::max<std::size_t>(k, 1), dists.size()) - 1;
    std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(kk),
                     dists.end());
    sum += dists[kk];
  }
  return sum / static_cast<double>(n);
}

}  // namespace cen::ml
