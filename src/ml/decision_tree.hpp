// CART classification tree with Gini impurity.
//
// Built as the unit of the random forest (random_forest.hpp). Each split
// records its weighted impurity decrease, which the forest accumulates
// into per-feature mean-decrease-in-impurity (MDI) scores — the measure
// the paper uses to rank device features (Fig. 9).
#pragma once

#include <cstddef>
#include <vector>

#include "core/rng.hpp"

namespace cen::ml {

using Row = std::vector<double>;
using Matrix = std::vector<Row>;

struct TreeOptions {
  std::size_t max_depth = 16;
  std::size_t min_samples_split = 2;
  /// Features considered per split; 0 = sqrt(n_features).
  std::size_t max_features = 0;
};

class DecisionTree {
 public:
  /// Fit on the rows selected by `sample_indices` (bootstrap support).
  void fit(const Matrix& x, const std::vector<int>& y,
           const std::vector<std::size_t>& sample_indices, int n_classes,
           const TreeOptions& options, Rng& rng);

  int predict(const Row& row) const;

  /// Total weighted impurity decrease contributed by each feature,
  /// normalised by the number of training samples.
  const std::vector<double>& impurity_decrease() const { return importances_; }

 private:
  struct Node {
    bool leaf = true;
    int label = 0;
    std::size_t feature = 0;
    double threshold = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
  };

  std::size_t build(const Matrix& x, const std::vector<int>& y,
                    std::vector<std::size_t>& indices, std::size_t begin,
                    std::size_t end, int n_classes, std::size_t depth,
                    const TreeOptions& options, Rng& rng, double total_samples);

  std::vector<Node> nodes_;
  std::vector<double> importances_;
};

/// Gini impurity of label counts.
double gini(const std::vector<std::size_t>& counts, std::size_t total);

}  // namespace cen::ml
