// Text-similarity clustering of injected blockpages — the FilterMap
// baseline the paper builds on (§3.3): cluster censors by the pages they
// inject. Uses character k-shingles + Jaccard similarity with greedy
// single-link clustering. The paper's point, reproduced in
// bench_filtermap: this only sees censors that inject identifiable pages;
// drop/RST devices (most of AZ/KZ/RU) are invisible to it, which is why
// banner grabs and behavioural features are needed.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace cen::ml {

/// The set of all length-k character shingles of `text`.
std::set<std::string> shingles(std::string_view text, std::size_t k);

/// Jaccard similarity of two shingle sets (1.0 for two empty sets).
double jaccard(const std::set<std::string>& a, const std::set<std::string>& b);

struct TextClusterResult {
  std::vector<int> labels;  // cluster id per document
  int n_clusters = 0;
};

/// Greedy single-link clustering: a document joins the first existing
/// cluster containing a member with similarity >= threshold.
TextClusterResult cluster_documents(const std::vector<std::string>& documents,
                                    std::size_t shingle_k = 4,
                                    double threshold = 0.7);

}  // namespace cen::ml
