#include "ml/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cen::ml {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t n = v.size();
  if (n % 2 == 1) return v[n / 2];
  return (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean(v);
  double sum = 0.0;
  for (double x : v) sum += (x - m) * (x - m);
  return sum / static_cast<double>(v.size() - 1);
}

std::vector<double> ranks(const std::vector<double>& v) {
  std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg_rank;
    i = j + 1;
  }
  return out;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
/// Two-sided p-value for a t statistic with df degrees of freedom, via the
/// regularized incomplete beta function (continued-fraction evaluation).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 200;
  constexpr double kEps = 3e-12, kFpMin = 1e-300;
  double qab = a + b, qap = a + 1.0, qam = a - 1.0;
  double c = 1.0, d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double incbeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_beta = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b);
  double front = std::exp(ln_beta + a * std::log(x) + b * std::log(1.0 - x));
  if (x < (a + 1.0) / (a + b + 2.0)) return front * betacf(a, b, x) / a;
  return 1.0 - front * betacf(b, a, 1.0 - x) / b;  // symmetry relation
}

double t_two_sided_p(double t, double df) {
  if (df <= 0.0) return 1.0;
  double x = df / (df + t * t);
  return incbeta(df / 2.0, 0.5, x);
}
}  // namespace

Correlation spearman(const std::vector<double>& x, const std::vector<double>& y) {
  Correlation c;
  if (x.size() != y.size() || x.size() < 3) return c;
  c.rho = pearson(ranks(x), ranks(y));
  double n = static_cast<double>(x.size());
  if (std::fabs(c.rho) >= 1.0) {
    c.p_value = 0.0;
    return c;
  }
  double t = c.rho * std::sqrt((n - 2.0) / (1.0 - c.rho * c.rho));
  c.p_value = t_two_sided_p(t, n - 2.0);
  return c;
}

std::vector<std::size_t> kfold_assignment(std::size_t n, std::size_t k, Rng& rng) {
  std::vector<std::size_t> fold(n);
  std::vector<std::size_t> perm = rng.permutation(n);
  for (std::size_t i = 0; i < n; ++i) fold[perm[i]] = i % k;
  return fold;
}

}  // namespace cen::ml
