// Statistics utilities used by the clustering pipeline (paper §7):
// Spearman rank correlation (with a t-approximation p-value, as used for
// the vendor-similarity claims), medians for imputation, and k-fold
// index generation for the cross-validated feature-importance runs.
#pragma once

#include <cstddef>
#include <vector>

#include "core/rng.hpp"

namespace cen::ml {

double mean(const std::vector<double>& v);
double median(std::vector<double> v);  // by value: sorts a copy
double variance(const std::vector<double>& v);

/// Fractional ranks (ties get the average rank), 1-based.
std::vector<double> ranks(const std::vector<double>& v);

/// Pearson correlation; returns 0 when either side is constant.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

struct Correlation {
  double rho = 0.0;
  double p_value = 1.0;
};

/// Spearman's rank correlation with a two-sided p-value from the
/// t-distribution approximation t = r·sqrt((n-2)/(1-r²)).
Correlation spearman(const std::vector<double>& x, const std::vector<double>& y);

/// Split [0, n) into k folds (shuffled); returns fold id per index.
std::vector<std::size_t> kfold_assignment(std::size_t n, std::size_t k, Rng& rng);

}  // namespace cen::ml
