// DBSCAN density clustering (paper §7.3).
//
// The paper clusters censorship deployments with DBSCAN because the number
// of device types is unknown a priori, choosing ε via the average k-nearest-
// neighbour distance heuristic (Rahmah & Sitanggang). Both are implemented
// here over Euclidean distance.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/decision_tree.hpp"  // Row/Matrix aliases

namespace cen::ml {

constexpr int kNoise = -1;

struct DbscanResult {
  std::vector<int> labels;  // cluster id per row; kNoise for outliers
  int n_clusters = 0;
};

double euclidean(const Row& a, const Row& b);

DbscanResult dbscan(const Matrix& x, double epsilon, std::size_t min_points);

/// ε heuristic: mean distance from each point to its k-th nearest neighbour.
double estimate_epsilon(const Matrix& x, std::size_t k);

}  // namespace cen::ml
