#include "ml/random_forest.hpp"

#include <algorithm>
#include <numeric>

#include "ml/stats.hpp"

namespace cen::ml {

void RandomForest::fit(const Matrix& x, const std::vector<int>& y,
                       const std::vector<std::size_t>& train_indices, int n_classes) {
  n_classes_ = n_classes;
  trees_.assign(options_.n_trees, DecisionTree{});
  Rng rng(options_.seed);
  for (DecisionTree& tree : trees_) {
    // Bootstrap sample of the training indices.
    std::vector<std::size_t> sample(train_indices.size());
    for (std::size_t& s : sample) {
      s = train_indices[rng.index(train_indices.size())];
    }
    Rng tree_rng = rng.fork();
    tree.fit(x, y, sample, n_classes, options_.tree, tree_rng);
  }
}

int RandomForest::predict(const Row& row) const {
  std::vector<int> votes(static_cast<std::size_t>(n_classes_), 0);
  for (const DecisionTree& tree : trees_) {
    ++votes[static_cast<std::size_t>(tree.predict(row))];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

double RandomForest::accuracy(const Matrix& x, const std::vector<int>& y,
                              const std::vector<std::size_t>& indices) const {
  if (indices.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i : indices) {
    if (predict(x[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(indices.size());
}

std::vector<double> RandomForest::mdi_importance() const {
  if (trees_.empty()) return {};
  std::vector<double> total(trees_.front().impurity_decrease().size(), 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double>& imp = tree.impurity_decrease();
    for (std::size_t f = 0; f < total.size(); ++f) total[f] += imp[f];
  }
  double sum = std::accumulate(total.begin(), total.end(), 0.0);
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

ImportanceResult cross_validated_importance(const Matrix& x, const std::vector<int>& y,
                                            int n_classes, std::size_t repetitions,
                                            std::size_t folds, ForestOptions options) {
  ImportanceResult result;
  if (x.empty()) return result;
  result.importance.assign(x[0].size(), 0.0);
  Rng rng(options.seed ^ 0x9e3779b9ULL);

  std::size_t fits = 0;
  double accuracy_sum = 0.0;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    std::vector<std::size_t> fold = kfold_assignment(x.size(), folds, rng);
    for (std::size_t f = 0; f < folds; ++f) {
      std::vector<std::size_t> train, test;
      for (std::size_t i = 0; i < x.size(); ++i) {
        (fold[i] == f ? test : train).push_back(i);
      }
      if (train.empty() || test.empty()) continue;
      ForestOptions fit_options = options;
      fit_options.seed = options.seed + rep * folds + f + 1;
      RandomForest forest(fit_options);
      forest.fit(x, y, train, n_classes);
      std::vector<double> imp = forest.mdi_importance();
      for (std::size_t k = 0; k < imp.size(); ++k) result.importance[k] += imp[k];
      accuracy_sum += forest.accuracy(x, y, test);
      ++fits;
    }
  }
  if (fits > 0) {
    double sum = std::accumulate(result.importance.begin(), result.importance.end(), 0.0);
    if (sum > 0.0) {
      for (double& v : result.importance) v /= sum;
    }
    result.cv_accuracy = accuracy_sum / static_cast<double>(fits);
  }
  return result;
}

std::vector<std::size_t> top_k_features(const std::vector<double>& importance,
                                        std::size_t k) {
  std::vector<std::size_t> idx(importance.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return importance[a] > importance[b];
  });
  if (idx.size() > k) idx.resize(k);
  return idx;
}

}  // namespace cen::ml
