// Bump-pointer arena for short-lived simulation scratch.
//
// The measurement hot loop allocates the same shapes over and over:
// payload copies, DPI cache entries, quoted-ICMP staging. A bump arena
// turns each of those into a pointer increment; reset() rewinds the
// cursor without returning memory to the OS, so a worker's steady state
// performs zero heap traffic per batch. Blocks grow geometrically and are
// retained across resets (the second batch never allocates again).
//
// Not thread-safe by design: every arena is owned by exactly one worker
// (per-replica, per-device), matching the pipeline's share-nothing model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace cen::core {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes == 0 ? kDefaultBlockBytes : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Aligned raw allocation. Oversized requests get a dedicated block
  /// (also retained and reused across resets in block order).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    ++allocations_;
    for (;;) {
      if (current_ < blocks_.size()) {
        Block& b = blocks_[current_];
        std::size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
        if (aligned + bytes <= b.size) {
          offset_ = aligned + bytes;
          in_use_ += bytes;
          return b.data.get() + aligned;
        }
        ++current_;
        offset_ = 0;
        continue;
      }
      std::size_t size = block_bytes_;
      while (size < bytes + align) size *= 2;
      blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
      reserved_ += size;
      // Loop back: the fresh block is now blocks_[current_].
    }
  }

  template <typename T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewind to empty, keeping every block for reuse.
  void reset() {
    current_ = 0;
    offset_ = 0;
    in_use_ = 0;
  }

  /// Return all memory to the OS (blocks are dropped).
  void release() {
    blocks_.clear();
    reset();
    reserved_ = 0;
  }

  std::size_t bytes_in_use() const { return in_use_; }
  std::size_t bytes_reserved() const { return reserved_; }
  std::size_t block_count() const { return blocks_.size(); }
  std::uint64_t allocations() const { return allocations_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;   // index of the block being bumped
  std::size_t offset_ = 0;    // bump cursor within blocks_[current_]
  std::size_t in_use_ = 0;
  std::size_t reserved_ = 0;
  std::uint64_t allocations_ = 0;
};

/// Minimal std-compatible allocator over an Arena. Deallocation is a
/// no-op — memory comes back at the owner's next Arena::reset(). Suitable
/// for containers whose lifetime is bounded by a batch.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) { return arena_->allocate_array<T>(n); }
  void deallocate(T*, std::size_t) {}  // reclaimed wholesale by reset()

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& other) const { return arena_ == other.arena_; }

 private:
  Arena* arena_;
};

}  // namespace cen::core
