#include "core/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace cen {

namespace {

/// Length of the well-formed UTF-8 sequence starting at s[i], or 0 when the
/// bytes at i do not start one (overlong forms, surrogate code points and
/// anything beyond U+10FFFF included). ASCII returns 1.
std::size_t utf8_sequence_length(std::string_view s, std::size_t i) {
  const unsigned char b0 = static_cast<unsigned char>(s[i]);
  if (b0 < 0x80) return 1;
  auto byte = [&](std::size_t k) -> int {
    return i + k < s.size() ? static_cast<unsigned char>(s[i + k]) : -1;
  };
  auto cont = [](int b) { return b >= 0x80 && b <= 0xbf; };
  const int b1 = byte(1);
  if (b0 >= 0xc2 && b0 <= 0xdf) return cont(b1) ? 2 : 0;
  if (b0 >= 0xe0 && b0 <= 0xef) {
    const int lo = b0 == 0xe0 ? 0xa0 : 0x80;  // no overlong 3-byte forms
    const int hi = b0 == 0xed ? 0x9f : 0xbf;  // no encoded surrogates
    return b1 >= lo && b1 <= hi && cont(byte(2)) ? 3 : 0;
  }
  if (b0 >= 0xf0 && b0 <= 0xf4) {
    const int lo = b0 == 0xf0 ? 0x90 : 0x80;  // no overlong 4-byte forms
    const int hi = b0 == 0xf4 ? 0x8f : 0xbf;  // cap at U+10FFFF
    return b1 >= lo && b1 <= hi && cont(byte(2)) && cont(byte(3)) ? 4 : 0;
  }
  return 0;  // bare continuation byte or invalid lead (0x80-0xc1, 0xf5-0xff)
}

/// Decode four hex digits at t[p..p+3]; -1 on bounds or non-hex.
int hex4(std::string_view t, std::size_t p) {
  int v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (p + i >= t.size()) return -1;
    const char h = t[p + i];
    if (!std::isxdigit(static_cast<unsigned char>(h))) return -1;
    v = v * 16 + (h <= '9' ? h - '0' : (std::tolower(h) - 'a' + 10));
  }
  return v;
}

}  // namespace

bool utf8_valid(std::string_view s) {
  for (std::size_t i = 0; i < s.size();) {
    const std::size_t len = utf8_sequence_length(s, i);
    if (len == 0) return false;
    i += len;
  }
  return true;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (std::size_t i = 0; i < s.size();) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    if (c < 0x20 || c == 0x7f) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      ++i;
      continue;
    }
    const std::size_t len = utf8_sequence_length(s, i);
    if (len == 0) {
      // Invalid UTF-8 must not leak into a JSON document (RFC 8259 §8.1);
      // substitute U+FFFD, one replacement per rejected byte.
      out += "\xef\xbf\xbd";
      ++i;
      continue;
    }
    out.append(s.data() + i, len);
    i += len;
  }
  return out;
}

namespace {

/// Recursive-descent validator. `pos` advances past the parsed value;
/// returns false on any grammar violation.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_];
        if (esc == 'u') {
          const int unit = hex4(text_, pos_ + 1);
          if (unit < 0) return false;
          pos_ += 4;
          if (unit >= 0xdc00 && unit <= 0xdfff) return false;  // lone low surrogate
          if (unit >= 0xd800 && unit <= 0xdbff) {
            // High surrogate must be followed by an escaped low surrogate.
            if (pos_ + 2 >= text_.size() || text_[pos_ + 1] != '\\' ||
                text_[pos_ + 2] != 'u') {
              return false;
            }
            const int low = hex4(text_, pos_ + 3);
            if (low < 0xdc00 || low > 0xdfff) return false;
            pos_ += 6;
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
          return false;
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) >= 0x80) {
        const std::size_t len = utf8_sequence_length(text_, pos_);
        if (len == 0) return false;  // raw invalid UTF-8
        pos_ += len;
        continue;
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // RFC 8259 int: "0" or a nonzero digit followed by digits (no leading 0s).
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return false;
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;  // leading zero
      }
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return true;
  }
  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    // Bounded nesting: depth_ counts the brackets already open, so the
    // 65th nested container is the first one rejected. Scalars do not
    // nest — one at depth 64 is as legal as the empty container there.
    if (c == '{' || c == '[') {
      if (depth_ >= 64) return false;
    }
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

/// Recursive-descent parser producing a JsonValue DOM. Accepts exactly
/// the grammar JsonValidator accepts; any violation yields failure.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool run(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }
  bool string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            const int unit = hex4(text_, pos_ + 1);
            if (unit < 0) return false;
            pos_ += 4;
            std::uint32_t cp = static_cast<std::uint32_t>(unit);
            if (cp >= 0xdc00 && cp <= 0xdfff) return false;  // lone low surrogate
            if (cp >= 0xd800 && cp <= 0xdbff) {
              // Surrogate pair (RFC 8259 §7): combine into one code point
              // so the decoded string is UTF-8, not CESU-8.
              if (pos_ + 2 >= text_.size() || text_[pos_ + 1] != '\\' ||
                  text_[pos_ + 2] != 'u') {
                return false;
              }
              const int low = hex4(text_, pos_ + 3);
              if (low < 0xdc00 || low > 0xdfff) return false;
              pos_ += 6;
              cp = 0x10000 + ((cp - 0xd800) << 10) +
                   (static_cast<std::uint32_t>(low) - 0xdc00);
            }
            append_utf8(out, cp);
            break;
          }
          default: return false;
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) >= 0x80) {
        const std::size_t len = utf8_sequence_length(text_, pos_);
        if (len == 0) return false;  // raw invalid UTF-8
        out.append(text_.data() + pos_, len);
        pos_ += len;
        continue;
      }
      out += c;
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number(double& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return false;
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }
  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{' || c == '[') {
      if (depth_ >= 64) return false;  // same bound as JsonValidator
    }
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return string(out.string);
    }
    if (c == 't') {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.type = JsonValue::Type::kNull;
      return literal("null");
    }
    out.type = JsonValue::Type::kNumber;
    return number(out.number);
  }
  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }
  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return JsonValidator(text).run(); }

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const Member& m : object) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->boolean : fallback;
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

int JsonValue::get_int(std::string_view key, int fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  // Clamp before casting: double-to-int conversion outside int's range is
  // undefined behaviour, and hostile documents reach this via from_json.
  const double d = v->number;
  if (d >= 2147483647.0) return std::numeric_limits<int>::max();
  if (d <= -2147483648.0) return std::numeric_limits<int>::min();
  return static_cast<int>(d);
}

std::string JsonValue::get_string(std::string_view key, std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->string : std::string(fallback);
}

std::unique_ptr<JsonValue> json_parse(std::string_view text) {
  auto out = std::make_unique<JsonValue>();
  if (!JsonParser(text).run(*out)) return nullptr;
  return out;
}

void JsonWriter::pre_value() {
  if (stack_.empty()) {
    if (!out_.empty()) throw std::logic_error("multiple top-level JSON values");
    return;
  }
  if (stack_.back() == Scope::kObject && !key_pending_) {
    throw std::logic_error("JSON value inside object without a key");
  }
  if (stack_.back() == Scope::kArray && has_items_.back()) out_ += ',';
  has_items_.back() = true;
  key_pending_ = false;
}

void JsonWriter::open(Scope s, char c) {
  pre_value();
  out_ += c;
  stack_.push_back(s);
  has_items_.push_back(false);
}

void JsonWriter::close(Scope s, char c) {
  if (stack_.empty() || stack_.back() != s || key_pending_) {
    throw std::logic_error("mismatched JSON scope close");
  }
  stack_.pop_back();
  has_items_.pop_back();
  out_ += c;
}

JsonWriter& JsonWriter::begin_object() {
  open(Scope::kObject, '{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close(Scope::kObject, '}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open(Scope::kArray, '[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(Scope::kArray, ']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JSON key outside object");
  }
  if (has_items_.back()) out_ += ',';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  key_pending_ = true;
  has_items_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  pre_value();
  out_ += json;
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) throw std::logic_error("unterminated JSON scopes");
  return out_;
}

}  // namespace cen
