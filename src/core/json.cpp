#include "core/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cen {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent validator. `pos` advances past the parsed value;
/// returns false on any grammar violation.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool run() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(esc) == std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // RFC 8259 int: "0" or a nonzero digit followed by digits (no leading 0s).
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return false;
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;  // leading zero
      }
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return true;
  }
  bool value() {
    if (depth_ > 64) return false;  // bounded nesting
    skip_ws();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

/// Recursive-descent parser producing a JsonValue DOM. Accepts exactly
/// the grammar JsonValidator accepts; any violation yields failure.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool run(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }
  bool string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            std::uint32_t cp = 0;
            for (int i = 1; i <= 4; ++i) {
              if (pos_ + static_cast<std::size_t>(i) >= text_.size()) return false;
              char h = text_[pos_ + static_cast<std::size_t>(i)];
              if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
              cp = cp * 16 + static_cast<std::uint32_t>(
                                 h <= '9' ? h - '0' : (std::tolower(h) - 'a' + 10));
            }
            pos_ += 4;
            append_utf8(out, cp);
            break;
          }
          default: return false;
        }
        ++pos_;
        continue;
      }
      out += c;
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number(double& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return false;
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }
  bool value(JsonValue& out) {
    if (depth_ > 64) return false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return string(out.string);
    }
    if (c == 't') {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.type = JsonValue::Type::kNull;
      return literal("null");
    }
    out.type = JsonValue::Type::kNumber;
    return number(out.number);
  }
  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }
  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return JsonValidator(text).run(); }

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const Member& m : object) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->boolean : fallback;
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

int JsonValue::get_int(std::string_view key, int fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? static_cast<int>(v->number) : fallback;
}

std::string JsonValue::get_string(std::string_view key, std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->string : std::string(fallback);
}

std::unique_ptr<JsonValue> json_parse(std::string_view text) {
  auto out = std::make_unique<JsonValue>();
  if (!JsonParser(text).run(*out)) return nullptr;
  return out;
}

void JsonWriter::pre_value() {
  if (stack_.empty()) {
    if (!out_.empty()) throw std::logic_error("multiple top-level JSON values");
    return;
  }
  if (stack_.back() == Scope::kObject && !key_pending_) {
    throw std::logic_error("JSON value inside object without a key");
  }
  if (stack_.back() == Scope::kArray && has_items_.back()) out_ += ',';
  has_items_.back() = true;
  key_pending_ = false;
}

void JsonWriter::open(Scope s, char c) {
  pre_value();
  out_ += c;
  stack_.push_back(s);
  has_items_.push_back(false);
}

void JsonWriter::close(Scope s, char c) {
  if (stack_.empty() || stack_.back() != s || key_pending_) {
    throw std::logic_error("mismatched JSON scope close");
  }
  stack_.pop_back();
  has_items_.pop_back();
  out_ += c;
}

JsonWriter& JsonWriter::begin_object() {
  open(Scope::kObject, '{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close(Scope::kObject, '}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open(Scope::kArray, '[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(Scope::kArray, ']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JSON key outside object");
  }
  if (has_items_.back()) out_ += ',';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  key_pending_ = true;
  has_items_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  pre_value();
  out_ += json;
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) throw std::logic_error("unterminated JSON scopes");
  return out_;
}

}  // namespace cen
