#include "core/rng.hpp"

namespace cen {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t v) {
  std::uint64_t s = v;
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : s_) lane = splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(uniform(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::real() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

bool Rng::chance(double p) { return real() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::fork() { return Rng(next() ^ 0xa02bdbf7bb3c0a7ULL); }

}  // namespace cen
