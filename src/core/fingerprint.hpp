// Structural fingerprinting for the campaign result cache.
//
// A fingerprint is a 64-bit digest of everything that determines a
// simulated measurement's outcome: topology shape, fault plan, tool
// options, seeds. The campaign cache keys results on these digests, so a
// fingerprint MUST change whenever any behaviour-relevant knob changes —
// a stale hit replays the wrong measurement — while remaining stable
// across processes and runs (no pointers, no iteration over unordered
// containers).
//
// This is a cache-invalidation hash, not a cryptographic one: mix64
// chains give good avalanche behaviour and collisions merely cost a
// (correct, deterministic) re-execution on the next key component.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "core/rng.hpp"

namespace cen {

class FingerprintBuilder {
 public:
  FingerprintBuilder& mix(std::uint64_t v) {
    h_ = mix64(h_ ^ mix64(v + 0x9e3779b97f4a7c15ull));
    return *this;
  }
  FingerprintBuilder& mix(bool v) { return mix(static_cast<std::uint64_t>(v ? 1 : 2)); }
  FingerprintBuilder& mix(double v) {
    // Hash the bit pattern: distinguishes -0.0/+0.0 and needs no
    // float-compare special cases.
    return mix(std::bit_cast<std::uint64_t>(v));
  }
  FingerprintBuilder& mix(std::string_view s) {
    mix(static_cast<std::uint64_t>(s.size()));
    std::uint64_t word = 0;
    int n = 0;
    for (char c : s) {
      word = (word << 8) | static_cast<unsigned char>(c);
      if (++n == 8) {
        mix(word);
        word = 0;
        n = 0;
      }
    }
    if (n > 0) mix(word);
    return *this;
  }

  std::uint64_t digest() const { return mix64(h_); }

 private:
  std::uint64_t h_ = 0x243f6a8885a308d3ull;  // pi, arbitrary non-zero start
};

}  // namespace cen
