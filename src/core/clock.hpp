// Simulated monotonic clock.
//
// The network simulation and all censorship-device state (residual
// blocking windows, injection rate limits) are driven off this clock;
// tools advance it explicitly (e.g. CenTrace's 120 s inter-probe wait),
// so "time" passes instantly in real terms while remaining causally
// meaningful inside the simulation.
#pragma once

#include <cstdint>

namespace cen {

using SimTime = std::uint64_t;  // milliseconds since simulation start

class SimClock {
 public:
  SimTime now() const { return now_ms_; }
  void advance(SimTime delta_ms) { now_ms_ += delta_ms; }
  /// Rewind to simulation start. NOTE: rewinding the clock alone does not
  /// begin a fresh measurement epoch — the engine RNG, fault RNG and
  /// ephemeral-port pool would keep their mid-stream state and the run
  /// would not be reproducible. Use sim::Network::reset_epoch(), which
  /// re-seeds all of them together with the clock; that joint reset is
  /// what the hermetic-task determinism contract (and the sim-clock span
  /// timestamps riding on it) relies on.
  void reset() { now_ms_ = 0; }

 private:
  SimTime now_ms_ = 0;
};

constexpr SimTime kMillisecond = 1;
constexpr SimTime kSecond = 1000;
constexpr SimTime kMinute = 60 * kSecond;

}  // namespace cen
