// Sorted-vector associative container for simulation hot paths.
//
// The engine's per-hop lookups (attachments, endpoints, fault overrides,
// token buckets, IP index) previously lived in node-based std::map /
// std::unordered_map: every insert a heap allocation, every lookup a
// pointer chase, every Network::clone() a rebuild of the whole tree.
// FlatMap stores its entries contiguously in key order, so lookups are a
// cache-friendly binary search, iteration is a linear scan, and copying a
// map (the clone path) is one vector memcpy.
//
// Semantics deliberately mirror the std::map subset the codebase uses —
// key-sorted iteration (fingerprints and JSON exports depend on it),
// first-wins emplace, overwriting operator[]/insert_or_assign, erase by
// key or iterator — so swapping container types cannot change observable
// behaviour. The equivalence is locked by tests/test_flat_containers.cpp,
// which drives FlatMap and std::map with identical operation sequences.
//
// Trade-off: insert/erase are O(n) moves. The maps this replaces are
// small (tens of entries, built once at scenario construction) and read
// millions of times, which is exactly the shape that favours flat storage.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace cen::core {

template <typename Key, typename T, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using key_type = Key;
  using mapped_type = T;
  using value_type = std::pair<Key, T>;
  using storage_type = std::vector<value_type>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;
  using size_type = std::size_t;

  FlatMap() = default;
  explicit FlatMap(Compare cmp) : cmp_(std::move(cmp)) {}

  iterator begin() { return data_.begin(); }
  iterator end() { return data_.end(); }
  const_iterator begin() const { return data_.begin(); }
  const_iterator end() const { return data_.end(); }
  const_iterator cbegin() const { return data_.cbegin(); }
  const_iterator cend() const { return data_.cend(); }

  bool empty() const { return data_.empty(); }
  size_type size() const { return data_.size(); }
  void clear() { data_.clear(); }
  void reserve(size_type n) { data_.reserve(n); }

  iterator lower_bound(const Key& key) {
    return std::lower_bound(data_.begin(), data_.end(), key,
                            [this](const value_type& v, const Key& k) {
                              return cmp_(v.first, k);
                            });
  }
  const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(data_.begin(), data_.end(), key,
                            [this](const value_type& v, const Key& k) {
                              return cmp_(v.first, k);
                            });
  }

  iterator find(const Key& key) {
    iterator it = lower_bound(key);
    if (it != data_.end() && !cmp_(key, it->first)) return it;
    return data_.end();
  }
  const_iterator find(const Key& key) const {
    const_iterator it = lower_bound(key);
    if (it != data_.end() && !cmp_(key, it->first)) return it;
    return data_.end();
  }

  size_type count(const Key& key) const { return find(key) != end() ? 1 : 0; }
  bool contains(const Key& key) const { return find(key) != end(); }

  T& at(const Key& key) {
    iterator it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at: key not found");
    return it->second;
  }
  const T& at(const Key& key) const {
    const_iterator it = find(key);
    if (it == end()) throw std::out_of_range("FlatMap::at: key not found");
    return it->second;
  }

  /// Default-constructs the mapped value on first access (std::map
  /// operator[] semantics).
  T& operator[](const Key& key) {
    iterator it = lower_bound(key);
    if (it != data_.end() && !cmp_(key, it->first)) return it->second;
    it = data_.insert(it, value_type(key, T{}));
    return it->second;
  }

  /// First-wins insertion: an existing key keeps its value (std::map
  /// emplace/insert semantics).
  template <typename K, typename V>
  std::pair<iterator, bool> emplace(K&& key, V&& value) {
    Key k(std::forward<K>(key));
    iterator it = lower_bound(k);
    if (it != data_.end() && !cmp_(k, it->first)) return {it, false};
    it = data_.insert(it, value_type(std::move(k), T(std::forward<V>(value))));
    return {it, true};
  }

  /// Insert-or-overwrite (std::map insert_or_assign semantics).
  template <typename V>
  std::pair<iterator, bool> insert_or_assign(const Key& key, V&& value) {
    iterator it = lower_bound(key);
    if (it != data_.end() && !cmp_(key, it->first)) {
      it->second = std::forward<V>(value);
      return {it, false};
    }
    it = data_.insert(it, value_type(key, T(std::forward<V>(value))));
    return {it, true};
  }

  size_type erase(const Key& key) {
    iterator it = find(key);
    if (it == end()) return 0;
    data_.erase(it);
    return 1;
  }
  iterator erase(const_iterator it) { return data_.erase(it); }

  bool operator==(const FlatMap& other) const { return data_ == other.data_; }

 private:
  storage_type data_;
  Compare cmp_;
};

}  // namespace cen::core
