// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the simulator (path selection jitter,
// endpoint profile assignment, forest bootstrap sampling) flows through
// `Rng`, an xoshiro256** generator seeded explicitly. The library never
// reads wall-clock time or std::random_device, so all benches and tests
// are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace cen {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next();
  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double real();
  /// Bernoulli trial with probability p.
  bool chance(double p);
  /// Pick a uniformly random element index of a container size.
  std::size_t index(std::size_t size) { return static_cast<std::size_t>(uniform(size)); }
  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);
  /// Derive an independent child generator (for parallel-safe substreams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step, used for seeding and for stateless hash mixing.
std::uint64_t splitmix64(std::uint64_t& state);
/// Stateless 64-bit mix of a value (finalizer of SplitMix64).
std::uint64_t mix64(std::uint64_t v);

}  // namespace cen
