#include "core/thread_pool.hpp"

#include <algorithm>

namespace cen {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(int, std::size_t)>& fn) {
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_count_ = count;
    cursor_.store(0, std::memory_order_relaxed);
    workers_running_ = workers_.size();
    error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return workers_running_ == 0; });
    job_ = nullptr;
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop(int id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int, std::size_t)>* job = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      count = job_count_;
    }
    for (;;) {
      std::size_t index = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) break;
      try {
        (*job)(id, index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_running_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace cen
