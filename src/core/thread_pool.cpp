#include "core/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace cen {

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

void ThreadPool::set_stats(PoolStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = stats;
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(int, std::size_t)>& fn) {
  const std::function<void(int, std::size_t, std::size_t)> adapter =
      [&fn](int worker, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(worker, i);
      };
  parallel_for_chunked(count, 1, adapter);
}

void ThreadPool::parallel_for_chunked(
    std::size_t count, std::size_t chunk,
    const std::function<void(int, std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (chunk == 0) chunk = 1;
  PoolStats* stats = nullptr;
  std::uint64_t t0 = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_count_ = count;
    job_chunk_ = chunk;
    cursor_.store(0, std::memory_order_relaxed);
    workers_running_ = workers_.size();
    error_ = nullptr;
    ++generation_;
    stats = stats_;
  }
  if (stats != nullptr) {
    stats->jobs.fetch_add(1, std::memory_order_relaxed);
    stats->tasks.fetch_add(count, std::memory_order_relaxed);
    std::uint64_t peak = stats->peak_pending.load(std::memory_order_relaxed);
    while (count > peak && !stats->peak_pending.compare_exchange_weak(
                               peak, count, std::memory_order_relaxed)) {
    }
    t0 = now_ns();
  }
  start_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return workers_running_ == 0; });
    job_ = nullptr;
    error = error_;
  }
  if (stats != nullptr) {
    stats->wall_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop(int id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int, std::size_t, std::size_t)>* job = nullptr;
    std::size_t count = 0;
    std::size_t chunk = 1;
    PoolStats* stats = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      count = job_count_;
      chunk = job_chunk_;
      stats = stats_;
    }
    for (;;) {
      std::size_t begin = cursor_.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) break;
      std::size_t end = std::min(count, begin + chunk);
      std::uint64_t t0 = stats != nullptr ? now_ns() : 0;
      try {
        (*job)(id, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      if (stats != nullptr) {
        stats->busy_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_running_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace cen
