#include "core/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace cen {

std::string ascii_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string ascii_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  auto is_ws = [](char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; };
  while (!s.empty() && is_ws(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_ws(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split(std::string_view s, std::string_view sep) {
  std::vector<std::string> out;
  if (sep.empty()) {
    out.emplace_back(s);
    return out;
  }
  std::size_t start = 0;
  for (;;) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string reversed(std::string_view s) { return std::string(s.rbegin(), s.rend()); }

std::string fmt_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace cen
