#include "core/bytes.hpp"

namespace cen {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u24(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

void ByteWriter::raw(std::string_view data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) throw std::out_of_range("patch_u16 past end");
  buf_[offset] = static_cast<std::uint8_t>(v >> 8);
  buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void ByteReader::require(std::size_t n) const {
  if (pos_ + n > data_.size()) throw ParseError("read past end of buffer");
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u24() {
  require(3);
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]);
  pos_ += 3;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t hi = u32();
  return hi << 32 | u32();
}

Bytes ByteReader::raw(std::size_t n) {
  require(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::str(std::size_t n) {
  require(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

std::string to_hex(BytesView data) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw ParseError("invalid hex character");
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw ParseError("odd-length hex string");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_nibble(hex[i]) << 4 | hex_nibble(hex[i + 1])));
  }
  return out;
}

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(BytesView data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

}  // namespace cen
