// Minimal persistent worker pool for deterministic measurement fan-out.
//
// A pool owns N long-lived worker threads. `parallel_for(count, fn)`
// dispatches indices [0, count) to the workers through an atomic cursor
// (dynamic load balancing — measurement tasks vary wildly in cost) and
// blocks until every index has been processed. Each invocation receives
// the id of the worker running it, which callers use to select
// worker-private state (e.g. a per-worker `sim::Network` replica) without
// locking. Determinism is the *caller's* contract: tasks must be hermetic
// (result a pure function of the index), so the scheduling order the
// cursor happens to produce can never leak into results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cen {

/// Execution statistics a pool publishes when a sink is attached.
/// `jobs`, `tasks` and `peak_pending` are scheduling-independent (they
/// depend only on what was submitted — deterministic, sim domain);
/// `busy_ns` and `wall_ns` are host-clock measurements (wall domain,
/// excluded from deterministic snapshots). All fields are atomics so
/// workers can add without locks; readers use relaxed loads after the
/// job has completed.
struct PoolStats {
  std::atomic<std::uint64_t> jobs{0};          // parallel_for invocations
  std::atomic<std::uint64_t> tasks{0};         // total indices dispatched
  std::atomic<std::uint64_t> peak_pending{0};  // largest single job
  std::atomic<std::uint64_t> busy_ns{0};       // summed task execution time
  std::atomic<std::uint64_t> wall_ns{0};       // summed parallel_for wall time
};

class ThreadPool {
 public:
  /// Spawn `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Attach (or detach with nullptr) a stats sink. Must be called while
  /// no job is in flight; the sink must outlive the pool or the next
  /// set_stats(nullptr). When no sink is attached the pool takes no
  /// timestamps at all — the disabled path costs one pointer test.
  void set_stats(PoolStats* stats);

  /// Run fn(worker_id, index) for every index in [0, count); returns when
  /// all invocations completed. The first exception a task throws is
  /// rethrown here (remaining indices are still drained). Not reentrant:
  /// tasks must not call parallel_for on the same pool.
  void parallel_for(std::size_t count,
                    const std::function<void(int, std::size_t)>& fn);

  /// Chunked dispatch: fn(worker_id, begin, end) processes the contiguous
  /// index range [begin, end), end - begin <= chunk. One atomic cursor
  /// bump claims a whole chunk, so dispatch overhead (and cache-line
  /// contention on the cursor) is paid once per `chunk` tasks instead of
  /// once per task, and a worker's consecutive tasks share locality.
  /// Determinism is unaffected: chunking changes only how indices are
  /// *claimed*, never what any index computes.
  void parallel_for_chunked(std::size_t count, std::size_t chunk,
                            const std::function<void(int, std::size_t, std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a sane floor of 1.
  static int hardware_threads();

 private:
  void worker_loop(int id);

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;

  // Current job (guarded by mu_ for publication; cursor is atomic).
  const std::function<void(int, std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t job_chunk_ = 1;
  std::atomic<std::size_t> cursor_{0};
  std::size_t workers_running_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
  PoolStats* stats_ = nullptr;  // guarded by mu_ for publication
};

}  // namespace cen
