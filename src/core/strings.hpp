// Small string utilities shared across protocol parsers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cen {

/// ASCII lowercase copy.
std::string ascii_lower(std::string_view s);
/// ASCII uppercase copy.
std::string ascii_upper(std::string_view s);
/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);
/// Trim ASCII whitespace (space, \t, \r, \n) from both ends.
std::string_view trim(std::string_view s);
/// Split on a delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);
/// Split on a multi-character separator; keeps empty fields.
std::vector<std::string> split(std::string_view s, std::string_view sep);
/// True if `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
/// Join pieces with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);
/// Reverse a string ("abc" -> "cba").
std::string reversed(std::string_view s);
/// printf-style float with fixed precision, e.g. fmt_pct(0.4213, 2) == "42.13".
std::string fmt_fixed(double v, int precision);

}  // namespace cen
