// Minimal streaming JSON writer.
//
// The measurement tools emit machine-readable reports (the real CenTrace /
// CenFuzz / CenProbe write JSON lines); this writer produces compact,
// correctly escaped JSON without a DOM. Scopes are validated: mismatched
// end_*() or a value without a pending key inside an object throw.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cen {

std::string json_escape(std::string_view s);

/// Strict UTF-8 well-formedness check (rejects overlong forms, surrogate
/// code points and sequences beyond U+10FFFF). Everything json_escape
/// emits and json_parse decodes satisfies this.
bool utf8_valid(std::string_view s);

/// Strict syntax validation of one JSON document (RFC 8259 grammar, no
/// trailing content). Used by tests to certify everything the report
/// serializers and CLIs emit.
bool json_valid(std::string_view text);

/// Parsed JSON document node. Objects keep their members in source order
/// (the canonical-key-order tests and the campaign cache depend on it);
/// lookups are linear, which is fine for the small documents the tools
/// exchange.
class JsonValue {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<Member> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Typed member accessors with fallbacks for optional spec fields.
  /// A member that is present but of the wrong type returns the fallback.
  bool get_bool(std::string_view key, bool fallback) const;
  double get_number(std::string_view key, double fallback) const;
  int get_int(std::string_view key, int fallback) const;
  std::string get_string(std::string_view key, std::string_view fallback) const;
};

/// Parse one strict JSON document (same grammar json_valid accepts).
/// Returns nullptr on any syntax error or trailing content.
std::unique_ptr<JsonValue> json_parse(std::string_view text);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Key inside an object; must be followed by exactly one value/scope.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();
  /// Splice a pre-serialized JSON document in value position (e.g. a
  /// sub-report rendered by another writer). The caller vouches for its
  /// validity; scope/comma handling is still enforced here.
  JsonWriter& raw_value(std::string_view json);

  /// The finished document; throws if scopes are still open.
  std::string str() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  void pre_value();
  void open(Scope s, char c);
  void close(Scope s, char c);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
};

}  // namespace cen
