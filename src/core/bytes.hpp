// Byte-buffer primitives used by every wire-format codec in the library.
//
// All multi-byte integers on the simulated wire are big-endian (network
// order), matching real IPv4/TCP/TLS encodings. `ByteWriter` appends to a
// growable buffer; `ByteReader` is a bounds-checked cursor over a byte span.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cen {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Thrown by ByteReader on any out-of-bounds read. Wire parsers catch this
/// at their boundary and report a malformed-message condition instead.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only big-endian encoder.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Adopt an existing buffer to reuse its capacity: the buffer is moved
  /// in and cleared. Pair with `std::move(w).take()` to hand it back —
  /// the serialize-into-scratch pattern the hot paths use to avoid
  /// per-call allocations.
  explicit ByteWriter(Bytes&& reuse) : buf_(std::move(reuse)) { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u24(std::uint32_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void raw(BytesView data);
  void raw(std::string_view data);
  /// Overwrite a previously written big-endian u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Bounds-checked big-endian decoder over a non-owning view.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u24();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes raw(std::size_t n);
  std::string str(std::size_t n);
  void skip(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }
  BytesView rest() const { return data_.subspan(pos_); }
  /// The full underlying span, independent of the cursor. Formats with
  /// absolute intra-message offsets (DNS compression pointers) re-read
  /// earlier bytes through this.
  BytesView buffer() const { return data_; }

 private:
  void require(std::size_t n) const;
  BytesView data_;
  std::size_t pos_ = 0;
};

/// Lowercase hex dump of `data`, no separators ("dead0a1b...").
std::string to_hex(BytesView data);
/// Inverse of to_hex; throws ParseError on odd length or non-hex chars.
Bytes from_hex(std::string_view hex);
/// Copy a string's bytes into a Bytes vector.
Bytes to_bytes(std::string_view s);
/// Interpret bytes as a string (no validation).
std::string to_string(BytesView data);

}  // namespace cen
