#include "evolve/genetic.hpp"

#include <algorithm>

#include "core/strings.hpp"

namespace cen::evolve {

namespace {

const std::vector<std::string>& alphabet_for(Gene::Field field) {
  static const std::vector<std::string> kMethods = {"POST", "PUT",  "PATCH", "DELETE",
                                                    "HEAD", "GeT",  "GE",    ""};
  static const std::vector<std::string> kPaths = {"?", "z", "//", "/index.html", "*"};
  static const std::vector<std::string> kVersions = {"HTTP/1.0", "HTTP/9", "HTP/1.1",
                                                     "http/1.1", "XXXX/1.1", ""};
  static const std::vector<std::string> kHostWords = {"HostHeader: ", "hOsT: ", "ost: ",
                                                      "Host ", "XXXX: "};
  static const std::vector<std::string> kPads = {"*", "**", "x."};
  static const std::vector<std::string> kDelims = {"\n", "\r", ""};
  switch (field) {
    case Gene::Field::kMethod: return kMethods;
    case Gene::Field::kPath: return kPaths;
    case Gene::Field::kVersion: return kVersions;
    case Gene::Field::kHostWord: return kHostWords;
    case Gene::Field::kHostPrefix: return kPads;
    case Gene::Field::kHostSuffix: return kPads;
    case Gene::Field::kLineDelim: return kDelims;
  }
  return kMethods;
}

constexpr Gene::Field kAllFields[] = {
    Gene::Field::kMethod,     Gene::Field::kPath,      Gene::Field::kVersion,
    Gene::Field::kHostWord,   Gene::Field::kHostPrefix, Gene::Field::kHostSuffix,
    Gene::Field::kLineDelim};

}  // namespace

Gene random_gene(Rng& rng) {
  Gene g;
  g.field = kAllFields[rng.index(std::size(kAllFields))];
  const std::vector<std::string>& alphabet = alphabet_for(g.field);
  g.value = alphabet[rng.index(alphabet.size())];
  return g;
}

net::HttpRequest express(const Genome& genome, const std::string& domain) {
  net::HttpRequest r = net::HttpRequest::get(domain);
  for (const Gene& g : genome.genes) {
    switch (g.field) {
      case Gene::Field::kMethod: r.method = g.value; break;
      case Gene::Field::kPath: r.path = g.value; break;
      case Gene::Field::kVersion: r.version = g.value; break;
      case Gene::Field::kHostWord: r.host_word = g.value; break;
      case Gene::Field::kHostPrefix: r.host = g.value + r.host; break;
      case Gene::Field::kHostSuffix: r.host += g.value; break;
      case Gene::Field::kLineDelim: r.request_line_delim = g.value; break;
    }
  }
  return r;
}

namespace {

/// Send one expressed request; fitness 0 = blocked, 1 = evaded (any
/// application response), 2 = evaded and fetched the intended content.
double evaluate(sim::Network& network, sim::NodeId client, net::Ipv4Address endpoint,
                const net::HttpRequest& request, const std::string& test_domain,
                int& probes) {
  ++probes;
  sim::Connection conn = network.open_connection(client, endpoint, 80);
  if (conn.connect() != sim::ConnectResult::kEstablished) return 0.0;
  std::vector<sim::Event> events = conn.send(request.serialize_bytes(), 64);
  network.clock().advance(120 * kSecond);  // stay clear of residual windows
  if (events.empty()) return 0.0;          // dropped
  for (const sim::Event& ev : events) {
    const auto* tcp = std::get_if<sim::TcpEvent>(&ev);
    if (tcp == nullptr) continue;
    if (tcp->packet.tcp.has(net::TcpFlags::kRst) ||
        tcp->packet.tcp.has(net::TcpFlags::kFin)) {
      return 0.0;  // injected teardown
    }
    if (tcp->packet.payload.empty()) continue;
    auto resp = net::HttpResponse::parse(to_string(tcp->packet.payload));
    if (!resp) continue;
    if (resp->body.find("Blocked") != std::string::npos) return 0.0;  // blockpage
    std::vector<std::string> labels = split(test_domain, '.');
    std::string registrable =
        labels.size() >= 2 ? labels[labels.size() - 2] + "." + labels.back()
                           : test_domain;
    if (resp->status == 200 && resp->body.find(registrable) != std::string::npos) {
      return 2.0;  // legitimate content for the intended domain
    }
    return 1.0;  // some response got through the censor
  }
  return 1.0;
}

}  // namespace

GeneticResult evolve_evasion(sim::Network& network, sim::NodeId client,
                             net::Ipv4Address endpoint, const std::string& test_domain,
                             GeneticOptions options) {
  GeneticResult result;
  Rng rng(options.seed);
  int probes = 0;

  auto evaluate_genome = [&](Genome& genome) {
    genome.fitness = evaluate(network, client, endpoint, express(genome, test_domain),
                              test_domain, probes);
    genome.probes_used = probes;
  };

  // Seed population: single random genes (plus the unmodified baseline,
  // which should score 0 against a censored domain).
  std::vector<Genome> population(options.population);
  for (std::size_t i = 1; i < population.size(); ++i) {
    population[i].genes = {random_gene(rng)};
  }
  for (Genome& genome : population) evaluate_genome(genome);

  auto best_of = [](const std::vector<Genome>& pop) {
    return *std::max_element(pop.begin(), pop.end(),
                             [](const Genome& a, const Genome& b) {
                               return a.fitness < b.fitness;
                             });
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    result.generations_run = static_cast<int>(gen) + 1;
    if (best_of(population).fitness >= options.target_fitness) break;

    std::vector<Genome> next;
    next.push_back(best_of(population));  // elitism
    while (next.size() < options.population) {
      // Tournament selection of two parents.
      auto tournament = [&]() -> const Genome& {
        const Genome& a = population[rng.index(population.size())];
        const Genome& b = population[rng.index(population.size())];
        return a.fitness >= b.fitness ? a : b;
      };
      Genome child = tournament();
      if (rng.chance(options.crossover_rate)) {
        const Genome& other = tournament();
        // One-point crossover on the gene lists.
        Genome crossed;
        std::size_t cut_a = child.genes.empty() ? 0 : rng.index(child.genes.size() + 1);
        std::size_t cut_b = other.genes.empty() ? 0 : rng.index(other.genes.size() + 1);
        crossed.genes.assign(child.genes.begin(),
                             child.genes.begin() + static_cast<std::ptrdiff_t>(cut_a));
        crossed.genes.insert(crossed.genes.end(),
                             other.genes.begin() + static_cast<std::ptrdiff_t>(cut_b),
                             other.genes.end());
        child = std::move(crossed);
      }
      if (rng.chance(options.mutation_rate) || child.genes.empty()) {
        if (!child.genes.empty() && rng.chance(0.3)) {
          child.genes.erase(child.genes.begin() +
                            static_cast<std::ptrdiff_t>(rng.index(child.genes.size())));
        } else {
          child.genes.push_back(random_gene(rng));
        }
      }
      if (child.genes.size() > options.max_genes) child.genes.resize(options.max_genes);
      evaluate_genome(child);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  result.best = best_of(population);
  result.total_probes = probes;
  result.found_evasion = result.best.fitness >= 1.0;
  result.found_circumvention = result.best.fitness >= 2.0;
  return result;
}

}  // namespace cen::evolve
