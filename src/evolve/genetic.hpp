// Geneva-style evolutionary evasion search (the §3.4 contrast class).
//
// Geneva (Bock et al.) evolves packet-manipulation strategies against a
// live censor using success feedback. This module implements the same idea
// over cendevice's HTTP request mutation space: an individual is a small
// set of field mutations, fitness is measured by actually sending the
// mutated request through the network (evasion + optional circumvention),
// and the population evolves by tournament selection, crossover and
// mutation.
//
// The paper deliberately chooses *deterministic* fuzzing over this style
// of search because evolved strategy sets differ per device and run,
// making cross-device fingerprints incomparable (§6). The accompanying
// bench quantifies the trade-off: the genetic search finds *an* evading
// request in far fewer probes, while CenFuzz's fixed sweep yields a
// comparable feature vector everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "net/http.hpp"
#include "netsim/engine.hpp"

namespace cen::evolve {

/// One atomic mutation of an HTTP request field.
struct Gene {
  enum class Field : std::uint8_t {
    kMethod,
    kPath,
    kVersion,
    kHostWord,
    kHostPrefix,   // prepend characters to the hostname
    kHostSuffix,   // append characters to the hostname
    kLineDelim,
  };
  Field field = Field::kMethod;
  std::string value;

  bool operator==(const Gene&) const = default;
};

/// An individual: an ordered set of genes applied to the base request.
struct Genome {
  std::vector<Gene> genes;
  double fitness = 0.0;   // 0 = blocked, 1 = evades, 2 = evades + legit content
  int probes_used = 0;    // cumulative probe count when this fitness was set
};

/// Apply a genome to a fresh GET request for `domain`.
net::HttpRequest express(const Genome& genome, const std::string& domain);

/// A random gene drawn from the mutation alphabet.
Gene random_gene(Rng& rng);

struct GeneticOptions {
  std::size_t population = 16;
  std::size_t generations = 10;
  std::size_t max_genes = 3;
  double mutation_rate = 0.4;
  double crossover_rate = 0.7;
  std::uint64_t seed = 99;
  /// Stop as soon as an individual reaches this fitness.
  double target_fitness = 2.0;
};

struct GeneticResult {
  Genome best;
  int total_probes = 0;       // network requests spent
  int generations_run = 0;
  bool found_evasion = false;       // fitness >= 1
  bool found_circumvention = false; // fitness >= 2
};

/// Evolve evasion strategies against whatever censors the path to
/// `endpoint` holds, for `test_domain`.
GeneticResult evolve_evasion(sim::Network& network, sim::NodeId client,
                             net::Ipv4Address endpoint, const std::string& test_domain,
                             GeneticOptions options = {});

}  // namespace cen::evolve
