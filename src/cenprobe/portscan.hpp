// Port scanning of potential censorship-device IPs (paper §5.1).
//
// The paper scans the Nmap top-1000 ports of every in-path device IP that
// CenTrace surfaces. The simulation's management plane answers with the
// ports a device actually exposes; the scanner still walks the top-port
// list so the probing cost and ordering mirror the real tool.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.hpp"
#include "netsim/engine.hpp"

namespace cen::probe {

/// The scanner's port list (a representative slice of Nmap's top ports,
/// always including every service port the vendor profiles use).
const std::vector<std::uint16_t>& top_ports();

struct PortScanResult {
  net::Ipv4Address ip;
  std::vector<std::uint16_t> open_ports;
};

PortScanResult scan_ports(const sim::Network& network, net::Ipv4Address ip);

}  // namespace cen::probe
