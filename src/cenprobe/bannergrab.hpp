// Application-layer banner grabs (paper §5.1): ZGrab-style handshakes on
// HTTP(S), SSH, Telnet, FTP, SMTP and SNMP against a device's open ports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cenprobe/portscan.hpp"

namespace cen::probe {

struct BannerGrab {
  net::Ipv4Address ip;
  std::uint16_t port = 0;
  std::string protocol;
  std::string banner;
  /// False when the grab degraded: the connection died mid-read (partial
  /// banner kept — fingerprints match on substrings, so a prefix is still
  /// useful evidence) or every attempt timed out (empty banner).
  bool complete = true;
  /// Handshake attempts spent, including the successful one (1 = clean).
  int attempts = 1;
};

/// Handshake attempts per service before recording a failed, empty grab.
inline constexpr int kGrabAttempts = 3;

/// Protocols the grabber speaks (the paper's §5.1 list).
const std::vector<std::string>& grab_protocols();

/// Grab banners from every open port that speaks a supported protocol.
std::vector<BannerGrab> grab_banners(const sim::Network& network,
                                     const PortScanResult& scan);

}  // namespace cen::probe
