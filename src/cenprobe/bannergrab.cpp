#include "cenprobe/bannergrab.hpp"

#include <algorithm>

#include "obs/observer.hpp"

namespace cen::probe {

const std::vector<std::string>& grab_protocols() {
  static const std::vector<std::string> kProtocols = {"http",   "https", "ssh",
                                                      "telnet", "ftp",   "smtp",
                                                      "snmp"};
  return kProtocols;
}

std::vector<BannerGrab> grab_banners(const sim::Network& network,
                                     const PortScanResult& scan) {
  std::vector<BannerGrab> out;
  std::vector<censor::ServiceBanner> services = network.scan_services(scan.ip);
  for (const censor::ServiceBanner& svc : services) {
    // Only ports the scan found open, and only protocols the grabber speaks.
    bool open = std::find(scan.open_ports.begin(), scan.open_ports.end(), svc.port) !=
                scan.open_ports.end();
    bool supported = std::find(grab_protocols().begin(), grab_protocols().end(),
                               svc.protocol) != grab_protocols().end();
    if (!open || !supported) continue;
    BannerGrab grab;
    grab.ip = scan.ip;
    grab.port = svc.port;
    grab.protocol = svc.protocol;

    // Bounded-retry handshake: a management plane under fault injection may
    // drop the connection (retry) or cut the read short (keep the partial
    // banner — §5.1 fingerprints match substrings, so a prefix still
    // identifies the vendor). Exhausted attempts record an empty,
    // incomplete grab instead of silently omitting the service.
    sim::FaultInjector& faults = network.faults();
    obs::Observer* o = network.observer();
    if (o != nullptr) o->tools().banner_grabs->inc();
    bool connected = false;
    for (int attempt = 0; attempt < kGrabAttempts; ++attempt) {
      grab.attempts = attempt + 1;
      if (attempt > 0 && o != nullptr) o->tools().banner_retries->inc();
      if (faults.mgmt_unreachable()) continue;
      connected = true;
      grab.banner = svc.banner;
      if (faults.truncate_banner() && !grab.banner.empty()) {
        grab.banner.resize(grab.banner.size() / 2);
        grab.complete = false;
      }
      break;
    }
    if (!connected) {
      grab.banner.clear();
      grab.complete = false;
    }
    if (!grab.complete && o != nullptr) o->tools().banner_partials->inc();
    out.push_back(std::move(grab));
  }
  return out;
}

}  // namespace cen::probe
