#include "cenprobe/fingerprints.hpp"

#include "core/strings.hpp"
#include "obs/observer.hpp"

namespace cen::probe {

const std::vector<Fingerprint>& fingerprint_db() {
  static const std::vector<Fingerprint> kDb = {
      {"https", "fortigate", "Fortinet"},
      {"ssh", "fortissh", "Fortinet"},
      {"", "fortinet", "Fortinet"},
      {"ssh", "cisco", "Cisco"},
      {"telnet", "user access verification", "Cisco"},
      {"", "kerio control", "Kerio"},
      {"", "kerio", "Kerio"},
      {"https", "pan-os", "PaloAlto"},
      {"ssh", "paloalto", "PaloAlto"},
      {"", "palo alto", "PaloAlto"},
      {"http", "ddos-guard", "DDoSGuard"},
      {"ftp", "mikrotik", "MikroTik"},
      {"ssh", "rosssh", "MikroTik"},
      {"telnet", "routeros", "MikroTik"},
      {"", "kaspersky", "Kaspersky"},
      {"http", "netsweeper", "Netsweeper"},
      {"snmp", "netsweeper", "Netsweeper"},
      {"", "blue coat", "BlueCoat"},
      {"ssh", "packetlogic", "Sandvine"},
  };
  return kDb;
}

std::optional<std::string> match_fingerprint(const BannerGrab& grab) {
  std::string banner = ascii_lower(grab.banner);
  for (const Fingerprint& fp : fingerprint_db()) {
    if (!fp.protocol.empty() && fp.protocol != grab.protocol) continue;
    if (banner.find(fp.pattern) != std::string::npos) return fp.vendor;
  }
  return std::nullopt;
}

namespace {

DeviceProbeReport probe_device_impl(const sim::Network& network, net::Ipv4Address ip) {
  DeviceProbeReport report;
  report.ip = ip;
  obs::Observer* o = network.observer();
  obs::ScopedSpan span(o != nullptr ? &o->tracer() : nullptr, &network.clock(),
                       "cenprobe:" + ip.str(), "cenprobe");
  if (o != nullptr) o->tools().devices_probed->inc();
  PortScanResult scan = scan_ports(network, ip);
  report.open_ports = scan.open_ports;
  report.banners = grab_banners(network, scan);
  report.stack = network.probe_stack(ip);
  for (const BannerGrab& grab : report.banners) {
    if (auto vendor = match_fingerprint(grab)) {
      report.vendor = vendor;
      if (o != nullptr) {
        o->tools().banner_matches->inc();
        o->journal().record(network.now(), "banner_match",
                            ip.str() + " " + grab.protocol + " -> " + *vendor);
      }
      break;
    }
  }
  return report;
}

}  // namespace

DeviceProbeReport run(sim::Network& network, const ProbeRunOptions& options,
                      obs::Observer* observer) {
  sim::ScopedObserver guard(network, observer);
  if (options.common.seed) network.reset_epoch(*options.common.seed);
  return probe_device_impl(network, options.ip);
}

}  // namespace cen::probe
