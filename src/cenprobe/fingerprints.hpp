// Recog-style fingerprint matching and the full CenProbe pipeline
// (paper §5): scan → grab → label.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cenprobe/bannergrab.hpp"
#include "tool/options.hpp"

namespace cen::probe {

/// One fingerprint rule: if a banner (optionally restricted to one
/// protocol) contains `pattern` (case-insensitive), it identifies `vendor`.
struct Fingerprint {
  std::string protocol;  // "" = any protocol
  std::string pattern;
  std::string vendor;
};

/// The built-in fingerprint repository (mirrors Rapid7 Recog entries for
/// the vendors the paper identifies).
const std::vector<Fingerprint>& fingerprint_db();

/// Match one banner against the repository.
std::optional<std::string> match_fingerprint(const BannerGrab& grab);

/// Full probe result for one potential device IP.
struct DeviceProbeReport {
  net::Ipv4Address ip;
  std::vector<std::uint16_t> open_ports;
  std::vector<BannerGrab> banners;
  /// Vendor label when any banner matched a fingerprint.
  std::optional<std::string> vendor;
  /// Nmap-style TCP-stack fingerprint (needs >=1 open port to probe).
  std::optional<censor::StackFingerprint> stack;
  bool has_any_service() const { return !open_ports.empty(); }
};

/// One complete CenProbe invocation for the unified tool API. Probing is
/// clientless (the management plane is reached out-of-band), so the
/// subject is just the device IP.
struct ProbeRunOptions {
  net::Ipv4Address ip;
  /// Shared run fields. Probing is a stateless management-plane scan, so
  /// only `seed` (epoch reset before the scan) applies here.
  tool::CommonRunOptions common;
};

/// Unified entry point (same shape as trace::run / fuzz::run): probe one
/// device IP on `network`, attaching `observer` for the duration (the
/// previous observer is restored on return, exception-safe).
DeviceProbeReport run(sim::Network& network, const ProbeRunOptions& options,
                      obs::Observer* observer = nullptr);

}  // namespace cen::probe
