#include "cenprobe/portscan.hpp"

#include <algorithm>

namespace cen::probe {

const std::vector<std::uint16_t>& top_ports() {
  static const std::vector<std::uint16_t> kPorts = {
      21,   22,   23,   25,   53,   80,   110,  111,  135,  139,  143,  161,
      443,  445,  993,  995,  1723, 3306, 3389, 4081, 5900, 8080, 8443, 8888,
      10443};
  return kPorts;
}

PortScanResult scan_ports(const sim::Network& network, net::Ipv4Address ip) {
  PortScanResult result;
  result.ip = ip;
  std::vector<censor::ServiceBanner> services = network.scan_services(ip);
  for (std::uint16_t port : top_ports()) {
    bool open = std::any_of(services.begin(), services.end(),
                            [&](const censor::ServiceBanner& s) { return s.port == port; });
    if (open) result.open_ports.push_back(port);
  }
  return result;
}

}  // namespace cen::probe
