// Censor-policy evolution between measurement epochs.
//
// The paper's campaigns are snapshots; real censorship regimes drift:
// blocklists grow and shrink, vendors push firmware that changes
// reassembly behaviour, blockpages get rebranded, deployments go dark and
// come back. An EvolutionPlan is a seeded, schedule-driven description of
// that drift. Applied to a freshly-built scenario/worldgen network it
// deterministically mutates the deployed devices for epochs 1..N
// (cumulative replay — epoch state is a pure function of (baseline, plan,
// epoch), never of who asked first), and reports the ground-truth churn so
// the longitudinal differ can be scored against what actually changed.
//
// Layering: this header knows networks and devices, but deliberately not
// campaigns — campaign/spec.hpp includes it (the spec embeds a plan), so
// including campaign headers here would cycle.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netsim/engine.hpp"

namespace cen {
class JsonValue;
}

namespace cen::longit {

/// Per-epoch, per-device mutation probabilities plus the churn schedule.
/// Epoch 0 is always the untouched baseline.
struct EvolutionPlan {
  /// Root of every churn decision (independent of the measurement seed,
  /// so the same world can be measured under different histories).
  std::uint64_t seed = 1;
  /// First epoch at which churn may occur.
  int start_epoch = 1;
  /// Churn every `period`-th epoch from start_epoch (1 = every epoch).
  int period = 1;

  /// Blocklist growth: add one rule drawn from the pool (skipped when the
  /// draw is already present).
  double rule_add_prob = 0.0;
  /// Blocklist shrinkage: remove one uniformly-chosen rule.
  double rule_remove_prob = 0.0;
  /// Firmware/vendor upgrade: reassembly quirks flip to the strict
  /// profile (checksum + TTL validation, last-wins overlap) — the change
  /// cenambig fingerprinting observes.
  double vendor_upgrade_prob = 0.0;
  /// Blockpage rebranding: a blockpage-injecting device starts serving a
  /// different commercial vendor's page (what blockpage fingerprinting
  /// sees as a vendor change).
  double blockpage_swap_prob = 0.0;
  /// Deployment coverage drift: the device toggles between enforcing and
  /// dark (rules stashed / restored), modelling devices that disappear
  /// from measurement for a while.
  double coverage_drift_prob = 0.0;

  /// Domains rule adds draw from. Empty = the caller's pool (the campaign
  /// passes the site's measured domain lists, so churn is observable).
  std::vector<std::string> rule_pool;

  /// True when no epoch can ever churn (all probabilities zero or the
  /// schedule never fires).
  bool inert() const;
  /// Does this plan churn at `epoch`?
  bool churn_epoch(int epoch) const;
  /// Digest over every field (campaign cache-key component).
  std::uint64_t fingerprint() const;

  bool operator==(const EvolutionPlan&) const = default;
};

/// Canonical JSON rendering (evolution_from_json(to_json(p)) == p).
std::string to_json(const EvolutionPlan& plan);
/// Parse a plan object. nullopt + error description on malformed input.
std::optional<EvolutionPlan> evolution_from_json(std::string_view text,
                                                 std::string* error = nullptr);
/// Parse from an already-parsed JSON node (the campaign spec's
/// "evolution" member; same validation as evolution_from_json).
std::optional<EvolutionPlan> evolution_from_doc(const JsonValue& doc,
                                                std::string* error = nullptr);

/// Ground truth: what happened to one device in one churn epoch.
struct DeviceChurn {
  std::string device_id;
  std::vector<std::string> rules_added;
  std::vector<std::string> rules_removed;
  bool vendor_upgraded = false;
  bool blockpage_swapped = false;
  bool coverage_dropped = false;   // went dark (rules stashed)
  bool coverage_restored = false;  // came back

  bool changed() const {
    return !rules_added.empty() || !rules_removed.empty() || vendor_upgraded ||
           blockpage_swapped || coverage_dropped || coverage_restored;
  }
};

/// Ground truth for one churn epoch (devices that changed only).
struct EpochChurn {
  int epoch = 0;
  std::string site;  // the site apply_evolution was called with
  std::vector<DeviceChurn> devices;

  bool any() const { return !devices.empty(); }
};

/// The built-in domain pool used when neither the plan nor the caller
/// supplies one (tests and the cencheck engine).
const std::vector<std::string>& builtin_rule_pool();

/// Mutate `net`'s devices through every churn epoch in [1, epoch],
/// replaying cumulatively from the freshly-built baseline the caller
/// hands in. `site` salts the churn stream so sites evolve independently;
/// `domain_pool` backs rule adds when plan.rule_pool is empty (falls back
/// to builtin_rule_pool() when both are empty). Returns the ground-truth
/// churn of every epoch that changed anything, in epoch order.
///
/// Determinism: each (epoch, site, device) decision draws from its own
/// seeded substream, and devices iterate in deployment order — so the
/// result is a pure function of the arguments, and the device mutations
/// flow into Network::fingerprint() (cache invalidation is automatic).
std::vector<EpochChurn> apply_evolution(sim::Network& net, std::string_view site,
                                        const EvolutionPlan& plan, int epoch,
                                        const std::vector<std::string>& domain_pool = {});

}  // namespace cen::longit
