#include "longit/evolve.hpp"

#include <algorithm>
#include <map>

#include "censor/vendors.hpp"
#include "core/fingerprint.hpp"
#include "core/json.hpp"
#include "core/rng.hpp"

namespace cen::longit {

namespace {

std::uint64_t hash_str(std::string_view s) {
  FingerprintBuilder fp;
  fp.mix(s);
  return fp.digest();
}

/// Seed of the (plan, site, epoch, device) churn substream. Chained mixes
/// so flipping any one component decorrelates every draw.
std::uint64_t churn_seed(const EvolutionPlan& plan, std::string_view site,
                         int epoch, std::string_view device_id) {
  std::uint64_t h = mix64(plan.seed ^ 0x6c6f6e676974ull);  // "longit"
  h = mix64(h ^ hash_str(site));
  h = mix64(h ^ static_cast<std::uint64_t>(epoch));
  h = mix64(h ^ hash_str(device_id));
  return h;
}

/// The post-upgrade reassembly profile: strict validation everywhere —
/// the observable signature of a firmware generation that closes the
/// insertion/evasion holes cenambig fingerprints.
censor::ReassemblyQuirks strict_reassembly() {
  censor::ReassemblyQuirks q;
  q.reassembles = true;
  q.overlap = censor::OverlapPolicy::kLastWins;
  q.buffers_out_of_order = true;
  q.validates_checksum = true;
  q.ttl_consistency_check = true;
  q.ttl_slack = 1;
  return q;
}

bool has_rule(const censor::RuleSet& rules, std::string_view domain) {
  for (const censor::DomainRule& r : rules.rules()) {
    if (r.domain == domain) return true;
  }
  return false;
}

censor::RuleSet without_rule(const censor::RuleSet& rules, std::size_t index) {
  std::vector<censor::DomainRule> kept = rules.rules();
  kept.erase(kept.begin() + static_cast<std::ptrdiff_t>(index));
  return censor::RuleSet(std::move(kept), rules.case_insensitive());
}

censor::RuleSet without_domain(const censor::RuleSet& rules, std::string_view domain) {
  std::vector<censor::DomainRule> kept;
  kept.reserve(rules.size());
  for (const censor::DomainRule& r : rules.rules()) {
    if (r.domain != domain) kept.push_back(r);
  }
  return censor::RuleSet(std::move(kept), rules.case_insensitive());
}

/// Stashed rule sets of a device that has gone dark.
struct RuleStash {
  censor::RuleSet http, sni, dns;
};

}  // namespace

bool EvolutionPlan::inert() const {
  const bool no_prob = rule_add_prob <= 0.0 && rule_remove_prob <= 0.0 &&
                       vendor_upgrade_prob <= 0.0 && blockpage_swap_prob <= 0.0 &&
                       coverage_drift_prob <= 0.0;
  return no_prob || period <= 0;
}

bool EvolutionPlan::churn_epoch(int epoch) const {
  if (inert()) return false;
  if (epoch < start_epoch) return false;
  return (epoch - start_epoch) % period == 0;
}

std::uint64_t EvolutionPlan::fingerprint() const {
  FingerprintBuilder fp;
  fp.mix(seed);
  fp.mix(static_cast<std::uint64_t>(start_epoch));
  fp.mix(static_cast<std::uint64_t>(period));
  fp.mix(rule_add_prob);
  fp.mix(rule_remove_prob);
  fp.mix(vendor_upgrade_prob);
  fp.mix(blockpage_swap_prob);
  fp.mix(coverage_drift_prob);
  fp.mix(static_cast<std::uint64_t>(rule_pool.size()));
  for (const std::string& d : rule_pool) fp.mix(d);
  return fp.digest();
}

std::string to_json(const EvolutionPlan& plan) {
  JsonWriter w;
  w.begin_object();
  w.key("seed").value(plan.seed);
  w.key("start_epoch").value(plan.start_epoch);
  w.key("period").value(plan.period);
  w.key("rule_add_prob").value(plan.rule_add_prob);
  w.key("rule_remove_prob").value(plan.rule_remove_prob);
  w.key("vendor_upgrade_prob").value(plan.vendor_upgrade_prob);
  w.key("blockpage_swap_prob").value(plan.blockpage_swap_prob);
  w.key("coverage_drift_prob").value(plan.coverage_drift_prob);
  w.key("rule_pool").begin_array();
  for (const std::string& d : plan.rule_pool) w.value(d);
  w.end_array();
  w.end_object();
  return w.str();
}

std::optional<EvolutionPlan> evolution_from_doc(const JsonValue& doc,
                                                std::string* error) {
  auto fail = [&](std::string_view why) -> std::optional<EvolutionPlan> {
    if (error != nullptr) *error = std::string(why);
    return std::nullopt;
  };
  if (!doc.is_object()) return fail("evolution: not a JSON object");
  EvolutionPlan plan;
  plan.seed = static_cast<std::uint64_t>(doc.get_number("seed", 1.0));
  plan.start_epoch = doc.get_int("start_epoch", 1);
  plan.period = doc.get_int("period", 1);
  plan.rule_add_prob = doc.get_number("rule_add_prob", 0.0);
  plan.rule_remove_prob = doc.get_number("rule_remove_prob", 0.0);
  plan.vendor_upgrade_prob = doc.get_number("vendor_upgrade_prob", 0.0);
  plan.blockpage_swap_prob = doc.get_number("blockpage_swap_prob", 0.0);
  plan.coverage_drift_prob = doc.get_number("coverage_drift_prob", 0.0);
  for (double p : {plan.rule_add_prob, plan.rule_remove_prob,
                   plan.vendor_upgrade_prob, plan.blockpage_swap_prob,
                   plan.coverage_drift_prob}) {
    if (!(p >= 0.0 && p <= 1.0)) {
      return fail("evolution: probability outside [0, 1]");
    }
  }
  if (plan.start_epoch < 0) return fail("evolution: start_epoch < 0");
  if (const JsonValue* pool = doc.find("rule_pool")) {
    if (!pool->is_array()) return fail("evolution: rule_pool not an array");
    for (const JsonValue& d : pool->array) {
      if (!d.is_string()) return fail("evolution: rule_pool entry not a string");
      plan.rule_pool.push_back(d.string);
    }
  }
  return plan;
}

std::optional<EvolutionPlan> evolution_from_json(std::string_view text,
                                                 std::string* error) {
  auto doc = json_parse(text);
  if (doc == nullptr) {
    if (error != nullptr) *error = "evolution: not a JSON object";
    return std::nullopt;
  }
  return evolution_from_doc(*doc, error);
}

const std::vector<std::string>& builtin_rule_pool() {
  static const std::vector<std::string> kPool = {
      "newly-banned.example",  "forbidden-news.net", "proxy-mirror.org",
      "vpn-gateway.io",        "leaked-docs.info",   "opposition-blog.net",
      "streaming-mirror.tv",   "messenger-alt.app",
  };
  return kPool;
}

std::vector<EpochChurn> apply_evolution(sim::Network& net, std::string_view site,
                                        const EvolutionPlan& plan, int epoch,
                                        const std::vector<std::string>& domain_pool) {
  std::vector<EpochChurn> history;
  if (plan.inert() || epoch <= 0) return history;

  const std::vector<std::string>& pool =
      !plan.rule_pool.empty() ? plan.rule_pool
      : !domain_pool.empty()  ? domain_pool
                              : builtin_rule_pool();

  // Dark devices' stashed rules, keyed by device id; local because each
  // call replays the full history from the baseline network.
  std::map<std::string, RuleStash, std::less<>> stash;

  for (int e = 1; e <= epoch; ++e) {
    if (!plan.churn_epoch(e)) continue;
    EpochChurn ec;
    ec.epoch = e;
    ec.site = std::string(site);
    const auto& devices = net.devices();
    for (std::size_t i = 0; i < devices.size(); ++i) {
      censor::DeviceConfig cfg = devices[i]->config();
      Rng rng(churn_seed(plan, site, e, cfg.id));
      // Draw every decision up front, in a fixed order, so the stream a
      // device consumes never depends on which mutations applied.
      const bool drift = rng.chance(plan.coverage_drift_prob);
      const bool add = rng.chance(plan.rule_add_prob);
      const bool remove = rng.chance(plan.rule_remove_prob);
      const bool upgrade = rng.chance(plan.vendor_upgrade_prob);
      const bool swap = rng.chance(plan.blockpage_swap_prob);
      const std::size_t add_pick = rng.index(pool.size());
      const std::uint64_t remove_pick = rng.next();
      const std::size_t swap_pick = rng.index(
          std::max<std::size_t>(censor::commercial_vendors().size(), 1));

      DeviceChurn churn;
      churn.device_id = cfg.id;
      auto stash_it = stash.find(cfg.id);
      const bool dark = stash_it != stash.end();

      if (drift) {
        if (dark) {
          cfg.http_rules = stash_it->second.http;
          cfg.sni_rules = stash_it->second.sni;
          cfg.dns_rules = stash_it->second.dns;
          stash.erase(stash_it);
          stash_it = stash.end();
          churn.coverage_restored = true;
        } else {
          stash.emplace(cfg.id, RuleStash{cfg.http_rules, cfg.sni_rules, cfg.dns_rules});
          cfg.http_rules = censor::RuleSet({}, cfg.http_rules.case_insensitive());
          cfg.sni_rules = censor::RuleSet({}, cfg.sni_rules.case_insensitive());
          cfg.dns_rules = censor::RuleSet({}, cfg.dns_rules.case_insensitive());
          churn.coverage_dropped = true;
        }
      }
      const bool now_dark = churn.coverage_dropped || (dark && !churn.coverage_restored);

      if (add && !now_dark) {
        const std::string& domain = pool[add_pick];
        if (!has_rule(cfg.http_rules, domain)) {
          cfg.http_rules.add(domain);
          cfg.sni_rules.add(domain);
          churn.rules_added.push_back(domain);
        }
      }
      if (remove && !now_dark && !cfg.http_rules.empty()) {
        const std::size_t idx = static_cast<std::size_t>(
            remove_pick % cfg.http_rules.size());
        const std::string domain = cfg.http_rules.rules()[idx].domain;
        cfg.http_rules = without_rule(cfg.http_rules, idx);
        cfg.sni_rules = without_domain(cfg.sni_rules, domain);
        churn.rules_removed.push_back(domain);
      }
      if (upgrade && cfg.reassembly != strict_reassembly()) {
        cfg.reassembly = strict_reassembly();
        churn.vendor_upgraded = true;
      }
      if (swap && cfg.action == censor::BlockAction::kBlockpage &&
          !censor::commercial_vendors().empty()) {
        const std::string& vendor = censor::commercial_vendors()[swap_pick];
        std::string html =
            censor::make_vendor_device(vendor, cfg.id).blockpage_html;
        if (!html.empty() && html != cfg.blockpage_html) {
          cfg.blockpage_html = std::move(html);
          churn.blockpage_swapped = true;
        }
      }

      if (churn.changed()) {
        net.replace_device_config(i, std::move(cfg));
        ec.devices.push_back(std::move(churn));
      }
    }
    if (ec.any()) history.push_back(std::move(ec));
  }
  return history;
}

}  // namespace cen::longit
