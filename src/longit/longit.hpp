// The longitudinal measurement service (docs/LONGITUDINAL.md).
//
// longit::run() measures the same campaign spec across N epochs, applying
// the spec's EvolutionPlan between epochs and re-running the campaign DAG
// each time against one shared incremental JSONL cache. Because every
// task's cache key contains the site's network fingerprint — which the
// evolution mutations flow into — an epoch in which nothing churned
// executes zero tool tasks, and a churned epoch re-executes exactly the
// churned sites. The loop is resumable mid-epoch (the campaign engine's
// batch checkpoints), and the full result is byte-identical for any
// worker count:
//
//  * campaign records are already thread-identical per epoch;
//  * epoch diffs are computed from per-endpoint state rows extracted from
//    records in task-identity order;
//  * the CKMS quantile sketches are fed from that same merged, ordered
//    stream (never from per-worker shards), so their state is a pure
//    function of the record sequence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "longit/evolve.hpp"
#include "obs/ckms.hpp"
#include "report/epoch_diff.hpp"

namespace cen::longit {

struct LongitSpec {
  /// The campaign measured every epoch. `base.evolution` drives the
  /// churn; `base.evolution_epoch` is overwritten by the loop.
  campaign::CampaignSpec base;
  /// Epochs measured: 0 (baseline) .. epochs - 1.
  int epochs = 3;
  /// Also replay the evolution plan on throwaway site builds to collect
  /// per-epoch ground-truth churn (diff-accuracy scoring; costs one extra
  /// scenario build per site).
  bool collect_churn = true;
};

/// One epoch's outcome.
struct EpochSummary {
  int epoch = 0;
  /// Digest of every campaign record (stage, task id, document) in
  /// task-identity order — the replay-identity fingerprint the cencheck
  /// `longit` engine and the cross-thread tests compare.
  std::uint64_t records_fingerprint = 0;
  std::size_t records = 0;
  std::size_t blocked = 0;  // blocked state rows this epoch
  /// Wall-domain bookkeeping (cache-state dependent; excluded from
  /// deterministic serializations).
  std::size_t executed = 0;
  std::size_t cache_hits = 0;
  /// Diff against the previous epoch (empty for epoch 0).
  report::EpochDiff diff;
  /// Ground-truth churn applied at this epoch (collect_churn only).
  std::vector<EpochChurn> churn;
};

struct LongitResult {
  /// False when the per-epoch batch budget stopped the run early;
  /// re-running with the same cache resumes from the checkpoint.
  bool complete = false;
  int epochs_completed = 0;
  std::string name;
  std::vector<EpochSummary> epochs;

  /// Streaming quantiles over the full multi-epoch record stream, in
  /// bounded memory: blocking-hop TTLs of every blocked row, and per-epoch
  /// newly-blocked counts. Deterministic for any worker count (fed from
  /// the merged ordered stream).
  obs::CkmsQuantiles hop_ttl;
  obs::CkmsQuantiles newly_blocked_per_epoch;

  /// Deterministic JSON summary: epochs (fingerprints, diffs, churn) and
  /// quantiles. Excludes executed/cache-hit counts (wall domain).
  std::string to_json() const;
};

/// Extract the per-endpoint state rows of one epoch's campaign records
/// (task-identity order preserved). Vendor resolution: the trace's
/// blockpage fingerprint when present, else the probe-stage vendor of the
/// blocking hop IP. Exposed for tests and the cencheck engine.
std::vector<report::EndpointEpochState> extract_epoch_states(
    const campaign::CampaignResult& result);

/// Ground-truth churn for epochs 1..max_epoch of a spec, per site —
/// replays the evolution plan on throwaway site builds, exactly as
/// campaign::run applies it. Empty when the spec has no evolution.
std::vector<EpochChurn> ground_truth_churn(const campaign::CampaignSpec& spec,
                                           int max_epoch);

/// Run the epoch loop. `control` applies to every epoch's campaign run
/// (max_batches is a per-epoch budget; the cache path is shared across
/// epochs — leave it set for warm-epoch reuse and resume).
LongitResult run(const LongitSpec& spec, const campaign::RunControl& control = {});

}  // namespace cen::longit
