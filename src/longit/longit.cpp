#include "longit/longit.hpp"

#include <map>
#include <utility>

#include "core/fingerprint.hpp"
#include "core/json.hpp"
#include "obs/observer.hpp"
#include "report/from_json.hpp"
#include "scenario/world.hpp"

namespace cen::longit {

namespace {

std::uint64_t records_fingerprint(const campaign::CampaignResult& result) {
  FingerprintBuilder fp;
  fp.mix(static_cast<std::uint64_t>(result.records.size()));
  for (const campaign::CampaignRecord& r : result.records) {
    fp.mix(r.stage);
    fp.mix(r.task_id);
    fp.mix(r.country);
    fp.mix(r.json);
  }
  return fp.digest();
}

void churn_to_json(JsonWriter& w, const EpochChurn& ec) {
  w.begin_object();
  w.key("epoch").value(ec.epoch);
  w.key("site").value(ec.site);
  w.key("devices").begin_array();
  for (const DeviceChurn& d : ec.devices) {
    w.begin_object();
    w.key("device_id").value(d.device_id);
    w.key("rules_added").begin_array();
    for (const std::string& r : d.rules_added) w.value(r);
    w.end_array();
    w.key("rules_removed").begin_array();
    for (const std::string& r : d.rules_removed) w.value(r);
    w.end_array();
    w.key("vendor_upgraded").value(d.vendor_upgraded);
    w.key("blockpage_swapped").value(d.blockpage_swapped);
    w.key("coverage_dropped").value(d.coverage_dropped);
    w.key("coverage_restored").value(d.coverage_restored);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::vector<report::EndpointEpochState> extract_epoch_states(
    const campaign::CampaignResult& result) {
  // Pass 1: probe-stage vendor labels, keyed (site, device IP). Probe
  // records follow their site's trace records, so vendor resolution needs
  // the full record set before the trace pass.
  std::map<std::string, std::string, std::less<>> probe_vendor;
  for (const campaign::CampaignRecord& r : result.records) {
    if (r.stage != "probe") continue;
    auto report = report::probe_report_from_json(r.json);
    if (!report || !report->vendor) continue;
    probe_vendor.emplace(r.country + ":" + report->ip.str(), *report->vendor);
  }

  std::vector<report::EndpointEpochState> states;
  for (const campaign::CampaignRecord& r : result.records) {
    if (r.stage != "trace") continue;
    auto report = report::trace_report_from_json(r.json);
    if (!report) continue;
    report::EndpointEpochState s;
    s.site = r.country;
    s.endpoint = report->endpoint.str();
    s.domain = report->test_domain;
    s.protocol = std::string(trace::probe_protocol_name(report->protocol));
    s.blocked = report->blocked;
    if (report->blocked) {
      s.blocking_type = std::string(trace::blocking_type_name(report->blocking_type));
      if (report->blockpage_vendor) {
        s.vendor = *report->blockpage_vendor;
      } else if (report->blocking_hop_ip) {
        auto it = probe_vendor.find(r.country + ":" + report->blocking_hop_ip->str());
        if (it != probe_vendor.end()) s.vendor = it->second;
      }
    }
    s.blocking_hop_ttl = report->blocking_hop_ttl;
    s.endpoint_hop_distance = report->endpoint_hop_distance;
    states.push_back(std::move(s));
  }
  return states;
}

std::vector<EpochChurn> ground_truth_churn(const campaign::CampaignSpec& spec,
                                           int max_epoch) {
  std::vector<EpochChurn> all;
  if (!spec.evolution || max_epoch <= 0) return all;
  auto replay_site = [&](sim::Network& net, const std::string& code,
                         std::vector<std::string> pool,
                         const std::vector<std::string>& https) {
    pool.insert(pool.end(), https.begin(), https.end());
    std::vector<EpochChurn> history =
        apply_evolution(net, code, *spec.evolution, max_epoch, pool);
    for (EpochChurn& ec : history) all.push_back(std::move(ec));
  };
  if (spec.world) {
    scenario::WorldScenario ws = scenario::make_world(*spec.world, spec.seed);
    replay_site(*ws.network, spec.world->name,
                spec.http_domains.empty() ? ws.http_test_domains : spec.http_domains,
                spec.https_domains.empty() ? ws.https_test_domains : spec.https_domains);
  } else {
    for (scenario::Country c : spec.effective_countries()) {
      scenario::CountryScenario sc = scenario::make_country(c, spec.scale, spec.seed);
      replay_site(*sc.network, std::string(scenario::country_code(c)),
                  spec.http_domains.empty() ? sc.http_test_domains : spec.http_domains,
                  spec.https_domains.empty() ? sc.https_test_domains : spec.https_domains);
    }
  }
  return all;
}

LongitResult run(const LongitSpec& spec, const campaign::RunControl& control) {
  LongitResult result;
  result.name = spec.base.name;

  std::vector<EpochChurn> churn_history;
  if (spec.collect_churn && spec.base.evolution && spec.epochs > 1) {
    churn_history = ground_truth_churn(spec.base, spec.epochs - 1);
  }

  std::vector<report::EndpointEpochState> prev_states;
  for (int epoch = 0; epoch < spec.epochs; ++epoch) {
    campaign::CampaignSpec epoch_spec = spec.base;
    epoch_spec.evolution_epoch = epoch;
    campaign::CampaignResult cr = campaign::run(epoch_spec, control);

    EpochSummary summary;
    summary.epoch = epoch;
    summary.executed = cr.tool_tasks_executed();
    summary.cache_hits = cr.cache_hits();
    if (!cr.complete) {
      // Budget exhausted mid-epoch: the campaign cache holds the
      // checkpoint; re-running resumes this epoch (earlier epochs are
      // pure cache hits and cost nothing).
      result.complete = false;
      result.epochs.push_back(std::move(summary));
      return result;
    }

    summary.records_fingerprint = records_fingerprint(cr);
    summary.records = cr.records.size();

    obs::CkmsQuantiles* obs_ttl =
        control.observer != nullptr
            ? &control.observer->metrics().quantiles("longit.blocking_hop_ttl")
            : nullptr;
    std::vector<report::EndpointEpochState> states = extract_epoch_states(cr);
    for (const report::EndpointEpochState& s : states) {
      if (!s.blocked) continue;
      ++summary.blocked;
      if (s.blocking_hop_ttl >= 0) {
        // Fed from the merged task-identity-ordered stream — never from
        // per-worker shards — so the sketch state is worker-count
        // invariant (see obs/ckms.hpp).
        result.hop_ttl.observe(static_cast<std::uint64_t>(s.blocking_hop_ttl));
        if (obs_ttl != nullptr) {
          obs_ttl->observe(static_cast<std::uint64_t>(s.blocking_hop_ttl));
        }
      }
    }
    if (epoch > 0) {
      summary.diff = report::diff_epochs(prev_states, states, epoch - 1, epoch);
      result.newly_blocked_per_epoch.observe(
          static_cast<std::uint64_t>(summary.diff.newly_blocked.size()));
      for (const EpochChurn& ec : churn_history) {
        if (ec.epoch == epoch) summary.churn.push_back(ec);
      }
    }

    if (control.observer != nullptr) {
      obs::Observer& o = *control.observer;
      // Run-invariant span per epoch: the "duration" encodes the record
      // count, mirroring the campaign stage spans.
      o.tracer().complete("longit:epoch:" + std::to_string(epoch), "longit", 0,
                          static_cast<SimTime>(summary.records));
      o.metrics().gauge("longit.epochs_completed").set_max(epoch + 1);
      o.metrics().counter("longit.newly_blocked").inc(summary.diff.newly_blocked.size());
      o.metrics().counter("longit.newly_unblocked").inc(summary.diff.newly_unblocked.size());
      o.metrics().counter("longit.vendor_changes").inc(summary.diff.vendor_changes.size());
    }

    prev_states = std::move(states);
    result.epochs.push_back(std::move(summary));
    result.epochs_completed = epoch + 1;
  }
  result.complete = true;
  return result;
}

std::string LongitResult::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("name").value(name);
  w.key("complete").value(complete);
  w.key("epochs_completed").value(epochs_completed);
  w.key("epochs").begin_array();
  for (const EpochSummary& e : epochs) {
    w.begin_object();
    w.key("epoch").value(e.epoch);
    w.key("records_fingerprint").value(e.records_fingerprint);
    w.key("records").value(static_cast<std::uint64_t>(e.records));
    w.key("blocked").value(static_cast<std::uint64_t>(e.blocked));
    w.key("diff").raw_value(report::to_json(e.diff));
    w.key("churn").begin_array();
    for (const EpochChurn& ec : e.churn) churn_to_json(w, ec);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("quantiles").begin_object();
  w.key("blocking_hop_ttl").begin_object();
  for (const obs::QuantileTarget& t : hop_ttl.targets()) {
    w.key("p" + std::to_string(t.percent)).value(hop_ttl.query(t.percent));
  }
  w.key("count").value(hop_ttl.count());
  w.end_object();
  w.key("newly_blocked_per_epoch").begin_object();
  for (const obs::QuantileTarget& t : newly_blocked_per_epoch.targets()) {
    w.key("p" + std::to_string(t.percent))
        .value(newly_blocked_per_epoch.query(t.percent));
  }
  w.key("count").value(newly_blocked_per_epoch.count());
  w.end_object();
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace cen::longit
