// UDP datagrams (RFC 768). DNS censorship in the wild is predominantly
// UDP: on-path injectors race a forged answer against the resolver's
// genuine one without being able to drop anything — a behaviour TCP
// cannot express. The engine walks UdpDatagrams alongside TCP packets.
#pragma once

#include <cstdint>

#include "core/bytes.hpp"
#include "net/ipv4.hpp"

namespace cen::net {

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 8;  // header + payload

  /// 8 bytes; checksum emitted as 0 (legal for IPv4 UDP).
  Bytes serialize() const;
  static UdpHeader parse(ByteReader& r);

  bool operator==(const UdpHeader&) const = default;
};

struct UdpDatagram {
  Ipv4Header ip;
  UdpHeader udp;
  Bytes payload;

  /// Full IP + UDP + payload bytes with lengths fixed up.
  Bytes serialize() const;
  static UdpDatagram parse(BytesView bytes);
};

UdpDatagram make_udp_datagram(Ipv4Address src, Ipv4Address dst, std::uint16_t sport,
                              std::uint16_t dport, Bytes payload, std::uint8_t ttl = 64);

}  // namespace cen::net
