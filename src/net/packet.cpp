#include "net/packet.hpp"

#include <algorithm>
#include <limits>

namespace cen::net {

Bytes Packet::serialize() const {
  Bytes out;
  serialize_into(out);
  return out;
}

void Packet::serialize_into(Bytes& out) const {
  serialize_prefix(out, std::numeric_limits<std::size_t>::max());
}

void Packet::serialize_prefix(Bytes& out, std::size_t max_len) const {
  ByteWriter w(std::move(out));
  Ipv4Header hdr = ip;
  hdr.total_length =
      static_cast<std::uint16_t>(20 + tcp.wire_size() + payload.size());
  hdr.serialize_into(w);
  tcp.serialize_into(w);
  if (w.size() < max_len) {
    BytesView tail(payload);
    w.raw(tail.first(std::min(max_len - w.size(), tail.size())));
  }
  out = std::move(w).take();
  if (out.size() > max_len) out.resize(max_len);
}

Packet Packet::parse(BytesView bytes) {
  ByteReader r(bytes);
  Packet p;
  p.ip = Ipv4Header::parse(r);
  if (p.ip.protocol != IpProto::kTcp) throw ParseError("packet is not TCP");
  p.tcp = TcpHeader::parse(r);
  p.payload = r.raw(r.remaining());
  return p;
}

Packet Packet::parse_quoted(BytesView bytes, bool& tcp_complete) {
  ByteReader r(bytes);
  Packet p;
  p.ip = Ipv4Header::parse(r);
  tcp_complete = false;
  // RFC 792 routers quote only 8 bytes of the transport header: enough
  // for ports and sequence number, but not the full 20-byte TCP header.
  if (r.remaining() >= 8) {
    if (r.remaining() >= 20) {
      ByteReader probe(r.rest());
      try {
        p.tcp = TcpHeader::parse(probe);
        tcp_complete = true;
        r.skip(r.remaining() - probe.remaining());
        p.payload = r.raw(r.remaining());
        return p;
      } catch (const ParseError&) {
        // fall through to partial parse
      }
    }
    p.tcp.src_port = r.u16();
    p.tcp.dst_port = r.u16();
    p.tcp.seq = r.u32();
    // Recover the rest of the fixed header incrementally: quotes between
    // the RFC 792 minimum and a full header still carry the ack (12),
    // offset+flags (14) and window (16) bytes.
    if (r.remaining() >= 4) p.tcp.ack = r.u32();
    if (r.remaining() >= 2) {
      r.skip(1);  // data offset / reserved
      p.tcp.flags = r.u8();
    }
    if (r.remaining() >= 2) p.tcp.window = r.u16();
  }
  return p;
}

Packet make_tcp_packet(Ipv4Address src, Ipv4Address dst, std::uint16_t sport,
                       std::uint16_t dport, std::uint8_t flags, std::uint32_t seq,
                       std::uint32_t ack, Bytes payload, std::uint8_t ttl) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.ttl = ttl;
  p.ip.protocol = IpProto::kTcp;
  p.tcp.src_port = sport;
  p.tcp.dst_port = dport;
  p.tcp.flags = flags;
  p.tcp.seq = seq;
  p.tcp.ack = ack;
  p.payload = std::move(payload);
  return p;
}

}  // namespace cen::net
