#include "net/packet.hpp"

namespace cen::net {

Bytes Packet::serialize() const {
  Bytes tcp_bytes = tcp.serialize();
  Ipv4Header hdr = ip;
  hdr.total_length =
      static_cast<std::uint16_t>(20 + tcp_bytes.size() + payload.size());
  ByteWriter w;
  w.raw(hdr.serialize());
  w.raw(tcp_bytes);
  w.raw(payload);
  return std::move(w).take();
}

Packet Packet::parse(BytesView bytes) {
  ByteReader r(bytes);
  Packet p;
  p.ip = Ipv4Header::parse(r);
  if (p.ip.protocol != IpProto::kTcp) throw ParseError("packet is not TCP");
  p.tcp = TcpHeader::parse(r);
  p.payload = r.raw(r.remaining());
  return p;
}

Packet Packet::parse_quoted(BytesView bytes, bool& tcp_complete) {
  ByteReader r(bytes);
  Packet p;
  p.ip = Ipv4Header::parse(r);
  tcp_complete = false;
  // RFC 792 routers quote only 8 bytes of the transport header: enough
  // for ports and sequence number, but not the full 20-byte TCP header.
  if (r.remaining() >= 8) {
    if (r.remaining() >= 20) {
      ByteReader probe(r.rest());
      try {
        p.tcp = TcpHeader::parse(probe);
        tcp_complete = true;
        r.skip(r.remaining() - probe.remaining());
        p.payload = r.raw(r.remaining());
        return p;
      } catch (const ParseError&) {
        // fall through to partial parse
      }
    }
    p.tcp.src_port = r.u16();
    p.tcp.dst_port = r.u16();
    p.tcp.seq = r.u32();
  }
  return p;
}

Packet make_tcp_packet(Ipv4Address src, Ipv4Address dst, std::uint16_t sport,
                       std::uint16_t dport, std::uint8_t flags, std::uint32_t seq,
                       std::uint32_t ack, Bytes payload, std::uint8_t ttl) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.ttl = ttl;
  p.ip.protocol = IpProto::kTcp;
  p.tcp.src_port = sport;
  p.tcp.dst_port = dport;
  p.tcp.flags = flags;
  p.tcp.seq = seq;
  p.tcp.ack = ack;
  p.payload = std::move(payload);
  return p;
}

}  // namespace cen::net
