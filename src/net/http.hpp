// HTTP/1.1 request/response modelling (paper Fig. 7).
//
// The request type is deliberately *structural*, exposing every lexical
// component of the request line and Host header (method word, version word,
// delimiters, host keyword) as independently settable strings. CenFuzz's
// HTTP strategies (Table 2) mutate exactly these components, including into
// invalid forms (e.g. "GE", "HtTP/1.1", "ost:", missing "\n"), and the
// serialized bytes are what censorship-device DPI models parse.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/bytes.hpp"

namespace cen::net {

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::string version = "HTTP/1.1";
  std::string request_line_delim = "\r\n";
  std::string host_word = "Host: ";  // header keyword incl. colon+separator
  std::string host = "";            // the Host header value (the hostname)
  std::string host_delim = "\r\n";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string trailer = "\r\n";  // final blank-line delimiter

  /// Build a well-formed GET for `hostname`.
  static HttpRequest get(std::string hostname);
  /// Exact on-the-wire bytes.
  std::string serialize() const;
  /// Append the wire bytes into a reused buffer (cleared first, capacity
  /// kept) — the repeated-sweep hot path.
  void serialize_into(Bytes& out) const;
  Bytes serialize_bytes() const;
};

/// Result of parsing a request at an endpoint or middlebox. Parsers are
/// graded: a strict parser rejects anything non-RFC-conformant, a lenient
/// one (like many real servers) repairs what it can.
struct ParsedHttpRequest {
  bool parse_ok = false;          // a request line was recognised at all
  std::string method;
  std::string path;
  std::string version;
  std::optional<std::string> host;  // value of a recognised Host header
  bool method_valid = false;        // method is a registered HTTP method
  bool version_valid = false;       // version is HTTP/1.0 or HTTP/1.1
  bool line_delims_valid = false;   // CRLF discipline respected
};

/// True for the registered methods (GET/HEAD/POST/PUT/PATCH/DELETE/OPTIONS/TRACE/CONNECT).
bool is_registered_http_method(std::string_view method);

/// Parse raw request bytes the way a typical origin server would
/// (tolerates bare-LF line endings, case-insensitive header names).
ParsedHttpRequest parse_http_request(std::string_view raw);

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  static HttpResponse make(int status, std::string reason, std::string body);
  std::string serialize() const;
  /// Parse a serialized response; returns nullopt if not an HTTP response.
  static std::optional<HttpResponse> parse(std::string_view raw);
};

/// Standard reason phrase for common status codes ("Not Found" for 404).
std::string http_reason(int status);

}  // namespace cen::net
