#include "net/tls.hpp"

#include <algorithm>

namespace cen::net {

std::string tls_version_name(TlsVersion v) {
  switch (v) {
    case TlsVersion::kTls10: return "TLS 1.0";
    case TlsVersion::kTls11: return "TLS 1.1";
    case TlsVersion::kTls12: return "TLS 1.2";
    case TlsVersion::kTls13: return "TLS 1.3";
  }
  return "TLS ?";
}

ClientHello ClientHello::make(const std::string& sni_host) {
  ClientHello ch;
  // A realistic modern offer: TLS 1.3 + 1.2 AEAD suites first.
  ch.cipher_suites = {0x1301, 0x1302, 0x1303, 0xc02b, 0xc02f, 0xc02c, 0xc030,
                      0xcca9, 0xcca8, 0x009c, 0x009d, 0x002f, 0x0035};
  // Deterministic pseudo-random bytes; the simulation never needs entropy here.
  for (std::size_t i = 0; i < ch.random.size(); ++i) {
    ch.random[i] = static_cast<std::uint8_t>(0x5a ^ (i * 37));
  }
  ch.set_supported_versions({TlsVersion::kTls13, TlsVersion::kTls12});
  TlsExtension groups;
  groups.type = TlsExtensionType::kSupportedGroups;
  groups.data = {0x00, 0x04, 0x00, 0x1d, 0x00, 0x17};  // x25519, secp256r1
  ch.extensions.push_back(std::move(groups));
  ch.set_sni(sni_host);
  return ch;
}

namespace {

Bytes encode_sni(const std::string& hostname) {
  if (hostname.size() > 0xfffc) throw ParseError("SNI hostname too long");
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(hostname.size() + 3));  // server_name_list length
  w.u8(0);                                                 // name_type = host_name
  w.u16(static_cast<std::uint16_t>(hostname.size()));
  w.raw(hostname);
  return std::move(w).take();
}

}  // namespace

void ClientHello::set_sni(const std::string& hostname) {
  Bytes data = encode_sni(hostname);
  for (TlsExtension& ext : extensions) {
    if (ext.type == TlsExtensionType::kServerName) {
      ext.data = std::move(data);
      return;
    }
  }
  extensions.push_back({TlsExtensionType::kServerName, std::move(data)});
}

void ClientHello::remove_sni() {
  std::erase_if(extensions, [](const TlsExtension& e) {
    return e.type == TlsExtensionType::kServerName;
  });
}

std::optional<std::string> ClientHello::sni() const {
  for (const TlsExtension& ext : extensions) {
    if (ext.type != TlsExtensionType::kServerName) continue;
    try {
      ByteReader r(ext.data);
      std::uint16_t list_len = r.u16();
      (void)list_len;
      std::uint8_t name_type = r.u8();
      if (name_type != 0) return std::nullopt;
      std::uint16_t len = r.u16();
      return r.str(len);
    } catch (const ParseError&) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

void ClientHello::set_supported_versions(const std::vector<TlsVersion>& versions) {
  // The list-length prefix is one byte of version *bytes*: more than 127
  // versions would silently wrap it and corrupt the extension.
  if (versions.size() > 127) throw ParseError("TLS supported-versions list too long");
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(versions.size() * 2));
  for (TlsVersion v : versions) w.u16(static_cast<std::uint16_t>(v));
  Bytes data = std::move(w).take();
  for (TlsExtension& ext : extensions) {
    if (ext.type == TlsExtensionType::kSupportedVersions) {
      ext.data = std::move(data);
      return;
    }
  }
  extensions.push_back({TlsExtensionType::kSupportedVersions, std::move(data)});
}

std::vector<TlsVersion> ClientHello::supported_versions() const {
  for (const TlsExtension& ext : extensions) {
    if (ext.type != TlsExtensionType::kSupportedVersions) continue;
    // A malformed extension (truncated list, odd length, trailing bytes)
    // must not yield a partial version list that misrepresents the offer;
    // treat it as absent so legacy_version governs, as for no extension.
    try {
      ByteReader r(ext.data);
      std::uint8_t len = r.u8();
      if (len % 2 != 0 || len != r.remaining()) break;
      std::vector<TlsVersion> out;
      while (r.remaining() > 0) out.push_back(static_cast<TlsVersion>(r.u16()));
      return out;
    } catch (const ParseError&) {
      break;
    }
  }
  // No (usable) extension: the legacy_version field governs.
  return {legacy_version};
}

void ClientHello::add_padding(std::size_t len) {
  extensions.push_back({TlsExtensionType::kPadding, Bytes(len, 0)});
}

Bytes ClientHello::serialize() const {
  Bytes out;
  serialize_into(out);
  return out;
}

void ClientHello::serialize_into(Bytes& out) const {
  // All lengths are computable up front, so the record is written in one
  // pass with no intermediate body/extension buffers.
  std::size_t ext_total = 0;
  for (const TlsExtension& ext : extensions) {
    if (ext.data.size() > 0xffff) throw ParseError("TLS extension data too large");
    ext_total += 4 + ext.data.size();
  }
  std::size_t body_len = 2 + 32 + 1 + session_id.size() + 2 +
                         cipher_suites.size() * 2 + 1 + compression_methods.size() +
                         2 + ext_total;
  // Every length field below is a truncating cast; reject anything that
  // would wrap rather than emit a silently corrupt record. Thrown before
  // the writer adopts `out`, so the caller's buffer survives intact.
  if (session_id.size() > 0xff) throw ParseError("TLS session id too long");
  if (cipher_suites.size() > 0x7fff) throw ParseError("TLS cipher-suite list too long");
  if (compression_methods.size() > 0xff) throw ParseError("TLS compression list too long");
  if (ext_total > 0xffff) throw ParseError("TLS extensions too large");
  if (body_len + 4 > 0xffff) throw ParseError("TLS ClientHello too large");

  ByteWriter w(std::move(out));
  // Record header (type 22) + handshake header (type 1 = client_hello).
  w.u8(22);
  w.u16(static_cast<std::uint16_t>(record_version));
  w.u16(static_cast<std::uint16_t>(body_len + 4));
  w.u8(1);
  w.u24(static_cast<std::uint32_t>(body_len));
  // Handshake body.
  w.u16(static_cast<std::uint16_t>(legacy_version));
  w.raw(BytesView(random.data(), random.size()));
  w.u8(static_cast<std::uint8_t>(session_id.size()));
  w.raw(session_id);
  w.u16(static_cast<std::uint16_t>(cipher_suites.size() * 2));
  for (std::uint16_t cs : cipher_suites) w.u16(cs);
  w.u8(static_cast<std::uint8_t>(compression_methods.size()));
  for (std::uint8_t cm : compression_methods) w.u8(cm);
  w.u16(static_cast<std::uint16_t>(ext_total));
  for (const TlsExtension& ext : extensions) {
    w.u16(ext.type);
    w.u16(static_cast<std::uint16_t>(ext.data.size()));
    w.raw(ext.data);
  }
  out = std::move(w).take();
}

ClientHello ClientHello::parse(BytesView bytes) {
  ByteReader r(bytes);
  std::uint8_t record_type = r.u8();
  if (record_type != 22) throw ParseError("not a TLS handshake record");
  ClientHello ch;
  ch.record_version = static_cast<TlsVersion>(r.u16());
  std::uint16_t record_len = r.u16();
  if (record_len != r.remaining()) throw ParseError("TLS record length mismatch");
  std::uint8_t hs_type = r.u8();
  if (hs_type != 1) throw ParseError("not a ClientHello");
  std::uint32_t hs_len = r.u24();
  if (hs_len != r.remaining()) throw ParseError("handshake length mismatch");
  ch.legacy_version = static_cast<TlsVersion>(r.u16());
  Bytes rnd = r.raw(32);
  std::copy(rnd.begin(), rnd.end(), ch.random.begin());
  std::uint8_t sid_len = r.u8();
  ch.session_id = r.raw(sid_len);
  std::uint16_t cs_len = r.u16();
  if (cs_len % 2 != 0) throw ParseError("odd cipher-suite list length");
  ch.cipher_suites.clear();
  for (int i = 0; i < cs_len; i += 2) ch.cipher_suites.push_back(r.u16());
  std::uint8_t cm_len = r.u8();
  ch.compression_methods = r.raw(cm_len);
  if (r.remaining() > 0) {
    std::uint16_t ext_len = r.u16();
    if (ext_len != r.remaining()) throw ParseError("extensions length mismatch");
    while (r.remaining() > 0) {
      TlsExtension ext;
      ext.type = r.u16();
      std::uint16_t len = r.u16();
      ext.data = r.raw(len);
      ch.extensions.push_back(std::move(ext));
    }
  }
  return ch;
}

const std::vector<CipherSuite>& standard_cipher_suites() {
  static const std::vector<CipherSuite> kSuites = {
      {0x1301, "TLS_AES_128_GCM_SHA256"},
      {0x1302, "TLS_AES_256_GCM_SHA384"},
      {0x1303, "TLS_CHACHA20_POLY1305_SHA256"},
      {0xc02b, "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256"},
      {0xc02c, "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384"},
      {0xc02f, "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256"},
      {0xc030, "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384"},
      {0xcca8, "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256"},
      {0xcca9, "TLS_ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256"},
      {0xc013, "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA"},
      {0xc014, "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA"},
      {0xc009, "TLS_ECDHE_ECDSA_WITH_AES_128_CBC_SHA"},
      {0xc00a, "TLS_ECDHE_ECDSA_WITH_AES_256_CBC_SHA"},
      {0x009c, "TLS_RSA_WITH_AES_128_GCM_SHA256"},
      {0x009d, "TLS_RSA_WITH_AES_256_GCM_SHA384"},
      {0x002f, "TLS_RSA_WITH_AES_128_CBC_SHA"},
      {0x0035, "TLS_RSA_WITH_AES_256_CBC_SHA"},
      {0x003c, "TLS_RSA_WITH_AES_128_CBC_SHA256"},
      {0x003d, "TLS_RSA_WITH_AES_256_CBC_SHA256"},
      {0x000a, "TLS_RSA_WITH_3DES_EDE_CBC_SHA"},
      {0x0005, "TLS_RSA_WITH_RC4_128_SHA"},
      {0x0004, "TLS_RSA_WITH_RC4_128_MD5"},
      {0x0067, "TLS_DHE_RSA_WITH_AES_128_CBC_SHA256"},
      {0x006b, "TLS_DHE_RSA_WITH_AES_256_CBC_SHA256"},
      {0x0016, "TLS_DHE_RSA_WITH_3DES_EDE_CBC_SHA"},
  };
  return kSuites;
}

std::string cipher_suite_name(std::uint16_t code) {
  for (const CipherSuite& cs : standard_cipher_suites()) {
    if (cs.code == code) return std::string(cs.name);
  }
  return "UNKNOWN_0x" + to_hex(Bytes{static_cast<std::uint8_t>(code >> 8),
                                     static_cast<std::uint8_t>(code)});
}

Bytes ServerHello::serialize() const {
  ByteWriter body;
  body.u16(static_cast<std::uint16_t>(version));
  for (int i = 0; i < 32; ++i) body.u8(static_cast<std::uint8_t>(0xa5 ^ i));
  body.u8(0);  // empty session id
  body.u16(cipher_suite);
  body.u8(0);  // null compression
  ByteWriter rec;
  rec.u8(22);
  rec.u16(static_cast<std::uint16_t>(TlsVersion::kTls12));
  rec.u16(static_cast<std::uint16_t>(body.size() + 4 + 2 + certificate_domain.size()));
  rec.u8(2);  // server_hello
  rec.u24(static_cast<std::uint32_t>(body.size()));
  rec.raw(body.bytes());
  // Simulation shortcut: certificate domain appended as length-prefixed blob.
  rec.u16(static_cast<std::uint16_t>(certificate_domain.size()));
  rec.raw(certificate_domain);
  return std::move(rec).take();
}

std::optional<ServerHello> ServerHello::parse(BytesView bytes) {
  try {
    ByteReader r(bytes);
    if (r.u8() != 22) return std::nullopt;
    r.skip(2);  // record version
    r.skip(2);  // record length
    if (r.u8() != 2) return std::nullopt;
    std::uint32_t body_len = r.u24();
    ServerHello sh;
    sh.version = static_cast<TlsVersion>(r.u16());
    r.skip(32);  // random
    std::uint8_t sid = r.u8();
    r.skip(sid);
    sh.cipher_suite = r.u16();
    r.skip(1);  // compression
    (void)body_len;
    if (r.remaining() >= 2) {
      std::uint16_t dom_len = r.u16();
      sh.certificate_domain = r.str(dom_len);
    }
    return sh;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

Bytes TlsAlert::serialize() const {
  ByteWriter w;
  w.u8(21);  // alert record
  w.u16(static_cast<std::uint16_t>(TlsVersion::kTls12));
  w.u16(2);
  w.u8(2);  // fatal
  w.u8(description);
  return std::move(w).take();
}

std::optional<TlsAlert> TlsAlert::parse(BytesView bytes) {
  try {
    ByteReader r(bytes);
    if (r.u8() != 21) return std::nullopt;
    r.skip(2);
    std::uint16_t len = r.u16();
    if (len != 2) return std::nullopt;
    r.skip(1);  // level
    TlsAlert a;
    a.description = r.u8();
    return a;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace cen::net
