#include "net/pcap.hpp"

#include <cstdio>

namespace cen::net {

void PcapWriter::add(SimTime timestamp_ms, BytesView packet) {
  packets_.push_back({timestamp_ms, Bytes(packet.begin(), packet.end())});
}

Bytes PcapWriter::serialize() const {
  // We emit big-endian pcap (magic readable either way by real tools,
  // which detect byte order from the magic number).
  ByteWriter w;
  w.u32(kPcapMagic);
  w.u16(2);   // version major
  w.u16(4);   // version minor
  w.u32(0);   // thiszone
  w.u32(0);   // sigfigs
  w.u32(65535);  // snaplen
  w.u32(kLinkTypeRaw);
  for (const CapturedPacket& p : packets_) {
    w.u32(static_cast<std::uint32_t>(p.timestamp_ms / 1000));           // seconds
    w.u32(static_cast<std::uint32_t>(p.timestamp_ms % 1000) * 1000);    // microseconds
    w.u32(static_cast<std::uint32_t>(p.data.size()));  // captured length
    w.u32(static_cast<std::uint32_t>(p.data.size()));  // original length
    w.raw(p.data);
  }
  return std::move(w).take();
}

bool PcapWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  Bytes data = serialize();
  std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return written == data.size();
}

std::vector<CapturedPacket> PcapReader::parse(BytesView file) {
  ByteReader r(file);
  std::uint32_t magic = r.u32();
  if (magic != kPcapMagic) throw ParseError("not a pcap file (bad magic)");
  std::uint16_t major = r.u16();
  if (major != 2) throw ParseError("unsupported pcap version");
  r.skip(2);   // minor
  r.skip(12);  // thiszone, sigfigs, snaplen
  std::uint32_t linktype = r.u32();
  if (linktype != kLinkTypeRaw) throw ParseError("unexpected pcap linktype");

  std::vector<CapturedPacket> out;
  while (r.remaining() > 0) {
    std::uint32_t ts_sec = r.u32();
    std::uint32_t ts_usec = r.u32();
    std::uint32_t caplen = r.u32();
    std::uint32_t origlen = r.u32();
    if (caplen != origlen) throw ParseError("truncated pcap record");
    CapturedPacket p;
    p.timestamp_ms = static_cast<SimTime>(ts_sec) * 1000 + ts_usec / 1000;
    p.data = r.raw(caplen);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace cen::net
