// TCP header model with real serialization (RFC 793), including options.
//
// Injected packets from censorship devices carry distinctive TCP artifacts
// (window sizes, option sets, flag combinations); the clustering pipeline
// (§7.1 of the paper) uses these as features, so the header is modelled
// at full wire fidelity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bytes.hpp"

namespace cen::net {

/// TCP flag bits (RFC 793 order within the flags byte).
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
  static constexpr std::uint8_t kUrg = 0x20;
};

/// A single TCP option TLV. kind 0 = end-of-list, 1 = NOP (no payload).
struct TcpOption {
  std::uint8_t kind = 0;
  Bytes data;

  bool operator==(const TcpOption&) const = default;

  static TcpOption mss(std::uint16_t value);
  static TcpOption window_scale(std::uint8_t shift);
  static TcpOption sack_permitted();
  static TcpOption nop();
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t urgent = 0;
  std::vector<TcpOption> options;

  bool has(std::uint8_t flag) const { return (flags & flag) != 0; }
  /// Data offset in 32-bit words, derived from options (padded to 4 bytes).
  std::uint8_t data_offset_words() const;
  /// Serialize; checksum field is zero (the simulator does not corrupt data).
  Bytes serialize() const;
  /// Append the same bytes to an existing writer without intermediate
  /// option-buffer allocations.
  void serialize_into(ByteWriter& w) const;
  /// On-the-wire header size (20 + padded options), without serializing.
  std::size_t wire_size() const;
  static TcpHeader parse(ByteReader& r);
  /// Short human-readable flag string, e.g. "SYN|ACK".
  std::string flags_str() const;

  bool operator==(const TcpHeader&) const = default;
};

}  // namespace cen::net
