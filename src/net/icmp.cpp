#include "net/icmp.hpp"

#include <algorithm>

namespace cen::net {

std::size_t quote_limit(QuotePolicy policy) {
  switch (policy) {
    case QuotePolicy::kRfc792:
      // 20-byte IP header (we never emit IP options) + 8 bytes of payload.
      return 28;
    case QuotePolicy::kRfc1812Full:
      return 128;
  }
  return 28;
}

IcmpTimeExceeded IcmpTimeExceeded::make(Ipv4Address router, BytesView original_packet,
                                        QuotePolicy policy) {
  IcmpTimeExceeded msg;
  msg.router = router;
  std::size_t quote_len =
      std::min<std::size_t>(original_packet.size(), quote_limit(policy));
  msg.quoted.assign(original_packet.begin(),
                    original_packet.begin() + static_cast<std::ptrdiff_t>(quote_len));
  return msg;
}

Bytes IcmpTimeExceeded::serialize() const {
  ByteWriter w;
  w.u8(kType);
  w.u8(kCodeTtlExceeded);
  w.u16(0);  // checksum placeholder
  w.u32(0);  // unused
  w.raw(quoted);
  Bytes out = std::move(w).take();
  std::uint16_t csum = internet_checksum(out);
  out[2] = static_cast<std::uint8_t>(csum >> 8);
  out[3] = static_cast<std::uint8_t>(csum);
  return out;
}

IcmpTimeExceeded IcmpTimeExceeded::parse(Ipv4Address router, BytesView bytes) {
  ByteReader r(bytes);
  std::uint8_t type = r.u8();
  std::uint8_t code = r.u8();
  if (type != kType || code != kCodeTtlExceeded) throw ParseError("not ICMP time exceeded");
  r.skip(2);  // checksum
  r.skip(4);  // unused
  IcmpTimeExceeded msg;
  msg.router = router;
  msg.quoted = r.raw(r.remaining());
  return msg;
}

}  // namespace cen::net
