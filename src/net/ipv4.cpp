#include "net/ipv4.hpp"

#include <charconv>

#include "core/strings.hpp"

namespace cen::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  int octets = 0;
  std::size_t pos = 0;
  while (octets < 4) {
    std::size_t end = text.find('.', pos);
    std::string_view part =
        end == std::string_view::npos ? text.substr(pos) : text.substr(pos, end - pos);
    unsigned v = 0;
    auto [ptr, ec] = std::from_chars(part.data(), part.data() + part.size(), v);
    if (ec != std::errc{} || ptr != part.data() + part.size() || part.empty() || v > 255) {
      return std::nullopt;
    }
    value = value << 8 | v;
    ++octets;
    if (end == std::string_view::npos) {
      pos = text.size();
      break;
    }
    pos = end + 1;
  }
  // Exactly four octets and no trailing garbage ("1.2.3.4.5" is invalid).
  if (octets != 4 || pos != text.size()) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::str() const {
  return std::to_string(value_ >> 24) + "." + std::to_string((value_ >> 16) & 0xff) + "." +
         std::to_string((value_ >> 8) & 0xff) + "." + std::to_string(value_ & 0xff);
}

std::uint16_t internet_checksum(BytesView data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

void Ipv4Header::serialize_into(ByteWriter& w) const {
  const std::size_t start = w.size();
  w.u8(static_cast<std::uint8_t>(version << 4 | (ihl & 0xf)));
  w.u8(tos);
  w.u16(total_length);
  w.u16(identification);
  w.u16(static_cast<std::uint16_t>((flags & 0x7) << 13 | (fragment_offset & 0x1fff)));
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u16(0);  // checksum placeholder
  w.u32(src.value());
  w.u32(dst.value());
  std::uint16_t csum = internet_checksum(BytesView(w.bytes()).subspan(start, 20));
  w.patch_u16(start + 10, csum);
}

Bytes Ipv4Header::serialize() const {
  ByteWriter w;
  serialize_into(w);
  return std::move(w).take();
}

Ipv4Header Ipv4Header::parse(ByteReader& r) {
  Ipv4Header h;
  std::uint8_t vihl = r.u8();
  h.version = vihl >> 4;
  h.ihl = vihl & 0xf;
  if (h.version != 4) throw ParseError("not an IPv4 header");
  if (h.ihl < 5) throw ParseError("IPv4 IHL too small");
  h.tos = r.u8();
  h.total_length = r.u16();
  h.identification = r.u16();
  std::uint16_t flagfrag = r.u16();
  h.flags = static_cast<std::uint8_t>(flagfrag >> 13);
  h.fragment_offset = flagfrag & 0x1fff;
  h.ttl = r.u8();
  h.protocol = static_cast<IpProto>(r.u8());
  r.skip(2);  // checksum (not verified on parse; simulation never corrupts)
  h.src = Ipv4Address(r.u32());
  h.dst = Ipv4Address(r.u32());
  if (h.ihl > 5) {
    // IP options are not modelled: skip them and normalize the parsed
    // header to its 20-byte option-less equivalent. Keeping the original
    // IHL would make serialize() emit a header that lies about its own
    // length (20 bytes claiming ihl*4), which mis-parses everything
    // behind it on the next decode.
    r.skip(static_cast<std::size_t>(h.ihl - 5) * 4);
    h.ihl = 5;
  }
  return h;
}

}  // namespace cen::net
