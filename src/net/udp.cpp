#include "net/udp.hpp"

namespace cen::net {

Bytes UdpHeader::serialize() const {
  ByteWriter w;
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(0);  // checksum optional over IPv4
  return std::move(w).take();
}

UdpHeader UdpHeader::parse(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  if (h.length < 8) throw ParseError("UDP length below header size");
  r.skip(2);  // checksum
  return h;
}

Bytes UdpDatagram::serialize() const {
  UdpHeader hdr = udp;
  hdr.length = static_cast<std::uint16_t>(8 + payload.size());
  Ipv4Header ip_hdr = ip;
  ip_hdr.protocol = IpProto::kUdp;
  ip_hdr.total_length = static_cast<std::uint16_t>(20 + 8 + payload.size());
  ByteWriter w;
  w.raw(ip_hdr.serialize());
  w.raw(hdr.serialize());
  w.raw(payload);
  return std::move(w).take();
}

UdpDatagram UdpDatagram::parse(BytesView bytes) {
  ByteReader r(bytes);
  UdpDatagram d;
  d.ip = Ipv4Header::parse(r);
  if (d.ip.protocol != IpProto::kUdp) throw ParseError("datagram is not UDP");
  d.udp = UdpHeader::parse(r);
  d.payload = r.raw(r.remaining());
  return d;
}

UdpDatagram make_udp_datagram(Ipv4Address src, Ipv4Address dst, std::uint16_t sport,
                              std::uint16_t dport, Bytes payload, std::uint8_t ttl) {
  UdpDatagram d;
  d.ip.src = src;
  d.ip.dst = dst;
  d.ip.ttl = ttl;
  d.ip.protocol = IpProto::kUdp;
  d.udp.src_port = sport;
  d.udp.dst_port = dport;
  d.payload = std::move(payload);
  return d;
}

}  // namespace cen::net
