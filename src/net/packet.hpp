// Full simulated packet: IPv4 header + TCP header + application payload.
//
// A packet can be serialized to the exact byte string that would appear
// on the wire; ICMP quoting operates on those bytes (RFC 792 quotes the
// IP header plus 64 bits of payload; RFC 1812 routers quote as much as
// fits), and Tracebox-style diffing parses them back.
#pragma once

#include <cstdint>

#include "core/bytes.hpp"
#include "net/ipv4.hpp"
#include "net/tcp.hpp"

namespace cen::net {

struct Packet {
  Ipv4Header ip;
  TcpHeader tcp;
  Bytes payload;
  /// Whether the TCP checksum verifies. The simulation does not carry real
  /// checksums; probes craft deliberately-corrupt segments by clearing this
  /// flag. A correct endpoint stack discards such a segment, while a DPI
  /// model with ReassemblyQuirks::validates_checksum == false still feeds
  /// it to the classifier. Not part of the serialized wire bytes; parse()
  /// yields the default (valid).
  bool checksum_ok = true;

  /// Serialize IP + TCP + payload, fixing up ip.total_length.
  Bytes serialize() const;
  /// Serialize into a reused buffer (cleared first, capacity kept).
  void serialize_into(Bytes& out) const;
  /// Serialize at most the first `max_len` wire bytes into a reused
  /// buffer. The IP total_length field still describes the *full* packet,
  /// exactly as in a truncated quote of the real datagram — this is the
  /// allocation-light path ICMP quoted-packet construction uses (quotes
  /// cap at 28/128 bytes, so large payloads are never copied).
  void serialize_prefix(Bytes& out, std::size_t max_len) const;
  /// Parse a full packet from bytes (IP proto must be TCP).
  static Packet parse(BytesView bytes);
  /// Parse possibly-truncated bytes, as quoted inside ICMP errors:
  /// always recovers the IP header; recovers as much of the TCP header
  /// and payload as present. Missing parts are zero/absent.
  static Packet parse_quoted(BytesView bytes, bool& tcp_complete);
};

/// Build a TCP data packet with common defaults.
Packet make_tcp_packet(Ipv4Address src, Ipv4Address dst, std::uint16_t sport,
                       std::uint16_t dport, std::uint8_t flags, std::uint32_t seq,
                       std::uint32_t ack, Bytes payload, std::uint8_t ttl = 64);

}  // namespace cen::net
