// TLS ClientHello / ServerHello / Alert wire model (paper Fig. 8).
//
// ClientHellos are serialized to real TLS record bytes (record header,
// handshake header, legacy version, random, session id, cipher suites,
// compression methods, extensions). CenFuzz's eight TLS strategies mutate
// the version fields, cipher-suite list, and SNI extension; DPI models
// parse the resulting bytes with per-vendor tolerance quirks.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/bytes.hpp"

namespace cen::net {

/// TLS protocol versions as on-the-wire u16 codes.
enum class TlsVersion : std::uint16_t {
  kTls10 = 0x0301,
  kTls11 = 0x0302,
  kTls12 = 0x0303,
  kTls13 = 0x0304,
};

std::string tls_version_name(TlsVersion v);

/// Extension type codes used in the simulation.
struct TlsExtensionType {
  static constexpr std::uint16_t kServerName = 0x0000;
  static constexpr std::uint16_t kSupportedGroups = 0x000a;
  static constexpr std::uint16_t kSignatureAlgorithms = 0x000d;
  static constexpr std::uint16_t kAlpn = 0x0010;
  static constexpr std::uint16_t kPadding = 0x0015;
  static constexpr std::uint16_t kSupportedVersions = 0x002b;
  static constexpr std::uint16_t kKeyShare = 0x0033;
};

struct TlsExtension {
  std::uint16_t type = 0;
  Bytes data;
  bool operator==(const TlsExtension&) const = default;
};

struct ClientHello {
  TlsVersion record_version = TlsVersion::kTls10;  // outer record legacy version
  TlsVersion legacy_version = TlsVersion::kTls12;  // client_version field
  std::array<std::uint8_t, 32> random{};
  Bytes session_id;
  std::vector<std::uint16_t> cipher_suites;
  std::vector<std::uint8_t> compression_methods{0};
  std::vector<TlsExtension> extensions;

  /// Build a realistic default hello offering `sni` and TLS 1.2–1.3.
  static ClientHello make(const std::string& sni);

  /// Replace (or add) the server_name extension; empty string emits an
  /// SNI extension with an empty host_name, as CenFuzz's "empty" probe does.
  void set_sni(const std::string& hostname);
  /// Remove the server_name extension entirely.
  void remove_sni();
  /// Extract the first host_name from the server_name extension, if present.
  std::optional<std::string> sni() const;
  /// Set the supported_versions extension to exactly these versions.
  void set_supported_versions(const std::vector<TlsVersion>& versions);
  std::vector<TlsVersion> supported_versions() const;
  /// Append a padding extension of `len` zero bytes.
  void add_padding(std::size_t len);

  /// Full record bytes: record header + handshake header + body.
  Bytes serialize() const;
  /// Serialize into a reused buffer (cleared first, capacity kept).
  /// Single pass with precomputed lengths — no intermediate body/extension
  /// buffers — producing bytes identical to serialize().
  void serialize_into(Bytes& out) const;
  /// Parse full record bytes; throws ParseError on malformed input.
  static ClientHello parse(BytesView bytes);
};

/// Named cipher suite (IANA code + name string).
struct CipherSuite {
  std::uint16_t code;
  std::string_view name;
};

/// The 25 suites CenFuzz's Cipher Suite Alternation strategy iterates
/// (Table 2, NP=25), spanning TLS 1.3 AEADs, ECDHE suites and legacy RSA/RC4.
const std::vector<CipherSuite>& standard_cipher_suites();
std::string cipher_suite_name(std::uint16_t code);

struct ServerHello {
  TlsVersion version = TlsVersion::kTls12;
  std::uint16_t cipher_suite = 0;
  /// Domain of the certificate the server would present (simulation-level
  /// shortcut; a real stack would carry a Certificate message).
  std::string certificate_domain;

  Bytes serialize() const;
  static std::optional<ServerHello> parse(BytesView bytes);
};

/// TLS alert record (always fatal in this simulation).
struct TlsAlert {
  static constexpr std::uint8_t kHandshakeFailure = 40;
  static constexpr std::uint8_t kDecodeError = 50;
  static constexpr std::uint8_t kProtocolVersion = 70;
  static constexpr std::uint8_t kUnrecognizedName = 112;

  std::uint8_t description = kHandshakeFailure;

  Bytes serialize() const;
  static std::optional<TlsAlert> parse(BytesView bytes);
};

}  // namespace cen::net
