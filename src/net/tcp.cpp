#include "net/tcp.hpp"

namespace cen::net {

TcpOption TcpOption::mss(std::uint16_t value) {
  TcpOption o;
  o.kind = 2;
  o.data = {static_cast<std::uint8_t>(value >> 8), static_cast<std::uint8_t>(value)};
  return o;
}

TcpOption TcpOption::window_scale(std::uint8_t shift) {
  TcpOption o;
  o.kind = 3;
  o.data = {shift};
  return o;
}

TcpOption TcpOption::sack_permitted() {
  TcpOption o;
  o.kind = 4;
  return o;
}

TcpOption TcpOption::nop() {
  TcpOption o;
  o.kind = 1;
  return o;
}

namespace {

/// Encoded option-list length including EOL padding to a 4-byte multiple.
std::size_t options_wire_size(const std::vector<TcpOption>& options) {
  std::size_t n = 0;
  for (const TcpOption& o : options) {
    n += (o.kind == 0 || o.kind == 1) ? 1 : 2 + o.data.size();
  }
  return (n + 3) & ~static_cast<std::size_t>(3);
}

void encode_options_into(const std::vector<TcpOption>& options, ByteWriter& w) {
  std::size_t start = w.size();
  for (const TcpOption& o : options) {
    w.u8(o.kind);
    if (o.kind == 0 || o.kind == 1) continue;  // EOL / NOP have no length
    if (o.data.size() > 253) throw ParseError("TCP option data too long");
    w.u8(static_cast<std::uint8_t>(o.data.size() + 2));
    w.raw(o.data);
  }
  while ((w.size() - start) % 4 != 0) w.u8(0);  // pad with EOL
}

}  // namespace

std::uint8_t TcpHeader::data_offset_words() const {
  return static_cast<std::uint8_t>(5 + options_wire_size(options) / 4);
}

std::size_t TcpHeader::wire_size() const {
  return 20 + options_wire_size(options);
}

void TcpHeader::serialize_into(ByteWriter& w) const {
  // The data offset is a 4-bit word count, so the whole header tops out at
  // 60 bytes (40 bytes of options). An oversized option list would wrap
  // the field and serialize a header that parses with the options cut off
  // — reject it instead of emitting silent corruption. (Checked against
  // the raw wire size: the uint8_t data_offset_words() can itself wrap.)
  if (options_wire_size(options) > 40) throw ParseError("TCP options exceed 40 bytes");
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(static_cast<std::uint8_t>(data_offset_words() << 4));
  w.u8(flags);
  w.u16(window);
  w.u16(0);  // checksum unused in simulation
  w.u16(urgent);
  encode_options_into(options, w);
}

Bytes TcpHeader::serialize() const {
  ByteWriter w;
  serialize_into(w);
  return std::move(w).take();
}

TcpHeader TcpHeader::parse(ByteReader& r) {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  std::uint8_t offset = static_cast<std::uint8_t>(r.u8() >> 4);
  if (offset < 5) throw ParseError("TCP data offset too small");
  h.flags = r.u8();
  h.window = r.u16();
  r.skip(2);  // checksum
  h.urgent = r.u16();
  std::size_t opt_len = static_cast<std::size_t>(offset - 5) * 4;
  Bytes opts = r.raw(opt_len);
  ByteReader or_(opts);
  while (or_.remaining() > 0) {
    std::uint8_t kind = or_.u8();
    if (kind == 0) break;  // end of option list
    TcpOption o;
    o.kind = kind;
    if (kind != 1) {
      std::uint8_t len = or_.u8();
      if (len < 2) throw ParseError("TCP option length < 2");
      o.data = or_.raw(len - 2);
    }
    h.options.push_back(std::move(o));
  }
  return h;
}

std::string TcpHeader::flags_str() const {
  std::string out;
  auto add = [&](std::uint8_t f, const char* name) {
    if (has(f)) {
      if (!out.empty()) out += '|';
      out += name;
    }
  };
  add(TcpFlags::kSyn, "SYN");
  add(TcpFlags::kAck, "ACK");
  add(TcpFlags::kPsh, "PSH");
  add(TcpFlags::kRst, "RST");
  add(TcpFlags::kFin, "FIN");
  add(TcpFlags::kUrg, "URG");
  if (out.empty()) out = "NONE";
  return out;
}

}  // namespace cen::net
