#include "net/http.hpp"

#include <array>

#include "core/strings.hpp"

namespace cen::net {

HttpRequest HttpRequest::get(std::string hostname) {
  HttpRequest r;
  r.host = std::move(hostname);
  return r;
}

std::string HttpRequest::serialize() const {
  std::string out;
  out.reserve(128);
  out += method;
  out += ' ';
  out += path;
  out += ' ';
  out += version;
  out += request_line_delim;
  out += host_word;
  out += host;
  out += host_delim;
  for (const auto& [name, value] : extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += trailer;
  return out;
}

void HttpRequest::serialize_into(Bytes& out) const {
  out.clear();
  std::size_t total = method.size() + 1 + path.size() + 1 + version.size() +
                      request_line_delim.size() + host_word.size() + host.size() +
                      host_delim.size() + trailer.size();
  for (const auto& [name, value] : extra_headers) {
    total += name.size() + 2 + value.size() + 2;
  }
  out.reserve(total);
  auto append = [&out](std::string_view s) {
    out.insert(out.end(), s.begin(), s.end());
  };
  append(method);
  out.push_back(' ');
  append(path);
  out.push_back(' ');
  append(version);
  append(request_line_delim);
  append(host_word);
  append(host);
  append(host_delim);
  for (const auto& [name, value] : extra_headers) {
    append(name);
    append(": ");
    append(value);
    append("\r\n");
  }
  append(trailer);
}

Bytes HttpRequest::serialize_bytes() const { return to_bytes(serialize()); }

bool is_registered_http_method(std::string_view method) {
  static constexpr std::array<std::string_view, 9> kMethods = {
      "GET", "HEAD", "POST", "PUT", "PATCH", "DELETE", "OPTIONS", "TRACE", "CONNECT"};
  for (std::string_view m : kMethods) {
    if (m == method) return true;
  }
  return false;
}

ParsedHttpRequest parse_http_request(std::string_view raw) {
  ParsedHttpRequest out;
  // Find end of request line; tolerate both CRLF and bare LF.
  std::size_t eol = raw.find('\n');
  if (eol == std::string_view::npos) return out;
  std::string_view line = raw.substr(0, eol);
  out.line_delims_valid = !line.empty() && line.back() == '\r';
  if (out.line_delims_valid) line.remove_suffix(1);

  std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return out;
  std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return out;
  out.method = std::string(line.substr(0, sp1));
  out.path = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.version = std::string(trim(line.substr(sp2 + 1)));
  out.parse_ok = !out.method.empty() && !out.path.empty();
  out.method_valid = is_registered_http_method(out.method);
  out.version_valid = out.version == "HTTP/1.1" || out.version == "HTTP/1.0";

  // Header block.
  std::size_t pos = eol + 1;
  while (pos < raw.size()) {
    std::size_t next = raw.find('\n', pos);
    if (next == std::string_view::npos) next = raw.size();
    std::string_view hline = raw.substr(pos, next - pos);
    if (!hline.empty() && hline.back() == '\r') {
      hline.remove_suffix(1);
    } else if (!hline.empty()) {
      out.line_delims_valid = false;
    }
    if (hline.empty()) break;  // end of headers
    pos = next + 1;
    // A bare CR *inside* a field line is a line-delimiter violation, not
    // header content: recognizing "Host: a\rX: b" as Host "a\rX: b" let
    // smuggled bytes ride along inside the reported hostname.
    if (hline.find('\r') != std::string_view::npos) {
      out.line_delims_valid = false;
      continue;
    }
    std::size_t colon = hline.find(':');
    if (colon != std::string_view::npos) {
      std::string_view name = hline.substr(0, colon);
      // RFC 9112 §5.1: no whitespace between field name and colon; a
      // padded name ("Host : x") must not be recognized as the header.
      if (name != trim(name)) continue;
      std::string_view value = trim(hline.substr(colon + 1));
      if (iequals(name, "Host")) out.host = std::string(value);
    }
  }
  return out;
}

HttpResponse HttpResponse::make(int status, std::string reason, std::string body) {
  HttpResponse r;
  r.status = status;
  r.reason = std::move(reason);
  r.body = std::move(body);
  r.headers.emplace_back("Content-Type", "text/html");
  r.headers.emplace_back("Content-Length", std::to_string(r.body.size()));
  return r;
}

std::string HttpResponse::serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::optional<HttpResponse> HttpResponse::parse(std::string_view raw) {
  if (!starts_with(raw, "HTTP/")) return std::nullopt;
  std::size_t eol = raw.find("\r\n");
  if (eol == std::string_view::npos) return std::nullopt;
  std::string_view line = raw.substr(0, eol);
  auto parts = split(line, ' ');
  if (parts.size() < 2) return std::nullopt;
  HttpResponse resp;
  resp.status = std::atoi(parts[1].c_str());
  if (parts.size() >= 3) {
    std::vector<std::string> reason_parts(parts.begin() + 2, parts.end());
    resp.reason = join(reason_parts, " ");
  }
  std::size_t pos = eol + 2;
  while (pos < raw.size()) {
    std::size_t next = raw.find("\r\n", pos);
    if (next == std::string_view::npos) break;
    std::string_view hline = raw.substr(pos, next - pos);
    pos = next + 2;
    if (hline.empty()) break;  // header/body separator
    std::size_t colon = hline.find(':');
    if (colon != std::string_view::npos) {
      resp.headers.emplace_back(std::string(trim(hline.substr(0, colon))),
                                std::string(trim(hline.substr(colon + 1))));
    }
  }
  resp.body = std::string(raw.substr(pos));
  return resp;
}

std::string http_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 501: return "Not Implemented";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

}  // namespace cen::net
