// ICMP Time Exceeded (Type 11) messages with quoted original packets.
//
// RFC 792 requires routers to quote the original IP header plus the first
// 64 bits of its payload; RFC 1812 permits quoting as much of the original
// datagram as fits. The paper (§4.3) finds 57.6% of quoting routers follow
// RFC 792 and the rest RFC 1812, and uses quoted-packet deltas (TOS/flag
// rewrites) as clustering features — so both policies are modelled here.
#pragma once

#include <cstdint>

#include "core/bytes.hpp"
#include "net/ipv4.hpp"

namespace cen::net {

enum class QuotePolicy : std::uint8_t {
  kRfc792,      // IP header + first 8 bytes of transport header
  kRfc1812Full  // entire original datagram (up to 128 bytes, as many stacks cap)
};

/// Maximum bytes a policy quotes (28 for RFC 792, 128 for RFC 1812).
std::size_t quote_limit(QuotePolicy policy);

struct IcmpTimeExceeded {
  static constexpr std::uint8_t kType = 11;
  static constexpr std::uint8_t kCodeTtlExceeded = 0;

  Ipv4Address router;   // source of the ICMP message
  Bytes quoted;         // quoted bytes of the original datagram

  /// Build the quote from the full serialized original packet under a policy.
  static IcmpTimeExceeded make(Ipv4Address router, BytesView original_packet,
                               QuotePolicy policy);

  /// Serialize ICMP header (type/code/checksum/unused) + quote.
  Bytes serialize() const;
  static IcmpTimeExceeded parse(Ipv4Address router, BytesView bytes);
};

}  // namespace cen::net
