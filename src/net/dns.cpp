#include "net/dns.hpp"

#include <memory>

#include "core/strings.hpp"

namespace cen::net {

Bytes encode_dns_name(const std::string& name) {
  ByteWriter w;
  for (const std::string& label : split(name, '.')) {
    if (label.empty()) continue;
    if (label.size() > 63) throw ParseError("DNS label too long");
    w.u8(static_cast<std::uint8_t>(label.size()));
    w.raw(label);
  }
  w.u8(0);
  return std::move(w).take();
}

std::string decode_dns_name(ByteReader& r) {
  // RFC 1035 §4.1.4 compression: a length octet with the top two bits set
  // is a pointer to an absolute offset within the message (the start of
  // r's underlying buffer). Jumps are capped so pointer cycles — self
  // references or mutually pointing names — terminate with a ParseError
  // instead of an infinite loop; `r` itself only ever advances past the
  // first pointer, as the suffix it names was already encoded earlier.
  std::string out;
  std::unique_ptr<ByteReader> jump;
  ByteReader* cur = &r;
  int jumps = 0;
  for (;;) {
    std::uint8_t len = cur->u8();
    if (len == 0) break;
    if ((len & 0xc0) == 0xc0) {
      const std::size_t offset =
          static_cast<std::size_t>(len & 0x3f) << 8 | cur->u8();
      if (++jumps > 32) throw ParseError("DNS compression pointer loop");
      const BytesView all = r.buffer();
      if (offset >= all.size()) throw ParseError("DNS compression pointer out of range");
      jump = std::make_unique<ByteReader>(all.subspan(offset));
      cur = jump.get();
      continue;
    }
    if (len > 63) throw ParseError("DNS label length uses reserved bits");
    if (!out.empty()) out += '.';
    out += cur->str(len);
    if (out.size() > 255) throw ParseError("DNS name too long");
  }
  return out;
}

Bytes DnsMessage::serialize() const {
  ByteWriter w;
  w.u16(id);
  std::uint16_t flags = 0;
  if (is_response) flags |= 0x8000;
  if (authoritative) flags |= 0x0400;
  if (recursion_desired) flags |= 0x0100;
  if (recursion_available) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(rcode) & 0xf;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(0);  // NS count
  w.u16(0);  // AR count
  for (const DnsQuestion& q : questions) {
    w.raw(encode_dns_name(q.qname));
    w.u16(q.qtype);
    w.u16(q.qclass);
  }
  for (const DnsAnswer& a : answers) {
    w.raw(encode_dns_name(a.name));
    w.u16(a.type);
    w.u16(a.klass);
    w.u32(a.ttl);
    w.u16(4);  // rdlength (A record)
    w.u32(a.address.value());
  }
  return std::move(w).take();
}

DnsMessage DnsMessage::parse(BytesView bytes) {
  ByteReader r(bytes);
  DnsMessage m;
  m.id = r.u16();
  std::uint16_t flags = r.u16();
  m.is_response = (flags & 0x8000) != 0;
  m.authoritative = (flags & 0x0400) != 0;
  m.recursion_desired = (flags & 0x0100) != 0;
  m.recursion_available = (flags & 0x0080) != 0;
  m.rcode = static_cast<DnsRcode>(flags & 0xf);
  std::uint16_t qd = r.u16();
  std::uint16_t an = r.u16();
  r.skip(4);  // NS + AR counts
  for (int i = 0; i < qd; ++i) {
    DnsQuestion q;
    q.qname = decode_dns_name(r);
    q.qtype = r.u16();
    q.qclass = r.u16();
    m.questions.push_back(std::move(q));
  }
  for (int i = 0; i < an; ++i) {
    DnsAnswer a;
    a.name = decode_dns_name(r);
    a.type = r.u16();
    a.klass = r.u16();
    a.ttl = r.u32();
    std::uint16_t rdlength = r.u16();
    // serialize() writes every answer's rdata as the 4-byte address field,
    // whatever the record type, so parse must accept it for every type too
    // — restricting to type 1 broke parse∘serialize for CNAME/TXT answers.
    if (rdlength == 4) {
      a.address = Ipv4Address(r.u32());
    } else {
      r.skip(rdlength);
    }
    m.answers.push_back(std::move(a));
  }
  return m;
}

Bytes DnsMessage::serialize_tcp() const {
  Bytes body = serialize();
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(body.size()));
  w.raw(body);
  return std::move(w).take();
}

DnsMessage DnsMessage::parse_tcp(BytesView bytes) {
  ByteReader r(bytes);
  std::uint16_t len = r.u16();
  if (len != r.remaining()) throw ParseError("DNS/TCP length prefix mismatch");
  return parse(r.rest());
}

DnsMessage make_dns_query(const std::string& domain, std::uint16_t id) {
  DnsMessage m;
  m.id = id;
  m.questions.push_back({domain, 1, 1});
  return m;
}

DnsMessage make_dns_response(const DnsMessage& query, Ipv4Address address) {
  DnsMessage m;
  m.id = query.id;
  m.is_response = true;
  m.recursion_desired = query.recursion_desired;
  m.recursion_available = true;
  m.questions = query.questions;
  if (!query.questions.empty()) {
    m.answers.push_back({query.questions.front().qname, 1, 1, 300, address});
  }
  return m;
}

DnsMessage make_dns_nxdomain(const DnsMessage& query) {
  DnsMessage m;
  m.id = query.id;
  m.is_response = true;
  m.recursion_desired = query.recursion_desired;
  m.recursion_available = true;
  m.rcode = DnsRcode::kNxDomain;
  m.questions = query.questions;
  return m;
}

bool looks_like_tcp_dns(BytesView payload) {
  if (payload.size() < 14) return false;  // prefix + header
  std::uint16_t len = static_cast<std::uint16_t>(payload[0] << 8 | payload[1]);
  return len == payload.size() - 2;
}

}  // namespace cen::net
