// Classic libpcap capture files (the tcpdump element of the paper's
// implementation, §4.2: "we perform packet captures and store all
// responses"). Packets are stored as LINKTYPE_RAW (raw IPv4), timestamped
// with the simulated clock, and can be written to disk for inspection
// with real tooling (tcpdump/wireshark read these files).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bytes.hpp"
#include "core/clock.hpp"

namespace cen::net {

/// LINKTYPE_RAW: packets begin with the IPv4 header.
constexpr std::uint32_t kLinkTypeRaw = 101;
constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;

struct CapturedPacket {
  SimTime timestamp_ms = 0;
  Bytes data;
  bool operator==(const CapturedPacket&) const = default;
};

class PcapWriter {
 public:
  void add(SimTime timestamp_ms, BytesView packet);
  std::size_t size() const { return packets_.size(); }
  const std::vector<CapturedPacket>& packets() const { return packets_; }

  /// Serialize the full capture file (global header + records).
  Bytes serialize() const;
  /// Write to disk; returns false on I/O failure.
  bool write_file(const std::string& path) const;
  void clear() { packets_.clear(); }

 private:
  std::vector<CapturedPacket> packets_;
};

class PcapReader {
 public:
  /// Parse a capture file produced by PcapWriter (or any µs-resolution
  /// little-endian-free pcap we emit). Throws ParseError on malformed data.
  static std::vector<CapturedPacket> parse(BytesView file);
};

}  // namespace cen::net
