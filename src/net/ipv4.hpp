// IPv4 address and header model with real 20-byte serialization.
//
// Headers serialize to exact RFC 791 wire bytes (including checksum),
// because CenTrace's Tracebox-style analysis diffs the quoted bytes
// inside ICMP Time Exceeded messages against the originally sent packet.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/bytes.hpp"

namespace cen::net {

/// IPv4 address, stored host-order for arithmetic convenience.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_(static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
               static_cast<std::uint32_t>(c) << 8 | d) {}

  /// Parse dotted-quad ("192.0.2.1"); returns nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text);

  constexpr std::uint32_t value() const { return value_; }
  std::string str() const;
  constexpr bool is_unspecified() const { return value_ == 0; }

  auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// IP protocol numbers used in the simulation.
enum class IpProto : std::uint8_t { kIcmp = 1, kTcp = 6, kUdp = 17 };

/// RFC 791 header (no options). `total_length` covers header + payload.
struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  // 32-bit words; we never emit options
  std::uint8_t tos = 0;
  std::uint16_t total_length = 20;
  std::uint16_t identification = 0;
  std::uint8_t flags = 0x2;  // DF set by default, like most OS stacks
  std::uint16_t fragment_offset = 0;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kTcp;
  Ipv4Address src;
  Ipv4Address dst;

  /// Serialize to exactly 20 bytes with a correct header checksum.
  Bytes serialize() const;
  /// Append the same 20 bytes to an existing writer (allocation-free when
  /// the writer's buffer has capacity).
  void serialize_into(ByteWriter& w) const;
  /// Parse 20 bytes; throws ParseError on truncation or bad version.
  static Ipv4Header parse(ByteReader& r);

  bool operator==(const Ipv4Header&) const = default;
};

/// RFC 1071 internet checksum over arbitrary bytes.
std::uint16_t internet_checksum(BytesView data);

}  // namespace cen::net
