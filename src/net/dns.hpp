// DNS wire format (RFC 1035) over TCP (RFC 7766, 2-byte length prefix).
//
// The paper scopes its study to HTTP/TLS devices but names DNS as the
// natural protocol extension for CenTrace (§4, §8). This module provides
// the real message encoding so the same TTL-limited probing, injection
// detection and localisation machinery runs over DNS: resolvers are
// endpoint models, and censor devices can drop queries or inject spoofed
// answers (sinkhole A records / NXDOMAIN), as national DNS injectors do.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/bytes.hpp"
#include "net/ipv4.hpp"

namespace cen::net {

enum class DnsRcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kRefused = 5,
};

struct DnsQuestion {
  std::string qname;
  std::uint16_t qtype = 1;   // A
  std::uint16_t qclass = 1;  // IN
  bool operator==(const DnsQuestion&) const = default;
};

struct DnsAnswer {
  std::string name;
  std::uint16_t type = 1;
  std::uint16_t klass = 1;
  std::uint32_t ttl = 300;
  Ipv4Address address;  // rdata for A records
  bool operator==(const DnsAnswer&) const = default;
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  bool recursion_desired = true;
  bool recursion_available = false;
  bool authoritative = false;
  DnsRcode rcode = DnsRcode::kNoError;
  std::vector<DnsQuestion> questions;
  std::vector<DnsAnswer> answers;

  /// Bare DNS message bytes (no TCP length prefix).
  Bytes serialize() const;
  /// Parse bare message bytes; throws ParseError on malformed input.
  static DnsMessage parse(BytesView bytes);

  /// Serialize with the RFC 7766 2-byte length prefix (DNS-over-TCP).
  Bytes serialize_tcp() const;
  /// Parse a length-prefixed DNS-over-TCP payload.
  static DnsMessage parse_tcp(BytesView bytes);
};

/// A query for an A record of `domain`.
DnsMessage make_dns_query(const std::string& domain, std::uint16_t id = 0x1234);
/// The matching positive answer.
DnsMessage make_dns_response(const DnsMessage& query, Ipv4Address address);
/// The matching NXDOMAIN answer.
DnsMessage make_dns_nxdomain(const DnsMessage& query);

/// Does a payload look like a DNS-over-TCP message (length prefix matches)?
bool looks_like_tcp_dns(BytesView payload);

/// Encode a hostname as DNS labels ("www.x.com" -> \3www\1x\3com\0).
Bytes encode_dns_name(const std::string& name);
/// Decode labels at the reader's position. RFC 1035 compression pointers
/// are followed (offsets are relative to the start of the reader's full
/// underlying buffer); pointer chains are capped so cycles throw
/// ParseError instead of looping.
std::string decode_dns_name(ByteReader& r);

}  // namespace cen::net
