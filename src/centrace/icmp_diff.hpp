// Tracebox-style analysis of quoted packets inside ICMP Time Exceeded
// messages (paper §4.1 "Quoted packets in ICMP", §4.3).
//
// Routers quote part of the original datagram in their ICMP errors;
// comparing the quote against the packet actually sent reveals (a) how
// much the router quotes (RFC 792's 64 bits of transport header vs
// RFC 1812's full datagram) and (b) in-flight header rewrites — the paper
// finds 32.06% of quotes show a changed IP TOS and uses these deltas as
// clustering features.
#pragma once

#include <cstdint>
#include <optional>

#include "net/ipv4.hpp"
#include "net/packet.hpp"

namespace cen::trace {

struct QuoteDiff {
  net::Ipv4Address router;
  bool parse_ok = false;
  /// Quote carries ≤ 8 bytes of transport header (RFC 792 minimum).
  bool rfc792_minimal = false;
  /// Full TCP header (and possibly payload) present (RFC 1812 behaviour).
  bool full_tcp_quoted = false;
  bool tos_changed = false;
  bool ip_flags_changed = false;
  bool ports_match = true;       // sanity: the quote is for our probe
  std::uint8_t quoted_tos = 0;
  std::uint8_t quoted_ip_flags = 0;
  std::uint8_t quoted_ttl = 0;   // TTL at expiry (usually 0 or 1)
  std::size_t quoted_payload_bytes = 0;
};

/// Compare the sent probe against the quoted bytes from `router`.
QuoteDiff diff_quote(const net::Packet& sent, BytesView quoted, net::Ipv4Address router);

}  // namespace cen::trace
