#include "centrace/icmp_diff.hpp"

namespace cen::trace {

QuoteDiff diff_quote(const net::Packet& sent, BytesView quoted, net::Ipv4Address router) {
  QuoteDiff d;
  d.router = router;
  bool tcp_complete = false;
  net::Packet q;
  try {
    q = net::Packet::parse_quoted(quoted, tcp_complete);
  } catch (const ParseError&) {
    return d;
  }
  d.parse_ok = true;
  d.full_tcp_quoted = tcp_complete;
  // 20-byte IP header + 8 bytes of transport = the RFC 792 minimum quote.
  d.rfc792_minimal = quoted.size() <= 28;
  d.quoted_tos = q.ip.tos;
  d.quoted_ip_flags = q.ip.flags;
  d.quoted_ttl = q.ip.ttl;
  d.tos_changed = q.ip.tos != sent.ip.tos;
  d.ip_flags_changed = q.ip.flags != sent.ip.flags;
  d.ports_match =
      q.tcp.src_port == sent.tcp.src_port && q.tcp.dst_port == sent.tcp.dst_port;
  if (tcp_complete) d.quoted_payload_bytes = q.payload.size();
  return d;
}

}  // namespace cen::trace
