#include "centrace/degrade.hpp"

#include <algorithm>

#include "censor/vendors.hpp"
#include "core/fingerprint.hpp"
#include "net/http.hpp"
#include "obs/observer.hpp"

namespace cen::trace {

std::uint64_t DegradationPlan::fingerprint() const {
  FingerprintBuilder fp;
  fp.mix(tomography);
  fp.mix(static_cast<std::uint64_t>(vantages.size()));
  for (sim::NodeId v : vantages) fp.mix(static_cast<std::uint64_t>(v));
  fp.mix(static_cast<std::uint64_t>(rounds));
  fp.mix(static_cast<std::uint64_t>(round_spacing));
  fp.mix(static_cast<std::uint64_t>(control_path_retries));
  fp.mix(solver.fingerprint());
  return fp.digest();
}

namespace {

/// Stage salt for the tomography scheduler's substreams (disjoint from
/// the pipeline's kTraceStageSalt/kProbeStageSalt/kFuzzStageSalt).
constexpr std::uint64_t kTomographySalt = 0x746f6d6f3176ull;

enum class EndToEndVerdict { kBlocked, kClean, kSilent };

/// Boolean end-to-end verdict of a full-TTL probe: an injected
/// RST/FIN/blockpage marks the path blocked, genuine endpoint data marks
/// it clean, and silence is indeterminate (outage vs drop-censor) until
/// a control probe vouches for the path.
EndToEndVerdict classify_events(const std::vector<sim::Event>& events) {
  bool data = false;
  bool injected = false;
  for (const sim::Event& ev : events) {
    const auto* tcp = std::get_if<sim::TcpEvent>(&ev);
    if (tcp == nullptr) continue;
    const net::Packet& pkt = tcp->packet;
    if (pkt.tcp.has(net::TcpFlags::kRst) || pkt.tcp.has(net::TcpFlags::kFin)) {
      injected = true;
    } else if (!pkt.payload.empty()) {
      auto resp = net::HttpResponse::parse(to_string(pkt.payload));
      if (resp && censor::match_blockpage(resp->body)) {
        injected = true;
      } else {
        data = true;  // HTTP page / TLS handshake / DNS answer
      }
    } else {
      data = true;
    }
  }
  if (injected) return EndToEndVerdict::kBlocked;
  if (data) return EndToEndVerdict::kClean;
  return EndToEndVerdict::kSilent;
}

/// Multi-vantage escalation: build the path-observation matrix and run
/// the minimal-blocking-link-set solver. Upgrades report.degradation to
/// kTomography on success.
void escalate_tomography(sim::Network& network, sim::NodeId client,
                         net::Ipv4Address endpoint, const std::string& test_domain,
                         const std::string& control_domain,
                         const CenTraceOptions& options, const DegradationPlan& plan,
                         CenTraceReport& report) {
  obs::Observer* o = network.observer();
  obs::ScopedSpan span(o != nullptr ? &o->tracer() : nullptr, &network.clock(),
                       "tomography:" + test_domain, "tomography");

  const std::uint16_t port = options.protocol == ProbeProtocol::kHttps ? 443
                             : options.protocol == ProbeProtocol::kDns ? 53
                                                                       : 80;
  const Bytes test_payload = CenTrace::make_payload(options.protocol, test_domain);
  const Bytes control_payload = CenTrace::make_payload(options.protocol, control_domain);

  std::vector<sim::NodeId> vantages;
  vantages.push_back(client);
  for (sim::NodeId v : plan.vantages) {
    if (std::find(vantages.begin(), vantages.end(), v) == vantages.end()) {
      vantages.push_back(v);
    }
  }

  tomo::ObservationMatrix matrix;
  for (std::size_t vi = 0; vi < vantages.size(); ++vi) {
    const std::vector<SimTime> delays =
        tomo::probe_round_delays(network.seed(), kTomographySalt, static_cast<int>(vi),
                                 plan.rounds, plan.round_spacing);
    for (SimTime delay : delays) {
      // The jittered advance walks probes across route-flap epochs, and
      // every fresh connection re-rolls the ECMP flow hash — both vary
      // the sampled path, which is what gives the matrix rank.
      network.clock().advance(delay);
      if (o != nullptr) o->tools().tomo_probes->inc();
      sim::Connection conn = network.open_connection(vantages[vi], endpoint, port);
      if (conn.connect() != sim::ConnectResult::kEstablished) continue;
      const std::vector<sim::Event> events = conn.send(test_payload, 64);
      const std::vector<sim::NodeId>& path = conn.path();
      EndToEndVerdict verdict = classify_events(events);
      if (verdict == EndToEndVerdict::kSilent) {
        // Timeout is only censorship evidence when a control probe over
        // the *same* node path gets through (fresh ports may land on a
        // different equal-cost path — retry until one matches).
        bool path_alive = false;
        for (int attempt = 0; attempt <= plan.control_path_retries; ++attempt) {
          if (o != nullptr) o->tools().tomo_probes->inc();
          sim::Connection check = network.open_connection(vantages[vi], endpoint, port);
          if (check.connect() != sim::ConnectResult::kEstablished) continue;
          const std::vector<sim::Event> control_events = check.send(control_payload, 64);
          if (check.path() != path) continue;  // different ECMP branch
          path_alive = classify_events(control_events) == EndToEndVerdict::kClean;
          break;  // same path sampled: its verdict is final
        }
        if (!path_alive) continue;  // outage indistinguishable from censorship
        verdict = EndToEndVerdict::kBlocked;
      }
      tomo::PathObservation row;
      row.path = path;
      row.blocked = verdict == EndToEndVerdict::kBlocked;
      row.vantage = static_cast<int>(vi);
      matrix.add(std::move(row));
      if (o != nullptr) o->tools().tomo_observations->inc();
    }
  }

  report.degradation.vantage_count = static_cast<int>(vantages.size());
  report.degradation.tomography_observations = static_cast<int>(matrix.size());
  const tomo::TomographyResult result = tomo::solve(matrix, plan.solver);
  if (o != nullptr) {
    o->tools().tomo_solves->inc();
    o->journal().record(network.now(), "tomography",
                        test_domain + " rows=" + std::to_string(matrix.size()) +
                            " blocked=" + std::to_string(matrix.blocked_count()) +
                            (result.solved ? " cover=" + std::to_string(result.cover_size)
                                           : " unsolved"));
  }
  if (!result.solved || result.candidates.empty()) return;

  report.degradation.tomography_solved = true;
  report.degradation.mode = DegradationMode::kTomography;
  const sim::Topology& topo = network.topology();
  for (const tomo::LinkBlame& lb : result.candidates) {
    BlamedLink link;
    link.ip_a = topo.node_ip(lb.link.a);
    link.ip_b = topo.node_ip(lb.link.b);
    link.confidence = lb.confidence;
    link.blocked_paths = lb.blocked_paths;
    link.clean_paths = lb.clean_paths;
    report.degradation.candidate_links.push_back(link);
  }
}

}  // namespace

CenTraceReport measure_with_degradation(sim::Network& network, sim::NodeId client,
                                        net::Ipv4Address endpoint,
                                        const std::string& test_domain,
                                        const std::string& control_domain,
                                        const CenTraceOptions& options,
                                        const DegradationPlan* plan) {
  CenTrace tool(network, client, options);
  CenTraceReport report = tool.measure(endpoint, test_domain, control_domain);

  // Escalate only when hop-level localisation failed outright: a blocked
  // verdict with no blocking-hop IP. (kIcmpDegraded keeps its hop —
  // tomography would add nothing the report does not already carry.)
  // UDP probing has no connection path to observe, so it cannot escalate.
  if (plan != nullptr && plan->tomography && report.blocked &&
      report.degradation.mode == DegradationMode::kUnlocalized &&
      options.protocol != ProbeProtocol::kDnsUdp) {
    escalate_tomography(network, client, endpoint, test_domain, control_domain, options,
                        *plan, report);
  }

  obs::Observer* o = network.observer();
  if (o != nullptr) {
    switch (report.degradation.mode) {
      case DegradationMode::kFull: o->tools().trace_mode_full->inc(); break;
      case DegradationMode::kIcmpDegraded: o->tools().trace_mode_icmp_degraded->inc(); break;
      case DegradationMode::kTomography: o->tools().trace_mode_tomography->inc(); break;
      case DegradationMode::kUnlocalized: o->tools().trace_mode_unlocalized->inc(); break;
    }
    o->journal().record(network.now(), "degrade",
                        test_domain + " mode=" +
                            std::string(degradation_mode_name(report.degradation.mode)) +
                            " icmp_rate=" +
                            std::to_string(report.degradation.icmp_answer_rate) +
                            " dead_sweeps=" +
                            std::to_string(report.degradation.dead_channel_sweeps));
  }
  return report;
}

}  // namespace cen::trace
