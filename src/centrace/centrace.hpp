// CenTrace — the censorship traceroute (paper §4).
//
// A CenTrace measurement probes one (endpoint, Test Domain) pair from a
// client: it sends a real HTTP GET or TLS ClientHello for a benign Control
// Domain with TTL 1, 2, 3, ... (building the path from ICMP Time Exceeded
// responses), then repeats the sweep for the Test Domain and watches for
// the probe to die early — a spoofed TCP RST/FIN, an injected blockpage, or
// the start of an unbroken run of timeouts. The hop where the Test sweep
// terminates, located on the Control path, is the blocking hop.
//
// The implementation covers every device behaviour in the paper's Fig. 2:
//   (A/B) in-path injectors — terminating response with no ICMP at that TTL;
//   (C)   packet-dropping devices — trailing-timeout runs with retries;
//   (D)   on-path taps — injected response *plus* ICMP from the same TTL;
//   (E)   TTL-copying injectors — resets that only become visible at
//         TTL ≈ 2·d with a received TTL of 1, corrected back to d.
// Path variance is tamed by repeating both sweeps (11× by default, the
// paper's empirically derived count) over fresh TCP connections and
// majority-voting each hop.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "centrace/icmp_diff.hpp"
#include "core/flat_map.hpp"
#include "geo/asdb.hpp"
#include "netsim/engine.hpp"
#include "tool/options.hpp"

namespace cen::trace {

/// What a single TTL-limited probe elicited.
enum class ProbeResponse : std::uint8_t {
  kTimeout,          // nothing after retries
  kIcmpTtlExceeded,  // router answered; path continues
  kTcpRst,
  kTcpFin,
  kBlockpage,        // HTTP response matching a known blockpage fingerprint
  kEndpointData,     // genuine-looking response (HTTP page / TLS handshake)
};

std::string_view probe_response_name(ProbeResponse r);

struct HopObservation {
  int ttl = 0;
  ProbeResponse response = ProbeResponse::kTimeout;
  std::optional<net::Ipv4Address> icmp_router;
  std::optional<Bytes> icmp_quoted;
  /// TCP packet received from the endpoint IP (genuine or spoofed).
  std::optional<net::Packet> tcp_packet;
  /// Both an injected TCP response and an ICMP from this TTL (on-path signal).
  bool tcp_and_icmp = false;
  /// Copy of the probe as sent (baseline for quote diffing).
  net::Packet sent;
};

/// One full TTL sweep for one domain over fresh per-probe connections.
struct SingleTrace {
  std::string domain;
  std::vector<HopObservation> hops;  // hops[i] is TTL i+1
  int terminating_ttl = -1;          // TTL of the terminating response
  ProbeResponse terminating_response = ProbeResponse::kTimeout;
  bool endpoint_reached = false;
  bool connect_failed = false;
  /// The early-abort heuristic declared the ICMP channel dead during
  /// this sweep (a run of all-silent hops with zero ICMP ever observed
  /// and no live loss signal): remaining timeouts ran without retries.
  bool channel_dead = false;
};

enum class BlockingType : std::uint8_t { kNone, kTimeout, kRst, kFin, kHttpBlockpage };
std::string_view blocking_type_name(BlockingType t);

enum class BlockingLocation : std::uint8_t {
  kNotBlocked,
  kOnPathToEndpoint,  // strictly between client and endpoint ("Path(C->E)")
  kAtEndpoint,        // the endpoint (or a NAT in front of it) ("At E")
  kPastEndpoint,      // apparent hop beyond the endpoint ("Past E")
  kNoIcmp,            // cannot localize: neighbouring hops silent ("No ICMP")
};
std::string_view blocking_location_name(BlockingLocation l);

enum class DevicePlacement : std::uint8_t { kUnknown, kInPath, kOnPath };
std::string_view device_placement_name(DevicePlacement p);

/// The degradation ladder: how much localisation a measurement achieved
/// given the ICMP conditions it found (ISSUE 6 tentpole).
///   full          ICMP channel healthy, hop-level localisation stands;
///   icmp_degraded hop localised, but the ICMP channel was visibly
///                 starved (rate limiting / partial blackholing), so the
///                 hop evidence rests on fewer quotes than usual;
///   tomography    hop-level ICMP localisation failed, but multi-vantage
///                 boolean tomography produced a candidate link set;
///   unlocalized   blocking confirmed, no localisation of any kind.
enum class DegradationMode : std::uint8_t {
  kFull,
  kIcmpDegraded,
  kTomography,
  kUnlocalized,
};
std::string_view degradation_mode_name(DegradationMode m);

/// One candidate blocking link from the tomography solver, reported by
/// the IPs of its endpoints (NodeIds are simulator-internal).
struct BlamedLink {
  net::Ipv4Address ip_a;
  net::Ipv4Address ip_b;
  double confidence = 0.0;
  int blocked_paths = 0;
  int clean_paths = 0;
};

/// Channel-health assessment + escalation outcome attached to every
/// CenTrace report (degrade-don't-die: the report always says how much
/// to trust its localisation instead of silently emitting garbage hops).
struct DegradationInfo {
  DegradationMode mode = DegradationMode::kFull;
  /// ICMP answers / (answers + timeouts) over the control-sweep hops —
  /// the blackhole/rate-limit starvation signal.
  double icmp_answer_rate = 1.0;
  /// Sweeps the early-abort heuristic declared ICMP-dead (see
  /// CenTraceOptions::silent_channel_abort).
  int dead_channel_sweeps = 0;
  /// Vantage points that contributed observations (1 = the client alone).
  int vantage_count = 1;
  /// Path observations fed to the tomography solver (0 = not escalated).
  int tomography_observations = 0;
  bool tomography_solved = false;
  /// Candidate blocking links, highest confidence first.
  std::vector<BlamedLink> candidate_links;
};

/// Protocol the probes carry. HTTP GET and TLS ClientHello are the paper's
/// subjects; DNS (over TCP, RFC 7766, and over UDP — the injector-race
/// variant) is the protocol extension §4/§8 anticipate.
enum class ProbeProtocol : std::uint8_t { kHttp, kHttps, kDns, kDnsUdp };
std::string_view probe_protocol_name(ProbeProtocol p);

struct CenTraceOptions {
  int max_ttl = 64;
  int retries = 3;          // per-probe retries on timeout (transient loss)
  int repetitions = 11;     // sweeps per domain (paper's path-variance count)
  /// Probes after observing blocking wait this long (stateful censors).
  SimTime inter_probe_wait = 120 * kSecond;
  /// Consecutive timeouts after which a sweep concludes "dropped".
  /// Must exceed the longest silent-router run and the TTL-copy gap.
  int timeout_run_stop = 16;
  ProbeProtocol protocol = ProbeProtocol::kHttp;
  /// Simulated-time wait before a probe retry, doubled each further
  /// attempt (exponential backoff). 0 keeps the paper's timing model:
  /// retries cost no simulated time.
  SimTime retry_backoff = 0;
  /// Adaptive retries: once any probe in the current measurement needed
  /// a retry to elicit a response (a live transient-loss signal), later
  /// probes may spend up to this many retries instead of `retries`.
  /// Inert on clean networks, where no probe ever recovers via retry.
  int adaptive_max_retries = 6;
  /// Early-abort heuristic for fully blackholed ICMP (satellite fix):
  /// once a sweep has seen this many consecutive silent hops from TTL 1
  /// with *zero* ICMP anywhere in the measurement so far and no
  /// retry-recovered probe (i.e. the silence cannot be loss), the ICMP
  /// channel is declared dead and later timeout probes in the sweep stop
  /// burning the retry/backoff budget. Provably inert whenever any
  /// router answers or any retry recovers. 0 disables.
  int silent_channel_abort = 8;

  /// Digest over every option (campaign cache-key component).
  std::uint64_t fingerprint() const;

  /// Apply the shared run fields: `retries` caps the adaptive budget,
  /// `backoff` sets the retry backoff. Inert when the fields are unset.
  void apply(const tool::CommonRunOptions& common) {
    if (common.retries) adaptive_max_retries = *common.retries;
    if (common.backoff) retry_backoff = *common.backoff;
  }
};

/// Reliability annotations for a CenTrace verdict, computed from the
/// repetition set itself — how much the sweeps agreed, whether the
/// control path looked rate-limited or churned, and how much transient
/// loss the retry layer absorbed. `overall` is 1.0 on a clean network.
struct TraceConfidence {
  double overall = 1.0;
  /// Share of test sweeps agreeing with the majority terminating response.
  double response_agreement = 1.0;
  /// Among agreeing sweeps, share that also agree on the terminating TTL.
  double ttl_agreement = 1.0;
  /// Mean per-hop agreement of the control sweeps (majority router IP or
  /// consistent silence at every hop = 1.0).
  double control_path_stability = 1.0;
  /// Some control sweeps got an ICMP from a hop while others timed out at
  /// it with the *same* router answering otherwise — the signature of
  /// ICMP rate limiting (or heavy loss) rather than a silent router.
  bool icmp_rate_limited = false;
  /// Two or more distinct router IPs observed at one hop across control
  /// sweeps — ECMP path variance or active route flapping.
  bool path_churn = false;
  /// Probes that only answered after one or more retries (absorbed loss).
  int loss_recovered_probes = 0;
  /// Per-control-hop agreement share (parallel to control_path).
  std::vector<double> hop_confidence;
};

struct CenTraceReport {
  std::string test_domain;
  std::string control_domain;
  net::Ipv4Address endpoint;
  ProbeProtocol protocol = ProbeProtocol::kHttp;

  bool blocked = false;
  BlockingType blocking_type = BlockingType::kNone;
  BlockingLocation location = BlockingLocation::kNotBlocked;
  DevicePlacement placement = DevicePlacement::kUnknown;

  /// Majority terminating TTL of the Test sweeps, after TTL-copy correction.
  int blocking_hop_ttl = -1;
  /// IP at the blocking hop on the Control path (in-path device candidate).
  std::optional<net::Ipv4Address> blocking_hop_ip;
  std::optional<geo::AsInfo> blocking_as;
  /// Endpoint hop distance measured by the Control sweeps (-1 if unreached).
  int endpoint_hop_distance = -1;
  bool ttl_copy_detected = false;
  std::optional<std::string> blockpage_vendor;  // from fingerprint match

  /// Features of the injected packet at the terminating hop, if any.
  std::optional<net::Packet> injected_packet;

  /// Tracebox-style quote analysis from the Control sweeps.
  std::vector<QuoteDiff> quote_diffs;

  /// How trustworthy this verdict is given the observed conditions.
  TraceConfidence confidence;

  /// Channel health + degradation-ladder outcome (always populated).
  DegradationInfo degradation;

  /// Majority Control-path IP per hop (nullopt = silent hop).
  std::vector<std::optional<net::Ipv4Address>> control_path;

  std::vector<SingleTrace> control_traces;
  std::vector<SingleTrace> test_traces;
};

class CenTrace {
 public:
  CenTrace(sim::Network& network, sim::NodeId client, CenTraceOptions options = {});

  /// Run a full CenTrace measurement: repeated Control sweeps, repeated
  /// Test sweeps, aggregation, localisation and classification.
  CenTraceReport measure(net::Ipv4Address endpoint, const std::string& test_domain,
                         const std::string& control_domain);

  /// One sweep (exposed for tests and the ablation bench).
  SingleTrace sweep(net::Ipv4Address endpoint, const std::string& domain);

  const CenTraceOptions& options() const { return options_; }

  /// Serialize the probe payload for `protocol` + `domain` (shared with
  /// the tomography escalation, which sends the same wire bytes).
  static Bytes make_payload(ProbeProtocol protocol, const std::string& domain);

 private:
  Bytes build_payload(const std::string& domain) const;
  /// Cached wire payload for `domain` (the protocol is fixed per instance,
  /// so one entry per domain serves every repetition of every sweep).
  const Bytes& payload_for(const std::string& domain);
  HopObservation probe(net::Ipv4Address endpoint, const Bytes& payload, int ttl,
                       const std::string& domain, bool allow_retries = true);
  /// Fill report.degradation from the channel-health evidence (mode is
  /// assigned before any tomography escalation, which may upgrade it).
  void assess_degradation(CenTraceReport& report) const;
  void aggregate(CenTraceReport& report) const;
  void score_confidence(CenTraceReport& report) const;
  /// Retry budget for the next probe (adaptive under observed loss) and
  /// the backoff pause before retry `attempt`.
  int retry_budget() const;
  void backoff_wait(int attempt);

  sim::Network& network_;
  sim::NodeId client_;
  CenTraceOptions options_;
  /// Probes in the current measurement that answered only after retries —
  /// the live loss signal driving the adaptive retry budget.
  int loss_recovered_probes_ = 0;
  /// Whether any ICMP arrived in the current measurement. While false
  /// (and with no recovered loss) the silent-channel-abort heuristic may
  /// declare the ICMP channel dead; one quote anywhere disables it.
  bool icmp_seen_ = false;
  /// Sweeps of the current measurement that hit the dead-channel abort.
  int dead_channel_sweeps_ = 0;
  /// Serialized payloads by domain, built once instead of per sweep.
  /// Flat storage: a measurement touches two domains (test + control), so
  /// lookups are a short sorted-vector scan. References returned by
  /// payload_for() are invalidated by the next insertion — callers hold
  /// them for at most one sweep, and sweeps never insert.
  core::FlatMap<std::string, Bytes> payload_cache_;
  /// Reusable event buffer for probe() sends (cleared by send_into); keeps
  /// the per-probe vector allocation out of the hot loop.
  std::vector<sim::Event> events_scratch_;
};

struct DegradationPlan;  // centrace/degrade.hpp

/// One complete CenTrace invocation for the unified tool API: the
/// measurement subject plus the tool's tuning options.
struct TraceRunOptions {
  sim::NodeId client = sim::kInvalidNode;
  net::Ipv4Address endpoint;
  std::string test_domain;
  std::string control_domain;
  CenTraceOptions trace;
  /// Shared run fields (retry budget, backoff, epoch seed), applied by
  /// run() on top of `trace`. Unset fields keep the tool defaults.
  tool::CommonRunOptions common;
  /// Optional degradation/escalation plan (multi-vantage tomography when
  /// ICMP localisation fails). Null = plain CenTrace, prior behaviour.
  const DegradationPlan* degradation = nullptr;
};

/// Unified entry point (same shape as probe::run / fuzz::run): run one
/// measurement on `network`, attaching `observer` for its duration (the
/// previous observer is restored on return, exception-safe).
CenTraceReport run(sim::Network& network, const TraceRunOptions& options,
                   obs::Observer* observer = nullptr);

}  // namespace cen::trace
