// CenTrace — the censorship traceroute (paper §4).
//
// A CenTrace measurement probes one (endpoint, Test Domain) pair from a
// client: it sends a real HTTP GET or TLS ClientHello for a benign Control
// Domain with TTL 1, 2, 3, ... (building the path from ICMP Time Exceeded
// responses), then repeats the sweep for the Test Domain and watches for
// the probe to die early — a spoofed TCP RST/FIN, an injected blockpage, or
// the start of an unbroken run of timeouts. The hop where the Test sweep
// terminates, located on the Control path, is the blocking hop.
//
// The implementation covers every device behaviour in the paper's Fig. 2:
//   (A/B) in-path injectors — terminating response with no ICMP at that TTL;
//   (C)   packet-dropping devices — trailing-timeout runs with retries;
//   (D)   on-path taps — injected response *plus* ICMP from the same TTL;
//   (E)   TTL-copying injectors — resets that only become visible at
//         TTL ≈ 2·d with a received TTL of 1, corrected back to d.
// Path variance is tamed by repeating both sweeps (11× by default, the
// paper's empirically derived count) over fresh TCP connections and
// majority-voting each hop.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "centrace/icmp_diff.hpp"
#include "geo/asdb.hpp"
#include "netsim/engine.hpp"

namespace cen::trace {

/// What a single TTL-limited probe elicited.
enum class ProbeResponse : std::uint8_t {
  kTimeout,          // nothing after retries
  kIcmpTtlExceeded,  // router answered; path continues
  kTcpRst,
  kTcpFin,
  kBlockpage,        // HTTP response matching a known blockpage fingerprint
  kEndpointData,     // genuine-looking response (HTTP page / TLS handshake)
};

std::string_view probe_response_name(ProbeResponse r);

struct HopObservation {
  int ttl = 0;
  ProbeResponse response = ProbeResponse::kTimeout;
  std::optional<net::Ipv4Address> icmp_router;
  std::optional<Bytes> icmp_quoted;
  /// TCP packet received from the endpoint IP (genuine or spoofed).
  std::optional<net::Packet> tcp_packet;
  /// Both an injected TCP response and an ICMP from this TTL (on-path signal).
  bool tcp_and_icmp = false;
  /// Copy of the probe as sent (baseline for quote diffing).
  net::Packet sent;
};

/// One full TTL sweep for one domain over fresh per-probe connections.
struct SingleTrace {
  std::string domain;
  std::vector<HopObservation> hops;  // hops[i] is TTL i+1
  int terminating_ttl = -1;          // TTL of the terminating response
  ProbeResponse terminating_response = ProbeResponse::kTimeout;
  bool endpoint_reached = false;
  bool connect_failed = false;
};

enum class BlockingType : std::uint8_t { kNone, kTimeout, kRst, kFin, kHttpBlockpage };
std::string_view blocking_type_name(BlockingType t);

enum class BlockingLocation : std::uint8_t {
  kNotBlocked,
  kOnPathToEndpoint,  // strictly between client and endpoint ("Path(C->E)")
  kAtEndpoint,        // the endpoint (or a NAT in front of it) ("At E")
  kPastEndpoint,      // apparent hop beyond the endpoint ("Past E")
  kNoIcmp,            // cannot localize: neighbouring hops silent ("No ICMP")
};
std::string_view blocking_location_name(BlockingLocation l);

enum class DevicePlacement : std::uint8_t { kUnknown, kInPath, kOnPath };
std::string_view device_placement_name(DevicePlacement p);

/// Protocol the probes carry. HTTP GET and TLS ClientHello are the paper's
/// subjects; DNS (over TCP, RFC 7766, and over UDP — the injector-race
/// variant) is the protocol extension §4/§8 anticipate.
enum class ProbeProtocol : std::uint8_t { kHttp, kHttps, kDns, kDnsUdp };
std::string_view probe_protocol_name(ProbeProtocol p);

struct CenTraceOptions {
  int max_ttl = 64;
  int retries = 3;          // per-probe retries on timeout (transient loss)
  int repetitions = 11;     // sweeps per domain (paper's path-variance count)
  /// Probes after observing blocking wait this long (stateful censors).
  SimTime inter_probe_wait = 120 * kSecond;
  /// Consecutive timeouts after which a sweep concludes "dropped".
  /// Must exceed the longest silent-router run and the TTL-copy gap.
  int timeout_run_stop = 16;
  ProbeProtocol protocol = ProbeProtocol::kHttp;
  /// Simulated-time wait before a probe retry, doubled each further
  /// attempt (exponential backoff). 0 keeps the paper's timing model:
  /// retries cost no simulated time.
  SimTime retry_backoff = 0;
  /// Adaptive retries: once any probe in the current measurement needed
  /// a retry to elicit a response (a live transient-loss signal), later
  /// probes may spend up to this many retries instead of `retries`.
  /// Inert on clean networks, where no probe ever recovers via retry.
  int adaptive_max_retries = 6;

  /// Digest over every option (campaign cache-key component).
  std::uint64_t fingerprint() const;
};

/// Reliability annotations for a CenTrace verdict, computed from the
/// repetition set itself — how much the sweeps agreed, whether the
/// control path looked rate-limited or churned, and how much transient
/// loss the retry layer absorbed. `overall` is 1.0 on a clean network.
struct TraceConfidence {
  double overall = 1.0;
  /// Share of test sweeps agreeing with the majority terminating response.
  double response_agreement = 1.0;
  /// Among agreeing sweeps, share that also agree on the terminating TTL.
  double ttl_agreement = 1.0;
  /// Mean per-hop agreement of the control sweeps (majority router IP or
  /// consistent silence at every hop = 1.0).
  double control_path_stability = 1.0;
  /// Some control sweeps got an ICMP from a hop while others timed out at
  /// it with the *same* router answering otherwise — the signature of
  /// ICMP rate limiting (or heavy loss) rather than a silent router.
  bool icmp_rate_limited = false;
  /// Two or more distinct router IPs observed at one hop across control
  /// sweeps — ECMP path variance or active route flapping.
  bool path_churn = false;
  /// Probes that only answered after one or more retries (absorbed loss).
  int loss_recovered_probes = 0;
  /// Per-control-hop agreement share (parallel to control_path).
  std::vector<double> hop_confidence;
};

struct CenTraceReport {
  std::string test_domain;
  std::string control_domain;
  net::Ipv4Address endpoint;
  ProbeProtocol protocol = ProbeProtocol::kHttp;

  bool blocked = false;
  BlockingType blocking_type = BlockingType::kNone;
  BlockingLocation location = BlockingLocation::kNotBlocked;
  DevicePlacement placement = DevicePlacement::kUnknown;

  /// Majority terminating TTL of the Test sweeps, after TTL-copy correction.
  int blocking_hop_ttl = -1;
  /// IP at the blocking hop on the Control path (in-path device candidate).
  std::optional<net::Ipv4Address> blocking_hop_ip;
  std::optional<geo::AsInfo> blocking_as;
  /// Endpoint hop distance measured by the Control sweeps (-1 if unreached).
  int endpoint_hop_distance = -1;
  bool ttl_copy_detected = false;
  std::optional<std::string> blockpage_vendor;  // from fingerprint match

  /// Features of the injected packet at the terminating hop, if any.
  std::optional<net::Packet> injected_packet;

  /// Tracebox-style quote analysis from the Control sweeps.
  std::vector<QuoteDiff> quote_diffs;

  /// How trustworthy this verdict is given the observed conditions.
  TraceConfidence confidence;

  /// Majority Control-path IP per hop (nullopt = silent hop).
  std::vector<std::optional<net::Ipv4Address>> control_path;

  std::vector<SingleTrace> control_traces;
  std::vector<SingleTrace> test_traces;
};

class CenTrace {
 public:
  CenTrace(sim::Network& network, sim::NodeId client, CenTraceOptions options = {});

  /// Run a full CenTrace measurement: repeated Control sweeps, repeated
  /// Test sweeps, aggregation, localisation and classification.
  CenTraceReport measure(net::Ipv4Address endpoint, const std::string& test_domain,
                         const std::string& control_domain);

  /// One sweep (exposed for tests and the ablation bench).
  SingleTrace sweep(net::Ipv4Address endpoint, const std::string& domain);

  const CenTraceOptions& options() const { return options_; }

 private:
  Bytes build_payload(const std::string& domain) const;
  /// Cached wire payload for `domain` (the protocol is fixed per instance,
  /// so one entry per domain serves every repetition of every sweep).
  const Bytes& payload_for(const std::string& domain);
  HopObservation probe(net::Ipv4Address endpoint, const Bytes& payload, int ttl,
                       const std::string& domain);
  void aggregate(CenTraceReport& report) const;
  void score_confidence(CenTraceReport& report) const;
  /// Retry budget for the next probe (adaptive under observed loss) and
  /// the backoff pause before retry `attempt`.
  int retry_budget() const;
  void backoff_wait(int attempt);

  sim::Network& network_;
  sim::NodeId client_;
  CenTraceOptions options_;
  /// Probes in the current measurement that answered only after retries —
  /// the live loss signal driving the adaptive retry budget.
  int loss_recovered_probes_ = 0;
  /// Serialized payloads by domain, built once instead of per sweep.
  std::map<std::string, Bytes> payload_cache_;
};

/// One complete CenTrace invocation for the unified tool API: the
/// measurement subject plus the tool's tuning options.
struct TraceRunOptions {
  sim::NodeId client = sim::kInvalidNode;
  net::Ipv4Address endpoint;
  std::string test_domain;
  std::string control_domain;
  CenTraceOptions trace;
};

/// Unified entry point (same shape as probe::run / fuzz::run): run one
/// measurement on `network`, attaching `observer` for its duration (the
/// previous observer is restored on return, exception-safe).
CenTraceReport run(sim::Network& network, const TraceRunOptions& options,
                   obs::Observer* observer = nullptr);

}  // namespace cen::trace
