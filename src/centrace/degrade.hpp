// Degradation-aware CenTrace: channel-health assessment + multi-vantage
// boolean-tomography escalation (ISSUE 6 tentpole).
//
// `measure_with_degradation` runs a normal CenTrace measurement, reads
// the ICMP channel health it observed (blackhole / rate-limit starvation
// signatures), and walks the explicit ladder
//
//     full -> icmp_degraded -> tomography -> unlocalized
//
// instead of silently emitting garbage hops. When hop-level localisation
// failed (the verdict is blocked but no blocking hop IP could be pinned)
// and the plan enables tomography, the escalation probes the endpoint
// end-to-end from every configured vantage over several jittered rounds
// (fresh connections vary the ECMP flow hash; the jitter walks route-
// flap epochs), builds a path-observation matrix from the boolean
// outcomes alone — no ICMP needed — and hands it to the minimal-
// blocking-link-set solver.
//
// Evidence semantics (see src/tomography/tomography.hpp): test-probe
// success exonerates a path; test-probe injection (RST/FIN/blockpage)
// blocks it; a test-probe timeout only counts as blocked when a control
// probe over the *same* node path got through (otherwise the path itself
// may be down and the row is discarded).
//
// Determinism: all scheduling randomness comes from per-vantage forked
// substreams of the network seed, and all probes run on the caller's
// (replica) network — results are byte-identical across --threads.
#pragma once

#include "centrace/centrace.hpp"
#include "tomography/tomography.hpp"

namespace cen::trace {

/// How (and whether) a failed localisation escalates to tomography.
struct DegradationPlan {
  /// Master switch; false keeps plain CenTrace behaviour.
  bool tomography = false;
  /// Extra vantage clients probing the same endpoint (the measurement's
  /// own client is always vantage 0 and need not be listed).
  std::vector<sim::NodeId> vantages;
  /// End-to-end probe rounds per vantage.
  int rounds = 4;
  /// Base spacing between rounds; each round adds deterministic jitter
  /// in [0, spacing) from the vantage's substream.
  SimTime round_spacing = 120 * kSecond;
  /// Control-probe retries allowed when matching a timed-out test
  /// probe's path (path liveness check).
  int control_path_retries = 6;
  tomo::SolverOptions solver;

  /// Digest over every knob (campaign cache-key component).
  std::uint64_t fingerprint() const;
};

/// Run one CenTrace measurement with channel-health assessment and, when
/// the plan allows, tomography escalation. With a null/disabled plan the
/// result is byte-identical to CenTrace::measure (mode counters aside).
CenTraceReport measure_with_degradation(sim::Network& network, sim::NodeId client,
                                        net::Ipv4Address endpoint,
                                        const std::string& test_domain,
                                        const std::string& control_domain,
                                        const CenTraceOptions& options,
                                        const DegradationPlan* plan);

}  // namespace cen::trace
