#include "centrace/centrace.hpp"

#include <algorithm>
#include <map>

#include "centrace/degrade.hpp"

#include "censor/vendors.hpp"
#include "core/fingerprint.hpp"
#include "net/dns.hpp"
#include "net/http.hpp"
#include "net/tls.hpp"
#include "obs/observer.hpp"

namespace cen::trace {

std::uint64_t CenTraceOptions::fingerprint() const {
  FingerprintBuilder fp;
  fp.mix(static_cast<std::uint64_t>(max_ttl));
  fp.mix(static_cast<std::uint64_t>(retries));
  fp.mix(static_cast<std::uint64_t>(repetitions));
  fp.mix(static_cast<std::uint64_t>(inter_probe_wait));
  fp.mix(static_cast<std::uint64_t>(timeout_run_stop));
  fp.mix(static_cast<std::uint64_t>(protocol));
  fp.mix(static_cast<std::uint64_t>(retry_backoff));
  fp.mix(static_cast<std::uint64_t>(adaptive_max_retries));
  fp.mix(static_cast<std::uint64_t>(silent_channel_abort));
  return fp.digest();
}

std::string_view probe_response_name(ProbeResponse r) {
  switch (r) {
    case ProbeResponse::kTimeout: return "TIMEOUT";
    case ProbeResponse::kIcmpTtlExceeded: return "ICMP";
    case ProbeResponse::kTcpRst: return "RST";
    case ProbeResponse::kTcpFin: return "FIN";
    case ProbeResponse::kBlockpage: return "HTTP";
    case ProbeResponse::kEndpointData: return "DATA";
  }
  return "?";
}

std::string_view blocking_type_name(BlockingType t) {
  switch (t) {
    case BlockingType::kNone: return "NONE";
    case BlockingType::kTimeout: return "TIMEOUT";
    case BlockingType::kRst: return "RST";
    case BlockingType::kFin: return "FIN";
    case BlockingType::kHttpBlockpage: return "HTTP";
  }
  return "?";
}

std::string_view blocking_location_name(BlockingLocation l) {
  switch (l) {
    case BlockingLocation::kNotBlocked: return "not-blocked";
    case BlockingLocation::kOnPathToEndpoint: return "Path(C->E)";
    case BlockingLocation::kAtEndpoint: return "At E";
    case BlockingLocation::kPastEndpoint: return "Past E";
    case BlockingLocation::kNoIcmp: return "No ICMP";
  }
  return "?";
}

std::string_view device_placement_name(DevicePlacement p) {
  switch (p) {
    case DevicePlacement::kUnknown: return "unknown";
    case DevicePlacement::kInPath: return "in-path";
    case DevicePlacement::kOnPath: return "on-path";
  }
  return "?";
}

std::string_view degradation_mode_name(DegradationMode m) {
  switch (m) {
    case DegradationMode::kFull: return "full";
    case DegradationMode::kIcmpDegraded: return "icmp_degraded";
    case DegradationMode::kTomography: return "tomography";
    case DegradationMode::kUnlocalized: return "unlocalized";
  }
  return "?";
}

CenTrace::CenTrace(sim::Network& network, sim::NodeId client, CenTraceOptions options)
    : network_(network), client_(client), options_(options) {}

std::string_view probe_protocol_name(ProbeProtocol p) {
  switch (p) {
    case ProbeProtocol::kHttp: return "HTTP";
    case ProbeProtocol::kHttps: return "TLS";
    case ProbeProtocol::kDns: return "DNS";
    case ProbeProtocol::kDnsUdp: return "DNS/UDP";
  }
  return "?";
}

Bytes CenTrace::make_payload(ProbeProtocol protocol, const std::string& domain) {
  switch (protocol) {
    case ProbeProtocol::kHttps:
      return net::ClientHello::make(domain).serialize();
    case ProbeProtocol::kDns:
      return net::make_dns_query(domain).serialize_tcp();
    case ProbeProtocol::kDnsUdp:
      return net::make_dns_query(domain).serialize();  // bare, no TCP framing
    case ProbeProtocol::kHttp:
      break;
  }
  return net::HttpRequest::get(domain).serialize_bytes();
}

Bytes CenTrace::build_payload(const std::string& domain) const {
  return make_payload(options_.protocol, domain);
}

const Bytes& CenTrace::payload_for(const std::string& domain) {
  obs::Observer* o = network_.observer();
  auto it = payload_cache_.find(domain);
  if (it == payload_cache_.end()) {
    if (o != nullptr) o->tools().trace_cache_misses->inc();
    it = payload_cache_.emplace(domain, build_payload(domain)).first;
  } else if (o != nullptr) {
    o->tools().trace_cache_hits->inc();
  }
  return it->second;
}

namespace {

/// Classify a bare DNS answer received over UDP.
ProbeResponse classify_udp_dns(const net::UdpDatagram& dgram) {
  try {
    net::DnsMessage answer = net::DnsMessage::parse(dgram.payload);
    if (answer.rcode == net::DnsRcode::kNxDomain) return ProbeResponse::kBlockpage;
    for (const net::DnsAnswer& a : answer.answers) {
      if (censor::match_dns_sinkhole(a.address)) return ProbeResponse::kBlockpage;
    }
    return ProbeResponse::kEndpointData;
  } catch (const ParseError&) {
    return ProbeResponse::kEndpointData;
  }
}

/// Classify one TCP packet received from the endpoint IP.
ProbeResponse classify_tcp(const net::Packet& pkt) {
  if (pkt.tcp.has(net::TcpFlags::kRst)) return ProbeResponse::kTcpRst;
  if (pkt.tcp.has(net::TcpFlags::kFin)) return ProbeResponse::kTcpFin;
  if (!pkt.payload.empty()) {
    if (net::looks_like_tcp_dns(pkt.payload)) {
      try {
        net::DnsMessage answer = net::DnsMessage::parse_tcp(pkt.payload);
        // Injected-answer fingerprints: known sinkhole addresses or an
        // NXDOMAIN for a domain chosen to be resolvable (the DNS analogue
        // of the curated blockpage list).
        if (answer.rcode == net::DnsRcode::kNxDomain) return ProbeResponse::kBlockpage;
        for (const net::DnsAnswer& a : answer.answers) {
          if (censor::match_dns_sinkhole(a.address)) return ProbeResponse::kBlockpage;
        }
        return ProbeResponse::kEndpointData;
      } catch (const ParseError&) {
        return ProbeResponse::kEndpointData;
      }
    }
    std::string raw = to_string(pkt.payload);
    if (auto resp = net::HttpResponse::parse(raw)) {
      if (censor::match_blockpage(resp->body)) return ProbeResponse::kBlockpage;
      return ProbeResponse::kEndpointData;
    }
    return ProbeResponse::kEndpointData;  // TLS ServerHello / alert / other
  }
  return ProbeResponse::kEndpointData;
}

/// Priority for choosing the "response" of a probe when several packets
/// arrive (an on-path censor injects alongside the genuine reply).
int response_rank(ProbeResponse r) {
  switch (r) {
    case ProbeResponse::kBlockpage: return 5;
    case ProbeResponse::kTcpRst: return 4;
    case ProbeResponse::kTcpFin: return 3;
    case ProbeResponse::kEndpointData: return 2;
    case ProbeResponse::kIcmpTtlExceeded: return 1;
    case ProbeResponse::kTimeout: return 0;
  }
  return 0;
}

template <typename T>
std::optional<T> majority(const std::vector<T>& values) {
  std::map<T, int> counts;
  for (const T& v : values) ++counts[v];
  const T* best = nullptr;
  int best_count = 0;
  for (const auto& [v, c] : counts) {
    if (c > best_count) {
      best = &v;
      best_count = c;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

}  // namespace

int CenTrace::retry_budget() const {
  // Escalate only after a probe demonstrably recovered via retry: that
  // signal is impossible on a clean network, so clean measurements run
  // with exactly `retries` attempts — byte-identical to the base budget.
  if (loss_recovered_probes_ > 0) {
    return std::max(options_.retries, options_.adaptive_max_retries);
  }
  return options_.retries;
}

void CenTrace::backoff_wait(int attempt) {
  if (options_.retry_backoff <= 0 || attempt <= 0) return;
  // Exponential: backoff, 2*backoff, 4*backoff, ... before each retry.
  network_.clock().advance(options_.retry_backoff << (attempt - 1));
}

HopObservation CenTrace::probe(net::Ipv4Address endpoint, const Bytes& payload, int ttl,
                               const std::string& domain, bool allow_retries) {
  HopObservation obs;
  obs.ttl = ttl;
  obs::Observer* o = network_.observer();
  if (o != nullptr) o->tools().trace_probes->inc();
  // Journal the probe's outcome (one event per probe, not per attempt).
  auto journal_probe = [&](const HopObservation& result) {
    if (o == nullptr) return;
    o->journal().record(network_.now(), "probe",
                        domain + " ttl=" + std::to_string(ttl) + " -> " +
                            std::string(probe_response_name(result.response)));
  };

  if (options_.protocol == ProbeProtocol::kDnsUdp) {
    // Connectionless probing: one datagram per attempt, fresh source port.
    const int budget = allow_retries ? retry_budget() : 0;
    for (int attempt = 0; attempt <= budget; ++attempt) {
      backoff_wait(attempt);
      if (attempt > 0 && o != nullptr) o->tools().trace_retries->inc();
      std::vector<sim::Event> events =
          network_.send_udp(client_, endpoint, 53, payload, static_cast<std::uint8_t>(ttl));
      if (events.empty()) continue;
      if (attempt > 0) {
        ++loss_recovered_probes_;
        if (o != nullptr) {
          o->tools().trace_retry_recovered->inc();
          o->journal().record(network_.now(), "retry",
                              domain + " ttl=" + std::to_string(ttl) +
                                  " recovered on attempt " + std::to_string(attempt));
        }
      }
      bool got_icmp = false, got_answer = false;
      for (const sim::Event& ev : events) {
        if (const auto* icmp = std::get_if<sim::IcmpEvent>(&ev)) {
          got_icmp = true;
          if (!obs.icmp_router) {
            obs.icmp_router = icmp->router;
            obs.icmp_quoted = icmp->quoted;
          }
        } else if (const auto* udp = std::get_if<sim::UdpEvent>(&ev)) {
          ProbeResponse r = classify_udp_dns(udp->datagram);
          if (response_rank(r) > response_rank(obs.response)) {
            obs.response = r;
            // Record the datagram's network envelope as the injected-packet
            // fingerprint (ports sit at the same header offsets as TCP's).
            net::Packet carrier;
            carrier.ip = udp->datagram.ip;
            carrier.tcp.src_port = udp->datagram.udp.src_port;
            carrier.tcp.dst_port = udp->datagram.udp.dst_port;
            carrier.payload = udp->datagram.payload;
            obs.tcp_packet = std::move(carrier);
          }
          got_answer = true;
        }
      }
      if (got_icmp) icmp_seen_ = true;
      if (got_icmp &&
          response_rank(obs.response) < response_rank(ProbeResponse::kIcmpTtlExceeded)) {
        obs.response = ProbeResponse::kIcmpTtlExceeded;
      }
      obs.tcp_and_icmp = got_icmp && got_answer;
      journal_probe(obs);
      return obs;
    }
    obs.response = ProbeResponse::kTimeout;
    journal_probe(obs);
    return obs;
  }

  const std::uint16_t port = options_.protocol == ProbeProtocol::kHttps ? 443
                             : options_.protocol == ProbeProtocol::kDns ? 53
                                                                        : 80;

  const int budget = allow_retries ? retry_budget() : 0;
  for (int attempt = 0; attempt <= budget; ++attempt) {
    backoff_wait(attempt);
    if (attempt > 0 && o != nullptr) o->tools().trace_retries->inc();
    sim::Connection conn = network_.open_connection(client_, endpoint, port);
    if (conn.connect() != sim::ConnectResult::kEstablished) continue;
    // Reuse one event buffer across every probe of the instance: a sweep
    // fires max_ttl x repetitions sends, and the per-send vector was a
    // measurable slice of the malloc load.
    std::vector<sim::Event>& events = events_scratch_;
    conn.send_into(payload, static_cast<std::uint8_t>(ttl), events);
    if (events.empty()) continue;  // transient loss or genuine drop: retry
    if (attempt > 0) {
      ++loss_recovered_probes_;
      if (o != nullptr) {
        o->tools().trace_retry_recovered->inc();
        o->journal().record(network_.now(), "retry",
                            domain + " ttl=" + std::to_string(ttl) +
                                " recovered on attempt " + std::to_string(attempt));
      }
    }

    obs.sent = conn.last_sent();
    bool got_icmp = false;
    bool got_tcp = false;
    for (const sim::Event& ev : events) {
      if (const auto* icmp = std::get_if<sim::IcmpEvent>(&ev)) {
        got_icmp = true;
        if (!obs.icmp_router) {
          obs.icmp_router = icmp->router;
          obs.icmp_quoted = icmp->quoted;
        }
      } else if (const auto* tcp = std::get_if<sim::TcpEvent>(&ev)) {
        ProbeResponse r = classify_tcp(tcp->packet);
        if (response_rank(r) > response_rank(obs.response)) {
          obs.response = r;
          obs.tcp_packet = tcp->packet;
        }
        got_tcp = true;
      }
    }
    if (got_icmp) icmp_seen_ = true;
    if (got_icmp && response_rank(obs.response) < response_rank(ProbeResponse::kIcmpTtlExceeded)) {
      obs.response = ProbeResponse::kIcmpTtlExceeded;
    }
    obs.tcp_and_icmp = got_icmp && got_tcp;
    journal_probe(obs);
    return obs;
  }
  // All attempts timed out.
  obs.response = ProbeResponse::kTimeout;
  journal_probe(obs);
  return obs;
}

SingleTrace CenTrace::sweep(net::Ipv4Address endpoint, const std::string& domain) {
  SingleTrace trace;
  trace.domain = domain;
  obs::Observer* o = network_.observer();
  obs::ScopedSpan span(o != nullptr ? &o->tracer() : nullptr, &network_.clock(),
                       "sweep:" + domain, "centrace");
  const Bytes& payload = payload_for(domain);

  int consecutive_timeouts = 0;
  for (int ttl = 1; ttl <= options_.max_ttl; ++ttl) {
    trace.hops.push_back(probe(endpoint, payload, ttl, domain,
                               /*allow_retries=*/!trace.channel_dead));
    // Move-constructed in place above (a HopObservation carries whole
    // packets); read it back by reference.
    const HopObservation& obs = trace.hops.back();
    // Stateful censors track flows for a window; CenTrace spaces probes out
    // (the simulated clock makes the 120 s wait free).
    network_.clock().advance(options_.inter_probe_wait);

    switch (obs.response) {
      case ProbeResponse::kTimeout:
        ++consecutive_timeouts;
        // Early abort under total ICMP starvation (satellite fix): every
        // hop so far silent, no ICMP anywhere in this measurement, and no
        // retry ever recovered (so the silence cannot be transient loss)
        // — the ICMP channel is dead; stop burning the retry/backoff
        // budget on hops that can never answer. The sweep still walks on
        // (single attempts) so the endpoint distance and the verdict are
        // unchanged; only wasted retries are skipped.
        if (!trace.channel_dead && options_.silent_channel_abort > 0 &&
            consecutive_timeouts == ttl && ttl >= options_.silent_channel_abort &&
            !icmp_seen_ && loss_recovered_probes_ == 0) {
          trace.channel_dead = true;
          ++dead_channel_sweeps_;
          if (o != nullptr) {
            o->tools().trace_channel_dead->inc();
            o->journal().record(network_.now(), "channel_dead",
                                domain + " silent through ttl=" + std::to_string(ttl));
          }
        }
        if (consecutive_timeouts >= options_.timeout_run_stop) {
          trace.terminating_ttl = ttl - consecutive_timeouts + 1;
          trace.terminating_response = ProbeResponse::kTimeout;
          return trace;
        }
        break;
      case ProbeResponse::kIcmpTtlExceeded:
        consecutive_timeouts = 0;
        break;
      case ProbeResponse::kEndpointData:
        trace.terminating_ttl = ttl;
        trace.terminating_response = ProbeResponse::kEndpointData;
        trace.endpoint_reached = true;
        return trace;
      case ProbeResponse::kTcpRst:
      case ProbeResponse::kTcpFin:
      case ProbeResponse::kBlockpage:
        consecutive_timeouts = 0;
        if (!obs.tcp_and_icmp) {
          // "Only a terminating response" — the sweep is done (Fig. 2 B/E).
          trace.terminating_ttl = ttl;
          trace.terminating_response = obs.response;
          return trace;
        }
        // Injected response alongside ICMP (on-path, Fig. 2 D): keep
        // probing to collect the full evidence trail.
        break;
    }
  }
  // Max TTL reached without a terminating response: treat a trailing
  // timeout run as the terminator if one exists.
  for (std::size_t i = trace.hops.size(); i-- > 0;) {
    if (trace.hops[i].response != ProbeResponse::kTimeout) {
      if (i + 1 < trace.hops.size()) {
        trace.terminating_ttl = trace.hops[i + 1].ttl;
        trace.terminating_response = ProbeResponse::kTimeout;
      }
      return trace;
    }
  }
  return trace;
}

CenTraceReport CenTrace::measure(net::Ipv4Address endpoint, const std::string& test_domain,
                                 const std::string& control_domain) {
  CenTraceReport report;
  report.test_domain = test_domain;
  report.control_domain = control_domain;
  report.endpoint = endpoint;
  report.protocol = options_.protocol;

  obs::Observer* o = network_.observer();
  obs::ScopedSpan span(o != nullptr ? &o->tracer() : nullptr, &network_.clock(),
                       "centrace:" + test_domain, "centrace");
  if (o != nullptr) o->tools().trace_measurements->inc();

  loss_recovered_probes_ = 0;
  icmp_seen_ = false;
  dead_channel_sweeps_ = 0;
  for (int rep = 0; rep < options_.repetitions; ++rep) {
    report.control_traces.push_back(sweep(endpoint, control_domain));
  }
  for (int rep = 0; rep < options_.repetitions; ++rep) {
    report.test_traces.push_back(sweep(endpoint, test_domain));
  }
  aggregate(report);
  score_confidence(report);
  assess_degradation(report);
  if (o != nullptr) {
    if (report.blocked) o->tools().trace_blocked->inc();
    // Milli-units keep the histogram integral (determinism contract).
    o->tools().trace_confidence->observe(
        static_cast<std::uint64_t>(report.confidence.overall * 1000.0 + 0.5));
  }
  return report;
}

void CenTrace::assess_degradation(CenTraceReport& report) const {
  DegradationInfo& d = report.degradation;

  // Channel health: how often control-sweep hops that *could* have
  // answered with an ICMP quote actually did. Terminating data/injection
  // responses are neither answers nor timeouts.
  std::uint64_t answers = 0;
  std::uint64_t timeouts = 0;
  for (const SingleTrace& t : report.control_traces) {
    for (const HopObservation& h : t.hops) {
      if (h.response == ProbeResponse::kIcmpTtlExceeded) {
        ++answers;
      } else if (h.response == ProbeResponse::kTimeout) {
        ++timeouts;
      }
    }
  }
  d.icmp_answer_rate = (answers + timeouts) == 0
                           ? 1.0
                           : static_cast<double>(answers) /
                                 static_cast<double>(answers + timeouts);
  d.dead_channel_sweeps = dead_channel_sweeps_;
  d.vantage_count = 1;

  if (!report.blocked) {
    d.mode = DegradationMode::kFull;
    return;
  }
  const bool localized = report.blocking_hop_ip.has_value() &&
                         report.location != BlockingLocation::kNoIcmp;
  if (!localized) {
    // Escalation candidate: measure_with_degradation may upgrade this to
    // kTomography when the solver produces a candidate link set.
    d.mode = DegradationMode::kUnlocalized;
    return;
  }
  // Hop localised — but flag starvation when the quotes it rests on were
  // visibly rationed (rate-limit signature, a mostly-silent control path,
  // or sweeps the early-abort heuristic declared dead).
  const bool starved = report.confidence.icmp_rate_limited ||
                       d.icmp_answer_rate < 0.5 || d.dead_channel_sweeps > 0;
  d.mode = starved ? DegradationMode::kIcmpDegraded : DegradationMode::kFull;
}

void CenTrace::score_confidence(CenTraceReport& report) const {
  TraceConfidence& c = report.confidence;
  c.loss_recovered_probes = loss_recovered_probes_;

  // ---- Control-path stability: per-hop agreement across control sweeps.
  // A hop counts as stable if the sweeps that probed it agree — either on
  // one router IP, or on consistent silence (a genuinely quiet router is
  // not evidence of unreliability; *mixed* silence is).
  const std::size_t max_hops = report.control_path.size();
  c.hop_confidence.assign(max_hops, 1.0);
  double stability_sum = 0.0;
  int stability_hops = 0;
  for (std::size_t h = 0; h < max_hops; ++h) {
    std::map<std::uint32_t, int> votes;
    int timeouts = 0;
    for (const SingleTrace& t : report.control_traces) {
      if (h >= t.hops.size()) continue;
      const HopObservation& obs = t.hops[h];
      if (obs.icmp_router) {
        ++votes[obs.icmp_router->value()];
      } else if (obs.response == ProbeResponse::kTimeout) {
        ++timeouts;
      }
      // Endpoint-data / injected terminators are not router evidence.
    }
    int answered = 0, best_ip = 0;
    for (const auto& [ip, n] : votes) {
      answered += n;
      best_ip = std::max(best_ip, n);
    }
    const int observed = answered + timeouts;
    if (observed == 0) continue;  // hop beyond every sweep's reach
    const double share =
        static_cast<double>(std::max(best_ip, timeouts)) / observed;
    c.hop_confidence[h] = share;
    stability_sum += share;
    ++stability_hops;
    if (votes.size() >= 2) c.path_churn = true;
    // Same single router both answering and timing out at one hop: the
    // router exists and responds, so the gaps are rate limiting or loss.
    if (votes.size() == 1 && timeouts > 0 && answered > 0) {
      c.icmp_rate_limited = true;
    }
  }
  c.control_path_stability =
      stability_hops > 0 ? stability_sum / stability_hops : 1.0;

  // ---- Test-sweep agreement on the verdict.
  std::vector<ProbeResponse> responses;
  for (const SingleTrace& t : report.test_traces) {
    responses.push_back(t.terminating_response);
  }
  if (auto maj = majority(responses)) {
    int agree = 0;
    std::vector<int> ttls;
    for (const SingleTrace& t : report.test_traces) {
      if (t.terminating_response != *maj) continue;
      ++agree;
      if (t.terminating_ttl > 0) ttls.push_back(t.terminating_ttl);
    }
    c.response_agreement = static_cast<double>(agree) / responses.size();
    if (!ttls.empty()) {
      auto maj_ttl = majority(ttls);
      int ttl_agree = 0;
      for (int ttl : ttls) {
        if (maj_ttl && ttl == *maj_ttl) ++ttl_agree;
      }
      c.ttl_agreement = static_cast<double>(ttl_agree) / ttls.size();
    }
  }

  // ---- Composite score: agreement dominates, stability and churn shade
  // it. All factors are 1.0 (and the flags false) on a clean network.
  c.overall = c.response_agreement * (0.5 + 0.5 * c.ttl_agreement) *
              (0.5 + 0.5 * c.control_path_stability);
  if (c.icmp_rate_limited) c.overall *= 0.9;
  if (c.path_churn) c.overall *= 0.9;
  c.overall = std::clamp(c.overall, 0.0, 1.0);
}

void CenTrace::aggregate(CenTraceReport& report) const {
  // ---- Control-path reconstruction (majority vote per hop). ----
  std::size_t max_hops = 0;
  for (const SingleTrace& t : report.control_traces) {
    max_hops = std::max(max_hops, t.hops.size());
  }
  report.control_path.assign(max_hops, std::nullopt);
  for (std::size_t h = 0; h < max_hops; ++h) {
    std::vector<std::uint32_t> ips;
    for (const SingleTrace& t : report.control_traces) {
      if (h < t.hops.size() && t.hops[h].icmp_router) {
        ips.push_back(t.hops[h].icmp_router->value());
      }
    }
    if (auto m = majority(ips)) report.control_path[h] = net::Ipv4Address(*m);
  }

  // Endpoint distance from control sweeps that reached it.
  {
    std::vector<int> dists;
    for (const SingleTrace& t : report.control_traces) {
      if (t.endpoint_reached) dists.push_back(t.terminating_ttl);
    }
    if (auto m = majority(dists)) report.endpoint_hop_distance = *m;
  }

  // Tracebox quote analysis: one diff per distinct responding router.
  {
    obs::Observer* o = network_.observer();
    std::map<std::uint32_t, bool> seen;
    for (const SingleTrace& t : report.control_traces) {
      for (const HopObservation& h : t.hops) {
        if (!h.icmp_router || !h.icmp_quoted) continue;
        if (seen.emplace(h.icmp_router->value(), true).second) {
          report.quote_diffs.push_back(diff_quote(h.sent, *h.icmp_quoted, *h.icmp_router));
          if (o != nullptr) {
            const QuoteDiff& d = report.quote_diffs.back();
            o->journal().record(
                network_.now(), "quote_diff",
                h.icmp_router->str() +
                    (d.tos_changed ? " tos_changed" : "") +
                    (d.ip_flags_changed ? " ip_flags_changed" : "") +
                    (d.rfc792_minimal ? " rfc792_minimal" : "") +
                    (d.full_tcp_quoted ? " full_tcp" : ""));
          }
        }
      }
    }
  }

  // ---- Test-sweep aggregation. ----
  std::vector<ProbeResponse> responses;
  for (const SingleTrace& t : report.test_traces) responses.push_back(t.terminating_response);
  std::optional<ProbeResponse> maj_resp = majority(responses);
  if (!maj_resp) return;

  if (*maj_resp == ProbeResponse::kEndpointData) {
    report.blocked = false;
    report.location = BlockingLocation::kNotBlocked;
    return;
  }

  // Majority terminating TTL among sweeps agreeing on the response type.
  std::vector<int> term_ttls;
  for (const SingleTrace& t : report.test_traces) {
    if (t.terminating_response == *maj_resp && t.terminating_ttl > 0) {
      term_ttls.push_back(t.terminating_ttl);
    }
  }
  std::optional<int> maj_ttl = majority(term_ttls);
  if (!maj_ttl) return;
  int terminating_ttl = *maj_ttl;

  // Timeout terminations are only blocking if the Control sweep got through.
  if (*maj_resp == ProbeResponse::kTimeout &&
      (report.endpoint_hop_distance < 0 || terminating_ttl > report.endpoint_hop_distance)) {
    report.blocked = false;
    report.location = BlockingLocation::kNotBlocked;
    return;
  }

  report.blocked = true;
  switch (*maj_resp) {
    case ProbeResponse::kTimeout: report.blocking_type = BlockingType::kTimeout; break;
    case ProbeResponse::kTcpRst: report.blocking_type = BlockingType::kRst; break;
    case ProbeResponse::kTcpFin: report.blocking_type = BlockingType::kFin; break;
    case ProbeResponse::kBlockpage: report.blocking_type = BlockingType::kHttpBlockpage; break;
    default: break;
  }

  // Representative injected packet + blockpage vendor label.
  for (const SingleTrace& t : report.test_traces) {
    if (t.terminating_response != *maj_resp || t.terminating_ttl != terminating_ttl) continue;
    for (const HopObservation& h : t.hops) {
      if (h.ttl == terminating_ttl && h.tcp_packet) {
        report.injected_packet = h.tcp_packet;
        if (*maj_resp == ProbeResponse::kBlockpage) {
          if (auto resp = net::HttpResponse::parse(to_string(h.tcp_packet->payload))) {
            report.blockpage_vendor = censor::match_blockpage(resp->body);
          }
        }
        break;
      }
    }
    if (report.injected_packet) break;
  }

  // On-path detection: a majority of test sweeps saw an injected response
  // *and* an ICMP Time Exceeded at the same TTL (Fig. 2 D).
  {
    std::vector<int> onpath_first_hops;
    int onpath_traces = 0;
    for (const SingleTrace& t : report.test_traces) {
      for (const HopObservation& h : t.hops) {
        if (h.tcp_and_icmp) {
          onpath_first_hops.push_back(h.ttl);
          ++onpath_traces;
          break;
        }
      }
    }
    if (onpath_traces * 2 > static_cast<int>(report.test_traces.size())) {
      report.placement = DevicePlacement::kOnPath;
      if (auto m = majority(onpath_first_hops)) terminating_ttl = *m;
    } else {
      report.placement = DevicePlacement::kInPath;
    }
  }

  // TTL-copy detection (Fig. 2 E): the injected reset arrives with TTL ≤ 1,
  // meaning the device copied the probe's remaining TTL — the reset is only
  // visible once the probe TTL is ~twice the device distance.
  int corrected_ttl = terminating_ttl;
  if (report.injected_packet && report.injected_packet->ip.ttl <= 1 &&
      (report.blocking_type == BlockingType::kRst ||
       report.blocking_type == BlockingType::kFin)) {
    report.ttl_copy_detected = true;
    corrected_ttl = (terminating_ttl + 1) / 2;
  }

  // Location classification uses the *observed* terminating hop (the paper
  // reports Past-E cases as observed, then corrects for localisation).
  if (report.endpoint_hop_distance > 0 && terminating_ttl > report.endpoint_hop_distance) {
    report.location = BlockingLocation::kPastEndpoint;
  } else if (terminating_ttl == report.endpoint_hop_distance) {
    report.location = BlockingLocation::kAtEndpoint;
  } else {
    report.location = BlockingLocation::kOnPathToEndpoint;
  }

  // "No ICMP": neither the blocking hop nor its predecessor ever answered
  // in the Control sweeps, so the device cannot be localised.
  auto control_ip_at = [&](int ttl) -> std::optional<net::Ipv4Address> {
    if (ttl < 1 || ttl > static_cast<int>(report.control_path.size())) return std::nullopt;
    return report.control_path[static_cast<std::size_t>(ttl - 1)];
  };
  bool hop_silent = !control_ip_at(corrected_ttl).has_value() &&
                    corrected_ttl != report.endpoint_hop_distance;
  bool prev_silent = corrected_ttl > 1 && !control_ip_at(corrected_ttl - 1).has_value();
  if (report.location == BlockingLocation::kOnPathToEndpoint && hop_silent && prev_silent) {
    report.location = BlockingLocation::kNoIcmp;
  }

  report.blocking_hop_ttl = corrected_ttl;
  report.blocking_hop_ip = control_ip_at(corrected_ttl);
  if (report.blocking_hop_ip) {
    report.blocking_as = network_.geodb().lookup(*report.blocking_hop_ip);
  }
}

CenTraceReport run(sim::Network& network, const TraceRunOptions& options,
                   obs::Observer* observer) {
  sim::ScopedObserver guard(network, observer);
  if (options.common.seed) network.reset_epoch(*options.common.seed);
  CenTraceOptions trace = options.trace;
  trace.apply(options.common);
  return measure_with_degradation(network, options.client, options.endpoint,
                                  options.test_domain, options.control_domain,
                                  trace, options.degradation);
}

}  // namespace cen::trace
