#include "tomography/tomography.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/fingerprint.hpp"
#include "core/rng.hpp"

namespace cen::tomo {

std::size_t ObservationMatrix::blocked_count() const {
  std::size_t n = 0;
  for (const PathObservation& row : rows_) {
    if (row.blocked) ++n;
  }
  return n;
}

std::uint64_t SolverOptions::fingerprint() const {
  FingerprintBuilder fp;
  fp.mix(static_cast<std::uint64_t>(max_cover_size));
  fp.mix(static_cast<std::uint64_t>(max_candidates));
  fp.mix(static_cast<std::uint64_t>(max_suspects));
  return fp.digest();
}

namespace {

std::vector<LinkId> path_links(const std::vector<sim::NodeId>& path) {
  std::vector<LinkId> links;
  if (path.size() < 2) return links;
  links.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    links.emplace_back(path[i], path[i + 1]);
  }
  return links;
}

/// Does `cover` (indices into the suspect universe) hit every row?
bool covers_all(const std::vector<std::vector<int>>& row_suspects,
                const std::vector<int>& cover) {
  for (const std::vector<int>& row : row_suspects) {
    bool hit = false;
    for (int link : row) {
      if (std::binary_search(cover.begin(), cover.end(), link)) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

/// Enumerate every k-subset of [0, n) in lexicographic order, collecting
/// the ones that cover all rows. Branch-and-bound: a branch is cut when
/// even taking every remaining index cannot reach cardinality k.
void enumerate_covers(const std::vector<std::vector<int>>& row_suspects, int n, int k,
                      std::vector<int>& prefix, int next,
                      std::vector<std::vector<int>>& covers, std::uint64_t& iterations) {
  if (static_cast<int>(prefix.size()) == k) {
    ++iterations;
    if (covers_all(row_suspects, prefix)) covers.push_back(prefix);
    return;
  }
  const int needed = k - static_cast<int>(prefix.size());
  for (int i = next; i <= n - needed; ++i) {
    prefix.push_back(i);
    enumerate_covers(row_suspects, n, k, prefix, i + 1, covers, iterations);
    prefix.pop_back();
  }
}

}  // namespace

TomographyResult solve(const ObservationMatrix& matrix, const SolverOptions& options) {
  TomographyResult out;
  out.observations = static_cast<int>(matrix.size());

  // Exonerate every link a clean row traversed: a domain-selective
  // censor on that link would have blocked the test probe.
  std::set<LinkId> exonerated;
  for (const PathObservation& row : matrix.rows()) {
    if (row.blocked) continue;
    for (const LinkId& link : path_links(row.path)) exonerated.insert(link);
  }

  // Per-blocked-row suspect sets and the global suspect tally.
  std::map<LinkId, int> blocked_tally;  // link -> blocked rows traversing it
  std::vector<std::vector<LinkId>> blocked_rows;
  for (const PathObservation& row : matrix.rows()) {
    if (!row.blocked) continue;
    ++out.blocked_observations;
    std::vector<LinkId> suspects;
    for (const LinkId& link : path_links(row.path)) {
      if (exonerated.count(link) != 0) continue;
      if (std::find(suspects.begin(), suspects.end(), link) == suspects.end()) {
        suspects.push_back(link);
      }
    }
    if (suspects.empty()) {
      // Every link on this path is exonerated: the blocking cause is not
      // a link this matrix can see. Excluded from the cover requirement.
      ++out.unexplained_observations;
      continue;
    }
    for (const LinkId& link : suspects) ++blocked_tally[link];
    blocked_rows.push_back(std::move(suspects));
  }
  if (blocked_rows.empty()) return out;  // nothing to explain

  // Suspect universe, sorted by LinkId for a permutation-invariant
  // enumeration order. Cap it by dropping the links implicated by the
  // fewest blocked rows (ties broken by LinkId, still deterministic).
  std::vector<LinkId> universe;
  universe.reserve(blocked_tally.size());
  for (const auto& [link, n] : blocked_tally) universe.push_back(link);
  if (static_cast<int>(universe.size()) > options.max_suspects) {
    std::stable_sort(universe.begin(), universe.end(),
                     [&](const LinkId& x, const LinkId& y) {
                       return blocked_tally[x] > blocked_tally[y];
                     });
    universe.resize(static_cast<std::size_t>(options.max_suspects));
    std::sort(universe.begin(), universe.end());
    // Rows whose every suspect was dropped cannot be covered any more;
    // demote them to unexplained so the solver stays consistent.
    std::vector<std::vector<LinkId>> kept;
    for (std::vector<LinkId>& row : blocked_rows) {
      std::vector<LinkId> filtered;
      for (const LinkId& link : row) {
        if (std::binary_search(universe.begin(), universe.end(), link)) {
          filtered.push_back(link);
        }
      }
      if (filtered.empty()) {
        ++out.unexplained_observations;
      } else {
        kept.push_back(std::move(filtered));
      }
    }
    blocked_rows = std::move(kept);
    if (blocked_rows.empty()) return out;
  }

  std::map<LinkId, int> link_index;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    link_index[universe[i]] = static_cast<int>(i);
  }
  std::vector<std::vector<int>> row_suspects;
  row_suspects.reserve(blocked_rows.size());
  for (const std::vector<LinkId>& row : blocked_rows) {
    std::vector<int> indices;
    for (const LinkId& link : row) indices.push_back(link_index[link]);
    std::sort(indices.begin(), indices.end());
    row_suspects.push_back(std::move(indices));
  }

  // Minimal hitting sets: the first cardinality k with any cover is the
  // minimum, and (since no (k-1)-cover exists) every k-cover found is
  // irredundant. Confidence = share of minimal covers containing a link.
  const int n = static_cast<int>(universe.size());
  std::vector<std::vector<int>> covers;
  for (int k = 1; k <= options.max_cover_size && k <= n; ++k) {
    std::vector<int> prefix;
    enumerate_covers(row_suspects, n, k, prefix, 0, covers, out.solver_iterations);
    if (!covers.empty()) {
      out.cover_size = k;
      break;
    }
  }
  if (covers.empty()) return out;  // no cover within the size bound
  out.solved = true;

  std::vector<int> appearances(static_cast<std::size_t>(n), 0);
  for (const std::vector<int>& cover : covers) {
    for (int idx : cover) ++appearances[static_cast<std::size_t>(idx)];
  }
  for (int i = 0; i < n; ++i) {
    if (appearances[static_cast<std::size_t>(i)] == 0) continue;
    LinkBlame blame;
    blame.link = universe[static_cast<std::size_t>(i)];
    blame.confidence = static_cast<double>(appearances[static_cast<std::size_t>(i)]) /
                       static_cast<double>(covers.size());
    blame.blocked_paths = blocked_tally[blame.link];
    blame.clean_paths = 0;
    out.candidates.push_back(blame);
  }
  std::sort(out.candidates.begin(), out.candidates.end(),
            [](const LinkBlame& x, const LinkBlame& y) {
              if (x.confidence != y.confidence) return x.confidence > y.confidence;
              return x.link < y.link;
            });
  if (static_cast<int>(out.candidates.size()) > options.max_candidates) {
    out.candidates.resize(static_cast<std::size_t>(options.max_candidates));
  }
  return out;
}

std::vector<SimTime> probe_round_delays(std::uint64_t network_seed, std::uint64_t salt,
                                        int vantage_index, int rounds,
                                        SimTime base_spacing) {
  // Substream derivation mirrors scenario::derive_task_seeds: the stream
  // depends only on (seed, salt, vantage), never on execution order.
  Rng rng(mix64(mix64(network_seed ^ salt) ^
                (0x76616e74ull + static_cast<std::uint64_t>(vantage_index))));
  std::vector<SimTime> delays;
  delays.reserve(static_cast<std::size_t>(std::max(rounds, 0)));
  for (int r = 0; r < rounds; ++r) {
    const SimTime jitter =
        base_spacing > 0 ? static_cast<SimTime>(rng.uniform(base_spacing)) : 0;
    delays.push_back(base_spacing + jitter);
  }
  return delays;
}

}  // namespace cen::tomo
