// Boolean network tomography — blocking-link localisation without ICMP.
//
// When on-path routers blackhole or rate-limit ICMP, CenTrace's TTL
// ladder goes blind: no Time Exceeded quotes means no per-hop evidence.
// "A Churn for the Better" (PAPERS.md) shows the measurement can degrade
// instead of die: probe the *same* destination from several vantage
// points (and across route churn, so ECMP spreads the flows over
// different paths), record only the end-to-end boolean outcome per path
// — blocked or clean — and solve for the smallest set of links whose
// removal explains every blocked path while touching no clean one.
//
// The model is deliberately asymmetric, matching censorship semantics:
//   - a CLEAN path (test probe elicited genuine endpoint data)
//     exonerates every link it traverses — a domain-selective censor on
//     any of them would have fired;
//   - a BLOCKED path implicates *at least one* of its non-exonerated
//     links;
//   - control-probe success exonerates nothing (censors pass control
//     traffic by design), so callers must only add rows whose verdict
//     came from test-domain probes.
//
// The solver enumerates every minimal-cardinality hitting set over the
// suspect links (branch-and-bound over sorted link indices) and blames
// each link with the share of minimal covers containing it — per-link
// confidence that is exactly 1.0 when the data pins a single link and
// fractions toward 1/k across k indistinguishable candidates.
//
// Everything here is pure and deterministic: observation rows are value
// types, link identities are normalised (a < b), and the enumeration
// order is fixed by NodeId, so the result is invariant under permutation
// of vantages or row insertion order (locked by a cencheck invariant).
#pragma once

#include <cstdint>
#include <vector>

#include "core/clock.hpp"
#include "netsim/topology.hpp"

namespace cen::tomo {

/// Undirected link identity, normalised so (a, b) == (b, a).
struct LinkId {
  sim::NodeId a = sim::kInvalidNode;
  sim::NodeId b = sim::kInvalidNode;

  LinkId() = default;
  LinkId(sim::NodeId x, sim::NodeId y) : a(x < y ? x : y), b(x < y ? y : x) {}

  bool operator==(const LinkId& o) const { return a == o.a && b == o.b; }
  bool operator!=(const LinkId& o) const { return !(*this == o); }
  bool operator<(const LinkId& o) const {
    return a != o.a ? a < o.a : b < o.b;
  }
};

/// One end-to-end path measurement: the node path a probe took and the
/// boolean verdict of its test-domain probe.
struct PathObservation {
  std::vector<sim::NodeId> path;  // client ... endpoint, in hop order
  bool blocked = false;
  int vantage = 0;  // informational label; never affects the solution
};

/// The path-observation matrix: rows are PathObservations, columns
/// (implicitly) the links those paths traverse.
class ObservationMatrix {
 public:
  void add(PathObservation obs) { rows_.push_back(std::move(obs)); }

  const std::vector<PathObservation>& rows() const { return rows_; }
  std::size_t size() const { return rows_.size(); }
  std::size_t blocked_count() const;

 private:
  std::vector<PathObservation> rows_;
};

/// A candidate blocking link with its blame evidence.
struct LinkBlame {
  LinkId link;
  /// Share of minimal covers that include this link (1.0 = every
  /// minimal explanation needs it).
  double confidence = 0.0;
  /// Blocked rows whose path traverses this link (rows it could explain).
  int blocked_paths = 0;
  /// Clean rows traversing it — always 0 for candidates (clean rows
  /// exonerate), kept to make the invariant visible in reports.
  int clean_paths = 0;
};

struct SolverOptions {
  /// Largest hitting-set cardinality tried before giving up. Censorship
  /// deployments have few devices; 4 already covers multi-device cases.
  int max_cover_size = 4;
  /// Candidates reported (highest confidence first).
  int max_candidates = 16;
  /// Suspect-universe cap: if more links survive exoneration, the ones
  /// implicated by the fewest blocked rows are dropped first.
  int max_suspects = 28;

  std::uint64_t fingerprint() const;
};

struct TomographyResult {
  /// True when at least one minimal cover explains every blocked row.
  bool solved = false;
  /// Candidate links, sorted by confidence descending then LinkId.
  std::vector<LinkBlame> candidates;
  /// Cardinality of the minimal covers found (0 when unsolved).
  int cover_size = 0;
  int observations = 0;
  int blocked_observations = 0;
  /// Blocked rows with every link exonerated — evidence of a non-link
  /// cause (endpoint failure, vantage-local filtering); they are
  /// excluded from the cover requirement but reported.
  int unexplained_observations = 0;
  /// Subset-evaluation count (work bound; deterministic).
  std::uint64_t solver_iterations = 0;
};

/// Solve the minimal-blocking-link-set problem over `matrix`.
TomographyResult solve(const ObservationMatrix& matrix, const SolverOptions& options = {});

/// Deterministic per-vantage probe-round delays for the multi-vantage
/// scheduler. Each vantage gets its own forked substream (seeded from
/// the network seed + stage salt + vantage index alone), so the schedule
/// is byte-identical regardless of thread interleaving, and the jittered
/// spacing walks the probes across route-flap epochs instead of
/// resampling one frozen path.
std::vector<SimTime> probe_round_delays(std::uint64_t network_seed, std::uint64_t salt,
                                        int vantage_index, int rounds,
                                        SimTime base_spacing);

}  // namespace cen::tomo
