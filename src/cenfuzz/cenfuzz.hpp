// CenFuzz runner (paper §6.2): deterministic fuzzing of blocked connections.
//
// For each strategy permutation the runner issues four logical requests —
// Normal Test, Normal Control, Permuted Test, Permuted Control — and
// classifies the permutation:
//   successful      Normal Test blocked, Permuted Test NOT blocked,
//                   Permuted Control NOT blocked (the mutation evades);
//   not successful  Normal Test blocked, Permuted Test blocked,
//                   Permuted Control NOT blocked (the rule still fires);
//   untestable      anything else (endpoint rejects the mutation outright,
//                   control blocked, or no blocking to begin with).
// A *circumvention* additionally requires the permuted Test request to
// fetch legitimate content from the endpoint (§6.3's distinction between
// evasion and circumvention).
//
// Blocking is judged conservatively exactly as in §4.1: repeated packet
// drops, connection resets, or a known blockpage.
#pragma once

#include <string>
#include <vector>

#include "cenfuzz/strategies.hpp"
#include "core/clock.hpp"
#include "netsim/engine.hpp"
#include "tool/options.hpp"

namespace cen::fuzz {

enum class FuzzOutcome : std::uint8_t { kNotSuccessful, kSuccessful, kUntestable };
std::string_view fuzz_outcome_name(FuzzOutcome o);

/// How one request terminated.
enum class RequestResult : std::uint8_t {
  kOk,          // got an application response (any status / handshake / alert)
  kDropTimeout, // repeated packet drops
  kRst,
  kFin,
  kBlockpage,
};
bool request_blocked(RequestResult r);

struct FuzzMeasurement {
  std::string strategy;
  std::string permutation;
  bool https = false;
  RequestResult test_result = RequestResult::kOk;
  RequestResult control_result = RequestResult::kOk;
  FuzzOutcome outcome = FuzzOutcome::kUntestable;
  bool circumvented = false;
  /// The permuted Control request was blocked — the per-strategy baseline
  /// failed (loss or collateral blocking), so this strategy was recorded
  /// as untestable and skipped rather than aborting the run.
  bool baseline_failed = false;
};

struct CenFuzzOptions {
  int retries = 2;  // per-request retries before declaring a drop
  SimTime wait_after_blocked = 120 * kSecond;
  SimTime wait_after_ok = 3 * kSecond;
  bool run_http = true;
  bool run_tls = true;
  /// Rounds of the Normal Test/Control baseline pair, majority-voted.
  /// Raise on lossy networks so one dropped baseline request cannot
  /// write off a whole protocol. 1 = single round (fault-free default).
  int baseline_attempts = 1;

  /// Digest over every option (campaign cache-key component).
  std::uint64_t fingerprint() const;

  /// Apply the shared run fields: `retries` sets the per-request retry
  /// budget (CenFuzz has no backoff notion). Inert when unset.
  void apply(const tool::CommonRunOptions& common) {
    if (common.retries) retries = *common.retries;
  }
};

struct CenFuzzReport {
  net::Ipv4Address endpoint;
  std::string test_domain;
  std::string control_domain;
  /// Baseline blocking state (if the Normal Test request isn't blocked
  /// there is nothing to fuzz and `measurements` stays empty for that
  /// protocol).
  bool http_baseline_blocked = false;
  bool tls_baseline_blocked = false;
  std::vector<FuzzMeasurement> measurements;
  std::size_t total_requests = 0;
  /// Strategies recorded untestable because their own Control baseline
  /// failed (see FuzzMeasurement::baseline_failed).
  std::size_t skipped_strategies = 0;
};

class CenFuzz {
 public:
  CenFuzz(sim::Network& network, sim::NodeId client, CenFuzzOptions options = {});

  /// Fuzz every strategy against one (endpoint, test domain) pair.
  CenFuzzReport run(net::Ipv4Address endpoint, const std::string& test_domain,
                    const std::string& control_domain);

  /// Issue one request and classify its termination (exposed for tests).
  RequestResult issue(net::Ipv4Address endpoint, const FuzzProbe& probe,
                      std::string* response_body = nullptr);

 private:
  bool fetched_legit_content(const std::string& body, const std::string& test_domain,
                             bool https) const;

  sim::Network& network_;
  sim::NodeId client_;
  CenFuzzOptions options_;
};

/// One complete CenFuzz invocation for the unified tool API.
struct FuzzRunOptions {
  sim::NodeId client = sim::kInvalidNode;
  net::Ipv4Address endpoint;
  std::string test_domain;
  std::string control_domain;
  CenFuzzOptions fuzz;
  /// Shared run fields, applied by run() on top of `fuzz`.
  tool::CommonRunOptions common;
};

/// Unified entry point (same shape as trace::run / probe::run): run one
/// fuzzing campaign on `network`, attaching `observer` for its duration
/// (the previous observer is restored on return, exception-safe).
CenFuzzReport run(sim::Network& network, const FuzzRunOptions& options,
                  obs::Observer* observer = nullptr);

}  // namespace cen::fuzz
