#include "cenfuzz/strategies.hpp"

#include <stdexcept>

#include "core/strings.hpp"
#include "net/http.hpp"
#include "net/tls.hpp"

namespace cen::fuzz {

namespace {

// ---- domain-label helpers ----------------------------------------------

std::vector<std::string> labels_of(const std::string& domain) { return split(domain, '.'); }

std::string with_tld(const std::string& domain, const std::string& tld) {
  std::vector<std::string> labels = labels_of(domain);
  if (labels.empty()) return domain;
  labels.back() = tld;
  return join(labels, ".");
}

std::string with_subdomain(const std::string& domain, const std::string& sub) {
  std::vector<std::string> labels = labels_of(domain);
  if (labels.size() >= 3) {
    labels.front() = sub;
    return join(labels, ".");
  }
  return sub + "." + domain;
}

const std::vector<std::string>& alt_tlds() {
  static const std::vector<std::string> kTlds = {"net", "org", "co", "io", "ru",
                                                 "cn", "de", "fr", "uk", "biz"};
  return kTlds;
}

const std::vector<std::string>& alt_subdomains() {
  static const std::vector<std::string> kSubs = {"m",   "wiki", "mail", "blog", "news",
                                                 "dev", "api",  "cdn",  "shop", "app"};
  return kSubs;
}

/// (leading, trailing) pad-character counts — 9 permutations (Table 2).
const std::vector<std::pair<int, int>>& pad_combos() {
  static const std::vector<std::pair<int, int>> kPads = {
      {1, 0}, {2, 0}, {0, 1}, {0, 2}, {1, 1}, {2, 2}, {1, 2}, {2, 1}, {3, 3}};
  return kPads;
}

std::string padded(const std::string& s, int lead, int trail) {
  return std::string(static_cast<std::size_t>(lead), '*') + s +
         std::string(static_cast<std::size_t>(trail), '*');
}

// ---- probe builders ------------------------------------------------------

FuzzProbe http_probe(const std::string& strategy, const std::string& permutation,
                     const net::HttpRequest& req) {
  FuzzProbe p;
  p.strategy = strategy;
  p.permutation = permutation;
  p.https = false;
  p.payload = req.serialize_bytes();
  return p;
}

FuzzProbe tls_probe(const std::string& strategy, const std::string& permutation,
                    const net::ClientHello& ch) {
  FuzzProbe p;
  p.strategy = strategy;
  p.permutation = permutation;
  p.https = true;
  p.payload = ch.serialize();
  return p;
}

using ProbeList = std::vector<FuzzProbe>;

// Each generator expands one Table 2 row.

ProbeList get_word_alt(const std::string& domain) {
  ProbeList out;
  for (const char* method : {"POST", "PUT", "PATCH", "DELETE", "HEAD", ""}) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.method = method;
    out.push_back(http_probe("Get Word Alt.", method[0] ? method : "<empty>", r));
  }
  return out;
}

ProbeList http_word_alt(const std::string& domain) {
  ProbeList out;
  for (const char* version :
       {"HTTP/1.0", "HTTP/0.9", "HTTP/2", "HTTP/3", "HTTP/9", "HTTP/1.2", "HTTP/ 1.1",
        "HTTP /1.1", "XXXX/1.1", "http/1.1", "HTTPS/1.1", "HTP/1.1", "HTTP1.1",
        "HTTP/11", "HTTP/1.1.1", ""}) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.version = version;
    out.push_back(http_probe("Http Word Alt.", version[0] ? version : "<empty>", r));
  }
  return out;
}

ProbeList host_word_alt(const std::string& domain) {
  ProbeList out;
  for (const char* word : {"HostHeader: ", "XXXX: ", "Hostname: ", "Host; ", "Host ",
                           "H0st: ", "x-host: "}) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.host_word = word;
    out.push_back(http_probe("Host Word Alt.", word, r));
  }
  return out;
}

ProbeList path_alt(const std::string& domain) {
  ProbeList out;
  for (const char* path : {"?", "z", "/index.html", "//", "/.", "/abc/def", "*",
                           "/z?q=1"}) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.path = path;
    out.push_back(http_probe("Path Alt.", path, r));
  }
  return out;
}

ProbeList hostname_alt(const std::string& domain) {
  ProbeList out;
  const std::vector<std::pair<std::string, std::string>> perms = {
      {"<empty>", ""},
      {"reversed", reversed(domain)},
      {"doubled", domain + domain},
      {"uppercase", ascii_upper(domain)},
      {"other-domain", "unrelated-example.com"},
  };
  for (const auto& [name, host] : perms) {
    net::HttpRequest r = net::HttpRequest::get(host);
    out.push_back(http_probe("Hostname Alt.", name, r));
  }
  return out;
}

ProbeList hostname_tld_alt(const std::string& domain) {
  ProbeList out;
  for (const std::string& tld : alt_tlds()) {
    net::HttpRequest r = net::HttpRequest::get(with_tld(domain, tld));
    out.push_back(http_probe("Hostname TLD Alt.", "." + tld, r));
  }
  return out;
}

ProbeList hostname_subdomain_alt(const std::string& domain) {
  ProbeList out;
  for (const std::string& sub : alt_subdomains()) {
    net::HttpRequest r = net::HttpRequest::get(with_subdomain(domain, sub));
    out.push_back(http_probe("Host. Subdomain Alt.", sub + ".", r));
  }
  return out;
}

ProbeList header_alt(const std::string& domain) {
  ProbeList out;
  static const char* kNames[] = {"Connection",      "User-Agent", "Accept",
                                 "Accept-Language", "Accept-Encoding", "Referer",
                                 "Cookie",          "X-Forwarded-For"};
  static const char* kValues[] = {"keep-alive", "close", "xxx", "Mozilla/5.0",
                                  "*/*",        "en-US", "1"};
  for (const char* name : kNames) {
    for (const char* value : kValues) {
      net::HttpRequest r = net::HttpRequest::get(domain);
      r.extra_headers.emplace_back(name, value);
      out.push_back(
          http_probe("Header Alt.", std::string(name) + ": " + value, r));
    }
  }
  // Three malformed header lines (56 + 3 = 59, Table 2).
  for (const char* raw : {"X-:", "   :   ", "NoColonHeader"}) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.extra_headers.emplace_back(raw, "");
    out.push_back(http_probe("Header Alt.", raw, r));
  }
  return out;
}

ProbeList get_word_cap(const std::string& domain) {
  ProbeList out;
  for (const std::string& m : case_permutations("GET")) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.method = m;
    out.push_back(http_probe("Get Word Cap.", m, r));
  }
  return out;
}

ProbeList http_word_cap(const std::string& domain) {
  ProbeList out;
  for (const std::string& h : case_permutations("HTTP")) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.version = h + "/1.1";
    out.push_back(http_probe("Http Word Cap.", r.version, r));
  }
  return out;
}

ProbeList host_word_cap(const std::string& domain) {
  ProbeList out;
  for (const std::string& h : case_permutations("Host")) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.host_word = h + ": ";
    out.push_back(http_probe("Host Word Cap.", r.host_word, r));
  }
  return out;
}

ProbeList get_word_rem(const std::string& domain) {
  ProbeList out;
  for (const std::string& m : removal_permutations("GET", 7)) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.method = m;
    out.push_back(http_probe("Get Word Rem.", m.empty() ? "<empty>" : m, r));
  }
  return out;
}

ProbeList http_word_rem(const std::string& domain) {
  ProbeList out;
  for (const std::string& v : removal_permutations("HTTP/1.1", 167)) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.version = v;
    out.push_back(http_probe("Http Word Rem.", v.empty() ? "<empty>" : v, r));
  }
  return out;
}

ProbeList host_word_rem(const std::string& domain) {
  ProbeList out;
  for (const std::string& w : removal_permutations("Host: ", 63)) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.host_word = w;
    out.push_back(http_probe("Host Word Rem.", w.empty() ? "<empty>" : w, r));
  }
  return out;
}

ProbeList http_delimiter_rem(const std::string& domain) {
  ProbeList out;
  const std::vector<std::pair<std::string, std::string>> perms = {
      {"\\r", "\r"}, {"\\n", "\n"}, {"<empty>", ""}};
  for (const auto& [name, delim] : perms) {
    net::HttpRequest r = net::HttpRequest::get(domain);
    r.request_line_delim = delim;
    out.push_back(http_probe("Http Delimiter Rem.", name, r));
  }
  return out;
}

ProbeList hostname_pad(const std::string& domain) {
  ProbeList out;
  for (const auto& [lead, trail] : pad_combos()) {
    net::HttpRequest r = net::HttpRequest::get(padded(domain, lead, trail));
    out.push_back(http_probe("Hostname Pad.",
                             std::to_string(lead) + "*host*" + std::to_string(trail), r));
  }
  return out;
}

// ---- TLS strategies ------------------------------------------------------

const std::vector<net::TlsVersion>& all_versions() {
  static const std::vector<net::TlsVersion> kAll = {
      net::TlsVersion::kTls10, net::TlsVersion::kTls11, net::TlsVersion::kTls12,
      net::TlsVersion::kTls13};
  return kAll;
}

ProbeList min_version_alt(const std::string& domain) {
  ProbeList out;
  for (net::TlsVersion min : all_versions()) {
    net::ClientHello ch = net::ClientHello::make(domain);
    std::vector<net::TlsVersion> offered;
    for (net::TlsVersion v : all_versions()) {
      if (static_cast<std::uint16_t>(v) >= static_cast<std::uint16_t>(min)) {
        offered.push_back(v);
      }
    }
    ch.legacy_version = min;
    ch.set_supported_versions(offered);
    out.push_back(tls_probe("Min Version Alt.", net::tls_version_name(min), ch));
  }
  return out;
}

ProbeList max_version_alt(const std::string& domain) {
  ProbeList out;
  for (net::TlsVersion max : all_versions()) {
    net::ClientHello ch = net::ClientHello::make(domain);
    std::vector<net::TlsVersion> offered;
    for (net::TlsVersion v : all_versions()) {
      if (static_cast<std::uint16_t>(v) <= static_cast<std::uint16_t>(max)) {
        offered.push_back(v);
      }
    }
    ch.legacy_version = std::min(max, net::TlsVersion::kTls12);
    ch.set_supported_versions(offered);
    out.push_back(tls_probe("Max Version Alt.", net::tls_version_name(max), ch));
  }
  return out;
}

ProbeList cipher_suite_alt(const std::string& domain) {
  ProbeList out;
  for (const net::CipherSuite& cs : net::standard_cipher_suites()) {
    net::ClientHello ch = net::ClientHello::make(domain);
    ch.cipher_suites = {cs.code};
    out.push_back(tls_probe("CipherSuite Alt.", std::string(cs.name), ch));
  }
  return out;
}

ProbeList client_certificate_alt(const std::string& domain) {
  ProbeList out;
  const std::vector<std::pair<std::string, std::optional<std::string>>> perms = {
      {"CN=" + domain, domain},
      {"CN=www.test.com", std::string("www.test.com")},
      {"<none>", std::nullopt},
  };
  for (const auto& [name, cn] : perms) {
    net::ClientHello ch = net::ClientHello::make(domain);
    FuzzProbe p = tls_probe("Client Certificate Alt.", name, ch);
    p.client_cert_cn = cn;
    out.push_back(std::move(p));
  }
  return out;
}

ProbeList sni_alt(const std::string& domain) {
  ProbeList out;
  {
    net::ClientHello ch = net::ClientHello::make(domain);
    ch.remove_sni();
    out.push_back(tls_probe("SNI Alt.", "<omitted>", ch));
  }
  for (const auto& [name, sni] :
       std::vector<std::pair<std::string, std::string>>{{"<empty>", ""},
                                                        {"reversed", reversed(domain)},
                                                        {"doubled", domain + domain}}) {
    net::ClientHello ch = net::ClientHello::make(sni);
    out.push_back(tls_probe("SNI Alt.", name, ch));
  }
  return out;
}

ProbeList sni_tld_alt(const std::string& domain) {
  ProbeList out;
  for (const std::string& tld : alt_tlds()) {
    net::ClientHello ch = net::ClientHello::make(with_tld(domain, tld));
    out.push_back(tls_probe("SNI TLD Alt.", "." + tld, ch));
  }
  return out;
}

ProbeList sni_subdomain_alt(const std::string& domain) {
  ProbeList out;
  for (const std::string& sub : alt_subdomains()) {
    net::ClientHello ch = net::ClientHello::make(with_subdomain(domain, sub));
    out.push_back(tls_probe("SNI Subdomain Alt.", sub + ".", ch));
  }
  return out;
}

ProbeList sni_pad(const std::string& domain) {
  ProbeList out;
  for (const auto& [lead, trail] : pad_combos()) {
    net::ClientHello ch = net::ClientHello::make(padded(domain, lead, trail));
    out.push_back(tls_probe("SNI Pad.",
                            std::to_string(lead) + "*sni*" + std::to_string(trail), ch));
  }
  return out;
}

}  // namespace

std::vector<std::string> case_permutations(const std::string& word) {
  std::vector<std::string> out;
  std::size_t n = word.size();
  std::size_t combos = static_cast<std::size_t>(1) << n;
  out.reserve(combos);
  for (std::size_t mask = 0; mask < combos; ++mask) {
    std::string s = word;
    for (std::size_t i = 0; i < n; ++i) {
      char c = s[i];
      s[i] = (mask >> i & 1) ? static_cast<char>(std::toupper(c))
                             : static_cast<char>(std::tolower(c));
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> removal_permutations(const std::string& word, std::size_t limit) {
  std::vector<std::string> out;
  std::size_t n = word.size();
  // Enumerate deletion-index subsets by increasing size, each size in
  // lexicographic combination order.
  for (std::size_t k = 1; k <= n && out.size() < limit; ++k) {
    std::vector<std::size_t> idx(k);
    for (std::size_t i = 0; i < k; ++i) idx[i] = i;
    for (;;) {
      std::string s;
      std::size_t next = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (next < k && idx[next] == i) {
          ++next;
          continue;
        }
        s.push_back(word[i]);
      }
      out.push_back(std::move(s));
      if (out.size() >= limit) break;
      // Advance the combination.
      std::size_t i = k;
      while (i-- > 0) {
        if (idx[i] != i + n - k) {
          ++idx[i];
          for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
          break;
        }
        if (i == 0) {
          i = static_cast<std::size_t>(-1);
          break;
        }
      }
      if (i == static_cast<std::size_t>(-1)) break;
    }
  }
  return out;
}

const std::vector<StrategyInfo>& strategy_catalogue() {
  static const std::vector<StrategyInfo> kCatalogue = {
      {"Alternate", "Get Word Alt.", 6, false},
      {"Alternate", "Http Word Alt.", 16, false},
      {"Alternate", "Host Word Alt.", 7, false},
      {"Alternate", "Path Alt.", 8, false},
      {"Alternate", "Hostname Alt.", 5, false},
      {"Alternate", "Hostname TLD Alt.", 10, false},
      {"Alternate", "Host. Subdomain Alt.", 10, false},
      {"Alternate", "Header Alt.", 59, false},
      {"Capitalize", "Get Word Cap.", 8, false},
      {"Capitalize", "Http Word Cap.", 16, false},
      {"Capitalize", "Host Word Cap.", 16, false},
      {"Remove", "Get Word Rem.", 7, false},
      {"Remove", "Http Word Rem.", 167, false},
      {"Remove", "Host Word Rem.", 63, false},
      {"Remove", "Http Delimiter Rem.", 3, false},
      {"Pad", "Hostname Pad.", 9, false},
      {"Alternate", "Min Version Alt.", 4, true},
      {"Alternate", "Max Version Alt.", 4, true},
      {"Alternate", "CipherSuite Alt.", 25, true},
      {"Alternate", "Client Certificate Alt.", 3, true},
      {"Alternate", "SNI Alt.", 4, true},
      {"Alternate", "SNI TLD Alt.", 10, true},
      {"Alternate", "SNI Subdomain Alt.", 10, true},
      {"Pad", "SNI Pad.", 9, true},
  };
  return kCatalogue;
}

std::vector<FuzzProbe> probes_for_strategy(const std::string& name,
                                           const std::string& domain) {
  if (name == "Get Word Alt.") return get_word_alt(domain);
  if (name == "Http Word Alt.") return http_word_alt(domain);
  if (name == "Host Word Alt.") return host_word_alt(domain);
  if (name == "Path Alt.") return path_alt(domain);
  if (name == "Hostname Alt.") return hostname_alt(domain);
  if (name == "Hostname TLD Alt.") return hostname_tld_alt(domain);
  if (name == "Host. Subdomain Alt.") return hostname_subdomain_alt(domain);
  if (name == "Header Alt.") return header_alt(domain);
  if (name == "Get Word Cap.") return get_word_cap(domain);
  if (name == "Http Word Cap.") return http_word_cap(domain);
  if (name == "Host Word Cap.") return host_word_cap(domain);
  if (name == "Get Word Rem.") return get_word_rem(domain);
  if (name == "Http Word Rem.") return http_word_rem(domain);
  if (name == "Host Word Rem.") return host_word_rem(domain);
  if (name == "Http Delimiter Rem.") return http_delimiter_rem(domain);
  if (name == "Hostname Pad.") return hostname_pad(domain);
  if (name == "Min Version Alt.") return min_version_alt(domain);
  if (name == "Max Version Alt.") return max_version_alt(domain);
  if (name == "CipherSuite Alt.") return cipher_suite_alt(domain);
  if (name == "Client Certificate Alt.") return client_certificate_alt(domain);
  if (name == "SNI Alt.") return sni_alt(domain);
  if (name == "SNI TLD Alt.") return sni_tld_alt(domain);
  if (name == "SNI Subdomain Alt.") return sni_subdomain_alt(domain);
  if (name == "SNI Pad.") return sni_pad(domain);
  throw std::invalid_argument("unknown strategy: " + name);
}

std::vector<FuzzProbe> http_probes(const std::string& domain) {
  std::vector<FuzzProbe> out;
  for (const StrategyInfo& info : strategy_catalogue()) {
    if (info.https) continue;
    std::vector<FuzzProbe> probes = probes_for_strategy(info.name, domain);
    out.insert(out.end(), std::make_move_iterator(probes.begin()),
               std::make_move_iterator(probes.end()));
  }
  return out;
}

std::vector<FuzzProbe> tls_probes(const std::string& domain) {
  std::vector<FuzzProbe> out;
  for (const StrategyInfo& info : strategy_catalogue()) {
    if (!info.https) continue;
    std::vector<FuzzProbe> probes = probes_for_strategy(info.name, domain);
    out.insert(out.end(), std::make_move_iterator(probes.begin()),
               std::make_move_iterator(probes.end()));
  }
  return out;
}

FuzzProbe normal_http_probe(const std::string& domain) {
  return http_probe("Normal", "GET", net::HttpRequest::get(domain));
}

FuzzProbe normal_tls_probe(const std::string& domain) {
  return tls_probe("Normal", "ClientHello", net::ClientHello::make(domain));
}

}  // namespace cen::fuzz
