// CenFuzz strategy catalogue (paper Table 2).
//
// 16 HTTP-request strategies and 8 TLS-ClientHello strategies, each
// expanding to a fixed, deterministic list of permutations — the paper's
// core design point: the *same* probe set is sent to every device, so the
// per-strategy outcome vector is a comparable fingerprint across devices.
// Permutation counts reproduce Table 2 exactly (6/16/7/8/5/10/10/59 for
// the HTTP Alternate family, 8/16/16 Capitalize, 7/167/63/3 Remove, 9 Pad;
// 4/4/25/3/4/10/10/9 for TLS).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/bytes.hpp"

namespace cen::fuzz {

/// One concrete fuzzed probe: exact wire bytes plus bookkeeping.
struct FuzzProbe {
  std::string strategy;     // e.g. "Get Word Alt."
  std::string permutation;  // human-readable descriptor, e.g. "PUT"
  bool https = false;
  Bytes payload;
  /// "Client Certificate Alt." metadata: CN the client would present later
  /// in the handshake (no deployment in the paper inspected it).
  std::optional<std::string> client_cert_cn;
};

/// Catalogue row (Table 2).
struct StrategyInfo {
  std::string category;  // Alternate / Capitalize / Remove / Pad
  std::string name;
  int permutations = 0;
  bool https = false;
};

/// The full Table 2 catalogue, in paper order.
const std::vector<StrategyInfo>& strategy_catalogue();

/// Expand every HTTP strategy for a domain (410 probes).
std::vector<FuzzProbe> http_probes(const std::string& domain);
/// Expand every TLS strategy for a domain (69 probes).
std::vector<FuzzProbe> tls_probes(const std::string& domain);
/// Expand one named strategy only.
std::vector<FuzzProbe> probes_for_strategy(const std::string& name, const std::string& domain);

/// The unfuzzed baseline request ("Normal" in the paper's Fig. 5).
FuzzProbe normal_http_probe(const std::string& domain);
FuzzProbe normal_tls_probe(const std::string& domain);

/// Case permutations of a word (all 2^min(len,limit) combos, deterministic).
std::vector<std::string> case_permutations(const std::string& word);
/// Deterministic subset-removal permutations of a word: all ways to delete
/// 1..len characters, enumerated smallest-deletion-first, capped at `limit`.
std::vector<std::string> removal_permutations(const std::string& word, std::size_t limit);

}  // namespace cen::fuzz
