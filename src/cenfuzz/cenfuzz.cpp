#include "cenfuzz/cenfuzz.hpp"

#include <algorithm>

#include "censor/vendors.hpp"
#include "core/fingerprint.hpp"
#include "core/strings.hpp"
#include "net/http.hpp"
#include "net/tls.hpp"
#include "obs/observer.hpp"

namespace cen::fuzz {

std::uint64_t CenFuzzOptions::fingerprint() const {
  FingerprintBuilder fp;
  fp.mix(static_cast<std::uint64_t>(retries));
  fp.mix(static_cast<std::uint64_t>(wait_after_blocked));
  fp.mix(static_cast<std::uint64_t>(wait_after_ok));
  fp.mix(run_http);
  fp.mix(run_tls);
  fp.mix(static_cast<std::uint64_t>(baseline_attempts));
  return fp.digest();
}

std::string_view fuzz_outcome_name(FuzzOutcome o) {
  switch (o) {
    case FuzzOutcome::kNotSuccessful: return "not-successful";
    case FuzzOutcome::kSuccessful: return "successful";
    case FuzzOutcome::kUntestable: return "untestable";
  }
  return "?";
}

bool request_blocked(RequestResult r) {
  return r == RequestResult::kDropTimeout || r == RequestResult::kRst ||
         r == RequestResult::kFin || r == RequestResult::kBlockpage;
}

CenFuzz::CenFuzz(sim::Network& network, sim::NodeId client, CenFuzzOptions options)
    : network_(network), client_(client), options_(options) {}

RequestResult CenFuzz::issue(net::Ipv4Address endpoint, const FuzzProbe& probe,
                             std::string* response_body) {
  const std::uint16_t port = probe.https ? 443 : 80;
  for (int attempt = 0; attempt <= options_.retries; ++attempt) {
    sim::Connection conn = network_.open_connection(client_, endpoint, port);
    if (conn.connect() != sim::ConnectResult::kEstablished) continue;
    std::vector<sim::Event> events = conn.send(probe.payload, 64);
    if (events.empty()) continue;

    RequestResult result = RequestResult::kOk;
    int best_rank = -1;
    auto rank = [](RequestResult r) {
      switch (r) {
        case RequestResult::kBlockpage: return 4;
        case RequestResult::kRst: return 3;
        case RequestResult::kFin: return 2;
        case RequestResult::kOk: return 1;
        case RequestResult::kDropTimeout: return 0;
      }
      return 0;
    };
    for (const sim::Event& ev : events) {
      const auto* tcp = std::get_if<sim::TcpEvent>(&ev);
      if (tcp == nullptr) continue;
      RequestResult r = RequestResult::kOk;
      std::string body;
      if (tcp->packet.tcp.has(net::TcpFlags::kRst)) {
        r = RequestResult::kRst;
      } else if (tcp->packet.tcp.has(net::TcpFlags::kFin)) {
        r = RequestResult::kFin;
      } else if (!tcp->packet.payload.empty()) {
        std::string raw = to_string(tcp->packet.payload);
        if (auto resp = net::HttpResponse::parse(raw)) {
          if (censor::match_blockpage(resp->body)) {
            r = RequestResult::kBlockpage;
          } else {
            body = "HTTP:" + std::to_string(resp->status) + ":" + resp->body;
          }
        } else if (auto sh = net::ServerHello::parse(tcp->packet.payload)) {
          body = "TLSCERT:" + sh->certificate_domain;
        } else if (net::TlsAlert::parse(tcp->packet.payload)) {
          body = "TLSALERT";
        }
      }
      if (rank(r) > best_rank) {
        best_rank = rank(r);
        result = r;
        if (response_body != nullptr && r == RequestResult::kOk) *response_body = body;
      }
    }
    return result;
  }
  return RequestResult::kDropTimeout;
}

bool CenFuzz::fetched_legit_content(const std::string& body, const std::string& test_domain,
                                    bool https) const {
  // Registrable part of the test domain (last two labels): content served
  // for a sibling subdomain still counts as the intended resource (§6.3's
  // wiki.dailymotion.com circumvention example).
  std::vector<std::string> labels = split(test_domain, '.');
  std::string registrable = test_domain;
  if (labels.size() >= 2) {
    registrable = labels[labels.size() - 2] + "." + labels.back();
  }
  if (https) {
    if (!starts_with(body, "TLSCERT:")) return false;
    std::string cert = body.substr(8);
    return cert == registrable || ends_with(cert, "." + registrable) ||
           ends_with(registrable, "." + cert) || cert == test_domain;
  }
  if (!starts_with(body, "HTTP:200:")) return false;
  return body.find("legitimate content for") != std::string::npos &&
         body.find(registrable) != std::string::npos;
}

CenFuzzReport CenFuzz::run(net::Ipv4Address endpoint, const std::string& test_domain,
                           const std::string& control_domain) {
  CenFuzzReport report;
  report.endpoint = endpoint;
  report.test_domain = test_domain;
  report.control_domain = control_domain;

  obs::Observer* o = network_.observer();
  obs::ScopedSpan span(o != nullptr ? &o->tracer() : nullptr, &network_.clock(),
                       "cenfuzz:" + test_domain, "cenfuzz");

  auto pace = [&](RequestResult r) {
    network_.clock().advance(request_blocked(r) ? options_.wait_after_blocked
                                                : options_.wait_after_ok);
    ++report.total_requests;
    if (o != nullptr) o->tools().fuzz_requests->inc();
  };

  // Per-measurement bookkeeping: outcome counters plus a journal line
  // recording the strategy's verdict.
  auto observe_measurement = [&](const FuzzMeasurement& m) {
    if (o == nullptr) return;
    switch (m.outcome) {
      case FuzzOutcome::kSuccessful: o->tools().fuzz_successful->inc(); break;
      case FuzzOutcome::kNotSuccessful: o->tools().fuzz_not_successful->inc(); break;
      case FuzzOutcome::kUntestable: o->tools().fuzz_untestable->inc(); break;
    }
    if (m.baseline_failed) o->tools().fuzz_baseline_failed->inc();
    o->journal().record(network_.now(), "fuzz",
                        m.strategy + "/" + m.permutation + " " +
                            (m.https ? "tls" : "http") + " -> " +
                            std::string(fuzz_outcome_name(m.outcome)));
  };

  auto run_protocol = [&](bool https) {
    FuzzProbe normal_test =
        https ? normal_tls_probe(test_domain) : normal_http_probe(test_domain);
    FuzzProbe normal_control =
        https ? normal_tls_probe(control_domain) : normal_http_probe(control_domain);

    // Majority-voted baseline: one dropped request on a lossy network must
    // not write off the whole protocol. One round (the default) reduces to
    // the single Normal Test / Normal Control pair.
    const int rounds = std::max(1, options_.baseline_attempts);
    RequestResult normal_test_result = RequestResult::kOk;
    RequestResult normal_control_result = RequestResult::kOk;
    int blocked_votes = 0;
    for (int round = 0; round < rounds; ++round) {
      RequestResult test_r = issue(endpoint, normal_test);
      pace(test_r);
      RequestResult control_r = issue(endpoint, normal_control);
      pace(control_r);
      if (round == 0) {
        normal_test_result = test_r;
        normal_control_result = control_r;
      }
      if (request_blocked(test_r) && !request_blocked(control_r)) ++blocked_votes;
    }
    bool baseline_blocked = 2 * blocked_votes > rounds;
    (https ? report.tls_baseline_blocked : report.http_baseline_blocked) = baseline_blocked;

    // Record the Normal baseline as a pseudo-strategy (it appears in
    // Fig. 5 / Fig. 9 as "Normal").
    FuzzMeasurement normal_m;
    normal_m.strategy = "Normal";
    normal_m.permutation = https ? "ClientHello" : "GET";
    normal_m.https = https;
    normal_m.test_result = normal_test_result;
    normal_m.control_result = normal_control_result;
    normal_m.outcome =
        baseline_blocked ? FuzzOutcome::kNotSuccessful : FuzzOutcome::kUntestable;
    observe_measurement(normal_m);
    report.measurements.push_back(normal_m);

    if (!baseline_blocked) return;  // nothing to fuzz on this protocol

    std::vector<FuzzProbe> test_set =
        https ? tls_probes(test_domain) : http_probes(test_domain);
    std::vector<FuzzProbe> control_set =
        https ? tls_probes(control_domain) : http_probes(control_domain);

    for (std::size_t i = 0; i < test_set.size(); ++i) {
      FuzzMeasurement m;
      m.strategy = test_set[i].strategy;
      m.permutation = test_set[i].permutation;
      m.https = https;

      std::string test_body;
      m.test_result = issue(endpoint, test_set[i], &test_body);
      pace(m.test_result);
      m.control_result = issue(endpoint, control_set[i]);
      pace(m.control_result);

      if (request_blocked(m.control_result)) {
        // Per-strategy baseline failure: skip and record, never abort.
        m.outcome = FuzzOutcome::kUntestable;
        m.baseline_failed = true;
        ++report.skipped_strategies;
        if (o != nullptr) o->tools().fuzz_skipped->inc();
      } else if (!request_blocked(m.test_result)) {
        m.outcome = FuzzOutcome::kSuccessful;
        m.circumvented = fetched_legit_content(test_body, test_domain, https);
      } else {
        m.outcome = FuzzOutcome::kNotSuccessful;
      }
      observe_measurement(m);
      report.measurements.push_back(std::move(m));
    }
  };

  if (options_.run_http) run_protocol(false);
  if (options_.run_tls) run_protocol(true);
  return report;
}

CenFuzzReport run(sim::Network& network, const FuzzRunOptions& options,
                  obs::Observer* observer) {
  sim::ScopedObserver guard(network, observer);
  if (options.common.seed) network.reset_epoch(*options.common.seed);
  CenFuzzOptions fuzz = options.fuzz;
  fuzz.apply(options.common);
  CenFuzz tool(network, options.client, fuzz);
  return tool.run(options.endpoint, options.test_domain, options.control_domain);
}

}  // namespace cen::fuzz
