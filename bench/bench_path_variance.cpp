// Reproduces the §4.1 path-variance calibration experiment: 200
// traceroutes each to 20 infrastructural endpoints with differing ECMP
// fan-out. For each endpoint we count the unique paths observed and
// compute how many traceroutes are needed to cover 90% of the paths that
// 200 traceroutes reveal — the experiment from which the paper derives its
// 11-repetition default.
#include <algorithm>
#include <set>

#include "bench_common.hpp"
#include "scenario/variance.hpp"

using namespace bench;

int main() {
  header("4.1 calibration: path variance across 20 endpoints, 200 traceroutes each");
  scenario::VarianceScenario s = scenario::make_variance_world();

  std::printf("%3s | %10s %12s | %22s\n", "ep", "true paths", "paths seen",
              "traceroutes for 90%");
  rule();
  double sum_reps = 0.0;
  int outliers = 0;
  constexpr int kTraceroutes = 200;
  for (std::size_t e = 0; e < s.endpoints.size(); ++e) {
    // One traceroute = one flow (Paris-style consistency per connection);
    // consecutive traceroutes get fresh source ports.
    std::vector<std::vector<sim::NodeId>> observed;
    std::set<std::vector<sim::NodeId>> unique;
    for (int t = 0; t < kTraceroutes; ++t) {
      sim::Connection conn = s.network->open_connection(s.client, s.endpoints[e]);
      observed.push_back(conn.path());
      unique.insert(conn.path());
    }
    // First-appearance coverage: how many traceroutes until 90% of the
    // eventually-observed path set has been seen?
    std::size_t target = (unique.size() * 9 + 9) / 10;
    std::set<std::vector<sim::NodeId>> seen;
    int needed = kTraceroutes;
    for (int t = 0; t < kTraceroutes; ++t) {
      seen.insert(observed[static_cast<std::size_t>(t)]);
      if (seen.size() >= target) {
        needed = t + 1;
        break;
      }
    }
    sum_reps += needed;
    if (unique.size() > 100) ++outliers;
    std::printf("%3zu | %10zu %12zu | %18d\n", e, s.true_path_counts[e], unique.size(),
                needed);
  }
  rule();
  std::printf("average traceroutes for 90%% path coverage: %.1f (paper: 11)\n",
              sum_reps / static_cast<double>(s.endpoints.size()));
  std::printf("endpoints with >100 unique paths: %d (paper: exactly one outlier)\n",
              outliers);
  return 0;
}
