// Reproduces Table 1: CenTrace measurements collected per country —
// in-country clients/CTs/blocked and remote endpoints/ASNs/CTs/blocked.
#include <set>

#include "bench_common.hpp"

using namespace bench;

int main() {
  header("Table 1: CenTrace (CT) measurements collected");
  std::printf("%-4s | %-28s | %-44s\n", "Co.", "In-country", "Remote");
  std::printf("%-4s | %8s %6s %7s | %9s %13s %6s %7s\n", "", "Clients", "CTs",
              "Blocked", "Endpoints", "Endpoint ASNs", "CTs", "Blocked");
  rule();

  for (scenario::Country c : scenario::all_countries()) {
    scenario::CountryScenario s = scenario::make_country(c, scenario::Scale::kFull);
    scenario::PipelineOptions o = default_options();
    o.run_fuzz = false;
    o.run_banner = false;
    scenario::PipelineResult r = run_country_pipeline(s, o);

    std::size_t ic_blocked = 0;
    for (const auto& t : r.incountry_traces) {
      if (t.blocked) ++ic_blocked;
    }
    std::set<std::uint32_t> endpoint_asns;
    for (net::Ipv4Address ep : s.remote_endpoints) {
      if (auto as = s.network->geodb().lookup(ep)) endpoint_asns.insert(as->asn);
    }
    int clients = s.incountry_client == sim::kInvalidNode ? 0 : 1;
    scenario::ConsistencyStats cons = scenario::localisation_consistency(r);
    std::printf("%-4s | %8d %6zu %7zu | %9zu %13zu %6zu %7zu   (loc. consistency %.0f%%)\n",
                r.country.c_str(), clients, r.incountry_traces.size(), ic_blocked,
                s.remote_endpoints.size(), endpoint_asns.size(), r.remote_traces.size(),
                r.blocked_remote(), 100.0 * cons.mean_modal_as_share);
  }
  rule();
  std::printf("Paper (Table 1):  AZ 1/18/6   29/10/227/96\n");
  std::printf("                  BY -/-/-    123/19/1040/287\n");
  std::printf("                  KZ 1/14/8   95/29/868/748\n");
  std::printf("                  RU 1/14/0   1291/498/10488/418\n");
  std::printf("Shape check: KZ blocks the largest share of remote CTs, RU the\n");
  std::printf("smallest; AZ and KZ in-country clients see blocking, RU's does not.\n");
  return 0;
}
