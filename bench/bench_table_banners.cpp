// Reproduces §5.2/§5.3: the banner-grab funnel and vendor identification.
//   (a) the blockpage case study — endpoints with known blockpage
//       injection; banner labels must agree with blockpage labels;
//   (b) AZ/BY/KZ/RU — potential device IPs, open-port share, and the
//       vendor census (Cisco 7, Fortinet 5 (+4 blockpage-only), Kerio 2,
//       Palo Alto 2, DDoS-Guard 1, MikroTik 1, Kaspersky 1).
#include <set>

#include "bench_common.hpp"

using namespace bench;

int main() {
  header("5.2 Case study: blockpage labels vs banner labels (worldwide)");
  {
    scenario::WorldScenario w = scenario::make_world(scenario::Scale::kFull);
    scenario::PipelineOptions o = default_options();
    o.centrace_repetitions = 5;
    o.run_fuzz = false;
    scenario::PipelineResult r = run_world_pipeline(w, o);

    std::size_t device_ips = r.device_probes.size();
    std::size_t with_service = 0, labelled = 0, agree = 0, blockpage_labelled = 0;
    for (const auto& m : r.measurements) {
      if (!m.trace.blockpage_vendor) continue;
    }
    std::map<std::uint32_t, std::string> blockpage_label_by_ip;
    for (const auto& t : r.remote_traces) {
      if (t.blocked && t.blockpage_vendor && t.blocking_hop_ip) {
        blockpage_label_by_ip[t.blocking_hop_ip->value()] = *t.blockpage_vendor;
      }
    }
    for (const auto& [ip, probe] : r.device_probes) {
      if (probe.has_any_service()) ++with_service;
      if (probe.vendor) {
        ++labelled;
        auto bp = blockpage_label_by_ip.find(ip);
        if (bp != blockpage_label_by_ip.end()) {
          ++blockpage_labelled;
          if (bp->second == *probe.vendor) ++agree;
        }
      }
    }
    std::printf("endpoints measured:            %zu\n", w.endpoints.size());
    std::printf("in-path device IPs probed:     %zu   (paper: 71 of 76)\n", device_ips);
    std::printf("with >=1 open service:         %zu (%s)   (paper: 62, 87.32%%)\n",
                with_service, pct(double(with_service), double(device_ips)).c_str());
    std::printf("banner identifies firewall:    %zu   (paper: 28)\n", labelled);
    std::printf("banner label == blockpage label: %zu/%zu   (paper: exact match)\n",
                agree, blockpage_labelled);
  }

  header("5.3 Vendor census in AZ / BY / KZ / RU");
  std::map<std::string, std::set<std::string>> vendor_countries;
  std::map<std::string, int> vendor_counts;
  std::size_t total_ips = 0, ips_with_service = 0;
  std::map<std::string, int> blockpage_only;
  scenario::PipelineOptions o = default_options();
  o.centrace_repetitions = 5;
  o.run_fuzz = false;
  for (scenario::Country c : scenario::all_countries()) {
    scenario::CountryScenario s = scenario::make_country(c, scenario::Scale::kFull);
    scenario::PipelineResult r = run_country_pipeline(s, o);
    total_ips += r.device_probes.size();
    std::set<std::uint32_t> counted;
    for (const auto& [ip, probe] : r.device_probes) {
      if (probe.has_any_service()) ++ips_with_service;
      if (probe.vendor && counted.insert(ip).second) {
        vendor_counts[*probe.vendor]++;
        vendor_countries[*probe.vendor].insert(r.country);
      }
    }
    // Blockpage-only deployments: identified by the injected page though
    // the device exposes no banners.
    std::set<std::uint32_t> bp_ips;
    for (const auto& t : r.remote_traces) {
      if (!t.blocked || !t.blockpage_vendor || !t.blocking_hop_ip) continue;
      std::uint32_t ip = t.blocking_hop_ip->value();
      auto probe = r.device_probes.find(ip);
      bool has_banner_label = probe != r.device_probes.end() && probe->second.vendor;
      if (!has_banner_label && bp_ips.insert(ip).second) {
        blockpage_only[*t.blockpage_vendor]++;
      }
    }
  }
  std::printf("potential device IPs probed: %zu; with >=1 open port: %zu (%s)\n",
              total_ips, ips_with_service,
              pct(double(ips_with_service), double(total_ips)).c_str());
  std::printf("(paper: 163 IPs, 68 with open ports = 41.72%%)\n\n");
  std::printf("%-12s %6s  %-20s  (paper count)\n", "Vendor", "Count", "Countries");
  rule();
  const std::map<std::string, int> paper = {{"Cisco", 7},     {"Fortinet", 5},
                                            {"Kerio", 2},     {"PaloAlto", 2},
                                            {"DDoSGuard", 1}, {"MikroTik", 1},
                                            {"Kaspersky", 1}};
  int total_banner = 0;
  for (const auto& [vendor, n] : vendor_counts) {
    std::string countries;
    for (const std::string& cc : vendor_countries[vendor]) {
      if (!countries.empty()) countries += ",";
      countries += cc;
    }
    int expected = paper.count(vendor) != 0 ? paper.at(vendor) : 0;
    std::printf("%-12s %6d  %-20s  (%d)\n", vendor.c_str(), n, countries.c_str(),
                expected);
    total_banner += n;
  }
  rule();
  int bp_only_total = 0;
  for (const auto& [vendor, n] : blockpage_only) {
    std::printf("blockpage-only %-12s %d   (paper: 4 Fortinet)\n", vendor.c_str(), n);
    bp_only_total += n;
  }
  std::printf("Total commercial deployments identified: %d banner + %d blockpage-only"
              " = %d   (paper: 19 + 4 = 23)\n",
              total_banner, bp_only_total, total_banner + bp_only_total);
  return 0;
}
