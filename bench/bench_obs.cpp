// Observability overhead guard: the instrumentation must be near-free
// when no sink is attached.
//
// Three interleaved measurements of the pipeline hot loop (CenTrace
// measurements on the bench_perf chain topology):
//
//   baseline  a network that never had an observer attached — the
//             pure branch-not-taken fast path;
//   disabled  a network that had an observer attached and then detached
//             with set_observer(nullptr) — must fully restore the fast
//             path (cached counter pointers cleared, fault hooks unhooked);
//   enabled   observer attached — metrics + spans + journal all live.
//
// The enforced regression budget: median(disabled) must stay within 2%
// of median(baseline). A failure means detaching no longer restores the
// zero-instrumentation path. The enabled cost is reported (not enforced)
// so BENCH_obs.json tracks it over time.
//
//   ./bench_obs [output.json]      (default BENCH_obs.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "censor/vendors.hpp"
#include "centrace/centrace.hpp"
#include "core/json.hpp"
#include "net/http.hpp"
#include "obs/observer.hpp"

namespace {

using namespace cen;

constexpr int kRounds = 9;         // interleaved rounds per mode (median taken)
constexpr int kMeasurements = 6;   // CenTrace measurements per round
constexpr double kBudget = 0.02;   // disabled-sink overhead budget (2%)

std::unique_ptr<sim::Network> make_net() {
  sim::Topology topo;
  sim::NodeId client = topo.add_node("client", net::Ipv4Address(10, 0, 0, 1));
  sim::NodeId prev = client;
  for (int i = 0; i < 10; ++i) {
    sim::NodeId r =
        topo.add_node("r", net::Ipv4Address(10, 0, 1, static_cast<uint8_t>(i + 1)));
    topo.add_link(prev, r);
    prev = r;
  }
  sim::NodeId server = topo.add_node("server", net::Ipv4Address(10, 0, 9, 1));
  topo.add_link(prev, server);
  geo::IpMetadataDb db;
  db.add_route(net::Ipv4Address(10, 0, 0, 0), 16, {64512, "PERF", "XX"});
  auto net = std::make_unique<sim::Network>(std::move(topo), std::move(db));
  sim::EndpointProfile p;
  p.hosted_domains = {"www.example.org"};
  net->add_endpoint(server, p);
  censor::DeviceConfig cfg = censor::make_vendor_device("Cisco", "perf-device");
  cfg.http_rules.add("blocked.example");
  cfg.sni_rules.add("blocked.example");
  net->attach_device(5, std::make_shared<censor::Device>(cfg));
  return net;
}

double hot_loop_ms(sim::Network& net, obs::Observer* observer) {
  trace::CenTraceOptions opts;
  opts.repetitions = 3;
  trace::CenTrace tracer(net, /*client=*/0, opts);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kMeasurements; ++i) {
    trace::CenTraceReport r = tracer.measure(net::Ipv4Address(10, 0, 9, 1),
                                             "www.blocked.example", "www.example.org");
    if (!r.blocked) std::fprintf(stderr, "unexpected: hot loop saw no blocking\n");
  }
  auto t1 = std::chrono::steady_clock::now();
  if (observer != nullptr) {
    // Bound the span/journal growth between rounds (registry persists).
    observer->tracer().clear();
    observer->journal().clear();
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_obs.json";

  // Three networks, one per mode, so device/flow state histories match.
  std::unique_ptr<sim::Network> baseline_net = make_net();
  std::unique_ptr<sim::Network> disabled_net = make_net();
  std::unique_ptr<sim::Network> enabled_net = make_net();

  obs::Observer detached;  // attached once, then detached: must be free
  disabled_net->set_observer(&detached);
  disabled_net->set_observer(nullptr);
  obs::Observer attached;
  enabled_net->set_observer(&attached);

  // Warmup (allocators, caches) then interleaved rounds so slow drift
  // (thermal, frequency scaling) hits all three modes equally.
  (void)hot_loop_ms(*baseline_net, nullptr);
  (void)hot_loop_ms(*disabled_net, nullptr);
  (void)hot_loop_ms(*enabled_net, &attached);

  std::vector<double> baseline_ms, disabled_ms, enabled_ms;
  for (int round = 0; round < kRounds; ++round) {
    baseline_ms.push_back(hot_loop_ms(*baseline_net, nullptr));
    disabled_ms.push_back(hot_loop_ms(*disabled_net, nullptr));
    enabled_ms.push_back(hot_loop_ms(*enabled_net, &attached));
  }

  const double base = median(baseline_ms);
  const double disabled = median(disabled_ms);
  const double enabled = median(enabled_ms);
  const double disabled_overhead = disabled / base - 1.0;
  const double enabled_overhead = enabled / base - 1.0;
  const bool pass = disabled_overhead < kBudget;

  std::printf("observability overhead (median of %d rounds, %d measurements each)\n",
              kRounds, kMeasurements);
  std::printf("  baseline (never attached): %8.2f ms\n", base);
  std::printf("  disabled (detached sink):  %8.2f ms  (%+.2f%%)\n", disabled,
              100.0 * disabled_overhead);
  std::printf("  enabled  (sink attached):  %8.2f ms  (%+.2f%%)\n", enabled,
              100.0 * enabled_overhead);
  std::printf("disabled-sink budget <%.0f%%: %s\n", 100.0 * kBudget,
              pass ? "PASS" : "FAIL");

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("obs_overhead");
  w.key("rounds").value(kRounds);
  w.key("measurements_per_round").value(kMeasurements);
  w.key("baseline_ms").value(base);
  w.key("disabled_ms").value(disabled);
  w.key("enabled_ms").value(enabled);
  w.key("disabled_overhead").value(disabled_overhead);
  w.key("enabled_overhead").value(enabled_overhead);
  w.key("budget").value(kBudget);
  w.key("pass").value(pass);
  w.end_object();
  std::ofstream out(out_path);
  out << w.str() << "\n";
  std::printf("wrote %s\n", out_path);
  return pass ? 0 : 1;
}
